#!/usr/bin/env python3
"""Parallel treecode scaling on MetaBlade (the Table 2 experiment).

Runs the SPMD hashed-oct-tree code over SimMPI on the modelled Fast
Ethernet star at several blade counts, and contrasts it with an ideal
(zero-cost) fabric to isolate the communication overhead the paper
blames for the efficiency drop.

Run:  python examples/cluster_scaling.py [n_particles]
"""

import sys

from repro.metrics import format_table
from repro.nbody.parallel import scaling_study
from repro.nbody.sim import SimConfig
from repro.perfmodel.calibration import metablade_node_rate


def main(n: int = 4000) -> None:
    config = SimConfig(n=n, steps=1, theta=0.7, softening=1e-2)
    rate = metablade_node_rate()
    print(
        f"N-body scaling study: {n} particles, sustained node rate "
        f"{rate / 1e6:.1f} Mflops"
    )
    print()

    counts = (1, 2, 4, 8, 16, 24)
    real = scaling_study(config, counts, rate)
    ideal = scaling_study(config, counts, rate, ideal_network=True)

    rows = []
    for r, i in zip(real, ideal):
        rows.append(
            [
                r.cpus,
                round(r.time_s, 3),
                round(r.speedup, 2),
                f"{r.efficiency:.0%}",
                f"{r.comm_fraction:.0%}",
                round(i.speedup, 2),
            ]
        )
    print(
        format_table(
            [
                "# CPUs",
                "Time (s)",
                "Speed-Up",
                "Efficiency",
                "Comm share",
                "Speed-Up (ideal net)",
            ],
            rows,
            title="Table 2 workload: Fast Ethernet star vs ideal fabric",
        )
    )
    print()
    last_real, last_ideal = real[-1], ideal[-1]
    lost = last_ideal.speedup - last_real.speedup
    print(
        f"At 24 blades the Fast Ethernet fabric costs "
        f"{lost:.1f} units of speedup\n"
        f"({last_real.comm_fraction:.0%} of wall time is "
        "communication) - the paper's point that\n"
        "'the communication overhead is enough to cause the drop in "
        "efficiency'."
    )


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 4000)
