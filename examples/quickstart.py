#!/usr/bin/env python3
"""Quickstart: build the paper's Bladed Beowulf and read its headlines.

Reproduces the elevator pitch of "Honey, I Shrunk the Beowulf!": a
24-blade Transmeta cluster in 3U delivers Beowulf-class performance at
a third of the total cost of ownership.

Run:  python examples/quickstart.py
"""

from repro import (
    BladedBeowulf,
    METABLADE,
    experiment_table5,
    experiment_topper,
)


def main() -> None:
    machine = BladedBeowulf.metablade()

    print("=" * 64)
    print("The machine (paper Sections 2-3)")
    print("=" * 64)
    print(machine.summary())
    print()

    chassis_racks = METABLADE.build_hardware()
    chassis = chassis_racks[0].chassis[0]
    print(
        f"Physically: {len(chassis)} ServerBlades in one "
        f"{chassis.dims.rack_units}U RLX System 324 "
        f"({chassis.dims.width_in}\" x {chassis.dims.height_in}\"), "
        f"drawing {chassis.watts_at_load:.0f} W with no active cooling."
    )
    print()

    print(experiment_table5().text)
    print()
    print(experiment_topper().text)
    print()
    print(
        "Conclusion (paper Section 5): the Bladed Beowulf costs 50-75% "
        "more to acquire,\nsustains ~75% of the performance, and still "
        "wins on total price-performance\nbecause its TCO is three "
        "times smaller."
    )


if __name__ == "__main__":
    main()
