#!/usr/bin/env python3
"""Galaxy collision on the modelled MetaBlade (Figure 3 workload).

Runs the hashed oct-tree treecode on two Plummer spheres on a collision
course, renders the projected surface density as ASCII art, and pushes
the flop ledger through the paper's Section 3.3 accounting (sustained
Gflops, percent of peak, virtual wall time on the 24-blade cluster).

Run:  python examples/nbody_galaxy_collision.py [n_particles]
"""

import sys

import numpy as np

from repro.core import BladedBeowulf
from repro.nbody.sim import (
    NBodySimulation,
    SimConfig,
    ascii_render,
    density_image,
)


def main(n: int = 5000) -> None:
    config = SimConfig(
        n=n, steps=3, dt=2e-3, ic="collision", theta=0.7, softening=2e-2
    )
    print(f"Two Plummer spheres, {n} particles, {config.steps} treecode steps")
    print(f"(theta = {config.theta}, leaf size = {config.leaf_size})")
    print()

    sim = NBodySimulation(config)
    result = sim.run()

    image = density_image(result.pos, result.mass, bins=56)
    print(ascii_render(image))
    print()

    machine = BladedBeowulf.metablade()
    rate = machine.sustained_gflops() * 1e9
    print(f"interactions ledger : {result.total_flops:.3e} flops")
    for record in result.records:
        print(
            f"  step {record.step}: {record.interactions:,} interactions, "
            f"{record.nodes:,} tree nodes"
        )
    print(f"energy drift        : {result.energy_drift:.2e}")
    print()
    print("Projected onto MetaBlade (paper Section 3.3 accounting):")
    print(f"  sustained          : {machine.sustained_gflops():.2f} Gflops")
    print(f"  peak               : {machine.peak_gflops():.1f} Gflops")
    print(f"  percent of peak    : {machine.percent_of_peak():.0f}%")
    print(f"  virtual wall time  : {result.virtual_seconds(rate):.2f} s")


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 5000)
