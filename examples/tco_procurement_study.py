#!/usr/bin/env python3
"""A procurement what-if built on the TCO/ToPPeR framework.

Scenario: your lab has $120K, machine-room space at a premium, and a
four-year horizon.  Should you buy traditional Beowulfs or Bladed
Beowulfs?  This example prices both under *your* institution's cost
parameters - the knob the paper says dominates the answer.

Run:  python examples/tco_procurement_study.py
"""

from repro.cluster import METABLADE, TABLE5_CLUSTERS
from repro.metrics import CostParameters, format_table, tco_for, topper

BUDGET = 120_000.0
BLADE_PERF_FACTOR = 0.75      # paper: blades sustain ~75% per dollar-peer


def study(params: CostParameters, label: str) -> None:
    piii = TABLE5_CLUSTERS[2]             # the comparably-clocked peer
    rows = []
    for cluster, gflops in ((piii, 2.8), (METABLADE, 2.1)):
        breakdown = tco_for(cluster, params)
        units = int(BUDGET // breakdown.total)
        fleet_gflops = units * gflops
        fleet_space = units * cluster.footprint_sqft
        rating = topper(cluster, gflops, params)
        rows.append(
            [
                cluster.name,
                f"${breakdown.total / 1000:.0f}K",
                f"${rating.usd_per_gflop / 1000:.1f}K",
                units,
                round(fleet_gflops, 1),
                round(fleet_space, 0),
            ]
        )
    print(
        format_table(
            [
                "Cluster",
                "TCO / unit",
                "ToPPeR $/Gflop",
                f"Units in ${BUDGET / 1000:.0f}K",
                "Fleet Gflops",
                "Fleet sq ft",
            ],
            rows,
            title=f"Scenario: {label}",
        )
    )
    print()


def main() -> None:
    study(CostParameters(), "the paper's defaults")
    study(
        CostParameters(space_usd_per_sqft_year=500.0),
        "downtown colo: space at $500/sqft/yr",
    )
    study(
        CostParameters(
            utility_usd_per_kwh=0.25,
            downtime_usd_per_cpu_hour=50.0,
        ),
        "expensive power, production SLAs",
    )
    study(
        CostParameters(traditional_admin_usd_per_year=3_000.0),
        "grad students do the sysadmin",
    )
    print(
        "Takeaway: acquisition price favours the traditional cluster, "
        "but every\nTCO-dollar scenario except free administration "
        "favours the blades - the\npaper's ToPPeR argument, made "
        "institution-specific."
    )


if __name__ == "__main__":
    main()
