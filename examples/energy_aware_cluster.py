#!/usr/bin/env python3
"""Energy-aware computing on the Bladed Beowulf (Section 5's trajectory).

Three studies the paper's follow-on work (Green Destiny, the Green500)
made famous, all runnable here:

1. the LongRun DVFS ladder: time vs energy for a real morphing run;
2. power-capped operation: the fastest LongRun step under a budget;
3. Top500 vs Green500: the ranking inversion.

Run:  python examples/energy_aware_cluster.py
"""

from repro.cpus.longrun import (
    TM5600_LONGRUN,
    TM5800_LONGRUN,
    energy_study,
)
from repro.hpl import green500_list, linpack_solve, top500_list
from repro.isa import programs
from repro.metrics.report import format_table


def dvfs_frontier() -> None:
    print("1. The LongRun ladder (Karp kernel through the real CMS)")
    workload = programs.gravity_microkernel_karp(n=48, passes=25)
    rows = []
    for part, model in (("TM5600", TM5600_LONGRUN),
                        ("TM5800", TM5800_LONGRUN)):
        for p in energy_study(workload, model):
            rows.append(
                [part, p.mhz, round(p.power_watts, 2),
                 round(p.time_s * 1e3, 2), round(p.energy_j * 1e3, 3)]
            )
    print(format_table(
        ["Part", "MHz", "Power (W)", "Time (ms)", "Energy (mJ)"], rows
    ))
    print()


def power_capped() -> None:
    print("2. Fastest step under a power budget")
    for budget in (6.0, 3.0, 2.0, 1.0):
        step = TM5600_LONGRUN.step_for_budget(budget)
        if step is None:
            print(f"   {budget:.1f} W: no TM5600 step fits")
        else:
            print(
                f"   {budget:.1f} W: run at {step.mhz:.0f} MHz "
                f"({TM5600_LONGRUN.power_watts(step):.2f} W)"
            )
    print()


def rankings() -> None:
    print("3. Top500 vs Green500 (verified Linpack kernel underneath)")
    kernel = linpack_solve(150)
    assert kernel.passed
    top = top500_list()
    green = green500_list()
    rows = [
        [
            t.rank,
            t.name,
            round(t.gflops, 1),
            next(g.rank for g in green if g.name == t.name),
            round(t.gflops / t.power_kw, 2),
        ]
        for t in top
    ]
    print(format_table(
        ["Top500 #", "Machine", "Gflops", "Green500 #", "Gflops/kW"],
        rows,
    ))
    print()
    print(
        "Ranked by flops, Avalon crushes the 24-blade machines; ranked "
        "by flops\nper watt, every Bladed Beowulf moves ahead of it - "
        "the inversion the\npaper's performance/power metric was "
        "arguing for."
    )


def main() -> None:
    print("Energy-aware supercomputing in small spaces\n")
    dvfs_frontier()
    power_capped()
    rankings()


if __name__ == "__main__":
    main()
