#!/usr/bin/env python3
"""One tree library, three physics clients (paper Section 3.5.1).

The paper's point about the treecode library is reuse: "only 2000 lines
of code external to the library are required to implement a
gravitational N-body simulation.  The vortex particle method requires
only 2500 lines ... Smoothed particle hydrodynamics takes 3000 lines."

This example runs all three clients against the same hashed octree:

1. gravity (with and without quadrupole moments),
2. a vortex smoke ring propelling itself by Biot-Savart induction,
3. SPH density estimation with tree ball queries.

Run:  python examples/treecode_clients.py
"""

import numpy as np

from repro.nbody.ic import plummer_sphere
from repro.nbody.kernels import direct_accelerations
from repro.nbody.sph import SphSystem
from repro.nbody.traversal import tree_accelerations
from repro.nbody.tree import HashedOctree
from repro.nbody.vortex import (
    VortexSystem,
    ring_self_induced_speed,
    vortex_ring,
)


def gravity_client() -> None:
    print("1. Gravity (the Table 4 workload)")
    pos, _, mass = plummer_sphere(2000, seed=12)
    tree = HashedOctree(pos, mass, leaf_size=16, quadrupoles=True)
    exact, _ = direct_accelerations(pos, mass, softening=1e-2)
    norm = np.linalg.norm(exact, axis=1)
    for use_quad in (False, True):
        acc, stats = tree_accelerations(
            tree, theta=0.8, softening=1e-2, use_quadrupole=use_quad
        )
        err = np.median(np.linalg.norm(acc - exact, axis=1) / norm)
        label = "quadrupole" if use_quad else "monopole  "
        print(
            f"   {label}: {stats.interactions:>9,} interactions, "
            f"median force error {err:.2e}"
        )
    print()


def vortex_client() -> None:
    print("2. Vortex particle method (a smoke ring)")
    pos, alpha = vortex_ring(n=256, ring_radius=1.0, circulation=1.0)
    system = VortexSystem(pos, alpha, core_radius=0.05)
    vel, stats = system.tree_velocities(theta=0.4)
    uz = vel[:, 2].mean()
    predicted = ring_self_induced_speed(1.0, 1.0, 0.05)
    print(
        f"   ring translates at {uz:.3f} (thin-core formula "
        f"{predicted:.3f}) using {stats.interactions:,} interactions"
    )
    drift = np.abs(vel[:, :2].mean(axis=0)).max()
    print(f"   transverse drift {drift:.2e} (symmetry check)")
    print()


def sph_client() -> None:
    print("3. Smoothed particle hydrodynamics (density estimation)")
    side = 12
    g = (np.arange(side) + 0.5) / side
    px, py, pz = np.meshgrid(g, g, g, indexing="ij")
    pos = np.stack([px.ravel(), py.ravel(), pz.ravel()], axis=1)
    mass = np.full(len(pos), 1.0 / len(pos))
    sph = SphSystem(pos, mass, h=2.0 / side)
    rho, pairs = sph.densities()
    interior = np.all(np.abs(pos - 0.5) < 0.25, axis=1)
    print(
        f"   {len(pos)} particles, {pairs:,} kernel pairs via tree "
        f"ball queries"
    )
    print(
        f"   interior density {np.median(rho[interior]):.3f} "
        f"(uniform box: expect 1.0)"
    )
    print()


def main() -> None:
    print("The Warren-Salmon library pattern: one tree, many physics\n")
    gravity_client()
    vortex_client()
    sph_client()
    print(
        "Each client reused the same octree build, interaction-list "
        "walk and\nneighbour machinery - the library design the paper "
        "credits for needing\nonly 2-3 kLoC per new physics."
    )


if __name__ == "__main__":
    main()
