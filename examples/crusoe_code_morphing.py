#!/usr/bin/env python3
"""Inside the Crusoe: watch the Code Morphing Software at work.

Takes the paper's gravitational microkernel, runs it through the
modelled TM5600 pipeline, and narrates what CMS does: interpret cold
code, profile it, translate the hot loop into VLIW molecules, and reuse
the cached translation - then shows how the hot threshold trades
translation cost against interpretation cost.

Run:  python examples/crusoe_code_morphing.py
"""

from repro.cms import CmsConfig, CodeMorphingSoftware
from repro.isa import programs
from repro.metrics import format_table
from repro.vliw.engine import translate_block
from repro.vliw.molecules import packing_efficiency


def show_translation() -> None:
    wl = programs.gravity_microkernel_karp(n=8, passes=1)
    # The hot inner loop starts at the 'inner:' label.
    inner_pc = wl.program.label("inner")
    tb = translate_block(wl.program, inner_pc)
    print(
        f"Hot block at pc {inner_pc}: {tb.guest_count} guest "
        f"instructions -> {len(tb.molecules)} molecules "
        f"({tb.code_bytes} bytes, packing efficiency "
        f"{packing_efficiency(tb.molecules):.0%})"
    )
    for i, mol in enumerate(tb.molecules):
        atoms = " || ".join(str(a.instr) for a in mol)
        print(f"  m{i:02d} [{mol.width_bits:>3}b] {atoms}")
    print()


def show_morphing_run() -> None:
    wl = programs.gravity_microkernel_karp(n=48, passes=30)
    cms = CodeMorphingSoftware(CmsConfig(hot_threshold=8))
    result = cms.run(wl.program, wl.make_state(), max_steps=10**8)
    assert wl.check(result.state)
    print("One full run under CMS (threshold = 8):")
    print(f"  guest instructions : {result.guest_stats.instructions:,}")
    print(f"  interpreted        : {result.interpreted_instructions:,}")
    print(f"  executed natively  : {result.native_fraction:.1%}")
    print(f"  blocks translated  : {result.translated_blocks}")
    print(f"  t-cache hit rate   : {result.tcache_hit_rate:.1%}")
    print(f"  VLIW cycles        : {result.cycles:,}")
    mflops = wl.nominal_flops / (result.cycles / 633e6) / 1e6
    print(f"  => {mflops:.1f} Mflops at 633 MHz")
    print()


def show_threshold_tradeoff() -> None:
    wl = programs.gravity_microkernel_karp(n=48, passes=30)
    rows = []
    for threshold in (1, 8, 64, 512, 10**9):
        cms = CodeMorphingSoftware(CmsConfig(hot_threshold=threshold))
        result = cms.run(wl.program, wl.make_state(), max_steps=10**8)
        label = "interpret-only" if threshold >= 10**9 else str(threshold)
        rows.append(
            [
                label,
                result.translated_blocks,
                f"{result.native_fraction:.0%}",
                f"{result.cycles:,}",
            ]
        )
    print(
        format_table(
            ["Hot threshold", "Translations", "Native", "Cycles"],
            rows,
            title="Interpret vs translate: amortising the morphing cost",
        )
    )


def main() -> None:
    print("The Transmeta TM5600: a software-hardware hybrid CPU")
    print("=" * 60)
    print()
    show_translation()
    show_morphing_run()
    show_threshold_tradeoff()


if __name__ == "__main__":
    main()
