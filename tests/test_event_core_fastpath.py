"""Hot-loop mechanics: lazy-deletion heap, indexed mailboxes, ledgers."""

import pickle

import numpy as np

from repro.core.events import EventKernel
from repro.sched import BladeAllocator
from repro.simmpi.comm import _NBYTES_CACHE, Message, payload_nbytes
from repro.simmpi.runtime import _Mailbox


# ---------------------------------------------------------------------------
# Kernel: O(1) pending, lazy deletion, compaction
# ---------------------------------------------------------------------------

def test_pending_is_a_counter():
    kernel = EventKernel()
    events = [kernel.at(i * 0.1, lambda: None) for i in range(10)]
    assert kernel.pending() == 10
    for event in events[:4]:
        event.cancel()
    assert kernel.pending() == 6
    # Under the compaction threshold the heap still holds the corpses.
    assert len(kernel._heap) == 10
    assert not kernel.idle
    kernel.run()
    assert kernel.pending() == 0
    assert kernel.idle


def test_double_cancel_counts_once():
    kernel = EventKernel()
    event = kernel.at(1.0, lambda: None)
    other = kernel.at(2.0, lambda: None)
    event.cancel()
    event.cancel()
    assert kernel.pending() == 1
    kernel.run()
    assert kernel.now == other.time


def test_cancel_after_fire_is_counter_neutral():
    kernel = EventKernel()
    event = kernel.at(1.0, lambda: None)
    kernel.run()
    assert kernel.pending() == 0
    event.cancel()                   # the scheduler does this on job end
    assert kernel.pending() == 0
    assert kernel._dead == 0
    later = kernel.at(2.0, lambda: None)
    assert kernel.pending() == 1
    kernel.run()
    assert kernel.now == later.time


def test_compaction_trims_heap_and_preserves_fire_order():
    fired = []
    kernel = EventKernel()
    events = [
        kernel.at(i * 1e-3, fired.append, i) for i in range(200)
    ]
    cancelled = [e for i, e in enumerate(events) if i % 4]
    for event in cancelled:
        event.cancel()
    # Crossing (dead > 64 and dead > live) mid-stream rebuilds the
    # heap: corpses accumulated since then are all that remain of the
    # 150 cancellations.
    assert kernel.pending() == 50
    assert len(kernel._heap) == 50 + kernel._dead
    assert len(kernel._heap) < 200
    kernel.run()
    assert fired == [i for i in range(200) if i % 4 == 0]
    assert kernel.now == events[196].time


def test_same_time_events_fire_in_submission_order():
    fired = []
    kernel = EventKernel()
    for i in range(5):
        kernel.at(0.5, fired.append, i)
    kernel.run()
    assert fired == [0, 1, 2, 3, 4]


def test_run_until_with_cancellations():
    fired = []
    kernel = EventKernel()
    events = [kernel.at(i * 0.1, fired.append, i) for i in range(8)]
    events[2].cancel()
    events[5].cancel()
    kernel.run(until=0.45)
    assert fired == [0, 1, 3, 4]
    assert kernel.pending() == 2     # events 6 and 7 remain
    kernel.run()
    assert fired == [0, 1, 3, 4, 6, 7]


# ---------------------------------------------------------------------------
# Indexed mailbox: four views, oldest-match-wins, lazy consumption
# ---------------------------------------------------------------------------

def _msg(src, tag):
    return Message(src=src, dst=0, tag=tag, payload=None, nbytes=8,
                   post_time=0.0, arrive_time=0.0)


def test_mailbox_patterns_pick_oldest_match():
    box = _Mailbox()
    m_17, m_27, m_19 = _msg(1, 7), _msg(2, 7), _msg(1, 9)
    for msg in (m_17, m_27, m_19):
        box.append(msg)
    assert box.take(1, 7) is m_17            # exact (src, tag)
    assert box.take(None, 7) is m_27         # tag-only wildcard
    assert box.take(1, None) is m_19         # src-only wildcard
    assert box.take(None, None) is None
    assert box.live == 0


def test_mailbox_consumed_messages_skipped_in_other_views():
    box = _Mailbox()
    first, second = _msg(3, 1), _msg(3, 1)
    box.append(first)
    box.append(second)
    assert box.take(None, None) is first     # taken via the order view
    assert box.take(3, 1) is second          # exact view skips the corpse
    assert box.take(3, None) is None
    assert box.live == 0


def test_mailbox_live_messages_reflect_consumption():
    box = _Mailbox()
    kept, taken = _msg(1, 1), _msg(2, 2)
    box.append(kept)
    box.append(taken)
    assert box.take(2, 2) is taken
    assert box.live_messages() == [kept]
    assert box.live == 1


# ---------------------------------------------------------------------------
# payload_nbytes memoization
# ---------------------------------------------------------------------------

def _pickled(obj):
    return len(pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)) + 16


def test_payload_nbytes_memo_separates_exact_types():
    _NBYTES_CACHE.clear()
    ints = payload_nbytes((0, 1))
    floats = payload_nbytes((0.0, 1.0))
    # (0, 1) == (0.0, 1.0) as dict keys, but they pickle differently —
    # the memo key must embed the element classes.
    assert ints == _pickled((0, 1))
    assert floats == _pickled((0.0, 1.0))
    assert ints != floats
    # Second lookup is served from cache with the same answer.
    assert payload_nbytes((0, 1)) == ints
    assert payload_nbytes((0.0, 1.0)) == floats


def test_payload_nbytes_fast_paths_and_uncacheable_shapes():
    arr = np.zeros(4)
    assert payload_nbytes(arr) == arr.nbytes + 16
    assert payload_nbytes(b"abc") == 3 + 16
    assert payload_nbytes(7) == 24
    assert payload_nbytes(None) == 8
    big = tuple(range(20))           # too long for the memo key
    assert payload_nbytes(big) == _pickled(big)
    unhashable = ([1, 2], 3)         # list element: uncacheable
    assert payload_nbytes(unhashable) == _pickled(unhashable)


# ---------------------------------------------------------------------------
# Allocator running totals
# ---------------------------------------------------------------------------

def test_allocator_totals_match_interval_recompute():
    alloc = BladeAllocator(4)
    alloc.allocate(1, 2, now=0.0)
    alloc.mark_down(3, now=0.5, detail="fan")
    alloc.release(1, now=1.25)
    alloc.allocate(2, 3, now=1.5)
    alloc.mark_up(3, now=2.0)
    alloc.release(2, now=3.0)
    alloc.finish(now=3.5)
    busy = sum(
        i.end_s - i.start_s for i in alloc.intervals if i.kind == "busy"
    )
    down = sum(
        i.end_s - i.start_s for i in alloc.intervals if i.kind == "down"
    )
    assert alloc.busy_node_seconds() == busy
    assert alloc.down_node_seconds() == down
    assert busy > 0 and down > 0
