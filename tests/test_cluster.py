"""Physical cluster models: nodes, blades, chassis, racks, catalog."""

import math

import pytest

from repro.cluster import (
    AVALON,
    GREEN_DESTINY,
    METABLADE,
    METABLADE2,
    TABLE5_CLUSTERS,
    Cluster,
    ClusterReliability,
    ComputeNode,
    NodeConfig,
    Packaging,
    RlxSystem324,
    ServerBlade,
    cluster_by_name,
    traditional_beowulf,
)
from repro.cluster.chassis import ChassisError
from repro.cluster.rack import Rack
from repro.cluster.reliability import BLADED_OUTAGES, TRADITIONAL_OUTAGES
from repro.cpus.catalog import TM5600_633


def _blade():
    return ServerBlade.for_processor(TM5600_633.spec)


def test_node_description_matches_paper_config():
    node = ComputeNode(processor=TM5600_633.spec)
    text = node.describe()
    assert "633-MHz" in text
    assert "256-MB" in text
    assert "10-GB" in text


def test_blade_has_three_nics():
    assert _blade().node.config.network_interfaces == 3
    assert not _blade().needs_active_cooling


def test_chassis_insert_remove():
    chassis = RlxSystem324()
    blade = _blade()
    chassis.insert(0, blade)
    assert len(chassis) == 1
    with pytest.raises(ChassisError):
        chassis.insert(0, _blade())
    assert chassis.remove(0) is blade
    with pytest.raises(ChassisError):
        chassis.remove(0)
    with pytest.raises(ChassisError):
        chassis.insert(99, _blade())


def test_chassis_dimensions_match_paper():
    dims = RlxSystem324().dims
    assert dims.height_in == 5.25
    assert dims.width_in == 17.25
    assert dims.depth_in == 25.2
    assert dims.rack_units == 3


def test_full_chassis_power():
    chassis = RlxSystem324()
    chassis.populate(_blade)
    assert len(chassis) == 24
    # 24 x 17 W + 112 W chassis overhead = 0.52 kW (Table 7 figure).
    assert chassis.watts_at_load == pytest.approx(520.0)
    chassis.validate_power()
    assert 0 < chassis.psu_headroom < 1


def test_rack_capacity():
    rack = Rack()
    for _ in range(14):
        chassis = RlxSystem324()
        chassis.insert(0, _blade())
        rack.mount(chassis)
    assert rack.free_units == 0
    with pytest.raises(ChassisError):
        rack.mount(RlxSystem324())


def test_metablade_physicals_match_paper():
    assert METABLADE.nodes == 24
    assert METABLADE.footprint_sqft == 6.0
    assert METABLADE.power_kw == pytest.approx(0.52)
    assert METABLADE.cooling_kw == 0.0
    assert METABLADE.treecode_gflops == 2.1
    assert METABLADE.chassis_count == 1


def test_green_destiny_is_a_full_rack():
    assert GREEN_DESTINY.nodes == 240
    assert GREEN_DESTINY.chassis_count == 10
    assert GREEN_DESTINY.footprint_sqft == 6.0
    assert GREEN_DESTINY.power_kw == pytest.approx(5.2)
    racks = GREEN_DESTINY.build_hardware()
    assert len(racks) == 1
    assert racks[0].node_count == 240
    assert racks[0].watts_at_load == pytest.approx(
        GREEN_DESTINY.power_kw * 1000
    )


def test_build_hardware_matches_power_property():
    racks = METABLADE.build_hardware()
    total = sum(r.watts_at_load for r in racks)
    assert total == pytest.approx(METABLADE.power_kw * 1000)


def test_traditional_cluster_cooling():
    alpha = TABLE5_CLUSTERS[0]
    assert alpha.packaging is Packaging.TRADITIONAL
    assert alpha.cooling_kw == pytest.approx(0.5 * alpha.power_kw)
    with pytest.raises(ValueError):
        alpha.build_hardware()


def test_avalon_record():
    assert AVALON.nodes == 140
    assert AVALON.power_kw == 18.0          # override, historical record
    assert AVALON.footprint_sqft == 120.0


def test_perf_ratio_properties():
    assert METABLADE.perf_space_mflops_per_sqft == pytest.approx(350.0)
    assert METABLADE.perf_power_gflops_per_kw == pytest.approx(
        2.1 / 0.52
    )
    anonymous = traditional_beowulf(
        "x", TM5600_633.spec, acquisition_usd=1.0
    )
    assert anonymous.perf_space_mflops_per_sqft is None


def test_cluster_validation():
    with pytest.raises(ValueError):
        Cluster(
            name="bad", processor=TM5600_633.spec, nodes=0,
            packaging=Packaging.BLADED, footprint_sqft=6.0,
            acquisition_usd=1.0, year=2001,
        )


def test_catalog_lookup():
    assert cluster_by_name("MetaBlade") is METABLADE
    assert cluster_by_name("MetaBlade2") is METABLADE2
    with pytest.raises(KeyError):
        cluster_by_name("Deep Thought")


# -- reliability ----------------------------------------------------------------


def test_downtime_cpu_hours_paper_numbers():
    # Traditional: 6 outages/yr x 4 h x 24 nodes x 4 yr = 2304 CPU-h.
    assert TRADITIONAL_OUTAGES.downtime_cpu_hours(24, 4.0) == 2304.0
    # Bladed: 1 failure/yr x 1 h x 1 node x 4 yr = 4 CPU-h.
    assert BLADED_OUTAGES.downtime_cpu_hours(24, 4.0) == 4.0


def test_reliability_profiles_by_packaging():
    blade = ClusterReliability(METABLADE)
    trad = ClusterReliability(TABLE5_CLUSTERS[0])
    assert blade.outage_profile is BLADED_OUTAGES
    assert trad.outage_profile is TRADITIONAL_OUTAGES
    assert blade.availability() > trad.availability()
    assert blade.availability() > 0.999


def test_physics_prediction_close_to_empirical_rates():
    """The Arrhenius model should land near the paper's observed rates:
    ~6 failures/yr for hot traditional clusters, ~1 for the blades."""
    p4 = ClusterReliability(TABLE5_CLUSTERS[3])
    blade = ClusterReliability(METABLADE)
    assert 3.0 < p4.predicted_failures_per_year() < 10.0
    assert 0.3 < blade.predicted_failures_per_year() < 3.0
