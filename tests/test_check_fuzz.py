"""The differential fuzz driver: campaigns, shrinking, replayable bugs.

A healthy tree agrees with itself, so real campaigns must come back
clean; the interesting paths — detection, shrinking, manifest dumping,
replay — are exercised by monkeypatching a deliberate bug into the
batched traversal and watching the driver minimize and preserve it.
"""

import random

import pytest

from repro.check import (
    ORACLES,
    RunManifest,
    replay_manifest,
    run_fuzz,
    run_fuzz_case,
)


def test_quick_campaign_is_clean_and_mixed():
    report = run_fuzz(cases=30, seed=99, quick=True)
    assert report.ok, report.format()
    assert report.cases == 30
    assert set(report.by_oracle) == {"cms", "traversal", "sched"}
    assert sum(report.by_oracle.values()) == 30
    assert "zero differential failures" in report.format()


@pytest.mark.parametrize("oracle", ["cms", "traversal", "sched"])
def test_each_oracle_runs_clean_solo(oracle):
    cases = 2 if oracle == "sched" else 8
    report = run_fuzz(cases=cases, seed=5, quick=True, oracles=[oracle])
    assert report.ok, report.format()
    assert report.by_oracle == {oracle: cases}


def test_draws_are_deterministic_per_seed():
    for name, oracle in ORACLES.items():
        a = oracle.draw(random.Random(123), quick=True)
        b = oracle.draw(random.Random(123), quick=True)
        assert a == b, name


def test_unknown_oracle_is_rejected():
    with pytest.raises(ValueError, match="unknown oracle"):
        run_fuzz(cases=1, oracles=["nope"])


def test_explicit_case_entry_point():
    params = ORACLES["cms"].draw(random.Random(0), quick=True)
    assert run_fuzz_case("cms", params) is None


# -- a planted bug must be found, shrunk, dumped, and replayable -----------


def _broken_traversal(monkeypatch):
    """Make the batched path disagree with naive on the last particle."""
    import repro.nbody.traversal as traversal

    real = traversal.tree_accelerations

    def broken(tree, naive=False, **kwargs):
        acc, stats = real(tree, naive=naive, **kwargs)
        if not naive:
            acc = acc.copy()
            acc[-1, 0] += 1e-9
        return acc, stats

    monkeypatch.setattr(traversal, "tree_accelerations", broken)


def test_planted_bug_is_caught_shrunk_and_dumped(tmp_path, monkeypatch):
    with monkeypatch.context() as patch:
        _broken_traversal(patch)
        report = run_fuzz(
            cases=2, seed=1, quick=True, oracles=["traversal"],
            out_dir=tmp_path,
        )
        assert not report.ok
        failure = report.failures[0]
        assert failure.oracle == "traversal"
        assert "accelerations differ" in failure.message
        assert failure.manifest_path is not None
        # Shrinking drove n down toward the 48-particle floor.
        assert failure.params["n"] <= 96
        assert "--replay" in report.format()

        # While the bug is live, replaying the manifest reproduces it.
        manifest = RunManifest.load(failure.manifest_path)
        assert manifest.kind == "fuzz-failure"
        live = replay_manifest(manifest)
        assert not live.ok
        assert "accelerations differ" in live.format()

    # Bug reverted: the same manifest now replays clean — exactly the
    # fixed-the-bug workflow the manifest exists for.
    fixed = replay_manifest(manifest)
    assert fixed.ok, fixed.format()


def test_campaign_stops_at_max_failures(tmp_path, monkeypatch):
    with monkeypatch.context() as patch:
        _broken_traversal(patch)
        report = run_fuzz(
            cases=50, seed=1, quick=True, oracles=["traversal"],
            out_dir=tmp_path, max_failures=2,
        )
    assert len(report.failures) == 2
    assert report.cases < 50           # stopped early
    assert len(list(tmp_path.glob("fuzz_traversal_*.json"))) == 2


def test_sched_oracle_catches_invariant_violations(monkeypatch):
    from repro.check import auditors

    def explode(outcome, power=None, flop_rate=None, thermal=None):
        raise auditors.InvariantViolation("planted ledger rot")

    with monkeypatch.context() as patch:
        patch.setattr(auditors, "audit_sched_outcome", explode)
        params = ORACLES["sched"].draw(random.Random(2), quick=True)
        message = run_fuzz_case("sched", params)
    assert message is not None
    assert "planted ledger rot" in message
