"""Linpack solver correctness and the Top500/Green500 inversion."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.cluster import AVALON, GREEN_DESTINY, METABLADE, METABLADE2
from repro.hpl import (
    LinpackResult,
    green500_list,
    hpl_flops,
    linpack_gflops,
    linpack_solve,
    lu_factor,
    lu_solve,
    top500_list,
)


def test_lu_matches_numpy():
    rng = np.random.default_rng(5)
    a = rng.uniform(-1, 1, (40, 40))
    b = rng.uniform(-1, 1, 40)
    lu, piv = lu_factor(a)
    x = lu_solve(lu, piv, b)
    assert np.allclose(x, np.linalg.solve(a, b), atol=1e-10)


def test_lu_reconstructs_pa():
    rng = np.random.default_rng(6)
    n = 12
    a = rng.uniform(-1, 1, (n, n))
    lu, piv = lu_factor(a)
    lower = np.tril(lu, -1) + np.eye(n)
    upper = np.triu(lu)
    permuted = a.copy()
    for k in range(n):
        p = piv[k]
        if p != k:
            permuted[[k, p]] = permuted[[p, k]]
    assert np.allclose(permuted, lower @ upper, atol=1e-12)


def test_lu_rejects_nonsquare_and_singular():
    with pytest.raises(ValueError):
        lu_factor(np.zeros((3, 4)))
    with pytest.raises(np.linalg.LinAlgError):
        lu_factor(np.zeros((3, 3)))


@given(seed=st.integers(0, 500), n=st.integers(2, 30))
@settings(max_examples=25, deadline=None)
def test_lu_solve_property(seed, n):
    rng = np.random.default_rng(seed)
    a = rng.uniform(-1, 1, (n, n)) + n * np.eye(n)   # well conditioned
    b = rng.uniform(-1, 1, n)
    lu, piv = lu_factor(a)
    x = lu_solve(lu, piv, b)
    assert np.allclose(a @ x, b, atol=1e-8)


@pytest.mark.parametrize("n", [16, 64, 200])
def test_linpack_passes_hpl_check(n):
    result = linpack_solve(n)
    assert result.passed
    assert result.residual < LinpackResult.THRESHOLD
    assert result.flops == hpl_flops(n)


def test_hpl_flop_count_formula():
    assert hpl_flops(100) == pytest.approx(2e6 / 3 + 2e4)


def test_linpack_rating_scales_with_peak():
    assert linpack_gflops(GREEN_DESTINY) > linpack_gflops(METABLADE)
    with pytest.raises(ValueError):
        linpack_gflops(METABLADE, efficiency=0.0)


def test_top500_vs_green500_inversion():
    """The paper's critique, quantified: flops ranks big iron first;
    flops-per-watt puts the Bladed Beowulfs on the podium."""
    top = top500_list()
    green = green500_list()
    top_names = [e.name for e in top]
    green_names = [e.name for e in green]
    # By raw flops, Avalon out-ranks both 24-blade machines.
    assert top_names.index("Avalon") < top_names.index("MetaBlade")
    assert top_names.index("Avalon") < top_names.index("MetaBlade2")
    # By flops-per-watt, every Bladed Beowulf beats Avalon.
    for blade in ("MetaBlade", "MetaBlade2", "Green Destiny"):
        assert green_names.index(blade) < green_names.index("Avalon")
    # Ranks are 1..n and sorted by the right key.
    assert [e.rank for e in green] == list(range(1, len(green) + 1))
    per_watt = [e.gflops_per_kw for e in green]
    assert per_watt == sorted(per_watt, reverse=True)
