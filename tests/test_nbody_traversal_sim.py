"""Barnes-Hut traversal accuracy, simulation driver, energy behaviour."""

import numpy as np
import pytest

from repro.nbody.ic import plummer_sphere, two_clusters, uniform_cube
from repro.nbody.integrator import (
    kinetic_energy,
    leapfrog_step,
    total_energy,
)
from repro.nbody.kernels import direct_accelerations
from repro.nbody.sim import (
    NBodySimulation,
    SimConfig,
    ascii_render,
    density_image,
)
from repro.nbody.traversal import (
    leaf_aligned_partition,
    tree_accelerations,
    work_per_particle,
)
from repro.nbody.tree import HashedOctree


@pytest.fixture(scope="module")
def snapshot():
    pos, _, mass = plummer_sphere(1200, seed=9)
    tree = HashedOctree(pos, mass, leaf_size=16)
    return pos, mass, tree


def test_tree_forces_match_direct(snapshot):
    pos, mass, tree = snapshot
    acc_tree, stats = tree_accelerations(tree, theta=0.5, softening=1e-2)
    acc_direct, _ = direct_accelerations(pos, mass, softening=1e-2)
    rel = np.linalg.norm(acc_tree - acc_direct, axis=1) / np.linalg.norm(
        acc_direct, axis=1
    )
    assert np.median(rel) < 1e-3
    assert rel.max() < 0.05
    assert stats.interactions > 0
    assert stats.flops == stats.interactions * 38


def test_smaller_theta_is_more_accurate(snapshot):
    pos, mass, tree = snapshot
    acc_direct, _ = direct_accelerations(pos, mass, softening=1e-2)

    def err(theta):
        acc, _ = tree_accelerations(tree, theta=theta, softening=1e-2)
        return np.median(
            np.linalg.norm(acc - acc_direct, axis=1)
            / np.linalg.norm(acc_direct, axis=1)
        )

    assert err(0.3) < err(0.9)


def test_larger_theta_does_less_work(snapshot):
    _, _, tree = snapshot
    _, tight = tree_accelerations(tree, theta=0.3, softening=1e-2)
    _, loose = tree_accelerations(tree, theta=1.0, softening=1e-2)
    assert loose.interactions < tight.interactions


def test_theta_zero_rejected(snapshot):
    _, _, tree = snapshot
    with pytest.raises(ValueError):
        tree_accelerations(tree, theta=0.0)


def test_karp_traversal_matches_libm(snapshot):
    _, _, tree = snapshot
    a1, _ = tree_accelerations(tree, theta=0.6, softening=1e-2)
    a2, _ = tree_accelerations(tree, theta=0.6, softening=1e-2,
                               use_karp=True)
    assert np.allclose(a1, a2, rtol=1e-12)


def test_target_slice_equals_full_run(snapshot):
    _, _, tree = snapshot
    full, _ = tree_accelerations(tree, theta=0.7, softening=1e-2)
    spans = leaf_aligned_partition(tree, 4)
    pieces = []
    for lo, hi in spans:
        part, _ = tree_accelerations(
            tree, theta=0.7, softening=1e-2, target_slice=(lo, hi)
        )
        pieces.append(part)
    stitched_sorted = np.vstack(pieces)
    assert np.array_equal(tree.unsort(stitched_sorted), full)


def test_misaligned_slice_rejected(snapshot):
    _, _, tree = snapshot
    first_leaf = next(iter(tree.leaves()))
    if first_leaf.hi > 1:
        with pytest.raises(ValueError):
            tree_accelerations(tree, target_slice=(first_leaf.lo + 1,
                                                   tree.n_particles))


def test_partition_covers_and_balances(snapshot):
    _, _, tree = snapshot
    n = tree.n_particles
    for parts in (1, 2, 5, 24):
        spans = leaf_aligned_partition(tree, parts)
        assert spans[0][0] == 0
        assert spans[-1][1] == n
        for (a, b), (c, d) in zip(spans, spans[1:]):
            assert b == c
    with pytest.raises(ValueError):
        leaf_aligned_partition(tree, 0)


def test_work_weighted_partition_balances_work(snapshot):
    _, _, tree = snapshot
    _, stats = tree_accelerations(tree, theta=0.7, softening=1e-2)
    work = work_per_particle(tree, stats)
    weights_sorted = work[tree.order]
    spans = leaf_aligned_partition(tree, 6, weights_sorted)
    loads = [weights_sorted[lo:hi].sum() for lo, hi in spans]
    naive = leaf_aligned_partition(tree, 6)
    naive_loads = [weights_sorted[lo:hi].sum() for lo, hi in naive]
    assert max(loads) <= max(naive_loads) * 1.05


# --- integrator & simulation -------------------------------------------------


def test_leapfrog_two_body_circular_orbit():
    """A circular two-body orbit must stay circular over many steps."""
    m = np.array([1.0, 1.0])
    d = 1.0                      # separation; orbit radius is d/2
    # Each body: a = G*m/d^2 = 1, centripetal v^2/(d/2) = a.
    v = np.sqrt(d / 2.0)
    pos = np.array([[-d / 2, 0, 0], [d / 2, 0, 0]])
    vel = np.array([[0, -v, 0], [0, v, 0]])

    def accel(p):
        return direct_accelerations(p, m, softening=0.0)

    acc, _ = accel(pos)
    radii = []
    for _ in range(200):
        pos, vel, acc, _ = leapfrog_step(pos, vel, acc, 0.01, accel)
        radii.append(np.linalg.norm(pos[0] - pos[1]))
    assert np.ptp(radii) < 0.02


def test_leapfrog_rejects_bad_dt():
    with pytest.raises(ValueError):
        leapfrog_step(
            np.zeros((1, 3)), np.zeros((1, 3)), np.zeros((1, 3)), 0.0,
            lambda p: (np.zeros_like(p), 0),
        )


def test_simulation_energy_conservation():
    cfg = SimConfig(n=600, steps=5, dt=1e-3, theta=0.6, softening=1e-2)
    result = NBodySimulation(cfg).run()
    assert result.energy_drift < 1e-4
    assert result.total_flops > 0
    assert len(result.records) == 5


def test_simulation_flop_ledger_consistent():
    cfg = SimConfig(n=400, steps=2, softening=1e-2)
    result = NBodySimulation(cfg).run(compute_energy=False)
    assert result.virtual_seconds(1e9) == pytest.approx(
        result.total_flops / 1e9
    )
    assert result.sustained_gflops(87.5e6) == pytest.approx(0.0875)


@pytest.mark.parametrize("ic", ["plummer", "cube", "collision"])
def test_all_ics_run(ic):
    cfg = SimConfig(n=200, steps=1, ic=ic, softening=1e-2)
    result = NBodySimulation(cfg).run(compute_energy=False)
    assert np.all(np.isfinite(result.pos))


def test_unknown_ic_rejected():
    with pytest.raises(ValueError):
        SimConfig(ic="magic").make_ic()


def test_plummer_properties():
    pos, vel, mass = plummer_sphere(5000, seed=11)
    # Centre-of-mass frame.
    assert np.allclose(pos.mean(axis=0), 0, atol=1e-12)
    assert np.allclose(vel.mean(axis=0), 0, atol=1e-12)
    assert mass.sum() == pytest.approx(1.0)
    # Half-mass radius of a Plummer sphere ~ 1.3 scale radii.
    radii = np.sort(np.linalg.norm(pos, axis=1))
    assert 0.9 < radii[2500] < 1.8


def test_two_clusters_structure():
    pos, vel, mass = two_clusters(1000, separation=6.0)
    assert (pos[:, 0] < 0).sum() == pytest.approx(500, abs=50)
    assert mass.sum() == pytest.approx(1.0)


def test_density_image_and_ascii():
    pos, _, mass = plummer_sphere(2000, seed=4)
    image = density_image(pos, mass, bins=32)
    assert image.shape == (32, 32)
    assert image.sum() == pytest.approx(mass.sum(), rel=0.2)
    art = ascii_render(image)
    assert len(art.splitlines()) == 32
