"""The guest program library runs correctly on the golden model."""

import numpy as np
import pytest

from repro.isa import programs
from repro.isa.machine import run_program


@pytest.mark.parametrize("builder", programs.SUPPORT_KERNELS)
def test_support_kernels_verify(builder):
    wl = builder()
    state, _ = run_program(wl.program, wl.make_state(), max_steps=10**7)
    assert wl.check(state), wl.name


@pytest.mark.parametrize("builder", programs.MICROKERNELS)
def test_microkernels_verify(builder):
    wl = builder(n=24, passes=3)
    state, stats = run_program(wl.program, wl.make_state(), max_steps=10**7)
    assert wl.check(state)
    assert stats.instructions > 0
    assert stats.flops > 0


def test_karp_reference_accuracy():
    x = np.random.default_rng(1).uniform(1.0, 4.0 - 1e-9, 500)
    approx = programs.karp_rsqrt_reference(x)
    exact = 1.0 / np.sqrt(x)
    assert np.max(np.abs(approx - exact) / exact) < 1e-12


def test_karp_guest_matches_numpy_reference(micro_karp):
    # The guest uses a fused multiply-add for the interpolation (one
    # rounding) while the NumPy reference rounds twice, so agreement is
    # to within a couple of ulps, not bitwise.
    state, _ = run_program(micro_karp.program, micro_karp.make_state())
    out = micro_karp.read_output(state)
    assert np.allclose(out, micro_karp.expected, rtol=5e-16, atol=0.0)


def test_math_and_karp_agree_numerically():
    m = programs.gravity_microkernel_math(n=20, passes=1)
    k = programs.gravity_microkernel_karp(n=20, passes=1)
    # Same seed, same inputs: outputs must agree to Newton precision.
    assert np.allclose(m.expected, k.expected, rtol=1e-10)


def test_nominal_flops_accounting():
    wl = programs.gravity_microkernel_math(n=10, passes=7)
    assert wl.nominal_flops == programs.MICROKERNEL_FLOPS * 10 * 7


def test_workload_check_rejects_wrong_output(micro_math):
    state, _ = run_program(micro_math.program, micro_math.make_state())
    state.mem.store_fp(programs.OUTPUT_BASE, 1e9)
    assert not micro_math.check(state)


def test_fib_value():
    wl = programs.fib(n=10)
    state, _ = run_program(wl.program, wl.make_state())
    assert state.mem.load_int(programs.OUTPUT_BASE) == 55


def test_int_checksum_matches_python():
    wl = programs.int_checksum(n=137, state=999)
    state, _ = run_program(wl.program, wl.make_state())
    x = 999
    for _ in range(137):
        x = (x * 3 + 7) & 0xFFFF
    assert state.mem.load_int(programs.OUTPUT_BASE) == x
