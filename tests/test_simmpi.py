"""SimMPI: point-to-point semantics, collectives, runtime behaviour."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.network.timing import IdealFabric, star_fabric
from repro.simmpi import DeadlockError, SimMpiRuntime
from repro.simmpi.comm import payload_nbytes


def run(size, fn, fabric=None, **kw):
    runtime = SimMpiRuntime(
        size, fabric=fabric if fabric is not None else star_fabric(size), **kw
    )
    return runtime.run(fn)


def test_payload_sizes():
    assert payload_nbytes(np.zeros(100)) == 816
    assert payload_nbytes(b"abc") == 19
    assert payload_nbytes(3.14) == 24
    assert payload_nbytes(None) == 8
    assert payload_nbytes({"a": 1}) > 0


def test_pingpong_roundtrip():
    def prog(comm):
        if comm.rank == 0:
            comm.send(1, np.arange(10.0))
            back = yield from comm.recv(1)
            return float(back.sum())
        data = yield from comm.recv(0)
        comm.send(0, data * 3)
        return None

    result = run(2, prog)
    assert result.results[0] == 3 * sum(range(10))
    assert result.elapsed_s > 0
    assert result.total_messages == 2


def test_tag_matching():
    def prog(comm):
        if comm.rank == 0:
            comm.send(1, "second", tag=2)
            comm.send(1, "first", tag=1)
            return None
        a = yield from comm.recv(0, tag=1)
        b = yield from comm.recv(0, tag=2)
        return (a, b)

    result = run(2, prog)
    assert result.results[1] == ("first", "second")


def test_any_source_receive():
    def prog(comm):
        if comm.rank == 0:
            got = []
            for _ in range(comm.size - 1):
                msg = yield from comm.recv()
                got.append(msg)
            return sorted(got)
        comm.send(0, comm.rank)
        return None

    result = run(4, prog)
    assert result.results[0] == [1, 2, 3]


def test_fifo_per_source_and_tag():
    def prog(comm):
        if comm.rank == 0:
            for i in range(5):
                comm.send(1, i)
            return None
        seen = []
        for _ in range(5):
            v = yield from comm.recv(0)
            seen.append(v)
        return seen

    result = run(2, prog)
    assert result.results[1] == [0, 1, 2, 3, 4]


def test_deadlock_detection():
    def prog(comm):
        # Everyone receives from a message that never comes.
        _ = yield from comm.recv((comm.rank + 1) % comm.size, tag=9)
        return None

    with pytest.raises(DeadlockError):
        run(2, prog)


def test_non_generator_program_rejected():
    def prog(comm):
        return 42

    with pytest.raises(TypeError):
        run(2, prog)


def test_compute_advances_clock():
    def prog(comm):
        comm.compute(1.5)
        if False:
            yield
        return comm.clock

    result = run(3, prog)
    assert all(c == pytest.approx(1.5) for c in result.results)
    assert result.elapsed_s == pytest.approx(1.5)


def test_compute_flops_uses_runtime_rate():
    def prog(comm):
        comm.compute_flops(1e6)
        if False:
            yield
        return comm.clock

    result = run(2, prog, flop_rate=1e8)
    assert result.results[0] == pytest.approx(0.01)


def test_compute_flops_without_rate_raises():
    def prog(comm):
        comm.compute_flops(100.0)
        if False:
            yield
        return None

    with pytest.raises(ValueError):
        run(1, prog)


def test_message_time_depends_on_size():
    def prog_factory(nbytes):
        def prog(comm):
            if comm.rank == 0:
                comm.send(1, np.zeros(nbytes // 8))
                return None
            _ = yield from comm.recv(0)
            return comm.clock
        return prog

    small = run(2, prog_factory(1_000)).results[1]
    large = run(2, prog_factory(1_000_000)).results[1]
    assert large > small


# -- collectives --------------------------------------------------------------


@pytest.mark.parametrize("size", [1, 2, 3, 5, 8, 16, 24])
def test_collectives_all_sizes(size):
    def prog(comm):
        root = min(2, comm.size - 1)
        x = "payload" if comm.rank == root else None
        x = yield from comm.bcast(x, root=root)
        assert x == "payload"
        total = yield from comm.allreduce(comm.rank)
        assert total == sum(range(comm.size))
        gathered = yield from comm.allgather(comm.rank * 2)
        assert gathered == [2 * i for i in range(comm.size)]
        yield from comm.barrier()
        at_root = yield from comm.gather(comm.rank + 10, root=0)
        if comm.rank == 0:
            assert at_root == [i + 10 for i in range(comm.size)]
        else:
            assert at_root is None
        items = (
            [f"i{j}" for j in range(comm.size)] if comm.rank == 0 else None
        )
        mine = yield from comm.scatter(items, root=0)
        assert mine == f"i{comm.rank}"
        outbound = [comm.rank * 100 + j for j in range(comm.size)]
        inbound = yield from comm.alltoall(outbound)
        assert inbound == [j * 100 + comm.rank for j in range(comm.size)]
        return True

    result = run(size, prog)
    assert all(result.results)


def test_reduce_with_numpy_arrays():
    def prog(comm):
        arr = np.full(8, float(comm.rank + 1))
        total = yield from comm.reduce(arr, root=0)
        if comm.rank == 0:
            return float(total[0])
        return None

    result = run(5, prog)
    assert result.results[0] == sum(range(1, 6))


def test_reduce_custom_op():
    def prog(comm):
        result = yield from comm.allreduce(comm.rank + 1, op=lambda a, b: a * b)
        return result

    result = run(4, prog)
    assert all(r == 24 for r in result.results)


def test_reduce_order_is_deterministic():
    def prog(comm):
        # Non-commutative op exposes any ordering change.
        text = yield from comm.reduce(str(comm.rank), op=lambda a, b: a + b,
                                      root=0)
        return text

    first = run(6, prog).results[0]
    second = run(6, prog).results[0]
    assert first == second
    assert sorted(first) == list("012345")


def test_scatter_requires_full_list():
    def prog(comm):
        items = [1] if comm.rank == 0 else None
        _ = yield from comm.scatter(items, root=0)
        return None

    with pytest.raises(ValueError):
        run(2, prog)


def test_collectives_cost_grows_with_size():
    def prog(comm):
        _ = yield from comm.allgather(np.zeros(1000))
        return comm.clock

    t4 = run(4, prog).elapsed_s
    t16 = run(16, prog).elapsed_s
    assert t16 > t4


def test_ideal_fabric_is_faster():
    def prog(comm):
        _ = yield from comm.allgather(np.zeros(10_000))
        return None

    real = run(8, prog).elapsed_s
    ideal = run(8, prog, fabric=IdealFabric(8)).elapsed_s
    assert ideal < real


def test_sendrecv_shift():
    def prog(comm):
        right = (comm.rank + 1) % comm.size
        left = (comm.rank - 1) % comm.size
        got = yield from comm.sendrecv(right, comm.rank, src=left)
        return got

    result = run(6, prog)
    assert list(result.results) == [(i - 1) % 6 for i in range(6)]


def test_runtime_validation():
    with pytest.raises(ValueError):
        SimMpiRuntime(0)
    with pytest.raises(ValueError):
        SimMpiRuntime(8, fabric=IdealFabric(4))


# -- payload sizing edge cases ------------------------------------------------

def test_payload_sizes_numpy_scalars_and_empties():
    # NumPy scalars take the fixed numeric cost, not the pickle path.
    assert payload_nbytes(np.float64(1.5)) == 24
    assert payload_nbytes(np.int32(7)) == 24
    # Empty payloads still pay the header.
    assert payload_nbytes(b"") == 16
    assert payload_nbytes(bytearray()) == 16
    assert payload_nbytes(np.empty(0)) == 16


def test_payload_sizes_nested_containers_of_arrays():
    # Containers of arrays go through pickle, which keeps the raw
    # buffer bytes - the wire cost must never undercount the data.
    nested = {"pos": np.zeros((4, 3)), "mass": [np.ones(4), np.ones(2)]}
    raw_bytes = 4 * 3 * 8 + 4 * 8 + 2 * 8
    assert payload_nbytes(nested) > raw_bytes

    pair = (np.zeros(8), np.zeros(8))
    assert payload_nbytes(pair) > 2 * 8 * 8 + 16


# -- collective tag isolation -------------------------------------------------

def test_back_to_back_collectives_use_distinct_tags():
    from repro.simmpi.comm import RankComm

    runtime = SimMpiRuntime(2, fabric=star_fabric(2))
    comm = RankComm(0, 2, runtime)
    first = comm._next_coll_tag(5)
    second = comm._next_coll_tag(5)
    assert first != second          # same kind, different call sites
    assert first < 0 and second < 0  # reserved (negative) tag space


def test_back_to_back_same_kind_collectives_do_not_cross_match():
    def prog(comm):
        # Skew entry times so ranks reach the second collective while
        # others are still draining the first.
        comm.compute(1e-3 * comm.rank)
        first = yield from comm.allreduce(comm.rank)
        second = yield from comm.allreduce(1)
        gathered = yield from comm.allgather(("a", comm.rank))
        regathered = yield from comm.allgather(("b", comm.rank))
        return (first, second, gathered[0][0], regathered[0][0])

    result = run(6, prog)
    assert list(result.results) == [(15, 6, "a", "b")] * 6


# -- posting semantics --------------------------------------------------------

def test_send_overhead_charged_before_fabric_post():
    from repro.network.nic import FAST_ETHERNET_NIC

    def prog(comm):
        if comm.rank == 0:
            comm.send(1, b"x" * 100)
            return comm.clock
        data = yield from comm.recv(0)
        return len(data)

    fabric = star_fabric(2)
    result = run(2, prog, fabric=fabric)
    overhead = FAST_ETHERNET_NIC.send_overhead_s
    # The fabric sees the message only at NIC-accept time: the host
    # stack cost lands on the sender's clock before the transfer is
    # timed, so post_time equals the post-overhead clock.
    assert fabric.transfers[0].post_time == pytest.approx(overhead)
    assert result.results[0] == pytest.approx(overhead)
    assert result.results[1] == 100
