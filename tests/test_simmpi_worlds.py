"""SimMPI edge cases: empty payloads, single-rank worlds, world isolation."""

import numpy as np
import pytest

from repro.core.events import EventKernel
from repro.network.timing import star_fabric
from repro.simmpi import NodeFailureError, SimMpiRuntime


def run(size, fn, **kw):
    return SimMpiRuntime(size, fabric=star_fabric(size), **kw).run(fn)


# ---------------------------------------------------------------------------
# Zero-byte payloads
# ---------------------------------------------------------------------------

def test_zero_byte_point_to_point():
    def prog(comm):
        if comm.rank == 0:
            comm.send(1, b"")
            return None
        return (yield from comm.recv(0))

    result = run(2, prog)
    assert result.results[1] == b""
    assert result.total_messages == 1


def test_zero_size_array_collectives():
    empty = np.zeros(0)

    def prog(comm):
        got = yield from comm.bcast(empty if comm.rank == 0 else None)
        gathered = yield from comm.allgather(np.zeros(0))
        total = yield from comm.allreduce(np.zeros(0))
        return (got.size, [g.size for g in gathered], total.size)

    result = run(3, prog)
    for size, sizes, reduced in result.results:
        assert size == 0
        assert sizes == [0, 0, 0]
        assert reduced == 0


def test_zero_byte_messages_still_cost_latency():
    def prog(comm):
        if comm.rank == 0:
            comm.send(1, b"")
            return None
        yield from comm.recv(0)
        return comm.clock

    result = run(2, prog)
    # A zero-byte message still pays wire latency and software overhead.
    assert result.results[1] > 0


# ---------------------------------------------------------------------------
# Single-rank communicators
# ---------------------------------------------------------------------------

def test_single_rank_collectives_are_local():
    def prog(comm):
        yield from comm.barrier()
        b = yield from comm.bcast("solo")
        g = yield from comm.gather(comm.rank)
        ag = yield from comm.allgather(7)
        r = yield from comm.reduce(5.0)
        ar = yield from comm.allreduce(2.0)
        sc = yield from comm.scatter([41])
        a2a = yield from comm.alltoall(["x"])
        return (b, g, ag, r, ar, sc, a2a)

    result = run(1, prog)
    assert result.results[0] == ("solo", [0], [7], 5.0, 2.0, 41, ["x"])
    # No network traffic for a world of one.
    assert result.total_messages == 0
    assert result.total_bytes == 0


def test_single_rank_sendrecv_self():
    def prog(comm):
        comm.send(0, "loop")
        got = yield from comm.recv(0)
        return got

    result = run(1, prog)
    assert result.results[0] == "loop"


# ---------------------------------------------------------------------------
# Two concurrent worlds on one kernel
# ---------------------------------------------------------------------------

def test_overlapping_tags_stay_inside_their_world():
    """Two worlds exchanging on identical tags never cross-match."""
    kernel = EventKernel()

    def maker(payload):
        def prog(comm):
            # Deliberately the same explicit tags in both worlds.
            if comm.rank == 0:
                comm.send(1, payload, tag=42)
                back = yield from comm.recv(1, tag=42)
            else:
                got = yield from comm.recv(0, tag=42)
                comm.send(0, got * 2, tag=42)
                back = got
            gathered = yield from comm.allgather(back)
            return (back, gathered)
        return prog

    worlds = [
        SimMpiRuntime(2, fabric=star_fabric(2), kernel=kernel)
        for _ in range(2)
    ]
    done = {}
    worlds[0].launch(maker(10), on_complete=lambda r: done.setdefault(0, r))
    worlds[1].launch(maker(100), on_complete=lambda r: done.setdefault(1, r))
    kernel.run()
    assert done[0].results[0] == (20, [20, 10])
    assert done[1].results[0] == (200, [200, 100])
    assert done[0].results[1] == (10, [20, 10])
    assert done[1].results[1] == (100, [200, 100])


def test_staggered_launch_starts_at_virtual_time():
    kernel = EventKernel()

    def prog(comm):
        yield from comm.barrier()
        return comm.clock

    early = SimMpiRuntime(2, fabric=star_fabric(2), kernel=kernel)
    late = SimMpiRuntime(2, fabric=star_fabric(2), kernel=kernel)
    done = {}
    early.launch(prog, start_time=0.0,
                 on_complete=lambda r: done.setdefault("early", r))
    late.launch(prog, start_time=5.0,
                on_complete=lambda r: done.setdefault("late", r))
    kernel.run()
    assert done["late"].start_time_s == 5.0
    assert all(c >= 5.0 for c in done["late"].clocks)
    # Per-world elapsed time is measured from its own start.
    assert done["late"].elapsed_s == pytest.approx(
        done["early"].elapsed_s, rel=1e-9
    )


def test_launch_refuses_second_world_in_flight():
    runtime = SimMpiRuntime(2, fabric=star_fabric(2))

    def prog(comm):
        yield from comm.barrier()
        return None

    runtime.launch(prog)
    with pytest.raises(RuntimeError):
        runtime.launch(prog)


def test_kill_all_interrupts_every_rank():
    kernel = EventKernel()
    runtime = SimMpiRuntime(3, fabric=star_fabric(3), kernel=kernel)

    def prog(comm):
        for _ in range(50):
            comm.compute(1e-3)
            yield from comm.barrier()
        return "survived"

    done = []
    runtime.launch(prog, on_complete=done.append)
    kernel.at(0.01, lambda: runtime.kill_all(1, 0.01, detail="pulled blade"))
    kernel.run()
    assert len(done) == 1
    result = done[0]
    assert set(result.failed_ranks) == {0, 1, 2}
    assert "survived" not in result.results
    assert runtime.unfinished_ranks() == ()
    # The world's mailboxes are gone: a fresh launch works.
    def trivial(comm):
        yield from comm.barrier()
        return comm.rank

    fresh = []
    runtime.launch(trivial, on_complete=fresh.append)
    kernel.run()
    assert len(fresh) == 1
    assert fresh[0].results == (0, 1, 2)


def test_kill_all_after_finish_is_a_no_op():
    kernel = EventKernel()
    runtime = SimMpiRuntime(2, fabric=star_fabric(2), kernel=kernel)

    def prog(comm):
        yield from comm.barrier()
        return comm.rank

    done = []
    runtime.launch(prog, on_complete=done.append)
    kernel.run()
    assert len(done) == 1
    assert runtime.kill_all(0, kernel.now) == 0
    assert done[0].failed_ranks == ()


def test_failed_rank_error_reaches_programs():
    kernel = EventKernel()
    runtime = SimMpiRuntime(2, fabric=star_fabric(2), kernel=kernel)
    seen = []

    def prog(comm):
        try:
            for _ in range(50):
                comm.compute(1e-3)
                yield from comm.barrier()
        except NodeFailureError as err:
            seen.append((comm.rank, err.rank))
            raise
        return None

    done = []
    runtime.launch(prog, on_complete=done.append)
    kernel.at(0.005, lambda: runtime.kill_all(0, 0.005))
    kernel.run()
    assert sorted(seen) == [(0, 0), (1, 0)]
    assert done[0].completed_ranks == 0
