"""The scheduler's job-profile cache: bit-exact memoization, hard bypasses."""

import pytest

from repro.check import sched_outcome_digest
from repro.check.cachediff import manifest_trace_hash
from repro.check.replay import (
    _build_sched,
    _sched_params,
    record_sched_manifest,
)
from repro.platform.registry import platform_by_name
from repro.sched import (
    BatchScheduler,
    JobSpec,
    MicrokernelSweep,
    ProfileCache,
    SchedConfig,
    job_profile_key,
)
from repro.sched.profile_cache import JobProfile

METABLADE = platform_by_name("metablade")
RACK = platform_by_name("green-destiny-240")


def run_pair(seed, **overrides):
    """One config run cache-on and cache-off: digests plus outcomes."""
    digests, outcomes = {}, {}
    for cache_on in (True, False):
        params = _sched_params(
            seed, {**overrides, "profile_cache": cache_on}
        )
        outcome = _build_sched(params).run()
        digests[cache_on] = sched_outcome_digest(outcome)
        outcomes[cache_on] = outcome
    return digests, outcomes


def template_specs(count=3, nodes=2, workload=None):
    """Identical jobs from one template: maximal cache locality."""
    wl = workload if workload is not None else MicrokernelSweep(passes=2)
    est = 2.0 * wl.est_runtime_s(nodes, METABLADE.node_flop_rate())
    return [
        JobSpec(i, arrival_s=0.0, nodes=nodes, walltime_est_s=est,
                workload=wl)
        for i in range(count)
    ]


def run_templates(config=None, specs=None, prep=None, **kw):
    sched = BatchScheduler(platform=METABLADE, config=config, **kw)
    sched.submit_stream(specs if specs is not None else template_specs())
    if prep is not None:
        prep(sched)
    return sched.run()


# ---------------------------------------------------------------------------
# Property sweep: cache-on == cache-off, bit for bit
# ---------------------------------------------------------------------------

SWEEP = [
    {"policy": "fcfs"},
    {"policy": "backfill"},
    {"policy": "easy", "checkpoint": 2},
    {"policy": "fcfs", "fail_inject": True, "checkpoint": 1},
    {"policy": "backfill", "thermal": True, "thermal_accel": 150.0},
    {"policy": "backfill", "platform": "green-destiny-240"},
]


def _sweep_id(overrides):
    return ",".join(f"{k}={v}" for k, v in sorted(overrides.items()))


@pytest.mark.parametrize("seed", [2001, 4242])
@pytest.mark.parametrize("overrides", SWEEP, ids=_sweep_id)
def test_cache_on_off_outcomes_bit_identical(seed, overrides):
    digests, outcomes = run_pair(seed, jobs=6, **overrides)
    assert digests[True] == digests[False]
    on = outcomes[True]
    perturbed = (
        overrides.get("thermal", False) or on.failures_injected > 0
    )
    if perturbed:
        # Perturbable runs must never touch the fast path.
        assert on.cache_hits == 0 and on.cache_misses == 0
        # Requeued attempts each count a bypass, so >= the job count.
        assert on.cache_bypasses >= len(on.records)
    else:
        assert on.cache_bypasses == 0
        assert on.cache_misses > 0


@pytest.mark.parametrize(
    "overrides",
    [{"policy": "fcfs"}, {"policy": "backfill", "checkpoint": 2}],
    ids=_sweep_id,
)
def test_manifest_trace_hash_is_cache_agnostic(overrides):
    hashes = {}
    for cache_on in (True, False):
        manifest = record_sched_manifest(
            seed=2001, jobs=5, profile_cache=cache_on, **overrides
        )
        hashes[cache_on] = manifest_trace_hash(manifest)
        # Recording attaches an observer: the whole stream bypasses.
        assert manifest.params["profile_cache"] is cache_on
    assert hashes[True] == hashes[False]


# ---------------------------------------------------------------------------
# Hit/miss accounting
# ---------------------------------------------------------------------------

def test_identical_template_jobs_hit_after_first_miss():
    outcome = run_templates()
    assert outcome.cache_misses == 1
    assert outcome.cache_hits == 2
    assert outcome.cache_bypasses == 0
    ends = {r.end_s for r in outcome.records}
    assert all(r.state.value == "completed" for r in outcome.records)
    assert len(ends) >= 1            # replays land on the shared clock


def test_disabled_cache_keeps_fast_path_but_stores_nothing():
    sched = BatchScheduler(
        platform=METABLADE, config=SchedConfig(profile_cache=False)
    )
    sched.submit_stream(template_specs())
    outcome = sched.run()
    assert outcome.cache_hits == 0
    assert outcome.cache_misses == 3
    assert outcome.cache_bypasses == 0
    assert len(sched.profile_cache) == 0


# ---------------------------------------------------------------------------
# Bypass triggers: one test per condition
# ---------------------------------------------------------------------------

def _assert_all_bypassed(outcome):
    assert outcome.cache_hits == 0
    assert outcome.cache_misses == 0
    assert outcome.cache_bypasses == len(outcome.records)


def test_audit_mode_bypasses():
    _assert_all_bypassed(run_templates(config=SchedConfig(audit=True)))


def test_thermal_model_bypasses():
    _assert_all_bypassed(
        run_templates(config=SchedConfig(thermal=True, thermal_accel=150.0))
    )


def test_timeline_recording_bypasses():
    _assert_all_bypassed(run_templates(record_timeline=True))


def test_observer_bypasses():
    _assert_all_bypassed(
        run_templates(prep=lambda s: s.kernel.add_observer(lambda e: None))
    )


def test_fire_hook_bypasses():
    _assert_all_bypassed(
        run_templates(prep=lambda s: s.kernel.add_fire_hook(lambda e: None))
    )


def test_failure_injection_bypasses():
    def prep(sched):
        sched.inject_poisson_failures(
            horizon_s=1.0, mtbf_s=0.01, seed=7
        )
        assert sched.failures_injected > 0

    outcome = run_templates(prep=prep)
    assert outcome.cache_hits == 0
    assert outcome.cache_misses == 0
    assert outcome.cache_bypasses >= len(outcome.records)


def test_uncacheable_workload_bypasses():
    class OpaqueSweep(MicrokernelSweep):
        cacheable = False

    specs = template_specs(workload=OpaqueSweep(passes=2))
    _assert_all_bypassed(run_templates(specs=specs))


# ---------------------------------------------------------------------------
# The cache key
# ---------------------------------------------------------------------------

def _spec(job_id=0, arrival=0.0, nodes=2, workload=None):
    wl = workload if workload is not None else MicrokernelSweep(passes=2)
    return JobSpec(job_id, arrival_s=arrival, nodes=nodes,
                   walltime_est_s=1.0, workload=wl)


def test_key_ignores_queue_identity():
    config = SchedConfig()
    a = job_profile_key(_spec(job_id=0, arrival=0.0), METABLADE,
                        (0, 1), config)
    b = job_profile_key(_spec(job_id=9, arrival=5.0), METABLADE,
                        (0, 1), config)
    assert a == b


def test_key_separates_content_width_and_checkpoint_plan():
    config = SchedConfig()
    base = job_profile_key(_spec(), METABLADE, (0, 1), config)
    wider = job_profile_key(_spec(nodes=3), METABLADE, (0, 1, 2), config)
    other = job_profile_key(
        _spec(workload=MicrokernelSweep(passes=3)), METABLADE,
        (0, 1), config,
    )
    ckpt = job_profile_key(
        _spec(), METABLADE, (0, 1), SchedConfig(checkpoint_every=1)
    )
    assert len({base, wider, other, ckpt}) == 4


def test_key_star_fabric_is_placement_invariant():
    config = SchedConfig()
    a = job_profile_key(_spec(), METABLADE, (0, 1), config)
    b = job_profile_key(_spec(), METABLADE, (5, 9), config)
    assert a == b


def test_key_rack_fabric_sees_chassis_grouping():
    config = SchedConfig()
    npc = RACK.fabric.nodes_per_chassis
    assert npc >= 4
    same_chassis = job_profile_key(_spec(), RACK, (0, 1), config)
    same_grouping = job_profile_key(_spec(), RACK, (2, 3), config)
    split = job_profile_key(_spec(), RACK, (0, npc), config)
    assert same_chassis == same_grouping
    assert same_chassis != split


# ---------------------------------------------------------------------------
# ProfileCache mechanics
# ---------------------------------------------------------------------------

def _profile():
    return JobProfile(
        elapsed_s=1.0, clocks=(1.0, 1.0), result0=0.0, compute_s=0.5,
        flops=1e6, energy_j=2.0, checkpoints=0, checkpoint_io_s=0.0,
    )


def test_cache_store_counters_and_invalidate():
    cache = ProfileCache()
    assert cache.get(("k",)) is None and cache.misses == 1
    cache.put(("k",), _profile())
    assert cache.get(("k",)) is not None and cache.hits == 1
    assert len(cache) == 1
    assert cache.invalidate() == 1
    assert len(cache) == 0


def test_disabled_cache_never_stores_or_hits():
    cache = ProfileCache(enabled=False)
    cache.put(("k",), _profile())
    assert len(cache) == 0
    assert cache.get(("k",)) is None
    assert (cache.hits, cache.misses) == (0, 1)
