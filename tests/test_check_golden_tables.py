"""Golden-trace regression: committed manifests must regenerate exactly.

``tests/data`` holds committed manifests for the paper's two headline
artifacts (a small Table 2 scaling sweep, a small Fig. 3 run) and one
full batch-scheduler trace with failures and checkpointing enabled.
Any change that moves a number in those tables — or a single event in
the scheduler trace — fails here, naming the first divergent row or
event instead of just a hash.

Regenerate after an *intentional* change with::

    python -m repro.cli check --record tests/data/golden_table2.json \
        --kind table2
"""

import json
from pathlib import Path

import pytest

from repro.check import RunManifest, replay_manifest, verify_golden_manifest

DATA = Path(__file__).parent / "data"


def _load(name: str) -> RunManifest:
    return RunManifest.load(DATA / name)


@pytest.mark.parametrize("name", [
    "golden_table2.json", "golden_fig3.json",
])
def test_golden_manifests_verify(name):
    report = verify_golden_manifest(_load(name))
    assert report.ok, report.format()


def test_committed_sched_trace_replays_clean():
    manifest = _load("manifest_sched_small.json")
    assert manifest.params["fail_inject"] is True
    assert manifest.params["checkpoint"] == 1
    report = replay_manifest(manifest)
    assert report.ok, report.format()
    assert report.replayed_events == len(manifest.events)


def test_golden_payloads_have_the_expected_shape():
    table2 = _load("golden_table2.json")
    assert table2.payload["headers"]
    assert len(table2.payload["rows"]) == len(table2.params["cpus"])
    fig3 = _load("golden_fig3.json")
    assert fig3.payload["total_flops"] > 0
    assert len(fig3.payload["text_sha256"]) == 64


def test_tampered_golden_row_is_localized():
    manifest = _load("golden_table2.json")
    manifest.payload["rows"][1][1] = -1
    report = verify_golden_manifest(manifest)
    assert not report.ok
    assert report.divergence.index == 1
    assert "headers" in report.divergence.context


def test_tampered_golden_scalar_is_named():
    manifest = _load("golden_fig3.json")
    manifest.payload["art_sha256"] = "0" * 64
    report = verify_golden_manifest(manifest)
    assert not report.ok
    assert "art_sha256" in report.divergence.context[
        "differing payload keys"
    ]


def test_committed_files_are_valid_canonical_json():
    for path in sorted(DATA.glob("*.json")):
        doc = json.loads(path.read_text())
        assert doc["version"] == 1
        assert doc["config_hash"]
