"""Code Morphing Software: interpreter, translator, cache, orchestrator."""

import pytest

from repro.cms import CmsConfig, CodeMorphingSoftware
from repro.cms.tcache import TranslationCache
from repro.cms.translator import Translation
from repro.isa import programs
from repro.isa.assembler import assemble
from repro.isa.machine import run_program
from repro.vliw.engine import translate_block


def test_config_validation():
    with pytest.raises(ValueError):
        CmsConfig(hot_threshold=0)


def test_cms_matches_golden_on_all_kernels(all_small_workloads):
    for wl in all_small_workloads:
        golden, _ = run_program(wl.program, wl.make_state(), max_steps=10**7)
        cms = CodeMorphingSoftware(CmsConfig(hot_threshold=3))
        result = cms.run(wl.program, wl.make_state(), max_steps=10**7)
        assert (
            result.state.architectural_view() == golden.architectural_view()
        ), wl.name
        assert result.cycles > 0


@pytest.mark.parametrize("threshold", [1, 2, 8, 64, 10_000])
def test_threshold_never_changes_results(threshold, micro_karp):
    golden, _ = run_program(micro_karp.program, micro_karp.make_state())
    cms = CodeMorphingSoftware(CmsConfig(hot_threshold=threshold))
    result = cms.run(micro_karp.program, micro_karp.make_state())
    assert result.state.architectural_view() == golden.architectural_view()


def test_hot_code_gets_translated(micro_math):
    cms = CodeMorphingSoftware(CmsConfig(hot_threshold=2))
    result = cms.run(micro_math.program, micro_math.make_state())
    assert result.translated_blocks > 0
    assert result.native_blocks > 0
    assert 0.0 < result.native_fraction <= 1.0


def test_pure_interpreter_with_huge_threshold(micro_math):
    cms = CodeMorphingSoftware(CmsConfig(hot_threshold=10**9))
    result = cms.run(micro_math.program, micro_math.make_state())
    assert result.translated_blocks == 0
    assert result.native_blocks == 0
    assert result.native_fraction == 0.0


def test_translation_amortisation(micro_karp):
    """More re-execution -> fewer cycles per guest instruction."""
    heavy = programs.gravity_microkernel_karp(n=32, passes=20)
    light = programs.gravity_microkernel_karp(n=32, passes=1)
    heavy_cms = CodeMorphingSoftware(CmsConfig(hot_threshold=4))
    light_cms = CodeMorphingSoftware(CmsConfig(hot_threshold=4))
    heavy_res = heavy_cms.run(heavy.program, heavy.make_state(),
                              max_steps=10**8)
    light_res = light_cms.run(light.program, light.make_state())
    heavy_cpi = heavy_res.cycles / heavy_res.guest_stats.instructions
    light_cpi = light_res.cycles / light_res.guest_stats.instructions
    assert heavy_cpi < light_cpi


def test_locality_premise(micro_karp):
    """A handful of hot blocks covers nearly all dynamic execution."""
    wl = programs.gravity_microkernel_karp(n=32, passes=10)
    cms = CodeMorphingSoftware(CmsConfig(hot_threshold=10**9))
    result = cms.run(wl.program, wl.make_state(), max_steps=10**8)
    hottest = result.profile.hottest(top=2)
    coverage = result.profile.coverage(
        tuple(b.entry_pc for b in hottest)
    )
    assert coverage > 0.9


# -- translation cache -----------------------------------------------------


def _translation(program, pc=0):
    return Translation(
        block=translate_block(program, pc), translation_cycles=100
    )


def test_tcache_hit_miss_and_lru():
    program = assemble("addi r1, r1, 1\nbnez r1, 0\naddi r2, r2, 1\nhalt")
    cache = TranslationCache(capacity_bytes=10**6)
    assert cache.lookup(0) is None
    t0 = _translation(program, 0)
    cache.insert(t0)
    assert cache.lookup(0) is t0
    assert cache.stats.hits == 1
    assert cache.stats.misses == 1


def test_tcache_eviction_under_pressure():
    program = assemble(
        "\n".join("addi r1, r1, 1" for _ in range(4)) + "\nhalt"
    )
    t = _translation(program, 0)
    size = t.block.code_bytes
    cache = TranslationCache(capacity_bytes=size)   # room for exactly one
    cache.insert(t)
    t2 = Translation(block=translate_block(program, 1), translation_cycles=1)
    cache.insert(t2)
    assert cache.stats.evictions == 1
    assert cache.lookup(t.block.entry_pc) is None
    assert cache.lookup(t2.block.entry_pc) is t2


def test_tcache_oversized_translation_not_cached():
    program = assemble(
        "\n".join("addi r1, r1, 1" for _ in range(8)) + "\nhalt"
    )
    cache = TranslationCache(capacity_bytes=4)
    cache.insert(_translation(program, 0))
    assert len(cache) == 0


def test_tcache_flush():
    program = assemble("addi r1, r1, 1\nhalt")
    cache = TranslationCache()
    cache.insert(_translation(program))
    cache.flush()
    assert len(cache) == 0
    assert cache.used_bytes == 0


def test_small_tcache_still_correct(micro_karp):
    """Thrashing the cache costs cycles, never correctness."""
    golden, _ = run_program(micro_karp.program, micro_karp.make_state())
    cms = CodeMorphingSoftware(
        CmsConfig(hot_threshold=1, tcache_bytes=64)
    )
    result = cms.run(micro_karp.program, micro_karp.make_state())
    assert result.state.architectural_view() == golden.architectural_view()
