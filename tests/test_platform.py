"""The declarative platform layer: spec, registry, builders, consumers.

Covers the issue's acceptance surface:

- golden regression: the registry-built MetaBlade platform reproduces
  Table 2 and Table 5 bit-identically to the legacy (default) path;
- spec round-trip: to/from dict equality and content-hash stability,
  plus hash sensitivity to any field perturbation;
- registry validation: every named platform builds its fabric /
  allocator / power model and survives an audited scheduler run;
- fabric equivalence: a 1-chassis rack fabric matches the star within
  the switch-hop (backplane serialisation) delta;
- scheduler + CLI wiring: green-destiny-240 runs end-to-end on the
  multi-level fabric, with endpoints placed by allocation;
- check integration: platform drift is reported distinctly from trace
  divergence, and pre-platform manifests still replay.
"""

from dataclasses import replace
from pathlib import Path

import pytest

from repro.check.manifest import RunManifest
from repro.check.replay import (
    record_sched_manifest,
    replay_manifest,
    verify_golden_manifest,
)
from repro.cluster.catalog import METABLADE, TABLE5_CLUSTERS
from repro.core.experiments import (
    experiment_table2,
    experiment_table5,
    experiment_timeline,
)
from repro.network.multilevel import RackTopology
from repro.network.timing import star_fabric
from repro.platform import (
    FabricSpec,
    METABLADE_PLATFORM,
    PLATFORM_REGISTRY,
    PlatformSpec,
    platform_by_name,
)
from repro.platform.smoke import run_smoke, smoke_platform
from repro.sched import BatchScheduler, SchedConfig, synthetic_stream

DATA = Path(__file__).parent / "data"


# ---------------------------------------------------------------------------
# Spec round trip and content hash
# ---------------------------------------------------------------------------

def test_spec_round_trips_through_dict():
    for spec in PLATFORM_REGISTRY.values():
        clone = PlatformSpec.from_dict(spec.to_dict())
        assert clone == spec
        assert clone.content_hash() == spec.content_hash()


def test_content_hash_is_stable_across_calls():
    spec = METABLADE_PLATFORM
    assert spec.content_hash() == spec.content_hash()
    assert spec.content_hash() == PlatformSpec.from_dict(
        spec.to_dict()
    ).content_hash()


@pytest.mark.parametrize("mutation", [
    {"nodes": 23},
    {"footprint_sqft": 7.0},
    {"acquisition_usd": 27_000.0},
    {"fabric": FabricSpec(kind="rack")},
    {"title": "MetaBlade Prime"},
])
def test_content_hash_moves_with_any_field(mutation):
    spec = METABLADE_PLATFORM
    assert replace(spec, **mutation).content_hash() != spec.content_hash()


def test_spec_validation_rejects_nonsense():
    with pytest.raises(ValueError):
        replace(METABLADE_PLATFORM, nodes=0)
    with pytest.raises(ValueError):
        replace(METABLADE_PLATFORM, footprint_sqft=0.0)
    with pytest.raises(ValueError):
        # 25 nodes cannot hang off the 24-port star switch.
        replace(METABLADE_PLATFORM, nodes=25)
    with pytest.raises(ValueError):
        FabricSpec(kind="hypercube")
    with pytest.raises(ValueError):
        replace(
            METABLADE_PLATFORM,
            processor=replace(
                METABLADE_PLATFORM.processor, name="Imaginary CPU"
            ),
        )


# ---------------------------------------------------------------------------
# Registry: every platform builds everything
# ---------------------------------------------------------------------------

def test_registry_builders_for_every_platform():
    for name, spec in PLATFORM_REGISTRY.items():
        assert spec.name == name
        fabric = spec.build_fabric(min(spec.nodes, 8))
        assert fabric.nodes == min(spec.nodes, 8)
        allocator = spec.build_allocator()
        assert allocator.free_count == spec.nodes
        assert spec.power_model().energy_joules(1.0) > 0.0
        assert spec.node_flop_rate() > 0.0
        assert spec.cluster().name == spec.title


def test_registry_clusters_round_trip_to_catalog():
    assert METABLADE_PLATFORM.cluster() == METABLADE
    for key, catalog in [
        ("alpha-beowulf", TABLE5_CLUSTERS[0]),
        ("athlon-beowulf", TABLE5_CLUSTERS[1]),
        ("piii-beowulf", TABLE5_CLUSTERS[2]),
        ("p4-beowulf", TABLE5_CLUSTERS[3]),
    ]:
        assert platform_by_name(key).cluster() == catalog


def test_registry_rejects_unknown_platform():
    with pytest.raises(KeyError, match="known:"):
        platform_by_name("connection-machine")


def test_smoke_passes_for_every_registry_platform(tmp_path):
    results, all_ok = run_smoke(out_dir=str(tmp_path))
    assert all_ok, [r.detail for r in results if not r.ok]
    assert len(results) == len(PLATFORM_REGISTRY)
    # No failures -> no report files.
    assert list(tmp_path.iterdir()) == []


def test_run_smoke_writes_failure_reports(tmp_path, monkeypatch):
    from repro.platform import smoke as smoke_mod

    def boom(spec, jobs=3, seed=2001):
        raise AssertionError(f"{spec.name}: deliberately broken")

    monkeypatch.setattr(smoke_mod, "smoke_platform", boom)
    results, all_ok = smoke_mod.run_smoke(out_dir=str(tmp_path))
    assert not all_ok
    assert all(not r.ok for r in results)
    written = sorted(p.name for p in tmp_path.iterdir())
    assert written == sorted(f"{n}.txt" for n in PLATFORM_REGISTRY)
    text = (tmp_path / written[0]).read_text()
    assert "deliberately broken" in text


def test_smoke_platform_summary_line():
    line = smoke_platform(platform_by_name("loki"), jobs=2, seed=5)
    assert "2/2 jobs" in line
    assert "16 blades" in line


# ---------------------------------------------------------------------------
# Golden regression: default paths are bit-identical
# ---------------------------------------------------------------------------

def test_table2_platform_metablade_matches_default():
    default = experiment_table2(n=400, steps=1, cpu_counts=(1, 2), seed=2001)
    via_platform = experiment_table2(
        n=400, steps=1, cpu_counts=(1, 2), seed=2001, platform="metablade"
    )
    assert via_platform.text == default.text
    assert via_platform.rows == default.rows
    assert "on MetaBlade" in default.text


def test_table2_golden_manifest_still_verifies():
    report = verify_golden_manifest(
        RunManifest.load(DATA / "golden_table2.json")
    )
    assert report.ok, report.format()


def test_table5_from_registry_platforms_matches_default():
    default = experiment_table5()
    clusters = [
        platform_by_name(key).cluster()
        for key in ("alpha-beowulf", "athlon-beowulf", "piii-beowulf",
                    "p4-beowulf", "metablade")
    ]
    via_platform = experiment_table5(clusters=clusters)
    assert via_platform.text == default.text


def test_table2_clips_cpu_counts_to_platform_nodes():
    with pytest.warns(UserWarning, match="loki has only 16 nodes"):
        result = experiment_table2(
            n=300, steps=1, cpu_counts=(1, 2, 64), seed=2001,
            platform="loki",
        )
    assert [row[0] for row in result.rows] == [1, 2]
    assert "on Loki" in result.text


# ---------------------------------------------------------------------------
# Fabric equivalence: 1-chassis rack vs star
# ---------------------------------------------------------------------------

def test_one_chassis_rack_matches_star_within_switch_hop():
    nodes, nbytes = 4, 1500
    star = star_fabric(nodes)
    rack = platform_by_name("green-destiny-240").build_fabric(nodes)
    assert isinstance(rack, RackTopology)
    assert rack.chassis_count == 1        # all four endpoints, one chassis
    # The star's extra cost per message is exactly the backplane
    # serialisation of the chassis switch hop.
    hop_delta = 8.0 * nbytes / star.switch.backplane_bps
    for src, dst in [(0, 1), (2, 3), (1, 0), (3, 2)]:
        t_star = star.send(src, dst, nbytes, post_time=0.0)
        t_rack = rack.send(src, dst, nbytes, post_time=0.0)
        assert t_star.arrive_time - t_rack.arrive_time == pytest.approx(
            hop_delta, abs=1e-12
        )
        star.reset()
        rack.reset()


def test_rack_fabric_places_endpoints_by_allocated_blades():
    gd = platform_by_name("green-destiny-240")
    # A 4-blade job scattered across two chassis (blades 0, 23 in
    # chassis 0; blades 24, 47 in chassis 1).
    fabric = gd.build_fabric(4, blades=[0, 23, 24, 47])
    assert [fabric.chassis_of(i) for i in range(4)] == [0, 0, 1, 1]
    # Intra-chassis stays off the uplink; inter-chassis crosses it.
    fabric.send(0, 1, 1000, post_time=0.0)
    assert fabric.uplink_busy_s(0) == 0.0
    fabric.send(0, 2, 1000, post_time=0.0)
    assert fabric.uplink_busy_s(0) > 0.0


def test_build_fabric_rejects_mismatched_blade_map():
    gd = platform_by_name("green-destiny-240")
    with pytest.raises(ValueError):
        gd.build_fabric(4, blades=[0, 1])
    with pytest.raises(ValueError):
        gd.build_fabric(1000)


# ---------------------------------------------------------------------------
# Scheduler on a platform
# ---------------------------------------------------------------------------

def test_sched_runs_audited_on_green_destiny_240():
    spec = platform_by_name("green-destiny-240")
    stream = synthetic_stream(
        jobs=6, max_nodes=30, flop_rate=spec.node_flop_rate(), seed=3
    )
    sched = BatchScheduler(platform=spec, config=SchedConfig(audit=True))
    assert sched.nodes == 240
    sched.submit_stream(stream)
    outcome = sched.run()
    assert len(outcome.completed) == 6
    assert outcome.nodes == 240


def test_sched_rejects_platform_and_machine_together():
    from repro.core.system import BladedBeowulf

    with pytest.raises(ValueError, match="not both"):
        BatchScheduler(
            machine=BladedBeowulf.metablade(),
            platform=METABLADE_PLATFORM,
        )


def test_sched_default_is_the_metablade_platform():
    sched = BatchScheduler()
    assert sched.platform is METABLADE_PLATFORM
    assert sched.nodes == 24
    assert sched.machine.cluster == METABLADE


def test_timeline_runs_on_a_rack_platform():
    result = experiment_timeline(
        ranks=3, n=300, limit=8, platform="green-destiny-240"
    )
    assert "on Green Destiny" in result.text
    assert result.extras["failed_ranks"] == 0.0


# ---------------------------------------------------------------------------
# Metrics: denominators from the spec
# ---------------------------------------------------------------------------

def test_throughput_report_platform_matches_cluster():
    from repro.metrics.throughput import throughput_report

    spec = METABLADE_PLATFORM
    stream = synthetic_stream(
        jobs=4, max_nodes=4, flop_rate=spec.node_flop_rate(), seed=9
    )
    sched = BatchScheduler(platform=spec)
    sched.submit_stream(stream)
    outcome = sched.run()
    via_cluster = throughput_report(outcome, METABLADE)
    via_platform = throughput_report(outcome, platform=spec)
    assert via_platform == via_cluster
    with pytest.raises(ValueError, match="not both"):
        throughput_report(outcome, METABLADE, platform=spec)


def test_topper_for_platform_matches_cluster_topper():
    from repro.metrics.topper import topper, topper_for_platform

    assert topper_for_platform(METABLADE_PLATFORM) == topper(METABLADE)


# ---------------------------------------------------------------------------
# Check integration: platform drift vs trace divergence
# ---------------------------------------------------------------------------

def test_sched_manifest_records_platform_hash():
    manifest = record_sched_manifest(seed=7, jobs=3)
    assert manifest.params["platform"] == "metablade"
    assert manifest.payload["platform"] == "metablade"
    assert (
        manifest.payload["platform_hash"]
        == METABLADE_PLATFORM.content_hash()
    )
    assert replay_manifest(manifest).ok


def test_platform_drift_reported_distinctly():
    manifest = record_sched_manifest(seed=7, jobs=3)
    manifest.payload["platform_hash"] = "f" * 64
    report = replay_manifest(manifest)
    assert not report.ok
    assert report.platform_drift is not None
    assert report.divergence is None           # trace never re-executed
    assert "PLATFORM CHANGED" in report.format()


def test_vanished_platform_is_drift_too():
    manifest = record_sched_manifest(seed=7, jobs=3)
    manifest.payload["platform"] = "decommissioned-rack"
    report = replay_manifest(manifest)
    assert not report.ok
    assert "no longer exists" in report.platform_drift


def test_preplatform_manifest_still_replays():
    manifest = RunManifest.load(DATA / "manifest_sched_small.json")
    assert "platform" not in manifest.params
    assert "platform_hash" not in manifest.payload
    report = replay_manifest(manifest)
    assert report.ok, report.format()
    assert report.platform_drift is None


def test_sched_manifest_on_rack_platform_replays():
    manifest = record_sched_manifest(
        seed=5, jobs=3, platform="green-destiny-240"
    )
    report = replay_manifest(manifest)
    assert report.ok, report.format()


# ---------------------------------------------------------------------------
# CLI wiring
# ---------------------------------------------------------------------------

def test_cli_platform_list_and_smoke(capsys):
    from repro.cli import main

    assert main(["platform"]) == 0
    out = capsys.readouterr().out
    for name in PLATFORM_REGISTRY:
        assert name in out


def test_cli_accepts_platform_flags():
    from repro.cli import build_parser

    parser = build_parser()
    args = parser.parse_args(["sched", "--platform", "green-destiny-240"])
    assert args.platform == "green-destiny-240"
    args = parser.parse_args(["table2", "--platform", "loki"])
    assert args.platform == "loki"
    args = parser.parse_args(["timeline", "--platform", "avalon"])
    assert args.platform == "avalon"
    with pytest.raises(SystemExit):
        parser.parse_args(["sched", "--platform", "not-a-machine"])
