"""The discrete-event kernel and everything scheduled on it.

Covers the kernel's ordering guarantees, the event-driven SimMPI
scheduler against a reference round-robin poller (the seed's design),
live node-failure injection, the LongRun DVFS governor and the unified
timeline.
"""

import random

import numpy as np
import pytest

from repro.cluster import (
    BLADED_OUTAGES,
    LiveFailureInjector,
    sample_failure_times,
)
from repro.core import experiment_timeline
from repro.core.events import EventKernel, Process
from repro.cpus.longrun import (
    TM5600_LONGRUN,
    LongRunGovernor,
    LongRunStep,
    dvfs_trajectory_study,
)
from repro.nbody.parallel import _split, parallel_nbody_step
from repro.nbody.sim import SimConfig
from repro.network.timing import star_fabric
from repro.simmpi import (
    DeadlockError,
    NodeFailureError,
    SimMpiRuntime,
    filter_timeline,
    render_timeline,
)
from repro.simmpi.comm import RankComm


# -- kernel ------------------------------------------------------------------

def test_events_fire_in_time_order():
    kernel = EventKernel()
    fired = []
    kernel.at(3.0, fired.append, "c")
    kernel.at(1.0, fired.append, "a")
    kernel.at(2.0, fired.append, "b")
    assert kernel.run() == 3.0
    assert fired == ["a", "b", "c"]


def test_same_time_events_fire_in_insertion_order():
    kernel = EventKernel()
    fired = []
    for label in "abcde":
        kernel.at(1.0, fired.append, label)
    kernel.run()
    assert fired == list("abcde")


def test_cancelled_events_never_fire():
    kernel = EventKernel()
    fired = []
    event = kernel.at(1.0, fired.append, "dead")
    kernel.at(2.0, fired.append, "live")
    event.cancel()
    assert kernel.pending() == 1
    kernel.run()
    assert fired == ["live"]
    assert kernel.fired == 1


def test_after_schedules_relative_to_now():
    kernel = EventKernel()
    seen = []
    kernel.at(5.0, lambda: kernel.after(2.0, lambda: seen.append(kernel.now)))
    kernel.run()
    assert seen == [7.0]


def test_run_until_stops_before_later_events():
    kernel = EventKernel()
    fired = []
    kernel.at(1.0, fired.append, "early")
    kernel.at(10.0, fired.append, "late")
    kernel.run(until=5.0)
    assert fired == ["early"]
    kernel.run()
    assert fired == ["early", "late"]


def test_negative_times_rejected():
    kernel = EventKernel()
    with pytest.raises(ValueError):
        kernel.at(-1.0, lambda: None)
    with pytest.raises(ValueError):
        kernel.after(-0.5, lambda: None)


def test_clock_never_moves_backwards():
    kernel = EventKernel()
    times = []
    # An event scheduled in the "past" fires at the current clock.
    kernel.at(5.0, lambda: kernel.at(1.0, lambda: times.append(kernel.now)))
    kernel.run()
    assert times == [5.0]


def test_trace_is_noop_unless_recording():
    silent = EventKernel()
    silent.trace("send", time=1.0, src=0)
    assert silent.timeline == []
    loud = EventKernel(record_timeline=True)
    loud.trace("send", time=1.0, src=0)
    assert loud.timeline[0].kind == "send"
    assert loud.timeline[0].get("src") == 0
    assert loud.timeline[0].get("missing", "x") == "x"


# -- processes ---------------------------------------------------------------

def test_process_runs_to_completion():
    kernel = EventKernel()

    def gen():
        yield "first"
        yield "second"
        return 42

    task = Process(kernel, gen(), on_block=lambda p, y: p.wake())
    task.start()
    kernel.run()
    assert task.finished and task.result == 42
    assert task.resumptions == 3        # start + two wakes


def test_process_wake_is_idempotent_while_scheduled():
    kernel = EventKernel()

    def gen():
        yield
        return "done"

    task = Process(kernel, gen(), on_block=lambda p, y: None)
    task.start()
    kernel.run()
    task.wake()
    task.wake()                          # second wake must not double-book
    assert kernel.pending() == 1
    kernel.run()
    assert task.result == "done"


def test_process_interrupt_throws_at_suspension_point():
    kernel = EventKernel()
    caught = []

    def gen():
        try:
            yield
        except RuntimeError as exc:
            caught.append(str(exc))
        return "recovered"

    task = Process(kernel, gen(), on_block=lambda p, y: None)
    task.start()
    kernel.run()
    task.interrupt(RuntimeError("boom"))
    kernel.run()
    assert caught == ["boom"]
    assert task.result == "recovered"


def test_process_uncaught_error_propagates_without_handler():
    kernel = EventKernel()

    def gen():
        yield
        raise ValueError("unhandled")

    task = Process(kernel, gen(), on_block=lambda p, y: p.wake())
    task.start()
    with pytest.raises(ValueError):
        kernel.run()


# -- the scheduling microbenchmark -------------------------------------------

def _treecode_program(config: SimConfig, cpus: int, flop_rate: float):
    """A Table 2 treecode step plus its per-step energy diagnostic.

    Treecodes close every step with a global energy/diagnostic
    reduction (energy conservation is the standard correctness check),
    so the benchmark program is the step's ring allgathers followed by
    a kinetic-energy allreduce.  The distinction matters for what this
    benchmark measures: on the ring allgathers both schedulers hit the
    resumption floor, because the seed poller's ascending sweep order
    happens to match the ring orientation (rank r receives from
    r - 1).  The allreduce's binomial bcast phase has no such luck -
    every rank sits blocked on the root while the reduce tree is still
    converging, and the poller resumes all of them once per sweep for
    nothing.  Wake-on-delivery pays exactly one resumption per block.
    """
    pos, vel, mass = config.make_ic()
    pos_parts = _split(pos, cpus)
    vel_parts = _split(vel, cpus)
    mass_parts = _split(mass, cpus)

    def program(comm):
        pos_new, vel_new = yield from parallel_nbody_step(
            comm,
            pos_parts[comm.rank],
            vel_parts[comm.rank],
            mass_parts[comm.rank],
            config,
            flop_rate,
        )
        ke_local = float(
            0.5 * np.sum(mass_parts[comm.rank]
                         * np.sum(vel_new * vel_new, axis=1))
        )
        ke_total = yield from comm.allreduce(ke_local)
        return pos_new, vel_new, ke_total

    return program


def _round_robin_poller(size: int, program, flop_rate: float):
    """The seed's scheduler: resume every alive rank once per sweep.

    O(alive ranks) generator resumptions per sweep whether or not a rank
    can progress — the baseline the event-driven scheduler is measured
    against.
    """
    runtime = SimMpiRuntime(
        size, fabric=star_fabric(size), flop_rate=flop_rate
    )
    comms = [RankComm(r, size, runtime) for r in range(size)]
    gens = [program(c) for c in comms]
    alive = set(range(size))
    results = [None] * size
    resumptions = 0
    while alive:
        before = (runtime._consumed, runtime._posted)
        done = []
        for rank in sorted(alive):
            resumptions += 1
            try:
                next(gens[rank])
            except StopIteration as stop:
                results[rank] = stop.value
                done.append(rank)
        alive.difference_update(done)
        if alive and not done \
                and (runtime._consumed, runtime._posted) == before:
            raise RuntimeError("reference poller made no progress")
    return results, [c.clock for c in comms], resumptions


def test_event_scheduler_beats_polling_on_24_rank_treecode():
    cpus, rate = 24, 1e8
    config = SimConfig(n=1200, steps=1, theta=0.7, softening=1e-2)

    ref_results, ref_clocks, ref_resumptions = _round_robin_poller(
        cpus, _treecode_program(config, cpus, rate), rate
    )

    runtime = SimMpiRuntime(
        cpus, fabric=star_fabric(cpus), flop_rate=rate
    )
    run = runtime.run(_treecode_program(config, cpus, rate))

    # Fewer generator resumptions: wakes track deliveries, not sweeps.
    # (Measured: the poller wastes ~25% of its resumptions in the
    # diagnostic allreduce's bcast fan-out; see _treecode_program.)
    assert run.resumptions < ref_resumptions

    # And the physics and virtual clocks are unchanged by the scheduler.
    for (ref_pos, ref_vel, ref_ke), (new_pos, new_vel, new_ke) in zip(
        ref_results, run.results
    ):
        assert np.array_equal(ref_pos, new_pos)
        assert np.array_equal(ref_vel, new_vel)
        assert ref_ke == new_ke
    # Clocks agree to hub-arbitration order: the star hub serialises
    # transfers in the order sends reach it, and the two schedulers
    # reach it in different host order during the reduce fan-in.
    assert list(run.clocks) == pytest.approx(ref_clocks, rel=1e-5)


# -- failure injection -------------------------------------------------------

def _ring_program(steps: int):
    def program(comm):
        acc = comm.rank
        for step in range(steps):
            comm.compute_flops(1e6)
            comm.send((comm.rank + 1) % comm.size, acc, tag=step)
            try:
                acc += (
                    yield from comm.recv(
                        src=(comm.rank - 1) % comm.size, tag=step
                    )
                )
            except NodeFailureError as exc:
                if exc.rank == comm.rank:
                    raise          # our own node died: no recovery
                # A neighbour died: degrade and keep iterating.
        return acc
    return program


def test_mid_run_failure_yields_degraded_but_completed_run():
    runtime = SimMpiRuntime(4, flop_rate=1e8)
    runtime.fail_at(0.15, 2, detail="psu")
    result = runtime.run(_ring_program(steps=40))
    assert result.failed_ranks == (2,)
    assert result.completed_ranks == 3
    assert result.results[2] is None
    for rank in (0, 1, 3):
        assert result.results[rank] is not None


def test_recv_from_failed_rank_drains_mailbox_first():
    def program(comm):
        if comm.rank == 0:
            comm.send(1, "payload")
            yield from comm.recv(src=1, tag=99)     # blocks until killed
            return None
        first = yield from comm.recv(src=0)
        try:
            yield from comm.recv(src=0)
            return (first, "unexpected")
        except NodeFailureError as exc:
            return (first, "failed", exc.rank)

    runtime = SimMpiRuntime(2, flop_rate=1e8)
    runtime.fail_at(0.01, 0)
    result = runtime.run(program)
    assert result.failed_ranks == (0,)
    assert result.results[1] == ("payload", "failed", 0)


def test_fail_at_validates_rank():
    runtime = SimMpiRuntime(2)
    with pytest.raises(ValueError):
        runtime.fail_at(1.0, 5)


def test_live_failure_injector_bridges_hub_and_runtime():
    runtime = SimMpiRuntime(4, flop_rate=1e8)
    injector = LiveFailureInjector(runtime, profile=BLADED_OUTAGES)
    injector.fail_rank(0.15, rank=2, detail="psu")
    result = runtime.run(_ring_program(steps=40))
    assert result.failed_ranks == (2,)
    failures = injector.hub.failures()
    assert [e.node for e in failures] == [2]
    assert injector.hub.mean_time_to_detect_h() == pytest.approx(
        injector.hub.detection_latency_h
    )
    assert injector.lost_cpu_hours() == BLADED_OUTAGES.outage_hours


def test_sample_failure_times_is_a_poisson_draw():
    assert sample_failure_times(random.Random(0), 0.0, 100.0) == []
    times = sample_failure_times(random.Random(0), 0.5, 1000.0)
    assert all(0 <= t < 1000.0 for t in times)
    assert times == sorted(times)
    assert 350 < len(times) < 650          # ~Poisson(500)


# -- rich deadlock reporting -------------------------------------------------

def test_deadlock_error_reports_waiters_and_mailboxes():
    def program(comm):
        if comm.rank == 0:
            comm.send(1, b"x" * 100, tag=7)
            yield from comm.recv(src=1, tag=1)
        else:
            yield from comm.recv(src=0, tag=3)

    runtime = SimMpiRuntime(2, fabric=star_fabric(2))
    with pytest.raises(DeadlockError) as excinfo:
        runtime.run(program)
    err = excinfo.value
    assert err.blocked[0] == (1, 1)
    assert err.blocked[1] == (0, 3)
    assert err.mailboxes[0] == []
    assert err.mailboxes[1] == [(0, 7, 116)]
    text = str(err)
    assert "rank 0" in text and "rank 1" in text
    assert "tag=3" in text and "116B" in text


# -- the LongRun governor ----------------------------------------------------

def test_governor_defaults_to_top_step():
    governor = LongRunGovernor(TM5600_LONGRUN)
    assert governor.step_at_time(0.0) == TM5600_LONGRUN.top
    assert governor.frequency_scale(123.0) == 1.0


def test_governor_advance_splits_charge_across_a_transition():
    model = TM5600_LONGRUN
    governor = LongRunGovernor(model)
    low = min(model.ladder, key=lambda s: s.mhz)
    governor.step_at(1.0, low)
    base = 1e8
    elapsed, energy = governor.advance(0.0, 1.5e8, base)
    low_rate = base * low.mhz / model.top.mhz
    assert elapsed == pytest.approx(1.0 + 0.5e8 / low_rate)
    expected_energy = (
        model.power_watts(model.top) * 1.0
        + model.power_watts(low) * (elapsed - 1.0)
    )
    assert energy == pytest.approx(expected_energy)


def test_governor_rejects_off_ladder_steps():
    governor = LongRunGovernor(TM5600_LONGRUN)
    with pytest.raises(ValueError):
        governor.step_at(1.0, LongRunStep(123.0, 1.0))
    with pytest.raises(ValueError):
        governor.step_at(-1.0, TM5600_LONGRUN.top)


def test_governor_changes_flop_rate_mid_run():
    model = TM5600_LONGRUN
    kernel = EventKernel()
    governor = LongRunGovernor(model, kernel=kernel)
    low = min(model.ladder, key=lambda s: s.mhz)
    governor.step_at(1.0, low)
    runtime = SimMpiRuntime(
        1, flop_rate=1e6, kernel=kernel, governor=governor
    )

    def program(comm):
        comm.compute_flops(1e6)     # exactly one second at the top step
        comm.compute_flops(1e6)     # entirely at the low step
        if False:
            yield
        return comm.clock

    result = runtime.run(program)
    assert result.clocks[0] == pytest.approx(
        1.0 + model.top.mhz / low.mhz
    )
    assert result.stats[0].energy_j > 0


def test_dvfs_trajectory_trades_time_for_energy():
    stepped, flat = dvfs_trajectory_study(ranks=3, phases=5)
    assert stepped.elapsed_s > flat.elapsed_s
    assert stepped.energy_j < flat.energy_j
    assert stepped.avg_power_watts < flat.avg_power_watts
    assert len(stepped.transitions) == len(TM5600_LONGRUN.ladder) - 1


def test_dvfs_transitions_land_on_the_shared_timeline():
    kernel = EventKernel(record_timeline=True)
    governor = LongRunGovernor(TM5600_LONGRUN, kernel=kernel)
    low = min(TM5600_LONGRUN.ladder, key=lambda s: s.mhz)
    governor.step_at(0.5, low)
    kernel.run()
    dvfs = filter_timeline(kernel.sorted_timeline(), kinds=("dvfs",))
    assert len(dvfs) == 1
    assert dvfs[0].time == 0.5
    assert dvfs[0].get("mhz") == low.mhz


# -- the unified timeline ----------------------------------------------------

def test_timeline_is_time_coherent_across_layers():
    kernel = EventKernel(record_timeline=True)
    runtime = SimMpiRuntime(
        3, fabric=star_fabric(3), flop_rate=1e8, kernel=kernel
    )

    def program(comm):
        comm.compute_flops(1e6)
        total = yield from comm.allreduce(comm.rank)
        return total

    runtime.run(program)
    events = kernel.sorted_timeline()
    kinds = {e.kind for e in events}
    # Scheduler, fabric and NIC layers all post onto one clock.
    assert {"start", "send", "block", "wake", "finish"} <= kinds
    assert "link-up" in kinds and "switch" in kinds
    times = [e.time for e in events]
    assert times == sorted(times)


def test_filter_timeline_by_kind_and_rank():
    kernel = EventKernel(record_timeline=True)
    kernel.trace("send", time=1.0, src=0, dst=1)
    kernel.trace("block", time=2.0, rank=1)
    kernel.trace("block", time=3.0, rank=0)
    assert len(filter_timeline(kernel.timeline, kinds=("block",))) == 2
    only = filter_timeline(kernel.timeline, kinds=("block",), rank=0)
    assert [e.time for e in only] == [3.0]


def test_render_timeline_formats_and_limits():
    kernel = EventKernel(record_timeline=True)
    for i in range(5):
        kernel.trace("send", time=float(i), src=i, dst=0)
    text = render_timeline(kernel.sorted_timeline(), limit=2)
    assert "Event timeline" in text
    assert "src=0" in text and "src=1" in text
    assert "src=4" not in text
    assert "3 more events" in text


def test_experiment_timeline_end_to_end():
    result = experiment_timeline(ranks=4, n=400, limit=10)
    assert result.extras["events"] > 0
    assert result.extras["failed_ranks"] == 0
    assert "Event timeline" in result.text
    kinds = {row[0] for row in result.rows}
    assert "send" in kinds and "wake" in kinds
