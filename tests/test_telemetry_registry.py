"""Unit behavior of the metric registry and the exporters."""

from __future__ import annotations

import json

import pytest

from repro.telemetry import (
    Registry,
    Telemetry,
    aggregate,
    load_metrics,
    metrics_jsonl,
    render_stats_table,
    write_metrics_jsonl,
)


def test_counter_accumulates_and_refuses_negative():
    reg = Registry()
    c = reg.counter("hits", shard="a")
    c.inc()
    c.inc(2.5)
    assert reg.counter("hits", shard="a").value == 3.5
    with pytest.raises(ValueError):
        c.inc(-1)


def test_gauge_set_and_high_water_mark():
    reg = Registry()
    g = reg.gauge("peak")
    g.max(-5.0)          # first update lands even below zero
    assert g.value == -5.0
    g.max(-9.0)
    assert g.value == -5.0
    g.set(2.0)
    assert g.value == 2.0 and g.updates == 3


def test_histogram_moments_and_buckets():
    reg = Registry()
    h = reg.histogram("lat")
    for v in (0.5, 5.0, 5e-10, 1e12):
        h.observe(v)
    sample = h.sample()
    assert sample["count"] == 4
    assert sample["min"] == 5e-10 and sample["max"] == 1e12
    assert sample["buckets"]["inf"] == 1      # 1e12 beyond every bound
    assert h.mean == pytest.approx(sum((0.5, 5.0, 5e-10, 1e12)) / 4)


def test_kind_conflict_is_an_error():
    reg = Registry()
    reg.counter("x")
    with pytest.raises(TypeError):
        reg.gauge("x")


def test_name_may_also_be_a_label():
    reg = Registry()
    reg.gauge("platform.nodes", name="metablade").set(24)
    got = reg.get("platform.nodes", name="metablade")
    assert got is not None and got.value == 24


def test_iteration_and_jsonl_are_sorted_and_stable():
    reg = Registry()
    reg.counter("z").inc()
    reg.counter("a", b="2").inc()
    reg.counter("a", b="1").inc()
    names = [(m.name, m.labels) for m in reg]
    assert names == sorted(names)
    lines = metrics_jsonl(reg).splitlines()
    assert [json.loads(ln)["metric"] for ln in lines] == ["a", "a", "z"]


def test_aggregate_merges_across_runs(tmp_path):
    for run in ("one", "two"):
        reg = Registry()
        reg.counter("jobs").inc(3)
        reg.gauge("peak_c").set(40.0 if run == "one" else 55.0)
        reg.histogram("wait").observe(1.0)
        write_metrics_jsonl(reg, tmp_path / run / "metrics.jsonl")
    merged = {e["metric"]: e for e in aggregate(load_metrics([tmp_path]))}
    assert merged["jobs"]["value"] == 6.0
    assert merged["peak_c"]["value"] == 55.0       # gauges keep the max
    assert merged["wait"]["count"] == 2
    assert all(e["samples"] == 2 for e in merged.values())
    table = render_stats_table([tmp_path])
    assert "jobs" in table and "peak_c" in table


def test_stats_table_reports_empty_dirs(tmp_path):
    assert "no metrics found" in render_stats_table([tmp_path])


def test_telemetry_attach_is_exclusive():
    from repro.core.events import EventKernel

    tel = Telemetry()
    kernel = EventKernel()
    tel.attach(kernel)
    with pytest.raises(RuntimeError):
        tel.attach(EventKernel())
    tel.detach()
    tel.attach(kernel)      # re-attach after detach is fine
    tel.detach()


def test_wall_span_records_phase_histogram(tmp_path):
    tel = Telemetry()
    with tel.wall_span("setup"):
        pass
    h = tel.registry.get("wall.phase_s", phase="setup")
    assert h is not None and h.count == 1
    paths = tel.export(tmp_path)
    doc = json.loads(paths["trace"].read_text())
    walls = [e for e in doc["traceEvents"] if e.get("cat") == "wall"]
    assert len(walls) == 1 and walls[0]["name"] == "setup"
