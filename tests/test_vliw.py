"""VLIW molecules, scheduler and engine."""

import pytest

from repro.isa.assembler import assemble
from repro.isa.instructions import Instr, Op
from repro.isa.machine import Machine, run_program
from repro.vliw.atoms import Atom, atoms_from_block
from repro.vliw.engine import TranslatedBlock, VliwEngine, translate_block
from repro.vliw.molecules import (
    FULL_FORMAT,
    NARROW_FORMAT,
    Molecule,
    MoleculeFormatError,
    packing_efficiency,
)
from repro.vliw.scheduler import dependence_graph, schedule_block
from repro.vliw.units import TM5600_LATENCIES, UnitKind


def _atoms(source):
    program = assemble(source)
    block = program.basic_block_at(0)
    return atoms_from_block(block, TM5600_LATENCIES), program


def test_molecule_slot_limits():
    atoms, _ = _atoms("add r1, r2, r3\nadd r4, r5, r6\nhalt")
    Molecule(atoms=atoms[:2])        # two ALU atoms: fine
    three_alu, _ = _atoms(
        "add r1, r2, r3\nadd r4, r5, r6\nadd r7, r8, r9\nhalt"
    )
    with pytest.raises(MoleculeFormatError):
        Molecule(atoms=three_alu[:3])


def test_molecule_width_encoding():
    atoms, _ = _atoms("add r1, r2, r3\nfadd f1, f2, f3\nld r4, r5, 0\nhalt")
    assert Molecule(atoms=atoms[:2]).width_bits == 64
    assert Molecule(atoms=atoms[:3]).width_bits == 128


def test_empty_molecule_rejected():
    with pytest.raises(MoleculeFormatError):
        Molecule(atoms=())


def test_dependence_graph_raw_waw_war():
    atoms, _ = _atoms(
        "add r1, r2, r3\n"      # 0 writes r1
        "add r4, r1, r2\n"      # 1 RAW on 0
        "add r1, r5, r6\n"      # 2 WAW on 0, WAR on 1
        "halt"
    )
    edges = dependence_graph(atoms[:3])
    assert 0 in edges.data[1]
    assert 0 in edges.waw[2]
    assert 1 in edges.war_order[2]


def test_memory_ordering_edges():
    atoms, _ = _atoms(
        "fld f1, r1, 0\n"       # 0 load
        "fst r1, f2, 0\n"       # 1 store: orders after load 0
        "fld f3, r1, 0\n"       # 2 load after store 1 (data)
        "halt"
    )
    edges = dependence_graph(atoms[:3])
    assert 0 in edges.war_order[1]
    assert 1 in edges.data[2]


def test_schedule_respects_dependences():
    atoms, _ = _atoms(
        "fadd f1, f2, f3\nfmul f4, f1, f1\nhalt"
    )
    molecules = schedule_block(atoms)
    # The dependent multiply can never share its producer's molecule.
    for mol in molecules:
        seqs = {a.seq for a in mol}
        assert not ({0, 1} <= seqs)
    scheduled = [a.seq for mol in molecules for a in mol]
    assert sorted(scheduled) == [0, 1, 2]


def test_schedule_packs_independent_work():
    atoms, _ = _atoms(
        "add r1, r2, r3\nfadd f1, f2, f3\nld r4, r5, 0\nadd r6, r7, r8\nhalt"
    )
    molecules = schedule_block(atoms)
    # Four independent atoms (2 ALU + FPU + MEM) fit one molecule.
    assert len(molecules[0]) == 4


def test_branch_issues_last():
    atoms, _ = _atoms(
        "add r1, r2, r3\nfadd f1, f2, f3\nbnez r9, 0\nhalt"
    )
    molecules = schedule_block(atoms[:3])
    last = molecules[-1]
    assert any(a.is_branch for a in last)
    # No atom may be scheduled after the branch's molecule.
    branch_index = next(
        i for i, m in enumerate(molecules) if any(a.is_branch for a in m)
    )
    assert branch_index == len(molecules) - 1


def test_narrow_format_produces_more_molecules():
    atoms, _ = _atoms(
        "add r1, r2, r3\nadd r4, r5, r6\nfadd f1, f2, f3\n"
        "ld r7, r8, 0\nhalt"
    )
    wide = schedule_block(atoms, FULL_FORMAT)
    narrow = schedule_block(atoms, NARROW_FORMAT)
    assert len(narrow) >= len(wide)


def test_packing_efficiency_bounds():
    atoms, _ = _atoms("add r1, r2, r3\nfadd f1, f2, f3\nhalt")
    molecules = schedule_block(atoms)
    eff = packing_efficiency(molecules)
    assert 0.0 < eff <= 1.0
    assert packing_efficiency([]) == 0.0


def test_engine_executes_semantics_exactly(micro_math):
    # Reference run.
    ref_state, _ = run_program(micro_math.program, micro_math.make_state())
    # Native run: translate each block on demand, execute via engine.
    engine = VliwEngine()
    machine = Machine(state=micro_math.make_state())
    while not machine.state.halted:
        tb = translate_block(micro_math.program, machine.state.pc)
        engine.execute_block(tb, micro_math.program, machine)
    assert machine.state.architectural_view() == ref_state.architectural_view()
    assert engine.clock > 0
    assert engine.stats.molecules_issued > 0


def test_engine_pc_mismatch_rejected(micro_math):
    engine = VliwEngine()
    machine = Machine(state=micro_math.make_state())
    tb = translate_block(micro_math.program, 3)
    with pytest.raises(ValueError):
        engine.execute_block(tb, micro_math.program, machine)


def test_unpipelined_divide_occupies_fpu():
    source = "fdiv f1, f2, f3\nfdiv f4, f5, f6\nhalt"
    program = assemble(source)
    engine = VliwEngine()
    machine = Machine()
    machine.state.fregs.update({"f2": 1.0, "f3": 2.0, "f5": 3.0, "f6": 4.0})
    while not machine.state.halted:
        tb = translate_block(program, machine.state.pc)
        engine.execute_block(tb, program, machine)
    # Two independent divides still serialise on the single FPU: the
    # second cannot issue until the first's full occupancy elapses.
    div_latency = TM5600_LATENCIES.latency(
        atoms_from_block(program.basic_block_at(0), TM5600_LATENCIES)[0]
        .instr.opclass
    )
    assert engine.clock > div_latency


def test_engine_charge_rejects_negative():
    engine = VliwEngine()
    with pytest.raises(ValueError):
        engine.charge(-1)
