"""Additional façade coverage: table 2 variants, table 3 at class T,
BladedBeowulf on alternative clusters."""

import pytest

from repro.cluster import GREEN_DESTINY, METABLADE2
from repro.core import (
    BladedBeowulf,
    experiment_table2,
    experiment_table3,
)
from repro.core.system import PEAK_FLOPS_PER_CYCLE


def test_peak_table_covers_every_catalog_cpu():
    from repro.cpus.catalog import CPU_CATALOG

    for name in CPU_CATALOG:
        assert name in PEAK_FLOPS_PER_CYCLE, name


@pytest.mark.slow
def test_table2_ideal_network_scales_better():
    real = experiment_table2(n=1200, steps=1, cpu_counts=(1, 8))
    ideal = experiment_table2(
        n=1200, steps=1, cpu_counts=(1, 8), ideal_network=True
    )
    assert ideal.rows[-1][2] >= real.rows[-1][2]   # speedup column


def test_table3_at_tiny_class():
    result = experiment_table3(letter="T")
    assert len(result.rows) == 6
    for row in result.rows:
        assert all(v > 0 for v in row[1:])


@pytest.mark.slow
def test_metablade2_facade():
    machine = BladedBeowulf(cluster=METABLADE2)
    assert machine.is_bladed
    # Paper footnote 3: 3.3 Gflops on MetaBlade2.
    assert machine.sustained_gflops() == pytest.approx(3.3, abs=0.15)
    assert machine.peak_gflops() == pytest.approx(24 * 0.8, rel=0.01)


@pytest.mark.slow
def test_green_destiny_facade():
    machine = BladedBeowulf(cluster=GREEN_DESTINY)
    # Ten chassis of TM5800s.
    assert machine.cluster.chassis_count == 10
    # The model rates the delivered 240-blade machine above the paper's
    # pre-delivery 21.5 Gflops projection (EXPERIMENTS.md, Table 6 note).
    assert machine.sustained_gflops() == pytest.approx(33.2, abs=2.0)
    assert machine.cluster.nodes == 240


def test_facade_topper_uses_sustained_rating():
    machine = BladedBeowulf.metablade()
    rating = machine.topper()
    assert rating.cluster_name == "MetaBlade"
    assert rating.usd_per_gflop > 0


def test_table2_warns_and_records_dropped_cpu_counts():
    import warnings

    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        result = experiment_table2(
            n=300, steps=1, cpu_counts=(1, 2, 64), platform="loki"
        )
    assert [r[0] for r in result.rows] == [1, 2]
    assert result.extras["cpu_counts_dropped"] == 1.0
    messages = [str(w.message) for w in caught
                if issubclass(w.category, UserWarning)]
    assert any("64" in m and "loki" in m for m in messages)
    # The un-clipped path records nothing (golden manifests depend on
    # the extras dict staying byte-identical).
    clean = experiment_table2(
        n=300, steps=1, cpu_counts=(1, 2), platform="loki"
    )
    assert "cpu_counts_dropped" not in clean.extras


def test_table2_rejects_an_all_dropped_sweep():
    with pytest.warns(UserWarning):
        with pytest.raises(ValueError):
            experiment_table2(
                n=300, steps=1, cpu_counts=(32, 64), platform="loki"
            )
