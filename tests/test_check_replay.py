"""Record → replay round trips and divergence localization.

The checking layer's core contract: re-running a recorded manifest
reproduces its event trace bit-exactly, and perturbing exactly one
recorded event makes replay-verify point at exactly that event — with
live kernel context (clock, pending queue, rank clocks) captured at
the moment of divergence.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.check import (
    RunManifest,
    TraceRecorder,
    mutate_event,
    record_sched_manifest,
    record_simmpi_manifest,
    replay_manifest,
)
from repro.check.manifest import config_hash, normalize_event
from repro.core.events import EventKernel, TimelineEvent


# -- round trips (property-based) ------------------------------------------


@given(seed=st.integers(0, 10_000))
@settings(max_examples=10, deadline=None)
def test_simmpi_record_replay_roundtrip(seed):
    manifest = record_simmpi_manifest(seed=seed, ranks=3, rounds=2)
    assert manifest.events, "a simmpi run must emit trace events"
    reloaded = RunManifest.from_json(manifest.to_json())
    assert reloaded.events == manifest.events   # bit-exact float survival
    report = replay_manifest(reloaded)
    assert report.ok, report.format()
    assert report.replayed_events == len(manifest.events)


@given(seed=st.integers(0, 10_000),
       policy=st.sampled_from(["fcfs", "backfill"]))
@settings(max_examples=6, deadline=None)
def test_sched_record_replay_roundtrip(seed, policy):
    manifest = record_sched_manifest(seed=seed, jobs=4, policy=policy)
    report = replay_manifest(RunManifest.from_json(manifest.to_json()))
    assert report.ok, report.format()


def test_sched_replay_with_failures_and_checkpointing():
    # The acceptance configuration: failure injection + checkpointing
    # exercise kill/requeue/restore paths, and the replay must still
    # be divergence-free.
    manifest = record_sched_manifest(
        seed=2001, jobs=8, fail_inject=True, checkpoint=1,
    )
    report = replay_manifest(manifest)
    assert report.ok, report.format()
    assert report.replayed_events == len(manifest.events) > 100


# -- perturbation localization ---------------------------------------------

_BASE = record_simmpi_manifest(seed=42, ranks=3, rounds=2)


@given(data=st.data())
@settings(max_examples=25, deadline=None)
def test_single_event_perturbation_localizes(data):
    index = data.draw(
        st.integers(0, len(_BASE.events) - 1), label="event index"
    )
    mutated = mutate_event(
        _BASE, index, time=_BASE.events[index].time + 1e-7
    )
    report = replay_manifest(mutated)
    assert not report.ok
    assert report.divergence.index == index
    assert report.divergence.expected == mutated.events[index]
    assert report.divergence.actual == _BASE.events[index]


def test_divergence_carries_kernel_context():
    mutated = mutate_event(_BASE, 5, rank=99)
    report = replay_manifest(mutated)
    div = report.divergence
    assert div is not None and div.index == 5
    assert div.pending >= 0
    assert all(t >= div.kernel_now - 1e-12 for t in div.next_times)
    assert "rank clocks" in report.format()
    assert "first divergence at event #5" in div.describe()


def test_short_and_extra_event_detection():
    # Manifest records MORE events than the replay emits: the checker
    # flags the missing tail at finish time.
    extra = list(_BASE.events) + [TimelineEvent(1e9, "phantom", ())]
    longer = RunManifest(
        kind=_BASE.kind, seed=_BASE.seed, params=dict(_BASE.params),
        config_hash=_BASE.config_hash, events=extra,
    )
    report = replay_manifest(longer)
    assert not report.ok
    assert report.divergence.index == len(_BASE.events)
    assert report.divergence.actual is None

    # Manifest records FEWER events: the first surplus event diverges
    # against expected=None.
    shorter = RunManifest(
        kind=_BASE.kind, seed=_BASE.seed, params=dict(_BASE.params),
        config_hash=_BASE.config_hash, events=list(_BASE.events[:-1]),
    )
    report = replay_manifest(shorter)
    assert not report.ok
    assert report.divergence.index == len(_BASE.events) - 1
    assert report.divergence.expected is None


# -- manifest integrity ----------------------------------------------------


def test_manifest_rejects_tampered_params(tmp_path):
    path = _BASE.save(tmp_path / "m.json")
    text = path.read_text().replace('"ranks":3', '"ranks":4')
    assert text != path.read_text()     # the edit took
    path.write_text(text)
    with pytest.raises(ValueError, match="config hash"):
        RunManifest.load(path)


def test_manifest_rejects_unknown_version():
    doc = _BASE.to_json().replace('"version":1', '"version":99', 1)
    with pytest.raises(ValueError, match="version"):
        RunManifest.from_json(doc)


def test_config_hash_is_order_insensitive():
    assert config_hash({"a": 1, "b": 2}) == config_hash({"b": 2, "a": 1})
    assert config_hash({"a": 1}) != config_hash({"a": 2})


def test_recorder_detaches_cleanly():
    kernel = EventKernel()
    with TraceRecorder(kernel) as recorder:
        kernel.trace("ping", value=1)
    kernel.trace("pong", value=2)       # after detach: not recorded
    assert [e.kind for e in recorder.events] == ["ping"]
    assert not kernel.tracing           # no observer left behind


def test_normalize_event_clamps_exotic_fields():
    import numpy as np

    event = TimelineEvent(
        0.5, "x",
        (("np", np.int64(7)), ("obj", object()), ("s", "keep")),
    )
    normalized = normalize_event(event)
    assert normalized.get("np") == 7
    assert isinstance(normalized.get("obj"), str)
    assert normalized.get("s") == "keep"
