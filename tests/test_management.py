"""Management hub, failure injection and Monte-Carlo operation."""

import numpy as np
import pytest

from repro.cluster import METABLADE, TABLE5_CLUSTERS, Packaging
from repro.cluster.management import (
    ClusterOperationSim,
    EventKind,
    ManagementEvent,
    ManagementHub,
    inject_failure,
)

P4_BEOWULF = TABLE5_CLUSTERS[3]


def test_hub_detection_latency_by_packaging():
    blade_hub = ManagementHub.for_packaging(Packaging.BLADED)
    trad_hub = ManagementHub.for_packaging(Packaging.TRADITIONAL)
    assert blade_hub.detection_latency_h < trad_hub.detection_latency_h


def test_inject_failure_blast_radius():
    blade_hub = ManagementHub.for_packaging(Packaging.BLADED)
    lost_blade = inject_failure(METABLADE, blade_hub, node=3, time_h=10.0)
    assert lost_blade == 1.0          # one node, one hour

    trad_hub = ManagementHub.for_packaging(Packaging.TRADITIONAL)
    lost_trad = inject_failure(P4_BEOWULF, trad_hub, node=3, time_h=10.0)
    assert lost_trad == 4.0 * 24      # whole cluster for four hours


def test_inject_failure_validates_node():
    hub = ManagementHub.for_packaging(Packaging.BLADED)
    with pytest.raises(ValueError):
        inject_failure(METABLADE, hub, node=99, time_h=0.0)


def test_event_log_structure():
    hub = ManagementHub.for_packaging(Packaging.BLADED)
    inject_failure(METABLADE, hub, node=5, time_h=2.0)
    kinds = [e.kind for e in hub.log]
    assert kinds == [EventKind.FAILURE, EventKind.DETECTED,
                     EventKind.REPAIRED]
    assert hub.mean_time_to_detect_h() == pytest.approx(
        hub.detection_latency_h
    )
    assert len(hub.failures()) == 1


def test_operation_sim_is_deterministic():
    a = ClusterOperationSim(METABLADE, seed=42).run(hours=50_000)
    b = ClusterOperationSim(METABLADE, seed=42).run(hours=50_000)
    assert a.failures == b.failures
    assert a.lost_cpu_hours == b.lost_cpu_hours


def test_operation_sim_rejects_negative_hours():
    with pytest.raises(ValueError):
        ClusterOperationSim(METABLADE).run(hours=-1.0)


def test_zero_hour_run_is_empty_and_fully_available():
    report = ClusterOperationSim(METABLADE).run(hours=0)
    assert report.failures == 0
    assert report.lost_cpu_hours == 0.0
    assert report.total_cpu_hours == 0.0
    assert report.availability == 1.0
    assert report.downtime_cost() == 0.0
    assert report.hub.log == []
    assert report.hub.mean_time_to_detect_h() == 0.0


def test_zero_failure_run_reports_cleanly():
    # A failure rate of zero per year: the window passes undisturbed.
    sim = ClusterOperationSim(METABLADE, seed=1, failures_per_year=0.0)
    report = sim.run(hours=1000.0)
    assert report.failures == 0
    assert report.availability == 1.0
    assert report.hub.mean_time_to_detect_h() == 0.0


def test_availability_clamps_at_zero_when_losses_exceed_window():
    # A whole-cluster outage profile can lose more CPU-hours than a
    # short window offers; availability floors at 0 instead of going
    # negative.
    sim = ClusterOperationSim(P4_BEOWULF, seed=3,
                              failures_per_year=100_000.0)
    report = sim.run(hours=2.0)
    assert report.lost_cpu_hours > report.total_cpu_hours
    assert report.availability == 0.0


def test_monte_carlo_matches_closed_form():
    """Averaged over seeds, simulated downtime must match the analytic
    number the Table 5 TCO model uses."""
    hours = 35_040.0      # four years
    for cluster in (METABLADE, P4_BEOWULF):
        expected = ClusterOperationSim(cluster).expected_lost_cpu_hours(
            hours
        )
        seeds = range(40)
        measured = np.mean(
            [
                ClusterOperationSim(cluster, seed=s).run(hours).lost_cpu_hours
                for s in seeds
            ]
        )
        assert measured == pytest.approx(expected, rel=0.35), cluster.name


def test_blade_availability_dominates():
    blade = ClusterOperationSim(METABLADE, seed=1).run(hours=35_040)
    trad = ClusterOperationSim(P4_BEOWULF, seed=1).run(hours=35_040)
    assert blade.availability > trad.availability
    assert blade.availability > 0.999
    assert blade.downtime_cost() < trad.downtime_cost()


def test_custom_failure_rate():
    sim = ClusterOperationSim(METABLADE, seed=3, failures_per_year=50.0)
    report = sim.run(hours=8_760)
    assert 25 < report.failures < 90     # ~Poisson(50)


def test_hub_log_is_globally_time_ordered():
    # Event-chained arrivals interleave detections and repairs from
    # different failures; the kernel delivers them in time order, so
    # the log reads as one coherent timeline rather than per-failure
    # groups.
    sim = ClusterOperationSim(P4_BEOWULF, seed=7, failures_per_year=200.0)
    report = sim.run(hours=8_760)
    assert report.failures > 100
    times = [e.time_h for e in report.hub.log]
    assert times == sorted(times)
    # With 4-hour outages at this rate some failures land inside an
    # earlier outage window, so the ordered log cannot be a simple
    # per-failure grouping: a new FAILURE shows up between another
    # node's FAILURE and its REPAIRED entry.
    open_outages = 0
    overlapped = False
    for event in report.hub.log:
        if event.kind is EventKind.FAILURE:
            if open_outages > 0:
                overlapped = True
            open_outages += 1
        elif event.kind is EventKind.REPAIRED:
            open_outages -= 1
    assert overlapped
