"""Span-tree invariants and Perfetto export round-trip.

The span recorder folds the kernel's trace stream into a forest of
virtual-time spans.  Whatever the workload, the forest must be a
well-formed tree per track — children contained in their parents,
no dangling parent ids, timestamps monotone — and the Chrome
trace-event export must be loadable JSON whose B/E duration events
are balanced and properly nested on every thread.
"""

from __future__ import annotations

import json
from collections import defaultdict

import pytest

from repro.check.replay import _build_sched, _sched_params
from repro.core import experiment_timeline
from repro.telemetry import SpanRecorder, Telemetry, chrome_trace


@pytest.fixture(scope="module")
def sched_telemetry():
    """A scheduler run (failures + checkpoints) under full telemetry."""
    params = _sched_params(
        97, {"jobs": 10, "policy": "backfill", "fail_inject": True,
             "checkpoint": 1},
    )
    sched = _build_sched(params)
    tel = Telemetry()
    tel.attach(sched.kernel)
    sched.run()
    tel.detach()
    tel.finish(sched.kernel.now)
    return tel


@pytest.fixture(scope="module")
def timeline_telemetry(tmp_path_factory):
    """A single-world treecode step — rank lanes are unambiguous."""
    out = tmp_path_factory.mktemp("timeline_tel")
    experiment_timeline(
        ranks=4, n=600, limit=8, thermal=True, thermal_accel=120.0,
        telemetry=str(out),
    )
    return out


def _spans_by_id(recorder: SpanRecorder):
    return {s.span_id: s for s in recorder.spans}


def test_all_spans_closed_with_ordered_endpoints(sched_telemetry):
    spans = sched_telemetry.spans.spans
    assert spans, "the run produced no spans"
    for span in spans:
        assert span.t1 is not None, f"span {span.name} never closed"
        assert span.t1 >= span.t0 >= 0.0
    # finish() ran after the kernel drained: nothing was force-closed.
    assert not any(s.truncated for s in spans)


def test_children_nest_inside_parents_no_orphans(sched_telemetry):
    by_id = _spans_by_id(sched_telemetry.spans)
    for span in by_id.values():
        if span.parent_id is None:
            continue
        parent = by_id.get(span.parent_id)
        assert parent is not None, (
            f"span {span.name} has dangling parent id {span.parent_id}"
        )
        assert parent.track == span.track
        assert parent.t0 <= span.t0
        assert span.t1 <= parent.t1, (
            f"{span.name} [{span.t0}, {span.t1}] leaks out of "
            f"{parent.name} [{parent.t0}, {parent.t1}]"
        )


def test_span_forest_is_time_ordered_per_track(sched_telemetry):
    forest = sched_telemetry.spans.span_forest()
    assert forest
    for track, spans in forest.items():
        starts = [s.t0 for s in spans]
        assert starts == sorted(starts), f"track {track} not t0-ordered"


def test_job_tracks_model_the_job_lifecycle(sched_telemetry):
    forest = sched_telemetry.spans.span_forest()
    job_tracks = [t for t in forest if t.startswith("job ")]
    assert len(job_tracks) == 10
    for track in job_tracks:
        spans = forest[track]
        roots = [s for s in spans if s.parent_id is None]
        # One root lifetime span; its children alternate wait/attempt.
        assert len(roots) == 1
        assert roots[0].name == track
        names = {s.name.split("(")[0] for s in spans if s.parent_id}
        assert names <= {"wait", "attempt"}
        assert any(s.name.startswith("attempt") for s in spans)


def test_chrome_trace_round_trips_and_balances(sched_telemetry):
    events = chrome_trace(sched_telemetry.spans)
    # Round-trip through the actual serialization.
    events = json.loads(json.dumps(events, sort_keys=True))
    stacks = defaultdict(list)
    opens = defaultdict(int)
    for ev in events:
        assert ev["ph"] in {"B", "E", "i", "b", "e", "M"}
        key = (ev.get("pid"), ev.get("tid"))
        if ev["ph"] == "B":
            stacks[key].append(ev)
        elif ev["ph"] == "E":
            assert stacks[key], f"E without open B on {key}"
            begin = stacks[key].pop()
            # Proper nesting: E always closes the innermost B.
            assert begin["name"] == ev["name"]
            assert ev["ts"] >= begin["ts"]
        elif ev["ph"] == "b":
            opens[ev["id"]] += 1
        elif ev["ph"] == "e":
            opens[ev["id"]] -= 1
    assert not any(stack for stack in stacks.values()), "unbalanced B/E"
    assert all(v == 0 for v in opens.values()), "unbalanced async b/e"


def test_timeline_export_artifacts(timeline_telemetry):
    trace_path = timeline_telemetry / "trace.json"
    metrics_path = timeline_telemetry / "metrics.jsonl"
    assert trace_path.is_file() and metrics_path.is_file()
    doc = json.loads(trace_path.read_text())
    events = doc["traceEvents"]
    phases = {e["ph"] for e in events}
    assert {"B", "E", "M"} <= phases
    # A single-world run records every rank lane plus its wait spans.
    thread_names = {
        e["args"]["name"] for e in events
        if e["ph"] == "M" and e["name"] == "thread_name"
    }
    assert {"rank 0", "rank 1", "rank 2", "rank 3"} <= thread_names
    names = {e["name"] for e in events if e["ph"] == "B"}
    assert any(n.startswith(("recv-wait", "collective")) for n in names)
    for line in metrics_path.read_text().splitlines():
        sample = json.loads(line)
        assert {"metric", "kind", "labels"} <= set(sample)


def _ev(time, kind, **fields):
    from repro.core.events import TimelineEvent

    return TimelineEvent(time, kind, tuple(fields.items()))


def test_recorder_handles_every_event_family():
    rec = SpanRecorder()
    for ev in [
        _ev(0.0, "job-arrive", job=1, nodes=2),
        _ev(0.1, "job-start", job=1, blades=(0, 1), unit=0),
        _ev(0.2, "checkpoint", job=1, unit=1),
        _ev(0.3, "node-down", node=0, detail="injected"),
        _ev(0.3, "job-requeue", job=1, unit=1),
        _ev(0.4, "node-up", node=0),
        _ev(0.5, "job-start", job=1, blades=(1,), unit=1),
        _ev(0.6, "thermal-trip", blades=2, scale=0.5),
        _ev(0.7, "overtemp-kill", node=1),
        _ev(0.8, "job-abandon", job=1),
        _ev(1.0, "start", rank=0),
        _ev(1.0, "start", rank=1),
        _ev(1.1, "block", rank=0, src=1, tag=7),
        _ev(1.2, "send", src=1, dst=0, tag=7, nbytes=64, arrive=1.25),
        _ev(1.25, "recv", rank=0, src=1, tag=7, nbytes=64),
        _ev(1.3, "block", rank=0, tag=-17),     # collective kind 1
        _ev(1.3, "block", rank=1, tag=-17),
        _ev(1.4, "wake", rank=0),
        _ev(1.4, "wake", rank=1),
        _ev(1.45, "block", rank=1, src=None, tag=None),
        _ev(1.5, "block", rank=1, src=0, tag=3),  # re-block, no wake
        _ev(1.6, "failure", rank=1, detail="node died"),
        _ev(1.6, "rank-dead", rank=1),
        _ev(1.7, "world-done", posted=2, consumed=1, undelivered=1,
            failed=1),
        _ev(1.8, "link-up", resource="uplink0", nbytes=64),
        _ev(1.85, "switch", resource="hub", nbytes=64),
        _ev(1.9, "link-down", resource="uplink0"),
        _ev(2.0, "dvfs", mhz=400, volts=1.1),
        _ev(2.1, "unknown-kind", x=1),          # ignored, still counted
    ]:
        rec(ev)
    assert rec.events_seen == 29
    names = {s.name for s in rec.spans}
    assert "collective(barrier)" in names
    assert "recv-wait(src=1)" in names
    assert "recv-wait(src=any)" in names
    assert {"job 1", "wait", "rank 1"} <= names
    # Two attempts: the requeue closed the first.
    assert sum(1 for s in rec.spans if s.name.startswith("attempt")) == 2
    inst_names = {i.name for i in rec.instants}
    assert {"node-down", "node-up", "thermal-trip", "overtemp-kill",
            "failure", "link-up", "switch", "link-down",
            "dvfs(400MHz)"} <= inst_names
    assert len(rec.asyncs) == 1
    assert rec.registry.counter("events", kind="unknown-kind").value == 1
    assert rec.registry.counter("simmpi.undelivered").value == 1
    # Rank 0 never finished: finish() force-closes its lifetime span.
    rec.finish(2.5)
    truncated = [s for s in rec.spans if s.truncated]
    assert [s.name for s in truncated] == ["rank 0"]
    assert truncated[0].t1 == 2.5
    assert all(s.t1 is not None for s in rec.spans)


def test_rank_lanes_disambiguate_concurrent_worlds():
    rec = SpanRecorder()
    rec(_ev(0.0, "start", rank=0))
    rec(_ev(0.1, "start", rank=0))       # second world reuses rank 0
    # Ambiguous: wait spans are suppressed while two lanes are open.
    rec(_ev(0.2, "block", rank=0, src=1, tag=1))
    assert not any(s.name.startswith("recv-wait")
                   for t in rec._tracks.values() for s in t.stack)
    rec(_ev(0.3, "finish", rank=0))      # oldest lane closes first
    rec(_ev(0.4, "block", rank=0, src=1, tag=1))   # unambiguous again
    rec(_ev(0.5, "wake", rank=0))
    rec(_ev(0.6, "finish", rank=0))
    forest = rec.span_forest()
    assert set(forest) == {"rank 0", "rank 0 #2"}
    lifetimes = {s.name for track in forest.values() for s in track
                 if s.parent_id is None}
    assert lifetimes == {"rank 0"}
    waits = [s for s in forest["rank 0 #2"] if s.parent_id is not None]
    assert [s.name for s in waits] == ["recv-wait(src=1)"]


def test_exports_are_byte_stable(sched_telemetry, tmp_path):
    first = tmp_path / "a"
    second = tmp_path / "b"
    sched_telemetry.export(first)
    sched_telemetry.export(second)
    assert (first / "trace.json").read_bytes() == (
        second / "trace.json"
    ).read_bytes()
    assert (first / "metrics.jsonl").read_bytes() == (
        second / "metrics.jsonl"
    ).read_bytes()
