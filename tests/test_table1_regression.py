"""Table 1 regression: the paper's microkernel comparison.

The simulators are deterministic, so the canonical workload must keep
producing the recorded Mflops within a tight tolerance - and, more
importantly, the paper's *prose constraints* must keep holding whatever
recalibration happens.
"""

import pytest

from repro.cpus.catalog import TABLE1_CPUS
from repro.perfmodel.calibration import (
    REFERENCE_TABLE1,
    table1_mflops,
)

# One shared measurement per session (each run is a few seconds).
_measured = {}


def _measure(cpu):
    if cpu.name not in _measured:
        _measured[cpu.name] = table1_mflops(cpu)
    return _measured[cpu.name]


@pytest.mark.slow
@pytest.mark.parametrize("cpu", TABLE1_CPUS, ids=lambda c: c.name)
def test_reference_values_reproduce(cpu):
    math_mflops, karp_mflops = _measure(cpu)
    ref_math, ref_karp = REFERENCE_TABLE1[cpu.name]
    assert math_mflops == pytest.approx(ref_math, rel=0.02)
    assert karp_mflops == pytest.approx(ref_karp, rel=0.02)


@pytest.mark.slow
def test_karp_beats_math_everywhere():
    """Karp's algorithm exists because it wins on every CPU."""
    for cpu in TABLE1_CPUS:
        math_mflops, karp_mflops = _measure(cpu)
        assert karp_mflops > math_mflops, cpu.name


@pytest.mark.slow
def test_transmeta_competitive_with_comparably_clocked():
    """Paper: the TM5600 'performs as well as (if not better than) the
    Intel and Alpha' on the math-sqrt benchmark."""
    by_name = {cpu.name: _measure(cpu) for cpu in TABLE1_CPUS}
    tm_math = by_name["Transmeta TM5600"][0]
    assert tm_math >= by_name["Intel Pentium III"][0]
    assert tm_math >= by_name["Compaq Alpha EV56"][0]


@pytest.mark.slow
def test_transmeta_suffers_a_bit_on_karp():
    """Paper: other CPUs' Karp implementations were architecture-tuned;
    the Transmeta's Karp gain is the smallest."""
    gains = {}
    for cpu in TABLE1_CPUS:
        math_mflops, karp_mflops = _measure(cpu)
        gains[cpu.name] = karp_mflops / math_mflops
    assert gains["Transmeta TM5600"] == min(gains.values())


@pytest.mark.slow
def test_unmatched_clock_cpus_lead():
    """Power3 and Athlon MP are the 'not comparably clocked' leaders."""
    by_name = {cpu.name: _measure(cpu) for cpu in TABLE1_CPUS}
    comparables = ("Intel Pentium III", "Compaq Alpha EV56",
                   "Transmeta TM5600")
    for leader in ("IBM Power3", "AMD Athlon MP"):
        for col in (0, 1):
            assert all(
                by_name[leader][col] > by_name[other][col]
                for other in comparables
            )
