"""The thermal subsystem: exact RC integration, throttling, reliability.

The integrator's whole claim is *exactness*: between power-change
events a blade follows one closed-form exponential, so the
property-based tests here drive random piecewise-constant power
schedules through :class:`repro.thermal.ThermalNetwork` and demand
agreement with a dense adaptive ODE reference (scipy) to ~1e-6 —
plus the paper's Arrhenius rule pinned exactly (failure rate doubles
every 10 °C), crossing-time inversion closing to float precision,
governor composition, throttle planning, temperature-modulated
failure replayability and the conservation auditor.
"""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.check.auditors import (
    InvariantViolation,
    audit_thermal_network,
)
from repro.thermal import (
    ArrheniusIntensity,
    ComposedGovernor,
    ThermalFailureInjector,
    ThermalNetwork,
    ThermalSpec,
    ThermalThrottleGovernor,
    cooling_overhead_factor,
    plan_attempt,
)


def make_spec(r=0.5, c=10.0, chassis_r=0.02, ambient=20.0, **kw):
    return ThermalSpec(
        r_c_per_w=r, c_j_per_c=c, chassis_r_c_per_w=chassis_r,
        ambient_c=ambient, **kw,
    )


# ---------------------------------------------------------------------------
# The integrator vs a dense ODE reference
# ---------------------------------------------------------------------------

def dense_reference(network, blade, t_end):
    """Integrate the blade's ODE with scipy from the power history.

    Reconstructs the same quasi-static model — C dT/dt = P - (T -
    sink)/R with the sink fixed per segment — but solves it with an
    adaptive Runge-Kutta stepper at tight tolerances instead of the
    closed form, from the recorded power histories alone.
    """
    from scipy.integrate import solve_ivp

    spec = network.spec
    lo = network.chassis_of(blade) * network.nodes_per_chassis
    hi = min(lo + network.nodes_per_chassis, network.nodes)

    def power_at(member, t):
        watts = network.power_history[member][0][1]
        for t0, w in network.power_history[member]:
            if t0 <= t:
                watts = w
        return watts

    # Event times where any chassis member's power steps.
    times = sorted(
        {0.0, t_end}
        | {t for m in range(lo, hi)
           for (t, _) in network.power_history[m] if t < t_end}
    )
    temp = network.spec.ambient_c + spec.chassis_r_c_per_w * sum(
        power_at(m, 0.0) for m in range(lo, hi)
    ) + spec.r_c_per_w * power_at(blade, 0.0)  # idle steady state
    for t0, t1 in zip(times, times[1:]):
        mid = 0.5 * (t0 + t1)
        sink = spec.ambient_c + spec.chassis_r_c_per_w * sum(
            power_at(m, mid) for m in range(lo, hi)
        )
        p = power_at(blade, mid)

        def rhs(_t, y):
            return [(p - (y[0] - sink) / spec.r_c_per_w) / spec.c_j_per_c]

        sol = solve_ivp(rhs, (t0, t1), [temp], rtol=1e-11, atol=1e-12)
        temp = float(sol.y[0][-1])
    return temp


schedule_strategy = st.lists(
    st.tuples(
        st.floats(min_value=0.05, max_value=30.0),   # segment duration
        st.floats(min_value=0.0, max_value=120.0),   # blade heat (W)
    ),
    min_size=1, max_size=4,
)


@settings(max_examples=25, deadline=None)
@given(
    r=st.floats(min_value=0.2, max_value=1.5),
    c=st.floats(min_value=2.0, max_value=40.0),
    chassis_r=st.floats(min_value=0.0, max_value=0.05),
    sched_a=schedule_strategy,
    sched_b=schedule_strategy,
)
def test_integrator_matches_dense_ode(r, c, chassis_r, sched_a, sched_b):
    """Two coupled blades, random power steps: exact == adaptive RK."""
    spec = make_spec(r=r, c=c, chassis_r=chassis_r)
    network = ThermalNetwork(2, spec, node_watts=100.0,
                             nodes_per_chassis=24)
    events = []
    for blade, sched in ((0, sched_a), (1, sched_b)):
        t = 0.0
        for duration, watts in sched:
            t += duration
            events.append((t, blade, watts))
    # set_power advances the whole chassis, so events must be applied
    # in global time order (exactly as the event kernel would fire them).
    events.sort(key=lambda e: (e[0], e[1]))
    for t, blade, watts in events:
        network.set_power(blade, t, watts)
    t_end = events[-1][0] + 5.0
    for blade in range(2):
        exact = network.temperature(blade, t_end)
        dense = dense_reference(network, blade, t_end)
        assert exact == pytest.approx(dense, rel=1e-6, abs=1e-6)


@settings(max_examples=40, deadline=None)
@given(
    r=st.floats(min_value=0.2, max_value=1.5),
    c=st.floats(min_value=2.0, max_value=40.0),
    watts=st.floats(min_value=60.0, max_value=150.0),
    frac=st.floats(min_value=0.05, max_value=0.95),
)
def test_crossing_inversion_is_exact(r, c, watts, frac):
    """time_to_reach inverts the exponential to float precision."""
    spec = make_spec(r=r, c=c)
    network = ThermalNetwork(1, spec, node_watts=watts)
    network.set_busy(0, 0.0)
    start = network.temperature(0, 0.0)
    target = start + frac * (network.steady_state_c(0) - start)
    t_cross = network.time_to_reach(0, target, 0.0)
    assert t_cross is not None
    assert network.temperature(0, t_cross) == pytest.approx(
        target, rel=0.0, abs=1e-9
    )
    # Unreachable: beyond the steady state.
    assert network.time_to_reach(
        0, network.steady_state_c(0) + 1.0, 0.0
    ) is None


def test_blades_start_at_idle_equilibrium():
    spec = make_spec()
    network = ThermalNetwork(3, spec, node_watts=100.0)
    t0 = network.temperature(0, 0.0)
    assert t0 == pytest.approx(network.steady_state_c(0))
    # Equilibrium: nothing moves until power does.
    assert network.temperature(0, 1e6) == pytest.approx(t0)


def test_chassis_coupling_warms_idle_neighbour():
    spec = make_spec(chassis_r=0.05)
    network = ThermalNetwork(2, spec, node_watts=100.0)
    idle_before = network.temperature(1, 0.0)
    network.set_busy(0, 0.0)
    # The idle neighbour's steady state rises with chassis power.
    assert network.steady_state_c(1) > idle_before
    assert network.temperature(1, 100.0) > idle_before


def test_reading_the_past_raises():
    network = ThermalNetwork(1, make_spec(), node_watts=50.0)
    network.set_busy(0, 5.0)
    with pytest.raises(ValueError):
        network.temperature(0, 1.0)
    with pytest.raises(ValueError):
        network.set_power(0, 1.0, 10.0)


def test_heat_joules_integrates_the_power_history():
    spec = make_spec(idle_fraction=0.1)
    network = ThermalNetwork(1, spec, node_watts=100.0)
    network.set_busy(0, 2.0)          # 10 W on [0,2), 100 W on [2,5)
    network.set_idle(0, 5.0)          # 10 W from 5
    assert network.heat_joules(0, 0.0, 6.0) == pytest.approx(
        10.0 * 2.0 + 100.0 * 3.0 + 10.0 * 1.0
    )
    assert network.heat_joules(0, 2.5, 3.5) == pytest.approx(100.0)


# ---------------------------------------------------------------------------
# ThermalSpec validation
# ---------------------------------------------------------------------------

def test_spec_validation():
    with pytest.raises(ValueError):
        make_spec(r=-1.0)
    with pytest.raises(ValueError):
        make_spec(ambient=90.0)       # ambient above resume
    with pytest.raises(ValueError):
        make_spec(throttle_scale=0.0)
    with pytest.raises(ValueError):
        make_spec(idle_fraction=1.0)


def test_spec_round_trip_and_acceleration():
    spec = make_spec()
    assert ThermalSpec.from_dict(spec.to_dict()) == spec
    fast = spec.accelerated(10.0)
    assert fast.tau_s == pytest.approx(spec.tau_s / 10.0)
    assert spec.accelerated(1.0) is spec
    with pytest.raises(ValueError):
        spec.accelerated(0.0)


# ---------------------------------------------------------------------------
# The Arrhenius rule, pinned
# ---------------------------------------------------------------------------

def test_arrhenius_doubles_every_ten_degrees():
    intensity = ArrheniusIntensity(base_rate_per_s=1e-6, base_c=40.0,
                                   doubling_c=10.0)
    assert intensity.rate_at(40.0) == pytest.approx(1e-6)
    for temp in (0.0, 25.0, 40.0, 55.0, 70.0, 95.0):
        assert intensity.rate_at(temp + 10.0) == pytest.approx(
            2.0 * intensity.rate_at(temp), rel=1e-12
        )
    # 30 C hotter = 3 doublings = 8x.
    assert intensity.rate_at(70.0) == pytest.approx(8e-6)
    with pytest.raises(ValueError):
        ArrheniusIntensity(base_rate_per_s=-1.0)
    with pytest.raises(ValueError):
        ArrheniusIntensity(base_rate_per_s=1.0, doubling_c=0.0)


# ---------------------------------------------------------------------------
# Governors
# ---------------------------------------------------------------------------

def test_throttle_governor_schedule():
    gov = ThermalThrottleGovernor(busy_watts=100.0)
    gov.clamp_at(5.0, 0.5)
    gov.release_at(9.0)
    assert gov.frequency_scale(0.0) == 1.0
    assert gov.frequency_scale(5.0) == 0.5
    assert gov.frequency_scale(9.0) == 1.0
    assert gov.power_at(6.0) == pytest.approx(50.0)
    assert gov.next_change(0.0) == 5.0
    assert gov.next_change(5.0) == 9.0
    assert gov.next_change(9.0) is None
    with pytest.raises(ValueError):
        gov.clamp_at(1.0, 1.5)


def test_governor_advance_splits_at_the_clamp():
    gov = ThermalThrottleGovernor(busy_watts=100.0)
    gov.clamp_at(10.0, 0.5)
    # 15 units of work at rate 1: 10 full-speed + 10 at half speed.
    elapsed, energy = gov.advance(0.0, 15.0, 1.0)
    assert elapsed == pytest.approx(20.0)
    assert energy == pytest.approx(10.0 * 100.0 + 10.0 * 50.0)


def test_composed_governor_takes_the_min():
    a = ThermalThrottleGovernor(busy_watts=100.0)
    b = ThermalThrottleGovernor(busy_watts=100.0)
    a.clamp_at(2.0, 0.8)
    b.clamp_at(4.0, 0.5)
    combo = ComposedGovernor([a, b])
    assert combo.frequency_scale(0.0) == 1.0
    assert combo.frequency_scale(3.0) == 0.8
    assert combo.frequency_scale(5.0) == 0.5
    assert combo.next_change(0.0) == 2.0
    assert combo.next_change(2.0) == 4.0


# ---------------------------------------------------------------------------
# Throttle planning
# ---------------------------------------------------------------------------

def hot_spec(**kw):
    """A spec whose busy steady state overshoots trip (and kill)."""
    return make_spec(r=1.0, c=5.0, ambient=20.0, trip_c=60.0,
                     resume_c=50.0, kill_c=80.0, **kw)


def test_plan_attempt_cold_blade_never_trips():
    spec = make_spec(trip_c=200.0, resume_c=150.0, kill_c=250.0)
    network = ThermalNetwork(1, spec, node_watts=50.0)
    network.set_busy(0, 0.0)
    plan = plan_attempt(network, [0], 0.0)
    assert plan.trip_at_s is None and plan.kill_at_s is None


def test_plan_attempt_trip_then_no_kill_when_throttled_enough():
    # Busy steady state 120 C crosses trip 60; throttled (0.4) steady
    # state is 20 + 40 = 60 < kill 80, so throttling saves the blade.
    spec = hot_spec(throttle_scale=0.4)
    network = ThermalNetwork(1, spec, node_watts=100.0)
    network.set_busy(0, 0.0)
    plan = plan_attempt(network, [0], 0.0)
    assert plan.trip_at_s is not None
    assert network.temperature(0, plan.trip_at_s) == pytest.approx(
        spec.trip_c, abs=1e-9
    )
    assert plan.kill_at_s is None


def test_plan_attempt_kill_when_throttling_cannot_save_it():
    # Throttled steady state 20 + 0.9*100 = 110 C still beats kill 80.
    spec = hot_spec(throttle_scale=0.9)
    network = ThermalNetwork(1, spec, node_watts=100.0)
    network.set_busy(0, 0.0)
    plan = plan_attempt(network, [0], 0.0)
    assert plan.trip_at_s is not None
    assert plan.kill_at_s is not None and plan.kill_at_s > plan.trip_at_s


def test_plan_attempt_unthrottled_goes_straight_to_kill():
    spec = hot_spec()
    network = ThermalNetwork(1, spec, node_watts=100.0)
    network.set_busy(0, 0.0)
    plan = plan_attempt(network, [0], 0.0, throttle=False)
    assert plan.trip_at_s is None
    assert plan.kill_at_s is not None
    assert network.temperature(0, plan.kill_at_s) == pytest.approx(
        spec.kill_c, abs=1e-9
    )


# ---------------------------------------------------------------------------
# Temperature-modulated failure injection
# ---------------------------------------------------------------------------

def run_injector(seed, heat=True):
    from repro.core.events import EventKernel

    spec = make_spec(r=1.0, c=2.0, ambient=20.0, trip_c=150.0,
                     resume_c=100.0, kill_c=200.0)
    kernel = EventKernel()
    network = ThermalNetwork(4, spec, node_watts=100.0)
    if heat:
        for blade in range(4):
            network.set_busy(blade, 0.0)
    faults = []
    injector = ThermalFailureInjector(
        kernel, network, ArrheniusIntensity(base_rate_per_s=0.5),
        horizon_s=200.0, seed=seed,
        on_failure=lambda t, blade: faults.append((t, blade)),
    )
    kernel.run()
    return faults, injector


def test_thermal_faults_replay_bit_exactly():
    a, _ = run_injector(7)
    b, _ = run_injector(7)
    c, _ = run_injector(8)
    assert a == b
    assert a != c          # a different seed draws a different history
    assert a              # the hot configuration does fail


def test_hot_blades_fail_more_than_idle_ones():
    hot, hot_inj = run_injector(3, heat=True)
    cold, cold_inj = run_injector(3, heat=False)
    # Same candidate stream (same seed, same rate bound); acceptance
    # is what temperature modulates.
    assert hot_inj.candidates == cold_inj.candidates
    assert len(hot) > len(cold)
    assert hot_inj.accepted == len(hot)


# ---------------------------------------------------------------------------
# The conservation auditor
# ---------------------------------------------------------------------------

def test_auditor_accepts_an_honest_ledger():
    spec = make_spec()
    network = ThermalNetwork(2, spec, node_watts=80.0, keep_ledger=True)
    network.set_busy(0, 1.0)
    network.set_busy(1, 2.5)
    network.set_idle(0, 7.0)
    network.finish(10.0)
    assert network.segments
    audit_thermal_network(network)


def test_auditor_catches_a_corrupted_segment():
    from dataclasses import replace

    spec = make_spec()
    network = ThermalNetwork(1, spec, node_watts=80.0, keep_ledger=True)
    network.set_busy(0, 1.0)
    network.finish(5.0)
    last = network.segments[-1]
    network.segments[-1] = replace(
        last, temp_end_c=last.temp_end_c + 0.5
    )
    with pytest.raises(InvariantViolation):
        audit_thermal_network(network)


# ---------------------------------------------------------------------------
# Scheduler integration
# ---------------------------------------------------------------------------

def thermal_outcome(thermal=True, accel=200.0, seed=11, jobs=6,
                    throttle=True, spec_name="p4-beowulf"):
    from repro.platform.registry import platform_by_name
    from repro.sched import BatchScheduler, SchedConfig, synthetic_stream

    spec = platform_by_name(spec_name)
    sched = BatchScheduler(
        platform=spec,
        config=SchedConfig(
            audit=True, thermal=thermal, thermal_accel=accel,
            throttle=throttle,
        ),
    )
    sched.submit_stream(
        synthetic_stream(
            jobs=jobs, max_nodes=min(spec.nodes, 4),
            flop_rate=spec.node_flop_rate(), seed=seed,
        )
    )
    return sched.run()


def test_thermal_sched_is_deterministic_and_audited():
    a = thermal_outcome()
    b = thermal_outcome()
    assert a.thermal == b.thermal
    assert a.makespan_s == b.makespan_s
    assert [r.energy_j for r in a.records] == [
        r.energy_j for r in b.records
    ]
    assert a.thermal.peak_c > 20.0
    assert a.thermal.heat_j > 0.0


def test_unthrottled_thermal_energy_matches_power_model():
    """With no trips the thermal bill reduces to PowerModel exactly."""
    cold = thermal_outcome(thermal=False)
    warm = thermal_outcome(thermal=True)
    assert warm.thermal.trips == 0      # default specs never trip
    assert warm.makespan_s == pytest.approx(cold.makespan_s)
    for rc, rw in zip(cold.records, warm.records):
        assert rw.energy_j == pytest.approx(rc.energy_j, rel=1e-9)


def test_cooling_overhead_factor_matches_power_model():
    from repro.platform.registry import platform_by_name

    active = platform_by_name("p4-beowulf").power_model()
    passive = platform_by_name("metablade").power_model()
    assert cooling_overhead_factor(active) == pytest.approx(
        active.total_watts / active.node_watts
    )
    assert cooling_overhead_factor(passive) == 1.0


def test_thermal_failure_injection_requires_thermal():
    from repro.platform.registry import platform_by_name
    from repro.sched import BatchScheduler, SchedConfig

    sched = BatchScheduler(platform=platform_by_name("metablade"),
                           config=SchedConfig())
    with pytest.raises(RuntimeError):
        sched.inject_thermal_failures(horizon_s=1.0, mtbf_s=0.1)


# ---------------------------------------------------------------------------
# Replay and reporting
# ---------------------------------------------------------------------------

def test_thermal_manifest_replays_bit_exactly(tmp_path):
    from repro.check import record_sched_manifest, replay_manifest

    manifest = record_sched_manifest(
        seed=5, jobs=6, platform="p4-beowulf",
        thermal=True, thermal_accel=120.0, thermal_fail=True,
    )
    assert manifest.params["thermal"] is True
    assert "thermal" in manifest.payload
    report = replay_manifest(manifest)
    assert report.ok, report.format()


def test_thermal_fail_without_thermal_is_rejected():
    from repro.check import record_sched_manifest

    with pytest.raises(ValueError):
        record_sched_manifest(seed=5, jobs=2, thermal=False,
                              thermal_fail=True)


def test_mtbf_report_orders_hot_machines_first():
    from repro.metrics import thermal_mtbf_report
    from repro.platform.registry import platform_by_name

    rows, table = thermal_mtbf_report(
        [platform_by_name(n)
         for n in ("metablade2", "p4-beowulf", "loki")]
    )
    assert [r.name for r in rows][0] == "p4-beowulf"
    by_name = {r.name: r for r in rows}
    # The paper's causal chain: hotter machine-room nodes fail more.
    assert by_name["p4-beowulf"].busy_c > by_name["metablade2"].busy_c
    assert (by_name["p4-beowulf"].rate_per_year
            > by_name["metablade2"].rate_per_year)
    assert "busy C" in table
