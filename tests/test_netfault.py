"""Network fault & retransmit layer: timeline, delivery, scheduler, e2e."""

import random

import numpy as np
import pytest

from repro.core.events import EventKernel
from repro.nbody.parallel import run_parallel_nbody
from repro.nbody.sim import SimConfig
from repro.network.faults import (
    FaultTimeline,
    FaultWindow,
    NetFaultConfig,
    RetryPolicy,
    chassis_resource,
    draw_fault_plan,
    link_resource,
)
from repro.network.link import Calendar
from repro.network.timing import star_fabric
from repro.simmpi import (
    ANY_SOURCE,
    LinkDownError,
    NodeFailureError,
    SimMpiRuntime,
)

RATE = 87.5e6


# ---------------------------------------------------------------------------
# Fault timeline
# ---------------------------------------------------------------------------

def test_timeline_coalesces_and_answers_queries():
    tl = FaultTimeline()
    tl.add("link0", 1.0, 2.0)
    tl.add("link0", 1.5, 3.0)     # overlaps -> merges
    tl.add("link0", 5.0, 6.0)
    assert len(tl) == 2
    assert tl.down_at("link0", 1.0)
    assert tl.down_at("link0", 2.5)
    assert not tl.down_at("link0", 3.0)      # half-open [start, end)
    assert not tl.down_at("link0", 4.0)
    assert not tl.down_at("link1", 1.5)
    assert tl.down_during("link0", 0.0, 1.1)
    assert tl.down_during("link0", 2.9, 4.0)
    assert not tl.down_during("link0", 3.0, 5.0)
    assert tl.down_during("link0", 4.0, 5.5)
    windows = tl.windows()
    assert windows == [
        FaultWindow("link0", 1.0, 3.0), FaultWindow("link0", 5.0, 6.0),
    ]


def test_timeline_rejects_empty_windows():
    tl = FaultTimeline()
    with pytest.raises(ValueError):
        tl.add("link0", 1.0, 1.0)
    with pytest.raises(ValueError):
        FaultWindow("link0", 2.0, 1.0)


def test_fault_plan_is_seed_deterministic():
    resources = [link_resource(n) for n in range(8)]
    a = draw_fault_plan(resources, 1.0, mtbf_s=0.2, mttr_s=0.01, seed=4)
    b = draw_fault_plan(resources, 1.0, mtbf_s=0.2, mttr_s=0.01, seed=4)
    c = draw_fault_plan(resources, 1.0, mtbf_s=0.2, mttr_s=0.01, seed=5)
    assert a.windows() == b.windows()
    assert a.windows() != c.windows()
    assert len(a) > 0
    assert all(w.start_s < 1.0 for w in a.windows())


def test_retry_policy_ladder():
    policy = RetryPolicy(rto_s=1e-4, backoff=2.0, max_retries=3)
    assert policy.timeout_s(0) == pytest.approx(1e-4)
    assert policy.timeout_s(2) == pytest.approx(4e-4)
    # Geometric ladder: 1 + 2 + 4 RTOs.
    assert policy.ride_through_s == pytest.approx(7e-4)
    with pytest.raises(ValueError):
        RetryPolicy(rto_s=0.0)
    with pytest.raises(ValueError):
        RetryPolicy(backoff=0.5)


# ---------------------------------------------------------------------------
# Calendar prune floor (the wire-calendar double-booking fix)
# ---------------------------------------------------------------------------

def _oracle_book(starts, ends, ready, duration):
    """The unpruned booking rule: earliest idle gap at-or-after ready."""
    from bisect import bisect_right

    i = bisect_right(starts, ready)
    s = ready
    if i > 0 and ends[i - 1] > s:
        s = ends[i - 1]
    while i < len(starts) and starts[i] < s + duration:
        if ends[i] > s:
            s = ends[i]
        i += 1
    starts.insert(i, s)
    ends.insert(i, s + duration)
    return s


def test_calendar_matches_unpruned_oracle_under_bounded_skew():
    # Bookings arrive slightly out of virtual-time order (bounded skew),
    # far more of them than the prune threshold.  The pruned calendar
    # must book every transfer at exactly the oracle's start time —
    # pruning may only forget history no in-flight booking can reach.
    rng = random.Random(17)
    cal = Calendar()
    starts, ends = [], []
    t = 0.0
    for _ in range(3000):
        t += rng.expovariate(1000.0)
        ready = max(0.0, t - rng.uniform(0.0, 2e-3))
        duration = rng.uniform(1e-5, 4e-4)
        got = cal.book(ready, duration)
        want = _oracle_book(starts, ends, ready, duration)
        assert got == want
    assert cal.pruned_floor > 0.0          # pruning actually happened
    assert len(cal.starts) < 3000


def test_calendar_stale_booking_respects_pruned_floor():
    cal = Calendar()
    t = 0.0
    for _ in range(3000):
        cal.book(t, 1e-4)
        t += 1.5e-4
    floor = cal.pruned_floor
    assert floor > 0.0
    # A booking from the forgotten past may not land inside pruned
    # history, and may not overlap any retained interval.
    got = cal.book(0.0, 1e-4)
    assert got >= floor
    for s, e in zip(cal.starts, cal.ends):
        if (s, e) == (got, got + 1e-4):
            continue
        assert e <= got or s >= got + 1e-4


def test_calendar_reset_clears_floor():
    cal = Calendar()
    t = 0.0
    for _ in range(3000):
        cal.book(t, 1e-4)
        t += 1.5e-4
    assert cal.pruned_floor > 0.0
    cal.reset()
    assert cal.pruned_floor == 0.0
    assert cal.book(0.0, 1e-4) == 0.0


# ---------------------------------------------------------------------------
# ANY_SOURCE failure detection (the wildcard-receive fix)
# ---------------------------------------------------------------------------

def test_any_source_recv_raises_when_every_peer_failed():
    runtime = SimMpiRuntime(3, fabric=star_fabric(3), flop_rate=RATE)
    runtime.fail_at(0.001, 1)
    runtime.fail_at(0.002, 2)
    caught = []

    def prog(comm):
        if comm.rank == 0:
            try:
                yield from comm.recv(ANY_SOURCE)
            except NodeFailureError as error:
                caught.append((error.rank, error.time_s))
                raise
        else:
            # Blocks forever; the injector kills it.
            yield from comm.recv(0)

    result = runtime.run(prog)
    # The error names the *last* peer death — the instant the wildcard
    # receive became unsatisfiable.
    assert caught == [(2, 0.002)]
    assert set(result.failed_ranks) == {0, 1, 2}


def test_any_source_recv_still_drains_mail_from_dead_peers():
    runtime = SimMpiRuntime(2, fabric=star_fabric(2), flop_rate=RATE)
    runtime.fail_at(0.01, 1)

    def prog(comm):
        if comm.rank == 1:
            comm.send(0, "parting gift")
            yield from comm.recv(0)        # dies waiting
        else:
            got = yield from comm.recv(ANY_SOURCE)
            return got

    result = runtime.run(prog)
    # The message outlives its sender: mailbox drains before the
    # all-peers-failed check fires.
    assert result.results[0] == "parting gift"
    assert result.failed_ranks == (1,)


# ---------------------------------------------------------------------------
# Reliable delivery: retransmit, give up, drop
# ---------------------------------------------------------------------------

def _fault_runtime(size, windows, policy=None, kernel=None):
    fabric = star_fabric(size)
    timeline = FaultTimeline()
    for resource, start, end in windows:
        timeline.add(resource, start, end)
    fabric.attach_faults(timeline)
    return SimMpiRuntime(
        size, fabric=fabric, flop_rate=RATE, kernel=kernel,
        net_fault=policy if policy is not None else RetryPolicy(),
    )


def test_lost_frame_is_retransmitted_to_success():
    # Outage covers the first attempt; the backoff ladder outlives it.
    runtime = _fault_runtime(
        2, [("link1", 0.0, 2e-3)],
        policy=RetryPolicy(rto_s=1e-3, backoff=2.0, max_retries=6),
        kernel=EventKernel(record_timeline=True),
    )

    def prog(comm):
        if comm.rank == 0:
            comm.send(1, b"x" * 2000)
            return None
        return (yield from comm.recv(0))

    result = runtime.run(prog)
    assert result.failed_ranks == ()
    assert result.results[1] == b"x" * 2000
    stats = result.stats[0]
    assert stats.retransmits >= 1
    assert stats.sends == 1                 # counted once, on delivery
    kinds = [e.kind for e in runtime.kernel.timeline]
    assert "net-drop" in kinds
    assert "net-giveup" not in kinds


def test_retry_exhaustion_raises_link_down_error():
    policy = RetryPolicy(rto_s=1e-4, backoff=2.0, max_retries=3)
    runtime = _fault_runtime(
        2, [("link1", 0.0, 60.0)], policy=policy,
        kernel=EventKernel(record_timeline=True),
    )
    caught = []

    def prog(comm):
        if comm.rank == 0:
            try:
                comm.send(1, b"doomed")
            except LinkDownError as error:
                caught.append((error.src, error.dst, error.attempts))
                raise
            return None
        try:
            yield from comm.recv(0)
        except NodeFailureError:
            return "peer unreachable"

    result = runtime.run(prog)
    assert caught == [(0, 1, policy.max_retries + 1)]
    # The sender is marked failed (partition == unreachable); the
    # receiver was woken and degraded gracefully.
    assert result.failed_ranks == (0,)
    assert result.results[1] == "peer unreachable"
    kinds = [e.kind for e in runtime.kernel.timeline]
    assert kinds.count("net-giveup") == 1


def test_link_down_error_is_a_node_failure():
    error = LinkDownError(2, 5, 0.125, 4, detail="tag 7")
    assert isinstance(error, NodeFailureError)
    assert error.rank == 2 and error.dst == 5 and error.attempts == 4
    assert "link down after 4 attempts" in str(error)


def test_post_to_dead_destination_traces_a_drop():
    from repro.check import attach_auditors, detach_auditors

    kernel = EventKernel(record_timeline=True)
    runtime = SimMpiRuntime(
        3, fabric=star_fabric(3), flop_rate=RATE, kernel=kernel,
    )
    runtime.fail_at(0.001, 1)
    auditors = attach_auditors(kernel)

    def prog(comm):
        if comm.rank == 1:
            yield from comm.recv(0)        # dies at t=0.001
        elif comm.rank == 2:
            comm.compute(0.005)
            comm.send(0, "late")
        else:
            yield from comm.recv(2)        # wakes after the death
            comm.send(1, "to the dead")

    result = runtime.run(prog)
    detach_auditors(kernel, auditors)      # finish() must not raise
    assert result.failed_ranks == (1,)
    assert result.stats[0].drops == 1
    drops = [e for e in kernel.timeline if e.kind == "drop"]
    assert len(drops) == 1
    assert drops[0].get("dst") == 1
    done = [e for e in kernel.timeline if e.kind == "world-done"]
    assert done[0].get("dropped") == 1


def test_retransmit_auditor_flags_unbalanced_ledger():
    from repro.check import InvariantViolation, RetransmitConservationAuditor

    kernel = EventKernel(record_timeline=True)
    auditor = RetransmitConservationAuditor().attach(kernel)
    kernel.trace("net-drop", time=0.0, src=0, dst=1, tag=0, nbytes=8,
                 mid=0, attempt=0)
    with pytest.raises(InvariantViolation):
        auditor.finish()                   # lost frame never settled
    kernel.trace("send", time=1e-4, src=0, dst=1, tag=0, nbytes=8,
                 arrive=2e-4, mid=0)
    auditor.finish()                       # delivery closes the ledger
    auditor.detach(kernel)


# ---------------------------------------------------------------------------
# End-to-end: treecode step under a mid-run link flap
# ---------------------------------------------------------------------------

CFG = SimConfig(n=400, steps=1, seed=11, theta=0.7, softening=1e-2)
#: Flap windows sitting on the step's tree-exchange burst (probed from
#: the clean trace: comm bursts near t=0.02 and t=0.04).
FLAP = (("link1", 0.018, 0.025), ("link2", 0.020, 0.024))


def _positions(run_result):
    return np.vstack([r[0] for r in run_result.results])


def _run_step(windows):
    kernel = EventKernel(record_timeline=True)
    runtime = _fault_runtime(4, windows, kernel=kernel)
    run = run_parallel_nbody(CFG, 4, RATE, runtime=runtime)
    return run, kernel


@pytest.mark.slow
def test_treecode_survives_link_flap_degraded_but_bit_identical():
    clean, _ = _run_step(())
    flapped, kernel = _run_step(FLAP)
    assert flapped.failed_ranks == ()
    assert sum(s.retransmits for s in flapped.stats) > 0
    # Degraded: retransmission costs time but never answers.
    assert flapped.elapsed_s > clean.elapsed_s
    assert np.array_equal(_positions(clean), _positions(flapped))


@pytest.mark.slow
def test_flapped_step_is_run_to_run_deterministic():
    a, ka = _run_step(FLAP)
    b, kb = _run_step(FLAP)
    assert a.elapsed_s == b.elapsed_s
    ta = [(e.time, e.kind, tuple(e.fields)) for e in ka.timeline]
    tb = [(e.time, e.kind, tuple(e.fields)) for e in kb.timeline]
    assert ta == tb


# ---------------------------------------------------------------------------
# Scheduler integration: ride-through vs partition
# ---------------------------------------------------------------------------

def _one_job_sched(net):
    from repro.sched import BatchScheduler, Fcfs, JobSpec, MicrokernelSweep

    job = MicrokernelSweep(passes=8, flops_per_pass=2.5e6)
    sched = BatchScheduler(policy=Fcfs(), net_fault=net)
    est = job.est_runtime_s(4, sched.flop_rate)
    sched.submit(JobSpec(0, 0.0, 4, est * 2, job))
    return sched, est


def test_long_link_outage_partitions_and_requeues():
    from repro.sched import BatchScheduler, Fcfs, JobSpec, JobState
    from repro.sched import MicrokernelSweep

    policy = RetryPolicy()
    t0 = 0.002
    outage = policy.ride_through_s * 4
    net = NetFaultConfig(
        windows=((link_resource(1), t0, t0 + outage),), policy=policy,
    )
    sched = BatchScheduler(policy=Fcfs(), net_fault=net)
    # Full-machine job: the rerun cannot start until the partitioned
    # blade repairs and rejoins the free pool.
    job = MicrokernelSweep(passes=200, flops_per_pass=2.5e6)
    est = job.est_runtime_s(sched.nodes, sched.flop_rate)
    assert outage < est               # the job is mid-run when it hits
    sched.submit(JobSpec(0, 0.0, sched.nodes, est * 4, job))
    out = sched.run()
    record = out.records[0]
    assert record.state is JobState.COMPLETED
    assert record.failures == 1
    assert record.requeues == 1
    assert len(record.attempts) == 2
    # The rerun waits out the repair window.
    assert record.attempts[1].start_s >= t0 + outage
    assert out.net is not None
    assert out.net.partitions == 1
    assert out.net.windows == 1


def test_short_link_outage_rides_through_on_retransmits():
    from repro.sched import JobState

    policy = RetryPolicy()
    outage = policy.ride_through_s / 2
    net = NetFaultConfig(
        windows=((link_resource(1), 0.002, 0.002 + outage),),
        policy=policy,
    )
    sched, _ = _one_job_sched(net)
    out = sched.run()
    record = out.records[0]
    assert record.state is JobState.COMPLETED
    assert record.failures == 0
    assert len(record.attempts) == 1
    assert out.net.partitions == 0


def test_chassis_outage_reroutes_instead_of_killing():
    from repro.sched import BatchScheduler, Fcfs, JobSpec, JobState
    from repro.sched import MicrokernelSweep

    job = MicrokernelSweep(passes=8, flops_per_pass=2.5e6)
    sched = BatchScheduler(policy=Fcfs(), platform=_rack_platform())
    est = job.est_runtime_s(4, sched.flop_rate)
    net = NetFaultConfig(
        windows=((chassis_resource(0), 0.0, est * 10),),
        policy=RetryPolicy(),
    )
    sched = BatchScheduler(
        policy=Fcfs(), platform=_rack_platform(), net_fault=net,
    )
    # Spread a job across two chassis so inter-chassis traffic exists.
    nodes_per = sched.platform.fabric.nodes_per_chassis
    width = nodes_per + 2
    sched.submit(JobSpec(0, 0.0, width, est * 20, job))
    out = sched.run()
    record = out.records[0]
    assert record.state is JobState.COMPLETED
    assert record.failures == 0               # chassis faults never kill
    assert out.net.partitions == 0
    assert out.net.reroutes > 0               # detoured over the backup


def _rack_platform():
    from repro.platform.registry import PLATFORM_REGISTRY

    for name in sorted(PLATFORM_REGISTRY):
        if PLATFORM_REGISTRY[name].fabric.kind == "rack":
            return PLATFORM_REGISTRY[name]
    pytest.skip("no rack-fabric platform registered")


def test_fault_free_outcome_carries_no_net_summary():
    sched, _ = _one_job_sched(None)
    out = sched.run()
    assert out.net is None


def test_sched_fault_campaign_is_deterministic():
    from repro.sched import BatchScheduler, Fcfs, synthetic_stream

    def run_once():
        net = NetFaultConfig(
            mtbf_s=0.05, mttr_s=0.003, seed=3, horizon_s=0.2,
            policy=RetryPolicy(rto_s=1e-4, max_retries=5),
        )
        sched = BatchScheduler(
            policy=Fcfs(), net_fault=net, record_timeline=True,
        )
        sched.submit_stream(synthetic_stream(
            12, sched.nodes, sched.flop_rate, seed=9,
        ))
        out = sched.run()
        trace = [
            (e.time, e.kind, tuple(e.fields))
            for e in sched.kernel.timeline
        ]
        return out, trace

    a, trace_a = run_once()
    b, trace_b = run_once()
    assert trace_a == trace_b
    assert a.makespan_s == b.makespan_s
    assert a.net == b.net
    assert a.net.retransmits > 0


# ---------------------------------------------------------------------------
# Record / replay with faults injected
# ---------------------------------------------------------------------------

def test_fault_injected_manifest_replays_bit_exactly(tmp_path):
    from repro.check import RunManifest, replay_manifest
    from repro.check.replay import record_sched_manifest

    manifest = record_sched_manifest(
        seed=7, jobs=8, net_fault=True, net_mtbf=0.05, net_mttr=0.003,
    )
    kinds = {e.kind for e in manifest.events}
    assert "net-down" in kinds
    assert manifest.params["net_fault"] is True
    path = manifest.save(tmp_path / "netfault.json")
    report = replay_manifest(RunManifest.load(path))
    assert report.ok, report.format()


def test_manifests_without_net_keys_mean_faults_off():
    from repro.check.replay import _build_sched

    # A pre-fault-layer manifest: params lack every net key.
    sched = _build_sched({
        "jobs": 2, "policy": "fcfs", "interarrival": 0.004,
        "fail_inject": False, "mtbf": 0.05, "checkpoint": 0,
        "max_retries": 3, "seed": 1,
    })
    assert sched.net_fault is None
