"""Hardware CPU models: ports, simulator behaviour, catalog physics."""

import pytest

from repro.cpus.base import ProcessorSpec, WrongAnswerError
from repro.cpus.catalog import (
    ALPHA_EV56_533,
    ATHLON_MP_1200,
    CPU_CATALOG,
    PENTIUM_III_500,
    POWER3_375,
    TABLE1_CPUS,
    TM5600_633,
    TM5800_800,
    cpu_by_name,
)
from repro.cpus.ports import PortSpec, PortTable, make_port_table
from repro.cpus.portsim import HardwareProcessor, PortSimulator, PortTimeline
from repro.cpus.power import FailureModel, PowerModel, ThermalModel
from repro.isa import programs
from repro.isa.instructions import OpClass


def test_port_spec_validation():
    with pytest.raises(ValueError):
        PortSpec(ports=(), latency=1)
    with pytest.raises(ValueError):
        PortSpec(ports=("p",), latency=0)


def test_port_table_covers_all_classes():
    table = make_port_table()
    for opclass in OpClass:
        assert table.spec(opclass).latency >= 1


def test_port_timeline_backfills_idle_slots():
    tl = PortTimeline()
    assert tl.book(ready=100, occupancy=10) == 100     # [100, 110)
    # A later booking that is ready earlier gets the earlier idle slot.
    assert tl.book(ready=0, occupancy=10) == 0
    # A booking that does not fit before 100 goes after 110.
    assert tl.book(ready=95, occupancy=20) == 110


def test_port_timeline_respects_occupancy():
    tl = PortTimeline()
    t0 = tl.book(0, 30)
    t1 = tl.book(0, 30)
    assert t1 >= t0 + 30


def test_simulator_rejects_bad_parameters():
    table = make_port_table()
    with pytest.raises(ValueError):
        PortSimulator(table, issue_width=0)
    with pytest.raises(ValueError):
        PortSimulator(table, issue_width=2, window=-1)


def test_wider_issue_is_never_slower(micro_karp):
    table = make_port_table()
    narrow = PortSimulator(table, issue_width=1, window=32)
    wide = PortSimulator(table, issue_width=4, window=32)
    cn = narrow.simulate(micro_karp.program, micro_karp.make_state()).cycles
    cw = wide.simulate(micro_karp.program, micro_karp.make_state()).cycles
    assert cw <= cn


def test_bigger_window_is_never_slower(micro_karp):
    table = make_port_table()
    small = PortSimulator(table, issue_width=3, window=8)
    big = PortSimulator(table, issue_width=3, window=128)
    cs = small.simulate(micro_karp.program, micro_karp.make_state()).cycles
    cb = big.simulate(micro_karp.program, micro_karp.make_state()).cycles
    assert cb <= cs


def test_in_order_is_never_faster_than_ooo(micro_karp):
    table = make_port_table()
    inorder = PortSimulator(table, issue_width=3, window=0)
    ooo = PortSimulator(table, issue_width=3, window=64)
    ci = inorder.simulate(micro_karp.program, micro_karp.make_state()).cycles
    co = ooo.simulate(micro_karp.program, micro_karp.make_state()).cycles
    assert co <= ci


def test_fma_support_speeds_up_fma_code():
    wl = programs.dot_product(n=64)
    table = make_port_table()
    with_fma = PortSimulator(table, issue_width=3, window=40, has_fma=True)
    without = PortSimulator(table, issue_width=3, window=40, has_fma=False)
    cf = with_fma.simulate(wl.program, wl.make_state()).cycles
    cn = without.simulate(wl.program, wl.make_state()).cycles
    assert cf < cn


def test_kernel_result_fields(micro_math):
    result = PENTIUM_III_500.run_workload(micro_math)
    assert result.cycles > 0
    assert result.seconds > 0
    assert result.mflops > 0
    assert result.mips > 0
    assert result.cycles_per_instruction > 0


def test_wrong_answer_detection(micro_math):
    import numpy as np

    broken = programs.GuestWorkload(
        name="broken",
        program=micro_math.program,
        make_state=micro_math.make_state,
        expected=np.full_like(micro_math.expected, 1e9),
        flops_per_element=1,
        elements=micro_math.elements,
    )
    with pytest.raises(WrongAnswerError):
        PENTIUM_III_500.run_workload(broken)


def test_catalog_lookup():
    assert cpu_by_name("IBM Power3") is POWER3_375
    with pytest.raises(KeyError):
        cpu_by_name("VAX 11/780")


def test_catalog_power_figures_match_paper():
    # Paper Section 2.1: TM5600 ~6 W, Pentium 4 ~75 W at load.
    assert TM5600_633.spec.cpu_watts == 6.0
    assert cpu_by_name("Intel Pentium 4").spec.cpu_watts == 75.0
    assert TM5800_800.spec.cpu_watts == 3.5     # Section 5
    assert not TM5600_633.spec.needs_active_cooling
    assert cpu_by_name("Intel Pentium 4").spec.needs_active_cooling


def test_table1_cpu_set():
    names = [c.name for c in TABLE1_CPUS]
    assert names == [
        "Intel Pentium III",
        "Compaq Alpha EV56",
        "Transmeta TM5600",
        "IBM Power3",
        "AMD Athlon MP",
    ]


# -- power / thermal / failure models ---------------------------------------


def test_cooling_overhead_only_for_active_cooling():
    hot = PowerModel(node_watts=100.0, needs_active_cooling=True)
    cool = PowerModel(node_watts=100.0, needs_active_cooling=False)
    assert hot.cooling_watts == 50.0
    assert cool.cooling_watts == 0.0
    assert hot.total_watts == 150.0
    assert cool.total_watts == 100.0


def test_energy_cost_paper_example():
    # Paper: a 2.04 kW cluster with 50% cooling overhead over 35,040 h
    # at $0.10/kWh costs ~$10,722.
    model = PowerModel(node_watts=2040.0, needs_active_cooling=True)
    cost = model.energy_cost(hours=35_040)
    assert abs(cost - 10_722) < 10


def test_failure_rate_doubles_per_10c():
    fm = FailureModel()
    assert fm.rate_at(50.0) == pytest.approx(2.0 * fm.rate_at(40.0))
    assert fm.rate_at(60.0) == pytest.approx(4.0 * fm.rate_at(40.0))


def test_transmeta_runs_cooler_and_fails_less():
    thermal = ThermalModel()
    fm = FailureModel()
    tm_temp = thermal.component_temperature(
        TM5600_633.spec.cpu_watts, actively_cooled=False
    )
    p4 = cpu_by_name("Intel Pentium 4").spec
    p4_temp = thermal.component_temperature(p4.cpu_watts, actively_cooled=True)
    assert tm_temp < p4_temp
    assert fm.node_rate(TM5600_633.spec) < fm.node_rate(p4)


def test_mtbf_scales_inversely_with_nodes():
    fm = FailureModel()
    one = fm.mtbf_hours(TM5600_633.spec, nodes=1)
    many = fm.mtbf_hours(TM5600_633.spec, nodes=24)
    assert many == pytest.approx(one / 24)
