"""The command-line interface produces the paper's tables."""

import pytest

from repro.cli import build_parser, main


def test_parser_knows_all_commands():
    parser = build_parser()
    for command in (
        "summary", "table1", "table2", "table3", "table4", "table5",
        "table6", "table7", "fig3", "topper", "green500", "all",
    ):
        args = parser.parse_args([command])
        assert args.command == command


def test_cli_requires_a_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_cli_table5(capsys):
    assert main(["table5"]) == 0
    out = capsys.readouterr().out
    assert "MetaBlade" in out
    assert "$35K" in out


def test_cli_summary(capsys):
    assert main(["summary"]) == 0
    out = capsys.readouterr().out
    assert "633-MHz" in out


def test_cli_green500(capsys):
    assert main(["green500"]) == 0
    out = capsys.readouterr().out
    assert "Green500-style" in out
    assert "Top500-style" in out


def test_cli_table2_with_options(capsys):
    assert main(["table2", "--particles", "600", "--cpus", "1", "3"]) == 0
    out = capsys.readouterr().out
    assert "Speed-Up" in out


def test_cli_topper(capsys):
    assert main(["topper"]) == 0
    assert "ToPPeR" in capsys.readouterr().out


def test_parser_knows_sched():
    args = build_parser().parse_args(
        ["sched", "--jobs", "12", "--policy", "backfill", "--fail-inject"]
    )
    assert args.command == "sched"
    assert args.jobs == 12
    assert args.policy == "backfill"
    assert args.fail_inject is True
    assert args.seed == 2001


def test_cli_sched_runs_a_small_stream(capsys):
    assert main(
        ["sched", "--jobs", "6", "--policy", "fcfs", "--width", "40"]
    ) == 0
    out = capsys.readouterr().out
    assert "blade  0 |" in out
    assert "Job-stream accounting (fcfs)" in out
    assert "jobs completed" in out


def test_cli_sched_with_failures_and_checkpoints(capsys):
    assert main(
        ["sched", "--jobs", "8", "--policy", "backfill", "--fail-inject",
         "--mtbf", "0.02", "--checkpoint", "1", "--width", "40"]
    ) == 0
    out = capsys.readouterr().out
    assert "Job-stream accounting (backfill)" in out


def test_cli_seed_flag_reproduces_and_varies(capsys):
    def table2(seed):
        assert main(
            ["table2", "--particles", "600", "--cpus", "1", "3",
             "--seed", seed]
        ) == 0
        return capsys.readouterr().out

    assert table2("7") == table2("7")
    assert table2("7") != table2("8")


def test_cli_sched_seed_is_deterministic(capsys):
    def sched(seed):
        assert main(
            ["sched", "--jobs", "5", "--seed", seed, "--width", "40"]
        ) == 0
        return capsys.readouterr().out

    assert sched("3") == sched("3")
    assert sched("3") != sched("4")
