"""The command-line interface produces the paper's tables."""

import pytest

from repro.cli import build_parser, main


def test_parser_knows_all_commands():
    parser = build_parser()
    for command in (
        "summary", "table1", "table2", "table3", "table4", "table5",
        "table6", "table7", "fig3", "topper", "green500", "all",
    ):
        args = parser.parse_args([command])
        assert args.command == command


def test_cli_requires_a_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_cli_table5(capsys):
    assert main(["table5"]) == 0
    out = capsys.readouterr().out
    assert "MetaBlade" in out
    assert "$35K" in out


def test_cli_summary(capsys):
    assert main(["summary"]) == 0
    out = capsys.readouterr().out
    assert "633-MHz" in out


def test_cli_green500(capsys):
    assert main(["green500"]) == 0
    out = capsys.readouterr().out
    assert "Green500-style" in out
    assert "Top500-style" in out


def test_cli_table2_with_options(capsys):
    assert main(["table2", "--particles", "600", "--cpus", "1", "3"]) == 0
    out = capsys.readouterr().out
    assert "Speed-Up" in out


def test_cli_topper(capsys):
    assert main(["topper"]) == 0
    assert "ToPPeR" in capsys.readouterr().out
