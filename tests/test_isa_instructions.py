"""Instruction and program structural tests."""

import pytest

from repro.isa.instructions import (
    BLOCK_ENDERS,
    FLOP_OPS,
    Instr,
    Op,
    OpClass,
    Program,
    op_class,
)


def test_every_op_has_a_class():
    for op in Op:
        assert isinstance(op_class(op), OpClass)


def test_flop_counting_convention():
    assert Instr(op=Op.FADD, dst="f1", srcs=("f2", "f3")).flops == 1
    assert Instr(op=Op.FMADD, dst="f1", srcs=("f2", "f3", "f4")).flops == 2
    assert Instr(op=Op.ADD, dst="r1", srcs=("r2", "r3")).flops == 0
    assert Instr(op=Op.FMOV, dst="f1", srcs=("f2",)).flops == 0


def test_unknown_register_rejected():
    with pytest.raises(ValueError):
        Instr(op=Op.ADD, dst="r99", srcs=("r1", "r2"))
    with pytest.raises(ValueError):
        Instr(op=Op.FADD, dst="f1", srcs=("g1", "f2"))


def test_branches_end_blocks():
    for op in (Op.JMP, Op.BEQ, Op.BNEZ, Op.FBLT, Op.HALT):
        assert op in BLOCK_ENDERS
    for op in (Op.ADD, Op.FMUL, Op.LD, Op.ST):
        assert op not in BLOCK_ENDERS


def test_program_rejects_out_of_range_branch():
    instrs = (
        Instr(op=Op.BNEZ, srcs=("r1",), imm=99),
        Instr(op=Op.HALT),
    )
    with pytest.raises(ValueError):
        Program(instrs=instrs)


def test_program_rejects_empty():
    with pytest.raises(ValueError):
        Program(instrs=())


def test_basic_block_extraction():
    instrs = (
        Instr(op=Op.ADDI, dst="r1", srcs=("r1",), imm=1),
        Instr(op=Op.ADDI, dst="r2", srcs=("r2",), imm=2),
        Instr(op=Op.BNEZ, srcs=("r1",), imm=0),
        Instr(op=Op.HALT),
    )
    program = Program(instrs=instrs)
    block = program.basic_block_at(0)
    assert len(block) == 3
    assert block[-1].op is Op.BNEZ
    assert program.basic_block_at(3) == (instrs[3],)


def test_static_mix():
    instrs = (
        Instr(op=Op.FADD, dst="f1", srcs=("f1", "f2")),
        Instr(op=Op.LD, dst="r1", srcs=("r2",)),
        Instr(op=Op.HALT),
    )
    mix = Program(instrs=instrs).static_mix()
    assert mix[OpClass.FPADD] == 1
    assert mix[OpClass.LOAD] == 1
    assert mix[OpClass.NOP] == 1


def test_label_lookup():
    instrs = (Instr(op=Op.HALT),)
    program = Program(instrs=instrs, labels=(("start", 0),))
    assert program.label("start") == 0
    with pytest.raises(KeyError):
        program.label("missing")
