"""Golden-model interpreter semantics."""

import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.isa.assembler import assemble
from repro.isa.machine import GuestFault, Machine, MachineState, Memory, run_program


def run_asm(source, **regs):
    program = assemble(source)
    state = MachineState()
    for name, value in regs.items():
        if name.startswith("f"):
            state.fregs[name] = value
        else:
            state.iregs[name] = value
    return run_program(program, state)


def test_integer_arithmetic():
    state, _ = run_asm(
        "add r3, r1, r2\nsub r4, r1, r2\nmul r5, r1, r2\nhalt",
        r1=7, r2=3,
    )
    assert state.iregs["r3"] == 10
    assert state.iregs["r4"] == 4
    assert state.iregs["r5"] == 21


def test_wraparound_64bit():
    state, _ = run_asm("muli r2, r1, 2\nhalt", r1=(1 << 62) + 5)
    # (2**63 + 10) wraps negative in two's complement.
    assert state.iregs["r2"] == -(1 << 63) + 10


def test_shifts_and_logic():
    state, _ = run_asm(
        "shl r2, r1, 4\nshr r3, r1, 1\nand r4, r1, r5\n"
        "or r6, r1, r5\nxor r7, r1, r5\nhalt",
        r1=12, r5=10,
    )
    assert state.iregs["r2"] == 192
    assert state.iregs["r3"] == 6
    assert state.iregs["r4"] == 8
    assert state.iregs["r6"] == 14
    assert state.iregs["r7"] == 6


def test_fp_semantics():
    state, _ = run_asm(
        "fadd f3, f1, f2\nfsub f4, f1, f2\nfmul f5, f1, f2\n"
        "fdiv f6, f1, f2\nfsqrt f7, f1\nfmadd f8, f1, f2, f3\nhalt",
        f1=9.0, f2=2.0,
    )
    assert state.fregs["f3"] == 11.0
    assert state.fregs["f4"] == 7.0
    assert state.fregs["f5"] == 18.0
    assert state.fregs["f6"] == 4.5
    assert state.fregs["f7"] == 3.0
    assert state.fregs["f8"] == 9.0 * 2.0 + 11.0


def test_conversions():
    state, _ = run_asm("ftoi r1, f1\nitof f2, r2\nhalt", f1=3.9, r2=-4)
    assert state.iregs["r1"] == 3
    assert state.fregs["f2"] == -4.0


def test_memory_roundtrip():
    state, _ = run_asm(
        "st r1, r2, 5\nld r3, r1, 5\nfst r1, f1, 9\nfld f2, r1, 9\nhalt",
        r1=100, r2=42, f1=2.25,
    )
    assert state.iregs["r3"] == 42
    assert state.fregs["f2"] == 2.25


def test_branch_taken_and_not():
    state, stats = run_asm(
        "beq r1, r2, 3\nli r3, 111\nhalt\nli r3, 222\nhalt",
        r1=1, r2=1,
    )
    assert state.iregs["r3"] == 222
    assert stats.taken_branches == 1


def test_fp_branches():
    state, _ = run_asm(
        "fblt f1, f2, 3\nli r1, 1\nhalt\nli r1, 2\nhalt", f1=1.0, f2=2.0
    )
    assert state.iregs["r1"] == 2


def test_divide_by_zero_faults():
    with pytest.raises(GuestFault):
        run_asm("fdiv f1, f2, f3\nhalt", f2=1.0, f3=0.0)


def test_sqrt_negative_faults():
    with pytest.raises(GuestFault):
        run_asm("fsqrt f1, f2\nhalt", f2=-1.0)


def test_negative_address_faults():
    with pytest.raises(GuestFault):
        run_asm("ld r1, r2, 0\nhalt", r2=-5)


def test_runaway_guard():
    program = assemble("jmp 0\nhalt")
    with pytest.raises(GuestFault):
        run_program(program, max_steps=100)


def test_stats_counting():
    _, stats = run_asm("fadd f1, f1, f1\nfmadd f2, f1, f1, f2\nhalt", f1=1.0)
    assert stats.instructions == 3
    assert stats.flops == 3  # fadd 1 + fmadd 2


def test_memory_uninitialised_reads_zero():
    mem = Memory()
    assert mem.load_int(123) == 0
    assert mem.load_fp(456) == 0.0


def test_state_copy_is_deep():
    state = MachineState()
    state.mem.store_fp(1, 2.0)
    clone = state.copy()
    clone.mem.store_fp(1, 9.0)
    clone.iregs["r1"] = 5
    assert state.mem.load_fp(1) == 2.0
    assert state.iregs["r1"] == 0


@given(a=st.integers(-2**63, 2**63 - 1), b=st.integers(-2**63, 2**63 - 1))
@settings(max_examples=60, deadline=None)
def test_add_matches_two_complement(a, b):
    state, _ = run_asm("add r3, r1, r2\nhalt", r1=a, r2=b)
    expected = (a + b) & ((1 << 64) - 1)
    if expected >= 1 << 63:
        expected -= 1 << 64
    assert state.iregs["r3"] == expected


@given(x=st.floats(min_value=1e-6, max_value=1e6))
@settings(max_examples=40, deadline=None)
def test_fsqrt_matches_math(x):
    state, _ = run_asm("fsqrt f2, f1\nhalt", f1=x)
    assert state.fregs["f2"] == math.sqrt(x)
