"""Extensions: quadrupoles, Chebyshev Karp, vortex method, SPH."""

import numpy as np
import pytest

from repro.isa import programs
from repro.isa.machine import run_program
from repro.nbody.ic import plummer_sphere
from repro.nbody.karp import KarpTable, karp_rsqrt
from repro.nbody.kernels import direct_accelerations
from repro.nbody.multipole import (
    direct_quadrupole_check,
    quadrupole_from_sums,
    quadrupole_tensor,
)
from repro.nbody.sph import SphSystem, ball_query, cubic_spline
from repro.nbody.traversal import tree_accelerations
from repro.nbody.tree import HashedOctree
from repro.nbody.vortex import (
    VortexSystem,
    ring_self_induced_speed,
    vortex_ring,
)


# --- quadrupole moments -------------------------------------------------------


def test_quadrupole_is_traceless_and_symmetric():
    rng = np.random.default_rng(0)
    pos = rng.standard_normal((50, 3))
    mass = rng.uniform(0.1, 1.0, 50)
    com = (mass[:, None] * pos).sum(axis=0) / mass.sum()
    q = quadrupole_tensor(pos, mass, com)
    assert np.allclose(q, q.T)
    assert abs(np.trace(q)) < 1e-10


def test_quadrupole_parallel_axis_identity():
    rng = np.random.default_rng(1)
    pos = rng.standard_normal((40, 3))
    mass = rng.uniform(0.1, 1.0, 40)
    total = mass.sum()
    com = (mass[:, None] * pos).sum(axis=0) / total
    second = np.einsum("i,ia,ib->ab", mass, pos, pos)
    assert np.allclose(
        quadrupole_from_sums(total, com, second),
        quadrupole_tensor(pos, mass, com),
    )


def test_quadrupole_axial_dumbbell_analytic():
    """Two masses on the z-axis: the expansion must recover the exact
    axial field to O((a/z)^4)."""
    a = 0.1
    pos = np.array([[0, 0, a], [0, 0, -a]])
    mass = np.array([0.5, 0.5])
    com = np.zeros(3)
    q = quadrupole_tensor(pos, mass, com)
    target = np.array([0.0, 0.0, 3.0])
    exact = -(0.5 / (3 - a) ** 2 + 0.5 / (3 + a) ** 2)
    mono = -1.0 / 9.0
    corrected = mono + direct_quadrupole_check(target, com, q)[2]
    assert abs(corrected - exact) < abs(mono - exact) / 50


def test_tree_quadrupole_improves_accuracy():
    pos, _, mass = plummer_sphere(1200, seed=9)
    exact, _ = direct_accelerations(pos, mass, softening=1e-2)
    tree = HashedOctree(pos, mass, leaf_size=16, quadrupoles=True)

    def err(use_quadrupole):
        acc, _ = tree_accelerations(
            tree, theta=0.8, softening=1e-2, use_quadrupole=use_quadrupole
        )
        return np.median(
            np.linalg.norm(acc - exact, axis=1)
            / np.linalg.norm(exact, axis=1)
        )

    assert err(True) < 0.5 * err(False)


def test_quadrupole_requires_enabled_tree():
    pos, _, mass = plummer_sphere(100, seed=2)
    tree = HashedOctree(pos, mass)
    with pytest.raises(ValueError):
        tree_accelerations(tree, use_quadrupole=True)


# --- Chebyshev Karp ------------------------------------------------------------


def test_chebyshev_seed_beats_linear():
    x = np.random.default_rng(3).uniform(1.0, 4.0 - 1e-9, 5000)
    lin = KarpTable(size=64, newton_iters=0, interpolation="linear")
    cheb = KarpTable(size=64, newton_iters=0, interpolation="chebyshev")
    exact = 1.0 / np.sqrt(x)
    err_lin = np.max(np.abs(karp_rsqrt(x, lin) - exact) / exact)
    err_cheb = np.max(np.abs(karp_rsqrt(x, cheb) - exact) / exact)
    assert err_cheb < err_lin / 20


def test_chebyshev_one_newton_reaches_machine_precision():
    x = np.logspace(-10, 10, 10_001)
    table = KarpTable(size=256, newton_iters=1, interpolation="chebyshev")
    rel = np.abs(karp_rsqrt(x, table) * np.sqrt(x) - 1.0)
    assert rel.max() < 5e-15


def test_invalid_interpolation_rejected():
    with pytest.raises(ValueError):
        KarpTable(interpolation="spline")


def test_chebyshev_guest_program_verifies():
    wl = programs.gravity_microkernel_karp_chebyshev(n=24, passes=2)
    state, _ = run_program(wl.program, wl.make_state())
    assert wl.check(state)


def test_chebyshev_guest_on_cms():
    from repro.cms import CmsConfig, CodeMorphingSoftware

    wl = programs.gravity_microkernel_karp_chebyshev(n=24, passes=4)
    cms = CodeMorphingSoftware(CmsConfig(hot_threshold=2))
    result = cms.run(wl.program, wl.make_state(), max_steps=10**7)
    assert wl.check(result.state)


# --- vortex particle method -----------------------------------------------------


@pytest.fixture(scope="module")
def vortex_cloud():
    rng = np.random.default_rng(7)
    pos = rng.uniform(-1, 1, (500, 3))
    alpha = 0.01 * rng.standard_normal((500, 3))
    return VortexSystem(pos, alpha, core_radius=0.1)


def test_vortex_tree_matches_direct(vortex_cloud):
    direct = vortex_cloud.direct_velocities()
    tree, stats = vortex_cloud.tree_velocities(theta=0.3)
    rel = np.linalg.norm(tree - direct, axis=1) / (
        np.linalg.norm(direct, axis=1) + 1e-30
    )
    assert np.median(rel) < 0.02
    assert stats.interactions <= 500 * 500
    # At a looser angle the tree must actually save interactions.
    _, loose = vortex_cloud.tree_velocities(theta=0.8)
    assert loose.interactions < 500 * 500
    assert loose.particle_cell > 0


def test_vortex_smaller_theta_more_accurate(vortex_cloud):
    direct = vortex_cloud.direct_velocities()

    def err(theta):
        tree, _ = vortex_cloud.tree_velocities(theta=theta)
        return np.median(
            np.linalg.norm(tree - direct, axis=1)
            / (np.linalg.norm(direct, axis=1) + 1e-30)
        )

    assert err(0.2) < err(0.8)


def test_vortex_ring_self_propels():
    pos, alpha = vortex_ring(n=200, ring_radius=1.0, circulation=1.0)
    system = VortexSystem(pos, alpha, core_radius=0.05)
    vel = system.direct_velocities()
    uz = vel[:, 2].mean()
    predicted = ring_self_induced_speed(1.0, 1.0, 0.05)
    # Kelvin's constant depends on the core model; the regularised ring
    # translates along +z at the right order.
    assert uz > 0
    assert 0.6 * predicted < uz < 1.3 * predicted
    # Transverse drift is zero by symmetry.
    assert abs(vel[:, 0].mean()) < 1e-12
    assert abs(vel[:, 1].mean()) < 1e-12


def test_vortex_total_circulation_invariant():
    pos, alpha = vortex_ring(n=64)
    system = VortexSystem(pos, alpha)
    assert np.allclose(system.total_circulation, 0.0, atol=1e-12)


def test_vortex_validation():
    with pytest.raises(ValueError):
        VortexSystem(np.zeros((4, 3)), np.zeros((3, 3)))
    with pytest.raises(ValueError):
        VortexSystem(np.zeros((4, 3)), np.zeros((4, 3)), core_radius=0.0)


# --- SPH ---------------------------------------------------------------------


@pytest.fixture(scope="module")
def lattice_sph():
    side = 8
    g = (np.arange(side) + 0.5) / side
    px, py, pz = np.meshgrid(g, g, g, indexing="ij")
    pos = np.stack([px.ravel(), py.ravel(), pz.ravel()], axis=1)
    mass = np.full(len(pos), 1.0 / len(pos))
    return SphSystem(pos, mass, h=2.0 / side)


def test_kernel_normalisation():
    h = 0.25
    rng = np.random.default_rng(11)
    samples = rng.uniform(-2 * h, 2 * h, (300_000, 3))
    r = np.linalg.norm(samples, axis=1)
    integral = cubic_spline(r / h, h).mean() * (4 * h) ** 3
    assert integral == pytest.approx(1.0, abs=0.01)


def test_kernel_compact_support():
    h = 0.5
    q = np.array([0.0, 0.5, 1.0, 1.9, 2.0, 5.0])
    w = cubic_spline(q, h)
    assert w[0] > w[1] > w[2] > w[3] > 0
    assert w[4] == 0.0 and w[5] == 0.0


def test_sph_tree_density_equals_direct(lattice_sph):
    rho_tree, pairs = lattice_sph.densities()
    rho_direct = lattice_sph.densities_direct()
    assert np.allclose(rho_tree, rho_direct)
    assert pairs > 0


def test_sph_interior_density_near_unity(lattice_sph):
    rho, _ = lattice_sph.densities()
    centre_mask = np.all(
        np.abs(lattice_sph.pos - 0.5) < 0.25, axis=1
    )
    assert np.median(rho[centre_mask]) == pytest.approx(1.0, abs=0.05)


def test_ball_query_matches_brute_force(lattice_sph):
    tree = lattice_sph.tree
    rng = np.random.default_rng(5)
    for _ in range(10):
        centre = rng.uniform(0, 1, 3)
        radius = rng.uniform(0.05, 0.4)
        got = ball_query(tree, centre, radius)
        d2 = ((tree.pos - centre) ** 2).sum(axis=1)
        want = np.sort(np.flatnonzero(d2 <= radius * radius))
        assert np.array_equal(got, want)


def test_sph_pressure_forces_push_apart(lattice_sph):
    """Uniform pressure field on a uniform lattice: interior forces
    cancel; a high-pressure centre pushes neighbours outward."""
    rho, _ = lattice_sph.densities()
    centre_idx = np.argmin(
        ((lattice_sph.pos - 0.5) ** 2).sum(axis=1)
    )
    uniform = np.ones_like(rho)
    hot = uniform.copy()
    hot[centre_idx] = 10.0
    # Differencing against the uniform field cancels the finite-domain
    # boundary forces exactly, isolating the hot spot's push.
    delta = (
        lattice_sph.pressure_accelerations(rho, hot)
        - lattice_sph.pressure_accelerations(rho, uniform)
    )
    d = lattice_sph.pos - lattice_sph.pos[centre_idx]
    dist = np.linalg.norm(d, axis=1)
    ring = (dist > 0) & (dist < 2 * lattice_sph.h)
    outward = np.einsum("ik,ik->i", delta[ring], d[ring])
    assert np.all(outward > 0)


def test_sph_validation():
    with pytest.raises(ValueError):
        SphSystem(np.zeros((4, 3)), np.zeros(4), h=0.0)
    with pytest.raises(ValueError):
        SphSystem(np.zeros((4, 2)), np.zeros(4), h=0.1)
