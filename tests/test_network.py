"""Fabric models: links, calendars, switch, star topology."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.network.link import Calendar, FAST_ETHERNET, Link, LinkSchedule
from repro.network.nic import FAST_ETHERNET_NIC, Nic
from repro.network.switch import (
    BackplaneSchedule,
    FAST_ETHERNET_SWITCH_24,
    Switch,
)
from repro.network.timing import IdealFabric, star_fabric
from repro.network.topology import StarTopology


def test_link_validation():
    with pytest.raises(ValueError):
        Link(name="x", bandwidth_bps=0, latency_s=1e-6)
    with pytest.raises(ValueError):
        Link(name="x", bandwidth_bps=1e8, latency_s=-1)


def test_fast_ethernet_serialisation():
    # 100 Mb/s: 1500 bytes take 120 microseconds on the wire.
    assert FAST_ETHERNET.serialization_s(1500) == pytest.approx(120e-6)


def test_calendar_sequential_bookings_serialise():
    cal = Calendar()
    t0 = cal.book(0.0, 1.0)
    t1 = cal.book(0.0, 1.0)
    assert t0 == 0.0
    assert t1 == 1.0
    assert cal.busy_s == 2.0


def test_calendar_backfills_out_of_order_bookings():
    cal = Calendar()
    late = cal.book(10.0, 1.0)
    early = cal.book(0.0, 1.0)
    assert late == 10.0
    assert early == 0.0         # the earlier gap is still available


@given(
    requests=st.lists(
        st.tuples(
            st.floats(min_value=0, max_value=100),
            st.floats(min_value=0.01, max_value=5),
        ),
        min_size=1,
        max_size=40,
    )
)
@settings(max_examples=50, deadline=None)
def test_calendar_bookings_never_overlap(requests):
    cal = Calendar()
    intervals = []
    for ready, dur in requests:
        start = cal.book(ready, dur)
        assert start >= ready
        intervals.append((start, start + dur))
    intervals.sort()
    for (a0, a1), (b0, b1) in zip(intervals, intervals[1:]):
        assert b0 >= a1 - 1e-12


def test_link_schedule_contention():
    sched = LinkSchedule(FAST_ETHERNET)
    d1, a1 = sched.occupy(0.0, 125_000)   # 10 ms serialisation
    d2, a2 = sched.occupy(0.0, 125_000)
    assert d2 >= d1 + 0.01 - 1e-9
    assert a2 > a1
    assert sched.transfers == 2


def test_switch_nonblocking_check():
    assert FAST_ETHERNET_SWITCH_24.nonblocking
    starved = Switch(
        name="oversubscribed", ports=24,
        port_link=FAST_ETHERNET, backplane_bps=1e8,
    )
    assert not starved.nonblocking


def test_star_topology_routing_and_times():
    # post_time is the NIC-accept instant: the caller has already
    # charged send overhead, so the wire cost starts right there.
    star = StarTopology(nodes=4)
    t = star.send(0, 1, nbytes=10_000, post_time=0.0)
    expected_min = (
        FAST_ETHERNET.transfer_s(10_000)
        + FAST_ETHERNET_NIC.recv_overhead_s
    )
    assert t.arrive_time >= expected_min
    assert t.depart_time >= t.post_time
    assert star.total_bytes() == 10_000


def test_star_loopback_skips_the_wire():
    star = StarTopology(nodes=2)
    t = star.send(1, 1, nbytes=1_000_000, post_time=0.0)
    wire = FAST_ETHERNET.serialization_s(1_000_000)
    assert t.arrive_time < wire     # no serialisation charged


def test_star_rejects_bad_nodes():
    star = StarTopology(nodes=2)
    with pytest.raises(ValueError):
        star.send(0, 5, 10, 0.0)
    with pytest.raises(ValueError):
        StarTopology(nodes=100)     # exceeds the 24-port switch


def test_uplink_contention_with_two_messages():
    star = StarTopology(nodes=3)
    a = star.send(0, 1, nbytes=125_000, post_time=0.0)
    b = star.send(0, 2, nbytes=125_000, post_time=0.0)
    # Same uplink: second message departs after the first serialises.
    assert b.depart_time >= a.depart_time + 0.01 - 1e-9


def test_reset_clears_state():
    star = StarTopology(nodes=2)
    star.send(0, 1, 1000, 0.0)
    star.reset()
    assert star.total_bytes() == 0
    assert star.uplink_busy_s(0) == 0.0


def test_ideal_fabric_is_free():
    fabric = IdealFabric(nodes=8)
    t = fabric.send(0, 7, nbytes=10**9, post_time=5.0)
    assert t.arrive_time == 5.0


def test_star_fabric_helper():
    fabric = star_fabric(24)
    assert fabric.nodes == 24
