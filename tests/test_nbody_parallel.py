"""Parallel treecode over SimMPI: determinism, scaling, decomposition."""

import numpy as np
import pytest

from repro.nbody.parallel import (
    run_parallel_nbody,
    scaling_study,
)
from repro.nbody.sim import SimConfig

RATE = 87.5e6
CFG = SimConfig(n=1200, steps=2, dt=1e-3, theta=0.7, softening=1e-2)


def _positions(run_result):
    return np.vstack([r[0] for r in run_result.results])


@pytest.mark.slow
def test_trajectories_identical_for_any_rank_count():
    base = _positions(run_parallel_nbody(CFG, 1, RATE))
    for cpus in (2, 3, 8):
        other = _positions(run_parallel_nbody(CFG, cpus, RATE))
        assert np.array_equal(base, other), cpus


@pytest.mark.slow
def test_parallel_matches_bit_for_bit_with_count_balance():
    work = _positions(run_parallel_nbody(CFG, 4, RATE, balance="work"))
    count = _positions(run_parallel_nbody(CFG, 4, RATE, balance="count"))
    assert np.array_equal(work, count)


def test_invalid_balance_rejected():
    with pytest.raises(ValueError):
        run_parallel_nbody(CFG, 2, RATE, balance="vibes")


@pytest.mark.slow
def test_more_cpus_is_faster_but_not_ideal():
    cfg = SimConfig(n=2500, steps=1, theta=0.7, softening=1e-2)
    points = scaling_study(cfg, (1, 4, 16), RATE)
    assert points[0].speedup == pytest.approx(1.0)
    # Monotone speedup...
    assert points[1].speedup > 1.5
    assert points[2].speedup > points[1].speedup
    # ...but sublinear: the Fast Ethernet star costs something.
    assert points[2].efficiency < 1.0
    assert points[2].comm_fraction > 0.0


@pytest.mark.slow
def test_ideal_network_scales_better():
    cfg = SimConfig(n=2500, steps=1, theta=0.7, softening=1e-2)
    real = scaling_study(cfg, (1, 16), RATE)[-1]
    ideal = scaling_study(cfg, (1, 16), RATE, ideal_network=True)[-1]
    assert ideal.speedup > real.speedup
    assert ideal.comm_fraction < real.comm_fraction


@pytest.mark.slow
def test_work_balance_beats_count_balance_at_scale():
    cfg = SimConfig(n=2500, steps=2, theta=0.7, softening=1e-2)
    work = scaling_study(cfg, (1, 12), RATE, balance="work")[-1]
    count = scaling_study(cfg, (1, 12), RATE, balance="count")[-1]
    assert work.time_s <= count.time_s * 1.02


def test_scaling_study_warns_on_counts_beyond_the_platform():
    cfg = SimConfig(n=200, steps=1, seed=3)
    with pytest.warns(UserWarning, match="loki has only 16 nodes"):
        points = scaling_study(cfg, (1, 2, 999), RATE, platform="loki")
    assert [p.cpus for p in points] == [1, 2]
