"""Cross-cutting property-based tests on core invariants."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.cms import CmsConfig, CodeMorphingSoftware
from repro.isa import programs
from repro.isa.machine import run_program
from repro.isa.randprog import random_program, random_state
from repro.metrics import CostParameters, tco_for
from repro.cluster import METABLADE, TABLE5_CLUSTERS
from repro.network.timing import star_fabric
from repro.simmpi import SimMpiRuntime
from repro.vliw.atoms import atoms_from_block
from repro.vliw.molecules import FULL_FORMAT, NARROW_FORMAT
from repro.vliw.scheduler import dependence_graph, schedule_block
from repro.vliw.units import TM5600_LATENCIES


# --- scheduler invariants -------------------------------------------------


@given(seed=st.integers(0, 10_000),
       limits=st.sampled_from([FULL_FORMAT, NARROW_FORMAT]))
@settings(max_examples=60, deadline=None)
def test_schedule_is_a_permutation_respecting_dependences(seed, limits):
    program = random_program(seed, blocks=1, block_len=12)
    block = program.basic_block_at(0)
    atoms = atoms_from_block(block, TM5600_LATENCIES)
    molecules = schedule_block(atoms, limits)

    # Every atom exactly once.
    seqs = [a.seq for m in molecules for a in m]
    assert sorted(seqs) == list(range(len(atoms)))

    # Molecule order respects every dependence kind's issue ordering.
    position = {}
    for mi, mol in enumerate(molecules):
        for atom in mol:
            position[atom.seq] = mi
    edges = dependence_graph(atoms)
    for i in range(len(atoms)):
        for p in edges.data[i]:
            assert position[p] < position[i]
        for p in edges.waw[i]:
            assert position[p] < position[i]
        for p in edges.war_order[i]:
            assert position[p] <= position[i]

    # Slot limits honoured (Molecule __post_init__ enforces, but check
    # widths anyway).
    for mol in molecules:
        assert len(mol) <= limits.max_atoms


@given(seed=st.integers(0, 10_000))
@settings(max_examples=30, deadline=None)
def test_narrow_format_never_faster(seed):
    program = random_program(seed, blocks=2, block_len=10)
    wide = CodeMorphingSoftware(
        CmsConfig(hot_threshold=1, limits=FULL_FORMAT)
    ).run(program, random_state(seed), max_steps=10**6)
    narrow = CodeMorphingSoftware(
        CmsConfig(hot_threshold=1, limits=NARROW_FORMAT)
    ).run(program, random_state(seed), max_steps=10**6)
    assert wide.cycles <= narrow.cycles


# --- guest suite kernels ----------------------------------------------------


@pytest.mark.parametrize("builder", programs.SUITE_KERNELS)
def test_suite_kernels_verify_on_golden(builder):
    wl = builder()
    state, _ = run_program(wl.program, wl.make_state(), max_steps=10**7)
    assert wl.check(state), wl.name


@pytest.mark.parametrize("builder", programs.SUITE_KERNELS)
def test_suite_kernels_cms_equivalence(builder):
    wl = builder()
    golden, _ = run_program(wl.program, wl.make_state(), max_steps=10**7)
    cms = CodeMorphingSoftware(CmsConfig(hot_threshold=2))
    result = cms.run(wl.program, wl.make_state(), max_steps=10**7)
    assert result.state.architectural_view() == golden.architectural_view()


@given(n=st.integers(2, 40), seed=st.integers(0, 100))
@settings(max_examples=15, deadline=None)
def test_insertion_sort_property(n, seed):
    wl = programs.insertion_sort(n=n, seed=seed)
    state, _ = run_program(wl.program, wl.make_state(), max_steps=10**7)
    assert wl.check(state)


# --- SimMPI random permutation routing ---------------------------------------


@given(seed=st.integers(0, 1000), size=st.integers(2, 12))
@settings(max_examples=20, deadline=None)
def test_random_permutation_exchange(seed, size):
    """Every rank sends to a random permutation target; all payloads
    arrive intact and virtual time advances."""
    rng = np.random.default_rng(seed)
    perm = rng.permutation(size)

    def prog(comm):
        dst = int(perm[comm.rank])
        comm.send(dst, ("from", comm.rank))
        src = int(np.flatnonzero(perm == comm.rank)[0])
        tag_msg = yield from comm.recv(src)
        return tag_msg

    runtime = SimMpiRuntime(size, star_fabric(size))
    result = runtime.run(prog)
    for rank in range(size):
        sender = int(np.flatnonzero(perm == rank)[0])
        assert result.results[rank] == ("from", sender)
    assert result.elapsed_s > 0


# --- TCO monotonicity ---------------------------------------------------------


@given(
    utility=st.floats(min_value=0.01, max_value=1.0),
    space=st.floats(min_value=10.0, max_value=1000.0),
    cpu_hour=st.floats(min_value=0.0, max_value=100.0),
)
@settings(max_examples=30, deadline=None)
def test_tco_monotone_in_every_rate(utility, space, cpu_hour):
    base = CostParameters()
    bumped = CostParameters(
        utility_usd_per_kwh=utility,
        space_usd_per_sqft_year=space,
        downtime_usd_per_cpu_hour=cpu_hour,
    )
    for cluster in (METABLADE, TABLE5_CLUSTERS[0]):
        b0 = tco_for(cluster, base)
        b1 = tco_for(cluster, bumped)
        # Component-wise monotone in its own rate.
        if utility >= base.utility_usd_per_kwh:
            assert b1.power_cooling >= b0.power_cooling
        if space >= base.space_usd_per_sqft_year:
            assert b1.space >= b0.space
        if cpu_hour >= base.downtime_usd_per_cpu_hour:
            assert b1.downtime >= b0.downtime
        # Totals are consistent sums.
        assert b1.total == pytest.approx(b1.acquisition + b1.operating)


@given(years=st.floats(min_value=0.5, max_value=10.0))
@settings(max_examples=20, deadline=None)
def test_blade_advantage_grows_with_lifetime(years):
    """The longer the horizon, the more the blade's low operating cost
    dominates its acquisition premium."""
    params = CostParameters(years=years)
    blade = tco_for(METABLADE, params).total
    trad = tco_for(TABLE5_CLUSTERS[2], params).total
    short = CostParameters(years=0.5)
    blade0 = tco_for(METABLADE, short).total
    trad0 = tco_for(TABLE5_CLUSTERS[2], short).total
    if years > 0.5:
        assert trad / blade >= trad0 / blade0 - 1e-9
