"""Assembler round-trip and error tests."""

import pytest

from repro.isa.assembler import AssemblyError, assemble, disassemble
from repro.isa.instructions import Op
from repro.isa.machine import run_program


def test_assemble_simple_loop():
    program = assemble(
        """
        li r1, 5
        li r2, 0
        loop:
            add r2, r2, r1
            subi r1, r1, 1
            bnez r1, loop
        st r3, r2, 0
        halt
        """
    )
    assert program[0].op is Op.LI
    assert program.label("loop") == 2
    state, _ = run_program(program)
    assert state.mem.load_int(0) == 5 + 4 + 3 + 2 + 1


def test_comments_and_blank_lines():
    program = assemble(
        """
        ; full-line comment
        li r1, 1   # trailing comment

        halt
        """
    )
    assert len(program) == 2


def test_label_on_same_line():
    program = assemble("start: li r1, 1\n jmp start\n")
    assert program.label("start") == 0
    assert program[1].imm == 0


def test_float_immediate():
    program = assemble("fli f1, 2.5\nhalt\n")
    assert program[0].fimm == 2.5


@pytest.mark.parametrize(
    "source",
    [
        "bogus r1, r2\nhalt",          # unknown mnemonic
        "add r1, r2\nhalt",            # wrong arity
        "add r1, r2, 5\nhalt",         # immediate where register expected
        "li r99, 1\nhalt",             # unknown register
        "jmp nowhere\nhalt",           # unresolved label (not an int)
        "dup: li r1, 1\ndup: halt",    # duplicate label
        "",                            # empty program
    ],
)
def test_assembly_errors(source):
    with pytest.raises(AssemblyError):
        assemble(source)


def test_disassemble_reassembles_identically():
    source = """
    li r1, 3
    fli f1, 1.5
    loop:
        fadd f2, f2, f1
        fst r2, f2, 4
        subi r1, r1, 1
        bnez r1, loop
    halt
    """
    program = assemble(source)
    text = disassemble(program)
    again = assemble(text)
    assert program.instrs == again.instrs
