"""Façade and experiment regenerators: the paper's headline numbers."""

import pytest

from repro.cluster import GREEN_DESTINY, METABLADE, METABLADE2
from repro.core import (
    BladedBeowulf,
    experiment_fig3,
    experiment_table1,
    experiment_table2,
    experiment_table4,
    experiment_table5,
    experiment_table6,
    experiment_table7,
    experiment_topper,
    peak_gflops,
)
from repro.core.experiments import HISTORICAL_TREECODE, modelled_treecode_rows
from repro.nbody.sim import SimConfig


@pytest.fixture(scope="module")
def metablade():
    return BladedBeowulf.metablade()


def test_peak_gflops_matches_paper(metablade):
    # 24 x 633 MHz x 1 flop/cycle = 15.2 Gflops (paper Section 3.3).
    assert metablade.peak_gflops() == pytest.approx(15.192, abs=0.01)
    assert peak_gflops(GREEN_DESTINY) == pytest.approx(240 * 0.8, rel=0.01)


@pytest.mark.slow
def test_sustained_and_percent_of_peak(metablade):
    # Paper: 2.1 Gflops sustained = 14% of peak.
    assert metablade.sustained_gflops() == pytest.approx(2.1, abs=0.05)
    assert metablade.percent_of_peak() == pytest.approx(14.0, abs=1.0)


@pytest.mark.slow
def test_summary_contains_headlines(metablade):
    text = metablade.summary()
    assert "MetaBlade" in text
    assert "Gflops" in text
    assert "TCO" in text


def test_tco_and_topper_accessors(metablade):
    assert metablade.tco().total == pytest.approx(35_292, abs=500)
    assert metablade.is_bladed


@pytest.mark.slow
def test_experiment_table1_structure():
    result = experiment_table1()
    assert len(result.rows) == 5
    for row in result.rows:
        _, math_mflops, karp_mflops = row
        assert karp_mflops > math_mflops
    assert "Table 1" in result.text


@pytest.mark.slow
def test_experiment_table2_speedup_shape():
    result = experiment_table2(n=1500, steps=1, cpu_counts=(1, 4, 12))
    cpus = [row[0] for row in result.rows]
    speedups = [row[2] for row in result.rows]
    assert cpus == [1, 4, 12]
    assert speedups[0] == pytest.approx(1.0)
    # Real speedup, sublinear at scale (communication overhead).
    assert 1.5 < speedups[1] <= 4.0
    assert speedups[1] < speedups[2] < 12.0


def test_experiment_table4_ordering():
    result = experiment_table4()
    perproc = [row[3] for row in result.rows]
    assert perproc == sorted(perproc, reverse=True)
    machines = [row[0] for row in result.rows]
    # Paper: MetaBlade2 'only places behind the SGI Origin 2000'.
    assert machines[0] == "LANL SGI Origin 2000"
    assert machines[1] == "SC'01 MetaBlade2"
    # Every historical + modelled machine appears exactly once.
    assert len(machines) == len(HISTORICAL_TREECODE) + len(
        modelled_treecode_rows()
    )


def test_experiment_table5_cells():
    result = experiment_table5()
    by_name = {row[0]: row for row in result.rows}
    assert by_name["MetaBlade"][-1] == "$35K"
    assert by_name["Alpha Beowulf"][-1] in ("$107K", "$108K")
    assert by_name["MetaBlade"][2] == "$5K"      # sysadmin


def test_experiment_tables_6_and_7():
    t6 = experiment_table6()
    t7 = experiment_table7()
    mb6 = next(r for r in t6.rows if r[0] == "MetaBlade")
    assert mb6[3] == pytest.approx(350.0)
    mb7 = next(r for r in t7.rows if r[0] == "MetaBlade")
    assert mb7[3] == pytest.approx(4.04, abs=0.05)


def test_experiment_topper_claim():
    result = experiment_topper()
    assert result.extras["topper_ratio"] > 2.0
    assert "ToPPeR" in result.text


@pytest.mark.slow
def test_experiment_fig3_accounting():
    exp, sim_result, art = experiment_fig3(
        SimConfig(n=800, steps=1, ic="collision", softening=1e-2)
    )
    assert exp.extras["peak_gflops"] == pytest.approx(15.192, abs=0.01)
    assert 12.0 < exp.extras["percent_of_peak"] < 16.0
    assert sim_result.total_flops > 0
    assert len(art.splitlines()) == 48
