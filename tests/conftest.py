"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.isa import programs


@pytest.fixture(scope="session")
def micro_math():
    """A small math-sqrt microkernel workload (fast to simulate)."""
    return programs.gravity_microkernel_math(n=16, passes=4)


@pytest.fixture(scope="session")
def micro_karp():
    """A small Karp microkernel workload."""
    return programs.gravity_microkernel_karp(n=16, passes=4)


@pytest.fixture(scope="session")
def all_small_workloads(micro_math, micro_karp):
    """Every guest workload at small sizes, for engine-equivalence tests."""
    return [
        micro_math,
        micro_karp,
        programs.axpy(n=32),
        programs.dot_product(n=32),
        programs.fib(n=25),
        programs.stream_triad(n=32),
        programs.int_checksum(n=200),
    ]
