"""Shared fixtures for the test suite."""

from __future__ import annotations

import random

import numpy as np
import pytest

from repro.isa import programs


@pytest.fixture(autouse=True)
def _seed_global_rngs():
    """Pin every module-global RNG before each test.

    Any test that consumes `random` or the legacy `np.random` state
    without seeding would otherwise depend on which tests ran before
    it — the suite must produce identical results under any ordering
    (`pytest -p no:cacheprovider` twice, shuffled selections, -x
    reruns).  Tests that care about specific streams still construct
    their own `random.Random(seed)` / `np.random.default_rng(seed)`.
    """
    random.seed(0xC0FFEE)
    np.random.seed(20020817)
    yield


@pytest.fixture(scope="session")
def micro_math():
    """A small math-sqrt microkernel workload (fast to simulate)."""
    return programs.gravity_microkernel_math(n=16, passes=4)


@pytest.fixture(scope="session")
def micro_karp():
    """A small Karp microkernel workload."""
    return programs.gravity_microkernel_karp(n=16, passes=4)


@pytest.fixture(scope="session")
def all_small_workloads(micro_math, micro_karp):
    """Every guest workload at small sizes, for engine-equivalence tests."""
    return [
        micro_math,
        micro_karp,
        programs.axpy(n=32),
        programs.dot_product(n=32),
        programs.fib(n=25),
        programs.stream_triad(n=32),
        programs.int_checksum(n=200),
    ]
