"""Karp reciprocal square root and direct-summation kernels."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.nbody.karp import KarpTable, karp_rsqrt, karp_rsqrt_flops
from repro.nbody.kernels import (
    INTERACTION_FLOPS,
    direct_accelerations,
    direct_potential,
    pairwise_interaction_count,
)
from repro.nbody.ic import plummer_sphere


def test_karp_table_validation():
    with pytest.raises(ValueError):
        KarpTable(size=1)
    with pytest.raises(ValueError):
        KarpTable(newton_iters=-1)


def test_karp_machine_precision_on_wide_range():
    x = np.logspace(-12, 12, 20_001)
    rel = np.abs(karp_rsqrt(x) * np.sqrt(x) - 1.0)
    assert rel.max() < 5e-16


@given(
    exponent=st.floats(min_value=-100, max_value=100),
    mantissa=st.floats(min_value=1.0, max_value=9.999),
)
@settings(max_examples=100, deadline=None)
def test_karp_accuracy_property(exponent, mantissa):
    x = mantissa * 10.0 ** exponent
    y = float(karp_rsqrt(np.array([x]))[0])
    assert y == pytest.approx(1.0 / np.sqrt(x), rel=1e-14)


def test_karp_rejects_nonpositive():
    with pytest.raises(ValueError):
        karp_rsqrt(np.array([0.0]))
    with pytest.raises(ValueError):
        karp_rsqrt(np.array([-1.0]))


def test_newton_iterations_square_the_error():
    x = np.random.default_rng(0).uniform(1.0, 4.0, 4000)
    exact = 1.0 / np.sqrt(x)

    def max_err(iters):
        t = KarpTable(size=32, newton_iters=iters)
        return np.max(np.abs(karp_rsqrt(x, t) - exact) / exact)

    e0, e1, e2 = max_err(0), max_err(1), max_err(2)
    assert e1 < e0 ** 2 * 10        # quadratic convergence (slack 10x)
    assert e2 < e1 ** 2 * 10 + 1e-15


def test_initial_error_bound_honest():
    t = KarpTable(size=64, newton_iters=0)
    x = np.linspace(1.0, 3.999, 50_000)
    exact = 1.0 / np.sqrt(x)
    measured = np.max(np.abs(karp_rsqrt(x, t) - exact) / exact)
    assert measured <= t.worst_initial_error * 1.5


def test_flop_count_formula():
    assert karp_rsqrt_flops(10) == 10 * (3 + 1 + 8)
    assert karp_rsqrt_flops(10, KarpTable(newton_iters=1)) == 10 * 8


# --- direct kernels ----------------------------------------------------------


def test_direct_accelerations_symmetry():
    """Newton's third law: total momentum change is zero for equal
    masses (softening preserves the antisymmetry)."""
    pos, _, mass = plummer_sphere(100, seed=5)
    acc, flops = direct_accelerations(pos, mass, softening=1e-2)
    net = (mass[:, None] * acc).sum(axis=0)
    assert np.allclose(net, 0.0, atol=1e-12)
    assert flops == pairwise_interaction_count(100) * INTERACTION_FLOPS


def test_direct_karp_matches_libm():
    pos, _, mass = plummer_sphere(80, seed=6)
    a1, _ = direct_accelerations(pos, mass, softening=1e-2, use_karp=False)
    a2, _ = direct_accelerations(pos, mass, softening=1e-2, use_karp=True)
    assert np.allclose(a1, a2, rtol=1e-12)


def test_direct_chunking_invariance():
    pos, _, mass = plummer_sphere(150, seed=7)
    a1, _ = direct_accelerations(pos, mass, chunk=7)
    a2, _ = direct_accelerations(pos, mass, chunk=1000)
    assert np.array_equal(a1, a2)


def test_direct_two_body_analytic():
    pos = np.array([[0.0, 0.0, 0.0], [1.0, 0.0, 0.0]])
    mass = np.array([1.0, 2.0])
    acc, _ = direct_accelerations(pos, mass, softening=0.0)
    # a_0 = G*m_1/r^2 toward +x; a_1 = G*m_0/r^2 toward -x.
    assert acc[0] == pytest.approx([2.0, 0.0, 0.0])
    assert acc[1] == pytest.approx([-1.0, 0.0, 0.0])


def test_direct_input_validation():
    with pytest.raises(ValueError):
        direct_accelerations(np.zeros((3, 2)), np.zeros(3))
    with pytest.raises(ValueError):
        direct_accelerations(np.zeros((3, 3)), np.zeros(4))


def test_potential_two_body():
    pos = np.array([[0.0, 0.0, 0.0], [2.0, 0.0, 0.0]])
    mass = np.array([1.0, 1.0])
    pot = direct_potential(pos, mass, softening=0.0)
    assert pot == pytest.approx([-0.5, -0.5])
