"""Invariant auditors: broken kernels and cooked books get caught.

Each test deliberately breaks one invariant the simulator depends on —
same-timestamp dispatch order, clock monotonicity, message
conservation, the energy/flop/allocator ledgers — and asserts the
auditor names the violation, while the unbroken paths audit clean.
"""

import heapq

import pytest

from repro.check.auditors import (
    ClockOrderAuditor,
    InvariantViolation,
    MessageConservationAuditor,
    attach_auditors,
    audit_sched_outcome,
    audit_sim_result,
    detach_auditors,
)
from repro.core.events import EventKernel
from repro.nbody.sim import NBodySimulation, SimConfig
from repro.sched.allocator import BladeInterval


# -- kernel auditors -------------------------------------------------------


def test_clock_order_auditor_passes_on_healthy_kernel():
    kernel = EventKernel()
    auditor = ClockOrderAuditor().attach(kernel)
    fired = []
    for t in (0.3, 0.1, 0.1, 0.2):
        kernel.at(t, fired.append, t)
    kernel.run()
    assert fired == [0.1, 0.1, 0.2, 0.3]
    assert auditor.checked == 4
    auditor.detach(kernel)
    kernel.at(0.5, fired.append, 0.5)
    kernel.run()
    assert auditor.checked == 4        # detached: no longer watching


def test_reordered_same_timestamp_events_are_caught():
    # Simulate a broken heap comparator by swapping the insertion
    # sequence numbers of two same-timestamp events after they are
    # queued: dispatch order no longer matches insertion order.
    kernel = EventKernel()
    first = kernel.at(0.1, lambda: None)
    second = kernel.at(0.1, lambda: None)
    first.seq, second.seq = second.seq, first.seq
    ClockOrderAuditor().attach(kernel)
    with pytest.raises(InvariantViolation, match="insertion order"):
        kernel.run()


def test_backwards_clock_is_caught():
    class BrokenKernel(EventKernel):
        # A kernel that trusts event times blindly: an event scheduled
        # in the past drags ``now`` backwards instead of clamping.
        def step(self):
            while self._heap:
                event = heapq.heappop(self._heap)
                if event.cancelled:
                    continue
                self.now = event.time          # missing max(now, ...)
                self.fired += 1
                for hook in self._fire_hooks:
                    hook(event)
                event.fn(*event.args)
                return True
            return False

    kernel = BrokenKernel()
    ClockOrderAuditor().attach(kernel)
    # The t=0.5 event schedules work "at 0.1" — legal, the real kernel
    # clamps it to now; the broken kernel rewinds instead.
    kernel.at(0.5, lambda: kernel.at(0.1, lambda: None))
    with pytest.raises(InvariantViolation, match="backwards"):
        kernel.run()


def test_message_conservation_clean_simmpi_run_with_failure():
    from repro.network.timing import star_fabric
    from repro.simmpi import SimMpiRuntime

    runtime = SimMpiRuntime(4, fabric=star_fabric(4), flop_rate=1e8)
    runtime.fail_at(0.001, 2)
    auditors = attach_auditors(runtime.kernel)

    def program(comm):
        payload = yield from comm.sendrecv(
            (comm.rank + 1) % 4, comm.rank,
            src=(comm.rank - 1) % 4, tag=0,
        )
        total = yield from comm.allreduce(float(payload))
        return total

    runtime.run(program)
    detach_auditors(runtime.kernel, auditors)   # finish() must pass
    conservation = next(
        a for a in auditors
        if isinstance(a, MessageConservationAuditor)
    )
    assert conservation.worlds == 1
    assert sum(conservation.sends.values()) > 0


def test_lost_send_breaks_global_conservation():
    kernel = EventKernel()
    auditor = MessageConservationAuditor().attach(kernel)
    kernel.trace("send", src=0, dst=1, tag=7, nbytes=8)
    kernel.trace(
        "world-done", posted=1, consumed=1, undelivered=0,
        failed=0, kills=0, ranks=2,
    )
    with pytest.raises(InvariantViolation, match="conservation"):
        auditor.finish()


def test_over_delivery_is_caught_immediately():
    kernel = EventKernel()
    MessageConservationAuditor().attach(kernel)
    kernel.trace("send", src=0, dst=1, tag=7, nbytes=8)
    kernel.trace("recv", rank=1, src=0, tag=7, nbytes=8)
    with pytest.raises(InvariantViolation, match="over-delivery"):
        kernel.trace("recv", rank=1, src=0, tag=7, nbytes=8)


def test_unexplained_undelivered_messages_are_caught():
    kernel = EventKernel()
    MessageConservationAuditor().attach(kernel)
    with pytest.raises(InvariantViolation, match="no failure or kill"):
        kernel.trace(
            "world-done", posted=3, consumed=2, undelivered=1,
            failed=0, kills=0, ranks=2,
        )


def test_unbalanced_world_books_are_caught():
    kernel = EventKernel()
    MessageConservationAuditor().attach(kernel)
    with pytest.raises(InvariantViolation, match="balance"):
        kernel.trace(
            "world-done", posted=3, consumed=1, undelivered=1,
            failed=1, kills=0, ranks=2,
        )


# -- scheduler outcome audits ----------------------------------------------


def _audited_outcome(**overrides):
    from repro.check.replay import SCHED_DEFAULTS, _build_sched

    audit = overrides.pop("audit", False)
    params = dict(SCHED_DEFAULTS, seed=2001, jobs=5, **overrides)
    sched = _build_sched(params, audit=audit)
    outcome = sched.run()
    return sched, outcome


def test_sched_audit_opt_in_passes_under_failures():
    # SchedConfig(audit=True) wires the full auditor stack through a
    # failure-heavy run; reaching the end means every invariant held.
    from repro.check.replay import _build_sched

    sched = _build_sched(
        {"jobs": 6, "policy": "backfill", "interarrival": 0.004,
         "fail_inject": True, "mtbf": 0.05, "checkpoint": 1,
         "max_retries": 3, "seed": 7},
        audit=True,
    )
    outcome = sched.run()
    assert outcome.records
    assert not sched._auditors          # detached after the final audit


def test_energy_ledger_tampering_is_caught():
    sched, outcome = _audited_outcome()
    audit_sched_outcome(outcome, power=sched.power,
                        flop_rate=sched.flop_rate)
    outcome.records[0].energy_j += 0.5
    with pytest.raises(InvariantViolation, match="energy ledger"):
        audit_sched_outcome(outcome, power=sched.power,
                            flop_rate=sched.flop_rate)


def test_flop_ledger_tampering_is_caught():
    sched, outcome = _audited_outcome()
    victim = next(r for r in outcome.records if r.flops > 0)
    victim.flops *= 2
    with pytest.raises(InvariantViolation, match="flop ledger"):
        audit_sched_outcome(outcome, power=sched.power,
                            flop_rate=sched.flop_rate)


def test_overlapping_allocator_intervals_are_caught():
    sched, outcome = _audited_outcome()
    busy = next(
        i for i in outcome.allocator.intervals if i.kind == "busy"
    )
    outcome.allocator.intervals.append(
        BladeInterval(busy.blade, busy.start_s, busy.end_s, "down", "dup")
    )
    with pytest.raises(InvariantViolation, match="overlap"):
        audit_sched_outcome(outcome)


def test_phantom_busy_interval_is_caught():
    sched, outcome = _audited_outcome()
    outcome.allocator.intervals.append(
        BladeInterval(0, 0.0, 0.001, "busy", "not-a-job")
    )
    with pytest.raises(InvariantViolation, match="node-seconds"):
        audit_sched_outcome(outcome)


# -- N-body flop-ledger audits ---------------------------------------------


def test_sim_audit_opt_in_passes():
    result = NBodySimulation(
        SimConfig(n=200, steps=2, ic="collision", seed=3, audit=True)
    ).run()
    assert result.total_flops > 0


def test_sim_ledger_tampering_is_caught():
    sim = NBodySimulation(SimConfig(n=150, steps=1, ic="collision"))
    result = sim.run()
    audit_sim_result(sim, result)
    sim.flops_ledger[0] += 1
    with pytest.raises(InvariantViolation, match="tile the total"):
        audit_sim_result(sim, result)
    sim.flops_ledger[0] -= 1
    sim.flops_ledger.append(0)
    with pytest.raises(InvariantViolation, match="tile the total|step"):
        audit_sim_result(sim, result)


def test_sim_audit_requires_a_ledger():
    sim = NBodySimulation(SimConfig(n=100, steps=1))
    result = sim.run()
    sim.flops_ledger = []
    with pytest.raises(InvariantViolation, match="no flop ledger"):
        audit_sim_result(sim, result)
