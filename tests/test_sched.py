"""The batch workload manager: queue, allocator, dispatcher, accounting."""

import pytest

from repro.core.system import BladedBeowulf
from repro.metrics.throughput import throughput_report
from repro.sched import (
    BatchScheduler,
    BladeAllocator,
    EasyBackfill,
    Fcfs,
    JobSpec,
    JobState,
    MicrokernelSweep,
    SchedConfig,
    TreecodeJob,
    policy_by_name,
    render_gantt,
    synthetic_stream,
)
from repro.sched.policy import QueuedJob, RunningJob


MACHINE = BladedBeowulf.metablade()
RATE = MACHINE.node_flop_rate()


def make_sched(policy=None, config=None):
    return BatchScheduler(
        machine=MACHINE,
        policy=policy if policy is not None else Fcfs(),
        config=config,
    )


# ---------------------------------------------------------------------------
# Synthetic streams
# ---------------------------------------------------------------------------

def test_stream_is_seed_deterministic():
    a = synthetic_stream(30, 12, RATE, seed=9)
    b = synthetic_stream(30, 12, RATE, seed=9)
    c = synthetic_stream(30, 12, RATE, seed=10)
    assert a == b
    assert a != c
    assert [s.job_id for s in a] == list(range(30))
    assert all(s.arrival_s >= 0 for s in a)
    assert all(1 <= s.nodes <= 12 for s in a)
    # Estimates are inflated above the workload's own crude estimate.
    for spec in a:
        assert spec.walltime_est_s > spec.workload.est_runtime_s(
            spec.nodes, RATE
        )


def test_stream_validation():
    with pytest.raises(ValueError):
        synthetic_stream(0, 12, RATE)
    with pytest.raises(ValueError):
        JobSpec(0, arrival_s=0.0, nodes=0, walltime_est_s=1.0,
                workload=MicrokernelSweep())
    with pytest.raises(ValueError):
        JobSpec(0, arrival_s=-1.0, nodes=1, walltime_est_s=1.0,
                workload=MicrokernelSweep())


# ---------------------------------------------------------------------------
# Allocator
# ---------------------------------------------------------------------------

def test_allocator_first_fit_and_release():
    alloc = BladeAllocator(8)
    assert alloc.allocate(1, 3, now=0.0) == (0, 1, 2)
    assert alloc.allocate(2, 2, now=0.0) == (3, 4)
    assert alloc.free_count == 3
    assert alloc.job_on(4) == 2
    alloc.release(1, now=2.0)
    assert alloc.free_count == 6
    # Released blades are reused lowest-index first.
    assert alloc.allocate(3, 2, now=2.0) == (0, 1)
    with pytest.raises(ValueError):
        alloc.allocate(3, 1, now=2.0)       # duplicate holder
    with pytest.raises(ValueError):
        alloc.allocate(4, 7, now=2.0)       # more than free


def test_allocator_down_blades_stay_out_of_pool():
    alloc = BladeAllocator(4)
    alloc.mark_down(0, now=1.0, detail="fan")
    assert alloc.free_count == 3
    assert alloc.allocate(1, 3, now=1.0) == (1, 2, 3)
    alloc.mark_up(0, now=3.0)
    assert alloc.free_count == 1
    alloc.finish(now=4.0)
    down = [i for i in alloc.intervals if i.kind == "down"]
    assert len(down) == 1
    assert (down[0].start_s, down[0].end_s) == (1.0, 3.0)


def test_allocator_busy_blade_outage_opens_after_release():
    alloc = BladeAllocator(2)
    alloc.allocate(7, 2, now=0.0)
    alloc.mark_down(1, now=0.5, detail="dimm")
    alloc.release(7, now=1.0)
    assert alloc.free_count == 1            # blade 1 still down
    alloc.finish(now=2.0)
    kinds = {(i.blade, i.kind) for i in alloc.intervals}
    assert (1, "busy") in kinds and (1, "down") in kinds
    down = next(i for i in alloc.intervals if i.kind == "down")
    assert down.start_s == 1.0              # outage interval opens at release


def test_allocator_ledger_sums():
    alloc = BladeAllocator(3)
    alloc.allocate(1, 2, now=0.0)
    alloc.release(1, now=2.0)
    alloc.finish(now=2.0)
    assert alloc.busy_node_seconds() == pytest.approx(4.0)
    assert alloc.down_node_seconds() == 0.0


# ---------------------------------------------------------------------------
# Policies
# ---------------------------------------------------------------------------

def test_fcfs_head_of_line_blocking():
    queue = [
        QueuedJob(0, nodes=4, est_runtime_s=1.0),
        QueuedJob(1, nodes=1, est_runtime_s=0.1),
    ]
    picked = Fcfs().pick(queue, free=2, now=0.0, running=[])
    assert picked == []                      # the wide head blocks everyone


def test_backfill_takes_short_job_past_blocked_head():
    running = [RunningJob(9, nodes=4, est_end_s=10.0)]
    queue = [
        QueuedJob(0, nodes=6, est_runtime_s=5.0),    # head: needs the 4
        QueuedJob(1, nodes=2, est_runtime_s=1.0),    # ends before shadow
        QueuedJob(2, nodes=2, est_runtime_s=50.0),   # would delay the head
    ]
    picked = EasyBackfill().pick(queue, free=2, now=0.0, running=running)
    assert [q.job_id for q in picked] == [1]


def test_backfill_spare_nodes_allow_long_narrow_jobs():
    running = [RunningJob(9, nodes=4, est_end_s=10.0)]
    # Head needs 5 of the 6 available at shadow time: 1 spare blade.
    queue = [
        QueuedJob(0, nodes=5, est_runtime_s=5.0),
        QueuedJob(1, nodes=1, est_runtime_s=99.0),   # fits in the spare
        QueuedJob(2, nodes=2, est_runtime_s=99.0),   # does not
    ]
    picked = EasyBackfill().pick(queue, free=2, now=0.0, running=running)
    assert [q.job_id for q in picked] == [1]


def test_policy_by_name():
    assert isinstance(policy_by_name("FCFS"), Fcfs)
    assert isinstance(policy_by_name("easy"), EasyBackfill)
    with pytest.raises(KeyError):
        policy_by_name("sjf")


# ---------------------------------------------------------------------------
# End-to-end dispatch
# ---------------------------------------------------------------------------

def test_stream_completes_and_jobs_interleave():
    sched = make_sched()
    sched.submit_stream(synthetic_stream(20, 12, RATE, seed=7))
    outcome = sched.run()
    assert len(outcome.completed) == 20
    busy = [i for i in outcome.allocator.intervals if i.kind == "busy"]
    # No blade ever runs two jobs at once.
    for blade in range(outcome.nodes):
        spans = sorted(
            (i.start_s, i.end_s) for i in busy if i.blade == blade
        )
        for (_, end), (start, _) in zip(spans, spans[1:]):
            assert start >= end - 1e-12
    # But distinct jobs do overlap in time on distinct blades.
    by_job = {}
    for i in busy:
        lo, hi = by_job.get(i.label, (i.start_s, i.end_s))
        by_job[i.label] = (min(lo, i.start_s), max(hi, i.end_s))
    spans = sorted(by_job.values())
    assert any(
        b_start < a_end for (_, a_end), (b_start, _) in zip(spans, spans[1:])
    )


def test_scheduler_run_is_deterministic():
    def once():
        sched = make_sched(policy=EasyBackfill())
        sched.submit_stream(
            synthetic_stream(15, 12, RATE, seed=5, mean_interarrival_s=0.002)
        )
        out = sched.run()
        return [(r.spec.job_id, r.end_s, r.wait_s) for r in out.records]

    assert once() == once()


def test_queue_wait_is_accounted():
    # Two 24-blade jobs arriving together must serialize.
    wide = TreecodeJob(n=96, steps=1, seed=3)
    est = wide.est_runtime_s(24, RATE)
    sched = make_sched()
    for job_id in (0, 1):
        sched.submit(JobSpec(job_id, 0.0, 24, est * 2, wide))
    out = sched.run()
    first, second = out.records
    assert first.wait_s == 0.0
    assert second.wait_s == pytest.approx(first.end_s)
    assert second.attempts[0].start_s >= first.end_s


def test_backfill_beats_fcfs_on_contended_stream():
    def run_policy(policy):
        sched = make_sched(policy=policy)
        sched.submit_stream(
            synthetic_stream(60, 16, RATE, seed=3, mean_interarrival_s=0.002)
        )
        out = sched.run()
        return throughput_report(out)

    fcfs = run_policy(Fcfs())
    easy = run_policy(EasyBackfill())
    assert fcfs.completed == easy.completed == 60
    assert easy.utilization > fcfs.utilization
    assert easy.mean_wait_s < fcfs.mean_wait_s


# ---------------------------------------------------------------------------
# Failures, requeues, checkpoints
# ---------------------------------------------------------------------------

def test_failure_kills_requeues_and_completes():
    job = MicrokernelSweep(passes=8, flops_per_pass=2.5e6)
    spec = JobSpec(0, 0.0, 4, job.est_runtime_s(4, RATE) * 2, job)
    sched = make_sched()
    sched.submit(spec)
    sched.inject_failure(job.est_runtime_s(4, RATE) * 0.3, blade=1)
    out = sched.run()
    record = out.records[0]
    assert record.state is JobState.COMPLETED
    assert record.failures == 1
    assert record.requeues == 1
    assert len(record.attempts) == 2
    assert record.attempts[0].killed_by_node == 1
    assert record.lost_cpu_s > 0
    # The rerun waits out the repair; both attempts are disjoint.
    assert record.attempts[1].start_s >= record.attempts[0].end_s


def test_checkpoint_restart_resumes_midway():
    job = MicrokernelSweep(passes=10, flops_per_pass=2.5e6)
    runtime = job.est_runtime_s(4, RATE)
    config = SchedConfig(
        checkpoint_every=2, checkpoint_latency_s=1e-5,
        checkpoint_bandwidth_bps=1e9,
    )
    sched = make_sched(config=config)
    sched.submit(JobSpec(0, 0.0, 4, runtime * 2, job))
    sched.inject_failure(runtime * 0.6, blade=2)
    out = sched.run()
    record = out.records[0]
    assert record.state is JobState.COMPLETED
    assert record.checkpoints >= 1
    assert record.checkpoint_io_s > 0
    retry = record.attempts[1]
    assert retry.start_unit > 0              # resumed, not from scratch
    # The tally counts every pass exactly once despite the restart.
    assert record.result == pytest.approx(float(job.passes * 4))


def test_treecode_checkpoint_restart_matches_clean_run():
    job = TreecodeJob(n=96, steps=3, seed=11)
    est = job.est_runtime_s(4, RATE)

    def final_result(fail):
        sched = make_sched(
            config=SchedConfig(checkpoint_every=1, checkpoint_latency_s=1e-5)
        )
        sched.submit(JobSpec(0, 0.0, 4, est * 2, job))
        if fail:
            sched.inject_failure(est * 0.5, blade=0)
        record = sched.run().records[0]
        assert record.state is JobState.COMPLETED
        return record

    clean = final_result(fail=False)
    failed = final_result(fail=True)
    assert failed.requeues == 1
    # Phase-space checkpoints make the restart bit-reproducible.
    assert failed.result == pytest.approx(clean.result, rel=1e-12)


def test_job_abandoned_after_max_retries():
    job = MicrokernelSweep(passes=6, flops_per_pass=2.5e6)
    est = job.est_runtime_s(2, RATE)
    sched = make_sched(config=SchedConfig(max_retries=0))
    sched.submit(JobSpec(0, 0.0, 2, est * 2, job))
    sched.inject_failure(est * 0.4, blade=0)
    out = sched.run()
    record = out.records[0]
    assert record.state is JobState.ABANDONED
    assert record.failures == 1
    assert record.requeues == 0
    assert not record.completed
    assert record.end_s is not None


def test_failure_accounting_closes():
    sched = make_sched(
        policy=EasyBackfill(), config=SchedConfig(checkpoint_every=1)
    )
    sched.submit_stream(synthetic_stream(30, 12, RATE, seed=11))
    sched.inject_poisson_failures(horizon_s=0.3, mtbf_s=0.04, seed=5)
    out = sched.run()
    kills = sum(r.failures for r in out.records)
    requeues = sum(r.requeues for r in out.records)
    assert kills > 0
    # Every kill is either a requeue or the final failure of an
    # abandoned job: nothing falls through the cracks.
    assert kills == requeues + len(out.abandoned)
    for record in out.records:
        assert record.state in (JobState.COMPLETED, JobState.ABANDONED)


def test_throughput_report_fields():
    from repro.cluster.catalog import METABLADE

    sched = make_sched()
    sched.submit_stream(synthetic_stream(10, 8, RATE, seed=2))
    report = throughput_report(sched.run(), METABLADE)
    assert report.completed == 10
    assert 0 < report.utilization <= 1
    assert report.jobs_per_hour > 0
    assert report.energy_kwh > 0
    assert report.operational_gflops > 0
    assert report.operational_topper is not None
    assert report.operational_topper.usd_per_gflop > 0
    text = report.format()
    assert "utilization" in text and "operational Gflops" in text


def test_gantt_renders_jobs_and_outages():
    sched = make_sched()
    sched.submit_stream(synthetic_stream(8, 8, RATE, seed=4))
    sched.inject_failure(0.001, blade=0)
    out = sched.run()
    art = render_gantt(
        out.allocator.intervals, out.nodes, out.makespan_s, width=40
    )
    lines = art.splitlines()
    assert len(lines) == out.nodes + 2       # rows + axis + legend
    assert "x" in art                        # the outage is visible
    assert any(ch.isalnum() for ch in lines[2].split("|")[1])


def test_scheduler_rejects_bad_submissions():
    sched = make_sched()
    job = MicrokernelSweep()
    sched.submit(JobSpec(0, 0.0, 1, 1.0, job))
    with pytest.raises(ValueError):
        sched.submit(JobSpec(0, 0.0, 1, 1.0, job))       # duplicate id
    with pytest.raises(ValueError):
        sched.submit(JobSpec(1, 0.0, 25, 1.0, job))      # wider than machine
    with pytest.raises(ValueError):
        sched.inject_failure(0.0, blade=24)
    with pytest.raises(ValueError):
        sched.inject_poisson_failures(1.0, mtbf_s=0.0)
