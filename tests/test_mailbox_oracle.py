"""Differential reference for the indexed SimMPI mailbox.

``_Mailbox`` keeps one message in four match-pattern views (exact
``(src, tag)``, src-only, tag-only, fully wild) with lazy deletion —
fast, but with real aliasing hazards.  The oracle here is the
pre-index semantics restated at its dumbest: a flat list scanned
front-to-back with :meth:`RecvBlock.matches`, oldest match wins.
Randomized interleavings of posts and receives across every wildcard
combination must produce the identical delivery sequence.
"""

from __future__ import annotations

import random
from typing import List, Optional

import pytest

from repro.simmpi.comm import ANY_SOURCE, Message, RecvBlock
from repro.simmpi.runtime import _Mailbox


class OracleMailbox:
    """Linear-scan reference: a flat list, first match from the front."""

    def __init__(self) -> None:
        self.messages: List[Message] = []

    def append(self, msg: Message) -> None:
        self.messages.append(msg)

    def take(self, src: Optional[int],
             tag: Optional[int]) -> Optional[Message]:
        pattern = RecvBlock(rank=0, src=src, tag=tag)
        for i, msg in enumerate(self.messages):
            if pattern.matches(msg):
                return self.messages.pop(i)
        return None

    @property
    def live(self) -> int:
        return len(self.messages)


def _message(serial: int, src: int, tag: int) -> Message:
    return Message(
        src=src, dst=0, tag=tag, payload=serial, nbytes=8,
        post_time=float(serial), arrive_time=float(serial),
    )


def _random_pattern(rng: random.Random, srcs, tags):
    src = ANY_SOURCE if rng.random() < 0.35 else rng.choice(srcs)
    tag = None if rng.random() < 0.35 else rng.choice(tags)
    return src, tag


@pytest.mark.parametrize("seed", range(20))
def test_indexed_mailbox_matches_linear_scan_oracle(seed):
    rng = random.Random(781_000 + seed)
    srcs = list(range(rng.randint(1, 5)))
    # Negative tags are collectives in the real runtime: include them.
    tags = [rng.randint(-40, 40) for _ in range(rng.randint(1, 6))]
    indexed = _Mailbox()
    oracle = OracleMailbox()
    serial = 0
    for _ in range(600):
        if rng.random() < 0.55:
            serial += 1
            src, tag = rng.choice(srcs), rng.choice(tags)
            indexed.append(_message(serial, src, tag))
            oracle.append(_message(serial, src, tag))
        else:
            src, tag = _random_pattern(rng, srcs, tags)
            got = indexed.take(src, tag)
            want = oracle.take(src, tag)
            if want is None:
                assert got is None, (
                    f"indexed delivered {got} for ({src}, {tag}), "
                    "oracle says nothing matches"
                )
            else:
                assert got is not None, (
                    f"indexed missed a match for ({src}, {tag}); "
                    f"oracle found payload {want.payload}"
                )
                assert (got.payload, got.src, got.tag) == (
                    want.payload, want.src, want.tag
                )
        assert indexed.live == oracle.live
    # Drain fully wild: remaining posting order must agree too.
    while True:
        got = indexed.take(ANY_SOURCE, None)
        want = oracle.take(ANY_SOURCE, None)
        if want is None:
            assert got is None
            break
        assert got is not None and got.payload == want.payload
    assert indexed.live == 0


def test_live_messages_skips_consumed():
    box = _Mailbox()
    for serial, (src, tag) in enumerate([(0, 1), (1, 1), (0, 2)]):
        box.append(_message(serial, src, tag))
    taken = box.take(0, None)
    assert taken is not None and taken.payload == 0
    remaining = [(m.src, m.tag) for m in box.live_messages()]
    assert remaining == [(1, 1), (0, 2)]
    assert box.live == 2


def test_wildcards_respect_posting_order_across_views():
    box = _Mailbox()
    box.append(_message(1, src=2, tag=7))
    box.append(_message(2, src=1, tag=7))
    box.append(_message(3, src=2, tag=5))
    # tag-only wildcard: oldest tag-7 message is from src 2.
    assert box.take(ANY_SOURCE, 7).payload == 1
    # src-only wildcard: oldest live src-2 message is now payload 3.
    assert box.take(2, None).payload == 3
    # exact: the src-1 message is still live through its exact view.
    assert box.take(1, 7).payload == 2
    assert box.take(ANY_SOURCE, None) is None
