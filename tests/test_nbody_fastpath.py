"""Fast-path treecode: batched traversal equivalence, tree reuse,
and the parallel bench runner.

The batched traversal is only allowed to exist because it is
bit-identical to the naive per-group walk; these tests pin that
contract across the MAC parameter, the quadrupole expansion, the Karp
reciprocal-sqrt kernel, slice mode, and whole simulations, then cover
the tree-reuse tiers and the deterministic process-pool runner.
"""

import json

import numpy as np
import pytest

from repro.nbody.ic import plummer_sphere, two_clusters
from repro.nbody.sim import NBodySimulation, SimConfig
from repro.nbody.traversal import (
    TraversalStats,
    _concat_ranges,
    _sorted_pairs,
    leaf_aligned_partition,
    tree_accelerations,
)
from repro.nbody.tree import HashedOctree, TreeBuildCache
from repro.runner import best_of, parallel_map, write_bench_json


def _both_paths(tree, **kw):
    acc_n, st_n = tree_accelerations(tree, naive=True, **kw)
    acc_b, st_b = tree_accelerations(tree, naive=False, **kw)
    return (acc_n, st_n), (acc_b, st_b)


def _assert_stats_equal(st_n: TraversalStats, st_b: TraversalStats):
    assert st_n.particle_cell == st_b.particle_cell
    assert st_n.particle_particle == st_b.particle_particle
    assert st_n.nodes_opened == st_b.nodes_opened
    assert st_n.groups == st_b.groups
    assert list(st_n.group_work) == list(st_b.group_work)


@pytest.mark.parametrize("theta", [0.3, 0.7, 1.1])
@pytest.mark.parametrize("use_quadrupole", [False, True])
@pytest.mark.parametrize("use_karp", [False, True])
def test_batched_bit_identical_to_naive(theta, use_quadrupole, use_karp):
    pos, _, mass = two_clusters(700, seed=2001)
    tree = HashedOctree(pos, mass, leaf_size=8,
                        quadrupoles=use_quadrupole)
    (acc_n, st_n), (acc_b, st_b) = _both_paths(
        tree, theta=theta, softening=1e-2, use_karp=use_karp,
        use_quadrupole=use_quadrupole,
    )
    assert np.array_equal(acc_n, acc_b)
    _assert_stats_equal(st_n, st_b)


def test_batched_bit_identical_zero_softening():
    # eps = 0 exercises the masked self-pair handling in both paths.
    pos, _, mass = two_clusters(500, seed=11)
    tree = HashedOctree(pos, mass, leaf_size=16)
    for use_karp in (False, True):
        (acc_n, st_n), (acc_b, st_b) = _both_paths(
            tree, theta=0.7, softening=0.0, use_karp=use_karp,
        )
        assert np.array_equal(acc_n, acc_b)
        _assert_stats_equal(st_n, st_b)


def test_batched_bit_identical_slice_mode():
    pos, _, mass = plummer_sphere(900, seed=5)
    tree = HashedOctree(pos, mass, leaf_size=16)
    for lo, hi in leaf_aligned_partition(tree, 3):
        (acc_n, st_n), (acc_b, st_b) = _both_paths(
            tree, theta=0.7, softening=1e-2, target_slice=(lo, hi),
        )
        assert np.array_equal(acc_n, acc_b)
        _assert_stats_equal(st_n, st_b)


def test_simulation_naive_flag_is_bit_identical():
    results = {}
    for naive in (False, True):
        cfg = SimConfig(n=400, steps=3, ic="collision", seed=13,
                        naive_traversal=naive)
        results[naive] = NBodySimulation(cfg).run()
    fast, ref = results[False], results[True]
    assert np.array_equal(fast.pos, ref.pos)
    assert np.array_equal(fast.vel, ref.vel)
    assert fast.total_flops == ref.total_flops
    assert (
        [(r.flops, r.interactions, r.nodes) for r in fast.records]
        == [(r.flops, r.interactions, r.nodes) for r in ref.records]
    )
    assert fast.energy_initial == ref.energy_initial
    assert fast.energy_final == ref.energy_final


def test_sim_reports_tree_counters_on_fast_path():
    cfg = SimConfig(n=300, steps=2, ic="collision", seed=3)
    sim = NBodySimulation(cfg)
    sim.run(compute_energy=False)
    stats = sim._last_stats
    assert stats.tree_rebuilds + stats.tree_reuses >= 1
    assert stats.tree_rebuilds == sim._tree_cache.rebuilds


def test_fuzz_oracle_randomized_equivalence():
    # The differential oracle from repro.check draws randomized
    # (n, theta, leaf_size, softening, karp, quadrupole, IC) cases and
    # checks batched == naive bit-exactly — the same generator the
    # `repro.cli check --fuzz` campaign drives, pinned here on a few
    # seeds so the equivalence suite covers parameter combinations
    # nobody thought to enumerate by hand.
    import random

    from repro.check.fuzz import TraversalOracle

    oracle = TraversalOracle()
    for seed in (0, 1, 2, 3, 4, 5):
        params = oracle.draw(random.Random(seed), quick=True)
        assert oracle.run(params) is None, params


# -- helper properties -----------------------------------------------------


def test_concat_ranges_matches_listcomp():
    rng = np.random.default_rng(0)
    for trial in range(50):
        k = int(rng.integers(1, 30))
        starts = rng.integers(0, 500, k).astype(np.int64)
        counts = rng.integers(0, 7, k).astype(np.int64)
        if trial % 2:
            counts[counts == 0] = 1   # exercise the all-nonempty path
        ref = (
            np.concatenate([np.arange(s, s + c)
                            for s, c in zip(starts, counts)])
            if counts.sum() else np.empty(0, np.int64)
        )
        assert np.array_equal(_concat_ranges(starts, counts), ref)
        assert np.array_equal(
            _concat_ranges(starts, counts, "test_scratch").copy(), ref
        )


def test_sorted_pairs_matches_lexsort():
    rng = np.random.default_rng(1)
    for _ in range(30):
        g = rng.integers(0, 40, 300).astype(np.int64)
        n = rng.integers(0, 1000, 300).astype(np.int64)
        _, idx = np.unique(g * 10_000 + n, return_index=True)
        g, n = g[idx], n[idx]   # pairs must be unique, as in the walk
        chunks = np.array_split(np.arange(len(g)), 4)
        rg, rn = _sorted_pairs([g[c] for c in chunks],
                               [n[c] for c in chunks])
        order = np.lexsort((n, g))
        assert np.array_equal(rg, g[order])
        assert np.array_equal(rn, n[order])
    assert _sorted_pairs([], [])[0].size == 0


# -- incremental tree reuse ------------------------------------------------


def test_tree_cache_full_reuse_identical_snapshot():
    pos, _, mass = two_clusters(300, seed=7)
    cache = TreeBuildCache()
    t1 = cache.build(pos, mass, leaf_size=8)
    t2 = cache.build(pos, mass, leaf_size=8)
    assert t2 is t1
    assert cache.rebuilds == 1
    assert cache.full_reuses == 1


def test_tree_cache_reuse_is_bit_identical_on_perturbation():
    pos, _, mass = two_clusters(300, seed=7)
    cache = TreeBuildCache()
    cache.build(pos, mass, leaf_size=8)
    moved = pos + 1e-9             # tiny drift: keys and order survive
    cached = cache.build(moved, mass, leaf_size=8)
    fresh = HashedOctree(moved, mass, leaf_size=8)
    assert cache.reuses + cache.order_reuses >= 1
    for name in ("node_key", "node_lo", "node_hi", "node_mass",
                 "node_com", "node_size", "child_ptr", "child_index"):
        assert np.array_equal(getattr(cached, name), getattr(fresh, name))
    acc_c, _ = tree_accelerations(cached, theta=0.7, softening=1e-2)
    acc_f, _ = tree_accelerations(fresh, theta=0.7, softening=1e-2)
    assert np.array_equal(acc_c, acc_f)


def test_tree_cache_rebuilds_on_parameter_change():
    pos, _, mass = two_clusters(300, seed=7)
    cache = TreeBuildCache()
    cache.build(pos, mass, leaf_size=8)
    cache.build(pos, mass, leaf_size=16)
    assert cache.rebuilds == 2
    assert cache.full_reuses == 0


# -- parallel bench runner -------------------------------------------------


def _square(x):
    return x * x


def test_parallel_map_matches_serial_and_preserves_order():
    items = list(range(23))
    serial = parallel_map(_square, items, jobs=1)
    pooled = parallel_map(_square, items, jobs=2)
    assert serial == [x * x for x in items]
    assert pooled == serial
    assert parallel_map(_square, [], jobs=4) == []
    assert parallel_map(_square, [5], jobs=4) == [25]


def test_scaling_study_pooled_equals_serial():
    from repro.core.system import BladedBeowulf

    machine = BladedBeowulf.metablade()
    cfg = SimConfig(n=256, steps=1, ic="collision", seed=2001)
    serial = machine.nbody_scaling(cfg, cpu_counts=(1, 2), jobs=1)
    pooled = machine.nbody_scaling(cfg, cpu_counts=(1, 2), jobs=2)
    assert [
        (p.cpus, p.time_s, p.speedup, p.efficiency, p.comm_fraction)
        for p in serial
    ] == [
        (p.cpus, p.time_s, p.speedup, p.efficiency, p.comm_fraction)
        for p in pooled
    ]


def test_cli_pooled_sweeps_smoke(capsys):
    from repro.cli import main

    assert main(["fig3", "--particles", "300", "--seeds", "2001", "7",
                 "--jobs", "2"]) == 0
    out = capsys.readouterr().out
    assert out.count("Figure 3") == 2   # one block per seed
    assert main(["table2", "--cpus", "1", "2", "--particles", "256",
                 "--jobs", "2"]) == 0
    assert "Table 2" in capsys.readouterr().out


def test_best_of_and_write_bench_json(tmp_path):
    timed = best_of(lambda: 41 + 1, repeats=3)
    assert timed.value == 42
    assert len(timed.times_s) == 3
    assert timed.best_s <= timed.mean_s

    path = write_bench_json(tmp_path / "sub" / "BENCH_x.json",
                            {"bench": "x", "speedup": 3.0})
    data = json.loads(path.read_text())
    assert data == {"bench": "x", "speedup": 3.0}
