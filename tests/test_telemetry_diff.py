"""Telemetry must be observer-only: on vs off, bit for bit.

Property test over the scheduler configuration space: for any
(policy, failure injection, thermal, platform, seed) combination, a
run carrying the full telemetry stack — span recorder attached,
metrics ingested, exporters exercised — produces the byte-identical
outcome digest and normalized trace hash as a run observed only by
the plain manifest recorder (the infrastructure every committed
golden was made with).  Mirrors the profile-cache differential in
``test_profile_cache.py``; the matrix audit itself is exercised via
:func:`repro.check.run_telemetry_differential`.
"""

from __future__ import annotations

import tempfile

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.check import run_telemetry_differential
from repro.check.cachediff import manifest_trace_hash, sched_outcome_digest
from repro.check.manifest import RunManifest, TraceRecorder
from repro.check.replay import _build_sched, _sched_params
from repro.telemetry import Telemetry


def _fingerprints(params, instrument: bool):
    """(outcome digest, trace hash) of one recorded scheduler run."""
    sched = _build_sched(params)
    tel = None
    if instrument:
        tel = Telemetry()
        tel.attach(sched.kernel)
    with TraceRecorder(sched.kernel) as recorder:
        outcome = sched.run()
    if tel is not None:
        tel.detach()
        tel.ingest_sched(outcome, platform=sched.platform)
        tel.finish(sched.kernel.now)
        with tempfile.TemporaryDirectory() as tmp:
            tel.export(tmp)
    manifest = RunManifest.make(
        "sched", seed=0, params=params, events=recorder.events, payload={},
    )
    return sched_outcome_digest(outcome), manifest_trace_hash(manifest)


@settings(max_examples=12, deadline=None)
@given(
    seed=st.integers(min_value=1, max_value=10_000),
    policy=st.sampled_from(["fcfs", "backfill", "easy"]),
    fail_inject=st.booleans(),
    thermal=st.booleans(),
    platform=st.sampled_from(["metablade", "green-destiny-240"]),
)
def test_telemetry_never_perturbs_a_run(seed, policy, fail_inject,
                                        thermal, platform):
    overrides = {
        "jobs": 5,
        "policy": policy,
        "fail_inject": fail_inject,
        "platform": platform,
        "thermal": thermal,
    }
    if thermal:
        overrides["thermal_accel"] = 150.0
    if fail_inject:
        overrides["checkpoint"] = 1
    params = _sched_params(seed, overrides)
    digest_off, trace_off = _fingerprints(params, instrument=False)
    digest_on, trace_on = _fingerprints(params, instrument=True)
    assert digest_on == digest_off
    assert trace_on == trace_off


def test_telemetry_differential_matrix_quick():
    report = run_telemetry_differential(quick=True)
    assert report.ok, report.format()
    assert len(report.cases) == 3
    for case in report.cases:
        assert case.events_observed > 0
        assert case.metrics > 0


def test_telemetry_differential_report_flags_divergence():
    report = run_telemetry_differential(quick=True)
    case = report.cases[0]
    case.outcome_on = "0" * 64
    assert not case.ok
    assert not report.ok
    assert "DIVERGED" in report.format()
    assert "MISMATCH FOUND" in report.format()
