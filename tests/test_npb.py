"""NPB work-alikes: generator exactness, kernel verification, suite."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.npb import (
    CLASSES,
    TABLE3_KERNELS,
    VerificationError,
    problem_class,
    run_bt,
    run_cg,
    run_ep,
    run_is,
    run_kernel,
    run_lu,
    run_mg,
    run_sp,
    run_suite,
)
from repro.npb.cfd import (
    COUPLING,
    CfdProblem,
    NCOMP,
    block_thomas,
    scalar_pentadiag_solve,
)
from repro.npb.common import (
    NPB_LCG_A,
    NPB_LCG_M,
    NpbRandom,
    OpMix,
    npb_uniforms,
)
from repro.npb.is_ import bucket_rank, make_keys


# --- the NPB random-number generator -----------------------------------------


def test_lcg_batch_matches_scalar():
    r1 = NpbRandom()
    scalar = np.array([r1.next() for _ in range(40_000)])
    r2 = NpbRandom()
    assert np.array_equal(scalar, r2.batch(40_000))
    assert r1.x == r2.x


@given(n=st.integers(1, 3000), skip=st.integers(0, 10**9))
@settings(max_examples=20, deadline=None)
def test_lcg_jump_ahead_property(n, skip):
    jumped = NpbRandom()
    jumped.skip(skip)
    a = jumped.batch(1)[0]
    direct = NpbRandom()
    direct.skip(skip + 1)
    assert direct.x / NPB_LCG_M == a


def test_lcg_outputs_in_unit_interval():
    u = npb_uniforms(100_000)
    assert u.min() > 0.0
    assert u.max() < 1.0
    # The 46-bit LCG is uniform to high quality.
    assert abs(u.mean() - 0.5) < 0.005


def test_lcg_power_identity():
    assert NpbRandom.power(NPB_LCG_A, 0) == 1
    assert NpbRandom.power(NPB_LCG_A, 1) == NPB_LCG_A % NPB_LCG_M


def test_opmix_validation():
    with pytest.raises(ValueError):
        OpMix(fp=0.5, mem=0.2, int_=0.1)
    with pytest.raises(ValueError):
        OpMix(fp=1.5, mem=-0.7, int_=0.2)


# --- kernels at the tiny class ------------------------------------------------


@pytest.mark.parametrize(
    "runner", [run_ep, run_is, run_mg, run_cg, run_bt, run_sp, run_lu]
)
def test_kernels_verify_at_tiny_class(runner):
    outcome = runner(letter="T")
    assert outcome.verified, outcome.details
    assert outcome.operations > 0
    assert np.isfinite(outcome.checksum)


@pytest.mark.parametrize("name", TABLE3_KERNELS + ("CG",))
def test_kernels_verify_at_class_s(name):
    outcome = run_kernel(name, "S")
    assert outcome.verified


def test_kernels_deterministic():
    a = run_ep(letter="T")
    b = run_ep(letter="T")
    assert a.checksum == b.checksum
    assert a.details == b.details


def test_ep_acceptance_near_pi_over_4():
    outcome = run_ep(letter="S")
    frac = outcome.details["accepted"] / outcome.details["pairs"]
    assert frac == pytest.approx(np.pi / 4, abs=0.01)


def test_is_ranks_are_a_sort():
    keys = make_keys(5000, 512)
    ranks = bucket_rank(keys, 512)
    out = np.empty_like(keys)
    out[ranks] = keys
    assert np.all(np.diff(out) >= 0)
    assert np.array_equal(np.sort(ranks), np.arange(5000))


def test_mg_reduces_residual():
    outcome = run_mg(letter="S")
    assert outcome.details["reduction"] < 0.05


def test_bt_sp_solve_the_same_system():
    bt = run_bt(letter="S")
    sp = run_sp(letter="S")
    # Both start from the same RHS, so initial residuals agree...
    assert bt.details["initial_residual"] == pytest.approx(
        sp.details["initial_residual"]
    )
    # ...and both converge toward the same manufactured solution.
    assert bt.details["solution_error"] < 0.05
    assert sp.details["solution_error"] < 0.05


def test_lu_converges():
    outcome = run_lu(letter="S")
    assert outcome.details["final_residual"] < 1e-2 * outcome.details[
        "initial_residual"
    ]


def test_cg_solves_small_system_exactly():
    from repro.npb.cg import conjugate_gradient, make_sparse_spd, spmv

    rows, cols, vals = make_sparse_spd(60, 4)
    dense = np.zeros((60, 60))
    np.add.at(dense, (rows, cols), vals)
    assert np.allclose(dense, dense.T)          # symmetric
    eigmin = np.linalg.eigvalsh(dense).min()
    assert eigmin > 0                           # positive definite
    b = np.random.default_rng(3).standard_normal(60)
    x, res = conjugate_gradient(rows, cols, vals, b, iters=60)
    assert np.allclose(dense @ x, b, atol=1e-8 * np.linalg.norm(b))


def test_run_kernel_raises_on_unknown():
    with pytest.raises(KeyError):
        run_kernel("XX")
    with pytest.raises(KeyError):
        problem_class("EP", "Z")


def test_run_suite_returns_verified_outcomes():
    outcomes = run_suite("T")
    assert [o.name for o in outcomes] == list(TABLE3_KERNELS)
    assert all(o.verified for o in outcomes)


def test_class_sizes_grow():
    for kernel in ("EP", "MG", "BT"):
        t = problem_class(kernel, "T").nominal_ops
        s = problem_class(kernel, "S").nominal_ops
        w = problem_class(kernel, "W").nominal_ops
        assert t < s < w


# --- the shared CFD substrate -------------------------------------------------


def test_cfd_operator_is_linear():
    prob = CfdProblem.with_cfl(6, 0.3)
    rng = np.random.default_rng(0)
    u = rng.standard_normal((6, 6, 6, NCOMP))
    v = rng.standard_normal((6, 6, 6, NCOMP))
    assert np.allclose(
        prob.apply(u + 2 * v), prob.apply(u) + 2 * prob.apply(v)
    )


def test_cfd_rhs_consistent_with_exact_solution():
    prob = CfdProblem.with_cfl(8, 0.3)
    f, u_exact = prob.make_rhs()
    assert prob.residual_norm(u_exact, f) < 1e-10


def test_block_thomas_against_dense():
    prob = CfdProblem.with_cfl(7, 0.3)
    diag, off = prob.line_tridiag_blocks()
    n = 7
    dense = np.zeros((n * NCOMP, n * NCOMP))
    for i in range(n):
        dense[i * 5:(i + 1) * 5, i * 5:(i + 1) * 5] = diag
        if i + 1 < n:
            dense[i * 5:(i + 1) * 5, (i + 1) * 5:(i + 2) * 5] = off
            dense[(i + 1) * 5:(i + 2) * 5, i * 5:(i + 1) * 5] = off
    rhs = np.random.default_rng(1).standard_normal((3, n, 5))
    x = block_thomas(diag, off, rhs)
    xd = np.linalg.solve(dense, rhs.reshape(3, -1).T).T.reshape(3, n, 5)
    assert np.allclose(x, xd, atol=1e-10)


def test_pentadiag_against_dense():
    rng = np.random.default_rng(2)
    n = 15
    d = rng.uniform(6, 8, n)
    e = rng.uniform(-1, 1, n - 1)
    f = rng.uniform(-0.5, 0.5, n - 2)
    dense = (
        np.diag(d) + np.diag(e, 1) + np.diag(e, -1)
        + np.diag(f, 2) + np.diag(f, -2)
    )
    rhs = rng.standard_normal((5, n))
    x = scalar_pentadiag_solve(d, e, f, rhs)
    assert np.allclose(x, np.linalg.solve(dense, rhs.T).T, atol=1e-10)


def test_coupling_matrix_is_spd():
    assert np.allclose(COUPLING, COUPLING.T)
    assert np.linalg.eigvalsh(COUPLING).min() > 0
