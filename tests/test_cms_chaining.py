"""CMS translation chaining: dispatch-cost amortisation."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.cms import CmsConfig, CodeMorphingSoftware
from repro.isa import programs
from repro.isa.machine import run_program
from repro.isa.randprog import random_program, random_state


def _run(workload, **config):
    cms = CodeMorphingSoftware(CmsConfig(**config))
    return cms.run(workload.program, workload.make_state(), max_steps=10**8)


def test_chaining_preserves_results(micro_karp):
    golden, _ = run_program(micro_karp.program, micro_karp.make_state())
    for chaining in (True, False):
        result = _run(
            micro_karp, hot_threshold=2, enable_chaining=chaining
        )
        assert (
            result.state.architectural_view() == golden.architectural_view()
        )


def test_chaining_eliminates_dispatches():
    wl = programs.gravity_microkernel_karp(n=48, passes=30)
    chained = _run(wl, hot_threshold=4, enable_chaining=True)
    unchained = _run(wl, hot_threshold=4, enable_chaining=False)
    # Same native work, far fewer dispatch-loop entries.
    assert chained.chained_jumps > 0
    assert unchained.chained_jumps == 0
    assert chained.dispatches < unchained.dispatches / 10
    assert chained.cycles < unchained.cycles


def test_dispatch_cost_scales_cycles():
    wl = programs.gravity_microkernel_karp(n=32, passes=10)
    cheap = _run(wl, hot_threshold=2, enable_chaining=False,
                 dispatch_cycles=0)
    pricey = _run(wl, hot_threshold=2, enable_chaining=False,
                  dispatch_cycles=100)
    assert pricey.cycles > cheap.cycles
    assert pricey.cycles - cheap.cycles == 100 * pricey.dispatches


def test_negative_dispatch_rejected():
    with pytest.raises(ValueError):
        CmsConfig(dispatch_cycles=-1)


@given(seed=st.integers(0, 5000))
@settings(max_examples=20, deadline=None)
def test_chaining_equivalence_on_random_programs(seed):
    program = random_program(seed)
    golden, _ = run_program(program, random_state(seed), max_steps=10**6)
    cms = CodeMorphingSoftware(
        CmsConfig(hot_threshold=1, enable_chaining=True)
    )
    result = cms.run(program, random_state(seed), max_steps=10**6)
    assert result.state.architectural_view() == golden.architectural_view()
