"""Performance projection: characterisation, Table 3, treecode rates."""

import pytest

from repro.cpus.catalog import (
    ALPHA_EV56_533,
    ATHLON_MP_1200,
    PENTIUM_III_500,
    PENTIUM_PRO_200,
    POWER3_375,
    TABLE3_CPUS,
    TM5600_633,
    TM5800_800,
)
from repro.npb import run_suite
from repro.npb.common import OpMix
from repro.perfmodel import (
    TREECODE_EFFICIENCY,
    characterize,
    metablade_node_rate,
    project_mops,
    project_runtime_s,
    sustained_treecode_mflops,
    table3_mops,
)


@pytest.fixture(scope="module")
def outcomes():
    return run_suite("T")


def test_characterization_is_cached_and_positive():
    first = characterize(TM5600_633)
    second = characterize(TM5600_633)
    assert first is second
    assert first.cpi_fp > 0
    assert first.cpi_mem > 0
    assert first.cpi_int > 0


def test_mix_blending_monotone():
    c = characterize(PENTIUM_III_500)
    fp_heavy = OpMix(fp=0.9, mem=0.05, int_=0.05)
    mem_heavy = OpMix(fp=0.05, mem=0.9, int_=0.05)
    if c.cpi_mem > c.cpi_fp:
        assert c.ops_per_second(mem_heavy) < c.ops_per_second(fp_heavy)


def test_dram_cap_binds_on_streaming():
    """The DRAM bound must dominate the flat-memory simulator rate."""
    c = characterize(ATHLON_MP_1200)
    spec = ATHLON_MP_1200.spec
    dram_cpi = spec.clock_hz * 8.0 / (spec.memory_gbs * 1e9)
    assert c.cpi_mem >= dram_cpi - 1e-12


def test_projection_scales_with_runtime(outcomes):
    ep = next(o for o in outcomes if o.name == "EP")
    mops = project_mops(TM5600_633, ep)
    runtime = project_runtime_s(TM5600_633, ep)
    assert runtime == pytest.approx(ep.operations / (mops * 1e6))


def test_table3_shape(outcomes):
    rows = table3_mops(TABLE3_CPUS, outcomes)
    assert [name for name, _ in rows] == [o.name for o in outcomes]
    for _, mops in rows:
        assert all(v > 0 for v in mops.values())


@pytest.mark.slow
def test_table3_paper_constraints(outcomes):
    """Paper: 'the 633-MHz TM5600 performs as well as the 500-MHz
    Pentium III and about one-third as well as the Athlon and Power3'."""
    rows = table3_mops(TABLE3_CPUS, outcomes)
    cfd = [m for name, m in rows if name in ("BT", "SP", "LU", "MG")]
    for mops in cfd:
        tm = mops["Transmeta TM5600"]
        assert 0.6 < tm / mops["Intel Pentium III"] < 1.1
        assert 2.0 < mops["AMD Athlon MP"] / tm < 4.0
        assert 1.8 < mops["IBM Power3"] / tm < 4.0


@pytest.mark.slow
def test_treecode_rates_reproduce_table4_relations():
    # MetaBlade is pinned at the paper's 87.5 Mflops/processor.
    tm = sustained_treecode_mflops(TM5600_633)
    assert tm == pytest.approx(87.5, abs=1.0)
    # 'about twice that of the Pentium Pro 200 used in Loki'.
    ppro = sustained_treecode_mflops(PENTIUM_PRO_200)
    assert 1.5 < tm / ppro < 2.5
    # 'about the same as the 533-MHz Alphas used in Avalon'.
    alpha = sustained_treecode_mflops(ALPHA_EV56_533)
    assert 0.5 < tm / alpha < 1.1
    # MetaBlade2 lands at the paper's 3.3 Gflops on 24 blades.
    tm2 = sustained_treecode_mflops(TM5800_800)
    assert 24 * tm2 / 1000 == pytest.approx(3.3, abs=0.15)


@pytest.mark.slow
def test_metablade_node_rate():
    assert metablade_node_rate() == pytest.approx(87.5e6, rel=0.02)
    assert TREECODE_EFFICIENCY < 1.0
