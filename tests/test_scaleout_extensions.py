"""Scale-out extensions: rack fabric, parallel NPB, LongRun DVFS."""

import numpy as np
import pytest

from repro.cpus.longrun import (
    EnergyPoint,
    LongRunModel,
    LongRunStep,
    TM5600_LONGRUN,
    TM5800_LONGRUN,
    energy_study,
    spec_at_step,
)
from repro.cpus.catalog import TM5600_633
from repro.isa import programs
from repro.network.link import FAST_ETHERNET, GIGABIT_ETHERNET
from repro.network.multilevel import (
    RackFabricConfig,
    RackTopology,
    green_destiny_fabric,
)
from repro.npb.classes import problem_class
from repro.npb.ep import run_ep
from repro.npb.is_ import make_keys
from repro.npb.parallel import npb_scaling, run_par_ep, run_par_is
from repro.simmpi import SimMpiRuntime

RATE = 87.5e6


# --- two-level rack fabric -----------------------------------------------------


def test_rack_topology_chassis_mapping():
    rack = green_destiny_fabric(nodes=240)
    assert rack.chassis_count == 10
    assert rack.chassis_of(0) == 0
    assert rack.chassis_of(23) == 0
    assert rack.chassis_of(24) == 1
    assert rack.chassis_of(239) == 9


def test_rack_intra_chassis_cheaper_than_inter():
    rack = green_destiny_fabric(nodes=48)
    intra = rack.send(0, 1, nbytes=100_000, post_time=0.0)
    rack.reset()
    inter = rack.send(0, 30, nbytes=100_000, post_time=0.0)
    assert intra.arrive_time < inter.arrive_time


def test_rack_uplink_carries_inter_chassis_traffic():
    rack = green_destiny_fabric(nodes=48)
    rack.send(0, 30, nbytes=50_000, post_time=0.0)
    assert rack.uplink_busy_s(0) > 0
    rack.reset()
    rack.send(0, 1, nbytes=50_000, post_time=0.0)
    assert rack.uplink_busy_s(0) == 0.0


def test_rack_oversubscription_metric():
    gig = RackFabricConfig(uplink=GIGABIT_ETHERNET)
    fe = RackFabricConfig(uplink=FAST_ETHERNET)
    assert gig.oversubscription == pytest.approx(2.4)
    assert fe.oversubscription == pytest.approx(24.0)


def test_rack_fabric_runs_simmpi():
    rack = green_destiny_fabric(nodes=30)
    runtime = SimMpiRuntime(30, fabric=rack)

    def prog(comm):
        total = yield from comm.allreduce(comm.rank)
        return total

    result = runtime.run(prog)
    assert all(r == sum(range(30)) for r in result.results)


def test_rack_slow_uplink_costs_time():
    def elapsed(uplink):
        rack = green_destiny_fabric(nodes=48, uplink=uplink)
        runtime = SimMpiRuntime(48, fabric=rack)

        def prog(comm):
            g = yield from comm.allgather(np.zeros(2000))
            return len(g)

        return runtime.run(prog).elapsed_s

    assert elapsed(FAST_ETHERNET) > elapsed(GIGABIT_ETHERNET)


def test_rack_validation():
    with pytest.raises(ValueError):
        RackTopology(nodes=0)
    with pytest.raises(ValueError):
        RackFabricConfig(nodes_per_chassis=0)
    rack = green_destiny_fabric(nodes=4)
    with pytest.raises(ValueError):
        rack.send(0, 99, 10, 0.0)


# --- parallel NPB ----------------------------------------------------------------


@pytest.mark.parametrize("cpus", [1, 3, 8])
def test_par_ep_matches_serial_bitwise(cpus):
    pc = problem_class("EP", "T")
    serial = run_ep(pc)
    run = run_par_ep(pc.size("pairs"), cpus, RATE)
    sx, sy, counts = run.results[0]
    assert sx == pytest.approx(serial.details["sx"], abs=1e-9)
    assert sy == pytest.approx(serial.details["sy"], abs=1e-9)
    for i in range(10):
        assert counts[i] == serial.details[f"count_{i}"]
    # All ranks agree.
    assert all(r[0] == sx for r in run.results)


@pytest.mark.parametrize("cpus", [1, 2, 5])
def test_par_is_produces_global_sort(cpus):
    n, max_key = 1 << 13, 1 << 9
    run = run_par_is(n, max_key, cpus, RATE)
    combined = np.concatenate([r[0] for r in run.results])
    assert np.array_equal(combined, np.sort(make_keys(n, max_key)))


def test_ep_scales_is_does_not():
    ep = npb_scaling("EP", (1, 8), RATE, n=1 << 16)
    is_ = npb_scaling("IS", (1, 8), RATE, n=1 << 16)
    assert ep[-1].efficiency > 0.7
    # IS drowns in its alltoall on Fast Ethernet - the suite's point.
    assert is_[-1].efficiency < ep[-1].efficiency
    assert is_[-1].comm_fraction > 0.5


def test_npb_scaling_rejects_unknown_kernel():
    with pytest.raises(KeyError):
        npb_scaling("MG", (1,), RATE)


# --- LongRun DVFS -----------------------------------------------------------------


def test_ladder_power_is_monotone():
    for model in (TM5600_LONGRUN, TM5800_LONGRUN):
        powers = [
            model.power_watts(s)
            for s in sorted(model.ladder, key=lambda s: s.mhz)
        ]
        assert powers == sorted(powers)
        assert powers[-1] == pytest.approx(model.rated_watts)


def test_tm5800_more_efficient_than_tm5600():
    """Section 5: the TM5800 does more MHz per watt."""
    w5600 = TM5600_LONGRUN.rated_watts / TM5600_LONGRUN.top.mhz
    w5800 = TM5800_LONGRUN.rated_watts / TM5800_LONGRUN.top.mhz
    assert w5800 < w5600


def test_step_for_budget():
    step = TM5600_LONGRUN.step_for_budget(3.0)
    assert step is not None and step.mhz == 400.0
    assert TM5600_LONGRUN.step_for_budget(100.0).mhz == 633.0
    assert TM5600_LONGRUN.step_for_budget(0.5) is None


def test_energy_study_frontier():
    points = energy_study(programs.gravity_microkernel_karp(n=32, passes=8))
    times = [p.time_s for p in points]
    energies = [p.energy_j for p in points]
    # Higher frequency: always faster...
    assert times == sorted(times, reverse=True)
    # ...but energy-to-solution is minimised part-way down the ladder:
    # voltage scaling beats the top step, while the static-power floor
    # penalises crawling at the very bottom.
    assert energies[-1] == max(energies)
    best = energies.index(min(energies))
    assert best < len(energies) - 1          # not the fastest step
    assert min(energies) < 0.8 * energies[-1]


def test_energy_study_verifies_results():
    import numpy as np
    wl = programs.gravity_microkernel_karp(n=16, passes=2)
    broken = programs.GuestWorkload(
        name="broken",
        program=wl.program,
        make_state=wl.make_state,
        expected=np.full_like(wl.expected, 99.0),
        elements=wl.elements,
    )
    with pytest.raises(RuntimeError):
        energy_study(broken)


def test_spec_at_step():
    step = LongRunStep(400.0, 1.225)
    derated = spec_at_step(TM5600_633.spec, step, TM5600_LONGRUN)
    assert derated.clock_mhz == 400.0
    assert derated.cpu_watts < TM5600_633.spec.cpu_watts
    assert derated.name == TM5600_633.spec.name


def test_longrun_validation():
    with pytest.raises(ValueError):
        LongRunStep(0.0, 1.0)
    with pytest.raises(ValueError):
        LongRunModel(ladder=(), rated_watts=5.0)
    with pytest.raises(ValueError):
        LongRunModel(ladder=TM5600_LONGRUN.ladder, rated_watts=0.1)
