"""Property-based architectural equivalence across execution engines.

The library's core invariant: the golden interpreter, the CMS+VLIW
pipeline (at any threshold / cache size / molecule width) and every
hardware port simulator must produce bit-identical architectural state
on arbitrary guest programs.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.cms import CmsConfig, CodeMorphingSoftware
from repro.cpus.catalog import (
    ALPHA_EV56_533,
    ATHLON_MP_1200,
    PENTIUM_III_500,
    POWER3_375,
)
from repro.cpus.portsim import PortSimulator
from repro.isa.machine import run_program
from repro.isa.randprog import random_program, random_state
from repro.vliw.molecules import NARROW_FORMAT


def _golden(seed):
    program = random_program(seed)
    state, _ = run_program(program, random_state(seed), max_steps=10**6)
    return program, state


@given(seed=st.integers(0, 10_000))
@settings(max_examples=40, deadline=None)
def test_cms_equals_golden_on_random_programs(seed):
    program, golden = _golden(seed)
    cms = CodeMorphingSoftware(CmsConfig(hot_threshold=2))
    result = cms.run(program, random_state(seed), max_steps=10**6)
    assert result.state.architectural_view() == golden.architectural_view()


@given(seed=st.integers(0, 10_000), threshold=st.sampled_from([1, 3, 7, 50]))
@settings(max_examples=25, deadline=None)
def test_cms_threshold_invariance(seed, threshold):
    program, golden = _golden(seed)
    cms = CodeMorphingSoftware(CmsConfig(hot_threshold=threshold))
    result = cms.run(program, random_state(seed), max_steps=10**6)
    assert result.state.architectural_view() == golden.architectural_view()


@given(seed=st.integers(0, 10_000))
@settings(max_examples=20, deadline=None)
def test_narrow_molecules_equal_golden(seed):
    program, golden = _golden(seed)
    cms = CodeMorphingSoftware(
        CmsConfig(hot_threshold=1, limits=NARROW_FORMAT)
    )
    result = cms.run(program, random_state(seed), max_steps=10**6)
    assert result.state.architectural_view() == golden.architectural_view()


@pytest.mark.parametrize(
    "cpu",
    [PENTIUM_III_500, ALPHA_EV56_533, POWER3_375, ATHLON_MP_1200],
    ids=lambda c: c.name,
)
@given(seed=st.integers(0, 5_000))
@settings(max_examples=15, deadline=None)
def test_hardware_models_equal_golden(cpu, seed):
    program, golden = _golden(seed)
    sim = PortSimulator(
        cpu.table,
        issue_width=cpu.spec.issue_width,
        window=cpu.window,
        has_fma=cpu.has_fma,
    )
    outcome = sim.simulate(program, random_state(seed), max_steps=10**6)
    assert outcome.state.architectural_view() == golden.architectural_view()
    assert outcome.cycles > 0


@given(seed=st.integers(0, 10_000))
@settings(max_examples=25, deadline=None)
def test_tiny_tcache_equals_golden(seed):
    program, golden = _golden(seed)
    cms = CodeMorphingSoftware(
        CmsConfig(hot_threshold=1, tcache_bytes=48)
    )
    result = cms.run(program, random_state(seed), max_steps=10**6)
    assert result.state.architectural_view() == golden.architectural_view()
