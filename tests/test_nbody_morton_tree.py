"""Morton keys and the hashed octree: structure and invariants."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.nbody.ic import plummer_sphere, uniform_cube
from repro.nbody.morton import (
    MAX_DEPTH,
    ROOT_KEY,
    ancestor_at_level,
    cell_geometry,
    child_key,
    key_level,
    morton_decode,
    morton_encode,
    parent_key,
    particle_keys,
    quantize,
)
from repro.nbody.tree import HashedOctree


coord = st.integers(0, (1 << 21) - 1)


@given(ix=coord, iy=coord, iz=coord)
@settings(max_examples=100, deadline=None)
def test_morton_roundtrip(ix, iy, iz):
    code = morton_encode(np.array([ix]), np.array([iy]), np.array([iz]))
    dx, dy, dz = morton_decode(code)
    assert (int(dx[0]), int(dy[0]), int(dz[0])) == (ix, iy, iz)


def test_morton_locality():
    """Adjacent cells within an octant share a long key prefix."""
    a = int(morton_encode(np.array([4]), np.array([4]), np.array([4]))[0])
    b = int(morton_encode(np.array([5]), np.array([5]), np.array([5]))[0])
    c = int(morton_encode(np.array([4]), np.array([4]), np.array([5]))[0])
    # (4,4,4)->(4,4,5) flips one bit; (4,4,4)->(5,5,5) flips three.
    assert (a ^ c).bit_count() < (a ^ b).bit_count()


def test_key_hierarchy():
    key = child_key(child_key(ROOT_KEY, 3), 5)
    assert key_level(key) == 2
    assert parent_key(key) == child_key(ROOT_KEY, 3)
    assert ancestor_at_level(key, 0) == ROOT_KEY
    assert ancestor_at_level(key, 2) == key
    with pytest.raises(ValueError):
        parent_key(ROOT_KEY)
    with pytest.raises(ValueError):
        child_key(ROOT_KEY, 8)
    with pytest.raises(ValueError):
        ancestor_at_level(ROOT_KEY, 5)


def test_quantize_bounds():
    lo = np.zeros(3)
    hi = np.ones(3)
    pos = np.array([[0.0, 0.5, 0.999999], [1.0 - 1e-12, 0.0, 0.5]])
    grid = quantize(pos, lo, hi, depth=4)
    assert grid.min() >= 0
    assert grid.max() < 16
    with pytest.raises(ValueError):
        quantize(pos, lo, hi, depth=0)


def test_particle_keys_have_sentinel():
    pos = np.array([[0.1, 0.2, 0.3]])
    keys = particle_keys(pos, np.zeros(3), np.ones(3), depth=MAX_DEPTH)
    assert key_level(int(keys[0])) == MAX_DEPTH


def test_cell_geometry_root_covers_box():
    lo, hi = np.zeros(3), np.ones(3)
    centre, size = cell_geometry(ROOT_KEY, lo, hi)
    assert np.allclose(centre, [0.5, 0.5, 0.5])
    assert size == pytest.approx(1.0)


def test_cell_geometry_children_nest():
    lo, hi = np.zeros(3), np.ones(3)
    for octant in range(8):
        centre, size = cell_geometry(child_key(ROOT_KEY, octant), lo, hi)
        assert size == pytest.approx(0.5)
        assert np.all(centre > lo) and np.all(centre < hi)


# --- tree construction -------------------------------------------------------


@pytest.mark.parametrize("n,leaf_size", [(1, 4), (17, 1), (300, 8), (1000, 32)])
def test_tree_invariants(n, leaf_size):
    pos, _, mass = plummer_sphere(n, seed=n)
    tree = HashedOctree(pos, mass, leaf_size=leaf_size)
    tree.validate()
    assert tree.n_particles == n
    leaves = list(tree.leaves())
    # Leaves tile [0, n) in curve order.
    assert leaves[0].lo == 0
    assert leaves[-1].hi == n
    for a, b in zip(leaves, leaves[1:]):
        assert a.hi == b.lo


@given(seed=st.integers(0, 1000), n=st.integers(2, 120))
@settings(max_examples=30, deadline=None)
def test_tree_invariants_property(seed, n):
    rng = np.random.default_rng(seed)
    pos = rng.uniform(-1, 1, size=(n, 3))
    mass = rng.uniform(0.1, 2.0, size=n)
    tree = HashedOctree(pos, mass, leaf_size=4)
    tree.validate()
    # Centre of mass of the root equals the global one.
    com = (mass[:, None] * pos).sum(axis=0) / mass.sum()
    assert np.allclose(tree.root.com, com, rtol=1e-9, atol=1e-12)


def test_duplicate_positions_handled():
    pos = np.zeros((50, 3))
    mass = np.ones(50)
    tree = HashedOctree(pos, mass, leaf_size=4)
    tree.validate()
    # Identical keys cannot split: a single max-depth leaf holds all.
    big = max(leaf.count for leaf in tree.leaves())
    assert big == 50


def test_lookup_is_hash_based():
    pos, _, mass = plummer_sphere(200, seed=1)
    tree = HashedOctree(pos, mass, leaf_size=8)
    assert tree.lookup(ROOT_KEY) is tree.root
    assert tree.contains_key(ROOT_KEY)
    assert not tree.contains_key(child_key(ROOT_KEY, 0) << 60)


def test_enclosing_leaf():
    pos, _, mass = plummer_sphere(150, seed=2)
    tree = HashedOctree(pos, mass, leaf_size=8)
    for idx in (0, 17, 149):
        leaf = tree.enclosing_leaf(idx)
        assert leaf.is_leaf
        assert leaf.lo <= idx < leaf.hi


def test_unsort_roundtrip():
    pos, _, mass = plummer_sphere(64, seed=3)
    tree = HashedOctree(pos, mass)
    values_sorted = np.arange(64.0)
    original = tree.unsort(values_sorted)
    assert np.array_equal(original[tree.order], values_sorted)


def test_tree_input_validation():
    with pytest.raises(ValueError):
        HashedOctree(np.zeros((0, 3)), np.zeros(0))
    with pytest.raises(ValueError):
        HashedOctree(np.zeros((5, 3)), np.zeros(5), leaf_size=0)
    with pytest.raises(ValueError):
        HashedOctree(np.zeros((5, 2)), np.zeros(5))
