"""The paper's metrics: TCO (Table 5), ToPPeR, ratios, reporting."""

import pytest

from repro.cluster import METABLADE, TABLE5_CLUSTERS
from repro.metrics import (
    CostParameters,
    DEFAULT_COSTS,
    format_table,
    paper_headline_claim,
    perf_power_table,
    perf_space_table,
    tco_for,
    tco_table,
    topper,
    topper_advantage,
)
from repro.metrics.ratios import improvement_factor
from repro.metrics.tco import (
    downtime_cost,
    power_cooling_cost,
    space_cost,
    sysadmin_cost,
)
from repro.metrics.topper import BLADE_RELATIVE_PERFORMANCE


def by_name(name):
    return next(c for c in TABLE5_CLUSTERS if c.name == name)


def test_cost_parameters_paper_defaults():
    p = DEFAULT_COSTS
    assert p.years == 4.0
    assert p.utility_usd_per_kwh == 0.10
    assert p.space_usd_per_sqft_year == 100.0
    assert p.downtime_usd_per_cpu_hour == 5.0
    assert p.total_hours == 35_040.0
    assert p.blade_setup_usd == 250.0


def test_cost_parameters_validation():
    with pytest.raises(ValueError):
        CostParameters(years=0)
    with pytest.raises(ValueError):
        CostParameters(utility_usd_per_kwh=-1)


# --- Table 5 component-by-component against the paper's stated numbers ---


def test_sysadmin_costs():
    assert sysadmin_cost(by_name("Alpha Beowulf")) == 60_000.0
    assert sysadmin_cost(METABLADE) == 5_050.0     # $250 + 4 x $1200


def test_space_costs():
    # 20 sq ft x $100/sqft/yr x 4 yr = $8000; blades: 6 sq ft = $2400.
    assert space_cost(by_name("PIII Beowulf")) == 8_000.0
    assert space_cost(METABLADE) == 2_400.0


def test_downtime_costs():
    # 2304 CPU-h x $5 = $11,520 traditional; 4 CPU-h x $5 = $20 blade.
    assert downtime_cost(by_name("P4 Beowulf")) == 11_520.0
    assert downtime_cost(METABLADE) == 20.0


def test_power_cooling_costs():
    # P4: 85 W x 24 = 2.04 kW, +50% cooling -> $10,722 over 4 years.
    assert power_cooling_cost(by_name("P4 Beowulf")) == pytest.approx(
        10_722, abs=15
    )
    # MetaBlade: 0.52 kW, no cooling -> ~$1,822.
    assert power_cooling_cost(METABLADE) == pytest.approx(1_822, abs=15)


def test_table5_totals_match_paper_within_rounding():
    paper_totals_k = {
        "Alpha Beowulf": 108,
        "Athlon Beowulf": 101,
        "PIII Beowulf": 102,
        "P4 Beowulf": 108,
        "MetaBlade": 35,
    }
    for breakdown in tco_table(TABLE5_CLUSTERS):
        expected = paper_totals_k[breakdown.cluster_name]
        assert breakdown.total / 1000 == pytest.approx(expected, abs=1.5)


def test_tco_identity():
    b = tco_for(METABLADE)
    assert b.total == pytest.approx(b.acquisition + b.operating)
    assert b.operating == pytest.approx(
        b.sysadmin + b.power_cooling + b.space + b.downtime
    )


def test_blade_tco_about_three_times_smaller():
    blade = tco_for(METABLADE).total
    traditional = [
        tco_for(c).total for c in TABLE5_CLUSTERS if c is not METABLADE
    ]
    for total in traditional:
        assert 2.5 < total / blade < 3.5


def test_software_cost_parameter_flows_through():
    params = CostParameters(software_usd=5_000.0)
    assert tco_for(METABLADE, params).acquisition == 31_000.0


# --- ToPPeR ----------------------------------------------------------------


def test_topper_lower_is_better_and_blade_wins():
    claim = paper_headline_claim()
    assert claim.blade_wins
    assert claim.topper_ratio > 2.0        # "over twice as good"
    assert claim.performance_ratio == BLADE_RELATIVE_PERFORMANCE
    assert 2.5 < claim.tco_ratio < 3.5     # "three times smaller"


def test_topper_requires_performance():
    nameless = by_name("PIII Beowulf")
    with pytest.raises(ValueError):
        topper(nameless)                   # no treecode rating
    rated = topper(nameless, sustained_gflops=2.8)
    assert rated.usd_per_gflop > 0


def test_topper_advantage_is_symmetric_ratio():
    a = topper(METABLADE, 2.1)
    b = topper(by_name("PIII Beowulf"), 2.8)
    assert topper_advantage(a, b) == pytest.approx(
        1.0 / (a.usd_per_gflop / b.usd_per_gflop)
    )


# --- Tables 6 and 7 ----------------------------------------------------------


def test_table6_values():
    rows = {r.machine: r for r in perf_space_table()}
    assert rows["Avalon"].mflops_per_sqft == pytest.approx(150.0)
    assert rows["MetaBlade"].mflops_per_sqft == pytest.approx(350.0)
    assert rows["Green Destiny"].mflops_per_sqft == pytest.approx(
        3583.3, abs=1
    )


def test_table6_paper_factors():
    factors = improvement_factor(
        perf_space_table(), "mflops_per_sqft", baseline="Avalon"
    )
    # "beats the traditional Beowulf ... by a factor of two".
    assert 2.0 < factors["MetaBlade"] < 3.0
    # "an over twenty-fold improvement".
    assert factors["Green Destiny"] > 20.0


def test_table7_paper_factors():
    factors = improvement_factor(
        perf_power_table(), "gflops_per_kw", baseline="Avalon"
    )
    # "outperform the traditional Beowulf by a factor of four".
    assert 3.5 < factors["MetaBlade"] < 4.5
    assert 3.5 < factors["Green Destiny"] < 4.5


# --- reporting ----------------------------------------------------------------


def test_format_table_alignment():
    text = format_table(
        ["Name", "Value"],
        [["alpha", 1.0], ["b", 22.5]],
        title="Demo",
    )
    lines = text.splitlines()
    assert lines[0] == "Demo"
    assert "Name" in lines[2]
    assert len({len(l) for l in lines[2:]}) <= 2   # aligned columns


def test_format_table_rejects_ragged_rows():
    with pytest.raises(ValueError):
        format_table(["A", "B"], [["only one"]])
