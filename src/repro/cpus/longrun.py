"""LongRun: the Crusoe's dynamic voltage and frequency scaling.

The TM5600/TM5800 shipped with LongRun, Transmeta's DVFS: CMS steps the
core through frequency/voltage pairs at run time.  The paper's Section
5 trajectory (ever lower power at competitive performance) and the
project's follow-on energy work build on it, so the model carries it:

- power scales as f * V^2 (switching energy) plus a small static floor;
- each step is a (MHz, volts) pair from the part's published ladder;
- :func:`energy_study` runs a real workload through the CMS pipeline at
  each step and reports time, average power and energy-to-solution -
  the run-fast-vs-run-slow frontier.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.cms import CmsConfig, CodeMorphingSoftware
from repro.cpus.base import ProcessorSpec
from repro.isa.programs import GuestWorkload


@dataclass(frozen=True)
class LongRunStep:
    """One frequency/voltage operating point."""

    mhz: float
    volts: float

    def __post_init__(self) -> None:
        if self.mhz <= 0 or self.volts <= 0:
            raise ValueError("frequency and voltage must be positive")


#: The TM5600's LongRun ladder (representative published points).
TM5600_LADDER: Tuple[LongRunStep, ...] = (
    LongRunStep(300.0, 1.2),
    LongRunStep(400.0, 1.225),
    LongRunStep(500.0, 1.35),
    LongRunStep(600.0, 1.5),
    LongRunStep(633.0, 1.6),
)

#: The TM5800's ladder reaches 800 MHz at lower voltage.
TM5800_LADDER: Tuple[LongRunStep, ...] = (
    LongRunStep(300.0, 0.8),
    LongRunStep(500.0, 0.925),
    LongRunStep(667.0, 1.05),
    LongRunStep(800.0, 1.3),
)


@dataclass(frozen=True)
class LongRunModel:
    """Power model over a LongRun ladder.

    Calibrated so the top step dissipates the part's rated load power:
    P(f, V) = static + k * f * V^2 with k fixed by the top step.
    """

    ladder: Tuple[LongRunStep, ...]
    rated_watts: float
    static_watts: float = 0.35

    def __post_init__(self) -> None:
        if not self.ladder:
            raise ValueError("ladder cannot be empty")
        if self.rated_watts <= self.static_watts:
            raise ValueError("rated power must exceed the static floor")

    @property
    def top(self) -> LongRunStep:
        return max(self.ladder, key=lambda s: s.mhz)

    @property
    def _k(self) -> float:
        top = self.top
        return (self.rated_watts - self.static_watts) / (
            top.mhz * top.volts ** 2
        )

    def power_watts(self, step: LongRunStep) -> float:
        return self.static_watts + self._k * step.mhz * step.volts ** 2

    def step_for_budget(self, watts: float) -> Optional[LongRunStep]:
        """Fastest step whose power fits *watts* (None if none fits)."""
        fitting = [
            s for s in self.ladder if self.power_watts(s) <= watts
        ]
        if not fitting:
            return None
        return max(fitting, key=lambda s: s.mhz)


TM5600_LONGRUN = LongRunModel(ladder=TM5600_LADDER, rated_watts=6.0)
TM5800_LONGRUN = LongRunModel(ladder=TM5800_LADDER, rated_watts=3.5)


@dataclass(frozen=True)
class EnergyPoint:
    """One operating point's outcome on one workload."""

    mhz: float
    volts: float
    power_watts: float
    time_s: float
    energy_j: float


def energy_study(workload: GuestWorkload,
                 model: LongRunModel = TM5600_LONGRUN,
                 cms_config: Optional[CmsConfig] = None) -> List[EnergyPoint]:
    """Run *workload* through CMS at every ladder step.

    The cycle count is frequency-independent (same pipeline), so one
    morphing run prices every step; energy = power x time exposes the
    DVFS frontier: lower steps save power faster than they lose time
    whenever voltage drops with frequency.
    """
    cms = CodeMorphingSoftware(cms_config or CmsConfig())
    result = cms.run(workload.program, workload.make_state(),
                     max_steps=10**8)
    if not workload.check(result.state):
        raise RuntimeError("workload failed verification under CMS")
    points = []
    for step in sorted(model.ladder, key=lambda s: s.mhz):
        time_s = result.cycles / (step.mhz * 1e6)
        power = model.power_watts(step)
        points.append(
            EnergyPoint(
                mhz=step.mhz,
                volts=step.volts,
                power_watts=power,
                time_s=time_s,
                energy_j=power * time_s,
            )
        )
    return points


def spec_at_step(spec: ProcessorSpec, step: LongRunStep,
                 model: LongRunModel) -> ProcessorSpec:
    """A ProcessorSpec re-rated at a LongRun operating point."""
    from dataclasses import replace

    return replace(
        spec,
        clock_mhz=step.mhz,
        cpu_watts=model.power_watts(step),
    )
