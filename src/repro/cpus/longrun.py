"""LongRun: the Crusoe's dynamic voltage and frequency scaling.

The TM5600/TM5800 shipped with LongRun, Transmeta's DVFS: CMS steps the
core through frequency/voltage pairs at run time.  The paper's Section
5 trajectory (ever lower power at competitive performance) and the
project's follow-on energy work build on it, so the model carries it:

- power scales as f * V^2 (switching energy) plus a small static floor;
- each step is a (MHz, volts) pair from the part's published ladder;
- :func:`energy_study` runs a real workload through the CMS pipeline at
  each step and reports time, average power and energy-to-solution -
  the run-fast-vs-run-slow frontier;
- :class:`LongRunGovernor` is the *time model*: a piecewise-constant
  DVFS trajectory on the shared
  :class:`~repro.core.events.EventKernel` clock, so flop rates (and the
  energy ledger) change mid-run inside live SimMPI programs —
  :func:`dvfs_trajectory_study` demonstrates exactly that.
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.cms import CmsConfig, CodeMorphingSoftware
from repro.core.events import EventKernel
from repro.cpus.base import ProcessorSpec
from repro.isa.programs import GuestWorkload
from repro.thermal.throttle import PiecewiseGovernor


@dataclass(frozen=True)
class LongRunStep:
    """One frequency/voltage operating point."""

    mhz: float
    volts: float

    def __post_init__(self) -> None:
        if self.mhz <= 0 or self.volts <= 0:
            raise ValueError("frequency and voltage must be positive")


#: The TM5600's LongRun ladder (representative published points).
TM5600_LADDER: Tuple[LongRunStep, ...] = (
    LongRunStep(300.0, 1.2),
    LongRunStep(400.0, 1.225),
    LongRunStep(500.0, 1.35),
    LongRunStep(600.0, 1.5),
    LongRunStep(633.0, 1.6),
)

#: The TM5800's ladder reaches 800 MHz at lower voltage.
TM5800_LADDER: Tuple[LongRunStep, ...] = (
    LongRunStep(300.0, 0.8),
    LongRunStep(500.0, 0.925),
    LongRunStep(667.0, 1.05),
    LongRunStep(800.0, 1.3),
)


@dataclass(frozen=True)
class LongRunModel:
    """Power model over a LongRun ladder.

    Calibrated so the top step dissipates the part's rated load power:
    P(f, V) = static + k * f * V^2 with k fixed by the top step.
    """

    ladder: Tuple[LongRunStep, ...]
    rated_watts: float
    static_watts: float = 0.35

    def __post_init__(self) -> None:
        if not self.ladder:
            raise ValueError("ladder cannot be empty")
        if self.rated_watts <= self.static_watts:
            raise ValueError("rated power must exceed the static floor")

    @property
    def top(self) -> LongRunStep:
        return max(self.ladder, key=lambda s: s.mhz)

    @property
    def _k(self) -> float:
        top = self.top
        return (self.rated_watts - self.static_watts) / (
            top.mhz * top.volts ** 2
        )

    def power_watts(self, step: LongRunStep) -> float:
        return self.static_watts + self._k * step.mhz * step.volts ** 2

    def step_for_budget(self, watts: float) -> Optional[LongRunStep]:
        """Fastest step whose power fits *watts* (None if none fits)."""
        fitting = [
            s for s in self.ladder if self.power_watts(s) <= watts
        ]
        if not fitting:
            return None
        return max(fitting, key=lambda s: s.mhz)


TM5600_LONGRUN = LongRunModel(ladder=TM5600_LADDER, rated_watts=6.0)
TM5800_LONGRUN = LongRunModel(ladder=TM5800_LADDER, rated_watts=3.5)


@dataclass(frozen=True)
class DvfsTransition:
    """One scheduled operating-point change on the virtual clock."""

    time_s: float
    step: LongRunStep

    def __post_init__(self) -> None:
        if self.time_s < 0:
            raise ValueError("transition time cannot be negative")


class LongRunGovernor(PiecewiseGovernor):
    """A DVFS trajectory on the unified event-kernel clock.

    The governor holds a piecewise-constant schedule of
    :class:`LongRunStep` operating points starting from *initial*
    (default: the ladder's top).  Attached to a
    :class:`~repro.simmpi.runtime.SimMpiRuntime`, it scales every
    ``comm.compute_flops`` charge by the frequency of the step active
    at each instant of the work — a transition mid-computation splits
    the charge across steps — and integrates power over the same
    segments into the per-rank energy ledger.  With a tracing kernel,
    each transition also lands on the shared timeline as a ``dvfs``
    event.

    One of three implementations of the shared
    :class:`~repro.thermal.throttle.Governor` contract: the charge
    loop lives on :class:`~repro.thermal.throttle.PiecewiseGovernor`,
    so a LongRun descent composes with a thermal clamp on the same
    node via :class:`~repro.thermal.throttle.ComposedGovernor`.
    """

    def __init__(self, model: LongRunModel,
                 initial: Optional[LongRunStep] = None,
                 kernel: Optional[EventKernel] = None) -> None:
        self.model = model
        self.initial = initial if initial is not None else model.top
        self.kernel = kernel
        self._times: List[float] = []
        self._steps: List[LongRunStep] = []

    @property
    def transitions(self) -> Tuple[DvfsTransition, ...]:
        return tuple(
            DvfsTransition(t, s) for t, s in zip(self._times, self._steps)
        )

    def step_at(self, time_s: float, step: LongRunStep) -> None:
        """Schedule an operating-point change at virtual *time_s*."""
        if time_s < 0:
            raise ValueError("transition time cannot be negative")
        if step not in self.model.ladder:
            raise ValueError(f"{step} is not on the part's ladder")
        i = bisect_right(self._times, time_s)
        self._times.insert(i, time_s)
        self._steps.insert(i, step)
        if self.kernel is not None:
            self.kernel.at(
                time_s,
                lambda t=time_s, s=step: self.kernel.trace(
                    "dvfs", time=t, mhz=s.mhz, volts=s.volts,
                ),
            )

    def step_for_budget_at(self, time_s: float,
                           watts: float) -> Optional[LongRunStep]:
        """Schedule the fastest step fitting a power budget; None if none."""
        step = self.model.step_for_budget(watts)
        if step is not None:
            self.step_at(time_s, step)
        return step

    def step_at_time(self, t: float) -> LongRunStep:
        """The operating point active at virtual time *t*."""
        i = bisect_right(self._times, t)
        return self.initial if i == 0 else self._steps[i - 1]

    def frequency_scale(self, t: float) -> float:
        """Active frequency as a fraction of the top step's."""
        return self.step_at_time(t).mhz / self.model.top.mhz

    def power_at(self, t: float) -> float:
        return self.model.power_watts(self.step_at_time(t))

    def next_change(self, t: float) -> Optional[float]:
        i = bisect_right(self._times, t)
        return self._times[i] if i < len(self._times) else None


@dataclass(frozen=True)
class EnergyPoint:
    """One operating point's outcome on one workload."""

    mhz: float
    volts: float
    power_watts: float
    time_s: float
    energy_j: float


def energy_study(workload: GuestWorkload,
                 model: LongRunModel = TM5600_LONGRUN,
                 cms_config: Optional[CmsConfig] = None) -> List[EnergyPoint]:
    """Run *workload* through CMS at every ladder step.

    The cycle count is frequency-independent (same pipeline), so one
    morphing run prices every step; energy = power x time exposes the
    DVFS frontier: lower steps save power faster than they lose time
    whenever voltage drops with frequency.
    """
    cms = CodeMorphingSoftware(cms_config or CmsConfig())
    result = cms.run(workload.program, workload.make_state(),
                     max_steps=10**8)
    if not workload.check(result.state):
        raise RuntimeError("workload failed verification under CMS")
    points = []
    for step in sorted(model.ladder, key=lambda s: s.mhz):
        time_s = result.cycles / (step.mhz * 1e6)
        power = model.power_watts(step)
        points.append(
            EnergyPoint(
                mhz=step.mhz,
                volts=step.volts,
                power_watts=power,
                time_s=time_s,
                energy_j=power * time_s,
            )
        )
    return points


@dataclass(frozen=True)
class TrajectoryOutcome:
    """A live SimMPI run priced under one DVFS trajectory."""

    elapsed_s: float
    energy_j: float
    transitions: Tuple[DvfsTransition, ...]

    @property
    def avg_power_watts(self) -> float:
        return self.energy_j / self.elapsed_s if self.elapsed_s > 0 else 0.0


def dvfs_trajectory_study(
    model: LongRunModel = TM5600_LONGRUN,
    ranks: int = 4,
    phases: int = 6,
    flops_per_phase: float = 5e6,
    base_rate: float = 1e8,
) -> Tuple[TrajectoryOutcome, TrajectoryOutcome]:
    """Price a mid-run LongRun descent against an all-top-step run.

    Every rank alternates compute and allreduce for *phases* rounds
    while a :class:`LongRunGovernor` walks the ladder downward one
    notch per (top-rate) phase interval — the flop rate changes *while
    the program runs*, on the same event-kernel clock the scheduler
    uses.  Returns (stepped, flat) outcomes: the descent trades
    elapsed time for energy because power falls as f * V^2 while time
    only grows as 1/f.
    """
    from repro.network.timing import star_fabric
    from repro.simmpi import SimMpiRuntime

    def program(comm):
        for _ in range(phases):
            comm.compute_flops(flops_per_phase)
            yield from comm.allreduce(comm.rank)
        return comm.clock

    def run(governor: LongRunGovernor) -> TrajectoryOutcome:
        runtime = SimMpiRuntime(
            ranks, fabric=star_fabric(ranks), flop_rate=base_rate,
            kernel=governor.kernel, governor=governor,
        )
        result = runtime.run(program)
        return TrajectoryOutcome(
            elapsed_s=result.elapsed_s,
            energy_j=sum(s.energy_j for s in result.stats),
            transitions=governor.transitions,
        )

    ladder = sorted(model.ladder, key=lambda s: s.mhz, reverse=True)
    top_phase_s = flops_per_phase / base_rate
    stepped_gov = LongRunGovernor(model, kernel=EventKernel())
    for i, step in enumerate(ladder[1:], start=1):
        stepped_gov.step_at(i * top_phase_s, step)
    flat_gov = LongRunGovernor(model, kernel=EventKernel())
    return run(stepped_gov), run(flat_gov)


def spec_at_step(spec: ProcessorSpec, step: LongRunStep,
                 model: LongRunModel) -> ProcessorSpec:
    """A ProcessorSpec re-rated at a LongRun operating point."""
    from dataclasses import replace

    return replace(
        spec,
        clock_mhz=step.mhz,
        cpu_watts=model.power_watts(step),
    )
