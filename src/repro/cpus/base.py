"""Common processor interface and result types."""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Optional

from repro.isa.programs import GuestWorkload


@dataclass(frozen=True)
class ProcessorSpec:
    """Static, physical attributes of a processor.

    Power figures follow paper Section 2 / Section 4.1: ``cpu_watts`` is
    the CPU's dissipation at load (TM5600 ~6 W, Pentium 4 ~75 W, IA-64
    130+ W); ``node_watts`` is a complete compute node with memory, disk
    and NIC (e.g. 85 W for a P4 node).  ``needs_active_cooling`` drives
    the cooling-cost and reliability models.
    """

    name: str
    vendor: str
    clock_mhz: float
    cpu_watts: float
    node_watts: float
    transistors_millions: float
    needs_active_cooling: bool
    year: int
    issue_width: int
    out_of_order: bool
    #: Sustainable DRAM bandwidth in GB/s (caps memory-bound kernels;
    #: the instruction simulators model a flat memory, so streaming
    #: codes must be bounded here).
    memory_gbs: float = 1.0

    @property
    def clock_hz(self) -> float:
        return self.clock_mhz * 1e6


@dataclass(frozen=True)
class KernelResult:
    """Outcome of timing one guest workload on one processor."""

    processor: str
    workload: str
    cycles: int
    seconds: float
    nominal_flops: int
    guest_instructions: int

    @property
    def mflops(self) -> float:
        """Mflops rating, the unit of the paper's Table 1."""
        if self.seconds <= 0:
            return 0.0
        return self.nominal_flops / self.seconds / 1e6

    @property
    def mips(self) -> float:
        if self.seconds <= 0:
            return 0.0
        return self.guest_instructions / self.seconds / 1e6

    @property
    def cycles_per_instruction(self) -> float:
        if self.guest_instructions == 0:
            return 0.0
        return self.cycles / self.guest_instructions


class Processor(abc.ABC):
    """Anything that can execute a guest workload and report timing."""

    spec: ProcessorSpec

    @property
    def name(self) -> str:
        return self.spec.name

    @abc.abstractmethod
    def run_workload(self, workload: GuestWorkload,
                     check: bool = True) -> KernelResult:
        """Execute *workload* to completion and time it.

        With ``check=True`` the architectural output is validated against
        the workload's golden reference before timing is reported - a
        wrong answer never earns a Mflops rating.
        """

    def mflops(self, workload: GuestWorkload) -> float:
        return self.run_workload(workload).mflops


class WrongAnswerError(RuntimeError):
    """A processor model produced architecturally incorrect results."""
