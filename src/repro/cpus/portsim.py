"""Trace-driven superscalar port/ROB timing simulator.

Models the hardware x86/RISC competitors of Table 1/3 with the classic
first-order microarchitecture abstraction:

- in-order **dispatch** at ``issue_width`` instructions per cycle,
  bounded by reorder-buffer space (instruction *i* cannot dispatch until
  instruction *i - window* has retired);
- data-driven **issue**: an instruction issues once dispatched, its
  register operands are complete, and an execution port is free
  (in-order machines additionally issue monotonically with operands
  ready at issue);
- execution ports with per-class latency and occupancy (unpipelined
  iterative dividers keep their port busy for the full latency);
- in-order **retirement**;
- memory disambiguation by effective address: a load issues no earlier
  than the youngest prior store *to the same word*.

Semantics come from the golden machine; the simulator only produces
timing, so every hardware model is architecturally exact by
construction.  Branch prediction is assumed perfect (the paper's kernels
are dominated by highly regular loops); this is noted in DESIGN.md.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Dict, Optional

from repro.isa.instructions import Instr, Op, OpClass, Program
from repro.isa.machine import ExecStats, Machine, MachineState
from repro.cpus.base import (
    KernelResult,
    Processor,
    ProcessorSpec,
    WrongAnswerError,
)
from repro.cpus.ports import PortTable
from repro.isa.programs import GuestWorkload


@dataclass
class SimOutcome:
    """Timing + architectural outcome of one simulated run."""

    cycles: int
    state: MachineState
    guest_stats: ExecStats


class PortTimeline:
    """Busy-interval calendar for one execution port.

    Unlike a scalar next-free counter, a calendar lets a younger,
    data-ready instruction claim an idle slot *before* an older, stalled
    instruction's booking - the oldest-ready-first behaviour of real
    out-of-order issue queues.
    """

    __slots__ = ("starts", "ends")

    #: Intervals kept before pruning the oldest half (bounded memory and
    #: O(log n) booking; anything older is effectively retired).
    _PRUNE_AT = 512

    def __init__(self) -> None:
        self.starts: list = []
        self.ends: list = []

    def probe(self, ready: int, occupancy: int) -> tuple:
        """Earliest (insert_index, start) with a gap >= occupancy."""
        from bisect import bisect_right

        starts, ends = self.starts, self.ends
        i = bisect_right(starts, ready)
        s = ready
        if i > 0 and ends[i - 1] > s:
            s = ends[i - 1]
        while i < len(starts) and starts[i] < s + occupancy:
            if ends[i] > s:
                s = ends[i]
            i += 1
        return i, s

    def commit(self, index: int, start: int, occupancy: int) -> None:
        self.starts.insert(index, start)
        self.ends.insert(index, start + occupancy)
        if len(self.starts) > self._PRUNE_AT:
            keep = self._PRUNE_AT // 2
            del self.starts[:-keep]
            del self.ends[:-keep]

    def book(self, ready: int, occupancy: int) -> int:
        """Reserve *occupancy* cycles at the earliest start >= ready."""
        index, start = self.probe(ready, occupancy)
        self.commit(index, start, occupancy)
        return start


class PortSimulator:
    """Times a dynamic guest instruction stream on a port machine."""

    def __init__(self, table: PortTable, issue_width: int,
                 window: int = 0, has_fma: bool = False) -> None:
        if issue_width < 1:
            raise ValueError("issue_width must be >= 1")
        if window < 0:
            raise ValueError("window must be >= 0 (0 means in-order)")
        self.table = table
        self.issue_width = issue_width
        #: reorder-buffer depth; 0 models a strict in-order pipeline.
        self.window = window
        self.has_fma = has_fma
        self._reset()

    def _reset(self) -> None:
        self._reg_ready: Dict[str, int] = {}
        self._ports: Dict[str, PortTimeline] = {
            p: PortTimeline() for p in self.table.port_names()
        }
        self._dispatch_ring: deque = deque(maxlen=self.issue_width)
        self._retire_ring: deque = deque(
            maxlen=self.window if self.window > 0 else 1
        )
        self._last_issue = 0
        self._last_retire = 0
        self._store_issue_by_addr: Dict[int, int] = {}
        self._horizon = 0

    def _issue(self, instr: Instr, mem_addr: Optional[int]) -> None:
        spec = self.table.spec(instr.opclass)
        latency, occupancy = spec.latency, spec.occupancy
        if instr.op is Op.FMADD and not self.has_fma:
            # Machines without fused multiply-add crack FMADD into a
            # multiply feeding an add: longer latency, double occupancy.
            add_spec = self.table.spec(OpClass.FPADD)
            latency = spec.latency + add_spec.latency
            occupancy = spec.occupancy + 1

        # --- dispatch (in-order, fetch- and ROB-bounded) ---
        dispatch = 0
        if len(self._dispatch_ring) == self._dispatch_ring.maxlen:
            dispatch = max(dispatch, self._dispatch_ring[0] + 1)
        if self._dispatch_ring:
            dispatch = max(dispatch, self._dispatch_ring[-1])
        if self.window > 0:
            if len(self._retire_ring) == self._retire_ring.maxlen:
                dispatch = max(dispatch, self._retire_ring[0])
        self._dispatch_ring.append(dispatch)

        # --- issue (data- and resource-driven) ---
        t = dispatch
        for src in instr.reads():
            t = max(t, self._reg_ready.get(src, 0))
        if instr.opclass is OpClass.LOAD and mem_addr is not None:
            t = max(t, self._store_issue_by_addr.get(mem_addr, 0))
        if self.window == 0:
            # Strict in-order issue: cannot overtake older instructions.
            t = max(t, self._last_issue)
        # Book the port whose calendar offers the earliest start.
        best = None
        for p in spec.ports:
            index, start = self._ports[p].probe(t, occupancy)
            if best is None or start < best[2]:
                best = (p, index, start)
        port, index, start = best
        self._ports[port].commit(index, start, occupancy)
        t = start
        self._last_issue = t

        # --- complete / retire ---
        done = t + latency
        dst = instr.writes()
        if dst is not None:
            self._reg_ready[dst] = done
        if instr.opclass is OpClass.STORE and mem_addr is not None:
            self._store_issue_by_addr[mem_addr] = t
        retire = max(self._last_retire, done)
        self._last_retire = retire
        if self.window > 0:
            self._retire_ring.append(retire)
        self._horizon = max(self._horizon, done)

    @staticmethod
    def _effective_address(instr: Instr, state: MachineState) -> Optional[int]:
        if instr.opclass in (OpClass.LOAD, OpClass.STORE):
            return state.iregs[instr.srcs[0]] + instr.imm
        return None

    def simulate(self, program: Program,
                 state: Optional[MachineState] = None,
                 max_steps: int = 10_000_000) -> SimOutcome:
        """Run *program*, feeding every retired instruction to the model."""
        self._reset()
        machine = Machine(state=state, max_steps=max_steps)
        steps = 0
        while not machine.state.halted:
            instr = program[machine.state.pc]
            addr = self._effective_address(instr, machine.state)
            machine.step(program)
            self._issue(instr, addr)
            steps += 1
            if steps > max_steps:
                raise RuntimeError(
                    f"exceeded max_steps={max_steps} in {program.name}"
                )
        return SimOutcome(
            cycles=self._horizon,
            state=machine.state,
            guest_stats=machine.stats,
        )


class HardwareProcessor(Processor):
    """A hardware CPU: spec + port table + simulator policy."""

    def __init__(self, spec: ProcessorSpec, table: PortTable,
                 window: int = 0, has_fma: bool = False) -> None:
        self.spec = spec
        self.table = table
        self.window = window
        self.has_fma = has_fma

    def run_workload(self, workload: GuestWorkload,
                     check: bool = True) -> KernelResult:
        sim = PortSimulator(
            self.table,
            issue_width=self.spec.issue_width,
            window=self.window,
            has_fma=self.has_fma,
        )
        outcome = sim.simulate(
            workload.program, workload.make_state(), max_steps=100_000_000
        )
        if check and not workload.check(outcome.state):
            raise WrongAnswerError(
                f"{self.name} produced wrong results on {workload.name}"
            )
        seconds = outcome.cycles / self.spec.clock_hz
        return KernelResult(
            processor=self.name,
            workload=workload.name,
            cycles=outcome.cycles,
            seconds=seconds,
            nominal_flops=workload.nominal_flops,
            guest_instructions=outcome.guest_stats.instructions,
        )
