"""The processor catalog: every CPU the paper's evaluation touches.

Microarchitectural parameters are first-order models of the real parts
(issue width, effective out-of-order window, FP latencies/occupancies,
hardware vs software square root) calibrated so the *relative* Table 1/3
behaviour matches the paper's surviving prose constraints - see
``repro.perfmodel.calibration`` and EXPERIMENTS.md.

Power figures follow the paper: TM5600 ~6 W at load, Pentium 4 ~75 W
(Section 2.1); node-level figures reproduce the Table 5 power-and-
cooling costs (85 W Alpha/P4 nodes, ~48 W PIII/Athlon nodes, and the
0.4 kW 24-blade chassis billed at 0.6 kW including chassis overhead).
"""

from __future__ import annotations

from typing import Dict

from repro.cms import CmsConfig
from repro.cpus.base import Processor, ProcessorSpec
from repro.cpus.crusoe import CrusoeProcessor
from repro.cpus.portsim import HardwareProcessor
from repro.cpus.ports import make_port_table
from repro.vliw.units import TM5600_LATENCIES

# ---------------------------------------------------------------------------
# Transmeta Crusoe family (software-hardware hybrids)
# ---------------------------------------------------------------------------

TM5600_SPEC = ProcessorSpec(
    name="Transmeta TM5600",
    vendor="Transmeta",
    clock_mhz=633.0,
    cpu_watts=6.0,
    node_watts=17.0,          # blade: CPU + 256 MB + 10 GB disk + 3 NICs
    transistors_millions=36.8,
    needs_active_cooling=False,
    year=2000,
    issue_width=4,            # atoms per molecule
    out_of_order=False,
    memory_gbs=0.8,           # PC133 SDRAM behind the Crusoe northbridge
)

#: CMS 4.2.x as shipped on MetaBlade.
CMS_42X = CmsConfig(
    hot_threshold=8,
    tcache_bytes=1 << 20,
    interpret_cycles_per_instr=20,
    translate_cycles_per_instr=1_000,
    latencies=TM5600_LATENCIES,
)

TM5600_633 = CrusoeProcessor(TM5600_SPEC, CMS_42X)

TM5800_SPEC = ProcessorSpec(
    name="Transmeta TM5800",
    vendor="Transmeta",
    clock_mhz=800.0,
    cpu_watts=3.5,            # paper Section 5: 3.5 W per CPU at 800 MHz
    node_watts=14.0,
    transistors_millions=36.8,
    needs_active_cooling=False,
    year=2001,
    issue_width=4,
    out_of_order=False,
    memory_gbs=0.9,
)

#: CMS 4.3.x on MetaBlade2: better scheduling and shorter FP pipes give
#: the ~25% per-clock improvement the paper reports (3.3 vs 2.1 Gflops
#: at 800 vs 633 MHz).
CMS_43X = CmsConfig(
    hot_threshold=8,
    tcache_bytes=1 << 21,
    interpret_cycles_per_instr=16,
    translate_cycles_per_instr=800,
    latencies=TM5600_LATENCIES.replace(
        fpadd=3, fpmul=2, fpdiv=24, fpsqrt=32, load=2
    ),
)

TM5800_800 = CrusoeProcessor(TM5800_SPEC, CMS_43X)

# ---------------------------------------------------------------------------
# Hardware superscalars
# ---------------------------------------------------------------------------

PENTIUM_III_500 = HardwareProcessor(
    ProcessorSpec(
        name="Intel Pentium III",
        vendor="Intel",
        clock_mhz=500.0,
        cpu_watts=28.0,
        node_watts=48.0,
        transistors_millions=9.5,
        needs_active_cooling=True,
        year=1999,
        issue_width=3,
        out_of_order=True,
        memory_gbs=1.0,
    ),
    make_port_table(
        fadd_latency=3,
        fmul_latency=5,
        fmul_occupancy=2,     # P6 multiplies at one per two cycles
        fdiv_latency=32,
        fdiv_occupancy=32,    # unpipelined, shares the multiply port
        fsqrt_latency=36,
        fsqrt_occupancy=36,
        load_latency=3,
    ),
    window=32,
    has_fma=False,
)

ALPHA_EV56_533 = HardwareProcessor(
    ProcessorSpec(
        name="Compaq Alpha EV56",
        vendor="Compaq/DEC",
        clock_mhz=533.0,
        cpu_watts=48.0,
        node_watts=85.0,
        transistors_millions=9.7,
        needs_active_cooling=True,
        year=1996,
        issue_width=4,
        out_of_order=False,   # the 21164 core is strictly in-order
        memory_gbs=1.0,
    ),
    make_port_table(
        fadd_latency=4,
        fmul_latency=4,
        fdiv_latency=28,
        fdiv_occupancy=28,
        # No hardware square root on the 21164: libm computes it in
        # software, the very situation Karp's algorithm targets.
        fsqrt_latency=55,
        fsqrt_occupancy=55,
        load_latency=2,
    ),
    # The 21164 issues in order, but the paper notes the benchmark was
    # optimised per architecture: a small effective window models the
    # compiler's static software pipelining.
    window=24,
    has_fma=False,
)

POWER3_375 = HardwareProcessor(
    ProcessorSpec(
        name="IBM Power3",
        vendor="IBM",
        clock_mhz=375.0,
        cpu_watts=40.0,
        node_watts=150.0,
        transistors_millions=15.0,
        needs_active_cooling=True,
        year=1998,
        issue_width=4,
        out_of_order=True,
        memory_gbs=1.6,
    ),
    make_port_table(
        fadd_ports=("fpu0", "fpu1"),
        fadd_latency=3,
        fmul_ports=("fpu0", "fpu1"),
        fmul_latency=3,
        fdiv_ports=("fpu0", "fpu1"),
        fdiv_latency=14,
        fdiv_occupancy=14,
        fsqrt_latency=18,
        fsqrt_occupancy=18,
        load_ports=("mem0", "mem1"),
        load_latency=3,
    ),
    window=96,                # effective: ROB + rename + compiler pipelining
    has_fma=True,             # dual FMA pipes are Power3's signature
)

ATHLON_MP_1200 = HardwareProcessor(
    ProcessorSpec(
        name="AMD Athlon MP",
        vendor="AMD",
        clock_mhz=1200.0,
        cpu_watts=66.0,
        node_watts=48.0,      # as costed in the paper's Table 5
        transistors_millions=37.5,
        needs_active_cooling=True,
        year=2001,
        issue_width=3,
        out_of_order=True,
        memory_gbs=2.1,   # PC2100 DDR
    ),
    make_port_table(
        fadd_latency=4,
        fmul_latency=4,
        fdiv_latency=19,
        fdiv_occupancy=11,    # K7 divider is partially pipelined
        fsqrt_latency=21,
        fsqrt_occupancy=13,
        load_ports=("mem0", "mem1"),
        load_latency=3,
    ),
    window=48,
    has_fma=False,
)

PENTIUM_4_1300 = HardwareProcessor(
    ProcessorSpec(
        name="Intel Pentium 4",
        vendor="Intel",
        clock_mhz=1300.0,
        cpu_watts=75.0,       # paper Section 2.1: ~75 W at load
        node_watts=85.0,      # paper Section 4.1: complete node
        transistors_millions=42.0,
        needs_active_cooling=True,
        year=2001,
        issue_width=3,
        out_of_order=True,
        memory_gbs=3.2,   # dual-channel RDRAM
    ),
    make_port_table(
        fadd_latency=5,
        fmul_latency=7,
        fmul_occupancy=2,
        fdiv_latency=43,
        fdiv_occupancy=43,
        fsqrt_latency=43,
        fsqrt_occupancy=43,
        load_latency=4,
    ),
    window=100,
    has_fma=False,
)

PENTIUM_PRO_200 = HardwareProcessor(
    ProcessorSpec(
        name="Intel Pentium Pro",
        vendor="Intel",
        clock_mhz=200.0,
        cpu_watts=35.0,
        node_watts=40.0,
        transistors_millions=5.5,
        needs_active_cooling=True,
        year=1996,
        issue_width=3,
        out_of_order=True,
        memory_gbs=0.5,
    ),
    make_port_table(
        fadd_latency=3,
        fmul_latency=5,
        fmul_occupancy=2,
        fdiv_latency=32,
        fdiv_occupancy=32,
        fsqrt_latency=36,
        fsqrt_occupancy=36,
        load_latency=3,
    ),
    window=40,
    has_fma=False,
)

#: Name-indexed catalog of every processor model.
CPU_CATALOG: Dict[str, Processor] = {
    cpu.name: cpu
    for cpu in (
        TM5600_633,
        TM5800_800,
        PENTIUM_III_500,
        ALPHA_EV56_533,
        POWER3_375,
        ATHLON_MP_1200,
        PENTIUM_4_1300,
        PENTIUM_PRO_200,
    )
}

#: The five CPUs of Table 1 in the paper's row order.
TABLE1_CPUS = (
    PENTIUM_III_500,
    ALPHA_EV56_533,
    TM5600_633,
    POWER3_375,
    ATHLON_MP_1200,
)

#: The four CPUs of Table 3 in the paper's column order.
TABLE3_CPUS = (
    ATHLON_MP_1200,
    PENTIUM_III_500,
    TM5600_633,
    POWER3_375,
)


def cpu_by_name(name: str) -> Processor:
    """Look up a processor model by its display name."""
    try:
        return CPU_CATALOG[name]
    except KeyError:
        known = ", ".join(sorted(CPU_CATALOG))
        raise KeyError(f"unknown CPU {name!r}; known: {known}") from None
