"""Power, thermal and reliability models.

Encodes the physics-of-failure argument at the heart of the paper
(Section 2.1): "the failure rate of a component doubles for every
10 degrees-C increase in temperature" (the classic Arrhenius rule of
thumb reported to the authors by two leading vendors).  Hot, actively
cooled CPUs therefore fail more, driving the system-administration and
downtime columns of the TCO table; the 6 W Transmeta needs no active
cooling and runs reliably in a dusty 80 degrees-F room.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.cpus.base import ProcessorSpec

#: Additional watts of machine-room cooling per watt dissipated by
#: actively cooled equipment (paper Section 4.1: "half a watt per every
#: watt dissipated").
COOLING_OVERHEAD_PER_WATT = 0.5


@dataclass(frozen=True)
class PowerModel:
    """Electrical model of one compute node."""

    node_watts: float
    needs_active_cooling: bool

    @classmethod
    def for_spec(cls, spec: ProcessorSpec) -> "PowerModel":
        return cls(
            node_watts=spec.node_watts,
            needs_active_cooling=spec.needs_active_cooling,
        )

    @property
    def cooling_watts(self) -> float:
        if not self.needs_active_cooling:
            return 0.0
        return self.node_watts * COOLING_OVERHEAD_PER_WATT

    @property
    def total_watts(self) -> float:
        """Wall power including the cooling burden."""
        return self.node_watts + self.cooling_watts

    def energy_kwh(self, hours: float) -> float:
        return self.total_watts * hours / 1000.0

    def energy_joules(self, seconds: float) -> float:
        """Wall energy over *seconds* at load (virtual-time currency:
        the batch scheduler bills job energy straight off rank clocks)."""
        return self.total_watts * seconds

    def energy_cost(self, hours: float, dollars_per_kwh: float = 0.10) -> float:
        return self.energy_kwh(hours) * dollars_per_kwh


@dataclass(frozen=True)
class ThermalModel:
    """Maps dissipated power to component operating temperature.

    A simple lumped thermal-resistance model: temperature rises linearly
    with dissipated power above ambient; active cooling lowers the
    effective thermal resistance.
    """

    ambient_celsius: float = 24.0            # ~75 F office
    c_per_watt_cooled: float = 0.35
    c_per_watt_passive: float = 0.9

    def component_temperature(self, watts: float,
                              actively_cooled: bool) -> float:
        r = self.c_per_watt_cooled if actively_cooled else self.c_per_watt_passive
        return self.ambient_celsius + r * watts


@dataclass(frozen=True)
class FailureModel:
    """Arrhenius-style failure-rate model.

    ``base_rate_per_year`` is the annual failure probability of a node
    at ``base_temperature``; the rate doubles every
    ``doubling_celsius`` degrees above it.
    """

    base_rate_per_year: float = 0.12
    base_temperature: float = 40.0
    doubling_celsius: float = 10.0

    def rate_at(self, celsius: float) -> float:
        """Annual failure rate of a component at *celsius*."""
        exponent = (celsius - self.base_temperature) / self.doubling_celsius
        return self.base_rate_per_year * math.pow(2.0, exponent)

    def node_rate(self, spec: ProcessorSpec,
                  thermal: ThermalModel = ThermalModel()) -> float:
        temp = thermal.component_temperature(
            spec.cpu_watts, spec.needs_active_cooling
        )
        return self.rate_at(temp)

    def expected_failures(self, spec: ProcessorSpec, nodes: int,
                          years: float,
                          thermal: ThermalModel = ThermalModel()) -> float:
        return self.node_rate(spec, thermal) * nodes * years

    def mtbf_hours(self, spec: ProcessorSpec, nodes: int,
                   thermal: ThermalModel = ThermalModel()) -> float:
        """Mean time between failures for a cluster of *nodes*."""
        rate = self.node_rate(spec, thermal) * nodes
        if rate <= 0:
            return math.inf
        return 8760.0 / rate
