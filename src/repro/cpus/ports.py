"""Execution-port descriptions for the hardware CPU models.

Each operation class maps to a :class:`PortSpec`: which port(s) can
execute it, how long the result takes (latency), and how long the port
stays busy (occupancy - the reciprocal throughput; equal to the full
latency for unpipelined iterative units like dividers).

Opcode classes without an entry fall back to a single-cycle ALU spec.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Mapping, Tuple

from repro.isa.instructions import OpClass


@dataclass(frozen=True)
class PortSpec:
    """Execution resource requirements of one operation class."""

    ports: Tuple[str, ...]
    latency: int
    occupancy: int = 1

    def __post_init__(self) -> None:
        if not self.ports:
            raise ValueError("PortSpec needs at least one port")
        if self.latency < 1 or self.occupancy < 1:
            raise ValueError("latency and occupancy must be >= 1")


@dataclass(frozen=True)
class PortTable:
    """Per-class port specs plus the machine's port inventory."""

    specs: Mapping[OpClass, PortSpec]

    def spec(self, opclass: OpClass) -> PortSpec:
        return self.specs[opclass]

    def port_names(self) -> Tuple[str, ...]:
        names = []
        for spec in self.specs.values():
            for port in spec.ports:
                if port not in names:
                    names.append(port)
        return tuple(names)

    def replace(self, **overrides: PortSpec) -> "PortTable":
        """Copy with some class specs overridden by class name."""
        merged: Dict[OpClass, PortSpec] = dict(self.specs)
        for name, spec in overrides.items():
            merged[OpClass[name.upper()]] = spec
        return PortTable(specs=merged)


def make_port_table(
    *,
    ialu_ports: Tuple[str, ...] = ("alu0", "alu1"),
    ialu_latency: int = 1,
    imul_latency: int = 4,
    fadd_ports: Tuple[str, ...] = ("fadd",),
    fadd_latency: int = 3,
    fmul_ports: Tuple[str, ...] = ("fmul",),
    fmul_latency: int = 4,
    fmul_occupancy: int = 1,
    fdiv_ports: Tuple[str, ...] = ("fmul",),
    fdiv_latency: int = 30,
    fdiv_occupancy: int = 30,
    fsqrt_latency: int = 35,
    fsqrt_occupancy: int = 35,
    load_ports: Tuple[str, ...] = ("mem0",),
    load_latency: int = 3,
    store_ports: Tuple[str, ...] = ("st0",),
    branch_latency: int = 1,
) -> PortTable:
    """Build a port table from the handful of parameters that matter.

    Defaults describe a generic late-90s superscalar; the catalog tunes
    them per CPU.  Square root shares the divide unit (fdiv ports); CPUs
    without a hardware square root (e.g. Alpha EV56) model the software
    sequence with a very large fsqrt latency/occupancy.
    """
    return PortTable(
        specs={
            OpClass.IALU: PortSpec(ialu_ports, ialu_latency),
            OpClass.IMUL: PortSpec((ialu_ports[0],), imul_latency),
            OpClass.FPADD: PortSpec(fadd_ports, fadd_latency),
            OpClass.FPMUL: PortSpec(
                fmul_ports, fmul_latency, fmul_occupancy
            ),
            OpClass.FPDIV: PortSpec(
                fdiv_ports, fdiv_latency, fdiv_occupancy
            ),
            OpClass.FPSQRT: PortSpec(
                fdiv_ports, fsqrt_latency, fsqrt_occupancy
            ),
            OpClass.LOAD: PortSpec(load_ports, load_latency),
            OpClass.STORE: PortSpec(store_ports, 1),
            OpClass.BRANCH: PortSpec(("br",), branch_latency),
            OpClass.NOP: PortSpec((ialu_ports[0],), 1),
        }
    )
