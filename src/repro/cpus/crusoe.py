"""The Transmeta Crusoe as a :class:`Processor`: CMS + VLIW end to end.

Unlike the hardware models, the Crusoe's timing comes from actually
morphing the guest code: interpreting cold blocks, translating hot ones,
and executing cached molecule schedules on the in-order VLIW engine.
The paper's observation that the Transmeta "was not [optimised] due to
the lack of knowledge on the internal details" corresponds to our
translator seeing one basic block at a time with no loop unrolling.
"""

from __future__ import annotations

from typing import Optional

from repro.cms import CmsConfig, CodeMorphingSoftware
from repro.cpus.base import (
    KernelResult,
    Processor,
    ProcessorSpec,
    WrongAnswerError,
)
from repro.isa.programs import GuestWorkload


class CrusoeProcessor(Processor):
    """A software-hardware hybrid CPU (TM5600/TM5800 family)."""

    def __init__(self, spec: ProcessorSpec,
                 cms_config: Optional[CmsConfig] = None) -> None:
        self.spec = spec
        self.cms_config = cms_config or CmsConfig()

    def run_workload(self, workload: GuestWorkload,
                     check: bool = True) -> KernelResult:
        cms = CodeMorphingSoftware(self.cms_config)
        result = cms.run(
            workload.program, workload.make_state(), max_steps=100_000_000
        )
        if check and not workload.check(result.state):
            raise WrongAnswerError(
                f"{self.name} produced wrong results on {workload.name}"
            )
        seconds = result.cycles / self.spec.clock_hz
        return KernelResult(
            processor=self.name,
            workload=workload.name,
            cycles=result.cycles,
            seconds=seconds,
            nominal_flops=workload.nominal_flops,
            guest_instructions=result.guest_stats.instructions,
        )

    def morph(self, workload: GuestWorkload):
        """Run and return the full CMS result (for ablation studies)."""
        cms = CodeMorphingSoftware(self.cms_config)
        return cms.run(
            workload.program, workload.make_state(), max_steps=100_000_000
        )
