"""Processor models: hardware superscalars and the software-morphed Crusoe.

The paper's Table 1/3 comparison set:

- 500-MHz Intel Pentium III, 533-MHz Compaq Alpha EV56, 375-MHz IBM
  Power3, 1200-MHz AMD Athlon MP (plus the Pentium 4 and Pentium Pro for
  the TCO and treecode-history studies) - modelled by a trace-driven
  port/ROB simulator (:mod:`repro.cpus.portsim`);
- the 633-MHz Transmeta TM5600 and 800-MHz TM5800 - modelled by running
  guest code through the real CMS + VLIW pipeline (:mod:`repro.cpus.crusoe`).

All models share the :class:`~repro.cpus.base.Processor` interface so the
benchmark harness treats them uniformly.
"""

from repro.cpus.base import KernelResult, Processor, ProcessorSpec
from repro.cpus.ports import PortSpec, PortTable
from repro.cpus.portsim import HardwareProcessor, PortSimulator
from repro.cpus.crusoe import CrusoeProcessor
from repro.cpus.catalog import (
    ALPHA_EV56_533,
    ATHLON_MP_1200,
    CPU_CATALOG,
    PENTIUM_4_1300,
    PENTIUM_III_500,
    PENTIUM_PRO_200,
    POWER3_375,
    TM5600_633,
    TM5800_800,
    cpu_by_name,
)
from repro.cpus.power import FailureModel, PowerModel, ThermalModel

__all__ = [
    "ALPHA_EV56_533",
    "ATHLON_MP_1200",
    "CPU_CATALOG",
    "CrusoeProcessor",
    "FailureModel",
    "HardwareProcessor",
    "KernelResult",
    "PENTIUM_4_1300",
    "PENTIUM_III_500",
    "PENTIUM_PRO_200",
    "POWER3_375",
    "PortSimulator",
    "PortSpec",
    "PortTable",
    "PowerModel",
    "Processor",
    "ProcessorSpec",
    "TM5600_633",
    "TM5800_800",
    "ThermalModel",
    "cpu_by_name",
]
