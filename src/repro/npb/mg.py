"""MG - multigrid solution of the 3-D scalar Poisson equation.

V-cycles of the NPB structure: smooth (weighted Jacobi on the 7-point
Laplacian), restrict the residual (full weighting), recurse to a 2x
coarser grid, prolong (trilinear) and correct, then post-smooth.
Periodic boundaries, right-hand side of +1/-1 point charges like the
original's generator.

Verification: each V-cycle must reduce the residual L2 norm; the final
norm must be well below the initial one.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.npb.classes import ProblemClass, problem_class
from repro.npb.common import KernelOutcome, NpbRandom, OpMix

#: MG is a classic bandwidth-bound stencil code.
MG_MIX = OpMix(fp=0.45, mem=0.45, int_=0.10)


def laplacian(u: np.ndarray, h: float) -> np.ndarray:
    """7-point periodic Laplacian."""
    out = -6.0 * u
    for axis in range(3):
        out += np.roll(u, 1, axis) + np.roll(u, -1, axis)
    return out / (h * h)


def residual(u: np.ndarray, f: np.ndarray, h: float) -> np.ndarray:
    return f - laplacian(u, h)


def smooth(u: np.ndarray, f: np.ndarray, h: float,
           sweeps: int = 2, weight: float = 0.8) -> np.ndarray:
    """Weighted-Jacobi smoothing.

    For r = f - lap(u), Jacobi on the (positive) Laplacian updates
    ``u <- u - w * (h^2/6) * r`` (the diagonal of lap is -6/h^2).
    """
    for _ in range(sweeps):
        r = residual(u, f, h)
        u = u - weight * (h * h / 6.0) * r
    return u


def restrict(r: np.ndarray) -> np.ndarray:
    """Full-weighting restriction to the 2x coarser periodic grid."""
    # Average each 2x2x2 cell (the simplest full-weighting variant).
    return 0.125 * (
        r[0::2, 0::2, 0::2] + r[1::2, 0::2, 0::2]
        + r[0::2, 1::2, 0::2] + r[0::2, 0::2, 1::2]
        + r[1::2, 1::2, 0::2] + r[1::2, 0::2, 1::2]
        + r[0::2, 1::2, 1::2] + r[1::2, 1::2, 1::2]
    )


def prolong(e: np.ndarray) -> np.ndarray:
    """Trilinear-ish prolongation to the 2x finer periodic grid."""
    n = e.shape[0]
    out = np.zeros((2 * n,) * 3)
    out[0::2, 0::2, 0::2] = e
    # Interpolate along each axis in turn (periodic midpoints).
    out[1::2, 0::2, 0::2] = 0.5 * (e + np.roll(e, -1, 0))
    out[:, 1::2, 0::2] = 0.5 * (
        out[:, 0::2, 0::2] + np.roll(out[:, 0::2, 0::2], -1, 1)
    )
    out[:, :, 1::2] = 0.5 * (
        out[:, :, 0::2] + np.roll(out[:, :, 0::2], -1, 2)
    )
    return out


def v_cycle(u: np.ndarray, f: np.ndarray, h: float,
            min_size: int = 4) -> np.ndarray:
    u = smooth(u, f, h)
    if u.shape[0] > min_size:
        r = residual(u, f, h)
        r_coarse = restrict(r)
        e_coarse = v_cycle(
            np.zeros_like(r_coarse), r_coarse, 2.0 * h, min_size
        )
        u = u + prolong(e_coarse)
    u = smooth(u, f, h)
    return u


def make_rhs(n: int, charges: int = 20) -> np.ndarray:
    """+1/-1 point charges at NPB-random sites, zero-mean overall."""
    rng = NpbRandom()
    coords = (rng.batch(3 * 2 * charges) * n).astype(int).reshape(-1, 3)
    f = np.zeros((n, n, n))
    for i, (x, y, z) in enumerate(coords):
        f[x % n, y % n, z % n] += 1.0 if i % 2 == 0 else -1.0
    f -= f.mean()       # solvability on the periodic domain
    return f


def run_mg(problem: Optional[ProblemClass] = None,
           letter: str = "S") -> KernelOutcome:
    pc = problem if problem is not None else problem_class("MG", letter)
    n = pc.size("n")
    cycles = pc.size("cycles")
    if n & (n - 1):
        raise ValueError("MG grid size must be a power of two")

    h = 1.0 / n
    f = make_rhs(n)
    u = np.zeros_like(f)
    norms = [float(np.linalg.norm(residual(u, f, h)))]
    for _ in range(cycles):
        u = v_cycle(u, f, h)
        u -= u.mean()   # fix the periodic null space
        norms.append(float(np.linalg.norm(residual(u, f, h))))

    ok = all(b < a for a, b in zip(norms, norms[1:]))
    ok &= norms[-1] < 0.05 * norms[0]

    # Ops per fine-grid point per V-cycle: ~4 smoothing sweeps x 9 +
    # residual/transfer ~ 20; coarser levels add the 8/7 geometric tail.
    per_cycle = 56.0 * (8.0 / 7.0) * n ** 3
    operations = per_cycle * cycles

    return KernelOutcome(
        name="MG",
        problem_class=pc.letter,
        operations=operations,
        mix=MG_MIX,
        verified=bool(ok),
        checksum=norms[-1],
        details={
            "initial_residual": norms[0],
            "final_residual": norms[-1],
            "reduction": norms[-1] / norms[0],
        },
    )
