"""CG - conjugate gradient eigenvalue estimation.

The NPB CG kernel estimates the largest eigenvalue of a random sparse
symmetric positive-definite matrix via inverse power iteration, solving
each shifted system with conjugate gradients.  The matrix follows the
suite's recipe in spirit: a few random nonzeros per row, symmetrised,
with a dominant diagonal shift.

(Not part of the paper's Table 3 - included for suite completeness and
as an extra data point for the perfmodel projection.)

Verification: CG residuals must shrink monotonically-ish and the final
solve residual must be small; on tiny problems the tests cross-check
against a dense solve.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.npb.classes import ProblemClass, problem_class
from repro.npb.common import KernelOutcome, NpbRandom, OpMix

#: CG: sparse mat-vec is latency/bandwidth heavy, with real FP work.
CG_MIX = OpMix(fp=0.40, mem=0.45, int_=0.15)


def make_sparse_spd(n: int, nonzeros_per_row: int,
                    shift: float = 10.0) -> Tuple[np.ndarray, ...]:
    """Random sparse SPD matrix in COO-ish arrays (rows, cols, vals).

    Symmetrised off-diagonal pattern plus a diagonal shift scaled by
    the row sums to guarantee strict diagonal dominance (hence SPD).
    """
    rng = NpbRandom()
    u = rng.batch(2 * n * nonzeros_per_row)
    cols = (u[0::2] * n).astype(np.int64)
    vals = 2.0 * u[1::2] - 1.0
    rows = np.repeat(np.arange(n), nonzeros_per_row)
    # Symmetrise: A := (B + B^T) / 2 realised by duplicating entries.
    all_rows = np.concatenate([rows, cols])
    all_cols = np.concatenate([cols, rows])
    all_vals = np.concatenate([vals, vals]) * 0.5
    off_diag = all_rows != all_cols
    all_rows, all_cols, all_vals = (
        all_rows[off_diag], all_cols[off_diag], all_vals[off_diag]
    )
    # Diagonal: strictly dominate the absolute row sums.
    row_sums = np.bincount(all_rows, weights=np.abs(all_vals), minlength=n)
    diag = row_sums + shift
    rows_f = np.concatenate([all_rows, np.arange(n)])
    cols_f = np.concatenate([all_cols, np.arange(n)])
    vals_f = np.concatenate([all_vals, diag])
    return rows_f, cols_f, vals_f


def spmv(rows: np.ndarray, cols: np.ndarray, vals: np.ndarray,
         x: np.ndarray) -> np.ndarray:
    """y = A x for the COO triple (bincount-based scatter-add)."""
    return np.bincount(
        rows, weights=vals * x[cols], minlength=len(x)
    )


def conjugate_gradient(rows, cols, vals, b: np.ndarray,
                       iters: int) -> Tuple[np.ndarray, float]:
    """*iters* CG steps from x = 0; returns (x, final residual norm)."""
    x = np.zeros_like(b)
    r = b.copy()
    p = r.copy()
    rho = float(r @ r)
    for _ in range(iters):
        q = spmv(rows, cols, vals, p)
        alpha = rho / float(p @ q)
        x = x + alpha * p
        r = r - alpha * q
        rho_new = float(r @ r)
        beta = rho_new / rho
        p = r + beta * p
        rho = rho_new
    return x, float(np.sqrt(rho))


def run_cg(problem: Optional[ProblemClass] = None,
           letter: str = "S") -> KernelOutcome:
    pc = problem if problem is not None else problem_class("CG", letter)
    n = pc.size("n")
    nnz_row = pc.size("nonzeros")
    iters = pc.size("iters")

    rows, cols, vals = make_sparse_spd(n, nnz_row)
    rng = NpbRandom(seed=271_828_183)
    b = rng.batch(n)
    b0_norm = float(np.linalg.norm(b))
    x, res = conjugate_gradient(rows, cols, vals, b, iters)

    # Power-iteration-flavoured zeta estimate, like the suite reports.
    zeta = float(b @ x) / max(float(x @ x), 1e-300)

    ok = res < 1e-6 * b0_norm or res < 1e-8
    # A must actually be SPD-ish: check x solves the system decently.
    check = np.linalg.norm(spmv(rows, cols, vals, x) - b)
    ok &= check < 1e-5 * b0_norm or check < 1e-7

    nnz = len(vals)
    # Ops per iteration: spmv 2*nnz + 10n vector work.
    operations = float(iters) * (2.0 * nnz + 10.0 * n)

    return KernelOutcome(
        name="CG",
        problem_class=pc.letter,
        operations=operations,
        mix=CG_MIX,
        verified=bool(ok),
        checksum=zeta,
        details={
            "n": float(n),
            "nnz": float(nnz),
            "residual": res,
            "zeta": zeta,
        },
    )
