"""Problem classes for the NPB work-alikes.

NPB defines classes S (sample), W (workstation), A, B, ... per kernel.
Running true Class W through a Python interpreter is impractical for
the grid codes, so each class here carries two faces:

- ``sizes``: the dimensions actually executed (scaled to finish in
  seconds on the host while exercising the full algorithm);
- ``nominal_ops``: the operation count of the *real* class-W problem,
  used for the Table 3 Mops projection (the kernels' measured op counts
  scale-check against these in the tests).

A 'T' (tiny) class exists purely for fast unit tests.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Mapping, Tuple


@dataclass(frozen=True)
class ProblemClass:
    """One kernel's parameterisation at one class letter."""

    kernel: str
    letter: str
    sizes: Mapping[str, int]
    #: Operations of the genuine NPB problem at this class (flop-count
    #: scale; approximations documented in EXPERIMENTS.md).
    nominal_ops: float

    def size(self, key: str) -> int:
        return self.sizes[key]


def _pc(kernel: str, letter: str, nominal_ops: float,
        **sizes: int) -> ProblemClass:
    return ProblemClass(
        kernel=kernel, letter=letter, sizes=dict(sizes),
        nominal_ops=nominal_ops,
    )


#: class -> kernel -> ProblemClass
CLASSES: Dict[str, Dict[str, ProblemClass]] = {
    "T": {
        "EP": _pc("EP", "T", 2.0e5, pairs=1 << 12),
        "IS": _pc("IS", "T", 1.0e5, keys=1 << 12, max_key=1 << 9, iters=3),
        "MG": _pc("MG", "T", 5.0e5, n=16, cycles=2),
        "CG": _pc("CG", "T", 4.0e5, n=256, nonzeros=8, iters=8),
        "BT": _pc("BT", "T", 8.0e5, n=8, iters=2),
        "SP": _pc("SP", "T", 6.0e5, n=8, iters=2),
        "LU": _pc("LU", "T", 7.0e5, n=8, iters=2),
    },
    "S": {
        "EP": _pc("EP", "S", 8.6e8, pairs=1 << 20),
        "IS": _pc("IS", "S", 5.2e7, keys=1 << 16, max_key=1 << 11, iters=10),
        "MG": _pc("MG", "S", 4.7e8, n=32, cycles=4),
        "CG": _pc("CG", "S", 6.9e7, n=1400, nonzeros=7, iters=15),
        "BT": _pc("BT", "S", 1.7e9, n=12, iters=12),
        "SP": _pc("SP", "S", 8.5e8, n=12, iters=20),
        "LU": _pc("LU", "S", 1.3e9, n=12, iters=20),
    },
    "W": {
        "EP": _pc("EP", "W", 2.7e10, pairs=1 << 22),
        "IS": _pc("IS", "W", 8.0e8, keys=1 << 18, max_key=1 << 13, iters=10),
        "MG": _pc("MG", "W", 1.3e10, n=64, cycles=4),
        "CG": _pc("CG", "W", 1.9e9, n=7000, nonzeros=8, iters=15),
        "BT": _pc("BT", "W", 7.8e10, n=24, iters=10),
        "SP": _pc("SP", "W", 2.7e10, n=24, iters=12),
        "LU": _pc("LU", "W", 4.1e10, n=24, iters=12),
    },
}


def problem_class(kernel: str, letter: str) -> ProblemClass:
    """Look up a kernel's problem class."""
    try:
        return CLASSES[letter.upper()][kernel.upper()]
    except KeyError:
        raise KeyError(
            f"no class {letter!r} for kernel {kernel!r}"
        ) from None
