"""NAS-style parallel benchmark kernels (NPB 2.3 work-alikes).

The paper's Table 3 reports single-processor Class-W Mops for six NPB
2.3 codes.  This package implements working NumPy versions of each:

- **EP** - embarrassingly parallel: NPB's 48-bit linear congruential
  generator, Marsaglia polar Gaussian deviates, annulus tallies;
- **IS** - integer sort: bucket ranking of LCG-generated keys;
- **MG** - multigrid V-cycles on the 3-D scalar Poisson equation;
- **CG** - conjugate gradient eigenvalue estimation on a random sparse
  SPD matrix (not in the paper's table; included for suite completeness);
- **BT** - ADI solver using 5x5 block-tridiagonal line solves;
- **SP** - ADI solver using scalar pentadiagonal line solves;
- **LU** - SSOR lower/upper sweeps on the same 5-component system.

Each kernel verifies its own numerics (residual reduction, permutation
checks, statistical moments) and reports an operation count; Mops
ratings on a given processor come from :mod:`repro.perfmodel`.
"""

from repro.npb.common import KernelOutcome, OpMix, VerificationError
from repro.npb.classes import CLASSES, ProblemClass, problem_class
from repro.npb.ep import run_ep
from repro.npb.is_ import run_is
from repro.npb.mg import run_mg
from repro.npb.cg import run_cg
from repro.npb.bt import run_bt
from repro.npb.sp import run_sp
from repro.npb.lu import run_lu
from repro.npb.suite import NPB_KERNELS, TABLE3_KERNELS, run_kernel, run_suite

__all__ = [
    "CLASSES",
    "KernelOutcome",
    "NPB_KERNELS",
    "OpMix",
    "ProblemClass",
    "TABLE3_KERNELS",
    "VerificationError",
    "problem_class",
    "run_bt",
    "run_cg",
    "run_ep",
    "run_is",
    "run_kernel",
    "run_lu",
    "run_mg",
    "run_sp",
    "run_suite",
]
