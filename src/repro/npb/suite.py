"""Suite-level entry points for the NPB work-alikes."""

from __future__ import annotations

from typing import Callable, Dict, List, Tuple

from repro.npb.bt import run_bt
from repro.npb.cg import run_cg
from repro.npb.classes import problem_class
from repro.npb.common import KernelOutcome
from repro.npb.ep import run_ep
from repro.npb.is_ import run_is
from repro.npb.lu import run_lu
from repro.npb.mg import run_mg
from repro.npb.sp import run_sp

#: All kernels by name.
NPB_KERNELS: Dict[str, Callable[..., KernelOutcome]] = {
    "EP": run_ep,
    "IS": run_is,
    "MG": run_mg,
    "CG": run_cg,
    "BT": run_bt,
    "SP": run_sp,
    "LU": run_lu,
}

#: The paper's Table 3 rows, in row order.
TABLE3_KERNELS: Tuple[str, ...] = ("BT", "SP", "LU", "MG", "EP", "IS")


def run_kernel(name: str, letter: str = "S") -> KernelOutcome:
    """Run one kernel at one class, verified."""
    try:
        fn = NPB_KERNELS[name.upper()]
    except KeyError:
        known = ", ".join(NPB_KERNELS)
        raise KeyError(f"unknown kernel {name!r}; known: {known}") from None
    return fn(letter=letter).require_verified()


def run_suite(letter: str = "S",
              kernels: Tuple[str, ...] = TABLE3_KERNELS) -> List[KernelOutcome]:
    """Run a set of kernels at one class, all verified."""
    return [run_kernel(name, letter) for name in kernels]
