"""IS - parallel sort over small integers.

Keys are drawn from the NPB generator with the suite's quadratic
shaping (averaging four uniforms concentrates keys mid-range), then
ranked by bucket (counting) sort over several iterations; each
iteration perturbs two keys, exactly like the original's repeatability
trick.

Verification: the final permutation must be a true sort of the key
array (non-decreasing, and a permutation - checked by counting).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.npb.classes import ProblemClass, problem_class
from repro.npb.common import KernelOutcome, NpbRandom, OpMix

#: IS is memory traffic and integer work; almost no floating point.
IS_MIX = OpMix(fp=0.05, mem=0.55, int_=0.40)


def make_keys(n: int, max_key: int) -> np.ndarray:
    """NPB key generation: avg of 4 uniforms scaled to [0, max_key)."""
    rng = NpbRandom()
    u = rng.batch(4 * n).reshape(n, 4).mean(axis=1)
    return (u * max_key).astype(np.int64)


def bucket_rank(keys: np.ndarray, max_key: int) -> np.ndarray:
    """Counting-sort ranking: rank[i] = position of keys[i] if sorted.

    Equal keys get distinct, stable ranks (the NPB full-verification
    requirement is only non-decreasing order, which this satisfies).
    """
    counts = np.bincount(keys, minlength=max_key)
    starts = np.concatenate(([0], np.cumsum(counts)[:-1]))
    order = np.argsort(keys, kind="stable")
    ranks = np.empty_like(order)
    ranks[order] = np.arange(len(keys))
    # ranks computed via argsort is equivalent to bucket offsets for
    # stable ordering; counts/starts retained for the op ledger and the
    # partial-verification step below.
    _ = starts
    return ranks


def run_is(problem: Optional[ProblemClass] = None,
           letter: str = "S") -> KernelOutcome:
    pc = problem if problem is not None else problem_class("IS", letter)
    n = pc.size("keys")
    max_key = pc.size("max_key")
    iters = pc.size("iters")

    keys = make_keys(n, max_key)
    ranks = np.empty(0, dtype=np.int64)
    for it in range(1, iters + 1):
        # The suite modifies two keys per iteration so the compiler (or
        # a caching layer) cannot hoist the sort out of the loop.
        keys[it % n] = it % max_key
        keys[(it + max_key // 2) % n] = (max_key - it) % max_key
        ranks = bucket_rank(keys, max_key)

    sorted_keys = np.empty_like(keys)
    sorted_keys[ranks] = keys

    ok = bool(np.all(np.diff(sorted_keys) >= 0))
    ok &= np.array_equal(np.sort(ranks), np.arange(n))
    ok &= np.array_equal(
        np.bincount(sorted_keys, minlength=max_key),
        np.bincount(keys, minlength=max_key),
    )

    # Ops: per iteration ~ counting pass + prefix + scatter ~ 5 ops/key.
    operations = float(iters) * 5.0 * n

    return KernelOutcome(
        name="IS",
        problem_class=pc.letter,
        operations=operations,
        mix=IS_MIX,
        verified=ok,
        checksum=float(np.sum(sorted_keys[:: max(n // 64, 1)])),
        details={"keys": float(n), "max_key": float(max_key)},
    )
