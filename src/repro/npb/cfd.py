"""The shared synthetic CFD system behind BT, SP and LU.

The three NPB application benchmarks solve the *same* discretised
Navier-Stokes-like equations with three different implicit solvers:
BT factorises into block-tridiagonal line solves, SP diagonalises the
inter-equation coupling into scalar (penta)diagonal line solves, and LU
runs SSOR wavefront sweeps.  We mirror that structure exactly on a
model problem:

    A u = f,   A = I (x) I + c * C (x) (-Laplacian_3D)

with u a 5-component field on an n^3 Dirichlet grid and C a fixed
symmetric positive-definite 5x5 coupling matrix.  Each solver does
approximate-factorisation (ADI) or SSOR iterations and must drive the
true residual of the *same* A down - so the three kernels cross-verify.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

#: Number of coupled equations per grid point (like NPB's 5).
NCOMP = 5

#: A fixed SPD coupling matrix (diagonally dominant, condition ~ 3).
COUPLING = np.array(
    [
        [2.0, 0.3, 0.1, 0.0, 0.1],
        [0.3, 2.2, 0.2, 0.1, 0.0],
        [0.1, 0.2, 2.5, 0.3, 0.1],
        [0.0, 0.1, 0.3, 2.1, 0.2],
        [0.1, 0.0, 0.1, 0.2, 2.4],
    ]
)


@dataclass(frozen=True)
class CfdProblem:
    """One instance of the model system."""

    n: int                      # grid points per dimension
    c: float                    # diffusion strength (ADI convergence knob)

    @property
    def h(self) -> float:
        return 1.0 / (self.n + 1)

    @classmethod
    def with_cfl(cls, n: int, cfl: float) -> "CfdProblem":
        """Problem with c scaled so c/h^2 = cfl.

        Keeps the approximate-factorisation contraction rate (set by
        c/h^2) independent of grid size, so every class converges at
        the same per-iteration rate - mirroring how the real suite's
        time step scales with resolution.
        """
        h = 1.0 / (n + 1)
        return cls(n=n, c=cfl * h * h)

    def exact_solution(self) -> np.ndarray:
        """Smooth manufactured solution, shape (n, n, n, NCOMP)."""
        n = self.n
        x = np.linspace(self.h, 1.0 - self.h, n)
        gx, gy, gz = np.meshgrid(x, x, x, indexing="ij")
        base = np.sin(np.pi * gx) * np.sin(np.pi * gy) * np.sin(np.pi * gz)
        comps = [
            base,
            gx * (1 - gx) * gy * (1 - gy),
            np.cos(np.pi * gz) * gx,
            base * gz,
            gx + gy - gz,
        ]
        return np.stack(comps, axis=-1)

    def laplacian(self, u: np.ndarray) -> np.ndarray:
        """Dirichlet 7-point Laplacian of a (n,n,n,NCOMP) field."""
        h2 = self.h * self.h
        out = -6.0 * u.copy()
        for axis in range(3):
            shifted_p = np.zeros_like(u)
            shifted_m = np.zeros_like(u)
            src = [slice(None)] * 4
            dst = [slice(None)] * 4
            src[axis] = slice(1, None)
            dst[axis] = slice(None, -1)
            shifted_p[tuple(dst)] = u[tuple(src)]
            src[axis] = slice(None, -1)
            dst[axis] = slice(1, None)
            shifted_m[tuple(dst)] = u[tuple(src)]
            out += shifted_p + shifted_m
        return out / h2

    def apply(self, u: np.ndarray) -> np.ndarray:
        """A u = u + c * (-Laplacian u) C^T  (C couples components)."""
        lap = self.laplacian(u)
        return u - self.c * lap @ COUPLING.T

    def make_rhs(self) -> Tuple[np.ndarray, np.ndarray]:
        """(f, u_exact) with f = A u_exact."""
        u = self.exact_solution()
        return self.apply(u), u

    def residual_norm(self, u: np.ndarray, f: np.ndarray) -> float:
        return float(np.linalg.norm(f - self.apply(u)))

    # -- 1-D line operators for the factored solvers ----------------------

    def line_tridiag_blocks(self) -> Tuple[np.ndarray, np.ndarray]:
        """(diag_block, off_block) of I + c*C*(-D2) along one line.

        Constant-coefficient, so a single pair of 5x5 matrices
        describes every interior point.
        """
        h2 = self.h * self.h
        diag = np.eye(NCOMP) + self.c * (2.0 / h2) * COUPLING
        off = -self.c * (1.0 / h2) * COUPLING
        return diag, off

    def line_scalar_coeffs(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Eigen-diagonalised line coefficients for SP.

        Returns ``(eigvals, eigvecs, inv_eigvecs)`` of the coupling
        matrix; each eigencomponent sees the scalar operator
        ``1 + c*lambda*(-D2)``.
        """
        w, v = np.linalg.eigh(COUPLING)
        return w, v, v.T      # symmetric: inverse of eigvecs is transpose


def block_thomas(diag: np.ndarray, off: np.ndarray,
                 rhs: np.ndarray) -> np.ndarray:
    """Solve constant-coefficient block-tridiagonal systems, batched.

    ``rhs`` has shape (lines, n, NCOMP); the system along each line is
    tridiagonal with ``diag`` on the diagonal and ``off`` on both
    off-diagonals.  Classic forward-elimination/back-substitution with
    5x5 block pivots (no pivoting needed: diag is SPD-dominant).
    """
    lines, n, m = rhs.shape
    # Forward sweep: precompute the (constant per row index) pivots.
    pivots = np.empty((n, m, m))
    factors = np.empty((n, m, m))
    pivots[0] = diag
    for i in range(1, n):
        factors[i] = off @ np.linalg.inv(pivots[i - 1])
        pivots[i] = diag - factors[i] @ off
    y = np.empty_like(rhs)
    y[:, 0] = rhs[:, 0]
    for i in range(1, n):
        y[:, i] = rhs[:, i] - y[:, i - 1] @ factors[i].T
    x = np.empty_like(rhs)
    x[:, n - 1] = np.linalg.solve(
        pivots[n - 1], y[:, n - 1].T
    ).T
    for i in range(n - 2, -1, -1):
        x[:, i] = np.linalg.solve(
            pivots[i], (y[:, i] - x[:, i + 1] @ off.T).T
        ).T
    return x


def scalar_pentadiag_solve(main: np.ndarray, sub1: np.ndarray,
                           sub2: np.ndarray, rhs: np.ndarray) -> np.ndarray:
    """Solve symmetric constant-coefficient pentadiagonal systems.

    Coefficients are per-row scalars (arrays of length n for the main,
    first and second diagonals - symmetric); ``rhs`` is (lines, n).
    Banded LU without pivoting, vectorised across lines.
    """
    lines, n = rhs.shape
    # Work on copies of the banded structure per row.
    d = np.tile(main.astype(float), 1).copy()
    e = sub1.astype(float).copy()       # distance-1 band (length n-1)
    f = sub2.astype(float).copy()       # distance-2 band (length n-2)
    # LU factors (scalars per row) computed once - constant across lines.
    alpha = np.empty(n)                 # pivot
    beta = np.empty(n - 1)              # L distance-1 multiplier
    gamma = np.empty(max(n - 2, 0))     # L distance-2 multiplier
    u1 = np.empty(n - 1)                # U distance-1
    u2 = np.empty(max(n - 2, 0))        # U distance-2
    alpha[0] = d[0]
    if n > 1:
        u1[0] = e[0]
        beta[0] = e[0] / alpha[0]
    if n > 2:
        u2[0] = f[0]
        alpha[1] = d[1] - beta[0] * u1[0]
        u1[1] = e[1] - beta[0] * u2[0]
        beta[1] = u1[1] / alpha[1] if n > 2 else 0.0
        gamma[0] = f[0] / alpha[0]
        u2[1] = f[1]
        for i in range(2, n):
            gamma[i - 2] = f[i - 2] / alpha[i - 2]
            beta[i - 1] = (e[i - 1] - gamma[i - 2] * u1[i - 2]) / alpha[i - 1]
            alpha[i] = (
                d[i] - gamma[i - 2] * u2[i - 2] - beta[i - 1] * u1[i - 1]
            )
            if i < n - 1:
                u1[i] = e[i] - beta[i - 1] * u2[i - 1]
            if i < n - 2:
                u2[i] = f[i]
    elif n == 2:
        alpha[1] = d[1] - beta[0] * u1[0]

    # Forward substitution L y = rhs (vectorised across lines).
    y = rhs.astype(float).copy()
    if n > 1:
        y[:, 1] -= beta[0] * y[:, 0]
    for i in range(2, n):
        y[:, i] -= beta[i - 1] * y[:, i - 1] + gamma[i - 2] * y[:, i - 2]
    # Back substitution U x = y.
    x = np.empty_like(y)
    x[:, n - 1] = y[:, n - 1] / alpha[n - 1]
    if n > 1:
        x[:, n - 2] = (y[:, n - 2] - u1[n - 2] * x[:, n - 1]) / alpha[n - 2]
    for i in range(n - 3, -1, -1):
        x[:, i] = (
            y[:, i] - u1[i] * x[:, i + 1] - u2[i] * x[:, i + 2]
        ) / alpha[i]
    return x
