"""SP - scalar-pentadiagonal ADI solver.

Solves the same CFD system as BT, but first diagonalises the 5x5
inter-equation coupling (NPB SP applies exactly this trick to the
Navier-Stokes fluxes), so each line system decouples into five
**scalar pentadiagonal** solves - pentadiagonal because the factored
operator carries the suite's fourth-difference artificial dissipation.

Verification: the true residual of the unfactored system must fall
monotonically and end well below its starting value; tests additionally
check BT and SP converge to the same solution.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.npb.classes import ProblemClass, problem_class
from repro.npb.cfd import CfdProblem, NCOMP, scalar_pentadiag_solve
from repro.npb.common import KernelOutcome, OpMix

#: SP: scalar line solves stream more data per flop than BT's blocks.
SP_MIX = OpMix(fp=0.50, mem=0.38, int_=0.12)

SP_CFL = 0.35
#: Fourth-difference artificial dissipation in the factored operator.
SP_DISSIPATION = 0.05


def _solve_lines_scalar(prob: CfdProblem, field: np.ndarray,
                        axis: int) -> np.ndarray:
    """Apply one factor's inverse: five scalar penta solves per line."""
    w, v, vinv = prob.line_scalar_coeffs()
    h2 = prob.h * prob.h
    moved = np.moveaxis(field, axis, 2)          # (a, b, n, NCOMP)
    shape = moved.shape
    n = shape[2]
    # Rotate into the eigenbasis of the coupling matrix.
    eig = moved @ v                              # components decouple
    eps = SP_DISSIPATION
    out = np.empty_like(eig)
    for k in range(NCOMP):
        lam = w[k]
        main = np.full(n, 1.0 + prob.c * lam * 2.0 / h2 + 6.0 * eps)
        sub1 = np.full(n - 1, -prob.c * lam / h2 - 4.0 * eps)
        sub2 = np.full(max(n - 2, 0), eps)
        # Boundary rows of the dissipation stencil are one-sided in the
        # suite; the constant-band approximation keeps SPD-dominance.
        lines = eig[..., k].reshape(-1, n)
        out[..., k] = scalar_pentadiag_solve(
            main, sub1, sub2, lines
        ).reshape(shape[:-1])
    # Rotate back.
    result = out @ vinv
    return np.moveaxis(result, 2, axis)


def adi_sweep_sp(prob: CfdProblem, u: np.ndarray,
                 f: np.ndarray) -> np.ndarray:
    r = f - prob.apply(u)
    for axis in range(3):
        r = _solve_lines_scalar(prob, r, axis)
    return u + r


def run_sp(problem: Optional[ProblemClass] = None,
           letter: str = "S") -> KernelOutcome:
    pc = problem if problem is not None else problem_class("SP", letter)
    n = pc.size("n")
    iters = pc.size("iters")

    prob = CfdProblem.with_cfl(n, SP_CFL)
    f, u_exact = prob.make_rhs()
    u = np.zeros_like(f)
    norms = [prob.residual_norm(u, f)]
    for _ in range(iters):
        u = adi_sweep_sp(prob, u, f)
        norms.append(prob.residual_norm(u, f))

    ok = all(b <= a * (1 + 1e-12) for a, b in zip(norms, norms[1:]))
    # Geometric contraction: at least 25% residual reduction per sweep
    # (grid-independent thanks to the CFL-scaled diffusion).
    ok &= norms[-1] < norms[0] * (0.75 ** iters)
    err = float(np.linalg.norm(u - u_exact) / np.linalg.norm(u_exact))

    # Ops per iteration: residual + eigen rotations (2*NCOMP^2/pt per
    # axis, both ways) + scalar penta solves (~9 ops/pt/component).
    per_point = (
        2 * 7 * NCOMP + 2 * NCOMP**2
        + 3 * (4 * NCOMP**2 + 9 * NCOMP)
    )
    operations = float(iters) * per_point * n**3

    return KernelOutcome(
        name="SP",
        problem_class=pc.letter,
        operations=operations,
        mix=SP_MIX,
        verified=bool(ok),
        checksum=norms[-1],
        details={
            "initial_residual": norms[0],
            "final_residual": norms[-1],
            "solution_error": err,
        },
    )
