"""Parallel NPB kernels over SimMPI (the 'P' in NPB).

Two kernels whose parallel structure is the whole point:

- **EP**: each rank jumps the 48-bit LCG ahead to its slice of the
  stream (O(log n) skip - the property the benchmark was designed
  around), generates and tallies independently, and a single allreduce
  combines tallies: embarrassingly parallel, near-perfect speedup;
- **IS**: ranks generate key slices, allreduce a global histogram,
  then exchange keys to their bucket-owner ranks with an **alltoall** -
  the communication-heavy pattern that made IS the suite's
  interconnect stress test.

Both verify against the serial kernels bit-for-bit (the LCG stream is
the same), so parallel speedups are only ever reported for correct
answers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.network.timing import Fabric, IdealFabric, star_fabric
from repro.npb.common import NPB_SEED, NpbRandom
from repro.simmpi import SimMpiRuntime

#: Modelled cost of generating + tallying one EP pair (ops).
EP_OPS_PER_PAIR = 35.0
#: Modelled cost per key per IS phase (ops).
IS_OPS_PER_KEY = 5.0


def _slice_bounds(total: int, size: int, rank: int) -> Tuple[int, int]:
    base = total // size
    extra = total % size
    lo = rank * base + min(rank, extra)
    hi = lo + base + (1 if rank < extra else 0)
    return lo, hi


# ---------------------------------------------------------------------------
# Parallel EP
# ---------------------------------------------------------------------------

def par_ep(comm, n_pairs: int, flop_rate: float):
    """SPMD EP; returns ``(sx, sy, counts)`` identical on every rank."""
    lo, hi = _slice_bounds(n_pairs, comm.size, comm.rank)
    rng = NpbRandom(NPB_SEED)
    rng.skip(2 * lo)                     # two draws per pair
    local = hi - lo
    if local:
        uniforms = rng.batch(2 * local)
        x = 2.0 * uniforms[0::2] - 1.0
        y = 2.0 * uniforms[1::2] - 1.0
        t = x * x + y * y
        accept = (t <= 1.0) & (t > 0.0)
        xa, ya, ta = x[accept], y[accept], t[accept]
        factor = np.sqrt(-2.0 * np.log(ta) / ta)
        gx, gy = xa * factor, ya * factor
        ring = np.minimum(
            np.floor(np.maximum(np.abs(gx), np.abs(gy))).astype(int), 9
        )
        counts = np.bincount(ring, minlength=10).astype(np.int64)
        sx, sy = float(gx.sum()), float(gy.sum())
    else:
        counts = np.zeros(10, dtype=np.int64)
        sx = sy = 0.0
    comm.compute_flops(EP_OPS_PER_PAIR * local, flop_rate)

    payload = np.concatenate(([sx, sy], counts.astype(np.float64)))
    total = yield from comm.allreduce(payload)
    return float(total[0]), float(total[1]), total[2:].astype(np.int64)


# ---------------------------------------------------------------------------
# Parallel IS
# ---------------------------------------------------------------------------

def par_is(comm, n_keys: int, max_key: int, flop_rate: float):
    """SPMD bucket sort; returns this rank's sorted key block.

    Bucket ownership partitions the key range evenly across ranks; the
    key exchange is the classic alltoall.
    """
    lo, hi = _slice_bounds(n_keys, comm.size, comm.rank)
    rng = NpbRandom(NPB_SEED)
    rng.skip(4 * lo)                     # four draws per key
    local = hi - lo
    if local:
        u = rng.batch(4 * local).reshape(local, 4).mean(axis=1)
        keys = (u * max_key).astype(np.int64)
    else:
        keys = np.empty(0, dtype=np.int64)
    comm.compute_flops(IS_OPS_PER_KEY * local, flop_rate)

    # Global histogram (for verification and bucket sizing).
    hist = np.bincount(keys, minlength=max_key).astype(np.float64)
    hist = yield from comm.allreduce(hist)

    # Ship each key to its bucket owner.
    edges = np.linspace(0, max_key, comm.size + 1).astype(np.int64)
    owner = np.searchsorted(edges, keys, side="right") - 1
    outbound = [keys[owner == r] for r in range(comm.size)]
    inbound = yield from comm.alltoall(outbound)
    mine = np.concatenate(inbound) if inbound else keys
    mine.sort(kind="stable")
    comm.compute_flops(IS_OPS_PER_KEY * len(mine), flop_rate)
    return mine, hist.astype(np.int64)


# ---------------------------------------------------------------------------
# Drivers
# ---------------------------------------------------------------------------

@dataclass
class ParallelNpbPoint:
    kernel: str
    cpus: int
    time_s: float
    speedup: float
    efficiency: float
    comm_fraction: float


def run_par_ep(n_pairs: int, cpus: int, flop_rate: float,
               fabric: Optional[Fabric] = None):
    runtime = SimMpiRuntime(
        cpus,
        fabric=fabric if fabric is not None else star_fabric(cpus),
        flop_rate=flop_rate,
    )

    def program(comm):
        result = yield from par_ep(comm, n_pairs, flop_rate)
        return result

    return runtime.run(program)


def run_par_is(n_keys: int, max_key: int, cpus: int, flop_rate: float,
               fabric: Optional[Fabric] = None):
    runtime = SimMpiRuntime(
        cpus,
        fabric=fabric if fabric is not None else star_fabric(cpus),
        flop_rate=flop_rate,
    )

    def program(comm):
        result = yield from par_is(comm, n_keys, max_key, flop_rate)
        return result

    return runtime.run(program)


def npb_scaling(kernel: str, cpu_counts: Tuple[int, ...],
                flop_rate: float, n: int = 1 << 18,
                max_key: int = 1 << 11) -> List[ParallelNpbPoint]:
    """Speedup curves for the parallel kernels (EP scales, IS fights
    its alltoall - the suite's intended contrast)."""
    points: List[ParallelNpbPoint] = []
    base: Optional[float] = None
    for cpus in cpu_counts:
        if kernel.upper() == "EP":
            run = run_par_ep(n, cpus, flop_rate)
        elif kernel.upper() == "IS":
            run = run_par_is(n, max_key, cpus, flop_rate)
        else:
            raise KeyError(f"no parallel version of {kernel!r}")
        t = run.elapsed_s
        if base is None:
            base = t * cpus if cpus != 1 else t
        speedup = base / t
        points.append(
            ParallelNpbPoint(
                kernel=kernel.upper(),
                cpus=cpus,
                time_s=t,
                speedup=speedup,
                efficiency=speedup / cpus,
                comm_fraction=run.communication_fraction,
            )
        )
    return points
