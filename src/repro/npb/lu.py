"""LU - SSOR solver with wavefront sweeps.

Solves the same CFD system as BT/SP with symmetric successive
over-relaxation: a forward sweep solving the lower-triangular half and
a backward sweep solving the upper half.  Grid points are processed by
**hyperplanes** i+j+k = const - the exact wavefront scheme NPB LU uses
to expose parallelism in its triangular solves - and the constant 5x5
diagonal block is inverted once.

Verification: the true residual must fall monotonically and end well
below its starting value.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro.npb.classes import ProblemClass, problem_class
from repro.npb.cfd import COUPLING, CfdProblem, NCOMP
from repro.npb.common import KernelOutcome, OpMix

#: LU: stencil gathers dominate; blocks are applied, never factored.
LU_MIX = OpMix(fp=0.50, mem=0.40, int_=0.10)

LU_CFL = 0.35
LU_OMEGA = 1.0


def _hyperplanes(n: int) -> List[Tuple[np.ndarray, np.ndarray, np.ndarray]]:
    """Index arrays (i, j, k) for each wavefront plane of an n^3 grid."""
    gi, gj, gk = np.meshgrid(
        np.arange(n), np.arange(n), np.arange(n), indexing="ij"
    )
    s = (gi + gj + gk).ravel()
    order = np.argsort(s, kind="stable")
    fi, fj, fk = gi.ravel()[order], gj.ravel()[order], gk.ravel()[order]
    ssorted = s[order]
    planes = []
    for val in range(0, 3 * (n - 1) + 1):
        sel = slice(
            np.searchsorted(ssorted, val, "left"),
            np.searchsorted(ssorted, val, "right"),
        )
        planes.append((fi[sel], fj[sel], fk[sel]))
    return planes


def ssor_sweeps(prob: CfdProblem, r: np.ndarray,
                planes) -> np.ndarray:
    """delta = (D+U)^-1 D (D+L)^-1 r via two wavefront sweeps."""
    n = prob.n
    h2 = prob.h * prob.h
    diag = np.eye(NCOMP) + prob.c * (6.0 / h2) * COUPLING
    nbr = -prob.c / h2 * COUPLING        # each neighbour's block
    diag_inv = np.linalg.inv(diag)

    # Forward: (D + L) y = r, lower neighbours (i-1, j-1, k-1 sides).
    y = np.zeros_like(r)
    for pi, pj, pk in planes:
        gather = r[pi, pj, pk].copy()
        for di, dj, dk in ((-1, 0, 0), (0, -1, 0), (0, 0, -1)):
            qi, qj, qk = pi + di, pj + dj, pk + dk
            valid = (qi >= 0) & (qj >= 0) & (qk >= 0)
            if np.any(valid):
                gather[valid] -= y[qi[valid], qj[valid], qk[valid]] @ nbr.T
        y[pi, pj, pk] = gather @ diag_inv.T

    # Scale by D (the middle factor of SSOR).
    y = y @ diag.T

    # Backward: (D + U) delta = y, upper neighbours.
    delta = np.zeros_like(r)
    for pi, pj, pk in reversed(planes):
        gather = y[pi, pj, pk].copy()
        for di, dj, dk in ((1, 0, 0), (0, 1, 0), (0, 0, 1)):
            qi, qj, qk = pi + di, pj + dj, pk + dk
            valid = (qi < n) & (qj < n) & (qk < n)
            if np.any(valid):
                gather[valid] -= delta[qi[valid], qj[valid], qk[valid]] @ nbr.T
        delta[pi, pj, pk] = gather @ diag_inv.T
    return delta


def run_lu(problem: Optional[ProblemClass] = None,
           letter: str = "S") -> KernelOutcome:
    pc = problem if problem is not None else problem_class("LU", letter)
    n = pc.size("n")
    iters = pc.size("iters")

    prob = CfdProblem.with_cfl(n, LU_CFL)
    f, u_exact = prob.make_rhs()
    u = np.zeros_like(f)
    planes = _hyperplanes(n)
    norms = [prob.residual_norm(u, f)]
    for _ in range(iters):
        r = f - prob.apply(u)
        u = u + LU_OMEGA * ssor_sweeps(prob, r, planes)
        norms.append(prob.residual_norm(u, f))

    ok = all(b <= a * (1 + 1e-12) for a, b in zip(norms, norms[1:]))
    # Geometric contraction: at least 25% residual reduction per sweep
    # (grid-independent thanks to the CFL-scaled diffusion).
    ok &= norms[-1] < norms[0] * (0.75 ** iters)
    err = float(np.linalg.norm(u - u_exact) / np.linalg.norm(u_exact))

    # Ops per point per iteration: residual + two sweeps of three
    # neighbour blocks (2*NCOMP^2 each) + two diag applications.
    per_point = 2 * 7 * NCOMP + 2 * NCOMP**2 + 2 * (
        3 * 2 * NCOMP**2 + 2 * NCOMP**2
    )
    operations = float(iters) * per_point * n**3

    return KernelOutcome(
        name="LU",
        problem_class=pc.letter,
        operations=operations,
        mix=LU_MIX,
        verified=bool(ok),
        checksum=norms[-1],
        details={
            "initial_residual": norms[0],
            "final_residual": norms[-1],
            "solution_error": err,
        },
    )
