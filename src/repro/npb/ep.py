"""EP - the embarrassingly parallel benchmark.

Generates pairs of uniforms from the NPB LCG, maps them to the square
[-1, 1)^2, accepts pairs inside the unit disc, converts to Gaussian
deviates by the Marsaglia polar method, and tallies the deviates into
ten square annuli while summing the X and Y components.

Verification: the acceptance fraction must match pi/4, the annulus
counts must account for every accepted pair, and the deviate moments
must match a Gaussian - the same statistical invariants the real
benchmark's reference sums pin down.
"""

from __future__ import annotations

import math
from typing import Optional

import numpy as np

from repro.npb.classes import ProblemClass, problem_class
from repro.npb.common import KernelOutcome, NpbRandom, OpMix

#: EP is almost pure floating point with negligible memory traffic.
EP_MIX = OpMix(fp=0.85, mem=0.05, int_=0.10)


def run_ep(problem: Optional[ProblemClass] = None,
           letter: str = "S") -> KernelOutcome:
    """Run EP; returns the outcome with tallies in ``details``."""
    pc = problem if problem is not None else problem_class("EP", letter)
    n_pairs = pc.size("pairs")

    rng = NpbRandom()
    uniforms = rng.batch(2 * n_pairs)
    x = 2.0 * uniforms[0::2] - 1.0
    y = 2.0 * uniforms[1::2] - 1.0
    t = x * x + y * y
    accept = (t <= 1.0) & (t > 0.0)
    xa, ya, ta = x[accept], y[accept], t[accept]
    factor = np.sqrt(-2.0 * np.log(ta) / ta)
    gx = xa * factor
    gy = ya * factor

    # Tally into square annuli: l = floor(max(|gx|, |gy|)).
    ring = np.floor(np.maximum(np.abs(gx), np.abs(gy))).astype(int)
    counts = np.bincount(np.minimum(ring, 9), minlength=10)

    sx = float(np.sum(gx))
    sy = float(np.sum(gy))
    accepted = int(np.count_nonzero(accept))

    # --- verification ---------------------------------------------------
    ok = True
    # Acceptance fraction approximates pi/4 (LCG is high quality).
    frac = accepted / n_pairs
    tol = 6.0 / math.sqrt(n_pairs)
    ok &= abs(frac - math.pi / 4.0) < tol
    # Tallies conserve the accepted count.
    ok &= int(counts.sum()) == accepted
    # Gaussian moments: mean ~ 0, variance ~ 1.
    if accepted > 1000:
        ok &= abs(gx.mean()) < 6.0 / math.sqrt(accepted)
        ok &= abs(gx.var() - 1.0) < 20.0 / math.sqrt(accepted)

    # Operation count: per pair ~10 flops generation + ~25 for the
    # accepted pairs' log/sqrt expansion (the NPB convention charges
    # transcendental calls at their polynomial cost).
    operations = 10.0 * n_pairs + 25.0 * accepted

    return KernelOutcome(
        name="EP",
        problem_class=pc.letter,
        operations=operations,
        mix=EP_MIX,
        verified=bool(ok),
        checksum=sx + sy,
        details={
            "pairs": float(n_pairs),
            "accepted": float(accepted),
            "sx": sx,
            "sy": sy,
            **{f"count_{i}": float(c) for i, c in enumerate(counts)},
        },
    )
