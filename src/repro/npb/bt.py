"""BT - block-tridiagonal ADI solver.

Approximate-factorisation iterations on the shared CFD system: the
update ``u += M^-1 (f - A u)`` applies the inverse of the factored
operator ``M = Mx My Mz``, each factor a set of line systems that are
**block-tridiagonal with 5x5 blocks** - the defining trait of NPB BT.

Verification: the true residual of the unfactored system must fall
monotonically and end well below its starting value.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.npb.classes import ProblemClass, problem_class
from repro.npb.cfd import CfdProblem, NCOMP, block_thomas
from repro.npb.common import KernelOutcome, OpMix

#: BT: dense little block solves - the most FP-heavy of the trio.
BT_MIX = OpMix(fp=0.60, mem=0.30, int_=0.10)

#: Contraction knob: c = CFL * h^2 keeps the per-iteration residual
#: reduction grid-independent.
BT_CFL = 0.35


def _solve_lines(prob: CfdProblem, field: np.ndarray,
                 axis: int) -> np.ndarray:
    """Apply one factor's inverse: block-tri solves along *axis*."""
    diag, off = prob.line_tridiag_blocks()
    moved = np.moveaxis(field, axis, 2)          # (a, b, n, NCOMP)
    shape = moved.shape
    lines = moved.reshape(-1, shape[2], NCOMP)
    solved = block_thomas(diag, off, lines)
    return np.moveaxis(solved.reshape(shape), 2, axis)


def adi_sweep(prob: CfdProblem, u: np.ndarray, f: np.ndarray) -> np.ndarray:
    """One approximate-factorisation update."""
    r = f - prob.apply(u)
    for axis in range(3):
        r = _solve_lines(prob, r, axis)
    return u + r


def run_bt(problem: Optional[ProblemClass] = None,
           letter: str = "S") -> KernelOutcome:
    pc = problem if problem is not None else problem_class("BT", letter)
    n = pc.size("n")
    iters = pc.size("iters")

    prob = CfdProblem.with_cfl(n, BT_CFL)
    f, u_exact = prob.make_rhs()
    u = np.zeros_like(f)
    norms = [prob.residual_norm(u, f)]
    for _ in range(iters):
        u = adi_sweep(prob, u, f)
        norms.append(prob.residual_norm(u, f))

    ok = all(b <= a * (1 + 1e-12) for a, b in zip(norms, norms[1:]))
    # Geometric contraction: at least 25% residual reduction per sweep
    # (grid-independent thanks to the CFL-scaled diffusion).
    ok &= norms[-1] < norms[0] * (0.75 ** iters)
    err = float(np.linalg.norm(u - u_exact) / np.linalg.norm(u_exact))

    # Ops per iteration: residual (~2*7*NCOMP + matmul 2*NCOMP^2 per
    # point) + 3 axis solves (~8*NCOMP^2 per point each with the
    # constant-pivot Thomas).
    per_point = 2 * 7 * NCOMP + 2 * NCOMP**2 + 3 * 8 * NCOMP**2
    operations = float(iters) * per_point * n**3

    return KernelOutcome(
        name="BT",
        problem_class=pc.letter,
        operations=operations,
        mix=BT_MIX,
        verified=bool(ok),
        checksum=norms[-1],
        details={
            "initial_residual": norms[0],
            "final_residual": norms[-1],
            "solution_error": err,
        },
    )
