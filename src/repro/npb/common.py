"""Shared infrastructure for the NPB work-alike kernels.

Includes the genuine NPB pseudorandom number generator: the 48-bit
linear congruential generator x' = a*x mod 2**46 with a = 5**13, with
O(log n) jump-ahead by repeated squaring - the property that makes EP
"embarrassingly parallel" in the real suite.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

import numpy as np


class VerificationError(AssertionError):
    """A kernel failed its built-in numerical verification."""


@dataclass(frozen=True)
class OpMix:
    """Instruction-class mix of a kernel (fractions sum to 1).

    Feeds the per-CPU projection in :mod:`repro.perfmodel`: floating
    point ops, memory traffic and integer/branch bookkeeping stress
    different microarchitectural resources.
    """

    fp: float
    mem: float
    int_: float

    def __post_init__(self) -> None:
        total = self.fp + self.mem + self.int_
        if not np.isclose(total, 1.0, atol=1e-9):
            raise ValueError(f"mix fractions sum to {total}, not 1")
        if min(self.fp, self.mem, self.int_) < 0:
            raise ValueError("mix fractions cannot be negative")


@dataclass
class KernelOutcome:
    """Result of running one kernel at one problem class."""

    name: str
    problem_class: str
    operations: float            # the benchmark's op count (for Mops)
    mix: OpMix
    verified: bool
    checksum: float              # kernel-specific scalar for regression
    details: Dict[str, float] = field(default_factory=dict)

    def require_verified(self) -> "KernelOutcome":
        if not self.verified:
            raise VerificationError(
                f"{self.name} class {self.problem_class} failed verification"
            )
        return self


# ---------------------------------------------------------------------------
# The NPB 48-bit linear congruential generator
# ---------------------------------------------------------------------------

#: Multiplier a = 5**13 and modulus 2**46 of the NPB generator.
NPB_LCG_A = 5 ** 13
NPB_LCG_M = 1 << 46
_MASK46 = NPB_LCG_M - 1

#: The suite's standard seed.
NPB_SEED = 314_159_265


class NpbRandom:
    """randlc: x' = a*x mod 2**46, returning x / 2**46 in (0, 1).

    Vectorised batch generation plus O(log n) jump-ahead, mirroring the
    real suite's ``randlc``/``vranlc`` pair.
    """

    def __init__(self, seed: int = NPB_SEED, a: int = NPB_LCG_A) -> None:
        self.x = seed & _MASK46
        self.a = a & _MASK46

    @staticmethod
    def power(a: int, n: int) -> int:
        """a**n mod 2**46 by binary powering (the EP jump-ahead)."""
        return pow(a, n, NPB_LCG_M)

    def skip(self, n: int) -> None:
        """Advance the stream by *n* draws in O(log n)."""
        self.x = (self.x * self.power(self.a, n)) & _MASK46

    def next(self) -> float:
        self.x = (self.x * self.a) & _MASK46
        return self.x / NPB_LCG_M

    _BLOCK = 1 << 15
    _power_cache: Dict[int, np.ndarray] = {}

    @classmethod
    def _power_table(cls, a: int) -> np.ndarray:
        """[a**1, ..., a**BLOCK] mod 2**46 as uint64 (exact, cached)."""
        table = cls._power_cache.get(a)
        if table is None:
            vals = np.empty(cls._BLOCK, dtype=np.uint64)
            acc = 1
            for k in range(cls._BLOCK):
                acc = (acc * a) & _MASK46
                vals[k] = acc
            cls._power_cache[a] = table = vals
        return table

    def batch(self, n: int) -> np.ndarray:
        """Draw *n* uniforms, vectorised.

        Uses jump-ahead: from state x, the next BLOCK values are
        ``x * a**k mod 2**46`` for k = 1..BLOCK, computed with the
        real suite's 23-bit split so every 46-bit product stays exact
        inside uint64.
        """
        powers = self._power_table(self.a)
        a1 = powers >> np.uint64(23)
        a2 = powers & np.uint64((1 << 23) - 1)
        out = np.empty(n, dtype=np.float64)
        filled = 0
        while filled < n:
            take = min(self._BLOCK, n - filled)
            x = np.uint64(self.x)
            x1 = x >> np.uint64(23)
            x2 = x & np.uint64((1 << 23) - 1)
            # (a*x) mod 2**46 with 23-bit split arithmetic (all exact).
            t1 = (a1[:take] * x2 + a2[:take] * x1) & np.uint64((1 << 23) - 1)
            vals = ((t1 << np.uint64(23)) + a2[:take] * x2) & np.uint64(_MASK46)
            out[filled:filled + take] = vals
            self.x = int(vals[take - 1])
            filled += take
        return out / NPB_LCG_M


def npb_uniforms(n: int, seed: int = NPB_SEED,
                 skip: int = 0) -> np.ndarray:
    """Convenience: *n* draws from the NPB stream after *skip* draws."""
    rng = NpbRandom(seed)
    if skip:
        rng.skip(skip)
    return rng.batch(n)
