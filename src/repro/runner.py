"""Process-pool bench runner: fan seeded points across host cores.

The sweep-shaped workloads (``scaling_study`` CPU counts, sched
policy/seed sweeps, ablation grids) are embarrassingly parallel: every
point is a pure function of its seed and parameters, and the simulated
results are deterministic.  This module fans such points over a
``multiprocessing`` pool while keeping the merged output byte-identical
to a serial run:

- points are dispatched with ``Pool.map``, which preserves submission
  order, so the merge is a plain ordered list — no reduction whose
  result could depend on completion order;
- workers must be module-level functions of one picklable argument
  (closures do not survive the fork);
- ``jobs <= 1`` short-circuits to an in-process loop, byte-for-byte the
  pre-pool code path, which is what determinism-sensitive CI runs.

Wall-clock instrumentation lives here too: ``best_of`` times a callable
(best-of-N, since single-shot timings on a shared host are noisy) and
``write_bench_json`` emits the machine-readable ``BENCH_*.json`` files
the CI bench-smoke job archives, so the perf trajectory has a baseline.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass, field
from multiprocessing import get_context
from pathlib import Path
from typing import Any, Callable, Dict, Iterable, List

__all__ = [
    "TimedResult",
    "bench_quick",
    "best_of",
    "parallel_map",
    "write_bench_json",
]


def bench_quick() -> bool:
    """True when ``REPRO_BENCH_QUICK`` asks for the CI smoke sizes."""
    return os.environ.get("REPRO_BENCH_QUICK", "") not in ("", "0")


def parallel_map(fn: Callable[[Any], Any], items: Iterable[Any],
                 jobs: int = 1) -> List[Any]:
    """Map *fn* over *items*, optionally across *jobs* processes.

    Returns results in input order regardless of completion order, so
    the merged output of ``jobs=N`` is byte-identical to ``jobs=1``
    whenever *fn* itself is deterministic.  With ``jobs <= 1`` (or a
    single item, or no ``fork`` start method on this platform) the map
    runs inline in this process.
    """
    work = list(items)
    if jobs is None or jobs <= 1 or len(work) <= 1:
        return [fn(item) for item in work]
    try:
        ctx = get_context("fork")
    except ValueError:             # platform without fork: stay serial
        return [fn(item) for item in work]
    with ctx.Pool(processes=min(jobs, len(work))) as pool:
        return pool.map(fn, work)


@dataclass
class TimedResult:
    """Value plus wall-clock samples from :func:`best_of`."""

    value: Any
    times_s: List[float] = field(default_factory=list)

    @property
    def best_s(self) -> float:
        return min(self.times_s)

    @property
    def mean_s(self) -> float:
        return sum(self.times_s) / len(self.times_s)


def best_of(fn: Callable[[], Any], repeats: int = 3) -> TimedResult:
    """Run *fn* ``repeats`` times; keep the last value and every timing.

    Best-of-N is the standard defence against timer noise on a shared
    host: the minimum approaches the true cost as N grows, while means
    absorb whatever else the machine was doing.
    """
    if repeats < 1:
        raise ValueError("repeats must be at least 1")
    times: List[float] = []
    value: Any = None
    for _ in range(repeats):
        t0 = time.perf_counter()
        value = fn()
        times.append(time.perf_counter() - t0)
    return TimedResult(value=value, times_s=times)


def write_bench_json(path: os.PathLike, payload: Dict[str, Any]) -> Path:
    """Write one ``BENCH_*.json`` report; returns the resolved path.

    Keys are sorted so reruns with identical measurements produce
    identical bytes (the artifact diff then shows only real movement).
    """
    out = Path(path)
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return out
