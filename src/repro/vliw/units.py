"""Functional units and operation latencies of the VLIW core.

The TM5600's molecule format routes each atom directly to a functional
unit (paper Section 2.1): two integer ALUs, one floating-point unit, one
memory (load/store) unit and one branch unit.  Latencies here are issue-
to-use distances in cycles; integer ops complete quickly through the
7-stage pipes while FP ops see the longer 10-stage pipe, and iterative
ops (divide, square root) are many-cycle unpipelined sequences - which
is precisely why Karp's multiply-only algorithm wins on this class of
hardware.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, Mapping

from repro.isa.instructions import OpClass


class UnitKind(enum.Enum):
    """Functional-unit classes an atom can be routed to."""

    ALU = "alu"       # two instances
    FPU = "fpu"       # one instance
    MEM = "mem"       # one load/store unit
    BR = "br"         # one branch unit


#: Which unit each guest operation class executes on.
UNIT_FOR_CLASS: Mapping[OpClass, UnitKind] = {
    OpClass.IALU: UnitKind.ALU,
    OpClass.IMUL: UnitKind.ALU,
    OpClass.FPADD: UnitKind.FPU,
    OpClass.FPMUL: UnitKind.FPU,
    OpClass.FPDIV: UnitKind.FPU,
    OpClass.FPSQRT: UnitKind.FPU,
    OpClass.LOAD: UnitKind.MEM,
    OpClass.STORE: UnitKind.MEM,
    OpClass.BRANCH: UnitKind.BR,
    OpClass.NOP: UnitKind.ALU,
}


@dataclass(frozen=True)
class LatencyTable:
    """Issue-to-use latencies (cycles) per operation class."""

    latencies: Mapping[OpClass, int]

    def latency(self, opclass: OpClass) -> int:
        return self.latencies[opclass]

    def replace(self, **overrides: int) -> "LatencyTable":
        """Return a copy with some class latencies overridden by name."""
        merged: Dict[OpClass, int] = dict(self.latencies)
        for name, value in overrides.items():
            merged[OpClass[name.upper()]] = value
        return LatencyTable(latencies=merged)


#: TM5600 latency model.  Values chosen to reflect the paper's
#: description: short bypassed integer pipes, a deeper FP pipe, and
#: long iterative divide/sqrt (the Crusoe has no dedicated divider -
#: CMS emits an iterative sequence, modelled here as one long atom).
TM5600_LATENCIES = LatencyTable(
    latencies={
        OpClass.IALU: 1,
        OpClass.IMUL: 3,
        OpClass.FPADD: 3,
        OpClass.FPMUL: 3,
        OpClass.FPDIV: 30,
        OpClass.FPSQRT: 40,
        OpClass.LOAD: 2,
        OpClass.STORE: 1,
        OpClass.BRANCH: 1,
        OpClass.NOP: 1,
    }
)
