"""Latency-aware list scheduler: packs atoms into molecules.

This is the performance-critical job the paper ascribes to the CMS
translator: "reduce the number of instructions executed by packing atoms
into VLIW molecules".  The scheduler builds the register/memory
dependence graph of a basic block and greedily fills molecule slots in
dependence order, leaving long-latency results (divide, sqrt, loads) to
complete while independent atoms issue - exactly the ILP the Table 1
microkernel measures.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Set, Tuple

from repro.vliw.atoms import Atom
from repro.vliw.molecules import FULL_FORMAT, Molecule, SlotLimits
from repro.vliw.units import UnitKind


@dataclass
class DependenceEdges:
    """Per-atom predecessor sets, by hazard kind.

    - ``data`` (RAW, load-after-store): the producer must **complete**
      before the consumer issues;
    - ``waw``: the earlier write must issue in a **strictly earlier**
      molecule (two writers of one register cannot share a molecule);
    - ``war_order`` (WAR, store-after-memory-op): the predecessor must
      have issued **no later** than the successor - same-molecule
      co-issue is legal because molecule reads happen before molecule
      writes (and our program-order semantics preserve exactly that).

    The block-ending branch is handled positionally by the scheduler (it
    must issue last); long-latency results may still be in flight when
    control leaves the block - the engine's scoreboard carries them
    across block boundaries.
    """

    data: List[Set[int]]
    waw: List[Set[int]]
    war_order: List[Set[int]]


def dependence_graph(atoms: Sequence[Atom]) -> DependenceEdges:
    """Build the three-kind dependence edges of a basic block."""
    n = len(atoms)
    edges = DependenceEdges(
        data=[set() for _ in range(n)],
        waw=[set() for _ in range(n)],
        war_order=[set() for _ in range(n)],
    )
    last_write: Dict[str, int] = {}
    readers_since_write: Dict[str, List[int]] = {}
    last_store = -1
    last_mem: List[int] = []

    for i, atom in enumerate(atoms):
        for src in atom.reads():
            if src in last_write:
                edges.data[i].add(last_write[src])          # RAW
            readers_since_write.setdefault(src, []).append(i)
        dst = atom.writes()
        if dst is not None:
            if dst in last_write:
                edges.waw[i].add(last_write[dst])           # WAW
            for reader in readers_since_write.get(dst, ()):
                if reader != i:
                    edges.war_order[i].add(reader)          # WAR
            last_write[dst] = i
            readers_since_write[dst] = []
        if atom.is_store:
            edges.war_order[i].update(last_mem)    # store after mem ops
            last_mem.append(i)
            last_store = i
        elif atom.is_mem:
            if last_store >= 0:
                edges.data[i].add(last_store)      # load after store
            last_mem.append(i)
    return edges


def schedule_block(atoms: Sequence[Atom],
                   limits: SlotLimits = FULL_FORMAT) -> Tuple[Molecule, ...]:
    """Pack *atoms* into an in-order molecule sequence.

    Cycle-driven greedy list scheduling: at each virtual cycle, pick the
    dependence-ready atoms (data operands complete, WAW predecessors in
    earlier molecules, WAR predecessors already issued or co-issuing),
    in program order, until the molecule's slot limits fill.  A
    block-ending branch may only occupy the final molecule, but it does
    not wait for in-flight latencies.
    """
    if not atoms:
        return ()
    edges = dependence_graph(atoms)
    n = len(atoms)
    finish: Dict[int, int] = {}       # atom seq -> completion cycle
    issue_time: Dict[int, int] = {}   # atom seq -> issue cycle
    unscheduled = set(range(n))
    molecules: List[Molecule] = []
    t = 0
    guard_limit = 64 * n + 16 * max(
        (atom.latency for atom in atoms), default=1
    ) + 64
    guard = 0
    while unscheduled:
        guard += 1
        if guard > guard_limit:  # pragma: no cover - cycle-safety net
            raise RuntimeError("scheduler failed to make progress")
        picked: List[Atom] = []
        picked_seqs: Set[int] = set()
        slots: Dict[UnitKind, int] = {}
        for i in sorted(unscheduled):
            atom = atoms[i]
            if atom.is_branch:
                # Branch issues only once every other atom has issued
                # (or is issuing in this very molecule).
                others = unscheduled - {i} - picked_seqs
                if others:
                    continue
            if not all(p in issue_time for p in edges.data[i]):
                continue
            ready_at = max(
                (finish[p] for p in edges.data[i]), default=0
            )
            if ready_at > t:
                continue
            if not all(
                p in issue_time and issue_time[p] < t
                for p in edges.waw[i]
            ):
                continue
            if not all(
                p in issue_time or p in picked_seqs
                for p in edges.war_order[i]
            ):
                continue
            unit_used = slots.get(atom.unit, 0)
            if unit_used >= limits.capacity(atom.unit):
                continue
            if len(picked) >= limits.max_atoms:
                break
            picked.append(atom)
            picked_seqs.add(i)
            slots[atom.unit] = unit_used + 1
        if picked:
            molecules.append(Molecule(atoms=tuple(picked), limits=limits))
            for atom in picked:
                issue_time[atom.seq] = t
                finish[atom.seq] = t + atom.latency
                unscheduled.discard(atom.seq)
        t += 1
    return tuple(molecules)


def schedule_length(molecules: Sequence[Molecule]) -> int:
    """Lower bound on cycles to issue the schedule (one molecule/cycle)."""
    return len(molecules)
