"""In-order VLIW execution engine with a cycle scoreboard.

The engine keeps a *persistent* clock and register-ready scoreboard so
long-latency results (divide, sqrt, loads) overlap across basic-block
boundaries - the molecule of the next loop iteration stalls only when it
actually consumes an in-flight value.  Divide and square root occupy the
single FPU for their full duration (no dedicated iterative unit on the
Crusoe), which is the microarchitectural reason Karp's multiply-only
reciprocal square root beats the libm path on this machine.

Semantics are delegated to the golden :class:`repro.isa.machine.Machine`
in guest program order, so translated execution is architecturally
transparent - the property real CMS must also guarantee.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from repro.isa.instructions import OpClass, Program
from repro.isa.machine import Machine
from repro.vliw.atoms import Atom, atoms_from_block
from repro.vliw.molecules import FULL_FORMAT, Molecule, SlotLimits
from repro.vliw.scheduler import schedule_block
from repro.vliw.units import TM5600_LATENCIES, LatencyTable, UnitKind

#: Operation classes that monopolise the FPU for their full latency.
_UNPIPELINED = frozenset({OpClass.FPDIV, OpClass.FPSQRT})


@dataclass(frozen=True)
class TranslatedBlock:
    """A scheduled native translation of one guest basic block."""

    entry_pc: int
    atoms: Tuple[Atom, ...]
    molecules: Tuple[Molecule, ...]

    @property
    def guest_count(self) -> int:
        """Number of guest instructions this translation covers."""
        return len(self.atoms)

    @property
    def code_bytes(self) -> int:
        """Encoded size, for translation-cache capacity accounting."""
        return sum(m.width_bits // 8 for m in self.molecules)


def translate_block(program: Program, entry_pc: int,
                    latencies: LatencyTable = TM5600_LATENCIES,
                    limits: SlotLimits = FULL_FORMAT) -> TranslatedBlock:
    """Lower and schedule the guest basic block starting at *entry_pc*."""
    block = program.basic_block_at(entry_pc)
    atoms = atoms_from_block(block, latencies)
    molecules = schedule_block(atoms, limits)
    return TranslatedBlock(entry_pc=entry_pc, atoms=atoms, molecules=molecules)


@dataclass
class EngineStats:
    """Cumulative native-execution statistics."""

    molecules_issued: int = 0
    atoms_executed: int = 0
    stall_cycles: int = 0
    blocks_executed: int = 0


class VliwEngine:
    """Times and executes translated blocks on the VLIW core."""

    def __init__(self, latencies: LatencyTable = TM5600_LATENCIES,
                 limits: SlotLimits = FULL_FORMAT) -> None:
        self.latencies = latencies
        self.limits = limits
        self.clock: int = 0
        self._reg_ready: Dict[str, int] = {}
        self._fpu_free: int = 0
        self.stats = EngineStats()

    def reset(self) -> None:
        self.clock = 0
        self._reg_ready.clear()
        self._fpu_free = 0
        self.stats = EngineStats()

    def charge(self, cycles: int) -> None:
        """Advance the clock for non-native work (interpret/translate)."""
        if cycles < 0:
            raise ValueError("cannot charge negative cycles")
        self.clock += cycles

    def execute_block(self, tb: TranslatedBlock, program: Program,
                      machine: Machine) -> int:
        """Run one translated block; returns cycles consumed.

        Timing walks the molecule schedule through the scoreboard;
        semantics replay the guest instructions in program order on the
        golden machine (so ``machine.state`` and ``machine.stats`` are
        identical to a pure-interpreter run).
        """
        start = self.clock
        t_prev = self.clock - 1
        ideal = len(tb.molecules)
        for molecule in tb.molecules:
            t = t_prev + 1
            for atom in molecule:
                for src in atom.reads():
                    t = max(t, self._reg_ready.get(src, 0))
                if atom.unit is UnitKind.FPU:
                    t = max(t, self._fpu_free)
            for atom in molecule:
                dst = atom.writes()
                if dst is not None:
                    self._reg_ready[dst] = t + atom.latency
                if atom.opclass in _UNPIPELINED:
                    self._fpu_free = t + atom.latency
            t_prev = t
            self.stats.molecules_issued += 1
            self.stats.atoms_executed += len(molecule)
        self.clock = t_prev + 1
        self.stats.blocks_executed += 1
        self.stats.stall_cycles += (self.clock - start) - ideal

        if machine.state.pc != tb.entry_pc:
            raise ValueError(
                f"machine pc {machine.state.pc} does not match block entry "
                f"{tb.entry_pc}"
            )
        for _ in range(tb.guest_count):
            machine.step(program)
        return self.clock - start
