"""Transmeta Crusoe-style VLIW execution engine.

Models the native side of the TM5600 described in paper Section 2.1:

- a simple in-order VLIW core with two integer units (7-stage pipes),
  one floating-point unit (10-stage pipe), one load/store unit and one
  branch unit;
- instruction words called *molecules* - 64-bit (2 atoms) or 128-bit
  (up to 4 atoms) - whose format directly routes atoms to functional
  units, so there is no out-of-order hardware at all;
- *atoms*: the RISC-like native operations packed into molecules.

The Code Morphing Software (:mod:`repro.cms`) produces molecule
sequences from guest code; this package schedules and times them.
"""

from repro.vliw.atoms import Atom
from repro.vliw.units import UnitKind, TM5600_LATENCIES, LatencyTable
from repro.vliw.molecules import Molecule, MoleculeFormatError, SlotLimits
from repro.vliw.scheduler import schedule_block
from repro.vliw.engine import VliwEngine, TranslatedBlock

__all__ = [
    "Atom",
    "LatencyTable",
    "Molecule",
    "MoleculeFormatError",
    "SlotLimits",
    "TM5600_LATENCIES",
    "TranslatedBlock",
    "UnitKind",
    "VliwEngine",
    "schedule_block",
]
