"""Atoms: the RISC-like native operations of the VLIW core.

Translation is semantics-preserving: each atom carries the guest
instruction it implements, so executing the atoms of a block in program
order reproduces the guest-visible architectural effects exactly, while
the molecule schedule determines the *timing*.  (This mirrors how real
CMS translations must be architecturally transparent to x86 software.)
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from repro.isa.instructions import Instr, OpClass
from repro.vliw.units import UNIT_FOR_CLASS, LatencyTable, UnitKind


@dataclass(frozen=True)
class Atom:
    """One native operation, routed to one functional unit.

    ``seq`` is the atom's position in guest program order within its
    block; the engine executes semantics in ``seq`` order regardless of
    the molecule schedule.
    """

    instr: Instr
    seq: int
    latency: int

    @property
    def unit(self) -> UnitKind:
        return UNIT_FOR_CLASS[self.instr.opclass]

    @property
    def opclass(self) -> OpClass:
        return self.instr.opclass

    @property
    def is_branch(self) -> bool:
        return self.instr.is_branch

    @property
    def is_mem(self) -> bool:
        return self.instr.opclass in (OpClass.LOAD, OpClass.STORE)

    @property
    def is_store(self) -> bool:
        return self.instr.opclass is OpClass.STORE

    def reads(self) -> Tuple[str, ...]:
        return self.instr.reads()

    def writes(self) -> Optional[str]:
        return self.instr.writes()

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        return f"<atom#{self.seq} {self.instr} @{self.unit.value}>"


def atoms_from_block(block: Tuple[Instr, ...],
                     latencies: LatencyTable) -> Tuple[Atom, ...]:
    """Lower a guest basic block into native atoms (1:1 mapping)."""
    return tuple(
        Atom(instr=instr, seq=i, latency=latencies.latency(instr.opclass))
        for i, instr in enumerate(block)
    )
