"""Molecules: the VLIW instruction words.

A molecule is 64 or 128 bits long and holds up to four atoms executed in
parallel (paper Section 2.1).  The molecule *format* determines routing,
so slot limits are structural: at most two ALU atoms, one FPU atom, one
memory atom and one branch atom per molecule.  Molecules issue strictly
in order - there is no out-of-order hardware to model.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Tuple

from repro.vliw.atoms import Atom
from repro.vliw.units import UnitKind


class MoleculeFormatError(ValueError):
    """Raised when atoms cannot legally share a molecule."""


@dataclass(frozen=True)
class SlotLimits:
    """Per-unit slot capacities of a molecule format."""

    max_atoms: int = 4
    per_unit: Tuple[Tuple[UnitKind, int], ...] = (
        (UnitKind.ALU, 2),
        (UnitKind.FPU, 1),
        (UnitKind.MEM, 1),
        (UnitKind.BR, 1),
    )

    def capacity(self, unit: UnitKind) -> int:
        for kind, cap in self.per_unit:
            if kind is unit:
                return cap
        return 0


#: The TM5600's full 128-bit format.
FULL_FORMAT = SlotLimits()
#: A narrow 2-atom format (64-bit molecules only) - used by the
#: molecule-width ablation study.
NARROW_FORMAT = SlotLimits(
    max_atoms=2,
    per_unit=(
        (UnitKind.ALU, 1),
        (UnitKind.FPU, 1),
        (UnitKind.MEM, 1),
        (UnitKind.BR, 1),
    ),
)


@dataclass(frozen=True)
class Molecule:
    """An issue packet of up to four atoms."""

    atoms: Tuple[Atom, ...]
    limits: SlotLimits = FULL_FORMAT

    def __post_init__(self) -> None:
        if not self.atoms:
            raise MoleculeFormatError("empty molecule")
        if len(self.atoms) > self.limits.max_atoms:
            raise MoleculeFormatError(
                f"{len(self.atoms)} atoms exceed format width "
                f"{self.limits.max_atoms}"
            )
        used: Dict[UnitKind, int] = {}
        for atom in self.atoms:
            used[atom.unit] = used.get(atom.unit, 0) + 1
        for unit, count in used.items():
            if count > self.limits.capacity(unit):
                raise MoleculeFormatError(
                    f"{count} atoms on {unit.value} exceed capacity "
                    f"{self.limits.capacity(unit)}"
                )

    @property
    def width_bits(self) -> int:
        """Encoded width: 64-bit if <=2 atoms, else 128-bit."""
        return 64 if len(self.atoms) <= 2 else 128

    def __len__(self) -> int:
        return len(self.atoms)

    def __iter__(self):
        return iter(self.atoms)

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        inner = " || ".join(str(a.instr) for a in self.atoms)
        return f"[{inner}]"


def total_atoms(molecules: Iterable[Molecule]) -> int:
    return sum(len(m) for m in molecules)


def packing_efficiency(molecules: Iterable[Molecule],
                       limits: SlotLimits = FULL_FORMAT) -> float:
    """Fraction of available atom slots actually used.

    A measure of how much instruction-level parallelism the translator
    found - the quantity Table 1 is really probing.
    """
    mols = list(molecules)
    if not mols:
        return 0.0
    return total_atoms(mols) / (len(mols) * limits.max_atoms)
