"""Morton (Z-order) keys: the hashing scheme of the hashed oct-tree.

Warren & Salmon's parallel hashed oct-tree ["A Parallel Hashed Oct-Tree
N-Body Algorithm", SC'93] names tree cells by key: the root is 1, and a
child's key is ``parent_key * 8 + octant``.  A particle's key at maximum
depth is the sentinel bit followed by its interleaved coordinate bits.
Sorting particles by key linearises them along a space-filling curve,
which is also how the parallel decomposition slices the domain.

21 bits per dimension + 1 sentinel bit = 64-bit keys, depth <= 21.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

#: Maximum tree depth representable in a 64-bit key.
MAX_DEPTH = 21

_U = np.uint64
_MASKS_SPREAD = (
    _U(0x1FFFFF),
    _U(0x1F00000000FFFF),
    _U(0x1F0000FF0000FF),
    _U(0x100F00F00F00F00F),
    _U(0x10C30C30C30C30C3),
    _U(0x1249249249249249),
)
_SHIFTS = (_U(32), _U(16), _U(8), _U(4), _U(2))

#: The root cell's key.
ROOT_KEY = 1


def _spread(v: np.ndarray) -> np.ndarray:
    """Spread 21-bit integers so bits land every third position."""
    x = v.astype(np.uint64) & _MASKS_SPREAD[0]
    for shift, mask in zip(_SHIFTS, _MASKS_SPREAD[1:]):
        x = (x | (x << shift)) & mask
    return x


def _compact(v: np.ndarray) -> np.ndarray:
    """Inverse of :func:`_spread`."""
    x = v.astype(np.uint64) & _MASKS_SPREAD[-1]
    for shift, mask in zip(reversed(_SHIFTS), reversed(_MASKS_SPREAD[:-1])):
        x = (x | (x >> shift)) & mask
    return x


def morton_encode(ix: np.ndarray, iy: np.ndarray,
                  iz: np.ndarray) -> np.ndarray:
    """Interleave three 21-bit integer coordinates into Morton codes."""
    return (
        (_spread(np.asarray(ix)) << _U(2))
        | (_spread(np.asarray(iy)) << _U(1))
        | _spread(np.asarray(iz))
    )


def morton_decode(code: np.ndarray) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Recover the integer coordinates from Morton codes."""
    code = np.asarray(code, dtype=np.uint64)
    return (
        _compact(code >> _U(2)),
        _compact(code >> _U(1)),
        _compact(code),
    )


def quantize(pos: np.ndarray, lo: np.ndarray, hi: np.ndarray,
             depth: int = MAX_DEPTH) -> np.ndarray:
    """Map positions inside box [lo, hi) to integer grid coordinates."""
    if depth < 1 or depth > MAX_DEPTH:
        raise ValueError(f"depth must be 1..{MAX_DEPTH}")
    cells = 1 << depth
    span = np.maximum(hi - lo, 1e-300)
    scaled = (pos - lo) / span * cells
    grid = np.clip(scaled.astype(np.int64), 0, cells - 1)
    return grid


def particle_keys(pos: np.ndarray, lo: np.ndarray, hi: np.ndarray,
                  depth: int = MAX_DEPTH) -> np.ndarray:
    """Warren-Salmon keys at *depth* for particles in box [lo, hi).

    The key is ``(1 << 3*depth) | morton``, i.e. the sentinel bit
    followed by the interleaved coordinates - so keys of different
    depths never collide in the hash table.
    """
    grid = quantize(pos, lo, hi, depth)
    codes = morton_encode(grid[:, 0], grid[:, 1], grid[:, 2])
    return codes | (_U(1) << _U(3 * depth))


def key_level(key: int) -> int:
    """Tree depth of a cell key (root = 0)."""
    k = int(key)
    if k < 1:
        raise ValueError("keys are positive")
    return (k.bit_length() - 1) // 3


def parent_key(key: int) -> int:
    if int(key) == ROOT_KEY:
        raise ValueError("the root has no parent")
    return int(key) >> 3


def child_key(key: int, octant: int) -> int:
    if not 0 <= octant < 8:
        raise ValueError("octant must be 0..7")
    return (int(key) << 3) | octant


def ancestor_at_level(key: int, level: int) -> int:
    """The enclosing cell of *key* at the (shallower) *level*."""
    current = key_level(key)
    if level > current:
        raise ValueError("level deeper than key's own")
    return int(key) >> (3 * (current - level))


def cell_geometry(key: int, lo: np.ndarray, hi: np.ndarray,
                  depth: int = MAX_DEPTH) -> Tuple[np.ndarray, float]:
    """Geometric centre and edge length of a cell in world coordinates.

    *depth* is the quantisation depth used to build the particle keys.
    """
    level = key_level(key)
    code = np.uint64(int(key) & ~(1 << (3 * level)))
    # Promote the truncated code back to full depth to share decode.
    full = code << np.uint64(3 * (depth - level))
    ix, iy, iz = morton_decode(np.array([full]))
    cells = 1 << depth
    span = hi - lo
    size = span / (1 << level)
    origin = lo + np.array(
        [float(ix[0]), float(iy[0]), float(iz[0])]
    ) / cells * span
    centre = origin + 0.5 * size
    return centre, float(np.max(size))
