"""The key-hashed octree (Warren-Salmon style).

Cells are named by Morton-derived keys and stored in a hash table
(a dict), so any cell - and any particle's enclosing cell at any level -
is reachable in O(1) without pointer chasing.  Particles are sorted by
key once; every cell then owns a contiguous slice of the sorted arrays,
and multipole moments come from prefix sums in O(1) per cell.

Moments are monopole (mass + centre of mass); the acceptance criterion
in :mod:`repro.nbody.traversal` compensates with a conservative opening
angle, which is the standard Barnes-Hut trade-off.

Two layouts coexist and describe the same tree:

- the **hash table** of :class:`TreeNode` objects (``tree.nodes``),
  the random-access API the rest of the package navigates by key;
- **flat arrays** (``node_mass``, ``node_com``, ``node_size``,
  ``child_ptr``/``child_index``, ...) indexed by *creation order*,
  which the batched traversal gathers from without touching Python
  objects.  Creation order is exactly the depth-first pop order the
  per-group walk visits nodes in, so a node's flat index doubles as
  its DFS rank - sorting any subset of nodes by flat index reproduces
  the sequential walk's visit order.

Between integrator steps most of this work can be reused:
:class:`TreeBuildCache` keeps the last build and skips, in order of
how much it can prove unchanged: the whole tree (identical particles -
how the replicated-tree ranks of :mod:`repro.nbody.parallel` share one
build per step), the node topology (identical sorted keys), or just
the sort permutation (key order preserved, the common case for small
integrator steps).  Every reuse path produces bit-identical trees to a
from-scratch build; the cache only removes redundant work.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Tuple

import numpy as np

from repro.nbody.morton import (
    MAX_DEPTH,
    ROOT_KEY,
    ancestor_at_level,
    cell_geometry,
    key_level,
    morton_decode,
    particle_keys,
)

_EYE3 = np.eye(3)


@dataclass(slots=True)
class TreeNode:
    """One cell of the octree.

    Allocated in bulk (one per cell, every rebuild), hence
    ``slots=True``: no per-instance ``__dict__``.
    """

    key: int
    level: int
    lo: int                 # slice into the sorted particle arrays
    hi: int
    mass: float
    com: np.ndarray         # centre of mass (3,)
    centre: np.ndarray      # geometric cell centre (3,)
    size: float             # cell edge length
    is_leaf: bool
    #: position in creation (= depth-first visit) order; the node's
    #: index into the tree's flat ``node_*`` arrays.
    index: int = -1
    children: Tuple[int, ...] = ()
    #: Traceless quadrupole tensor (3x3) when the tree carries them.
    quadrupole: Optional[np.ndarray] = None

    @property
    def count(self) -> int:
        return self.hi - self.lo


class _Topology:
    """Node structure of one tree, independent of particle data.

    Everything here is a function of the *sorted key array* alone
    (plus ``leaf_size``/``depth``), so it is shared verbatim between a
    build and any later build over identical sorted keys.
    """

    __slots__ = ("key", "level", "lo", "hi", "is_leaf",
                 "child_ptr", "child_index", "leaf_order")

    def __init__(self, key, level, lo, hi, is_leaf,
                 child_ptr, child_index, leaf_order):
        self.key = key                  # (M,) uint64
        self.level = level              # (M,) int64
        self.lo = lo                    # (M,) int64
        self.hi = hi                    # (M,) int64
        self.is_leaf = is_leaf          # (M,) bool
        self.child_ptr = child_ptr      # (M+1,) int64 CSR offsets
        self.child_index = child_index  # flat child indices, octant order
        self.leaf_order = leaf_order    # leaf indices sorted by lo


class HashedOctree:
    """Builds and owns the hashed octree for one particle snapshot."""

    def __init__(self, pos: np.ndarray, mass: np.ndarray,
                 leaf_size: int = 16, depth: int = MAX_DEPTH,
                 bounds: Optional[Tuple[np.ndarray, np.ndarray]] = None,
                 quadrupoles: bool = False,
                 _order_hint: Optional[np.ndarray] = None,
                 _topology_hint: Optional[
                     Tuple[np.ndarray, "_Topology"]] = None):
        pos = np.asarray(pos, dtype=np.float64)
        mass = np.asarray(mass, dtype=np.float64)
        n = len(pos)
        if n == 0:
            raise ValueError("cannot build a tree with no particles")
        if pos.shape != (n, 3) or mass.shape != (n,):
            raise ValueError("pos must be (N,3) and mass (N,)")
        if leaf_size < 1:
            raise ValueError("leaf_size must be >= 1")
        self.leaf_size = leaf_size
        self.depth = min(depth, MAX_DEPTH)

        if bounds is None:
            lo = pos.min(axis=0)
            hi = pos.max(axis=0)
        else:
            lo, hi = (np.asarray(b, dtype=np.float64) for b in bounds)
        # Cubify with a little padding so every particle is interior.
        span = float(np.max(hi - lo)) or 1.0
        pad = 1e-6 * span
        centre = 0.5 * (lo + hi)
        half = 0.5 * span + pad
        self.box_lo = centre - half
        self.box_hi = centre + half

        keys = particle_keys(pos, self.box_lo, self.box_hi, self.depth)
        #: True when the cached sort permutation was still valid.
        self.order_reused = False
        order = None
        if _order_hint is not None and _order_hint.shape == keys.shape:
            if _stable_order_valid(keys, _order_hint):
                order = _order_hint
                self.order_reused = True
        if order is None:
            order = np.argsort(keys, kind="stable")
        self.order = order
        self.keys = keys[order]
        self.pos = pos[order]
        self.mass = mass[order]

        # Prefix sums make any cell's monopole O(1).
        self._cum_mass = np.concatenate(([0.0], np.cumsum(self.mass)))
        self._cum_mpos = np.concatenate(
            (np.zeros((1, 3)), np.cumsum(self.mass[:, None] * self.pos, axis=0))
        )
        #: Raw second moments (sum m x x^T) for quadrupole cells.
        self.quadrupoles_enabled = quadrupoles
        if quadrupoles:
            outer = (
                self.mass[:, None, None]
                * self.pos[:, :, None]
                * self.pos[:, None, :]
            )
            self._cum_m2 = np.concatenate(
                (np.zeros((1, 3, 3)), np.cumsum(outer, axis=0))
            )
        else:
            self._cum_m2 = None

        #: "built" | "topology_reuse" | "full_reuse" - how the last
        #: build of this tree object was satisfied.
        self.build_kind = "built"
        if (_topology_hint is not None
                and np.array_equal(self.keys, _topology_hint[0])):
            self._topology = _topology_hint[1]
            self.build_kind = "topology_reuse"
        else:
            self._topology = self._build_topology()

        self.nodes: Dict[int, TreeNode] = {}
        self._leaf_keys: List[int] = []
        self._finalize(self._topology)

    # -- construction ------------------------------------------------------

    def _build_topology(self) -> _Topology:
        """The stack walk: node slices, leaf flags and child lists.

        Creation (pop) order is the depth-first order the traversal
        visits nodes in; flat node indices are assigned in that order.
        """
        keys = self.keys
        n = len(keys)
        node_key: List[int] = []
        node_level: List[int] = []
        node_lo: List[int] = []
        node_hi: List[int] = []
        node_leaf: List[bool] = []
        parents: List[int] = []
        # (key, level, lo, hi, parent index)
        stack: List[Tuple[int, int, int, int, int]] = [
            (ROOT_KEY, 0, 0, n, -1)
        ]
        while stack:
            key, level, lo, hi, parent = stack.pop()
            index = len(node_key)
            count = hi - lo
            is_leaf = count <= self.leaf_size or level >= self.depth
            node_key.append(key)
            node_level.append(level)
            node_lo.append(lo)
            node_hi.append(hi)
            node_leaf.append(is_leaf)
            parents.append(parent)
            if is_leaf:
                continue
            shift = np.uint64(3 * (self.depth - level - 1))
            base = key << 3
            boundaries = [lo]
            for octant in range(1, 8):
                probe = np.uint64(base + octant) << shift
                boundaries.append(
                    lo + int(np.searchsorted(
                        keys[lo:hi], probe, side="left"
                    ))
                )
            boundaries.append(hi)
            for octant in range(8):
                clo, chi = boundaries[octant], boundaries[octant + 1]
                if chi > clo:
                    stack.append((base | octant, level + 1, clo, chi, index))

        m = len(node_key)
        child_lists: List[List[int]] = [[] for _ in range(m)]
        for index, parent in enumerate(parents):
            if parent >= 0:
                child_lists[parent].append(index)
        # A parent's children are created deepest-octant first (stack
        # pop order); the children tuple lists them octant-ascending.
        counts = np.empty(m, dtype=np.int64)
        flat: List[int] = []
        for index, lst in enumerate(child_lists):
            lst.reverse()
            counts[index] = len(lst)
            flat.extend(lst)
        child_ptr = np.concatenate(
            ([0], np.cumsum(counts))
        ).astype(np.int64)
        child_index = np.asarray(flat, dtype=np.int64)
        lo_arr = np.asarray(node_lo, dtype=np.int64)
        leaf_arr = np.asarray(node_leaf, dtype=bool)
        leaf_indices = np.flatnonzero(leaf_arr)
        leaf_order = leaf_indices[
            np.argsort(lo_arr[leaf_indices], kind="stable")
        ]
        return _Topology(
            key=np.asarray(node_key, dtype=np.uint64),
            level=np.asarray(node_level, dtype=np.int64),
            lo=lo_arr,
            hi=np.asarray(node_hi, dtype=np.int64),
            is_leaf=leaf_arr,
            child_ptr=child_ptr,
            child_index=child_index,
            leaf_order=leaf_order,
        )

    def _finalize(self, topo: _Topology) -> None:
        """Vectorised moments + geometry for every node at once.

        Elementwise-identical to evaluating ``_moments`` and
        :func:`repro.nbody.morton.cell_geometry` one node at a time
        (the pre-batching construction), so the resulting nodes are
        bit-identical - the equivalence tests assert as much.
        """
        lo, hi = topo.lo, topo.hi
        m = self._cum_mass[hi] - self._cum_mass[lo]
        positive = m > 0
        mid = 0.5 * (self.box_lo + self.box_hi)
        with np.errstate(invalid="ignore", divide="ignore"):
            com = (self._cum_mpos[hi] - self._cum_mpos[lo]) / m[:, None]
        com = np.where(positive[:, None], com, mid)
        mass = np.where(positive, m, 0.0)

        # Geometry: decode every node key in one shot.
        levels = topo.level
        sentinel = np.uint64(1) << (3 * levels).astype(np.uint64)
        code = topo.key & ~sentinel
        full = code << (3 * (self.depth - levels)).astype(np.uint64)
        ix, iy, iz = morton_decode(full)
        cells = 1 << self.depth
        span = self.box_hi - self.box_lo
        grid = np.stack(
            [ix.astype(np.float64), iy.astype(np.float64),
             iz.astype(np.float64)], axis=1,
        )
        origin = self.box_lo + grid / cells * span
        size_vec = span[None, :] / (2.0 ** levels)[:, None]
        centre = origin + 0.5 * size_vec
        size = np.max(size_vec, axis=1)

        quad = None
        if self.quadrupoles_enabled:
            second = self._cum_m2[hi] - self._cum_m2[lo]
            shifted = second - (
                mass[:, None, None] * (com[:, :, None] * com[:, None, :])
            )
            trace = shifted[:, 0, 0] + shifted[:, 1, 1] + shifted[:, 2, 2]
            quad = 3.0 * shifted - trace[:, None, None] * _EYE3

        self.node_key = topo.key
        self.node_level = levels
        self.node_lo = lo
        self.node_hi = hi
        self.node_is_leaf = topo.is_leaf
        self.node_mass = mass
        self.node_com = com
        self.node_centre = centre
        self.node_size = size
        self.node_quad = quad
        self.child_ptr = topo.child_ptr
        self.child_index = topo.child_index
        self.leaf_order = topo.leaf_order
        self.root_index = 0

        key_ints = topo.key.tolist()
        level_ints = topo.level.tolist()
        lo_ints = lo.tolist()
        hi_ints = hi.tolist()
        leaf_flags = topo.is_leaf.tolist()
        mass_floats = mass.tolist()
        size_floats = size.tolist()
        pos_flags = positive.tolist()
        cptr = topo.child_ptr
        cidx = topo.child_index
        nodes = self.nodes
        leaf_keys = self._leaf_keys
        for i, key in enumerate(key_ints):
            children = tuple(
                key_ints[j] for j in cidx[cptr[i]:cptr[i + 1]]
            )
            node = TreeNode(
                key=key,
                level=level_ints[i],
                lo=lo_ints[i],
                hi=hi_ints[i],
                mass=mass_floats[i],
                com=com[i],
                centre=centre[i],
                size=size_floats[i],
                is_leaf=leaf_flags[i],
                index=i,
                children=children,
                quadrupole=(
                    quad[i]
                    if quad is not None and pos_flags[i] else None
                ),
            )
            nodes[key] = node
            if leaf_flags[i]:
                leaf_keys.append(key)

    # -- queries -----------------------------------------------------------

    @property
    def root(self) -> TreeNode:
        return self.nodes[ROOT_KEY]

    @property
    def n_particles(self) -> int:
        return len(self.keys)

    def leaves(self) -> Iterator[TreeNode]:
        """Leaves in space-filling-curve order.

        Ordered by slice start: integer key order would interleave
        levels (a deeper key is numerically larger than every shallower
        one), but the slices tile [0, N) along the curve by construction.
        """
        key = self.node_key
        for i in self.leaf_order:
            yield self.nodes[int(key[i])]

    def node_count(self) -> int:
        return len(self.nodes)

    def lookup(self, key: int) -> TreeNode:
        """O(1) cell lookup by key - the point of the hashed design."""
        return self.nodes[key]

    def contains_key(self, key: int) -> bool:
        return key in self.nodes

    def enclosing_leaf(self, sorted_index: int) -> TreeNode:
        """The leaf owning the particle at *sorted_index*.

        Walks levels of the particle's own key through the hash table -
        no tree descent required.
        """
        pkey = int(self.keys[sorted_index])
        for level in range(self.depth + 1):
            candidate = ancestor_at_level(pkey, level)
            node = self.nodes.get(candidate)
            if node is not None and node.is_leaf:
                if node.lo <= sorted_index < node.hi:
                    return node
        raise KeyError(f"no leaf found for particle {sorted_index}")

    def unsort(self, values_sorted: np.ndarray) -> np.ndarray:
        """Map per-particle values from sorted order back to input order."""
        out = np.empty_like(values_sorted)
        out[self.order] = values_sorted
        return out

    def validate(self) -> None:
        """Structural invariants (used by the property-based tests)."""
        n = self.n_particles
        root = self.root
        if (root.lo, root.hi) != (0, n):
            raise AssertionError("root does not cover all particles")
        total_mass = float(np.sum(self.mass))
        if not np.isclose(root.mass, total_mass, rtol=1e-12):
            raise AssertionError("root mass != total mass")
        for node in self.nodes.values():
            if self.nodes[ancestor_at_level(node.key, key_level(node.key))
                          ] is not node:
                raise AssertionError("node key inconsistent with hash")
            if node.index < 0 or int(self.node_key[node.index]) != node.key:
                raise AssertionError("flat index out of sync with key")
            if node.is_leaf:
                if node.count > self.leaf_size and node.level < self.depth:
                    raise AssertionError("oversized leaf above max depth")
                continue
            spans = [
                (self.nodes[c].lo, self.nodes[c].hi) for c in node.children
            ]
            spans.sort()
            if not spans:
                raise AssertionError("internal node with no children")
            if spans[0][0] != node.lo or spans[-1][1] != node.hi:
                raise AssertionError("children do not tile the parent")
            for (a, b), (c, d) in zip(spans, spans[1:]):
                if b != c:
                    raise AssertionError("gap or overlap between children")
            child_mass = sum(self.nodes[c].mass for c in node.children)
            if not np.isclose(child_mass, node.mass, rtol=1e-9, atol=1e-12):
                raise AssertionError("child masses do not sum to parent")


def _stable_order_valid(keys: np.ndarray, order: np.ndarray) -> bool:
    """Would ``argsort(keys, kind="stable")`` return exactly *order*?

    True iff the keys are non-decreasing under *order* and every run of
    equal keys keeps the original indices ascending (the stable-sort
    tie rule).  O(N) versus the O(N log N) re-sort it avoids.
    """
    ks = keys[order]
    if ks.size <= 1:
        return True
    nondecreasing = ks[1:] >= ks[:-1]
    if not nondecreasing.all():
        return False
    ties = ks[1:] == ks[:-1]
    if not ties.any():
        return True
    return bool((order[1:][ties] > order[:-1][ties]).all())


class TreeBuildCache:
    """Incremental rebuilds: reuse whatever the last build proves valid.

    One cache serves one stream of snapshots (an integrator advancing a
    particle set, or the replicated-tree ranks of the parallel code all
    building the same step's tree).  ``build`` is a drop-in for the
    :class:`HashedOctree` constructor and returns bit-identical trees;
    the counters record how much work each call actually did:

    - **full reuse** - identical particles and parameters: the cached
      tree object is returned as-is;
    - **topology reuse** - identical sorted keys: the node structure
      (slices, children, leaf set) is shared and only moments and
      geometry are recomputed (vectorised);
    - **order reuse** - the cached sort permutation still stably sorts
      the new keys (particles barely move between integrator steps), so
      the O(N log N) argsort is skipped;
    - otherwise a **rebuild** runs from scratch.
    """

    def __init__(self) -> None:
        self._tree: Optional[HashedOctree] = None
        self._pos: Optional[np.ndarray] = None
        self._mass: Optional[np.ndarray] = None
        self._params: Optional[tuple] = None
        self._bounds: Optional[tuple] = None
        self.full_reuses = 0
        self.topology_reuses = 0
        self.order_reuses = 0
        self.rebuilds = 0

    @property
    def reuses(self) -> int:
        """Builds that skipped node construction entirely."""
        return self.full_reuses + self.topology_reuses

    def build(self, pos: np.ndarray, mass: np.ndarray,
              leaf_size: int = 16, depth: int = MAX_DEPTH,
              bounds: Optional[Tuple[np.ndarray, np.ndarray]] = None,
              quadrupoles: bool = False) -> HashedOctree:
        pos = np.asarray(pos, dtype=np.float64)
        mass = np.asarray(mass, dtype=np.float64)
        params = (leaf_size, min(depth, MAX_DEPTH), quadrupoles)
        bounds_key = (
            None if bounds is None else
            (np.asarray(bounds[0], dtype=np.float64).tobytes(),
             np.asarray(bounds[1], dtype=np.float64).tobytes())
        )
        comparable = (
            self._tree is not None
            and self._params == params
            and self._bounds == bounds_key
            and self._pos.shape == pos.shape
        )
        if (comparable and np.array_equal(pos, self._pos)
                and np.array_equal(mass, self._mass)):
            self.full_reuses += 1
            tree = self._tree
            tree.build_kind = "full_reuse"
            return tree
        order_hint = self._tree.order if comparable else None
        topology_hint = (
            (self._tree.keys, self._tree._topology) if comparable else None
        )
        tree = HashedOctree(
            pos, mass, leaf_size=leaf_size, depth=depth, bounds=bounds,
            quadrupoles=quadrupoles, _order_hint=order_hint,
            _topology_hint=topology_hint,
        )
        if tree.build_kind == "topology_reuse":
            self.topology_reuses += 1
        else:
            self.rebuilds += 1
        if tree.order_reused:
            self.order_reuses += 1
        self._tree = tree
        self._pos = pos.copy()
        self._mass = mass.copy()
        self._params = params
        self._bounds = bounds_key
        return tree
