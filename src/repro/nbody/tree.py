"""The key-hashed octree (Warren-Salmon style).

Cells are named by Morton-derived keys and stored in a hash table
(a dict), so any cell - and any particle's enclosing cell at any level -
is reachable in O(1) without pointer chasing.  Particles are sorted by
key once; every cell then owns a contiguous slice of the sorted arrays,
and multipole moments come from prefix sums in O(1) per cell.

Moments are monopole (mass + centre of mass); the acceptance criterion
in :mod:`repro.nbody.traversal` compensates with a conservative opening
angle, which is the standard Barnes-Hut trade-off.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Tuple

import numpy as np

from repro.nbody.morton import (
    MAX_DEPTH,
    ROOT_KEY,
    ancestor_at_level,
    cell_geometry,
    key_level,
    particle_keys,
)


@dataclass
class TreeNode:
    """One cell of the octree."""

    key: int
    level: int
    lo: int                 # slice into the sorted particle arrays
    hi: int
    mass: float
    com: np.ndarray         # centre of mass (3,)
    centre: np.ndarray      # geometric cell centre (3,)
    size: float             # cell edge length
    is_leaf: bool
    children: Tuple[int, ...] = ()
    #: Traceless quadrupole tensor (3x3) when the tree carries them.
    quadrupole: Optional[np.ndarray] = None

    @property
    def count(self) -> int:
        return self.hi - self.lo


class HashedOctree:
    """Builds and owns the hashed octree for one particle snapshot."""

    def __init__(self, pos: np.ndarray, mass: np.ndarray,
                 leaf_size: int = 16, depth: int = MAX_DEPTH,
                 bounds: Optional[Tuple[np.ndarray, np.ndarray]] = None,
                 quadrupoles: bool = False):
        pos = np.asarray(pos, dtype=np.float64)
        mass = np.asarray(mass, dtype=np.float64)
        n = len(pos)
        if n == 0:
            raise ValueError("cannot build a tree with no particles")
        if pos.shape != (n, 3) or mass.shape != (n,):
            raise ValueError("pos must be (N,3) and mass (N,)")
        if leaf_size < 1:
            raise ValueError("leaf_size must be >= 1")
        self.leaf_size = leaf_size
        self.depth = min(depth, MAX_DEPTH)

        if bounds is None:
            lo = pos.min(axis=0)
            hi = pos.max(axis=0)
        else:
            lo, hi = (np.asarray(b, dtype=np.float64) for b in bounds)
        # Cubify with a little padding so every particle is interior.
        span = float(np.max(hi - lo)) or 1.0
        pad = 1e-6 * span
        centre = 0.5 * (lo + hi)
        half = 0.5 * span + pad
        self.box_lo = centre - half
        self.box_hi = centre + half

        keys = particle_keys(pos, self.box_lo, self.box_hi, self.depth)
        self.order = np.argsort(keys, kind="stable")
        self.keys = keys[self.order]
        self.pos = pos[self.order]
        self.mass = mass[self.order]

        # Prefix sums make any cell's monopole O(1).
        self._cum_mass = np.concatenate(([0.0], np.cumsum(self.mass)))
        self._cum_mpos = np.concatenate(
            (np.zeros((1, 3)), np.cumsum(self.mass[:, None] * self.pos, axis=0))
        )
        #: Raw second moments (sum m x x^T) for quadrupole cells.
        self.quadrupoles_enabled = quadrupoles
        if quadrupoles:
            outer = (
                self.mass[:, None, None]
                * self.pos[:, :, None]
                * self.pos[:, None, :]
            )
            self._cum_m2 = np.concatenate(
                (np.zeros((1, 3, 3)), np.cumsum(outer, axis=0))
            )
        else:
            self._cum_m2 = None

        self.nodes: Dict[int, TreeNode] = {}
        self._leaf_keys: List[int] = []
        self._build()

    # -- construction ------------------------------------------------------

    def _moments(self, lo: int, hi: int) -> Tuple[float, np.ndarray]:
        m = self._cum_mass[hi] - self._cum_mass[lo]
        if m <= 0:
            return 0.0, 0.5 * (self.box_lo + self.box_hi)
        com = (self._cum_mpos[hi] - self._cum_mpos[lo]) / m
        return float(m), com

    def _make_node(self, key: int, level: int, lo: int, hi: int,
                   is_leaf: bool) -> TreeNode:
        mass, com = self._moments(lo, hi)
        centre, size = cell_geometry(key, self.box_lo, self.box_hi, self.depth)
        quad = None
        if self.quadrupoles_enabled and mass > 0:
            from repro.nbody.multipole import quadrupole_from_sums
            second = self._cum_m2[hi] - self._cum_m2[lo]
            quad = quadrupole_from_sums(mass, com, second)
        node = TreeNode(
            key=key, level=level, lo=lo, hi=hi, mass=mass, com=com,
            centre=centre, size=size, is_leaf=is_leaf, quadrupole=quad,
        )
        self.nodes[key] = node
        if is_leaf:
            self._leaf_keys.append(key)
        return node

    def _build(self) -> None:
        n = len(self.keys)
        stack: List[Tuple[int, int, int, int]] = [(ROOT_KEY, 0, 0, n)]
        while stack:
            key, level, lo, hi = stack.pop()
            count = hi - lo
            if count <= self.leaf_size or level >= self.depth:
                self._make_node(key, level, lo, hi, is_leaf=True)
                continue
            node = self._make_node(key, level, lo, hi, is_leaf=False)
            shift = np.uint64(3 * (self.depth - level - 1))
            children: List[int] = []
            boundaries = [lo]
            base = (key << 3)
            for octant in range(1, 8):
                probe = np.uint64(base + octant) << shift
                boundaries.append(
                    lo + int(np.searchsorted(
                        self.keys[lo:hi], probe, side="left"
                    ))
                )
            boundaries.append(hi)
            for octant in range(8):
                clo, chi = boundaries[octant], boundaries[octant + 1]
                if chi > clo:
                    ckey = base | octant
                    children.append(ckey)
                    stack.append((ckey, level + 1, clo, chi))
            node.children = tuple(children)

    # -- queries -----------------------------------------------------------

    @property
    def root(self) -> TreeNode:
        return self.nodes[ROOT_KEY]

    @property
    def n_particles(self) -> int:
        return len(self.keys)

    def leaves(self) -> Iterator[TreeNode]:
        """Leaves in space-filling-curve order.

        Ordered by slice start: integer key order would interleave
        levels (a deeper key is numerically larger than every shallower
        one), but the slices tile [0, N) along the curve by construction.
        """
        for key in sorted(self._leaf_keys,
                          key=lambda k: self.nodes[k].lo):
            yield self.nodes[key]

    def node_count(self) -> int:
        return len(self.nodes)

    def lookup(self, key: int) -> TreeNode:
        """O(1) cell lookup by key - the point of the hashed design."""
        return self.nodes[key]

    def contains_key(self, key: int) -> bool:
        return key in self.nodes

    def enclosing_leaf(self, sorted_index: int) -> TreeNode:
        """The leaf owning the particle at *sorted_index*.

        Walks levels of the particle's own key through the hash table -
        no tree descent required.
        """
        pkey = int(self.keys[sorted_index])
        for level in range(self.depth + 1):
            candidate = ancestor_at_level(pkey, level)
            node = self.nodes.get(candidate)
            if node is not None and node.is_leaf:
                if node.lo <= sorted_index < node.hi:
                    return node
        raise KeyError(f"no leaf found for particle {sorted_index}")

    def unsort(self, values_sorted: np.ndarray) -> np.ndarray:
        """Map per-particle values from sorted order back to input order."""
        out = np.empty_like(values_sorted)
        out[self.order] = values_sorted
        return out

    def validate(self) -> None:
        """Structural invariants (used by the property-based tests)."""
        n = self.n_particles
        root = self.root
        if (root.lo, root.hi) != (0, n):
            raise AssertionError("root does not cover all particles")
        total_mass = float(np.sum(self.mass))
        if not np.isclose(root.mass, total_mass, rtol=1e-12):
            raise AssertionError("root mass != total mass")
        for node in self.nodes.values():
            if node.is_leaf:
                if node.count > self.leaf_size and node.level < self.depth:
                    raise AssertionError("oversized leaf above max depth")
                continue
            spans = [
                (self.nodes[c].lo, self.nodes[c].hi) for c in node.children
            ]
            spans.sort()
            if not spans:
                raise AssertionError("internal node with no children")
            if spans[0][0] != node.lo or spans[-1][1] != node.hi:
                raise AssertionError("children do not tile the parent")
            for (a, b), (c, d) in zip(spans, spans[1:]):
                if b != c:
                    raise AssertionError("gap or overlap between children")
            child_mass = sum(self.nodes[c].mass for c in node.children)
            if not np.isclose(child_mass, node.mass, rtol=1e-9, atol=1e-12):
                raise AssertionError("child masses do not sum to parent")
