"""Gravitational N-body workloads: microkernel, treecode, simulations.

The paper evaluates MetaBlade with the Warren-Salmon hashed oct-tree
N-body code (Section 3.3/3.5); this package is a NumPy implementation of
that stack:

- :mod:`~repro.nbody.karp` - Karp's reciprocal square root (table
  lookup + interpolation + Newton-Raphson), the Table 1 microkernel;
- :mod:`~repro.nbody.kernels` - direct O(N^2) interaction kernels with
  flop accounting (the golden reference for forces);
- :mod:`~repro.nbody.morton` / :mod:`~repro.nbody.tree` - Morton keys
  and the key-hashed octree;
- :mod:`~repro.nbody.traversal` - group-MAC Barnes-Hut force walks;
- :mod:`~repro.nbody.ic` / :mod:`~repro.nbody.integrator` /
  :mod:`~repro.nbody.sim` - initial conditions, leapfrog, and the
  simulation driver (Figure 3 / Section 3.3 Gflops accounting);
- :mod:`~repro.nbody.parallel` - the SPMD treecode over SimMPI
  (Table 2 scalability);
- :mod:`~repro.nbody.multipole` / :mod:`~repro.nbody.vortex` /
  :mod:`~repro.nbody.sph` - the library's extension surface:
  quadrupole moments and the two other clients the paper cites
  (vortex particle method, smoothed particle hydrodynamics).
"""

from repro.nbody.karp import karp_rsqrt, KarpTable
from repro.nbody.kernels import (
    INTERACTION_FLOPS,
    direct_accelerations,
    direct_potential,
)
from repro.nbody.morton import morton_encode, morton_decode, particle_keys
from repro.nbody.tree import HashedOctree, TreeNode
from repro.nbody.traversal import tree_accelerations, TraversalStats
from repro.nbody.ic import plummer_sphere, uniform_cube, two_clusters
from repro.nbody.integrator import leapfrog_step, total_energy
from repro.nbody.sim import NBodySimulation, SimConfig, density_image
from repro.nbody.parallel import parallel_nbody_step, scaling_study
from repro.nbody.multipole import quadrupole_tensor
from repro.nbody.vortex import VortexSystem, vortex_ring
from repro.nbody.sph import SphSystem, ball_query

__all__ = [
    "HashedOctree",
    "INTERACTION_FLOPS",
    "KarpTable",
    "NBodySimulation",
    "SimConfig",
    "SphSystem",
    "VortexSystem",
    "TraversalStats",
    "TreeNode",
    "density_image",
    "direct_accelerations",
    "direct_potential",
    "karp_rsqrt",
    "leapfrog_step",
    "morton_decode",
    "morton_encode",
    "parallel_nbody_step",
    "particle_keys",
    "ball_query",
    "plummer_sphere",
    "quadrupole_tensor",
    "scaling_study",
    "total_energy",
    "tree_accelerations",
    "two_clusters",
    "uniform_cube",
    "vortex_ring",
]
