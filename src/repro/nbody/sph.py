"""Smoothed particle hydrodynamics on the shared tree library.

Paper Section 3.5.1: "Smoothed particle hydrodynamics takes 3000 lines"
interfaced to the same treecode library.  This client implements the
SPH kernel-estimation core - density summation and symmetrised pressure
acceleration - with neighbour search done by **ball queries against the
hashed octree** (cells whose bounding spheres miss the query ball are
pruned; leaves inside are gathered).

Kernel: the standard cubic spline (Monaghan & Lattanzio 1985),

    W(q) = sigma * (1 - 1.5 q^2 + 0.75 q^3)        0 <= q < 1
         = sigma * 0.25 (2 - q)^3                  1 <= q < 2
         = 0                                       q >= 2

with q = r/h and sigma = 1/(pi h^3) in 3-D; support radius 2h.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from repro.nbody.tree import HashedOctree


def cubic_spline(q: np.ndarray, h: float) -> np.ndarray:
    """W(q = r/h) for the 3-D cubic spline."""
    sigma = 1.0 / (np.pi * h ** 3)
    w = np.zeros_like(q)
    inner = q < 1.0
    outer = (q >= 1.0) & (q < 2.0)
    w[inner] = 1.0 - 1.5 * q[inner] ** 2 + 0.75 * q[inner] ** 3
    w[outer] = 0.25 * (2.0 - q[outer]) ** 3
    return sigma * w


def cubic_spline_gradient_factor(q: np.ndarray, h: float) -> np.ndarray:
    """dW/dr divided by r (so grad W = factor * (r_i - r_j))."""
    sigma = 1.0 / (np.pi * h ** 3)
    out = np.zeros_like(q)
    inner = (q > 0) & (q < 1.0)
    outer = (q >= 1.0) & (q < 2.0)
    qi = q[inner]
    out[inner] = sigma * (-3.0 + 2.25 * qi) / (h * h)
    qo = q[outer]
    out[outer] = sigma * (-0.75 * (2.0 - qo) ** 2) / (qo * h * h)
    return out


def ball_query(tree: HashedOctree, centre: np.ndarray,
               radius: float) -> np.ndarray:
    """Sorted-order indices of particles within *radius* of *centre*.

    Walks the octree, pruning any cell whose bounding sphere cannot
    intersect the query ball - the neighbour search that makes SPH
    O(N log N) on the same structure gravity uses.
    """
    hits: List[np.ndarray] = []
    stack = [tree.root]
    half_diag = 0.5 * np.sqrt(3.0)
    while stack:
        node = stack.pop()
        dist = float(np.linalg.norm(node.centre - centre))
        if dist > radius + half_diag * node.size:
            continue
        if node.is_leaf:
            pts = tree.pos[node.lo:node.hi]
            d2 = ((pts - centre) ** 2).sum(axis=1)
            local = np.flatnonzero(d2 <= radius * radius)
            if local.size:
                hits.append(local + node.lo)
            continue
        for ckey in node.children:
            stack.append(tree.nodes[ckey])
    if not hits:
        return np.empty(0, dtype=np.int64)
    return np.sort(np.concatenate(hits))


@dataclass
class SphSystem:
    """SPH particle set with tree-accelerated neighbour interactions."""

    pos: np.ndarray
    mass: np.ndarray
    h: float                       # smoothing length (support = 2h)
    leaf_size: int = 16

    def __post_init__(self) -> None:
        self.pos = np.asarray(self.pos, dtype=np.float64)
        self.mass = np.asarray(self.mass, dtype=np.float64)
        if self.h <= 0:
            raise ValueError("smoothing length must be positive")
        n = len(self.pos)
        if self.pos.shape != (n, 3) or self.mass.shape != (n,):
            raise ValueError("pos must be (N,3) and mass (N,)")
        self.tree = HashedOctree(
            self.pos, self.mass, leaf_size=self.leaf_size
        )

    # -- density -------------------------------------------------------------

    def densities(self) -> Tuple[np.ndarray, int]:
        """SPH densities via per-leaf tree ball queries.

        Returns ``(rho, pair_interactions)`` in original particle order.
        """
        tree = self.tree
        support = 2.0 * self.h
        rho_sorted = np.zeros(tree.n_particles)
        pairs = 0
        for leaf in tree.leaves():
            if leaf.count == 0:
                continue
            targets = tree.pos[leaf.lo:leaf.hi]
            centre, radius = _leaf_ball(tree, leaf)
            nbr = ball_query(tree, centre, radius + support)
            src = tree.pos[nbr]
            src_mass = tree.mass[nbr]
            diff = targets[:, None, :] - src[None, :, :]
            r = np.sqrt(np.einsum("tsk,tsk->ts", diff, diff))
            w = cubic_spline(r / self.h, self.h)
            rho_sorted[leaf.lo:leaf.hi] = w @ src_mass
            pairs += int((w > 0).sum())
        return tree.unsort(rho_sorted), pairs

    def densities_direct(self) -> np.ndarray:
        """O(N^2) reference density (for validation)."""
        n = len(self.pos)
        rho = np.zeros(n)
        chunk = 256
        for lo in range(0, n, chunk):
            hi = min(lo + chunk, n)
            diff = self.pos[lo:hi, None, :] - self.pos[None, :, :]
            r = np.sqrt(np.einsum("tsk,tsk->ts", diff, diff))
            rho[lo:hi] = cubic_spline(r / self.h, self.h) @ self.mass
        return rho

    # -- pressure forces -------------------------------------------------------

    def pressure_accelerations(
        self, rho: np.ndarray, pressure: np.ndarray
    ) -> np.ndarray:
        """Symmetrised SPH pressure gradient (momentum-conserving form).

        a_i = -sum_j m_j (P_i/rho_i^2 + P_j/rho_j^2) grad_i W_ij
        """
        tree = self.tree
        support = 2.0 * self.h
        rho_s = rho[tree.order]
        p_s = pressure[tree.order]
        acc_sorted = np.zeros_like(tree.pos)
        for leaf in tree.leaves():
            if leaf.count == 0:
                continue
            targets = tree.pos[leaf.lo:leaf.hi]
            centre, radius = _leaf_ball(tree, leaf)
            nbr = ball_query(tree, centre, radius + support)
            diff = targets[:, None, :] - tree.pos[nbr][None, :, :]
            r = np.sqrt(np.einsum("tsk,tsk->ts", diff, diff))
            gradf = cubic_spline_gradient_factor(r / self.h, self.h)
            ti = slice(leaf.lo, leaf.hi)
            sym = (
                p_s[ti, None] / rho_s[ti, None] ** 2
                + p_s[None, nbr] / rho_s[None, nbr] ** 2
            )
            weights = -tree.mass[nbr][None, :] * sym * gradf
            acc_sorted[ti] = np.einsum("ts,tsk->tk", weights, diff)
        return tree.unsort(acc_sorted)


def _leaf_ball(tree: HashedOctree, leaf) -> Tuple[np.ndarray, float]:
    pts = tree.pos[leaf.lo:leaf.hi]
    centre = pts.mean(axis=0)
    radius = float(np.sqrt(((pts - centre) ** 2).sum(axis=1).max()))
    return centre, radius
