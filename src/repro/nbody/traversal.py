"""Barnes-Hut force walks over the hashed octree.

For every leaf cell the walk assembles two interaction lists:

- **cell interactions**: nodes whose monopole satisfies the group
  multipole-acceptance criterion (MAC) with respect to the whole leaf
  group;
- **direct interactions**: particles of leaf cells that had to be
  opened to the bottom (softened, so the self term vanishes naturally).

The MAC is the group-radius form: accept a node of edge ``s`` at
centre-of-mass distance ``d`` from the group centre when

    s / (d - r_group) < theta

which is conservative for every particle in the group.  Ancestors of
the group are always opened regardless.

Two implementations of the same walk coexist:

- the **batched** path (default): one frontier of ``(group, node)``
  pairs descends all groups simultaneously in NumPy; the surviving
  interaction pairs are then evaluated in large flat arrays with
  segment reductions.  No per-group Python work, no per-group small
  allocations.
- the **naive** path (``naive=True``): the original one-group-at-a-time
  walk, kept as the executable reference.

The two are bit-identical - same accelerations, same interaction
counts, same ``group_work`` records - which the equivalence tests
assert.  The batched evaluator is careful to replicate the reference
path's floating-point operation order: distances use the same einsum
contraction, per-target reductions use ``np.bincount`` (sequential
accumulation in pair order, matching einsum's inner loop), pairs are
laid out target-major with sources in depth-first tree order (the
order the sequential walk appends them in), and chunking always splits
between targets, never inside one.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.nbody.karp import karp_rsqrt, masked_rsqrt
from repro.nbody.kernels import INTERACTION_FLOPS
from repro.nbody.morton import ancestor_at_level
from repro.nbody.multipole import quadrupole_acceleration
from repro.nbody.tree import HashedOctree, TreeNode

#: Shared zero-safe reciprocal square root (see :mod:`repro.nbody.karp`).
_rsqrt = masked_rsqrt

#: Pair-batch size for the batched evaluators.  Sized so one batch's
#: working set stays cache-resident; batches always end on a target
#: boundary so partial accumulation never changes any summation order.
_PAIR_CHUNK = 1 << 16


@dataclass
class TraversalStats:
    """Work accounting for one full force evaluation."""

    particle_cell: int = 0
    particle_particle: int = 0
    groups: int = 0
    nodes_opened: int = 0
    #: tree builds that ran the full node construction vs. builds that
    #: reused the previous step's structure (see
    #: :class:`repro.nbody.tree.TreeBuildCache`).
    tree_rebuilds: int = 0
    tree_reuses: int = 0
    #: per-group records ``(lo, hi, interactions)`` in sorted index
    #: space - the raw material of work-based decomposition.
    group_work: List[Tuple[int, int, int]] = field(default_factory=list)

    @property
    def interactions(self) -> int:
        return self.particle_cell + self.particle_particle

    @property
    def flops(self) -> int:
        return self.interactions * INTERACTION_FLOPS

    def merge(self, other: "TraversalStats") -> None:
        self.particle_cell += other.particle_cell
        self.particle_particle += other.particle_particle
        self.groups += other.groups
        self.nodes_opened += other.nodes_opened
        self.tree_rebuilds += other.tree_rebuilds
        self.tree_reuses += other.tree_reuses

    def publish_metrics(self, registry) -> None:
        """Fold this evaluation's work counters into a telemetry Registry."""
        registry.counter("nbody.particle_cell").inc(self.particle_cell)
        registry.counter("nbody.particle_particle").inc(
            self.particle_particle
        )
        registry.counter("nbody.groups").inc(self.groups)
        registry.counter("nbody.nodes_opened").inc(self.nodes_opened)
        registry.counter("nbody.tree_rebuilds").inc(self.tree_rebuilds)
        registry.counter("nbody.tree_reuses").inc(self.tree_reuses)
        registry.counter("nbody.flops").inc(self.flops)
        for lo, hi, interactions in self.group_work:
            registry.histogram("nbody.group_interactions").observe(
                interactions
            )


def _group_geometry(tree: HashedOctree,
                    leaf: TreeNode) -> Tuple[np.ndarray, float]:
    """Centroid and enclosing radius of a leaf group's particles."""
    pts = tree.pos[leaf.lo:leaf.hi]
    centre = pts.mean(axis=0)
    radius = float(np.sqrt(((pts - centre) ** 2).sum(axis=1).max()))
    return centre, radius


def _is_ancestor(node: TreeNode, leaf: TreeNode) -> bool:
    if node.level > leaf.level:
        return False
    return ancestor_at_level(leaf.key, node.level) == node.key


def interaction_lists(
    tree: HashedOctree, leaf: TreeNode, theta: float,
    stats: Optional[TraversalStats] = None,
) -> Tuple[List[TreeNode], List[TreeNode]]:
    """Walk the tree for one leaf group; returns (cells, direct_leaves).

    The reference (naive) walk.  The batched walk reproduces its visit
    set exactly; list order here is depth-first pop order, which equals
    ascending flat node index.
    """
    centre, radius = _group_geometry(tree, leaf)
    cells: List[TreeNode] = []
    direct: List[TreeNode] = []
    stack: List[TreeNode] = [tree.root]
    while stack:
        node = stack.pop()
        if node.mass <= 0.0:
            continue
        if node.is_leaf:
            direct.append(node)
            continue
        if not _is_ancestor(node, leaf):
            dv = node.com - centre
            d = float(np.sqrt(np.einsum("i,i->", dv, dv)))
            margin = d - radius
            if margin > 0.0 and node.size < theta * margin:
                cells.append(node)
                continue
        if stats is not None:
            stats.nodes_opened += 1
        for ckey in node.children:
            stack.append(tree.nodes[ckey])
    return cells, direct


def _evaluate_group(
    tree: HashedOctree, leaf: TreeNode,
    cells: List[TreeNode], direct: List[TreeNode],
    softening: float, g: float, use_karp: bool,
    stats: TraversalStats, use_quadrupole: bool = False,
) -> np.ndarray:
    """Reference per-group evaluation (one NumPy expression per list)."""
    targets = tree.pos[leaf.lo:leaf.hi]
    acc = np.zeros_like(targets)
    eps2 = softening * softening

    if cells:
        coms = np.array([c.com for c in cells])            # (m, 3)
        masses = np.array([c.mass for c in cells])         # (m,)
        diff = coms[None, :, :] - targets[:, None, :]      # (g, m, 3)
        r2 = np.einsum("ijk,ijk->ij", diff, diff) + eps2
        rinv = _rsqrt(r2, use_karp)
        rinv3 = rinv * rinv * rinv
        acc += g * np.einsum("ij,ijk->ik", masses * rinv3, diff)
        stats.particle_cell += targets.shape[0] * len(cells)
        if use_quadrupole:
            quads = np.array([c.quadrupole for c in cells])
            acc += quadrupole_acceleration(diff, rinv, quads, g).sum(axis=1)
            # The expansion term costs roughly another interaction's
            # worth of flops per particle-cell pair.
            stats.particle_cell += targets.shape[0] * len(cells)

    if direct:
        idx = np.concatenate(
            [np.arange(n.lo, n.hi) for n in direct]
        )
        src_pos = tree.pos[idx]
        src_mass = tree.mass[idx]
        diff = src_pos[None, :, :] - targets[:, None, :]
        r2 = np.einsum("ijk,ijk->ij", diff, diff) + eps2
        rinv = _rsqrt(r2, use_karp)
        rinv3 = rinv * rinv * rinv
        # Self-pairs have diff = 0 and contribute nothing.
        acc += g * np.einsum("ij,ijk->ik", src_mass * rinv3, diff)
        stats.particle_particle += targets.shape[0] * len(idx)

    return acc


# -- batched fast path -----------------------------------------------------


def _concat_ranges(starts: np.ndarray, counts: np.ndarray,
                   scratch: Optional[str] = None) -> np.ndarray:
    """``concatenate([arange(s, s + c) for s, c in zip(starts, counts)])``
    without the Python loop.

    With *scratch*, the result is a view into the named persistent
    buffer: only for callers that consume it before the same name is
    requested again - never for arrays that escape this module.
    """
    total = int(counts.sum())
    if total == 0:
        return np.empty(0, dtype=np.int64)
    ends = np.cumsum(counts)
    if len(counts) > 1 and int(counts.min()) > 0:
        # All ranges non-empty: emit per-element deltas (+1 inside a
        # range, a jump at each range start) and integrate once -
        # three linear passes instead of two repeats plus arithmetic.
        if scratch is not None:
            deltas = _scratch(scratch, total, np.int64)[:total]
            deltas.fill(1)
        else:
            deltas = np.ones(total, dtype=np.int64)
        deltas[0] = starts[0]
        deltas[ends[:-1]] = starts[1:] - (starts[:-1] + counts[:-1] - 1)
        return np.cumsum(deltas, out=deltas)
    offsets = np.arange(total, dtype=np.int64) - np.repeat(ends - counts,
                                                           counts)
    return np.repeat(starts, counts) + offsets


def _sorted_pairs(
    g_parts: List[np.ndarray], n_parts: List[np.ndarray]
) -> Tuple[np.ndarray, np.ndarray]:
    """Concatenate per-depth (group, node) chunks, sorted by group then
    node.  The pairs are unique (a node enters a group's list at most
    once) and both ids fit in 32 bits, so packing them into one int64
    key and running a single unstable sort reproduces the stable
    lexsort order at a fraction of its cost.
    """
    if not g_parts:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty
    combo = np.concatenate(g_parts)
    combo <<= np.int64(32)
    combo |= np.concatenate(n_parts)
    combo.sort()
    return combo >> np.int64(32), combo & np.int64(0xFFFFFFFF)


def _batched_interaction_pairs(
    tree: HashedOctree,
    leaf_idx: np.ndarray,
    theta: float,
    centres: np.ndarray,
    radii: np.ndarray,
    stats: TraversalStats,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """One frontier walk for all groups at once.

    Returns ``(cell_nodes, cell_count, direct_src, direct_count)``:
    concatenated per-group cell node indices (each group's run sorted
    by flat node index = depth-first order) with per-group counts, and
    likewise concatenated direct-source particle indices.
    """
    node_key = tree.node_key
    node_level = tree.node_level
    node_mass = tree.node_mass
    node_com = tree.node_com
    node_size = tree.node_size
    node_is_leaf = tree.node_is_leaf
    child_ptr = tree.child_ptr
    child_index = tree.child_index

    n_groups = len(leaf_idx)
    leaf_key = node_key[leaf_idx]
    leaf_level = node_level[leaf_idx]

    gidx = np.arange(n_groups, dtype=np.int64)
    nidx = np.full(n_groups, tree.root_index, dtype=np.int64)
    cell_g: List[np.ndarray] = []
    cell_n: List[np.ndarray] = []
    dir_g: List[np.ndarray] = []
    dir_n: List[np.ndarray] = []
    opened = 0
    while gidx.size:
        keep = node_mass[nidx] > 0.0
        gidx, nidx = gidx[keep], nidx[keep]
        if not gidx.size:
            break
        at_leaf = node_is_leaf[nidx]
        if at_leaf.any():
            dir_g.append(gidx[at_leaf])
            dir_n.append(nidx[at_leaf])
        gi, ni = gidx[~at_leaf], nidx[~at_leaf]
        if not gi.size:
            break
        # Ancestors of the group are always opened.
        lvl = node_level[ni]
        gl = leaf_level[gi]
        shift = (3 * np.maximum(gl - lvl, 0)).astype(np.uint64)
        ancestor = (lvl <= gl) & ((leaf_key[gi] >> shift) == node_key[ni])
        # Group-radius MAC, same einsum contraction as the naive walk.
        dv = node_com[ni] - centres[gi]
        d = np.sqrt(np.einsum("ij,ij->i", dv, dv))
        margin = d - radii[gi]
        accept = ~ancestor & (margin > 0.0) & (node_size[ni] < theta * margin)
        if accept.any():
            cell_g.append(gi[accept])
            cell_n.append(ni[accept])
        go, no = gi[~accept], ni[~accept]
        opened += go.size
        counts = child_ptr[no + 1] - child_ptr[no]
        nidx = child_index[_concat_ranges(child_ptr[no], counts, "cr_walk")]
        gidx = np.repeat(go, counts)
    stats.nodes_opened += opened

    # Frontier order is breadth-first; the sequential walk appends in
    # depth-first pop order, which equals ascending flat node index
    # (nodes are created in pop order).  Sorting each group's pairs by
    # node index therefore restores the exact sequential list order.
    # A node appears at most once per group, so the fused (group, node)
    # keys are unique and one unstable sort of the packed key replaces
    # the two stable passes of a lexsort.
    cg, cn = _sorted_pairs(cell_g, cell_n)
    cell_count = np.bincount(cg, minlength=n_groups).astype(np.int64)

    dg, dn = _sorted_pairs(dir_g, dir_n)
    src_counts = tree.node_hi[dn] - tree.node_lo[dn]
    direct_src = _concat_ranges(tree.node_lo[dn], src_counts,
                                "cr_direct_src")
    # Exact in float64: counts are far below 2**53.
    direct_count = np.bincount(
        dg, weights=src_counts, minlength=n_groups
    ).astype(np.int64)
    return cn, cell_count, direct_src, direct_count


def _fast_rsqrt(r2: np.ndarray, use_karp: bool, positive: bool) -> np.ndarray:
    """``masked_rsqrt`` minus the positivity scan when ``positive``.

    The batched evaluators know ``r2 = |d|^2 + eps2 >= eps2 > 0``
    whenever softening is nonzero, so the mask pass can be skipped;
    the values computed are identical either way.
    """
    if not positive:
        return masked_rsqrt(r2, use_karp)
    if use_karp:
        return karp_rsqrt(r2)
    out = np.sqrt(r2)
    np.divide(1.0, out, out=out)
    return out


#: Persistent scratch buffers for the batched evaluators.  The block
#: arithmetic is memory-bound, and re-acquiring megabytes from the
#: allocator on every force evaluation measurably dominates the block
#: math itself; keeping the arenas alive across calls removes that.
#: Values are only ever read through freshly written views, so reuse
#: cannot leak state between evaluations.  (Not thread-safe, like the
#: rest of this module.)
_SCRATCH: dict = {}


def _scratch(name: str, size: int, dtype) -> np.ndarray:
    """A flat persistent buffer of at least *size* elements."""
    buf = _SCRATCH.get(name)
    if buf is None or buf.size < size or buf.dtype != dtype:
        buf = np.empty(size, dtype=dtype)
        _SCRATCH[name] = buf
    return buf


def _fast_rsqrt_inplace(r2: np.ndarray, use_karp: bool,
                        positive: bool) -> np.ndarray:
    """:func:`_fast_rsqrt` writing into ``r2`` when the path allows it."""
    if positive and not use_karp:
        np.sqrt(r2, out=r2)
        np.divide(1.0, r2, out=r2)
        return r2
    return _fast_rsqrt(r2, use_karp, positive)


def _segment_accumulate(
    out: np.ndarray,
    tgt_pos: np.ndarray,
    per_target_count: np.ndarray,
    seg_ptr: np.ndarray,
    tgt_group: np.ndarray,
    src_flat: np.ndarray,
    src_pos: np.ndarray,
    src_mass: np.ndarray,
    eps2: float,
    use_karp: bool,
    quads: Optional[np.ndarray],
    quad_out: Optional[np.ndarray],
    g: float,
) -> None:
    """Flat-array evaluation of one pair family (cells or direct).

    For each target ``t`` the sources are
    ``src_flat[seg_ptr[g]:seg_ptr[g+1]]`` with ``g = tgt_group[t]``.
    Pairs are processed target-major in chunks that end on target
    boundaries; per-target sums use ``np.bincount``, whose sequential
    accumulation in pair order is bit-identical to the reference
    einsum contraction over a ``(targets, sources, 3)`` block.
    """
    n_targets = len(tgt_pos)
    positive = eps2 > 0.0
    cum = np.concatenate(([0], np.cumsum(per_target_count)))
    t0 = 0
    while t0 < n_targets:
        t1 = int(np.searchsorted(cum, cum[t0] + _PAIR_CHUNK, side="right")) - 1
        t1 = max(t1, t0 + 1)
        counts = per_target_count[t0:t1]
        n_local = t1 - t0
        local = np.repeat(np.arange(n_local, dtype=np.int64), counts)
        if local.size:
            n_pairs = local.size
            groups = tgt_group[t0:t1]
            src = src_flat[_concat_ranges(seg_ptr[groups], counts,
                                          "cr_seg")]
            diff = _scratch(
                "seg_diff", max(n_pairs, _PAIR_CHUNK) * 3, np.float64
            )[:n_pairs * 3].reshape(n_pairs, 3)
            np.take(src_pos, src, axis=0, out=diff)
            np.subtract(
                diff, np.repeat(tgt_pos[t0:t1], counts, axis=0), out=diff
            )
            r2 = _scratch(
                "seg_r2", max(n_pairs, _PAIR_CHUNK), np.float64
            )[:n_pairs]
            np.einsum("ij,ij->i", diff, diff, out=r2)
            r2 += eps2
            rinv = _fast_rsqrt_inplace(r2, use_karp, positive)
            rinv3 = _scratch(
                "seg_w", max(n_pairs, _PAIR_CHUNK), np.float64
            )[:n_pairs]
            np.multiply(rinv, rinv, out=rinv3)
            np.multiply(rinv3, rinv, out=rinv3)
            weighted = (src_mass[src] * rinv3)[:, None] * diff
            for k in range(3):
                out[t0:t1, k] = np.bincount(
                    local, weights=weighted[:, k], minlength=n_local
                )
            if quads is not None:
                qa = quadrupole_acceleration(
                    diff[None], rinv[None], quads[src], g
                )[0]
                for k in range(3):
                    quad_out[t0:t1, k] = np.bincount(
                        local, weights=qa[:, k], minlength=n_local
                    )
        t0 = t1


def _blocked_direct(
    out: np.ndarray,
    tree: HashedOctree,
    glo: np.ndarray,
    sizes: np.ndarray,
    row_ptr: np.ndarray,
    direct_src: np.ndarray,
    direct_ptr: np.ndarray,
    direct_count: np.ndarray,
    eps2: float,
    use_karp: bool,
) -> None:
    """Direct-sum evaluation in group blocks (the dominant pair family).

    Every particle of a leaf group interacts with the same source list,
    so instead of expanding pairs per target the groups are stacked
    into ``(block, targets, sources, 3)`` einsum blocks: sources are
    gathered once per group and broadcast over its targets, and the
    per-target reduction is an einsum contraction - bit-identical to
    the reference per-group expression, with no scatter pass.

    Groups are bucketed by target count and sorted by source count so
    stacking wastes little padding.  Padded source slots point at a
    sentinel pseudo-particle of mass 0 placed strictly below every
    coordinate in the system: each padded term is then exactly
    ``+0.0 * negative = -0.0``, and adding ``-0.0`` never changes an
    IEEE sum (``x + -0.0 == x`` for every x, including both zeros) -
    so padding cannot perturb a single bit.

    All large intermediates live in buffers reused across blocks: the
    arithmetic is memory-bound, and letting numpy allocate fresh
    megabyte arrays per block roughly doubles the wall time.
    """
    n_groups = len(glo)
    positive = eps2 > 0.0
    order = np.lexsort((direct_count, sizes))
    pos = np.concatenate((tree.pos, tree.pos.min(axis=0)[None] - 1.0))
    mass = np.concatenate((tree.mass, [0.0]))
    sentinel = len(tree.pos)
    # One group alone can exceed the pair budget (a big leaf against a
    # long source list); it then forms a singleton block, so the
    # buffers must hold the largest single group.
    cap = _PAIR_CHUNK
    if n_groups:
        cap = max(cap, int((sizes * direct_count).max()))
    diff_buf = _scratch("direct_diff", cap * 3, np.float64)
    r2_buf = _scratch("direct_r2", cap, np.float64)
    w_buf = _scratch("direct_w", cap, np.float64)
    spos_buf = _scratch("direct_spos", cap * 3, np.float64)
    smass_buf = _scratch("direct_smass", cap, np.float64)
    idx_buf = _scratch("direct_idx", cap, np.int64)
    src_buf = _scratch("direct_src", cap, np.int64)
    pad_buf = _scratch("direct_pad", cap, np.bool_)
    i = 0
    while i < n_groups:
        t = int(sizes[order[i]])
        j = i
        while j < n_groups and sizes[order[j]] == t:
            j += 1
        k0 = i
        while k0 < j:
            # Grow the block while the padded pair count stays in budget.
            m_pad = int(direct_count[order[k0]])
            b = 1
            while k0 + b < j:
                m_next = max(m_pad, int(direct_count[order[k0 + b]]))
                if (b + 1) * t * m_next > _PAIR_CHUNK:
                    break
                m_pad = m_next
                b += 1
            gs = order[k0:k0 + b]
            counts = direct_count[gs]
            col = np.arange(m_pad, dtype=np.int64)[None, :]
            idx = idx_buf[:b * m_pad].reshape(b, m_pad)
            np.minimum(col, (counts - 1)[:, None], out=idx)
            np.add(idx, direct_ptr[gs][:, None], out=idx)
            src = src_buf[:b * m_pad].reshape(b, m_pad)
            np.take(direct_src, idx, out=src)
            pad = pad_buf[:b * m_pad].reshape(b, m_pad)
            np.greater_equal(col, counts[:, None], out=pad)
            np.copyto(src, sentinel, where=pad)
            rows = (row_ptr[gs][:, None]
                    + np.arange(t, dtype=np.int64)[None, :]).ravel()
            tgt = pos[
                (glo[gs][:, None]
                 + np.arange(t, dtype=np.int64)[None, :]).ravel()
            ].reshape(b, t, 3)
            src_pos = spos_buf[:b * m_pad * 3].reshape(b, m_pad, 3)
            np.take(pos, src, axis=0, out=src_pos)
            src_mass = smass_buf[:b * m_pad].reshape(b, m_pad)
            np.take(mass, src, out=src_mass)
            n_pairs = b * t * m_pad
            diff = diff_buf[:n_pairs * 3].reshape(b, t, m_pad, 3)
            np.subtract(src_pos[:, None, :, :], tgt[:, :, None, :], out=diff)
            r2 = r2_buf[:n_pairs].reshape(b, t, m_pad)
            np.einsum("btmc,btmc->btm", diff, diff, out=r2)
            r2 += eps2
            rinv = _fast_rsqrt_inplace(r2, use_karp, positive)
            weight = w_buf[:n_pairs].reshape(b, t, m_pad)
            np.multiply(rinv, rinv, out=weight)
            np.multiply(weight, rinv, out=weight)
            np.multiply(weight, src_mass[:, None, :], out=weight)
            out[rows] = np.einsum("btm,btmc->btc", weight, diff).reshape(
                b * t, 3
            )
            k0 += b
        i = j


def _batched_accelerations(
    tree: HashedOctree,
    leaf_indices: Sequence[int],
    theta: float,
    softening: float,
    g: float,
    use_karp: bool,
    use_quadrupole: bool,
    stats: TraversalStats,
) -> Tuple[np.ndarray, np.ndarray]:
    """Fast path: walk + evaluate every group in flat NumPy arrays.

    Returns ``(rows, acc)`` where ``rows`` are sorted particle indices
    (the concatenation of the groups' slices) and ``acc`` their
    accelerations, bit-identical to the naive path.
    """
    leaf_idx = np.asarray(leaf_indices, dtype=np.int64)
    n_groups = len(leaf_idx)
    glo = tree.node_lo[leaf_idx]
    ghi = tree.node_hi[leaf_idx]
    sizes = ghi - glo
    rows = _concat_ranges(glo, sizes)
    row_ptr = np.concatenate(([0], np.cumsum(sizes)))
    tgt_group = np.repeat(np.arange(n_groups, dtype=np.int64), sizes)
    pos = tree.pos
    tgt_pos = pos[rows]
    n_targets = len(rows)

    # Group geometry, vectorised but bit-identical to _group_geometry:
    # the per-group mean reduces its outer axis sequentially, exactly
    # like bincount; the squared-distance row sum is the sequential
    # 3-term sum; the segment max is exact for any association.
    sums = np.empty((n_groups, 3))
    for k in range(3):
        sums[:, k] = np.bincount(
            tgt_group, weights=tgt_pos[:, k], minlength=n_groups
        )
    centres = sums / sizes[:, None]
    spread = tgt_pos - centres[tgt_group]
    spread *= spread
    dist2 = spread[:, 0] + spread[:, 1]
    dist2 += spread[:, 2]
    radii = np.sqrt(np.maximum.reduceat(dist2, row_ptr[:-1]))

    cell_nodes, cell_count, direct_src, direct_count = (
        _batched_interaction_pairs(tree, leaf_idx, theta, centres, radii,
                                   stats)
    )
    cell_ptr = np.concatenate(([0], np.cumsum(cell_count)))
    direct_ptr = np.concatenate(([0], np.cumsum(direct_count)))
    eps2 = softening * softening

    acc = np.zeros((n_targets, 3))
    cell_sum = np.zeros((n_targets, 3))
    quad_sum = np.zeros((n_targets, 3)) if use_quadrupole else None
    _segment_accumulate(
        cell_sum, tgt_pos, cell_count[tgt_group], cell_ptr, tgt_group,
        cell_nodes, tree.node_com, tree.node_mass, eps2, use_karp,
        tree.node_quad if use_quadrupole else None, quad_sum, g,
    )
    direct_sum = np.empty((n_targets, 3))
    _blocked_direct(
        direct_sum, tree, glo, sizes, row_ptr, direct_src, direct_ptr,
        direct_count, eps2, use_karp,
    )
    # Same per-element addition order as the naive group evaluator:
    # zeros += g*cells, += quadrupole, += g*direct.
    acc += g * cell_sum
    if use_quadrupole:
        acc += quad_sum
    acc += g * direct_sum

    stats.groups += n_groups
    pc = sizes * cell_count
    if use_quadrupole:
        pc = 2 * pc
    pp = sizes * direct_count
    stats.particle_cell += int(pc.sum())
    stats.particle_particle += int(pp.sum())
    work = pc + pp
    glo_l = glo.tolist()
    ghi_l = ghi.tolist()
    work_l = work.tolist()
    stats.group_work.extend(zip(glo_l, ghi_l, work_l))
    return rows, acc


def tree_accelerations(
    tree: HashedOctree,
    theta: float = 0.7,
    softening: float = 1e-3,
    g: float = 1.0,
    use_karp: bool = False,
    target_slice: Optional[Tuple[int, int]] = None,
    use_quadrupole: bool = False,
    naive: bool = False,
) -> Tuple[np.ndarray, TraversalStats]:
    """Accelerations for all (or a slice of) particles.

    Returns ``(acc, stats)`` with *acc* in the **original** particle
    order when ``target_slice`` is None, or in **sorted** order covering
    ``[lo, hi)`` when a slice is given (the parallel code works in
    sorted order throughout).

    ``naive=True`` selects the one-group-at-a-time reference walk; the
    default batched path returns bit-identical results.
    """
    if theta <= 0:
        raise ValueError("theta must be positive")
    if use_quadrupole and not tree.quadrupoles_enabled:
        raise ValueError(
            "tree was built without quadrupoles; pass quadrupoles=True "
            "to HashedOctree"
        )
    stats = TraversalStats()
    n = tree.n_particles
    lo, hi = target_slice if target_slice is not None else (0, n)
    if not 0 <= lo <= hi <= n:
        raise ValueError(f"bad target slice [{lo}, {hi})")
    acc_sorted = np.zeros((hi - lo, 3))

    group_leaves: List[TreeNode] = []
    for leaf in tree.leaves():
        if leaf.hi <= lo or leaf.lo >= hi:
            continue
        if leaf.lo < lo or leaf.hi > hi:
            raise ValueError(
                "target slice must align with leaf boundaries; use "
                "HashedOctree leaves() to pick boundaries"
            )
        if leaf.count == 0:
            continue
        group_leaves.append(leaf)

    if naive:
        for leaf in group_leaves:
            before = stats.interactions
            cells, direct = interaction_lists(tree, leaf, theta, stats)
            acc_sorted[leaf.lo - lo:leaf.hi - lo] = _evaluate_group(
                tree, leaf, cells, direct, softening, g, use_karp, stats,
                use_quadrupole=use_quadrupole,
            )
            stats.groups += 1
            stats.group_work.append(
                (leaf.lo, leaf.hi, stats.interactions - before)
            )
    elif group_leaves:
        rows, acc = _batched_accelerations(
            tree, [leaf.index for leaf in group_leaves], theta, softening,
            g, use_karp, use_quadrupole, stats,
        )
        acc_sorted[rows - lo] = acc

    if target_slice is not None:
        return acc_sorted, stats
    return tree.unsort(acc_sorted), stats


def leaf_aligned_partition(
    tree: HashedOctree,
    parts: int,
    particle_weights: Optional[np.ndarray] = None,
) -> List[Tuple[int, int]]:
    """Split the sorted particle range into *parts* leaf-aligned slices.

    With no weights, slices hold roughly equal particle counts.  With
    *particle_weights* (sorted order, e.g. last step's per-particle
    interaction counts), slices hold roughly equal work - the
    Warren-Salmon work-based decomposition.
    """
    if parts < 1:
        raise ValueError("parts must be >= 1")
    n = tree.n_particles
    if particle_weights is None:
        weights = np.ones(n)
    else:
        weights = np.asarray(particle_weights, dtype=np.float64)
        if weights.shape != (n,):
            raise ValueError("weights must be one per particle")
        if np.any(weights < 0):
            raise ValueError("weights cannot be negative")
        if weights.sum() <= 0:
            weights = np.ones(n)
    cum = np.concatenate(([0.0], np.cumsum(weights)))
    total = cum[-1]
    edges = [0]
    leaf_ends = [leaf.hi for leaf in tree.leaves()]
    target = total / parts
    want = target
    for end in leaf_ends:
        if cum[end] >= want and len(edges) < parts:
            edges.append(end)
            want = target * len(edges)
    while len(edges) < parts + 1:
        edges.append(n)
    edges[-1] = n
    return [(edges[i], edges[i + 1]) for i in range(parts)]


def work_per_particle(tree: HashedOctree,
                      stats: TraversalStats) -> np.ndarray:
    """Spread each group's interaction count over its particles.

    Returned in **original** particle order so it can travel with the
    particles across steps and decompositions.
    """
    work_sorted = np.zeros(tree.n_particles)
    for lo, hi, interactions in stats.group_work:
        if hi > lo:
            work_sorted[lo:hi] = interactions / (hi - lo)
    return tree.unsort(work_sorted)
