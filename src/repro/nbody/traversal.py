"""Barnes-Hut force walks over the hashed octree, one leaf group at a time.

For every leaf cell the walk assembles two interaction lists:

- **cell interactions**: nodes whose monopole satisfies the group
  multipole-acceptance criterion (MAC) with respect to the whole leaf
  group - evaluated vectorised, one NumPy expression per group;
- **direct interactions**: particles of leaf cells that had to be
  opened to the bottom - evaluated pairwise (softened, so the self term
  vanishes naturally).

The MAC is the group-radius form: accept a node of edge ``s`` at
centre-of-mass distance ``d`` from the group centre when

    s / (d - r_group) < theta

which is conservative for every particle in the group.  Ancestors of
the group are always opened regardless.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

import numpy as np

from repro.nbody.karp import karp_rsqrt
from repro.nbody.kernels import INTERACTION_FLOPS
from repro.nbody.morton import ancestor_at_level
from repro.nbody.tree import HashedOctree, TreeNode


@dataclass
class TraversalStats:
    """Work accounting for one full force evaluation."""

    particle_cell: int = 0
    particle_particle: int = 0
    groups: int = 0
    nodes_opened: int = 0
    #: per-group records ``(lo, hi, interactions)`` in sorted index
    #: space - the raw material of work-based decomposition.
    group_work: List[Tuple[int, int, int]] = field(default_factory=list)

    @property
    def interactions(self) -> int:
        return self.particle_cell + self.particle_particle

    @property
    def flops(self) -> int:
        return self.interactions * INTERACTION_FLOPS

    def merge(self, other: "TraversalStats") -> None:
        self.particle_cell += other.particle_cell
        self.particle_particle += other.particle_particle
        self.groups += other.groups
        self.nodes_opened += other.nodes_opened


def _rsqrt(r2: np.ndarray, use_karp: bool) -> np.ndarray:
    out = np.zeros_like(r2)
    nz = r2 > 0.0
    if use_karp:
        out[nz] = karp_rsqrt(r2[nz])
    else:
        out[nz] = 1.0 / np.sqrt(r2[nz])
    return out


def _group_geometry(tree: HashedOctree,
                    leaf: TreeNode) -> Tuple[np.ndarray, float]:
    """Centroid and enclosing radius of a leaf group's particles."""
    pts = tree.pos[leaf.lo:leaf.hi]
    centre = pts.mean(axis=0)
    radius = float(np.sqrt(((pts - centre) ** 2).sum(axis=1).max()))
    return centre, radius


def _is_ancestor(node: TreeNode, leaf: TreeNode) -> bool:
    if node.level > leaf.level:
        return False
    return ancestor_at_level(leaf.key, node.level) == node.key


def interaction_lists(
    tree: HashedOctree, leaf: TreeNode, theta: float,
    stats: Optional[TraversalStats] = None,
) -> Tuple[List[TreeNode], List[TreeNode]]:
    """Walk the tree for one leaf group; returns (cells, direct_leaves)."""
    centre, radius = _group_geometry(tree, leaf)
    cells: List[TreeNode] = []
    direct: List[TreeNode] = []
    stack: List[TreeNode] = [tree.root]
    while stack:
        node = stack.pop()
        if node.mass <= 0.0:
            continue
        if node.is_leaf:
            direct.append(node)
            continue
        if not _is_ancestor(node, leaf):
            d = float(np.linalg.norm(node.com - centre))
            margin = d - radius
            if margin > 0.0 and node.size < theta * margin:
                cells.append(node)
                continue
        if stats is not None:
            stats.nodes_opened += 1
        for ckey in node.children:
            stack.append(tree.nodes[ckey])
    return cells, direct


def _evaluate_group(
    tree: HashedOctree, leaf: TreeNode,
    cells: List[TreeNode], direct: List[TreeNode],
    softening: float, g: float, use_karp: bool,
    stats: TraversalStats, use_quadrupole: bool = False,
) -> np.ndarray:
    targets = tree.pos[leaf.lo:leaf.hi]
    acc = np.zeros_like(targets)
    eps2 = softening * softening

    if cells:
        coms = np.array([c.com for c in cells])            # (m, 3)
        masses = np.array([c.mass for c in cells])         # (m,)
        diff = coms[None, :, :] - targets[:, None, :]      # (g, m, 3)
        r2 = np.einsum("ijk,ijk->ij", diff, diff) + eps2
        rinv = _rsqrt(r2, use_karp)
        rinv3 = rinv * rinv * rinv
        acc += g * np.einsum("ij,ijk->ik", masses * rinv3, diff)
        stats.particle_cell += targets.shape[0] * len(cells)
        if use_quadrupole:
            from repro.nbody.multipole import quadrupole_acceleration
            quads = np.array([c.quadrupole for c in cells])
            acc += quadrupole_acceleration(diff, rinv, quads, g).sum(axis=1)
            # The expansion term costs roughly another interaction's
            # worth of flops per particle-cell pair.
            stats.particle_cell += targets.shape[0] * len(cells)

    if direct:
        idx = np.concatenate(
            [np.arange(n.lo, n.hi) for n in direct]
        )
        src_pos = tree.pos[idx]
        src_mass = tree.mass[idx]
        diff = src_pos[None, :, :] - targets[:, None, :]
        r2 = np.einsum("ijk,ijk->ij", diff, diff) + eps2
        rinv = _rsqrt(r2, use_karp)
        rinv3 = rinv * rinv * rinv
        # Self-pairs have diff = 0 and contribute nothing.
        acc += g * np.einsum("ij,ijk->ik", src_mass * rinv3, diff)
        stats.particle_particle += targets.shape[0] * len(idx)

    return acc


def tree_accelerations(
    tree: HashedOctree,
    theta: float = 0.7,
    softening: float = 1e-3,
    g: float = 1.0,
    use_karp: bool = False,
    target_slice: Optional[Tuple[int, int]] = None,
    use_quadrupole: bool = False,
) -> Tuple[np.ndarray, TraversalStats]:
    """Accelerations for all (or a slice of) particles.

    Returns ``(acc, stats)`` with *acc* in the **original** particle
    order when ``target_slice`` is None, or in **sorted** order covering
    ``[lo, hi)`` when a slice is given (the parallel code works in
    sorted order throughout).
    """
    if theta <= 0:
        raise ValueError("theta must be positive")
    if use_quadrupole and not tree.quadrupoles_enabled:
        raise ValueError(
            "tree was built without quadrupoles; pass quadrupoles=True "
            "to HashedOctree"
        )
    stats = TraversalStats()
    n = tree.n_particles
    lo, hi = target_slice if target_slice is not None else (0, n)
    if not 0 <= lo <= hi <= n:
        raise ValueError(f"bad target slice [{lo}, {hi})")
    acc_sorted = np.zeros((hi - lo, 3))
    for leaf in tree.leaves():
        if leaf.hi <= lo or leaf.lo >= hi:
            continue
        if leaf.lo < lo or leaf.hi > hi:
            raise ValueError(
                "target slice must align with leaf boundaries; use "
                "HashedOctree leaves() to pick boundaries"
            )
        if leaf.count == 0:
            continue
        before = stats.interactions
        cells, direct = interaction_lists(tree, leaf, theta, stats)
        acc_sorted[leaf.lo - lo:leaf.hi - lo] = _evaluate_group(
            tree, leaf, cells, direct, softening, g, use_karp, stats,
            use_quadrupole=use_quadrupole,
        )
        stats.groups += 1
        stats.group_work.append(
            (leaf.lo, leaf.hi, stats.interactions - before)
        )
    if target_slice is not None:
        return acc_sorted, stats
    return tree.unsort(acc_sorted), stats


def leaf_aligned_partition(
    tree: HashedOctree,
    parts: int,
    particle_weights: Optional[np.ndarray] = None,
) -> List[Tuple[int, int]]:
    """Split the sorted particle range into *parts* leaf-aligned slices.

    With no weights, slices hold roughly equal particle counts.  With
    *particle_weights* (sorted order, e.g. last step's per-particle
    interaction counts), slices hold roughly equal work - the
    Warren-Salmon work-based decomposition.
    """
    if parts < 1:
        raise ValueError("parts must be >= 1")
    n = tree.n_particles
    if particle_weights is None:
        weights = np.ones(n)
    else:
        weights = np.asarray(particle_weights, dtype=np.float64)
        if weights.shape != (n,):
            raise ValueError("weights must be one per particle")
        if np.any(weights < 0):
            raise ValueError("weights cannot be negative")
        if weights.sum() <= 0:
            weights = np.ones(n)
    cum = np.concatenate(([0.0], np.cumsum(weights)))
    total = cum[-1]
    edges = [0]
    leaf_ends = [leaf.hi for leaf in tree.leaves()]
    target = total / parts
    want = target
    for end in leaf_ends:
        if cum[end] >= want and len(edges) < parts:
            edges.append(end)
            want = target * len(edges)
    while len(edges) < parts + 1:
        edges.append(n)
    edges[-1] = n
    return [(edges[i], edges[i + 1]) for i in range(parts)]


def work_per_particle(tree: HashedOctree,
                      stats: TraversalStats) -> np.ndarray:
    """Spread each group's interaction count over its particles.

    Returned in **original** particle order so it can travel with the
    particles across steps and decompositions.
    """
    work_sorted = np.zeros(tree.n_particles)
    for lo, hi, interactions in stats.group_work:
        if hi > lo:
            work_sorted[lo:hi] = interactions / (hi - lo)
    return tree.unsort(work_sorted)
