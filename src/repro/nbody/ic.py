"""Initial-condition generators for N-body runs."""

from __future__ import annotations

from typing import Tuple

import numpy as np

Arrays = Tuple[np.ndarray, np.ndarray, np.ndarray]   # pos, vel, mass


def uniform_cube(n: int, seed: int = 0, box: float = 1.0,
                 total_mass: float = 1.0) -> Arrays:
    """Cold, uniform random cube (the simplest clustering IC)."""
    rng = np.random.default_rng(seed)
    pos = rng.uniform(-box / 2, box / 2, size=(n, 3))
    vel = np.zeros((n, 3))
    mass = np.full(n, total_mass / n)
    return pos, vel, mass


def plummer_sphere(n: int, seed: int = 0, scale: float = 1.0,
                   total_mass: float = 1.0, g: float = 1.0) -> Arrays:
    """Plummer model in virial equilibrium (Aarseth's sampling recipe).

    The standard cosmology/star-cluster test case; the density profile
    rho ~ (1 + r^2/a^2)^(-5/2) gives a centrally concentrated system
    that exercises deep, uneven trees - unlike the uniform cube.
    """
    rng = np.random.default_rng(seed)
    # Radii from the inverse CDF of the Plummer cumulative mass.
    u = rng.uniform(0.0, 1.0, n)
    u = np.clip(u, 1e-10, 1 - 1e-10)
    r = scale / np.sqrt(u ** (-2.0 / 3.0) - 1.0)
    # Isotropic directions.
    costheta = rng.uniform(-1.0, 1.0, n)
    sintheta = np.sqrt(1.0 - costheta ** 2)
    phi = rng.uniform(0.0, 2.0 * np.pi, n)
    pos = np.empty((n, 3))
    pos[:, 0] = r * sintheta * np.cos(phi)
    pos[:, 1] = r * sintheta * np.sin(phi)
    pos[:, 2] = r * costheta

    # Velocities by von Neumann rejection on q = v/v_escape with
    # g(q) = q^2 (1 - q^2)^(7/2).
    q = np.empty(n)
    remaining = np.arange(n)
    while remaining.size:
        q_try = rng.uniform(0.0, 1.0, remaining.size)
        y = rng.uniform(0.0, 0.1, remaining.size)
        ok = y < q_try ** 2 * (1.0 - q_try ** 2) ** 3.5
        q[remaining[ok]] = q_try[ok]
        remaining = remaining[~ok]
    v_escape = np.sqrt(2.0 * g * total_mass) * (
        1.0 + r * r / (scale * scale)
    ) ** -0.25
    speed = q * v_escape
    costheta = rng.uniform(-1.0, 1.0, n)
    sintheta = np.sqrt(1.0 - costheta ** 2)
    phi = rng.uniform(0.0, 2.0 * np.pi, n)
    vel = np.empty((n, 3))
    vel[:, 0] = speed * sintheta * np.cos(phi)
    vel[:, 1] = speed * sintheta * np.sin(phi)
    vel[:, 2] = speed * costheta

    mass = np.full(n, total_mass / n)
    # Centre of mass frame.
    pos -= pos.mean(axis=0)
    vel -= vel.mean(axis=0)
    return pos, vel, mass


def two_clusters(n: int, seed: int = 0, separation: float = 4.0,
                 approach_speed: float = 0.3) -> Arrays:
    """Two Plummer spheres on a collision course (a merger scenario,
    akin to the structure-formation snapshots of the paper's Figure 3)."""
    n1 = n // 2
    n2 = n - n1
    p1, v1, m1 = plummer_sphere(n1, seed=seed, total_mass=0.5)
    p2, v2, m2 = plummer_sphere(n2, seed=seed + 1, total_mass=0.5)
    offset = np.array([separation / 2, 0.0, 0.0])
    kick = np.array([approach_speed / 2, 0.0, 0.0])
    pos = np.vstack([p1 - offset, p2 + offset])
    vel = np.vstack([v1 + kick, v2 - kick])
    mass = np.concatenate([m1, m2])
    return pos, vel, mass
