"""Vortex particle method on the shared tree library.

Paper Section 3.5.1: "The vortex particle method [Salmon, Warren &
Winckelmans] requires only 2500 lines interfaced to the same treecode
library."  This module is that client: vortex particles carry a vector
circulation ``alpha`` (vorticity x volume), and the induced velocity is
the regularised Biot-Savart sum

    u(r) = (1/4pi) * sum_i alpha_i x (r - r_i) / (|r - r_i|^2 + s^2)^(3/2)

evaluated either directly (O(N^2) reference) or through the hashed
octree: cells far enough away contribute their *total circulation* at
their circulation centroid - the vortex analogue of the gravity
monopole - using the same group-MAC interaction lists as the gravity
walk.  That re-use is the paper's point about the library design.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro.nbody.traversal import TraversalStats, interaction_lists
from repro.nbody.tree import HashedOctree

_FOURPI = 4.0 * np.pi


def biot_savart(diff: np.ndarray, alpha: np.ndarray,
                core2: float) -> np.ndarray:
    """Velocity contributions: (1/4pi) alpha x (-diff) / (r^2+s^2)^1.5.

    ``diff`` is (t, m, 3) = source - target (the library's convention),
    so target - source = -diff; ``alpha`` is (m, 3).
    """
    r2 = np.einsum("tmk,tmk->tm", diff, diff) + core2
    rinv = 1.0 / np.sqrt(r2)
    rinv3 = (rinv * rinv * rinv)[..., None]
    # alpha x (target - source) = alpha x (-diff) = diff x alpha
    cross = np.cross(diff, alpha[None, :, :])
    return cross * rinv3 / _FOURPI


@dataclass
class VortexSystem:
    """N vortex particles with tree-accelerated velocity evaluation."""

    pos: np.ndarray            # (N, 3)
    alpha: np.ndarray          # (N, 3) circulation vectors
    core_radius: float = 0.05
    leaf_size: int = 16

    def __post_init__(self) -> None:
        self.pos = np.asarray(self.pos, dtype=np.float64)
        self.alpha = np.asarray(self.alpha, dtype=np.float64)
        n = len(self.pos)
        if self.pos.shape != (n, 3) or self.alpha.shape != (n, 3):
            raise ValueError("pos and alpha must both be (N, 3)")
        if self.core_radius <= 0:
            raise ValueError("core_radius must be positive")
        # Position the tree's centres of mass by circulation magnitude
        # (plus a floor so fully-cancelling cells still get a centroid).
        strength = np.linalg.norm(self.alpha, axis=1)
        floor = max(strength.max(), 1e-30) * 1e-9 + 1e-300
        self.tree = HashedOctree(
            self.pos, strength + floor, leaf_size=self.leaf_size
        )
        self._alpha_sorted = self.alpha[self.tree.order]
        self._cum_alpha = np.concatenate(
            (np.zeros((1, 3)), np.cumsum(self._alpha_sorted, axis=0))
        )

    def cell_circulation(self, node) -> np.ndarray:
        """Total circulation vector of a cell (prefix-sum O(1))."""
        return self._cum_alpha[node.hi] - self._cum_alpha[node.lo]

    @property
    def total_circulation(self) -> np.ndarray:
        """Invariant: sum of alpha (conserved by advection)."""
        return self.alpha.sum(axis=0)

    # -- evaluation ---------------------------------------------------------

    def direct_velocities(self) -> np.ndarray:
        """O(N^2) reference Biot-Savart evaluation."""
        core2 = self.core_radius * self.core_radius
        n = len(self.pos)
        vel = np.zeros_like(self.pos)
        chunk = 256
        for lo in range(0, n, chunk):
            hi = min(lo + chunk, n)
            diff = self.pos[None, :, :] - self.pos[lo:hi, None, :]
            vel[lo:hi] = biot_savart(diff, self.alpha, core2).sum(axis=1)
        return vel

    def tree_velocities(
        self, theta: float = 0.5
    ) -> Tuple[np.ndarray, TraversalStats]:
        """Tree-accelerated velocities (original particle order)."""
        core2 = self.core_radius * self.core_radius
        tree = self.tree
        stats = TraversalStats()
        vel_sorted = np.zeros_like(tree.pos)
        for leaf in tree.leaves():
            if leaf.count == 0:
                continue
            targets = tree.pos[leaf.lo:leaf.hi]
            cells, direct = interaction_lists(tree, leaf, theta, stats)
            out = np.zeros_like(targets)
            if cells:
                centroids = np.array([c.com for c in cells])
                alphas = np.array(
                    [self.cell_circulation(c) for c in cells]
                )
                diff = centroids[None, :, :] - targets[:, None, :]
                out += biot_savart(diff, alphas, core2).sum(axis=1)
                stats.particle_cell += len(targets) * len(cells)
            if direct:
                idx = np.concatenate(
                    [np.arange(c.lo, c.hi) for c in direct]
                )
                diff = tree.pos[idx][None, :, :] - targets[:, None, :]
                out += biot_savart(
                    diff, self._alpha_sorted[idx], core2
                ).sum(axis=1)
                stats.particle_particle += len(targets) * len(idx)
            vel_sorted[leaf.lo:leaf.hi] = out
            stats.groups += 1
        return tree.unsort(vel_sorted), stats


def vortex_ring(n: int, ring_radius: float = 1.0,
                circulation: float = 1.0, seed: int = 0,
                jitter: float = 0.0) -> Tuple[np.ndarray, np.ndarray]:
    """Discretise a circular vortex ring in the z = 0 plane.

    Each of the *n* particles carries circulation tangent to the ring;
    a thin ring self-propels along +z (the classic smoke-ring motion),
    which the example script demonstrates.
    """
    rng = np.random.default_rng(seed)
    phi = 2.0 * np.pi * np.arange(n) / n
    pos = np.stack(
        [
            ring_radius * np.cos(phi),
            ring_radius * np.sin(phi),
            np.zeros(n),
        ],
        axis=1,
    )
    if jitter > 0:
        pos += jitter * rng.standard_normal(pos.shape)
    seg = 2.0 * np.pi * ring_radius / n       # arc length per particle
    tangent = np.stack([-np.sin(phi), np.cos(phi), np.zeros(n)], axis=1)
    alpha = circulation * seg * tangent
    return pos, alpha


def ring_self_induced_speed(ring_radius: float, circulation: float,
                            core_radius: float) -> float:
    """Kelvin's thin-ring formula: U = G/(4 pi R) (ln(8R/a) - 1/4)."""
    return (
        circulation
        / (_FOURPI * ring_radius)
        * (np.log(8.0 * ring_radius / core_radius) - 0.25)
    )
