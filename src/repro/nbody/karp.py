"""Karp's reciprocal square root for machines lacking hardware sqrt.

[A. Karp, "Speeding Up N-body Calculations on Machines Lacking a
Hardware Square Root", Scientific Programming 1(2)].  The algorithm:

1. range-reduce ``x`` to a mantissa ``m`` in [1, 4) and an even power of
   two (pure exponent arithmetic, no flops);
2. look up an initial estimate of ``1/sqrt(m)`` in a small table,
   refined by polynomial interpolation between knots;
3. apply Newton-Raphson iterations ``y <- y * (1.5 - 0.5*m*y*y)``, each
   of which doubles the number of correct digits,

using only adds and multiplies - the reason it beats the libm path on
every processor whose divide/sqrt units are slow or absent (Table 1).

This module is the production NumPy implementation; the guest-ISA
version that actually runs on the processor models lives in
:mod:`repro.isa.programs`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Tuple

import numpy as np


@dataclass(frozen=True)
class KarpTable:
    """Initial-estimate table over the reduced interval [1, 4).

    ``interpolation`` picks the refinement between table knots:

    - ``"linear"`` - two table reads, one multiply-add;
    - ``"chebyshev"`` - the paper's (and Karp's) choice: a per-interval
      quadratic in the Chebyshev basis, fitted at the Chebyshev points
      of each interval so the interpolation error is near-minimax.
      Costs one extra fused multiply-add and a coefficient table three
      entries wide, and squares-down the seed error enough that one
      Newton step can replace two.
    """

    size: int = 256
    newton_iters: int = 2
    interpolation: str = "linear"

    def __post_init__(self) -> None:
        if self.size < 2:
            raise ValueError("table needs at least two knots")
        if self.newton_iters < 0:
            raise ValueError("newton_iters cannot be negative")
        if self.interpolation not in ("linear", "chebyshev"):
            raise ValueError(
                "interpolation must be 'linear' or 'chebyshev'"
            )

    @property
    def scale(self) -> float:
        return self.size / 3.0

    def knots(self) -> np.ndarray:
        """Exact 1/sqrt at ``size + 1`` knots spanning [1, 4]."""
        return 1.0 / np.sqrt(np.linspace(1.0, 4.0, self.size + 1))

    def chebyshev_coefficients(self) -> np.ndarray:
        """(size, 3) quadratic coefficients per interval.

        Each interval [a, b) gets p(u) = c0 + c1*u + c2*(2u^2 - 1) with
        u in [-1, 1] the affine map of the interval, fitted by
        collocation at the three Chebyshev points cos(pi*(2k+1)/6).
        Near-minimax by construction.
        """
        edges = np.linspace(1.0, 4.0, self.size + 1)
        a, b = edges[:-1], edges[1:]
        u = np.cos(np.pi * (2 * np.arange(3) + 1) / 6.0)      # 3 points
        # Collocation matrix in the Chebyshev basis {1, u, 2u^2-1}.
        basis = np.stack([np.ones(3), u, 2 * u * u - 1], axis=1)
        inv = np.linalg.inv(basis)
        # Sample the true function at the mapped Chebyshev points.
        mid = 0.5 * (a + b)
        half = 0.5 * (b - a)
        x = mid[:, None] + half[:, None] * u[None, :]         # (size, 3)
        f = 1.0 / np.sqrt(x)
        return f @ inv.T

    def estimate(self, m: np.ndarray) -> np.ndarray:
        """Seed estimate of 1/sqrt(m) for m in [1, 4)."""
        t = (m - 1.0) * self.scale
        i = np.minimum(t.astype(np.int64), self.size - 1)
        if self.interpolation == "linear":
            table = self.knots()
            frac = t - i
            lo = table[i]
            return lo + frac * (table[i + 1] - lo)
        coeffs = self.chebyshev_coefficients()
        u = 2.0 * (t - i) - 1.0                               # [-1, 1]
        c0, c1, c2 = coeffs[i, 0], coeffs[i, 1], coeffs[i, 2]
        return c0 + c1 * u + c2 * (2.0 * u * u - 1.0)

    @property
    def worst_initial_error(self) -> float:
        """Bound on the relative error of the raw table estimate."""
        h = 3.0 / self.size
        if self.interpolation == "linear":
            # |f''| of x^(-1/2) on [1,4] is maximised at 1: 3/4.
            return (h * h / 8.0) * 0.75
        # Chebyshev quadratic: |f'''| max = 15/8 at x=1, over 4*4^2... the
        # standard bound h^3/(4! * 2^2) * max|f'''| with minimax factor.
        return (h ** 3 / 96.0) * (15.0 / 8.0) * 2.0


def _range_reduce(x: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Split x > 0 into (m, k) with x = m * 4**k and m in [1, 4).

    Uses frexp so the reduction is exponent manipulation only, exactly
    as Karp prescribes (no floating-point rounding is introduced).
    """
    f, e = np.frexp(x)                    # x = f * 2**e, f in [0.5, 1)
    odd = (e & 1).astype(bool)
    # Even exponent: m = 4f in [2,4), k = (e-2)/2.
    # Odd exponent:  m = 2f in [1,2), k = (e-1)/2.
    m = np.where(odd, 2.0 * f, 4.0 * f)
    k = np.where(odd, (e - 1) // 2, (e - 2) // 2)
    return m, k


def karp_rsqrt(x: np.ndarray, table: KarpTable = KarpTable()) -> np.ndarray:
    """Reciprocal square root of positive *x* via Karp's algorithm."""
    x = np.asarray(x, dtype=np.float64)
    if np.any(x <= 0):
        raise ValueError("karp_rsqrt requires strictly positive input")
    m, k = _range_reduce(x)
    y = table.estimate(m)
    half_m = 0.5 * m
    for _ in range(table.newton_iters):
        y = y * (1.5 - half_m * (y * y))
    # Undo the reduction: 1/sqrt(m * 4**k) = (1/sqrt(m)) * 2**-k.
    return np.ldexp(y, -k.astype(np.int64))


def masked_rsqrt(r2: np.ndarray, use_karp: bool = False,
                 table: KarpTable = KarpTable()) -> np.ndarray:
    """Reciprocal square root with zeros mapped to zero.

    The shared helper of every gravity kernel (direct summation and both
    treecode walks).  With zero softening the self-interaction has
    ``r2 = 0``; returning 0 there makes the self term vanish exactly
    (consistent with the softened case, where the zero displacement
    vector kills it).  When every entry is positive — the common case
    with softening — the masked gather/scatter is skipped entirely,
    which computes the same bits in one pass.
    """
    nz = r2 > 0.0
    if nz.all():
        if use_karp:
            return karp_rsqrt(r2, table)
        return 1.0 / np.sqrt(r2)
    out = np.zeros_like(r2)
    if use_karp:
        out[nz] = karp_rsqrt(r2[nz], table)
    else:
        out[nz] = 1.0 / np.sqrt(r2[nz])
    return out


def karp_rsqrt_flops(n: int, table: KarpTable = KarpTable()) -> int:
    """Flop count of *n* evaluations (interp 3 + per-Newton 4 + setup 1)."""
    per_element = 3 + 1 + 4 * table.newton_iters
    return per_element * n
