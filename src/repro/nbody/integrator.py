"""Leapfrog (kick-drift-kick) integration and energy diagnostics."""

from __future__ import annotations

from typing import Callable, Tuple

import numpy as np

from repro.nbody.kernels import direct_potential

AccelFn = Callable[[np.ndarray], Tuple[np.ndarray, int]]


def leapfrog_step(
    pos: np.ndarray,
    vel: np.ndarray,
    acc: np.ndarray,
    dt: float,
    accel_fn: AccelFn,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, int]:
    """One KDK step; returns ``(pos', vel', acc', flops)``.

    *accel_fn(pos)* must return ``(accelerations, flops)`` so the driver
    can keep the paper-style flop ledger.
    """
    if dt <= 0:
        raise ValueError("dt must be positive")
    vel_half = vel + 0.5 * dt * acc
    pos_new = pos + dt * vel_half
    acc_new, flops = accel_fn(pos_new)
    vel_new = vel_half + 0.5 * dt * acc_new
    return pos_new, vel_new, acc_new, flops


def kinetic_energy(vel: np.ndarray, mass: np.ndarray) -> float:
    return float(0.5 * np.sum(mass * np.einsum("ij,ij->i", vel, vel)))


def potential_energy(pos: np.ndarray, mass: np.ndarray,
                     softening: float = 1e-3, g: float = 1.0) -> float:
    """Total potential energy (each pair counted once)."""
    per_particle = direct_potential(pos, mass, softening=softening, g=g)
    return float(0.5 * np.sum(mass * per_particle))


def total_energy(pos: np.ndarray, vel: np.ndarray, mass: np.ndarray,
                 softening: float = 1e-3, g: float = 1.0) -> float:
    return kinetic_energy(vel, mass) + potential_energy(
        pos, mass, softening=softening, g=g
    )
