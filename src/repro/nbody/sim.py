"""Serial N-body simulation driver with the paper's flop ledger.

Reproduces the Section 3.3 accounting: a run executes some number of
treecode timesteps, totals the interaction flops, and - projected onto a
cluster's sustained per-node rate - yields the Gflops rating and
percent-of-peak figure the paper quotes (2.1 Gflops, 14% of the 15.2
Gflops peak, for the 9.75M-particle SC'01 run).

``density_image`` renders the projected surface density of a snapshot:
the stand-in for the paper's Figure 3 (we cannot print their photo, but
we can regenerate the same kind of structure image from the same kind
of run).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Tuple

import numpy as np

from repro.nbody.ic import plummer_sphere, two_clusters, uniform_cube
from repro.nbody.integrator import leapfrog_step, total_energy
from repro.nbody.tree import HashedOctree, TreeBuildCache
from repro.nbody.traversal import TraversalStats, tree_accelerations

#: Flops billed for tree construction, per particle (key generation,
#: sort share, moment accumulation) - small next to the traversal.
BUILD_FLOPS_PER_PARTICLE = 150


@dataclass(frozen=True)
class SimConfig:
    """Parameters of a treecode simulation."""

    n: int = 4096
    steps: int = 4
    dt: float = 1e-3
    theta: float = 0.7
    softening: float = 1e-2
    leaf_size: int = 16
    seed: int = 2001
    ic: str = "plummer"            # plummer | cube | collision
    use_karp: bool = False
    naive_traversal: bool = False  # reference path: per-group python walk
    #: Audit the flop ledger against the per-step traversal stats at
    #: the end of every run (repro.check.auditors.audit_sim_result).
    audit: bool = False

    def make_ic(self):
        if self.ic == "plummer":
            return plummer_sphere(self.n, seed=self.seed)
        if self.ic == "cube":
            return uniform_cube(self.n, seed=self.seed)
        if self.ic == "collision":
            return two_clusters(self.n, seed=self.seed)
        raise ValueError(f"unknown IC {self.ic!r}")


@dataclass
class StepRecord:
    step: int
    flops: int
    interactions: int
    nodes: int


@dataclass
class SimResult:
    """Everything a bench needs from one run."""

    config: SimConfig
    pos: np.ndarray
    vel: np.ndarray
    mass: np.ndarray
    total_flops: int
    records: List[StepRecord]
    energy_initial: float
    energy_final: float

    @property
    def energy_drift(self) -> float:
        scale = max(abs(self.energy_initial), 1e-30)
        return abs(self.energy_final - self.energy_initial) / scale

    def virtual_seconds(self, flop_rate: float) -> float:
        """Wall time this run would take at *flop_rate* flops/s."""
        if flop_rate <= 0:
            raise ValueError("flop_rate must be positive")
        return self.total_flops / flop_rate

    def sustained_gflops(self, flop_rate: float) -> float:
        """By construction equals flop_rate/1e9; kept for symmetry with
        the paper's 'completed X flops in Y seconds' phrasing."""
        return self.total_flops / self.virtual_seconds(flop_rate) / 1e9


class NBodySimulation:
    """Owns the state of one serial treecode run."""

    def __init__(self, config: SimConfig = SimConfig()):
        self.config = config
        self.pos, self.vel, self.mass = config.make_ic()
        self.total_flops = 0
        self.records: List[StepRecord] = []
        #: Per-call flop bill from :meth:`_accel`, in order.  Entry 0 is
        #: the priming call in :meth:`run`; entries 1.. match ``records``.
        self.flops_ledger: List[int] = []
        self._acc: Optional[np.ndarray] = None
        self._tree_cache = TreeBuildCache()

    def _accel(self, pos: np.ndarray) -> Tuple[np.ndarray, int]:
        cfg = self.config
        if cfg.naive_traversal:
            tree = HashedOctree(pos, self.mass, leaf_size=cfg.leaf_size)
        else:
            tree = self._tree_cache.build(
                pos, self.mass, leaf_size=cfg.leaf_size
            )
        acc, stats = tree_accelerations(
            tree,
            theta=cfg.theta,
            softening=cfg.softening,
            use_karp=cfg.use_karp,
            naive=cfg.naive_traversal,
        )
        if not cfg.naive_traversal:
            stats.tree_rebuilds = self._tree_cache.rebuilds
            stats.tree_reuses = self._tree_cache.reuses
        flops = stats.flops + BUILD_FLOPS_PER_PARTICLE * len(pos)
        self.flops_ledger.append(flops)
        self._last_stats = stats
        self._last_tree_nodes = tree.node_count()
        return acc, flops

    def run(self, compute_energy: bool = True) -> SimResult:
        cfg = self.config
        e0 = (
            total_energy(self.pos, self.vel, self.mass,
                         softening=cfg.softening)
            if compute_energy else 0.0
        )
        acc, flops = self._accel(self.pos)
        self.total_flops += flops
        for step in range(cfg.steps):
            self.pos, self.vel, acc, flops = leapfrog_step(
                self.pos, self.vel, acc, cfg.dt, self._accel
            )
            self.total_flops += flops
            self.records.append(
                StepRecord(
                    step=step,
                    flops=flops,
                    interactions=self._last_stats.interactions,
                    nodes=self._last_tree_nodes,
                )
            )
        e1 = (
            total_energy(self.pos, self.vel, self.mass,
                         softening=cfg.softening)
            if compute_energy else 0.0
        )
        result = SimResult(
            config=cfg,
            pos=self.pos,
            vel=self.vel,
            mass=self.mass,
            total_flops=self.total_flops,
            records=self.records,
            energy_initial=e0,
            energy_final=e1,
        )
        if cfg.audit:
            from repro.check.auditors import audit_sim_result

            audit_sim_result(self, result)
        return result


def density_image(pos: np.ndarray, mass: np.ndarray, bins: int = 64,
                  axis: int = 2) -> np.ndarray:
    """Projected surface-density histogram (the Figure 3 stand-in)."""
    keep = [i for i in range(3) if i != axis]
    hist, _, _ = np.histogram2d(
        pos[:, keep[0]], pos[:, keep[1]], bins=bins, weights=mass
    )
    return hist


def ascii_render(image: np.ndarray, levels: str = " .:-=+*#%@") -> str:
    """Render a density image as ASCII art (for terminal examples)."""
    if image.size == 0:
        return ""
    scaled = np.log1p(image / max(image.max(), 1e-30) * 1e3)
    scaled /= max(scaled.max(), 1e-30)
    idx = np.minimum(
        (scaled * (len(levels) - 1)).astype(int), len(levels) - 1
    )
    rows = ["".join(levels[v] for v in row) for row in idx.T[::-1]]
    return "\n".join(rows)
