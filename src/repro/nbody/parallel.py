"""The parallel treecode over SimMPI (Table 2: scalability on MetaBlade).

Decomposition follows Warren-Salmon: particles are sorted along the
Morton curve and each rank owns a contiguous, leaf-aligned slice,
balanced by **work** - each particle carries the interaction count it
cost last step, and slice boundaries equalise that work (first step
falls back to equal counts).  Each timestep:

1. **allgather** every rank's (positions, masses, work) - the real
   communication, billed byte-for-byte on the Fast Ethernet star;
2. every rank builds the tree over the full set (replicated tree; at
   MetaBlade's scale the locally-essential-tree optimisation the real
   code uses is unnecessary, and replication is honest about costs);
3. every rank computes accelerations for its own leaves, charging its
   *measured* interaction flops to virtual time at the node's sustained
   rate, then allgathers the accelerations and integrates its slice.

Because every rank computes the same tree and the same per-group
accelerations, trajectories are bit-identical for any rank count -
a property the test suite checks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.network.timing import IdealFabric, star_fabric
from repro.nbody.sim import BUILD_FLOPS_PER_PARTICLE, SimConfig
from repro.nbody.tree import HashedOctree, TreeBuildCache
from repro.nbody.traversal import (
    leaf_aligned_partition,
    tree_accelerations,
)
from repro.runner import parallel_map
from repro.simmpi import SimMpiRuntime


@dataclass
class ScalingPoint:
    """One row of the Table 2 study."""

    cpus: int
    time_s: float                 # virtual wall time of the run
    speedup: float
    efficiency: float
    comm_fraction: float


def parallel_nbody_step(comm, pos_local, vel_local, mass_local,
                        config: SimConfig, flop_rate: float,
                        balance: str = "work",
                        tree_cache: Optional[TreeBuildCache] = None):
    """SPMD program: advance the local slice by ``config.steps`` steps.

    Written generator-style for SimMPI; returns the final local
    ``(pos, vel)`` slice.  ``balance`` picks the decomposition:
    ``"work"`` (Warren-Salmon work counters) or ``"count"``.

    ``tree_cache`` shares octree builds between ranks: every rank
    constructs the *replicated* tree over the same gathered particles,
    so after one rank pays for the build the rest take the full-reuse
    path.  Purely a host-side optimisation — the modelled build flops
    are still charged to every rank's virtual clock.
    """
    if balance not in ("work", "count"):
        raise ValueError("balance must be 'work' or 'count'")
    pos, vel, mass = pos_local, vel_local, mass_local
    work = np.ones(len(pos))
    acc = None
    for _ in range(config.steps + 1):   # first pass computes initial acc
        gathered = yield from comm.allgather((pos, mass, work))
        all_pos = np.vstack([g[0] for g in gathered])
        all_mass = np.concatenate([g[1] for g in gathered])
        all_work = np.concatenate([g[2] for g in gathered])
        offsets = np.cumsum([0] + [len(g[0]) for g in gathered])
        my_lo, my_hi = offsets[comm.rank], offsets[comm.rank + 1]

        if tree_cache is None:
            tree = HashedOctree(
                all_pos, all_mass, leaf_size=config.leaf_size
            )
        else:
            tree = tree_cache.build(
                all_pos, all_mass, leaf_size=config.leaf_size
            )
        comm.compute_flops(
            BUILD_FLOPS_PER_PARTICLE * len(all_pos), flop_rate
        )

        weights = all_work[tree.order] if balance == "work" else None
        spans = leaf_aligned_partition(tree, comm.size, weights)
        lo, hi = spans[comm.rank]
        acc_sorted, stats = tree_accelerations(
            tree,
            theta=config.theta,
            softening=config.softening,
            target_slice=(lo, hi),
            use_karp=config.use_karp,
        )
        comm.compute_flops(stats.flops, flop_rate)

        # Fresh per-particle work for next step's decomposition.
        work_span = np.zeros(hi - lo)
        for glo, ghi, inter in stats.group_work:
            if ghi > glo:
                work_span[glo - lo:ghi - lo] = inter / (ghi - glo)

        # Exchange accelerations (and work) so each rank gets its own
        # particles back: ownership is by original index.
        my_sorted_idx = tree.order[lo:hi]          # original indices
        acc_parts = yield from comm.allgather(
            (my_sorted_idx, acc_sorted, work_span)
        )
        acc_full = np.zeros_like(all_pos)
        work_full = np.zeros(len(all_pos))
        for idx, part, wpart in acc_parts:
            acc_full[idx] = part
            work_full[idx] = wpart
        acc_mine = acc_full[my_lo:my_hi]
        work = work_full[my_lo:my_hi]

        if acc is None:
            acc = acc_mine
            continue
        # KDK using the freshly computed acceleration as the new kick.
        vel = vel + 0.5 * config.dt * (acc + acc_mine)
        pos = pos + config.dt * (vel + 0.5 * config.dt * acc_mine)
        acc = acc_mine
    return pos, vel


def _split(arr: np.ndarray, parts: int) -> List[np.ndarray]:
    bounds = np.linspace(0, len(arr), parts + 1).astype(int)
    return [arr[bounds[i]:bounds[i + 1]] for i in range(parts)]


def run_parallel_nbody(config: SimConfig, cpus: int, flop_rate: float,
                       ideal_network: bool = False,
                       balance: str = "work",
                       fabric=None,
                       runtime: Optional[SimMpiRuntime] = None):
    """Run the SPMD treecode on a modelled MetaBlade of *cpus* blades.

    ``fabric`` overrides the interconnect (defaults to the Fast Ethernet
    star, or :class:`IdealFabric` with ``ideal_network=True``).
    ``runtime`` overrides the whole scheduler — pass one prebuilt on a
    shared event kernel to trace timelines or inject failures.
    """
    pos, vel, mass = config.make_ic()
    if runtime is None:
        if fabric is None:
            fabric = IdealFabric(cpus) if ideal_network else star_fabric(cpus)
        runtime = SimMpiRuntime(cpus, fabric=fabric, flop_rate=flop_rate)
    elif runtime.size != cpus:
        raise ValueError(
            f"runtime has {runtime.size} ranks but cpus={cpus}"
        )
    pos_parts = _split(pos, cpus)
    vel_parts = _split(vel, cpus)
    mass_parts = _split(mass, cpus)
    # All ranks build the same replicated tree over the same gathered
    # particles, in the same interleaved process: share the builds.
    tree_cache = TreeBuildCache()

    def program(comm):
        result = yield from parallel_nbody_step(
            comm,
            pos_parts[comm.rank],
            vel_parts[comm.rank],
            mass_parts[comm.rank],
            config,
            flop_rate,
            balance=balance,
            tree_cache=tree_cache,
        )
        return result

    return runtime.run(program)


def _scaling_point_worker(args) -> Tuple[float, float]:
    """One Table 2 point; module-level so the process pool can pickle it.

    ``platform`` travels as a registry *name* (not a spec object) so the
    work tuple stays trivially picklable across the process pool.
    """
    config, cpus, flop_rate, ideal_network, balance, platform = args
    fabric = None
    if platform is not None and not ideal_network:
        from repro.platform.registry import platform_by_name
        fabric = platform_by_name(platform).build_fabric(cpus)
    run = run_parallel_nbody(
        config, cpus, flop_rate,
        ideal_network=ideal_network, balance=balance, fabric=fabric,
    )
    return run.elapsed_s, run.communication_fraction


def scaling_study(config: SimConfig, cpu_counts: Tuple[int, ...],
                  flop_rate: float,
                  ideal_network: bool = False,
                  balance: str = "work",
                  jobs: int = 1,
                  platform: Optional[str] = None) -> List[ScalingPoint]:
    """Regenerate Table 2: time and speedup vs CPU count.

    Each CPU count is an independent simulation, so with ``jobs > 1``
    the points fan out over a process pool (:mod:`repro.runner`); the
    ordered merge keeps the result list identical to a serial run.
    ``platform`` names a registry entry whose declared fabric carries
    each point (default: the MetaBlade Fast Ethernet star).  Counts
    exceeding that platform's node count cannot run on it; rather than
    letting the fabric builder blow up inside a pool worker, they are
    dropped here with an explicit :class:`UserWarning`.
    """
    if platform is not None:
        import warnings

        from repro.platform.registry import platform_by_name

        limit = platform_by_name(platform).nodes
        dropped = tuple(c for c in cpu_counts if c > limit)
        if dropped:
            warnings.warn(
                f"scaling_study: dropping CPU counts {dropped} — "
                f"{platform} has only {limit} nodes",
                UserWarning, stacklevel=2,
            )
            cpu_counts = tuple(c for c in cpu_counts if c <= limit)
        if not cpu_counts:
            raise ValueError(
                f"no CPU count fits {platform}'s {limit} nodes"
            )
    work = [
        (config, cpus, flop_rate, ideal_network, balance, platform)
        for cpus in cpu_counts
    ]
    measured = parallel_map(_scaling_point_worker, work, jobs=jobs)
    points: List[ScalingPoint] = []
    base_time: Optional[float] = None
    for cpus, (t, comm_fraction) in zip(cpu_counts, measured):
        if base_time is None:
            # Normalise against the first configuration (scaled if the
            # list does not start at one CPU).
            base_time = t * cpus if cpus != 1 else t
        speedup = base_time / t
        points.append(
            ScalingPoint(
                cpus=cpus,
                time_s=t,
                speedup=speedup,
                efficiency=speedup / cpus,
                comm_fraction=comm_fraction,
            )
        )
    return points
