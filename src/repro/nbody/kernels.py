"""Direct-summation gravity kernels: the golden reference for forces.

Also the unit of flop accounting: following the Warren-Salmon treecode
convention, one gravitational interaction (monopole on a particle, or
particle on particle) is billed at 38 floating-point operations - the
cost of the full 3-D evaluation including the reciprocal-square-root
expansion.  The paper's 2.1-Gflops MetaBlade rating uses this currency.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.nbody.karp import KarpTable, karp_rsqrt, masked_rsqrt

#: Flops billed per gravitational interaction (Warren-Salmon convention).
INTERACTION_FLOPS = 38

#: Shared zero-safe reciprocal square root (see :mod:`repro.nbody.karp`).
_rsqrt = masked_rsqrt


def direct_accelerations(
    pos: np.ndarray,
    mass: np.ndarray,
    softening: float = 1e-3,
    g: float = 1.0,
    use_karp: bool = False,
    chunk: int = 256,
) -> Tuple[np.ndarray, int]:
    """O(N^2) accelerations; returns ``(acc, flops)``.

    Evaluated in row chunks so memory stays O(chunk * N).  With
    ``use_karp=True`` the reciprocal square root goes through Karp's
    algorithm - the results agree with the libm path to ~1e-15, which
    the test suite asserts.
    """
    pos = np.asarray(pos, dtype=np.float64)
    mass = np.asarray(mass, dtype=np.float64)
    n = len(pos)
    if pos.shape != (n, 3):
        raise ValueError("pos must be (N, 3)")
    if mass.shape != (n,):
        raise ValueError("mass must be (N,)")
    acc = np.zeros_like(pos)
    eps2 = softening * softening
    interactions = 0
    for lo in range(0, n, chunk):
        hi = min(lo + chunk, n)
        diff = pos[None, :, :] - pos[lo:hi, None, :]     # (c, N, 3)
        r2 = np.einsum("ijk,ijk->ij", diff, diff) + eps2
        rinv = _rsqrt(r2, use_karp)
        rinv3 = rinv * rinv * rinv
        # Self-interaction has diff = 0, so it contributes nothing, but
        # exclude it from the flop count.
        acc[lo:hi] = g * np.einsum("ij,ijk->ik", mass * rinv3, diff)
        interactions += (hi - lo) * (n - 1)
    return acc, interactions * INTERACTION_FLOPS


def direct_potential(
    pos: np.ndarray,
    mass: np.ndarray,
    softening: float = 1e-3,
    g: float = 1.0,
    chunk: int = 256,
) -> np.ndarray:
    """Per-particle gravitational potential (for energy diagnostics)."""
    pos = np.asarray(pos, dtype=np.float64)
    mass = np.asarray(mass, dtype=np.float64)
    n = len(pos)
    pot = np.zeros(n)
    eps2 = softening * softening
    for lo in range(0, n, chunk):
        hi = min(lo + chunk, n)
        diff = pos[None, :, :] - pos[lo:hi, None, :]
        r2 = np.einsum("ijk,ijk->ij", diff, diff) + eps2
        rinv = _rsqrt(r2, use_karp=False)
        # Zero out the self term (rinv of eps2 alone).
        for row, i in enumerate(range(lo, hi)):
            rinv[row, i] = 0.0
        pot[lo:hi] = -g * rinv @ mass
    return pot


def pairwise_interaction_count(n: int) -> int:
    """Interactions in one full direct evaluation (ordered pairs)."""
    return n * (n - 1)
