"""Quadrupole moments for the treecode (the library's higher-order path).

The production Warren-Salmon library carries multipole expansions past
the monopole; this module adds the quadrupole term.  With the traceless
quadrupole tensor of a cell about its centre of mass,

    Q = sum_i m_i * (3 d_i d_i^T - |d_i|^2 I),        d_i = r_i - com,

the potential and acceleration of the cell at displacement
``d = target - com`` (r = |d|) gain the corrections

    Phi_quad = -G * (d^T Q d) / (2 r^5)
    a_quad   = -G * [ Q d / r^5 - (5/2) (d^T Q d) d / r^7 ]

which cut the force error at fixed opening angle by roughly another
order of theta^2 - letting production runs use a larger, cheaper theta
for the same accuracy (the ablation bench quantifies the trade).
"""

from __future__ import annotations

from typing import Tuple

import numpy as np


def quadrupole_tensor(pos: np.ndarray, mass: np.ndarray,
                      com: np.ndarray) -> np.ndarray:
    """Traceless quadrupole of particles about *com* (3x3)."""
    d = pos - com
    m = mass[:, None]
    second = (m * d).T @ d                       # sum m d d^T
    trace = np.trace(second)
    return 3.0 * second - trace * np.eye(3)


def quadrupole_from_sums(mass: float, com: np.ndarray,
                         second_moment: np.ndarray) -> np.ndarray:
    """Quadrupole from prefix-summable raw moments.

    ``second_moment`` is sum m x x^T about the *origin*; shifting to
    the centre of mass uses the parallel-axis relation
    sum m d d^T = S2 - mass * com com^T.
    """
    shifted = second_moment - mass * np.outer(com, com)
    trace = np.trace(shifted)
    return 3.0 * shifted - trace * np.eye(3)


def quadrupole_acceleration(
    diff: np.ndarray, rinv: np.ndarray, quads: np.ndarray, g: float
) -> np.ndarray:
    """Quadrupole acceleration corrections, vectorised.

    ``diff`` is (t, m, 3) = com - target (matching the monopole code's
    convention), ``rinv`` is (t, m), ``quads`` is (m, 3, 3).  Returns
    the (t, m, 3) per-cell corrections (sum over axis 1 to accumulate).

    In the d = target - com frame the correction is
    ``a = G [Q d / r^5 - 2.5 (d.Q.d) d / r^7]``; substituting
    d = -diff flips the sign of the linear Q d term only::

        a = -G (Q diff) / r^5 + 2.5 G (diff.Q.diff) diff / r^7
    """
    rinv2 = rinv * rinv
    rinv5 = rinv2 * rinv2 * rinv
    rinv7 = rinv5 * rinv2
    q_diff = np.einsum("mab,tmb->tma", quads, diff)      # (t, m, 3)
    dqd = np.einsum("tma,tma->tm", q_diff, diff)         # diff.Q.diff
    return (
        -g * q_diff * rinv5[..., None]
        + 2.5 * g * dqd[..., None] * diff * rinv7[..., None]
    )


def direct_quadrupole_check(
    target: np.ndarray, com: np.ndarray, quad: np.ndarray, g: float = 1.0
) -> np.ndarray:
    """Scalar-path reference for one target/one cell (for tests)."""
    d = target - com
    r = np.linalg.norm(d)
    qd = quad @ d
    dqd = float(d @ qd)
    return g * (qd / r**5 - 2.5 * dqd * d / r**7)
