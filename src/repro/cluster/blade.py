"""The RLX ServerBlade: a compute node on a motherboard blade."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cluster.node import ComputeNode, NodeConfig
from repro.cpus.base import ProcessorSpec


@dataclass(frozen=True)
class FormFactor:
    """Physical dimensions in inches."""

    width_in: float
    height_in: float
    depth_in: float

    @property
    def volume_cuin(self) -> float:
        return self.width_in * self.height_in * self.depth_in


#: A ServerBlade mounts vertically, 24 side by side in a 3U chassis:
#: each blade is under 0.7 inches wide.
BLADE_FORM_FACTOR = FormFactor(width_in=0.68, height_in=5.0, depth_in=13.0)


@dataclass(frozen=True)
class ServerBlade:
    """A hot-pluggable motherboard blade carrying one compute node.

    Three Fast Ethernet interfaces per blade (management, public,
    private) connect through the chassis midplane - no internal cables.
    """

    node: ComputeNode
    form_factor: FormFactor = BLADE_FORM_FACTOR
    hot_pluggable: bool = True

    @classmethod
    def for_processor(cls, spec: ProcessorSpec) -> "ServerBlade":
        return cls(
            node=ComputeNode(
                processor=spec,
                config=NodeConfig(network_interfaces=3),
            )
        )

    @property
    def watts_at_load(self) -> float:
        return self.node.watts_at_load

    @property
    def needs_active_cooling(self) -> bool:
        """Blades rely on chassis airflow only - no per-blade fans."""
        return False
