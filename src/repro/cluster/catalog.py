"""Named clusters: MetaBlade, MetaBlade2, Green Destiny, Avalon, Loki,
and the comparably-equipped traditional Beowulfs of Table 5.

Physical figures follow the paper where it states them: MetaBlade draws
0.4 kW of blade power (0.52 kW with chassis infrastructure) in six
square feet; a traditional 24-node cluster occupies twenty square feet;
Avalon (the 1998 Gordon Bell price/performance winner) fills 120 sq ft
at 18 kW; Green Destiny packs 240 blades into one rack on the MetaBlade
footprint.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from repro.cluster.blade import ServerBlade
from repro.cluster.chassis import RlxSystem324
from repro.cluster.rack import RACK_FOOTPRINT_SQFT, RACK_GEAR_WATTS, Rack
from repro.cpus.base import ProcessorSpec
from repro.cpus.catalog import (
    ALPHA_EV56_533,
    ATHLON_MP_1200,
    PENTIUM_4_1300,
    PENTIUM_III_500,
    PENTIUM_PRO_200,
    TM5600_633,
    TM5800_800,
)
from repro.cpus.power import COOLING_OVERHEAD_PER_WATT


class Packaging(enum.Enum):
    """How nodes are physically integrated."""

    TRADITIONAL = "traditional"     # minitowers / rackmount boxes, fans
    BLADED = "bladed"               # RLX chassis, passive blades


@dataclass(frozen=True)
class Cluster:
    """A complete cluster with its physical and economic attributes."""

    name: str
    processor: ProcessorSpec
    nodes: int
    packaging: Packaging
    footprint_sqft: float
    acquisition_usd: float
    year: int
    #: Sustained treecode performance in Gflops.  For machines we model
    #: (MetaBlade, MetaBlade2, Loki, Avalon) this is cross-checked by the
    #: performance model; for historical machines it is the published
    #: record the paper itself quotes.
    treecode_gflops: Optional[float] = None
    #: Explicit power override (kW at load) for historical machines.
    power_kw_override: Optional[float] = None

    def __post_init__(self) -> None:
        if self.nodes < 1:
            raise ValueError("a cluster needs at least one node")
        if self.footprint_sqft <= 0:
            raise ValueError("footprint must be positive")

    # -- physical ---------------------------------------------------------

    @property
    def chassis_count(self) -> int:
        """Number of RLX chassis (bladed packaging only)."""
        if self.packaging is not Packaging.BLADED:
            return 0
        return math.ceil(self.nodes / RlxSystem324.SLOTS)

    def build_hardware(self) -> Tuple[Rack, ...]:
        """Materialise the bladed hardware (chassis in racks).

        Only meaningful for bladed clusters; used by tests to check that
        the physical model and the closed-form power figures agree.
        """
        if self.packaging is not Packaging.BLADED:
            raise ValueError(f"{self.name} is not a bladed cluster")
        racks = []
        remaining = self.nodes
        while remaining > 0:
            rack = Rack()
            while remaining > 0 and rack.free_units >= 3:
                chassis = RlxSystem324()
                fill = min(remaining, RlxSystem324.SLOTS)
                for slot in range(fill):
                    chassis.insert(
                        slot, ServerBlade.for_processor(self.processor)
                    )
                chassis.validate_power()
                rack.mount(chassis)
                remaining -= fill
                if len(rack.chassis) >= 10:   # Green Destiny uses 10/rack
                    break
            racks.append(rack)
        if len(racks) == 1 and len(racks[0].chassis) == 1:
            # A lone chassis (MetaBlade) needs no rack aggregation gear;
            # its 0.52 kW figure already includes the chassis switch.
            racks[0].gear_watts = 0.0
        return tuple(racks)

    @property
    def power_kw(self) -> float:
        """Cluster draw at load, excluding machine-room cooling."""
        if self.power_kw_override is not None:
            return self.power_kw_override
        node_watts = self.nodes * self.processor.node_watts
        if self.packaging is Packaging.BLADED:
            overhead = self.chassis_count * RlxSystem324.OVERHEAD_WATTS
            if self.chassis_count > 1:
                overhead += RACK_GEAR_WATTS
            return (node_watts + overhead) / 1000.0
        return node_watts / 1000.0

    @property
    def cooling_kw(self) -> float:
        """Machine-room cooling burden (paper: +0.5 W per W, traditional
        clusters only; blades need no active cooling)."""
        if self.packaging is Packaging.BLADED:
            return 0.0
        return self.power_kw * COOLING_OVERHEAD_PER_WATT

    @property
    def total_power_kw(self) -> float:
        return self.power_kw + self.cooling_kw

    # -- performance ------------------------------------------------------

    @property
    def treecode_mflops_per_proc(self) -> Optional[float]:
        if self.treecode_gflops is None:
            return None
        return self.treecode_gflops * 1000.0 / self.nodes

    @property
    def perf_space_mflops_per_sqft(self) -> Optional[float]:
        """The paper's performance/space metric (Table 6)."""
        if self.treecode_gflops is None:
            return None
        return self.treecode_gflops * 1000.0 / self.footprint_sqft

    @property
    def perf_power_gflops_per_kw(self) -> Optional[float]:
        """The paper's performance/power metric (Table 7)."""
        if self.treecode_gflops is None:
            return None
        return self.treecode_gflops / self.power_kw


# ---------------------------------------------------------------------------
# The Bladed Beowulfs
# ---------------------------------------------------------------------------

METABLADE = Cluster(
    name="MetaBlade",
    processor=TM5600_633.spec,
    nodes=24,
    packaging=Packaging.BLADED,
    footprint_sqft=6.0,
    acquisition_usd=26_000.0,
    year=2001,
    treecode_gflops=2.1,          # paper Section 3.3 (SC'01 run)
)

METABLADE2 = Cluster(
    name="MetaBlade2",
    processor=TM5800_800.spec,
    nodes=24,
    packaging=Packaging.BLADED,
    footprint_sqft=6.0,
    acquisition_usd=26_000.0,
    year=2001,
    treecode_gflops=3.3,          # paper footnote 3 / Section 5
)

GREEN_DESTINY = Cluster(
    name="Green Destiny",
    processor=TM5800_800.spec,
    nodes=240,
    packaging=Packaging.BLADED,
    footprint_sqft=6.0,           # ten System 324s in one rack
    acquisition_usd=335_000.0,
    year=2002,
    treecode_gflops=21.5,         # projection the paper's Tables 6-7 use
)

# ---------------------------------------------------------------------------
# Traditional Beowulfs the paper compares against
# ---------------------------------------------------------------------------

AVALON = Cluster(
    name="Avalon",
    processor=ALPHA_EV56_533.spec,
    nodes=140,
    packaging=Packaging.TRADITIONAL,
    footprint_sqft=120.0,
    acquisition_usd=313_000.0,
    year=1998,
    treecode_gflops=18.0,
    power_kw_override=18.0,
)

LOKI = Cluster(
    name="Loki",
    processor=PENTIUM_PRO_200.spec,
    nodes=16,
    packaging=Packaging.TRADITIONAL,
    footprint_sqft=15.0,
    acquisition_usd=51_000.0,
    year=1996,
    treecode_gflops=0.7,
)


def traditional_beowulf(name: str, processor: ProcessorSpec,
                        acquisition_usd: float, nodes: int = 24,
                        footprint_sqft: float = 20.0,
                        year: int = 2001) -> Cluster:
    """A comparably-equipped traditional 24-node Beowulf (Table 5 row)."""
    return Cluster(
        name=name,
        processor=processor,
        nodes=nodes,
        packaging=Packaging.TRADITIONAL,
        footprint_sqft=footprint_sqft,
        acquisition_usd=acquisition_usd,
        year=year,
    )


#: The five clusters of Table 5, in column order, with the paper's
#: acquisition costs.
TABLE5_CLUSTERS: Tuple[Cluster, ...] = (
    traditional_beowulf("Alpha Beowulf", ALPHA_EV56_533.spec, 17_000.0),
    traditional_beowulf("Athlon Beowulf", ATHLON_MP_1200.spec, 15_000.0),
    traditional_beowulf("PIII Beowulf", PENTIUM_III_500.spec, 16_000.0),
    traditional_beowulf("P4 Beowulf", PENTIUM_4_1300.spec, 17_000.0),
    METABLADE,
)

CLUSTER_CATALOG: Dict[str, Cluster] = {
    c.name: c
    for c in (
        METABLADE,
        METABLADE2,
        GREEN_DESTINY,
        AVALON,
        LOKI,
        *TABLE5_CLUSTERS[:-1],
    )
}


def cluster_by_name(name: str) -> Cluster:
    try:
        return CLUSTER_CATALOG[name]
    except KeyError:
        known = ", ".join(sorted(CLUSTER_CATALOG))
        raise KeyError(f"unknown cluster {name!r}; known: {known}") from None
