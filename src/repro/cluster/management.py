"""Cluster management and failure injection.

Paper Section 2.3 describes the Management Hub card consolidating the
24 blade management networks, and Section 4.1 leans on it: "we would
leverage the bundled management software to diagnose a hardware problem
immediately", which is why a blade failure costs one node-hour while a
traditional cluster failure costs a four-hour whole-cluster outage.

This module makes those claims executable:

- :class:`ManagementHub` - an event log + detection-latency model per
  packaging style;
- :class:`ClusterOperationSim` - a seeded Monte-Carlo operation
  simulator on the shared discrete-event kernel: failures arrive as an
  event-chained Poisson process at the cluster's empirical (or
  Arrhenius-predicted) rate, each failure becomes an outage with the
  packaging's blast radius, and the simulator reports delivered
  CPU-hours, availability and downtime cost;
- :class:`LiveFailureInjector` - the same failure model pointed at a
  *running* SimMPI program: arrivals become
  :meth:`~repro.simmpi.runtime.SimMpiRuntime.fail_at` events on the
  run's own kernel, so the rank program sees the failure mid-execution
  while the hub logs it.

The test suite cross-checks the Monte-Carlo downtime against the
closed-form numbers the TCO model (Table 5) uses.
"""

from __future__ import annotations

import enum
import math
import random
from dataclasses import dataclass, field
from typing import List, Optional

from repro.cluster.catalog import Cluster, Packaging
from repro.cluster.reliability import (
    BLADED_OUTAGES,
    TRADITIONAL_OUTAGES,
    ClusterReliability,
    OutageProfile,
    sample_failure_times,
)
from repro.core.events import EventKernel


class EventKind(enum.Enum):
    FAILURE = "failure"
    DETECTED = "detected"
    REPAIRED = "repaired"


@dataclass(frozen=True)
class ManagementEvent:
    """One entry in the hub's event log."""

    time_h: float
    kind: EventKind
    node: int
    detail: str = ""


@dataclass
class ManagementHub:
    """The chassis management plane: sees failures, logs, reports.

    ``detection_latency_h`` models how long a failure stays invisible:
    near-zero for the hub's out-of-band monitoring, an hour-plus for a
    traditional cluster waiting for a user to notice their job died.
    """

    detection_latency_h: float
    log: List[ManagementEvent] = field(default_factory=list)

    @classmethod
    def for_packaging(cls, packaging: Packaging) -> "ManagementHub":
        if packaging is Packaging.BLADED:
            return cls(detection_latency_h=0.05)   # ~3 minutes, automated
        return cls(detection_latency_h=1.0)        # someone notices

    def record(self, event: ManagementEvent) -> None:
        self.log.append(event)

    def failures(self) -> List[ManagementEvent]:
        return [e for e in self.log if e.kind is EventKind.FAILURE]

    def mean_time_to_detect_h(self) -> float:
        """Measured from the log (failure -> detected pairs by node)."""
        detect_times = []
        open_failures = {}
        for event in self.log:
            if event.kind is EventKind.FAILURE:
                open_failures[event.node] = event.time_h
            elif event.kind is EventKind.DETECTED:
                start = open_failures.pop(event.node, None)
                if start is not None:
                    detect_times.append(event.time_h - start)
        if not detect_times:
            return 0.0
        return sum(detect_times) / len(detect_times)


@dataclass
class OperationReport:
    """Outcome of a simulated operation period."""

    hours: float
    nodes: int
    failures: int
    lost_cpu_hours: float
    hub: ManagementHub

    @property
    def total_cpu_hours(self) -> float:
        return self.hours * self.nodes

    @property
    def availability(self) -> float:
        """Fraction of offered CPU-hours delivered, clamped to [0, 1].

        Zero-hour runs are perfectly available by convention, and a
        whole-cluster blast radius on a short window can lose more
        CPU-hours than the window offered — that is 0% availability,
        not a negative one.
        """
        if self.total_cpu_hours <= 0:
            return 1.0
        fraction = 1.0 - self.lost_cpu_hours / self.total_cpu_hours
        return min(1.0, max(0.0, fraction))

    def downtime_cost(self, usd_per_cpu_hour: float = 5.0) -> float:
        return self.lost_cpu_hours * usd_per_cpu_hour


class ClusterOperationSim:
    """Seeded Monte-Carlo operation of one cluster."""

    def __init__(self, cluster: Cluster, seed: int = 0,
                 failures_per_year: Optional[float] = None) -> None:
        self.cluster = cluster
        self.rng = random.Random(seed)
        profile = self._profile()
        self.profile = profile
        #: Poisson arrival rate (failures/hour for the whole cluster).
        rate_year = (
            failures_per_year
            if failures_per_year is not None
            else profile.failures_per_year
        )
        self.rate_per_hour = rate_year / 8760.0

    def _profile(self) -> OutageProfile:
        if self.cluster.packaging is Packaging.BLADED:
            return BLADED_OUTAGES
        return TRADITIONAL_OUTAGES

    def run(self, hours: float,
            kernel: Optional[EventKernel] = None) -> OperationReport:
        """Simulate *hours* of operation; failures are Poisson arrivals.

        Arrivals are event-chained on a discrete-event kernel (clock
        unit: hours): each failure event draws the affected node, posts
        its detection and repair as future events, and schedules the
        next arrival.  The hub log therefore comes out globally
        time-ordered rather than grouped per failure.  The rng draw
        sequence (gap, node, gap, node, ...) matches the pre-kernel
        loop, so seeded results are unchanged.
        """
        if hours < 0:
            raise ValueError("hours cannot be negative")
        hub = ManagementHub.for_packaging(self.cluster.packaging)
        if hours == 0:
            # Zero-hour window: nothing can fail, report is empty.
            return OperationReport(
                hours=0.0, nodes=self.cluster.nodes, failures=0,
                lost_cpu_hours=0.0, hub=hub,
            )
        kernel = kernel if kernel is not None else EventKernel()
        counters = {"failures": 0, "lost": 0.0}
        affected = self.cluster.nodes if self.profile.whole_cluster else 1
        blast = "whole cluster" if self.profile.whole_cluster \
            else "single node"

        def schedule_next(now_h: float) -> None:
            gap = self.rng.expovariate(self.rate_per_hour)
            arrival = now_h + gap
            if arrival < hours:
                kernel.at(arrival, fail, arrival)

        def fail(t: float) -> None:
            counters["failures"] += 1
            counters["lost"] += self.profile.outage_hours * affected
            node = self.rng.randrange(self.cluster.nodes)
            hub.record(ManagementEvent(t, EventKind.FAILURE, node))
            kernel.at(
                t + hub.detection_latency_h, hub.record,
                ManagementEvent(
                    t + hub.detection_latency_h, EventKind.DETECTED, node
                ),
            )
            kernel.at(
                t + self.profile.outage_hours, hub.record,
                ManagementEvent(
                    t + self.profile.outage_hours, EventKind.REPAIRED,
                    node, detail=blast,
                ),
            )
            schedule_next(t)

        if self.rate_per_hour > 0:
            schedule_next(0.0)
        kernel.run()
        return OperationReport(
            hours=hours,
            nodes=self.cluster.nodes,
            failures=counters["failures"],
            lost_cpu_hours=counters["lost"],
            hub=hub,
        )

    def expected_lost_cpu_hours(self, hours: float) -> float:
        """Closed form the TCO model uses (for cross-checking)."""
        return self.profile.downtime_cpu_hours(
            self.cluster.nodes, hours / 8760.0
        )


class LiveFailureInjector:
    """Point the cluster failure model at a live SimMPI run.

    Where :class:`ClusterOperationSim` prices failures against an
    abstract operation period, this injector schedules them on the
    *runtime's own* event kernel, so the SPMD program experiences the
    failure mid-run (its ranks see
    :class:`~repro.simmpi.comm.NodeFailureError`) and the management
    hub logs it.  The SimMPI clock runs in seconds; hub entries are
    recorded in hours to match the operation model.
    """

    def __init__(self, runtime, profile: OutageProfile = BLADED_OUTAGES,
                 hub: Optional[ManagementHub] = None) -> None:
        self.runtime = runtime
        self.profile = profile
        self.hub = hub if hub is not None else ManagementHub(
            detection_latency_h=0.05
        )

    def fail_rank(self, time_s: float, rank: int,
                  detail: str = "") -> None:
        """Schedule *rank*'s node to die at virtual *time_s* seconds."""
        self.runtime.fail_at(time_s, rank, detail)
        time_h = time_s / 3600.0
        self.hub.record(
            ManagementEvent(time_h, EventKind.FAILURE, rank, detail)
        )
        self.hub.record(
            ManagementEvent(
                time_h + self.hub.detection_latency_h,
                EventKind.DETECTED, rank,
            )
        )

    def schedule_poisson(self, horizon_s: float,
                         rng: random.Random) -> List[float]:
        """Draw Poisson arrivals over the run horizon and inject them.

        SPMD runs last virtual seconds while cluster MTBFs are months,
        so one simulated second stands in for one operational hour: the
        profile's per-hour rate is applied per second of *horizon_s*.
        Each arrival picks a uniform random rank.  Returns the
        injection times (seconds).
        """
        times = sample_failure_times(
            rng, self.profile.rate_per_hour, horizon_s
        )
        for t in times:
            rank = rng.randrange(self.runtime.size)
            self.fail_rank(t, rank, detail="poisson arrival")
        return times

    def lost_cpu_hours(self) -> float:
        """Blast-radius accounting for the injected failures."""
        per_failure = self.profile.outage_hours * (
            self.runtime.size if self.profile.whole_cluster else 1
        )
        return len(self.hub.failures()) * per_failure


def inject_failure(cluster: Cluster, hub: ManagementHub, node: int,
                   time_h: float) -> float:
    """Deterministically inject one failure; returns lost CPU-hours.

    Used by the tests to check the blast-radius accounting directly.
    """
    if not 0 <= node < cluster.nodes:
        raise ValueError(f"node {node} outside 0..{cluster.nodes - 1}")
    profile = (
        BLADED_OUTAGES
        if cluster.packaging is Packaging.BLADED
        else TRADITIONAL_OUTAGES
    )
    hub.record(ManagementEvent(time_h, EventKind.FAILURE, node))
    hub.record(
        ManagementEvent(
            time_h + hub.detection_latency_h, EventKind.DETECTED, node
        )
    )
    hub.record(
        ManagementEvent(
            time_h + profile.outage_hours, EventKind.REPAIRED, node
        )
    )
    affected = cluster.nodes if profile.whole_cluster else 1
    return profile.outage_hours * affected
