"""Physical cluster models: nodes, blades, chassis, racks, clusters.

Carries the attributes the paper's Section 4 metrics consume: node
counts, power draw at load, cooling needs, footprint, acquisition cost
and failure behaviour - for both packaging styles:

- **traditional Beowulf**: tower/rackmount minitowers on shelves,
  actively cooled, ~20 sq ft per 24 nodes, a whole-cluster outage when
  a node fails;
- **Bladed Beowulf**: RLX System 324 chassis (24 ServerBlades in 3U),
  no active cooling, six square feet per rack, hot-pluggable blades so
  a failure takes down one node only.
"""

from repro.cluster.node import ComputeNode, NodeConfig
from repro.cluster.blade import ServerBlade, BLADE_FORM_FACTOR
from repro.cluster.chassis import RlxSystem324, ChassisError
from repro.cluster.rack import Rack, RACK_FOOTPRINT_SQFT
from repro.cluster.catalog import (
    AVALON,
    CLUSTER_CATALOG,
    GREEN_DESTINY,
    LOKI,
    METABLADE,
    METABLADE2,
    TABLE5_CLUSTERS,
    Cluster,
    Packaging,
    cluster_by_name,
    traditional_beowulf,
)
from repro.cluster.management import (
    ClusterOperationSim,
    LiveFailureInjector,
    ManagementHub,
)
from repro.cluster.reliability import (
    BLADED_OUTAGES,
    TRADITIONAL_OUTAGES,
    ClusterReliability,
    OutageProfile,
    sample_failure_times,
)

__all__ = [
    "AVALON",
    "BLADED_OUTAGES",
    "BLADE_FORM_FACTOR",
    "CLUSTER_CATALOG",
    "ChassisError",
    "Cluster",
    "ClusterOperationSim",
    "ClusterReliability",
    "ComputeNode",
    "GREEN_DESTINY",
    "LOKI",
    "LiveFailureInjector",
    "METABLADE",
    "METABLADE2",
    "ManagementHub",
    "NodeConfig",
    "OutageProfile",
    "TRADITIONAL_OUTAGES",
    "Packaging",
    "RACK_FOOTPRINT_SQFT",
    "Rack",
    "RlxSystem324",
    "ServerBlade",
    "TABLE5_CLUSTERS",
    "cluster_by_name",
    "sample_failure_times",
    "traditional_beowulf",
]
