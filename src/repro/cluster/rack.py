"""Standard 19-inch rack holding chassis (the Green Destiny package)."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from repro.cluster.chassis import ChassisError, RlxSystem324

#: Floor space of one rack including service clearance - the paper's
#: "six square feet" for both MetaBlade and a full Green Destiny rack.
RACK_FOOTPRINT_SQFT = 6.0

#: Network/aggregation gear power for a fully-populated rack.
RACK_GEAR_WATTS = 720.0


@dataclass
class Rack:
    """A 42U rack: up to fourteen 3U chassis (ten used by Green Destiny)."""

    rack_units: int = 42
    footprint_sqft: float = RACK_FOOTPRINT_SQFT
    gear_watts: float = RACK_GEAR_WATTS
    chassis: List[RlxSystem324] = field(default_factory=list)

    @property
    def used_units(self) -> int:
        return sum(c.dims.rack_units for c in self.chassis)

    @property
    def free_units(self) -> int:
        return self.rack_units - self.used_units

    def mount(self, chassis: RlxSystem324) -> None:
        if chassis.dims.rack_units > self.free_units:
            raise ChassisError(
                f"no room: {chassis.dims.rack_units}U needed, "
                f"{self.free_units}U free"
            )
        self.chassis.append(chassis)

    @property
    def node_count(self) -> int:
        return sum(len(c) for c in self.chassis)

    @property
    def watts_at_load(self) -> float:
        """Rack draw: all chassis plus shared network gear."""
        chassis_watts = sum(c.watts_at_load for c in self.chassis)
        gear = self.gear_watts if self.chassis else 0.0
        return chassis_watts + gear
