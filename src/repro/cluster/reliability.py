"""Cluster-level reliability: failures, outages and lost CPU-hours.

Encodes the paper's two outage regimes:

- **traditional Beowulf**: "a failure and subsequent four-hour outage
  (on average) every two months", and a single failure takes the whole
  cluster down (shared NFS root, interdependent job state);
- **Bladed Beowulf**: hot-pluggable blades plus bundled management
  software mean a failure costs one node for about an hour (the paper
  assumes one failure per year diagnosed in an hour; its first nine
  months had zero hardware and zero software failures).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cluster.catalog import Cluster, Packaging
from repro.cpus.power import FailureModel, ThermalModel


@dataclass(frozen=True)
class OutageProfile:
    """Failure frequency and blast radius for one packaging style."""

    failures_per_year: float
    outage_hours: float
    whole_cluster: bool

    def downtime_cpu_hours(self, nodes: int, years: float) -> float:
        """Expected lost CPU-hours over the period."""
        outages = self.failures_per_year * years
        affected = nodes if self.whole_cluster else 1
        return outages * self.outage_hours * affected

    @property
    def rate_per_hour(self) -> float:
        """Poisson arrival rate for the whole cluster (failures/hour)."""
        return self.failures_per_year / 8760.0


def sample_failure_times(rng, rate_per_hour: float,
                         horizon_h: float) -> "list[float]":
    """Poisson failure arrival times (hours) over [0, *horizon_h*).

    One expovariate draw per arrival plus the final horizon-crossing
    draw — the same draw pattern :class:`ClusterOperationSim` uses, so
    a shared seeded ``random.Random`` prices identically either way.
    """
    times: list = []
    if rate_per_hour <= 0:
        return times
    t = 0.0
    while True:
        t += rng.expovariate(rate_per_hour)
        if t >= horizon_h:
            return times
        times.append(t)


#: Paper Section 4.1: 6 outages/year x 4 h, whole cluster affected.
TRADITIONAL_OUTAGES = OutageProfile(
    failures_per_year=6.0, outage_hours=4.0, whole_cluster=True
)

#: Paper Section 4.1: assume one failure/year, diagnosed in an hour,
#: one blade affected.
BLADED_OUTAGES = OutageProfile(
    failures_per_year=1.0, outage_hours=1.0, whole_cluster=False
)


@dataclass(frozen=True)
class ClusterReliability:
    """Reliability view of a cluster, combining the empirical outage
    profiles with the Arrhenius failure-rate model for what-if studies."""

    cluster: Cluster
    thermal: ThermalModel = ThermalModel()
    failure_model: FailureModel = FailureModel()

    @property
    def outage_profile(self) -> OutageProfile:
        if self.cluster.packaging is Packaging.BLADED:
            return BLADED_OUTAGES
        return TRADITIONAL_OUTAGES

    def downtime_cpu_hours(self, years: float) -> float:
        return self.outage_profile.downtime_cpu_hours(
            self.cluster.nodes, years
        )

    def predicted_failures_per_year(self) -> float:
        """Physics-based estimate from CPU temperature (Arrhenius)."""
        return self.failure_model.expected_failures(
            self.cluster.processor, self.cluster.nodes, years=1.0,
            thermal=self.thermal,
        )

    def availability(self, years: float = 1.0) -> float:
        """Fraction of cluster CPU-hours delivered."""
        total = self.cluster.nodes * years * 8760.0
        lost = self.downtime_cpu_hours(years)
        return max(0.0, 1.0 - lost / total)
