"""The RLX System 324: 24 ServerBlades in a 3U chassis.

Paper Section 2.3: the chassis fits a standard 19-inch rack at 5.25 in
high by 17.25 in wide by 25.2 in deep, carries two hot-pluggable 450 W
load-balancing power supplies, a midplane distributing power/management/
network to all blades, a Management Hub card (24 management networks out
one RJ45) and two Network Connect cards (public/private interfaces).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.cluster.blade import ServerBlade
from repro.cluster.node import ComputeNode


class ChassisError(ValueError):
    """Raised on invalid chassis population."""


@dataclass(frozen=True)
class ChassisDimensions:
    height_in: float = 5.25
    width_in: float = 17.25
    depth_in: float = 25.2
    rack_units: int = 3


@dataclass
class RlxSystem324:
    """One Bladed Beowulf building block."""

    SLOTS = 24
    #: Chassis infrastructure power: midplane, hub card, network-connect
    #: cards and power-supply conversion loss at load.
    OVERHEAD_WATTS = 112.0
    PSU_WATTS = 450.0
    PSU_COUNT = 2

    dims: ChassisDimensions = field(default_factory=ChassisDimensions)
    _blades: List[Optional[ServerBlade]] = field(
        default_factory=lambda: [None] * 24
    )

    def insert(self, slot: int, blade: ServerBlade) -> None:
        """Hot-plug a blade into *slot* (0-23)."""
        self._check_slot(slot)
        if self._blades[slot] is not None:
            raise ChassisError(f"slot {slot} is already populated")
        self._blades[slot] = blade

    def remove(self, slot: int) -> ServerBlade:
        """Hot-unplug the blade in *slot*."""
        self._check_slot(slot)
        blade = self._blades[slot]
        if blade is None:
            raise ChassisError(f"slot {slot} is empty")
        self._blades[slot] = None
        return blade

    def populate(self, blade_factory) -> None:
        """Fill every empty slot using ``blade_factory() -> ServerBlade``."""
        for slot in range(self.SLOTS):
            if self._blades[slot] is None:
                self._blades[slot] = blade_factory()

    @property
    def blades(self) -> Tuple[ServerBlade, ...]:
        return tuple(b for b in self._blades if b is not None)

    @property
    def nodes(self) -> Tuple[ComputeNode, ...]:
        return tuple(b.node for b in self.blades)

    def __len__(self) -> int:
        return len(self.blades)

    @property
    def watts_at_load(self) -> float:
        """Chassis draw: blades plus infrastructure overhead."""
        blade_watts = sum(b.watts_at_load for b in self.blades)
        return blade_watts + self.OVERHEAD_WATTS

    @property
    def psu_headroom(self) -> float:
        """Fraction of total supply capacity in use."""
        return self.watts_at_load / (self.PSU_COUNT * self.PSU_WATTS)

    @property
    def psu_redundant(self) -> bool:
        """True if a single supply could carry the whole chassis."""
        return self.watts_at_load <= self.PSU_WATTS

    def validate_power(self) -> None:
        """The dual supplies must cover the chassis at load."""
        capacity = self.PSU_COUNT * self.PSU_WATTS
        if self.watts_at_load > capacity:
            raise ChassisError(
                f"chassis draws {self.watts_at_load:.0f} W, exceeding the "
                f"combined {capacity:.0f} W supply capacity"
            )

    @staticmethod
    def _check_slot(slot: int) -> None:
        if not 0 <= slot < RlxSystem324.SLOTS:
            raise ChassisError(f"slot {slot} outside 0..23")
