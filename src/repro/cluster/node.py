"""Compute node: a processor plus memory, disk and network interfaces."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cpus.base import ProcessorSpec
from repro.cpus.power import PowerModel


@dataclass(frozen=True)
class NodeConfig:
    """Configuration shared by the paper's comparison clusters.

    Every 24-node cluster in Table 5 is "comparably equipped": a 500 to
    650 MHz-class CPU, 256 MB memory, 10 GB disk (the Pentium 4 being
    the 1.3 GHz exception the paper notes).
    """

    memory_mb: int = 256
    disk_gb: int = 10
    network_interfaces: int = 1
    nic_mbps: int = 100


@dataclass(frozen=True)
class ComputeNode:
    """One node: processor spec + peripherals + power model."""

    processor: ProcessorSpec
    config: NodeConfig = field(default_factory=NodeConfig)

    @property
    def power(self) -> PowerModel:
        return PowerModel.for_spec(self.processor)

    @property
    def watts_at_load(self) -> float:
        """Complete node dissipation under load (CPU + mem + disk + NIC)."""
        return self.processor.node_watts

    @property
    def name(self) -> str:
        return f"{self.processor.name} node"

    def describe(self) -> str:
        cfg = self.config
        return (
            f"{self.processor.clock_mhz:.0f}-MHz {self.processor.name}, "
            f"{cfg.memory_mb}-MB memory, {cfg.disk_gb}-GB disk, "
            f"{cfg.network_interfaces}x {cfg.nic_mbps}-Mb/s NIC"
        )
