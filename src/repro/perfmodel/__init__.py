"""Workload-to-processor performance projection.

Bridges the instruction-level simulators (which execute guest code) and
the application-level workloads (NPB kernels, the treecode) that are
too large to push through a cycle simulator: each CPU is characterised
by measured per-class costs on three calibration microkernels (FP-heavy
Karp, memory-heavy STREAM triad, integer-heavy Fibonacci), and a
workload's :class:`~repro.npb.common.OpMix` is projected through those
rates.
"""

from repro.perfmodel.workload import CpuCharacterization, characterize
from repro.perfmodel.projector import (
    project_mops,
    project_runtime_s,
    table3_mops,
)
from repro.perfmodel.calibration import (
    REFERENCE_TABLE1,
    TREECODE_EFFICIENCY,
    metablade_node_rate,
    sustained_treecode_mflops,
    table1_mflops,
)

__all__ = [
    "CpuCharacterization",
    "REFERENCE_TABLE1",
    "TREECODE_EFFICIENCY",
    "characterize",
    "metablade_node_rate",
    "project_mops",
    "project_runtime_s",
    "sustained_treecode_mflops",
    "table1_mflops",
    "table3_mops",
]
