"""Per-CPU characterisation via calibration microkernels.

Three guest microkernels stress the three resource classes of
:class:`repro.npb.common.OpMix`:

- ``karp``  - floating-point pipelines (no divide/sqrt, pure mul/add);
- ``triad`` - loads/stores (STREAM-style);
- ``int_checksum`` - integer ALU and branches.

Each runs end to end through the CPU's own execution model (port/ROB
simulator or the full CMS+VLIW pipeline), yielding measured
cycles-per-guest-operation for that class.  Characterisations are
cached per processor name - simulation runs are deterministic.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.cpus.base import Processor
from repro.isa import programs
from repro.npb.common import OpMix


@dataclass(frozen=True)
class CpuCharacterization:
    """Measured per-class cycles-per-operation for one CPU."""

    cpu_name: str
    clock_hz: float
    cpi_fp: float
    cpi_mem: float
    cpi_int: float

    def cpi_for(self, mix: OpMix) -> float:
        """Blend the class costs by the workload's mix."""
        return (
            mix.fp * self.cpi_fp
            + mix.mem * self.cpi_mem
            + mix.int_ * self.cpi_int
        )

    def ops_per_second(self, mix: OpMix) -> float:
        return self.clock_hz / self.cpi_for(mix)


_CACHE: Dict[str, CpuCharacterization] = {}

#: Calibration workload sizes: long enough that CMS translation costs
#: amortise the way they would on a real long-running benchmark.
_KARP = dict(n=64, passes=60)
_TRIAD_N = 4096
_INT_N = 4000

#: Average bytes of DRAM traffic per memory-class operation.
BYTES_PER_MEM_OP = 8.0


def characterize(cpu: Processor, refresh: bool = False) -> CpuCharacterization:
    """Measure (or fetch cached) per-class rates for *cpu*."""
    if not refresh and cpu.name in _CACHE:
        return _CACHE[cpu.name]

    karp = cpu.run_workload(programs.gravity_microkernel_karp(**_KARP))
    triad = cpu.run_workload(programs.stream_triad(n=_TRIAD_N))
    intk = cpu.run_workload(programs.int_checksum(n=_INT_N))

    # The instruction simulators model flat memory; cap streaming rates
    # at the node's DRAM bandwidth (BYTES_PER_MEM_OP bytes per memory
    # operation, typical of stride-1 double-precision kernels).
    dram_cpi = (
        cpu.spec.clock_hz * BYTES_PER_MEM_OP
        / (cpu.spec.memory_gbs * 1e9)
    )
    result = CpuCharacterization(
        cpu_name=cpu.name,
        clock_hz=cpu.spec.clock_hz,
        cpi_fp=karp.cycles_per_instruction,
        cpi_mem=max(triad.cycles_per_instruction, dram_cpi),
        cpi_int=intk.cycles_per_instruction,
    )
    _CACHE[cpu.name] = result
    return result


def clear_cache() -> None:
    _CACHE.clear()
