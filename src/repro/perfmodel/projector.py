"""Project NPB kernel Mops onto processor models (Table 3)."""

from __future__ import annotations

from typing import Dict, Iterable, List, Tuple

from repro.cpus.base import Processor
from repro.npb.common import KernelOutcome
from repro.perfmodel.workload import characterize


def project_mops(cpu: Processor, outcome: KernelOutcome) -> float:
    """Mop/s rating of *outcome*'s kernel on *cpu*.

    The kernel's operation mix is blended through the CPU's measured
    per-class cycle costs; the Mops figure is operations per second at
    the blended rate - the quantity the paper's Table 3 reports.
    """
    character = characterize(cpu)
    return character.ops_per_second(outcome.mix) / 1e6


def project_runtime_s(cpu: Processor, outcome: KernelOutcome) -> float:
    """Wall seconds the kernel's full operation count would take."""
    character = characterize(cpu)
    return outcome.operations / character.ops_per_second(outcome.mix)


def table3_mops(
    cpus: Iterable[Processor],
    outcomes: Iterable[KernelOutcome],
) -> List[Tuple[str, Dict[str, float]]]:
    """Rows of Table 3: kernel name -> {cpu name: Mops}."""
    cpus = list(cpus)
    rows: List[Tuple[str, Dict[str, float]]] = []
    for outcome in outcomes:
        outcome.require_verified()
        rows.append(
            (
                outcome.name,
                {cpu.name: project_mops(cpu, outcome) for cpu in cpus},
            )
        )
    return rows
