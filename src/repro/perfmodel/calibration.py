"""Calibration constants and reference measurements.

``REFERENCE_TABLE1`` records this library's measured Table 1 (the
regression tests pin the simulators to it within a tolerance);
``TREECODE_EFFICIENCY`` converts a CPU's Karp-microkernel rating into a
sustained treecode rating.

The single efficiency factor is fixed so the modelled MetaBlade matches
the paper's measured 2.1 Gflops (87.5 Mflops/processor on 24 blades);
the same factor then independently lands Avalon's Alphas at ~125
Mflops/proc and Loki's Pentium Pros at ~43 - the paper's "about the
same as the Avalon Alphas" and "about twice the Pentium Pro" Table 4
relationships - which is the model's main cross-validation.
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.cpus.base import Processor
from repro.isa import programs

#: Our measured Table 1 (Mflops): processor name -> (math, karp).
#: Workload: gravity microkernel, n=64, passes=100 (deterministic).
REFERENCE_TABLE1: Dict[str, Tuple[float, float]] = {
    "Intel Pentium III": (89.0, 151.1),
    "Compaq Alpha EV56": (79.6, 175.3),
    "Transmeta TM5600": (102.8, 124.7),
    "IBM Power3": (278.6, 391.8),
    "AMD Athlon MP": (433.3, 569.6),
}

#: Canonical Table 1 workload parameters.
TABLE1_WORKLOAD = dict(n=64, passes=100)

#: Sustained treecode Mflops ~= TREECODE_EFFICIENCY x Karp Mflops.
#: Tree walks, cache misses and bookkeeping keep real codes below the
#: inner-kernel rate; 0.7014 pins MetaBlade at the paper's 87.5
#: Mflops/processor.
TREECODE_EFFICIENCY = 0.7014

_RATE_CACHE: Dict[str, float] = {}


def table1_mflops(cpu: Processor) -> Tuple[float, float]:
    """(math, karp) Mflops of *cpu* on the canonical Table 1 workload."""
    math_r = cpu.run_workload(
        programs.gravity_microkernel_math(**TABLE1_WORKLOAD)
    )
    karp_r = cpu.run_workload(
        programs.gravity_microkernel_karp(**TABLE1_WORKLOAD)
    )
    return math_r.mflops, karp_r.mflops


def sustained_treecode_mflops(cpu: Processor) -> float:
    """Modelled per-processor treecode rating (Table 4 currency)."""
    rate = _RATE_CACHE.get(cpu.name)
    if rate is None:
        karp_r = cpu.run_workload(
            programs.gravity_microkernel_karp(**TABLE1_WORKLOAD)
        )
        rate = TREECODE_EFFICIENCY * karp_r.mflops
        _RATE_CACHE[cpu.name] = rate
    return rate


def metablade_node_rate() -> float:
    """Sustained flops/s of one MetaBlade node (drives Table 2)."""
    from repro.cpus.catalog import TM5600_633
    return sustained_treecode_mflops(TM5600_633) * 1e6
