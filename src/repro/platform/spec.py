"""The declarative platform spec: one frozen description of a machine.

The paper's whole argument (Tables 5-7, ToPPeR) is a comparison *across
machines*, yet hardware description used to be scattered: processors in
:mod:`repro.cpus.catalog`, physical clusters in
:mod:`repro.cluster.catalog`, fabrics in :mod:`repro.network`, and the
scheduler hard-coding a star network.  A :class:`PlatformSpec` unifies
them: processor spec + node config + packaging + fabric topology +
power model inputs + counts, all in one validated, hashable value from
which every consumer is *derived*:

- :meth:`PlatformSpec.build_fabric` — the SimMPI interconnect (star,
  multi-level rack, or ideal, chosen by the spec);
- :meth:`PlatformSpec.build_allocator` — the scheduler's blade set;
- :meth:`PlatformSpec.node_flop_rate` — the node compute rate;
- :meth:`PlatformSpec.power_model` — the energy-accounting model;
- :meth:`PlatformSpec.cluster` — the physical denominators (sq ft,
  watts, dollars) consumed by :mod:`repro.metrics` for Tables 5-7.

Because the spec serializes canonically (:meth:`PlatformSpec.to_dict` /
:meth:`PlatformSpec.content_hash`), a run manifest can record *which
hardware* it ran on and replay can distinguish "the platform changed"
from "the trace diverged".

This module is also the single source of the Fast Ethernet fabric
parameters: :data:`METABLADE_FABRIC` and :data:`GREEN_DESTINY_FABRIC`
are where :func:`repro.network.timing.star_fabric`,
:class:`repro.network.topology.StarTopology` and
:class:`repro.network.multilevel.RackFabricConfig` resolve their
defaults, instead of each re-importing ``FAST_ETHERNET*`` constants.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, dataclass, replace
from typing import Any, Dict, Optional, Sequence, Tuple

from repro.cluster.catalog import Cluster, Packaging
from repro.cluster.node import NodeConfig
from repro.cpus.base import ProcessorSpec
from repro.cpus.power import PowerModel
from repro.network.link import FAST_ETHERNET, GIGABIT_ETHERNET, Link
from repro.network.multilevel import RackFabricConfig, RackTopology
from repro.network.nic import FAST_ETHERNET_NIC, Nic
from repro.network.switch import FAST_ETHERNET_SWITCH_24, Switch
from repro.network.timing import IdealFabric
from repro.network.topology import StarTopology
from repro.thermal.model import ThermalSpec

#: Fabric kinds a spec may declare.
FABRIC_KINDS = ("star", "rack", "ideal")


def _canonical_hash(doc: Dict[str, Any]) -> str:
    canonical = json.dumps(doc, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode()).hexdigest()


def _link_to_dict(link: Link) -> Dict[str, Any]:
    return {
        "name": link.name,
        "bandwidth_bps": link.bandwidth_bps,
        "latency_s": link.latency_s,
    }


def _link_from_dict(doc: Dict[str, Any]) -> Link:
    return Link(**doc)


def _nic_to_dict(nic: Nic) -> Dict[str, Any]:
    return {
        "name": nic.name,
        "link": _link_to_dict(nic.link),
        "send_overhead_s": nic.send_overhead_s,
        "recv_overhead_s": nic.recv_overhead_s,
    }


def _nic_from_dict(doc: Dict[str, Any]) -> Nic:
    doc = dict(doc)
    doc["link"] = _link_from_dict(doc["link"])
    return Nic(**doc)


def _switch_to_dict(switch: Switch) -> Dict[str, Any]:
    return {
        "name": switch.name,
        "ports": switch.ports,
        "port_link": _link_to_dict(switch.port_link),
        "forward_latency_s": switch.forward_latency_s,
        "backplane_bps": switch.backplane_bps,
    }


def _switch_from_dict(doc: Dict[str, Any]) -> Switch:
    doc = dict(doc)
    doc["port_link"] = _link_from_dict(doc["port_link"])
    return Switch(**doc)


@dataclass(frozen=True)
class FabricSpec:
    """Declarative interconnect description, buildable at any size.

    ``kind`` picks the topology class; the remaining fields carry its
    parameters (``switch`` for the star, ``nodes_per_chassis`` /
    ``uplink`` / ``forward_latency_s`` for the two-level rack).  All
    kinds share ``nic`` — the host-side interface every blade carries.
    """

    kind: str = "star"
    nic: Nic = FAST_ETHERNET_NIC
    switch: Switch = FAST_ETHERNET_SWITCH_24
    nodes_per_chassis: int = 24
    uplink: Link = GIGABIT_ETHERNET
    forward_latency_s: float = 10e-6

    def __post_init__(self) -> None:
        if self.kind not in FABRIC_KINDS:
            raise ValueError(
                f"unknown fabric kind {self.kind!r}; known: {FABRIC_KINDS}"
            )
        if self.nodes_per_chassis < 1:
            raise ValueError("nodes_per_chassis must be >= 1")
        if self.forward_latency_s < 0:
            raise ValueError("forward latency cannot be negative")

    def build(self, nodes: int,
              blades: Optional[Sequence[int]] = None):
        """Materialise the fabric for *nodes* endpoints.

        ``blades`` optionally names the physical blade behind each
        fabric endpoint (rank ``i`` rides blade ``blades[i]``); the
        rack fabric uses it to place endpoints into their *real*
        chassis, so a job scattered across enclosures pays the uplink
        where the allocation says it should.
        """
        if self.kind == "ideal":
            return IdealFabric(nodes)
        if self.kind == "star":
            return StarTopology(nodes, nic=self.nic, switch=self.switch)
        chassis_map = None
        if blades is not None:
            if len(blades) != nodes:
                raise ValueError(
                    f"{len(blades)} blades for {nodes} fabric endpoints"
                )
            chassis_map = tuple(
                b // self.nodes_per_chassis for b in blades
            )
        return RackTopology(
            nodes,
            config=RackFabricConfig(
                nodes_per_chassis=self.nodes_per_chassis,
                nic=self.nic,
                uplink=self.uplink,
                forward_latency_s=self.forward_latency_s,
            ),
            chassis_map=chassis_map,
        )

    def max_nodes(self) -> Optional[int]:
        """Port-count ceiling, or ``None`` when the kind scales freely."""
        if self.kind == "star":
            return self.switch.ports
        return None

    def to_dict(self) -> Dict[str, Any]:
        return {
            "kind": self.kind,
            "nic": _nic_to_dict(self.nic),
            "switch": _switch_to_dict(self.switch),
            "nodes_per_chassis": self.nodes_per_chassis,
            "uplink": _link_to_dict(self.uplink),
            "forward_latency_s": self.forward_latency_s,
        }

    @classmethod
    def from_dict(cls, doc: Dict[str, Any]) -> "FabricSpec":
        return cls(
            kind=doc["kind"],
            nic=_nic_from_dict(doc["nic"]),
            switch=_switch_from_dict(doc["switch"]),
            nodes_per_chassis=doc["nodes_per_chassis"],
            uplink=_link_from_dict(doc["uplink"]),
            forward_latency_s=doc["forward_latency_s"],
        )


#: The MetaBlade interconnect: 24 Fast Ethernet blades into one switch.
#: Single source of the star fabric's NIC/switch parameters.
METABLADE_FABRIC = FabricSpec(kind="star")

#: The Green Destiny interconnect: chassis switches behind a rack
#: aggregation switch, Gigabit uplinks.  Single source of the rack
#: fabric's NIC/uplink parameters.
GREEN_DESTINY_FABRIC = FabricSpec(kind="rack")


def scaled_star_switch(ports: int, port_link: Link = FAST_ETHERNET) -> Switch:
    """A non-blocking FE switch sized for *ports* nodes.

    Keeps the per-port backplane provisioning of the real 24-port part
    (0.2 Gb/s per port), so a 24-port request reproduces
    ``FAST_ETHERNET_SWITCH_24`` exactly.
    """
    if ports <= FAST_ETHERNET_SWITCH_24.ports:
        return FAST_ETHERNET_SWITCH_24
    return Switch(
        name=f"{ports}-port FE switch",
        ports=ports,
        port_link=port_link,
        backplane_bps=0.2e9 * ports,
    )


@dataclass(frozen=True)
class PlatformSpec:
    """A complete machine, declaratively: who computes, how they talk,
    what it costs.

    ``name`` is the registry key (kebab-case); ``title`` the display
    name Tables 4-7 print.  ``processor`` must name a model in
    :data:`repro.cpus.catalog.CPU_CATALOG` — the node compute rate is
    derived from that model through the calibrated performance layer.
    """

    name: str
    title: str
    processor: ProcessorSpec
    nodes: int
    packaging: Packaging
    fabric: FabricSpec
    footprint_sqft: float
    acquisition_usd: float
    year: int
    node_config: NodeConfig = NodeConfig()
    treecode_gflops: Optional[float] = None
    power_kw_override: Optional[float] = None
    #: Explicit thermal parameters; ``None`` means "derive from the
    #: power model" (see :meth:`thermal_params`), so every registry
    #: entry has a validated thermal description without repeating the
    #: cooled-vs-passive defaults ten times.
    thermal: Optional[ThermalSpec] = None

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("a platform needs a name")
        if self.nodes < 1:
            raise ValueError("a platform needs at least one node")
        if self.footprint_sqft <= 0:
            raise ValueError("footprint must be positive")
        if self.acquisition_usd < 0:
            raise ValueError("acquisition cost cannot be negative")
        ceiling = self.fabric.max_nodes()
        if ceiling is not None and self.nodes > ceiling:
            raise ValueError(
                f"{self.name}: {self.nodes} nodes exceed the "
                f"{self.fabric.switch.name}'s {ceiling} ports"
            )
        from repro.cpus.catalog import CPU_CATALOG
        if self.processor.name not in CPU_CATALOG:
            known = ", ".join(sorted(CPU_CATALOG))
            raise ValueError(
                f"{self.name}: no processor model named "
                f"{self.processor.name!r}; known: {known}"
            )

    # -- builders: everything a consumer needs, derived from the spec --

    def processor_model(self):
        """The calibrated processor model behind this platform's nodes."""
        from repro.cpus.catalog import cpu_by_name
        return cpu_by_name(self.processor.name)

    def node_flop_rate(self) -> float:
        """Sustained treecode flops/s of one node (calibrated model)."""
        from repro.perfmodel.calibration import sustained_treecode_mflops
        return sustained_treecode_mflops(self.processor_model()) * 1e6

    def build_fabric(self, nodes: Optional[int] = None,
                     blades: Optional[Sequence[int]] = None):
        """The SimMPI interconnect, sized for *nodes* (default: all)."""
        n = self.nodes if nodes is None else nodes
        if n > self.nodes:
            raise ValueError(
                f"{n} fabric endpoints exceed {self.name}'s "
                f"{self.nodes} nodes"
            )
        return self.fabric.build(n, blades=blades)

    def build_allocator(self):
        """The batch scheduler's blade ledger over this platform."""
        from repro.sched.allocator import BladeAllocator
        return BladeAllocator(self.nodes)

    def power_model(self) -> PowerModel:
        """The per-node electrical model used for energy accounting."""
        return PowerModel.for_spec(self.processor)

    def thermal_params(self) -> ThermalSpec:
        """The platform's resolved (validated) thermal parameters.

        Explicit ``thermal`` wins; otherwise the RC pair, ambient and
        trip points derive from the power model's cooling class —
        actively cooled nodes sit in a machine room, passive blades in
        the paper's warm closet.
        """
        if self.thermal is not None:
            return self.thermal
        return ThermalSpec.for_power_model(self.power_model())

    def cluster(self) -> Cluster:
        """The physical-economics view: the denominators of Tables 5-7."""
        return Cluster(
            name=self.title,
            processor=self.processor,
            nodes=self.nodes,
            packaging=self.packaging,
            footprint_sqft=self.footprint_sqft,
            acquisition_usd=self.acquisition_usd,
            year=self.year,
            treecode_gflops=self.treecode_gflops,
            power_kw_override=self.power_kw_override,
        )

    def machine(self):
        """The :class:`~repro.core.system.BladedBeowulf` wrapper."""
        from repro.core.system import BladedBeowulf
        return BladedBeowulf(cluster=self.cluster())

    # -- physical denominators (shortcuts into the cluster view) ----------

    @property
    def power_kw(self) -> float:
        return self.cluster().power_kw

    @property
    def total_power_kw(self) -> float:
        return self.cluster().total_power_kw

    # -- identity ---------------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        """Canonical JSON-safe form; the content hash covers all of it."""
        return {
            "name": self.name,
            "title": self.title,
            "processor": asdict(self.processor),
            "nodes": self.nodes,
            "packaging": self.packaging.value,
            "fabric": self.fabric.to_dict(),
            "footprint_sqft": self.footprint_sqft,
            "acquisition_usd": self.acquisition_usd,
            "year": self.year,
            "node_config": asdict(self.node_config),
            "treecode_gflops": self.treecode_gflops,
            "power_kw_override": self.power_kw_override,
            "thermal": (
                self.thermal.to_dict() if self.thermal is not None else None
            ),
        }

    @classmethod
    def from_dict(cls, doc: Dict[str, Any]) -> "PlatformSpec":
        return cls(
            name=doc["name"],
            title=doc["title"],
            processor=ProcessorSpec(**doc["processor"]),
            nodes=doc["nodes"],
            packaging=Packaging(doc["packaging"]),
            fabric=FabricSpec.from_dict(doc["fabric"]),
            footprint_sqft=doc["footprint_sqft"],
            acquisition_usd=doc["acquisition_usd"],
            year=doc["year"],
            node_config=NodeConfig(**doc["node_config"]),
            treecode_gflops=doc["treecode_gflops"],
            power_kw_override=doc["power_kw_override"],
            thermal=(
                ThermalSpec.from_dict(doc["thermal"])
                if doc.get("thermal") is not None else None
            ),
        )

    def content_hash(self) -> str:
        """sha256 over the canonical dict — the platform's identity.

        Two specs hash equal iff every field (processor physics, fabric
        parameters, counts, economics) agrees; run manifests record it
        so replay can tell "platform changed" from trace divergence.
        """
        return _canonical_hash(self.to_dict())

    def with_nodes(self, nodes: int, **updates: Any) -> "PlatformSpec":
        """A resized variant (scenario exploration helper)."""
        return replace(self, nodes=nodes, **updates)

    # -- interop ----------------------------------------------------------

    @classmethod
    def for_cluster(cls, cluster: Cluster,
                    fabric: Optional[FabricSpec] = None,
                    name: Optional[str] = None) -> "PlatformSpec":
        """Adapt a catalog :class:`Cluster` into a platform.

        The fabric defaults to the MetaBlade star (scaled to the node
        count when it outgrows the 24-port switch) — exactly what the
        scheduler hard-coded before the platform layer existed.
        """
        if fabric is None:
            if cluster.nodes <= FAST_ETHERNET_SWITCH_24.ports:
                fabric = METABLADE_FABRIC
            else:
                fabric = replace(
                    METABLADE_FABRIC,
                    switch=scaled_star_switch(cluster.nodes),
                )
        return cls(
            name=name or cluster.name.lower().replace(" ", "-"),
            title=cluster.name,
            processor=cluster.processor,
            nodes=cluster.nodes,
            packaging=cluster.packaging,
            fabric=fabric,
            footprint_sqft=cluster.footprint_sqft,
            acquisition_usd=cluster.acquisition_usd,
            year=cluster.year,
            treecode_gflops=cluster.treecode_gflops,
            power_kw_override=cluster.power_kw_override,
        )

    def describe(self) -> str:
        c = self.cluster()
        fabric = self.fabric.kind
        if fabric == "rack":
            chassis = -(-self.nodes // self.fabric.nodes_per_chassis)
            fabric = f"rack ({chassis} chassis, {self.fabric.uplink.name})"
        return (
            f"{self.name}: {self.nodes}x {self.processor.clock_mhz:.0f}-MHz "
            f"{self.processor.name}, {fabric} fabric, "
            f"{c.power_kw:.2f} kW, {c.footprint_sqft:.0f} sq ft, "
            f"${c.acquisition_usd / 1000:.0f}K"
        )
