"""Named platforms: every machine the paper argues about, as one spec.

Each entry is a complete :class:`~repro.platform.spec.PlatformSpec`;
``platform_by_name("green-destiny-240")`` is all a CLI flag needs to
put the scheduler on 240 blades behind the chassis/aggregation fabric.

The catalog-backed entries are *adapted from* the authoritative
physical records in :mod:`repro.cluster.catalog` (so ``spec.cluster()``
round-trips to the exact catalog object and Tables 5-7 cannot drift);
the registry adds what the catalog never knew: which interconnect the
machine runs.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.cluster.catalog import (
    AVALON,
    Cluster,
    GREEN_DESTINY,
    LOKI,
    METABLADE,
    METABLADE2,
    Packaging,
    TABLE5_CLUSTERS,
)
from repro.cpus.catalog import TM5800_800
from repro.platform.spec import (
    FabricSpec,
    GREEN_DESTINY_FABRIC,
    METABLADE_FABRIC,
    PlatformSpec,
    scaled_star_switch,
)


def _from_cluster(name: str, cluster: Cluster,
                  fabric: Optional[FabricSpec] = None) -> PlatformSpec:
    return PlatformSpec.for_cluster(cluster, fabric=fabric, name=name)


#: MetaBlade: the paper's measured machine — 24 TM5600 blades, one
#: chassis, one 24-port Fast Ethernet switch.  This is THE default
#: platform; every legacy code path must reproduce it bit-identically.
METABLADE_PLATFORM = _from_cluster("metablade", METABLADE, METABLADE_FABRIC)

#: MetaBlade2: same chassis, TM5800-800 blades (paper footnote 3).
METABLADE2_PLATFORM = _from_cluster(
    "metablade2", METABLADE2, METABLADE_FABRIC
)

#: Green Destiny as built: 240 blades, ten chassis behind the rack
#: aggregation switch with Gigabit uplinks.
GREEN_DESTINY_240 = _from_cluster(
    "green-destiny-240", GREEN_DESTINY, GREEN_DESTINY_FABRIC
)

#: The scale-out thought experiment: four Green Destiny racks' worth of
#: blades behind one (deeper) aggregation fabric.  Economics scale
#: linearly from the 240-blade rack; performance projection likewise
#: (the scale-out bench explores where the uplinks break that).
GREEN_DESTINY_960 = PlatformSpec(
    name="green-destiny-960",
    title="Green Destiny x4",
    processor=TM5800_800.spec,
    nodes=960,
    packaging=Packaging.BLADED,
    fabric=GREEN_DESTINY_FABRIC,
    footprint_sqft=24.0,
    acquisition_usd=4 * 335_000.0,
    year=2002,
    treecode_gflops=4 * 21.5,
)

#: Avalon: 140 Alpha minitowers.  Its commodity fabric outgrows a
#: 24-port part, so the star is scaled to 140 ports at the same
#: per-port backplane provisioning.
AVALON_PLATFORM = _from_cluster(
    "avalon", AVALON,
    FabricSpec(kind="star", switch=scaled_star_switch(AVALON.nodes)),
)

#: Loki: 16 Pentium Pro towers — fits the stock 24-port star.
LOKI_PLATFORM = _from_cluster("loki", LOKI, METABLADE_FABRIC)


def _beowulf_key(cluster: Cluster) -> str:
    return cluster.name.lower().replace(" ", "-")


#: The traditional 24-node Beowulfs of Table 5 (alpha-beowulf,
#: athlon-beowulf, piii-beowulf, p4-beowulf) on the stock star.
_TABLE5_PLATFORMS: Tuple[PlatformSpec, ...] = tuple(
    _from_cluster(_beowulf_key(c), c, METABLADE_FABRIC)
    for c in TABLE5_CLUSTERS[:-1]
)

PLATFORM_REGISTRY: Dict[str, PlatformSpec] = {
    p.name: p
    for p in (
        METABLADE_PLATFORM,
        METABLADE2_PLATFORM,
        GREEN_DESTINY_240,
        GREEN_DESTINY_960,
        AVALON_PLATFORM,
        LOKI_PLATFORM,
        *_TABLE5_PLATFORMS,
    )
}

#: The platform every legacy (pre-platform-layer) code path means.
DEFAULT_PLATFORM = "metablade"


def platform_by_name(name: str) -> PlatformSpec:
    try:
        return PLATFORM_REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(PLATFORM_REGISTRY))
        raise KeyError(
            f"unknown platform {name!r}; known: {known}"
        ) from None


def platform_names() -> Tuple[str, ...]:
    return tuple(sorted(PLATFORM_REGISTRY))
