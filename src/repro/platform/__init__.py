"""repro.platform: declarative hardware description.

One frozen, validated :class:`PlatformSpec` describes a machine —
processor + node config + packaging + fabric + power inputs + counts —
and every consumer derives from it: the SimMPI fabric
(:meth:`PlatformSpec.build_fabric`), the scheduler's blade set
(:meth:`PlatformSpec.build_allocator`) and node compute rate
(:meth:`PlatformSpec.node_flop_rate`), the energy model
(:meth:`PlatformSpec.power_model`), and the physical denominators of
Tables 5-7 (:meth:`PlatformSpec.cluster`).  The named registry makes
"run the scheduler on a 240-blade Green Destiny behind its rack
fabric" a one-flag CLI run (``--platform green-destiny-240``).

:mod:`repro.platform.smoke` (imported explicitly, not re-exported
here) builds and exercises every registry entry for CI.
"""

from repro.platform.registry import (
    DEFAULT_PLATFORM,
    METABLADE_PLATFORM,
    PLATFORM_REGISTRY,
    platform_by_name,
    platform_names,
)
from repro.platform.spec import (
    FabricSpec,
    GREEN_DESTINY_FABRIC,
    METABLADE_FABRIC,
    PlatformSpec,
    scaled_star_switch,
)

__all__ = [
    "DEFAULT_PLATFORM",
    "FabricSpec",
    "GREEN_DESTINY_FABRIC",
    "METABLADE_FABRIC",
    "METABLADE_PLATFORM",
    "PLATFORM_REGISTRY",
    "PlatformSpec",
    "platform_by_name",
    "platform_names",
    "scaled_star_switch",
]
