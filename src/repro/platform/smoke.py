"""Platform smoke: build and exercise every registry entry.

CI's platform-smoke job runs this over the whole registry: each named
platform must validate, build its fabric / allocator / power model,
and serve a tiny *audited* scheduler run (the repro.check invariant
auditors attached).  Failures are written as per-platform report files
so the CI artifact shows exactly which spec broke and how.

Usage::

    python -m repro.cli platform --smoke --out platform_reports
"""

from __future__ import annotations

import traceback
from dataclasses import dataclass
from pathlib import Path
from typing import List, Optional, Tuple

from repro.platform.registry import PLATFORM_REGISTRY
from repro.platform.spec import PlatformSpec


@dataclass(frozen=True)
class SmokeResult:
    """One platform's smoke outcome."""

    name: str
    ok: bool
    detail: str                  # summary line, or the failure reason
    report: str = ""             # full traceback on failure


def smoke_platform(spec: PlatformSpec, jobs: int = 3,
                   seed: int = 2001) -> str:
    """Exercise one platform end to end; returns a summary line.

    Raises on any failure — the caller decides how to report it.
    """
    from repro.sched import BatchScheduler, SchedConfig, synthetic_stream

    # Spec identity must survive a serialization round trip.
    clone = PlatformSpec.from_dict(spec.to_dict())
    if clone != spec or clone.content_hash() != spec.content_hash():
        raise AssertionError(f"{spec.name}: to_dict/from_dict round trip drifted")

    # Builders: fabric (with traffic), allocator, power model.
    endpoints = min(spec.nodes, 8)
    fabric = spec.build_fabric(endpoints)
    if endpoints > 1:
        t = fabric.send(0, endpoints - 1, 1024, 0.0)
        if not t.arrive_time > 0.0:
            raise AssertionError(f"{spec.name}: fabric timed a message at 0")
    allocator = spec.build_allocator()
    if allocator.free_count != spec.nodes:
        raise AssertionError(f"{spec.name}: allocator has wrong blade count")
    energy = spec.power_model().energy_joules(1.0)
    if not energy > 0.0:
        raise AssertionError(f"{spec.name}: power model returned no energy")

    # A tiny audited scheduler run on the platform's declared fabric.
    stream = synthetic_stream(
        jobs=jobs,
        max_nodes=min(spec.nodes, 4),
        flop_rate=spec.node_flop_rate(),
        seed=seed,
    )
    sched = BatchScheduler(platform=spec, config=SchedConfig(audit=True))
    sched.submit_stream(stream)
    outcome = sched.run()
    completed = len(outcome.completed)
    if completed != jobs:
        raise AssertionError(
            f"{spec.name}: {completed}/{jobs} jobs completed"
        )

    # The same stream again with the RC thermal network on (still
    # audited): the piecewise-exponential integrator, throttle planner
    # and the energy<->temperature conservation auditor must hold on
    # every registry entry.  The time-constant compression makes the
    # blades actually approach steady state inside the tiny run.
    tsched = BatchScheduler(
        platform=spec,
        config=SchedConfig(audit=True, thermal=True, thermal_accel=50.0),
    )
    tsched.submit_stream(
        synthetic_stream(
            jobs=jobs,
            max_nodes=min(spec.nodes, 4),
            flop_rate=spec.node_flop_rate(),
            seed=seed,
        )
    )
    toutcome = tsched.run()
    if len(toutcome.completed) != jobs:
        raise AssertionError(
            f"{spec.name}: {len(toutcome.completed)}/{jobs} jobs "
            f"completed with thermal on"
        )
    if toutcome.thermal is None or not toutcome.thermal.peak_c > 0.0:
        raise AssertionError(f"{spec.name}: thermal run recorded no peak")
    return (
        f"{spec.nodes} blades, {type(fabric).__name__}, "
        f"{completed}/{jobs} jobs, {energy:.1f} J/node-s, "
        f"peak {toutcome.thermal.peak_c:.1f} C"
    )


def run_smoke(out_dir: Optional[str] = None, jobs: int = 3,
              seed: int = 2001) -> Tuple[List[SmokeResult], bool]:
    """Smoke every registry platform; returns (results, all_ok).

    With *out_dir*, each failure is written to ``<name>.txt`` there
    (the CI job uploads the directory as an artifact).
    """
    results: List[SmokeResult] = []
    for name in sorted(PLATFORM_REGISTRY):
        spec = PLATFORM_REGISTRY[name]
        try:
            detail = smoke_platform(spec, jobs=jobs, seed=seed)
            results.append(SmokeResult(name=name, ok=True, detail=detail))
        except Exception as exc:
            results.append(
                SmokeResult(
                    name=name, ok=False,
                    detail=f"{type(exc).__name__}: {exc}",
                    report=traceback.format_exc(),
                )
            )
    all_ok = all(r.ok for r in results)
    if out_dir is not None and not all_ok:
        out = Path(out_dir)
        out.mkdir(parents=True, exist_ok=True)
        for r in results:
            if not r.ok:
                (out / f"{r.name}.txt").write_text(
                    f"platform smoke failure: {r.name}\n\n{r.report}"
                )
    return results, all_ok
