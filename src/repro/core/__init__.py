"""Top-level façade: the Bladed Beowulf system and experiment index.

:class:`~repro.core.system.BladedBeowulf` wires the packages together
the way the paper's Section 2-4 narrative does; :mod:`~repro.core.experiments`
regenerates every table and figure of the evaluation;
:mod:`~repro.core.events` is the discrete-event kernel every
time-bearing layer shares.
"""

from repro.core.events import Event, EventKernel, Process, TimelineEvent
from repro.core.system import BladedBeowulf, PEAK_FLOPS_PER_CYCLE, peak_gflops
from repro.core.experiments import (
    Table4Row,
    experiment_fig3,
    experiment_table1,
    experiment_table2,
    experiment_table3,
    experiment_table4,
    experiment_table5,
    experiment_table6,
    experiment_table7,
    experiment_timeline,
    experiment_topper,
)

__all__ = [
    "BladedBeowulf",
    "Event",
    "EventKernel",
    "PEAK_FLOPS_PER_CYCLE",
    "Process",
    "Table4Row",
    "TimelineEvent",
    "experiment_fig3",
    "experiment_table1",
    "experiment_table2",
    "experiment_table3",
    "experiment_table4",
    "experiment_table5",
    "experiment_table6",
    "experiment_table7",
    "experiment_timeline",
    "experiment_topper",
    "peak_gflops",
]
