"""Regenerators for every table and figure in the paper's evaluation.

Each ``experiment_*`` function returns structured rows plus a rendered
text table, so the benchmark harness, the examples and the tests all
share one implementation.  EXPERIMENTS.md records paper-vs-measured for
each.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.cluster.catalog import (
    AVALON,
    GREEN_DESTINY,
    LOKI,
    METABLADE,
    METABLADE2,
    TABLE5_CLUSTERS,
    Cluster,
)
from repro.cpus.catalog import TABLE1_CPUS, TABLE3_CPUS
from repro.metrics.ratios import perf_power_table, perf_space_table
from repro.metrics.report import format_table
from repro.metrics.tco import tco_table
from repro.metrics.topper import paper_headline_claim
from repro.nbody.sim import (
    NBodySimulation,
    SimConfig,
    SimResult,
    ascii_render,
    density_image,
)
from repro.npb import run_suite
from repro.perfmodel.calibration import (
    sustained_treecode_mflops,
    table1_mflops,
)
from repro.perfmodel.projector import table3_mops
from repro.core.system import BladedBeowulf, peak_gflops


@dataclass
class ExperimentResult:
    """Structured rows plus the rendered table."""

    experiment: str
    headers: List[str]
    rows: List[List]
    text: str
    extras: Dict[str, float]


def _result(experiment: str, headers: List[str], rows: List[List],
            title: str, extras: Optional[Dict[str, float]] = None
            ) -> ExperimentResult:
    return ExperimentResult(
        experiment=experiment,
        headers=headers,
        rows=rows,
        text=format_table(headers, rows, title=title),
        extras=extras or {},
    )


# ---------------------------------------------------------------------------
# Table 1 - gravitational microkernel Mflops
# ---------------------------------------------------------------------------

def experiment_table1(cpus=TABLE1_CPUS) -> ExperimentResult:
    rows = []
    for cpu in cpus:
        math_mflops, karp_mflops = table1_mflops(cpu)
        rows.append(
            [
                f"{cpu.spec.clock_mhz:.0f}-MHz {cpu.name}",
                round(math_mflops, 1),
                round(karp_mflops, 1),
            ]
        )
    return _result(
        "table1",
        ["Processor", "Math sqrt", "Karp sqrt"],
        rows,
        "Table 1: Mflops on the gravitational microkernel",
    )


# ---------------------------------------------------------------------------
# Table 2 - N-body scalability on MetaBlade
# ---------------------------------------------------------------------------

def experiment_table2(
    n: int = 6000,
    steps: int = 1,
    cpu_counts: Tuple[int, ...] = (1, 2, 4, 8, 16, 24),
    ideal_network: bool = False,
    seed: int = 2001,
    jobs: int = 1,
    platform: Optional[str] = None,
    telemetry: Optional[str] = None,
) -> ExperimentResult:
    """Table 2, on any registry platform (default: MetaBlade).

    The platform spec supplies both the node compute rate and the
    fabric every scaling point runs on.  CPU counts beyond the
    platform's node count cannot run there: they are dropped with an
    explicit :class:`UserWarning` and the drop is recorded in the
    result extras (``cpu_counts_dropped``) — never silently.

    ``telemetry`` names a directory: the sweep self-profiles (wall
    clock per scaling point) and exports every scaling number as
    metrics there.  The rendered table is byte-identical either way.
    """
    import warnings

    from repro.nbody.parallel import scaling_study
    from repro.platform.registry import platform_by_name

    spec = platform_by_name(platform if platform is not None else "metablade")
    config = SimConfig(n=n, steps=steps, seed=seed, theta=0.7, softening=1e-2)
    counts = tuple(c for c in cpu_counts if c <= spec.nodes)
    dropped = tuple(c for c in cpu_counts if c > spec.nodes)
    if dropped:
        warnings.warn(
            f"table2: dropping CPU counts {dropped} — {spec.name} has "
            f"only {spec.nodes} nodes",
            UserWarning, stacklevel=2,
        )
    if not counts:
        raise ValueError(
            f"no CPU count in {tuple(cpu_counts)} fits {spec.name}'s "
            f"{spec.nodes} nodes"
        )
    tel = None
    if telemetry is not None:
        from repro.telemetry import Telemetry
        tel = Telemetry()
    if tel is not None:
        with tel.wall_span("table2.scaling_study", cpus=list(counts)):
            points = scaling_study(
                config, counts, spec.node_flop_rate(),
                ideal_network=ideal_network, jobs=jobs, platform=spec.name,
            )
    else:
        points = scaling_study(
            config, counts, spec.node_flop_rate(),
            ideal_network=ideal_network, jobs=jobs, platform=spec.name,
        )
    rows = [
        [p.cpus, round(p.time_s, 3), round(p.speedup, 2),
         round(p.efficiency, 2), round(p.comm_fraction, 2)]
        for p in points
    ]
    if tel is not None:
        for p in points:
            reg = tel.registry
            reg.gauge("table2.time_s", cpus=p.cpus).set(p.time_s)
            reg.gauge("table2.speedup", cpus=p.cpus).set(p.speedup)
            reg.gauge("table2.efficiency", cpus=p.cpus).set(p.efficiency)
            reg.gauge("table2.comm_fraction", cpus=p.cpus).set(
                p.comm_fraction
            )
        tel.ingest_extras("table2", {"n_particles": float(n)})
        tel.export(telemetry)
    return _result(
        "table2",
        ["# CPUs", "Time (sec)", "Speed-Up", "Efficiency", "Comm frac"],
        rows,
        f"Table 2: scalability of the N-body simulation on {spec.title}",
        extras=(
            # The key appears only when a drop happened, so manifests
            # of un-clipped runs stay byte-identical to the seed.
            {"n_particles": float(n),
             "cpu_counts_dropped": float(len(dropped))}
            if dropped else {"n_particles": float(n)}
        ),
    )


# ---------------------------------------------------------------------------
# Table 3 - single-processor NPB Mops
# ---------------------------------------------------------------------------

def experiment_table3(letter: str = "S", cpus=TABLE3_CPUS) -> ExperimentResult:
    outcomes = run_suite(letter)
    projections = table3_mops(cpus, outcomes)
    headers = ["Code"] + [cpu.name for cpu in cpus]
    rows = [
        [name] + [round(mops[cpu.name], 1) for cpu in cpus]
        for name, mops in projections
    ]
    return _result(
        "table3",
        headers,
        rows,
        f"Table 3: single-processor Mops, class {letter} NPB work-alikes",
    )


# ---------------------------------------------------------------------------
# Table 4 - historical treecode performance
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class Table4Row:
    machine: str
    cpus: int
    gflops: float
    source: str               # "modelled" or "historical record"

    @property
    def mflops_per_proc(self) -> float:
        return self.gflops * 1000.0 / self.cpus


#: Historical rows the paper itself quotes from prior publications
#: [Warren et al., SC'97; SC'98].  Our models only cover the machines
#: LANL owned; the rest are carried as the records they are.
HISTORICAL_TREECODE: Tuple[Table4Row, ...] = (
    Table4Row("LANL SGI Origin 2000", 64, 13.10, "historical record"),
    Table4Row("NAS IBM SP-2 (66/W)", 128, 9.52, "historical record"),
    Table4Row("SC'96 Loki+Hyglac", 32, 2.19, "historical record"),
    Table4Row("Sandia ASCI Red", 6800, 464.90, "historical record"),
    Table4Row("Caltech Naegling", 96, 5.67, "historical record"),
    Table4Row("NRL TMC CM-5E", 256, 11.57, "historical record"),
    Table4Row("Sandia ASCI Red (1997)", 4096, 164.30, "historical record"),
    Table4Row("JPL Cray T3D", 256, 7.94, "historical record"),
)


def modelled_treecode_rows() -> List[Table4Row]:
    """Machines our processor models cover, rated by the perf model."""
    from repro.cpus.catalog import CPU_CATALOG
    rows = []
    for cluster, label in (
        (METABLADE2, "SC'01 MetaBlade2"),
        (AVALON, "LANL Avalon"),
        (METABLADE, "LANL MetaBlade"),
        (LOKI, "LANL Loki"),
    ):
        cpu = CPU_CATALOG[cluster.processor.name]
        per_proc = sustained_treecode_mflops(cpu)
        rows.append(
            Table4Row(
                machine=label,
                cpus=cluster.nodes,
                gflops=per_proc * cluster.nodes / 1000.0,
                source="modelled",
            )
        )
    return rows


def experiment_table4() -> ExperimentResult:
    rows_structured = list(HISTORICAL_TREECODE) + modelled_treecode_rows()
    rows_structured.sort(key=lambda r: r.mflops_per_proc, reverse=True)
    rows = [
        [r.machine, r.cpus, round(r.gflops, 2),
         round(r.mflops_per_proc, 1), r.source]
        for r in rows_structured
    ]
    return _result(
        "table4",
        ["Machine", "CPUs", "Gflop", "Mflop/proc", "Source"],
        rows,
        "Table 4: treecode performance, historical and modelled",
    )


# ---------------------------------------------------------------------------
# Table 5 - TCO
# ---------------------------------------------------------------------------

def experiment_table5(
    clusters: Sequence[Cluster] = TABLE5_CLUSTERS,
) -> ExperimentResult:
    rows = []
    for breakdown in tco_table(clusters):
        k = breakdown.rounded_k()
        rows.append([breakdown.cluster_name] + [f"${v}K" for v in k])
    return _result(
        "table5",
        ["Cluster", "Acquisition", "System Admin", "Power & Cooling",
         "Space", "Downtime", "TCO"],
        rows,
        "Table 5: total cost of ownership, 24-node clusters over 4 years",
    )


# ---------------------------------------------------------------------------
# Tables 6 & 7 - performance/space and performance/power
# ---------------------------------------------------------------------------

def experiment_table6() -> ExperimentResult:
    rows = [
        [r.machine, r.gflops, r.area_sqft, round(r.mflops_per_sqft, 0)]
        for r in perf_space_table()
    ]
    return _result(
        "table6",
        ["Machine", "Performance (Gflop)", "Area (ft^2)",
         "Perf/Space (Mflop/ft^2)"],
        rows,
        "Table 6: performance/space, traditional vs Bladed Beowulfs",
    )


def experiment_table7() -> ExperimentResult:
    rows = [
        [r.machine, r.gflops, r.power_kw, round(r.gflops_per_kw, 2)]
        for r in perf_power_table()
    ]
    return _result(
        "table7",
        ["Machine", "Performance (Gflop)", "Power (kW)",
         "Perf/Power (Gflop/kW)"],
        rows,
        "Table 7: performance/power, traditional vs Bladed Beowulfs",
    )


# ---------------------------------------------------------------------------
# Figure 3 / Section 3.3 - the big N-body run
# ---------------------------------------------------------------------------

def experiment_fig3(config: Optional[SimConfig] = None,
                    image_bins: int = 48) -> Tuple[ExperimentResult, SimResult, str]:
    """The Section 3.3 raw-performance run, scaled down.

    The paper ran 9,753,824 particles for ~1000 steps on the showroom
    floor; we run the same treecode on a smaller collision IC and scale
    the flop ledger through the same accounting: sustained Gflops =
    measured node rate x nodes, percent of peak against 15.2 Gflops.
    """
    cfg = config or SimConfig(
        n=4000, steps=2, ic="collision", theta=0.7, softening=1e-2
    )
    sim = NBodySimulation(cfg)
    result = sim.run()
    machine = BladedBeowulf.metablade()
    sustained = machine.sustained_gflops()
    peak = machine.peak_gflops()
    pct = machine.percent_of_peak()
    virtual_s = result.total_flops / (sustained * 1e9)

    image = density_image(result.pos, result.mass, bins=image_bins)
    art = ascii_render(image)

    rows = [
        ["particles", cfg.n],
        ["steps", cfg.steps],
        ["total flops", f"{result.total_flops:.3e}"],
        ["sustained (Gflops)", round(sustained, 2)],
        ["peak (Gflops)", round(peak, 1)],
        ["percent of peak", round(pct, 1)],
        ["virtual wall time (s)", round(virtual_s, 2)],
        ["energy drift", f"{result.energy_drift:.2e}"],
    ]
    exp = _result(
        "fig3",
        ["Quantity", "Value"],
        rows,
        "Section 3.3 / Figure 3: gravitational N-body run on MetaBlade",
        extras={
            "sustained_gflops": sustained,
            "peak_gflops": peak,
            "percent_of_peak": pct,
        },
    )
    return exp, result, art


# ---------------------------------------------------------------------------
# Event timeline - the unified virtual clock made visible
# ---------------------------------------------------------------------------

def experiment_timeline(
    ranks: int = 6,
    n: int = 1500,
    fail_rank: Optional[int] = None,
    fail_at_s: float = 0.0,
    limit: Optional[int] = 48,
    seed: int = 2001,
    platform: Optional[str] = None,
    thermal: bool = False,
    thermal_accel: float = 1.0,
    telemetry: Optional[str] = None,
    net_fault: bool = False,
    net_mtbf_s: float = 0.05,
    net_mttr_s: float = 0.002,
) -> ExperimentResult:
    """One treecode step with the event kernel recording.

    Every layer posts onto one clock — rank starts/blocks/wakes from
    the scheduler, link and switch occupancy from the fabric, failures
    from the injector — so the rendered timeline is globally
    time-coherent.  ``fail_rank`` (optionally) kills a node mid-run.
    ``platform`` names a registry entry; its spec supplies the fabric
    (e.g. Green Destiny's rack network) and node rate.  Default:
    MetaBlade.

    ``thermal`` attaches the lumped-RC network from
    :mod:`repro.thermal`: each rank's blade heats while the step runs,
    a planned trip-point crossing clamps every rank's frequency (and
    lands on the timeline as a ``thermal-trip`` event), and the peak
    blade temperature joins the extras.  ``thermal_accel`` compresses
    the thermal time constants so a short step shows the effect.

    ``net_fault`` injects a seeded link-outage plan (seed + 3, MTBF
    ``net_mtbf_s``, repair ``net_mttr_s`` — virtual seconds) and turns
    on the SimMPI reliable-delivery layer: lost frames retransmit with
    timeout/backoff and land on the timeline as ``net-drop`` events,
    outage windows overlapping the step as ``net-down``/``net-up``.

    ``telemetry`` names a directory: a :class:`~repro.telemetry.Telemetry`
    handle observes the same kernel and exports virtual-time spans
    (Perfetto-loadable ``trace.json``) plus a ``metrics.jsonl`` there.
    The kernel already records its timeline, so attaching the observer
    changes nothing — the rendered text is byte-identical either way.
    """
    from collections import Counter

    from repro.core.events import EventKernel
    from repro.nbody.parallel import run_parallel_nbody
    from repro.platform.registry import platform_by_name
    from repro.simmpi import SimMpiRuntime, render_timeline

    spec = platform_by_name(platform if platform is not None else "metablade")
    if ranks > spec.nodes:
        raise ValueError(
            f"{ranks} ranks exceed {spec.name}'s {spec.nodes} nodes"
        )
    kernel = EventKernel(record_timeline=True)
    tel = None
    if telemetry is not None:
        from repro.telemetry import Telemetry
        tel = Telemetry()
        tel.attach(kernel)
    network = None
    governor = None
    tspec = None
    if thermal:
        from repro.thermal import (
            ThermalNetwork,
            ThermalThrottleGovernor,
            plan_attempt,
        )

        power = spec.power_model()
        tspec = spec.thermal_params().accelerated(thermal_accel)
        network = ThermalNetwork(
            ranks, tspec, node_watts=power.node_watts,
            nodes_per_chassis=spec.fabric.nodes_per_chassis,
        )
        for blade in range(ranks):
            network.set_busy(blade, 0.0)
        plan = plan_attempt(network, range(ranks), 0.0)
        if plan.trip_at_s is not None:
            governor = ThermalThrottleGovernor(power.node_watts)
            governor.clamp_at(plan.trip_at_s, tspec.throttle_scale)

            def _trip(at: float = plan.trip_at_s) -> None:
                for blade in range(ranks):
                    network.set_busy(
                        blade, at, scale=tspec.throttle_scale
                    )
                kernel.trace(
                    "thermal-trip", time=at,
                    scale=tspec.throttle_scale, blades=ranks,
                )

            kernel.at(plan.trip_at_s, _trip)
    fabric = spec.build_fabric(ranks)
    net_plan = None
    policy = None
    if net_fault:
        from repro.network.faults import (
            RetryPolicy, draw_fault_plan, link_resource,
        )

        resources = [link_resource(r) for r in range(ranks)]
        # The step's length is not known up front; a 1 s horizon covers
        # any single treecode step, and windows past the end are inert
        # lookups.  Plan seed follows the injector convention (+3).
        net_plan = draw_fault_plan(
            resources, horizon_s=1.0, mtbf_s=net_mtbf_s,
            mttr_s=net_mttr_s, seed=seed + 3,
        )
        attach = getattr(fabric, "attach_faults", None)
        if attach is not None:
            attach(net_plan, resources=resources)
        policy = RetryPolicy()
    runtime = SimMpiRuntime(
        ranks, fabric=fabric,
        flop_rate=spec.node_flop_rate(), kernel=kernel,
        governor=governor, net_fault=policy,
    )
    if fail_rank is not None:
        runtime.fail_at(fail_at_s, fail_rank, detail="injected")
    config = SimConfig(n=n, steps=1, seed=seed, theta=0.7, softening=1e-2)
    if tel is not None:
        with tel.wall_span("timeline.step", ranks=ranks, n=n):
            run = run_parallel_nbody(
                config, ranks, spec.node_flop_rate(), runtime=runtime
            )
    else:
        run = run_parallel_nbody(
            config, ranks, spec.node_flop_rate(), runtime=runtime
        )
    if net_plan is not None:
        # Trace the outage windows the step actually lived through —
        # emitted after the run (the timeline is sorted for rendering)
        # so windows past the end don't clutter the view.
        end = max(run.elapsed_s, kernel.now)
        for window in net_plan.windows():
            if window.start_s <= end:
                kernel.trace(
                    "net-down", time=window.start_s,
                    resource=window.resource, until=window.end_s,
                )
                kernel.trace(
                    "net-up", time=window.end_s, resource=window.resource,
                )
    events = kernel.sorted_timeline()
    counts = Counter(e.kind for e in events)
    rows = [[kind, count] for kind, count in sorted(counts.items())]
    suffix = f" on {spec.title}" if platform is not None else ""
    table = format_table(
        ["Event kind", "Count"], rows,
        title=f"Unified event timeline: {ranks}-rank treecode step{suffix}",
    )
    text = table + "\n\n" + render_timeline(events, limit=limit)
    extras = {
        "events": float(len(events)),
        "resumptions": float(run.resumptions),
        "elapsed_s": run.elapsed_s,
        "failed_ranks": float(len(run.failed_ranks)),
    }
    if net_fault:
        retransmits = sum(s.retransmits for s in run.stats)
        extras["net_retransmits"] = float(retransmits)
        text += (
            f"\n\nnetwork faults: {len(net_plan)} outage window(s) "
            f"planned, {retransmits} frame(s) retransmitted"
        )
    if thermal:
        end = max(run.elapsed_s, kernel.now)
        network.finish(end)
        extras["peak_temp_c"] = network.peak_c
        extras["heat_j"] = sum(
            network.heat_joules(blade, 0.0, end) for blade in range(ranks)
        )
        tripped = governor is not None
        extras["thermal_trips"] = 1.0 if tripped else 0.0
        text += (
            f"\n\nthermal: peak blade {network.peak_c:.1f} C "
            f"(trip {tspec.trip_c:.0f} C, "
            f"{'tripped' if tripped else 'no trip'}), "
            f"{extras['heat_j']:.1f} J rejected"
        )
    if tel is not None:
        tel.detach()
        tel.ingest_run(run, world=f"timeline-{ranks}r")
        from repro.network.timing import publish_fabric_metrics
        publish_fabric_metrics(
            tel.registry, runtime.fabric, fabric_name=spec.fabric.kind
        )
        if network is not None:
            network.publish_metrics(tel.registry)
        tel.ingest_extras("timeline", extras)
        tel.finish(kernel.now)
        tel.export(telemetry)
    return ExperimentResult(
        experiment="timeline",
        headers=["Event kind", "Count"],
        rows=rows,
        text=text,
        extras=extras,
    )


# ---------------------------------------------------------------------------
# Section 4.1 - the ToPPeR headline claim
# ---------------------------------------------------------------------------

def experiment_topper() -> ExperimentResult:
    claim = paper_headline_claim()
    rows = [
        ["blade TCO ($K)", round(claim.blade.tco_usd / 1000, 1)],
        ["traditional TCO ($K)", round(claim.traditional.tco_usd / 1000, 1)],
        ["TCO ratio (trad/blade)", round(claim.tco_ratio, 2)],
        ["performance ratio (blade/trad)", round(claim.performance_ratio, 2)],
        ["blade ToPPeR ($K/Gflop)",
         round(claim.blade.usd_per_gflop / 1000, 1)],
        ["traditional ToPPeR ($K/Gflop)",
         round(claim.traditional.usd_per_gflop / 1000, 1)],
        ["ToPPeR advantage", round(claim.topper_ratio, 2)],
        ["blade wins", claim.blade_wins],
    ]
    return _result(
        "topper",
        ["Quantity", "Value"],
        rows,
        "Section 4.1: the ToPPeR argument",
        extras={"topper_ratio": claim.topper_ratio},
    )
