"""The Bladed Beowulf as one object.

Wraps a cluster from the catalog with its processor model, network
fabric and metric calculators, so an application study reads like the
paper: build the machine, run the workload, report ToPPeR.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.cluster.catalog import Cluster, METABLADE, Packaging
from repro.cluster.reliability import ClusterReliability
from repro.core.events import EventKernel
from repro.cpus.base import Processor
from repro.cpus.catalog import CPU_CATALOG
from repro.metrics.costs import CostParameters, DEFAULT_COSTS
from repro.metrics.tco import TcoBreakdown, tco_for
from repro.metrics.topper import ToPPeR, topper
from repro.nbody.parallel import ScalingPoint, scaling_study
from repro.nbody.sim import SimConfig
from repro.perfmodel.calibration import sustained_treecode_mflops

#: Peak double-precision flops per cycle per processor (for the paper's
#: percent-of-peak accounting; 24 x 633 MHz x 1 = the 15.2 Gflops peak
#: it quotes for MetaBlade).
PEAK_FLOPS_PER_CYCLE: Dict[str, float] = {
    "Transmeta TM5600": 1.0,
    "Transmeta TM5800": 1.0,
    "Intel Pentium III": 1.0,
    "Compaq Alpha EV56": 2.0,
    "IBM Power3": 4.0,
    "AMD Athlon MP": 2.0,
    "Intel Pentium 4": 2.0,
    "Intel Pentium Pro": 1.0,
}


def peak_gflops(cluster: Cluster) -> float:
    """Theoretical peak of a cluster in Gflops."""
    per_cycle = PEAK_FLOPS_PER_CYCLE.get(cluster.processor.name, 1.0)
    return cluster.nodes * cluster.processor.clock_hz * per_cycle / 1e9


@dataclass
class BladedBeowulf:
    """A cluster plus everything the paper measures about it."""

    cluster: Cluster

    @classmethod
    def metablade(cls) -> "BladedBeowulf":
        return cls(cluster=METABLADE)

    @property
    def processor(self) -> Processor:
        return CPU_CATALOG[self.cluster.processor.name]

    @property
    def is_bladed(self) -> bool:
        return self.cluster.packaging is Packaging.BLADED

    # -- performance -------------------------------------------------------

    def node_flop_rate(self) -> float:
        """Sustained treecode flops/s of one node."""
        return sustained_treecode_mflops(self.processor) * 1e6

    def sustained_gflops(self) -> float:
        """Whole-cluster sustained treecode rating."""
        return self.node_flop_rate() * self.cluster.nodes / 1e9

    def peak_gflops(self) -> float:
        return peak_gflops(self.cluster)

    def percent_of_peak(self) -> float:
        return 100.0 * self.sustained_gflops() / self.peak_gflops()

    def event_kernel(self, record_timeline: bool = False) -> EventKernel:
        """A fresh virtual clock for runs on this machine."""
        return EventKernel(record_timeline=record_timeline)

    def mpi_runtime(self, cpus: Optional[int] = None,
                    ideal_network: bool = False,
                    kernel: Optional[EventKernel] = None,
                    governor=None):
        """A SimMPI scheduler on this machine's fabric and node rate.

        The returned runtime shares *kernel* (or a fresh one), so
        failure injectors, DVFS governors and timeline tracing all see
        the same virtual time as the SPMD program.
        """
        from repro.network.timing import IdealFabric, star_fabric
        from repro.simmpi import SimMpiRuntime

        n = cpus if cpus is not None else self.cluster.nodes
        if n > self.cluster.nodes:
            raise ValueError(
                f"{n} ranks exceed the machine's {self.cluster.nodes} nodes"
            )
        fabric = IdealFabric(n) if ideal_network else star_fabric(n)
        return SimMpiRuntime(
            n, fabric=fabric, flop_rate=self.node_flop_rate(),
            kernel=kernel, governor=governor,
        )

    def nbody_scaling(self, config: SimConfig,
                      cpu_counts: Tuple[int, ...] = (1, 2, 4, 8, 16, 24),
                      ideal_network: bool = False,
                      jobs: int = 1) -> list:
        """Table 2 on this machine's nodes and fabric.

        ``jobs`` fans the independent CPU-count points over host
        processes (see :func:`repro.nbody.parallel.scaling_study`).
        """
        counts = tuple(
            c for c in cpu_counts if c <= self.cluster.nodes
        )
        return scaling_study(
            config, counts, self.node_flop_rate(),
            ideal_network=ideal_network, jobs=jobs,
        )

    # -- economics -----------------------------------------------------------

    def tco(self, params: CostParameters = DEFAULT_COSTS) -> TcoBreakdown:
        return tco_for(self.cluster, params)

    def topper(self, params: CostParameters = DEFAULT_COSTS) -> ToPPeR:
        return topper(self.cluster, self.sustained_gflops(), params)

    def reliability(self) -> ClusterReliability:
        return ClusterReliability(self.cluster)

    # -- reporting -------------------------------------------------------------

    def summary(self) -> str:
        c = self.cluster
        t = self.tco()
        lines = [
            f"{c.name}: {c.nodes}x {c.processor.clock_mhz:.0f}-MHz "
            f"{c.processor.name} ({c.packaging.value})",
            f"  sustained {self.sustained_gflops():.2f} Gflops "
            f"({self.percent_of_peak():.0f}% of {self.peak_gflops():.1f} peak)",
            f"  power {c.power_kw:.2f} kW, footprint "
            f"{c.footprint_sqft:.0f} sq ft",
            f"  4-year TCO ${t.total / 1000:.0f}K "
            f"(acquisition ${t.acquisition / 1000:.0f}K, "
            f"operating ${t.operating / 1000:.0f}K)",
            f"  ToPPeR ${self.topper().usd_per_gflop / 1000:.1f}K per Gflop",
        ]
        return "\n".join(lines)
