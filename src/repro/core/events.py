"""Discrete-event simulation kernel: one virtual clock for the machine.

Every time-bearing layer of the reproduction — SimMPI rank scheduling,
fabric occupancy, node failures, LongRun DVFS transitions — used to
keep its own notion of time (a round-robin busy-poll, a standalone
Poisson log, a frequency stepper).  This module is the shared core they
all run on now:

- :class:`EventKernel` — a global virtual clock plus a binary-heap
  event queue.  ``kernel.at(t, fn)`` schedules a callback; ``run()``
  fires events in ``(time, insertion)`` order, so simulations are
  deterministic for a given schedule.
- :class:`Process` — a handle around a generator that blocks on events:
  it is resumed (``wake``), poked with an exception (``interrupt``) or
  left suspended, and counts its own resumptions so schedulers can be
  compared by how much driving they do.
- :class:`TimelineEvent` — one structured record of the optional
  time-coherent timeline (``record_timeline=True``); SimMPI sends,
  wakes, failures, link occupancy and DVFS steps all land here with a
  shared time axis, rendered by :mod:`repro.simmpi.trace`.

Rank-local clocks (a rank computing for 100 virtual seconds without
communicating) may run *ahead* of the kernel clock; the kernel clock
itself never moves backwards — an event scheduled at-or-before ``now``
fires at ``now``.  That is the standard conservative compromise for
cooperative SPMD simulation: causal order is enforced where it matters
(message delivery, failures, DVFS steps), while pure local compute is
charged without a kernel round-trip.

The kernel is deliberately multi-tenant: any number of process
families — several SimMPI worlds, a failure injector, the batch
scheduler of :mod:`repro.sched` — may coexist on one clock.  Events
from different tenants interleave purely by ``(time, insertion)``
order, so concurrent jobs dispatched by the workload manager stay
deterministic for a given seed.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Generator, List, Optional, Tuple


@dataclass(frozen=True)
class TimelineEvent:
    """One structured record on the unified virtual-time axis."""

    time: float
    kind: str
    fields: Tuple[Tuple[str, Any], ...] = ()

    def get(self, key: str, default: Any = None) -> Any:
        for k, v in self.fields:
            if k == key:
                return v
        return default

    def as_dict(self) -> Dict[str, Any]:
        return dict(self.fields)


class Event:
    """A scheduled callback; ``cancel()`` makes it a no-op.

    ``key`` is the frozen ``(time, seq)`` heap priority, computed once
    at construction so every heap comparison is a plain tuple compare
    instead of allocating two fresh tuples per ``__lt__`` call — the
    single hottest allocation site of the old kernel loop.

    ``kernel`` back-references the owning kernel while the event sits
    in its heap, which is what keeps the kernel's live/cancelled
    counters exact under ``cancel()``.  The kernel clears the reference
    when the event is dequeued, so cancelling an already-fired event
    (schedulers do this when tearing down attempt-scoped events) is
    counter-neutral.
    """

    __slots__ = ("time", "seq", "fn", "args", "cancelled", "key", "kernel")

    def __init__(self, time: float, seq: int,
                 fn: Callable[..., Any], args: Tuple[Any, ...],
                 kernel: Optional["EventKernel"] = None) -> None:
        self.time = time
        self.seq = seq
        self.fn = fn
        self.args = args
        self.cancelled = False
        self.key = (time, seq)
        self.kernel = kernel

    def cancel(self) -> None:
        if self.cancelled:
            return
        self.cancelled = True
        kernel = self.kernel
        if kernel is not None:
            kernel._note_cancel()

    def __lt__(self, other: "Event") -> bool:
        return self.key < other.key


class EventKernel:
    """Global virtual clock + binary-heap event queue."""

    def __init__(self, record_timeline: bool = False) -> None:
        self.now = 0.0
        self.fired = 0
        self.record_timeline = record_timeline
        self.timeline: List[TimelineEvent] = []
        self._heap: List[Event] = []
        self._seq = 0
        #: Live (non-cancelled) events in the heap, and cancelled
        #: entries still awaiting lazy deletion.  Together they make
        #: ``pending()``/``idle`` O(1) and drive heap compaction.
        self._live = 0
        self._dead = 0
        #: Trace observers: called with every TimelineEvent as it is
        #: emitted, whether or not the kernel keeps a timeline itself.
        #: The repro.check recorder and auditors register here.
        self._observers: List[Callable[[TimelineEvent], None]] = []
        #: Fire hooks: called with each Event as it is dequeued, before
        #: its callback runs.  Kernel-level auditors (clock
        #: monotonicity, tie-break order) watch the loop through these.
        self._fire_hooks: List[Callable[[Event], None]] = []

    # -- scheduling --------------------------------------------------------

    def at(self, time: float, fn: Callable[..., Any], *args: Any) -> Event:
        """Schedule ``fn(*args)`` at virtual *time*."""
        if time < 0:
            raise ValueError("cannot schedule at negative virtual time")
        self._seq += 1
        event = Event(time, self._seq, fn, args, self)
        heapq.heappush(self._heap, event)
        self._live += 1
        return event

    def after(self, delay: float, fn: Callable[..., Any],
              *args: Any) -> Event:
        """Schedule ``fn(*args)`` *delay* after the current clock."""
        if delay < 0:
            raise ValueError("delay cannot be negative")
        return self.at(self.now + delay, fn, *args)

    def pending(self) -> int:
        """Live (non-cancelled) events still queued — O(1)."""
        return self._live

    @property
    def idle(self) -> bool:
        """True when no live event remains (the clock cannot advance).

        Schedulers use this after :meth:`run` to tell "drained because
        everything completed" from "drained with work still queued" —
        the latter means some tenant is stuck waiting on an event
        nobody will ever post.
        """
        return self._live == 0

    # -- lazy deletion ------------------------------------------------------

    def _note_cancel(self) -> None:
        """Bookkeeping for one in-heap cancellation (from Event.cancel)."""
        self._live -= 1
        self._dead += 1
        if self._dead > 64 and self._dead > self._live:
            self._compact()

    def _compact(self) -> None:
        """Drop cancelled entries once they outnumber live ones.

        Mutates the heap list *in place*: the run loop holds a local
        alias of ``_heap``, so rebinding would silently fork the queue.
        """
        self._heap[:] = [e for e in self._heap if not e.cancelled]
        heapq.heapify(self._heap)
        self._dead = 0

    # -- the loop ----------------------------------------------------------

    def step(self) -> bool:
        """Fire the next event; False when the queue is drained."""
        heap = self._heap
        while heap:
            event = heapq.heappop(heap)
            if event.cancelled:
                self._dead -= 1
                continue
            self._live -= 1
            event.kernel = None
            if event.time > self.now:
                self.now = event.time
            self.fired += 1
            if self._fire_hooks:
                for hook in self._fire_hooks:
                    hook(event)
            event.fn(*event.args)
            return True
        return False

    def run(self, until: Optional[float] = None) -> float:
        """Drain the queue (or stop once the clock passes *until*)."""
        if type(self).step is not EventKernel.step:
            # A subclass overrode step(): dispatch through it so the
            # override sees every event (auditor tests rely on this).
            while self._heap:
                if until is not None and self._next_time() > until:
                    break
                self.step()
            return self.now
        # The hot path: everything per-event is inlined, with the hook
        # guard reduced to a single truthiness test on the (aliased,
        # in-place mutated) hook list.  Callbacks may schedule, cancel
        # and even compact the heap mid-loop — both aliases below stay
        # valid because all of those mutate the same list object.
        heap = self._heap
        hooks = self._fire_hooks
        pop = heapq.heappop
        if until is None:
            while heap:
                event = pop(heap)
                if event.cancelled:
                    self._dead -= 1
                    continue
                self._live -= 1
                event.kernel = None
                if event.time > self.now:
                    self.now = event.time
                self.fired += 1
                if hooks:
                    for hook in hooks:
                        hook(event)
                event.fn(*event.args)
            return self.now
        while heap:
            if self._next_time() > until:
                break
            event = pop(heap)
            if event.cancelled:
                self._dead -= 1
                continue
            self._live -= 1
            event.kernel = None
            if event.time > self.now:
                self.now = event.time
            self.fired += 1
            if hooks:
                for hook in hooks:
                    hook(event)
            event.fn(*event.args)
        return self.now

    def _next_time(self) -> float:
        heap = self._heap
        while heap and heap[0].cancelled:
            heapq.heappop(heap)
            self._dead -= 1
        return heap[0].time if heap else float("inf")

    def next_times(self, limit: int = 3) -> List[float]:
        """Fire times of the next few live events (diagnostics)."""
        keys = sorted(e.key for e in self._heap if not e.cancelled)
        return [t for t, _ in keys[:limit]]

    # -- timeline ----------------------------------------------------------

    @property
    def tracing(self) -> bool:
        """True when trace() actually does something (timeline kept or
        at least one observer registered) — producers guard any
        non-trivial field computation behind this."""
        return self.record_timeline or bool(self._observers)

    def add_observer(self, fn: Callable[[TimelineEvent], None]) -> None:
        """Stream every traced event to *fn* (recorder/auditor hook)."""
        self._observers.append(fn)

    def remove_observer(self, fn: Callable[[TimelineEvent], None]) -> None:
        self._observers.remove(fn)

    def add_fire_hook(self, fn: Callable[[Event], None]) -> None:
        """Call *fn* with each event as it is dequeued (auditor hook)."""
        self._fire_hooks.append(fn)

    def remove_fire_hook(self, fn: Callable[[Event], None]) -> None:
        self._fire_hooks.remove(fn)

    def trace(self, kind: str, time: Optional[float] = None,
              **fields: Any) -> None:
        """Record one timeline entry (no-op unless recording)."""
        if self.record_timeline or self._observers:
            event = TimelineEvent(
                time=self.now if time is None else time,
                kind=kind,
                fields=tuple(fields.items()),
            )
            if self.record_timeline:
                self.timeline.append(event)
            for observer in self._observers:
                observer(event)

    def sorted_timeline(self) -> List[TimelineEvent]:
        """The timeline in virtual-time order (stable for ties)."""
        return sorted(self.timeline, key=lambda e: e.time)


class Process:
    """A generator task that blocks on events and is woken by them.

    The generator yields whenever it blocks; what it yields is handed to
    ``on_block`` (schedulers register waiters there).  ``wake`` resumes
    it through the kernel; ``interrupt`` throws an exception into it at
    its suspension point.  ``resumptions`` counts how many times the
    generator was driven — the currency the scheduling microbenchmark
    compares.
    """

    def __init__(self, kernel: EventKernel, gen: Generator,
                 name: str = "",
                 on_block: Optional[Callable[["Process", Any], None]] = None,
                 on_finish: Optional[Callable[["Process"], None]] = None,
                 on_error: Optional[
                     Callable[["Process", BaseException], bool]] = None,
                 ) -> None:
        self.kernel = kernel
        self.gen = gen
        self.name = name
        self.on_block = on_block
        self.on_finish = on_finish
        self.on_error = on_error
        self.result: Any = None
        self.finished = False
        self.failed = False
        self.failure: Optional[BaseException] = None
        self.resumptions = 0
        self._pending: Optional[Event] = None

    # -- state -------------------------------------------------------------

    @property
    def alive(self) -> bool:
        return not self.finished and not self.failed

    @property
    def scheduled(self) -> bool:
        return self._pending is not None and not self._pending.cancelled

    # -- control -----------------------------------------------------------

    def start(self, time: float = 0.0) -> None:
        self._schedule(time, None)

    def wake(self, time: Optional[float] = None) -> None:
        """Resume the process at *time* (default: now)."""
        if not self.alive or self.scheduled:
            return
        self._schedule(self.kernel.now if time is None else time, None)

    def interrupt(self, exc: BaseException,
                  time: Optional[float] = None) -> None:
        """Throw *exc* into the process at its suspension point."""
        if not self.alive:
            return
        if self._pending is not None:
            self._pending.cancel()
            self._pending = None
        self._schedule(self.kernel.now if time is None else time, exc)

    def _schedule(self, time: float, exc: Optional[BaseException]) -> None:
        self._pending = self.kernel.at(time, self._resume, exc)

    # -- the drive ---------------------------------------------------------

    def _resume(self, exc: Optional[BaseException]) -> None:
        self._pending = None
        self.resumptions += 1
        try:
            if exc is None:
                yielded = next(self.gen)
            else:
                yielded = self.gen.throw(exc)
        except StopIteration as stop:
            self.finished = True
            self.result = stop.value
            if self.on_finish is not None:
                self.on_finish(self)
            return
        except BaseException as error:  # noqa: BLE001 - scheduler boundary
            # Mark the death *before* consulting on_error: the handler
            # may finalize an enclosing world and must see this process
            # as failed (not still alive).  Unhandled errors un-mark.
            self.failed = True
            self.failure = error
            if self.on_error is not None and self.on_error(self, error):
                return
            self.failed = False
            self.failure = None
            raise
        if self.on_block is not None:
            self.on_block(self, yielded)
