"""repro.check: deterministic replay, invariant audit, differential fuzz.

PRs so far assert bit-determinism ad hoc — "Table 2 bit-identical",
"pooled sweeps byte-identical" — by eyeballing regenerated output.
This package turns that convention into a checked property:

- :mod:`repro.check.manifest` — a structured run manifest: seed,
  config hash, and the normalized per-event trace (virtual timestamps
  included) that a recording :class:`~repro.core.events.EventKernel`
  emits.  Manifests round-trip through JSON with bit-exact floats.
- :mod:`repro.check.replay` — record a run, then re-execute it against
  its manifest: every trace event is compared online as the replay
  emits it, and the first divergence is reported with kernel context
  (the mismatching event, the clock, the pending queue, rank clocks).
- :mod:`repro.check.auditors` — invariant auditors registered on the
  kernel (virtual-clock monotonicity, same-timestamp insertion order,
  message conservation per world, retransmit-ledger conservation under
  the network fault layer) plus outcome-level audits (flop vs
  compute-time ledger, energy vs PowerModel, allocator busy/down
  interval consistency).  Opt in via ``SchedConfig(audit=True)`` or
  ``SimConfig(audit=True)``.
- :mod:`repro.check.cachediff` — the profile-cache differential audit
  behind ``python -m repro.cli check --cache-diff``: a scheduler
  configuration matrix run cache-on vs cache-off, requiring bit-exact
  outcome digests and identical trace hashes.
- :mod:`repro.check.telemetrydiff` — the telemetry differential audit
  behind ``python -m repro.cli check --telemetry-diff``: the fully
  instrumented telemetry stack must be byte-indistinguishable from
  the plain recording observer (outcome digests and trace hashes).
- :mod:`repro.check.fuzz` — the differential fuzz driver behind
  ``python -m repro.cli check --fuzz``: randomized cases through three
  oracles (CMS translator vs golden interpreter, batched vs naive
  treecode traversal, FCFS vs EASY-backfill schedule safety), with
  failing cases shrunk and written as replayable manifest files.
"""

from repro.check.auditors import (
    ClockOrderAuditor,
    InvariantViolation,
    MessageConservationAuditor,
    RetransmitConservationAuditor,
    attach_auditors,
    audit_sched_outcome,
    audit_sim_result,
    detach_auditors,
)
from repro.check.cachediff import (
    CacheDiffCase,
    CacheDiffReport,
    manifest_trace_hash,
    run_cache_differential,
    sched_outcome_digest,
)
from repro.check.manifest import RunManifest, TraceRecorder, mutate_event
from repro.check.replay import (
    Divergence,
    ReplayReport,
    TraceChecker,
    record_fig3_manifest,
    record_sched_manifest,
    record_simmpi_manifest,
    record_table2_manifest,
    replay_manifest,
    verify_golden_manifest,
)
from repro.check.fuzz import (
    FuzzFailure,
    FuzzReport,
    ORACLES,
    run_fuzz,
    run_fuzz_case,
)
from repro.check.telemetrydiff import (
    TelemetryDiffCase,
    TelemetryDiffReport,
    run_telemetry_differential,
)

__all__ = [
    "CacheDiffCase",
    "CacheDiffReport",
    "ClockOrderAuditor",
    "Divergence",
    "FuzzFailure",
    "FuzzReport",
    "InvariantViolation",
    "MessageConservationAuditor",
    "ORACLES",
    "ReplayReport",
    "RetransmitConservationAuditor",
    "RunManifest",
    "TelemetryDiffCase",
    "TelemetryDiffReport",
    "TraceChecker",
    "TraceRecorder",
    "attach_auditors",
    "audit_sched_outcome",
    "audit_sim_result",
    "detach_auditors",
    "manifest_trace_hash",
    "mutate_event",
    "record_fig3_manifest",
    "record_sched_manifest",
    "record_simmpi_manifest",
    "record_table2_manifest",
    "replay_manifest",
    "run_cache_differential",
    "run_fuzz",
    "run_telemetry_differential",
    "sched_outcome_digest",
    "run_fuzz_case",
    "verify_golden_manifest",
]
