"""Record → replay-verify: re-execute a run against its manifest.

Recording attaches a :class:`TraceRecorder` to the kernel and captures
the normalized event stream.  Replay rebuilds the *same* run from the
manifest's parameters and attaches a :class:`TraceChecker` instead: as
the replay emits each trace event it is compared — exact equality,
bit-exact floats — against the recorded stream, and the first
divergence is captured *live*, with the kernel context that post-hoc
diffing cannot recover: the mismatching event, the virtual clock, the
pending-queue depth and next fire times, and the rank clocks of every
world in flight.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

from repro.core.events import EventKernel, TimelineEvent
from repro.check.manifest import RunManifest, TraceRecorder, normalize_event
from repro.network.faults import DEFAULT_NET_MTBF_S, DEFAULT_NET_MTTR_S


@dataclass
class Divergence:
    """The first point where a replay's trace leaves its manifest."""

    index: int
    expected: Optional[TimelineEvent]     # None: replay emitted extra
    actual: Optional[TimelineEvent]       # None: replay ended early
    kernel_now: float = 0.0
    pending: int = 0
    next_times: List[float] = field(default_factory=list)
    context: Dict[str, Any] = field(default_factory=dict)

    def describe(self) -> str:
        def show(event: Optional[TimelineEvent]) -> str:
            if event is None:
                return "<none>"
            fields = " ".join(f"{k}={v!r}" for k, v in event.fields)
            return f"t={event.time!r} {event.kind} {fields}"

        lines = [
            f"first divergence at event #{self.index}:",
            f"  expected: {show(self.expected)}",
            f"  actual:   {show(self.actual)}",
            f"  kernel: now={self.kernel_now!r}, "
            f"pending={self.pending}, next fire times={self.next_times}",
        ]
        for key, value in self.context.items():
            lines.append(f"  {key}: {value}")
        return "\n".join(lines)


@dataclass
class ReplayReport:
    """Outcome of one replay-verify.

    ``platform_drift`` is a distinct failure class from trace
    divergence: the *hardware description* behind the manifest changed
    (the registry platform's content-hash no longer matches the one
    recorded), so the trace was never re-executed — replaying on
    different hardware would diff garbage.
    """

    kind: str
    expected_events: int
    replayed_events: int
    divergence: Optional[Divergence] = None
    platform_drift: Optional[str] = None

    @property
    def ok(self) -> bool:
        return self.divergence is None and self.platform_drift is None

    def format(self) -> str:
        if self.platform_drift is not None:
            return (
                f"replay-verify [{self.kind}]: PLATFORM CHANGED — "
                f"{self.platform_drift}\n"
                "  (the hardware description drifted since recording; "
                "the trace was not replayed)"
            )
        if self.ok:
            return (
                f"replay-verify [{self.kind}]: OK — "
                f"{self.replayed_events} events, zero divergences"
            )
        return (
            f"replay-verify [{self.kind}]: DIVERGED — "
            f"{self.expected_events} recorded vs "
            f"{self.replayed_events} replayed events\n"
            + self.divergence.describe()
        )


class TraceChecker:
    """Online trace diff: an observer comparing events as they fire."""

    def __init__(self, kernel: EventKernel,
                 expected: List[TimelineEvent],
                 context_fn: Optional[Callable[[], Dict[str, Any]]] = None,
                 ) -> None:
        self.kernel = kernel
        self.expected = expected
        self.context_fn = context_fn
        self.seen = 0
        self.divergence: Optional[Divergence] = None
        self._attached = False

    def __call__(self, event: TimelineEvent) -> None:
        index = self.seen
        self.seen += 1
        if self.divergence is not None:
            return
        actual = normalize_event(event)
        expected = (
            self.expected[index] if index < len(self.expected) else None
        )
        if expected != actual:
            self._capture(index, expected, actual)

    def _capture(self, index: int, expected: Optional[TimelineEvent],
                 actual: Optional[TimelineEvent]) -> None:
        context: Dict[str, Any] = {}
        if self.context_fn is not None:
            try:
                context = self.context_fn()
            except Exception as error:  # noqa: BLE001 - diagnostics only
                context = {"context-error": repr(error)}
        self.divergence = Divergence(
            index=index,
            expected=expected,
            actual=actual,
            kernel_now=self.kernel.now,
            pending=self.kernel.pending(),
            next_times=self.kernel.next_times(),
            context=context,
        )

    def attach(self) -> "TraceChecker":
        if not self._attached:
            self.kernel.add_observer(self)
            self._attached = True
        return self

    def detach(self) -> None:
        if self._attached:
            self.kernel.remove_observer(self)
            self._attached = False

    def finish(self) -> None:
        """Settle the books: a short replay is a divergence too."""
        if self.divergence is None and self.seen < len(self.expected):
            self._capture(self.seen, self.expected[self.seen], None)


# ---------------------------------------------------------------------------
# Scheduler runs
# ---------------------------------------------------------------------------

SCHED_DEFAULTS: Dict[str, Any] = {
    "jobs": 8,
    "policy": "fcfs",
    "interarrival": 0.004,
    "fail_inject": False,
    "mtbf": 0.05,
    "checkpoint": 0,
    "max_retries": 3,
    "platform": "metablade",
    # Thermal modelling (repro.thermal).  ``thermal`` builds the RC
    # network; ``thermal_accel`` compresses its time constant to the
    # stream's virtual-seconds scale; ``thermal_fail`` swaps the flat
    # Poisson fault process for the Arrhenius-thinned one; ``throttle``
    # off is the no-safeguards counterfactual.  All recorded in the
    # manifest, so thermally modulated runs replay bit-exactly.
    "thermal": False,
    "thermal_accel": 1.0,
    "thermal_fail": False,
    "throttle": True,
    # Job-profile memoization (repro.sched.profile_cache).  Recorded
    # in the manifest so a replay rebuilds the same configuration;
    # tracing attaches an observer, which itself forces the cache to
    # bypass, so traces are cache-agnostic either way.
    "profile_cache": True,
    # Network fault injection (repro.network.faults).  ``net_fault``
    # turns the link/uplink outage process and the reliable-delivery
    # layer on; MTBF/MTTR are in virtual stream seconds.  Recorded in
    # the manifest so a fault-injected run replays bit-exactly; the
    # plan seed is derived as ``seed + 3`` (poisson failures use
    # ``seed + 1``, thermal ``seed + 2``).
    "net_fault": False,
    "net_mtbf": DEFAULT_NET_MTBF_S,
    "net_mttr": DEFAULT_NET_MTTR_S,
}


def _sched_params(seed: int, overrides: Dict[str, Any]) -> Dict[str, Any]:
    params = dict(SCHED_DEFAULTS)
    unknown = set(overrides) - set(params)
    if unknown:
        raise ValueError(f"unknown sched parameters: {sorted(unknown)}")
    params.update(overrides)
    params["seed"] = seed
    if params["thermal_fail"] and not params["thermal"]:
        raise ValueError("thermal_fail requires thermal=True")
    return params


def _build_sched(params: Dict[str, Any], audit: bool = False):
    """One fully-submitted BatchScheduler from manifest parameters.

    The rebuild recipe shared by record and replay — any drift between
    the two would itself be a reproducibility bug.  Manifests recorded
    before the platform layer existed carry no ``platform`` key and
    mean the MetaBlade default.
    """
    from repro.network.faults import NetFaultConfig
    from repro.platform.registry import platform_by_name
    from repro.sched import (
        BatchScheduler, SchedConfig, policy_by_name, synthetic_stream,
    )

    spec = platform_by_name(params.get("platform", "metablade"))
    specs = synthetic_stream(
        jobs=params["jobs"],
        max_nodes=spec.nodes,
        flop_rate=spec.node_flop_rate(),
        seed=params["seed"],
        mean_interarrival_s=params["interarrival"],
    )
    horizon = (
        specs[-1].arrival_s + params["jobs"] * params["interarrival"]
    )
    net_fault = None
    if params.get("net_fault", False):
        # Manifests recorded before the fault layer carry no net keys
        # and mean "off"; the plan seed follows the injector convention
        # (poisson seed+1, thermal seed+2, net seed+3).
        net_fault = NetFaultConfig(
            mtbf_s=params.get("net_mtbf", DEFAULT_NET_MTBF_S),
            mttr_s=params.get("net_mttr", DEFAULT_NET_MTTR_S),
            seed=params["seed"] + 3,
            horizon_s=horizon,
        )
    checkpoint = params["checkpoint"]
    config = SchedConfig(
        checkpoint_every=checkpoint if checkpoint > 0 else None,
        max_retries=params["max_retries"],
        audit=audit,
        thermal=params.get("thermal", False),
        thermal_accel=params.get("thermal_accel", 1.0),
        throttle=params.get("throttle", True),
        # Manifests recorded before the profile cache existed carry no
        # key and mean "enabled" (outcome-invariant either way).
        profile_cache=params.get("profile_cache", True),
    )
    sched = BatchScheduler(
        platform=spec,
        policy=policy_by_name(params["policy"]),
        config=config,
        net_fault=net_fault,
    )
    sched.submit_stream(specs)
    if params["fail_inject"]:
        sched.inject_poisson_failures(
            horizon_s=horizon, mtbf_s=params["mtbf"],
            seed=params["seed"] + 1,
        )
    if params.get("thermal_fail", False):
        sched.inject_thermal_failures(
            horizon_s=horizon, mtbf_s=params["mtbf"],
            seed=params["seed"] + 2,
        )
    return sched


def _sched_context(sched) -> Callable[[], Dict[str, Any]]:
    def context() -> Dict[str, Any]:
        clocks = {
            f"job {job_id} rank clocks": (
                tuple(
                    round(c.clock, 9) for c in (run.runtime._comms or ())
                )
                if run.runtime is not None else "fast-path"
            )
            for job_id, run in sched._running.items()
        }
        clocks["queued jobs"] = len(sched._queue)
        return clocks
    return context


def record_sched_manifest(seed: int = 2001,
                          **overrides: Any) -> RunManifest:
    """Run a batch-scheduler stream and record its full event trace.

    The payload records the platform's content-hash so a later replay
    can tell "the hardware description changed" apart from "the trace
    diverged".
    """
    params = _sched_params(seed, overrides)
    sched = _build_sched(params)
    with TraceRecorder(sched.kernel) as recorder:
        sched.run()
    payload = {
        "platform": sched.platform.name,
        "platform_hash": sched.platform.content_hash(),
    }
    if sched.thermal is not None:
        # The *resolved* (possibly platform-derived, accelerated)
        # thermal parameters the run actually used.
        payload["thermal"] = sched.thermal.spec.to_dict()
    return RunManifest.make(
        "sched", seed=seed, params=params, events=recorder.events,
        payload=payload,
    )


def _check_platform_drift(manifest: RunManifest) -> Optional[str]:
    """Compare the manifest's recorded platform hash against today's.

    Returns a human-readable drift description, or ``None`` when the
    platform is unchanged (or the manifest predates platform hashes).
    """
    recorded = manifest.payload.get("platform_hash")
    if recorded is None:
        return None
    from repro.platform.registry import platform_by_name
    name = manifest.payload.get(
        "platform", manifest.params.get("platform", "metablade")
    )
    try:
        current = platform_by_name(name).content_hash()
    except KeyError:
        return f"platform {name!r} no longer exists in the registry"
    if current != recorded:
        return (
            f"platform {name!r} content-hash is {current[:12]}… "
            f"but the manifest recorded {recorded[:12]}…"
        )
    return None


def _replay_sched(manifest: RunManifest) -> ReplayReport:
    drift = _check_platform_drift(manifest)
    if drift is not None:
        return ReplayReport(
            kind="sched",
            expected_events=len(manifest.events),
            replayed_events=0,
            platform_drift=drift,
        )
    sched = _build_sched(manifest.params)
    checker = TraceChecker(
        sched.kernel, manifest.events, context_fn=_sched_context(sched)
    ).attach()
    try:
        sched.run()
    finally:
        checker.detach()
    checker.finish()
    return ReplayReport(
        kind="sched",
        expected_events=len(manifest.events),
        replayed_events=checker.seen,
        divergence=checker.divergence,
    )


# ---------------------------------------------------------------------------
# Plain SimMPI runs
# ---------------------------------------------------------------------------

SIMMPI_DEFAULTS: Dict[str, Any] = {
    "ranks": 4,
    "rounds": 3,
    "flop_rate": 88e6,
    "fail_rank": None,
    "fail_at": 0.0,
}


def _simmpi_program(params: Dict[str, Any]) -> Callable:
    """The canonical recordable SPMD program: compute, shift, reduce.

    Each round charges seeded per-rank flops, shifts a payload around
    the ring, and synchronizes on an allreduce — enough traffic to make
    replay diffs meaningful while staying reconstructible from the
    manifest parameters alone.
    """
    import random

    ranks = params["ranks"]
    rounds = params["rounds"]
    flop_rate = params["flop_rate"]
    seed = params["seed"]

    def program(comm):
        rng = random.Random((seed << 8) ^ comm.rank)
        total = 0.0
        for round_no in range(rounds):
            comm.compute_flops(
                rng.randrange(10_000, 200_000), flop_rate
            )
            right = (comm.rank + 1) % ranks
            left = (comm.rank - 1) % ranks
            payload = yield from comm.sendrecv(
                right, (comm.rank, round_no), src=left, tag=round_no
            )
            total += payload[0]
            total += yield from comm.allreduce(float(comm.rank))
        return total
    return program


def record_simmpi_manifest(seed: int = 2001,
                           **overrides: Any) -> RunManifest:
    """Record one canonical SimMPI world (optionally with a failure)."""
    from repro.network.timing import star_fabric
    from repro.simmpi import SimMpiRuntime

    params = dict(SIMMPI_DEFAULTS)
    unknown = set(overrides) - set(params)
    if unknown:
        raise ValueError(f"unknown simmpi parameters: {sorted(unknown)}")
    params.update(overrides)
    params["seed"] = seed

    runtime = SimMpiRuntime(
        params["ranks"],
        fabric=star_fabric(params["ranks"]),
        flop_rate=params["flop_rate"],
    )
    if params["fail_rank"] is not None:
        runtime.fail_at(params["fail_at"], params["fail_rank"])
    with TraceRecorder(runtime.kernel) as recorder:
        runtime.run(_simmpi_program(params))
    return RunManifest.make(
        "simmpi", seed=seed, params=params, events=recorder.events
    )


def _replay_simmpi(manifest: RunManifest) -> ReplayReport:
    from repro.network.timing import star_fabric
    from repro.simmpi import SimMpiRuntime

    params = manifest.params
    runtime = SimMpiRuntime(
        params["ranks"],
        fabric=star_fabric(params["ranks"]),
        flop_rate=params["flop_rate"],
    )
    if params["fail_rank"] is not None:
        runtime.fail_at(params["fail_at"], params["fail_rank"])

    def context() -> Dict[str, Any]:
        comms = runtime._comms or ()
        return {"rank clocks": tuple(round(c.clock, 9) for c in comms)}

    checker = TraceChecker(
        runtime.kernel, manifest.events, context_fn=context
    ).attach()
    try:
        runtime.run(_simmpi_program(params))
    finally:
        checker.detach()
    checker.finish()
    return ReplayReport(
        kind="simmpi",
        expected_events=len(manifest.events),
        replayed_events=checker.seen,
        divergence=checker.divergence,
    )


# ---------------------------------------------------------------------------
# Golden tables (Table 2, Fig. 3)
# ---------------------------------------------------------------------------

def _sha(text: str) -> str:
    return hashlib.sha256(text.encode()).hexdigest()


def _json_rows(rows) -> List[List[Any]]:
    """Rows as they look after a JSON round trip (tuples -> lists)."""
    return json.loads(json.dumps(rows))


def record_table2_manifest(n: int = 600, cpus=(1, 2, 4),
                           seed: int = 2001) -> RunManifest:
    """Golden manifest for a small Table 2 configuration."""
    from repro.core.experiments import experiment_table2

    result = experiment_table2(n=n, steps=1, cpu_counts=tuple(cpus),
                               seed=seed)
    params = {"n": n, "cpus": list(cpus), "seed": seed}
    return RunManifest.make(
        "table2", seed=seed, params=params,
        payload={
            "headers": result.headers,
            "rows": _json_rows(result.rows),
            "text_sha256": _sha(result.text),
            "extras": result.extras,
        },
    )


def record_fig3_manifest(n: int = 500, steps: int = 1,
                         seed: int = 2001) -> RunManifest:
    """Golden manifest for a small Fig. 3 configuration."""
    from repro.core.experiments import experiment_fig3
    from repro.nbody.sim import SimConfig

    config = SimConfig(n=n, steps=steps, ic="collision", seed=seed,
                       theta=0.7, softening=1e-2)
    exp, result, art = experiment_fig3(config)
    params = {"n": n, "steps": steps, "seed": seed}
    return RunManifest.make(
        "fig3", seed=seed, params=params,
        payload={
            "headers": exp.headers,
            "rows": _json_rows(exp.rows),
            "text_sha256": _sha(exp.text),
            "art_sha256": _sha(art),
            "total_flops": result.total_flops,
            "energy_initial": result.energy_initial,
            "energy_final": result.energy_final,
        },
    )


_GOLDEN_RECORDERS = {
    "table2": record_table2_manifest,
    "fig3": record_fig3_manifest,
}


def verify_golden_manifest(manifest: RunManifest) -> ReplayReport:
    """Regenerate a golden table and diff it against its manifest.

    Divergences are reported row-by-row (the Divergence's ``index`` is
    the first differing row) so a table regression names the exact
    cell that moved, not just a hash mismatch.
    """
    recorder = _GOLDEN_RECORDERS.get(manifest.kind)
    if recorder is None:
        raise ValueError(f"not a golden-table manifest: {manifest.kind!r}")
    fresh = recorder(**manifest.params)

    old, new = manifest.payload, fresh.payload
    divergence = None
    old_rows, new_rows = old.get("rows", []), new.get("rows", [])
    for index, (row_old, row_new) in enumerate(zip(old_rows, new_rows)):
        if row_old != row_new:
            divergence = Divergence(
                index=index,
                expected=TimelineEvent(0.0, "row",
                                       (("values", repr(row_old)),)),
                actual=TimelineEvent(0.0, "row",
                                     (("values", repr(row_new)),)),
                context={"headers": old.get("headers")},
            )
            break
    if divergence is None and len(old_rows) != len(new_rows):
        divergence = Divergence(
            index=min(len(old_rows), len(new_rows)),
            expected=None, actual=None,
            context={"rows recorded": len(old_rows),
                     "rows regenerated": len(new_rows)},
        )
    if divergence is None:
        stale = {
            key: (old[key], new[key])
            for key in sorted(set(old) & set(new))
            if key != "rows" and old[key] != new[key]
        }
        if stale:
            key, (was, now) = next(iter(stale.items()))
            divergence = Divergence(
                index=len(old_rows),
                expected=TimelineEvent(0.0, key, (("value", repr(was)),)),
                actual=TimelineEvent(0.0, key, (("value", repr(now)),)),
                context={"differing payload keys": sorted(stale)},
            )
    return ReplayReport(
        kind=manifest.kind,
        expected_events=len(old_rows),
        replayed_events=len(new_rows),
        divergence=divergence,
    )


# ---------------------------------------------------------------------------
# Dispatch
# ---------------------------------------------------------------------------

def replay_manifest(manifest: RunManifest) -> ReplayReport:
    """Replay-verify any manifest kind this package knows how to run."""
    if manifest.kind == "sched":
        return _replay_sched(manifest)
    if manifest.kind == "simmpi":
        return _replay_simmpi(manifest)
    if manifest.kind in _GOLDEN_RECORDERS:
        return verify_golden_manifest(manifest)
    if manifest.kind == "fuzz-failure":
        from repro.check.fuzz import replay_failure_manifest
        return replay_failure_manifest(manifest)
    raise ValueError(f"unknown manifest kind {manifest.kind!r}")
