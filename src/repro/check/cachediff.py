"""Differential audit of the job-profile cache: cache-on vs cache-off.

The profile cache (:mod:`repro.sched.profile_cache`) claims that
memoization is *outcome-invariant*: a scheduling run with the cache
enabled produces bit-identical results to the same run with it
disabled.  This module checks that claim two ways per configuration:

- **Outcome digest** — both runs execute untraced (the fast path is
  live, so the cache actually serves hits) and every outcome field
  that reaches the metrics layer — per-job ledgers, attempt times,
  makespan, allocator busy/down seconds — is folded into a sha256
  digest built from exact float reprs.  The digests must match.
- **Trace hash** — both runs are recorded as full manifests (a
  recording observer is attached, which is itself a cache-bypass
  trigger, so this doubles as a regression check that tracing keeps
  forcing the legacy path).  The normalized event streams must hash
  identically — this is the "committed golden manifests stay
  byte-identical" guarantee in executable form.

``python -m repro.cli check --cache-diff`` runs a small matrix of
(policy × failure injection × thermal × platform) configurations and
fails loudly on the first mismatch.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Any, Dict, List

import numpy as np


def _digestable(value: Any) -> Any:
    """A JSON-stable, exact stand-in for one ledger value."""
    if isinstance(value, float):
        return repr(value)             # shortest repr is bit-exact
    if isinstance(value, np.ndarray):
        return hashlib.sha256(value.tobytes()).hexdigest()
    if isinstance(value, (bool, int, str, type(None))):
        return value
    if hasattr(value, "item"):         # numpy scalar
        return _digestable(value.item())
    if isinstance(value, (tuple, list)):
        return [_digestable(v) for v in value]
    return repr(value)


def sched_outcome_digest(outcome) -> str:
    """sha256 over every outcome field the metrics layer consumes.

    The profile-cache counters are deliberately excluded: hits/misses
    *should* differ between a cache-on and a cache-off run — they
    describe how the work was served, not what it produced.
    """
    doc: Dict[str, Any] = {
        "policy": outcome.policy,
        "nodes": outcome.nodes,
        "flop_rate": _digestable(outcome.flop_rate),
        "makespan_s": _digestable(outcome.makespan_s),
        "failures_injected": outcome.failures_injected,
        "busy_node_seconds": _digestable(
            outcome.allocator.busy_node_seconds()
        ),
        "down_node_seconds": _digestable(
            outcome.allocator.down_node_seconds()
        ),
        "records": [
            {
                "job_id": r.spec.job_id,
                "state": r.state.value,
                "end_s": _digestable(r.end_s),
                "wait_s": _digestable(r.wait_s),
                "energy_j": _digestable(r.energy_j),
                "lost_cpu_s": _digestable(r.lost_cpu_s),
                "checkpoints": r.checkpoints,
                "checkpoint_io_s": _digestable(r.checkpoint_io_s),
                "compute_s": _digestable(r.compute_s),
                "flops": _digestable(r.flops),
                "failures": r.failures,
                "requeues": r.requeues,
                "result": _digestable(r.result),
                "attempts": [
                    [
                        _digestable(a.start_s),
                        _digestable(a.end_s),
                        a.start_unit,
                        a.killed_by_node,
                    ]
                    for a in r.attempts
                ],
            }
            for r in outcome.records
        ],
    }
    if outcome.thermal is not None:
        doc["thermal"] = _digestable(
            (outcome.thermal.peak_c, outcome.thermal.trips,
             outcome.thermal.overtemp_kills, outcome.thermal.heat_j,
             outcome.thermal.fault_candidates, outcome.thermal.faults)
        )
    canonical = json.dumps(doc, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode()).hexdigest()


def manifest_trace_hash(manifest) -> str:
    """sha256 over a manifest's normalized event stream (params excluded,
    so two recordings differing only in the cache knob can compare)."""
    from repro.check.manifest import _encode_event

    canonical = json.dumps(
        [_encode_event(e) for e in manifest.events],
        sort_keys=True, separators=(",", ":"),
    )
    return hashlib.sha256(canonical.encode()).hexdigest()


@dataclass
class CacheDiffCase:
    """One configuration's cache-on vs cache-off comparison."""

    name: str
    outcome_on: str
    outcome_off: str
    trace_on: str
    trace_off: str
    cache_hits: int
    cache_misses: int
    cache_bypasses: int

    @property
    def ok(self) -> bool:
        return (
            self.outcome_on == self.outcome_off
            and self.trace_on == self.trace_off
        )


@dataclass
class CacheDiffReport:
    """The full differential audit across the configuration matrix."""

    cases: List[CacheDiffCase] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return all(c.ok for c in self.cases)

    def format(self) -> str:
        lines = ["profile-cache differential audit (cache-on vs cache-off):"]
        for c in self.cases:
            status = "OK" if c.ok else "DIVERGED"
            lines.append(
                f"  [{status}] {c.name}: outcome "
                f"{c.outcome_on[:12]}/{c.outcome_off[:12]}, trace "
                f"{c.trace_on[:12]}/{c.trace_off[:12]} "
                f"(hits={c.cache_hits} misses={c.cache_misses} "
                f"bypasses={c.cache_bypasses})"
            )
        verdict = "all identical" if self.ok else "MISMATCH FOUND"
        lines.append(f"  => {len(self.cases)} configurations, {verdict}")
        return "\n".join(lines)


#: The audit matrix: every bypass trigger appears at least once, and
#: the no-trigger rows are where the cache genuinely serves hits.
_CACHE_DIFF_MATRIX = [
    {"policy": "fcfs"},
    {"policy": "backfill"},
    {"policy": "easy"},
    {"policy": "backfill", "checkpoint": 2},
    {"policy": "fcfs", "fail_inject": True, "checkpoint": 1},
    {"policy": "backfill", "thermal": True, "thermal_accel": 150.0},
    {"policy": "fcfs", "platform": "green-destiny-240"},
    {"policy": "backfill", "platform": "green-destiny-240",
     "fail_inject": True, "checkpoint": 1},
]


def run_cache_differential(seed: int = 2001, jobs: int = 8,
                           quick: bool = False) -> CacheDiffReport:
    """Run the cache-on/cache-off matrix and compare both fingerprints."""
    from repro.check.replay import _build_sched, _sched_params
    from repro.check.replay import record_sched_manifest

    matrix = _CACHE_DIFF_MATRIX[:4] if quick else _CACHE_DIFF_MATRIX
    report = CacheDiffReport()
    for overrides in matrix:
        name = ",".join(f"{k}={v}" for k, v in sorted(overrides.items()))
        digests = {}
        hits = misses = bypasses = 0
        for cache_on in (True, False):
            params = _sched_params(
                seed, {**overrides, "jobs": jobs,
                       "profile_cache": cache_on},
            )
            sched = _build_sched(params)
            outcome = sched.run()
            digests[cache_on] = sched_outcome_digest(outcome)
            if cache_on:
                hits = outcome.cache_hits
                misses = outcome.cache_misses
                bypasses = outcome.cache_bypasses
        traces = {}
        for cache_on in (True, False):
            manifest = record_sched_manifest(
                seed=seed, jobs=jobs, profile_cache=cache_on, **overrides
            )
            traces[cache_on] = manifest_trace_hash(manifest)
        report.cases.append(
            CacheDiffCase(
                name=name,
                outcome_on=digests[True],
                outcome_off=digests[False],
                trace_on=traces[True],
                trace_off=traces[False],
                cache_hits=hits,
                cache_misses=misses,
                cache_bypasses=bypasses,
            )
        )
    return report
