"""``python -m repro.cli check``: the checking layer's front end.

Modes (mutually exclusive):

- ``--fuzz``            run the differential fuzz campaign
- ``--record PATH``     record a run manifest (``--kind`` picks the
                        recipe: sched | simmpi | table2 | fig3)
- ``--replay PATH``     replay-verify any saved manifest
- ``--cache-diff``      profile-cache differential audit: run a
                        scheduler configuration matrix cache-on vs
                        cache-off and require bit-identical outcome
                        digests and trace hashes
- ``--telemetry-diff``  telemetry differential audit: the fully
                        instrumented stack (spans + metrics +
                        exporters) must be byte-indistinguishable
                        from the plain recording observer

Exit status is non-zero on any divergence or fuzz failure, and
divergence reports are written under ``--out`` so CI can upload them
as artifacts.
"""

from __future__ import annotations

import argparse
from pathlib import Path


def add_check_arguments(parser: argparse.ArgumentParser) -> None:
    mode = parser.add_mutually_exclusive_group(required=True)
    mode.add_argument("--fuzz", action="store_true",
                      help="run the differential fuzz campaign")
    mode.add_argument("--record", metavar="PATH", default=None,
                      help="record a run manifest to PATH")
    mode.add_argument("--replay", metavar="PATH", default=None,
                      help="replay-verify the manifest at PATH")
    mode.add_argument("--cache-diff", action="store_true",
                      help="profile-cache differential audit "
                           "(cache-on vs cache-off, bit-exact)")
    mode.add_argument("--telemetry-diff", action="store_true",
                      help="telemetry differential audit "
                           "(telemetry-on vs off, bit-exact)")
    parser.add_argument("--kind", default="sched",
                        choices=["sched", "simmpi", "table2", "fig3"],
                        help="what --record records (default: sched)")
    parser.add_argument("--seed", type=int, default=2001,
                        help="campaign / manifest seed")
    parser.add_argument("--cases", type=int, default=None,
                        help="fuzz cases (default: 216 quick, 600 full)")
    parser.add_argument("--quick", action="store_true",
                        help="small fuzz parameter ranges (CI smoke)")
    parser.add_argument("--out", metavar="DIR", default="check_reports",
                        help="directory for divergence/fuzz reports")
    parser.add_argument("--jobs", type=int, default=8,
                        help="sched recording: jobs in the stream")
    parser.add_argument("--policy", default="fcfs",
                        choices=["fcfs", "backfill", "easy"],
                        help="sched recording: queue policy")
    parser.add_argument("--fail-inject", action="store_true",
                        help="sched recording: inject Poisson failures")
    parser.add_argument("--checkpoint", type=int, default=0,
                        help="sched recording: checkpoint every N units")
    parser.add_argument("--platform", default="metablade",
                        help="sched recording: registry platform to "
                             "run on (its content-hash is recorded so "
                             "replay detects platform drift)")
    parser.add_argument("--thermal", action="store_true",
                        help="sched recording: model blade temperatures "
                             "(lumped-RC network, thermal throttling)")
    parser.add_argument("--thermal-accel", type=float, default=1.0,
                        help="sched recording: thermal time-constant "
                             "compression factor (default 1)")
    parser.add_argument("--thermal-fail", action="store_true",
                        help="sched recording: temperature-modulated "
                             "fault injection (implies --thermal)")
    parser.add_argument("--no-throttle", action="store_true",
                        help="sched recording: disable the trip-point "
                             "frequency clamp (run to the kill point)")
    parser.add_argument("--net-fault", action="store_true",
                        help="sched recording: inject seeded link/uplink "
                             "outages with SimMPI retransmission")
    parser.add_argument("--net-mtbf", type=float, default=2.0,
                        help="sched recording: per-link outage MTBF in "
                             "virtual seconds (default 2.0)")
    parser.add_argument("--net-mttr", type=float, default=0.002,
                        help="sched recording: mean outage repair time "
                             "in virtual seconds (default 0.002)")


def _write_report(out_dir: str, name: str, text: str) -> Path:
    path = Path(out_dir) / name
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(text + "\n")
    return path


def cmd_check(args) -> int:
    from repro.check import (
        RunManifest,
        record_fig3_manifest,
        record_sched_manifest,
        record_simmpi_manifest,
        record_table2_manifest,
        replay_manifest,
        run_cache_differential,
        run_fuzz,
        run_telemetry_differential,
    )

    if args.telemetry_diff:
        report = run_telemetry_differential(
            seed=args.seed, jobs=args.jobs, quick=args.quick,
        )
        print(report.format())
        if not report.ok:
            path = _write_report(args.out, "telemetry_diff_report.txt",
                                 report.format())
            print(f"telemetry differential report written to {path}")
            return 1
        return 0

    if args.cache_diff:
        report = run_cache_differential(
            seed=args.seed, jobs=args.jobs, quick=args.quick,
        )
        print(report.format())
        if not report.ok:
            path = _write_report(args.out, "cache_diff_report.txt",
                                 report.format())
            print(f"cache differential report written to {path}")
            return 1
        return 0

    if args.fuzz:
        cases = args.cases
        if cases is None:
            cases = 216 if args.quick else 600
        report = run_fuzz(
            cases=cases, seed=args.seed, quick=args.quick,
            out_dir=args.out,
        )
        print(report.format())
        if not report.ok:
            path = _write_report(args.out, "fuzz_report.txt",
                                 report.format())
            print(f"fuzz report written to {path}")
            return 1
        return 0

    if args.record is not None:
        if args.kind == "sched":
            manifest = record_sched_manifest(
                seed=args.seed, jobs=args.jobs, policy=args.policy,
                fail_inject=args.fail_inject,
                checkpoint=args.checkpoint,
                platform=getattr(args, "platform", "metablade"),
                thermal=args.thermal or args.thermal_fail,
                thermal_accel=args.thermal_accel,
                thermal_fail=args.thermal_fail,
                throttle=not args.no_throttle,
                net_fault=args.net_fault,
                net_mtbf=args.net_mtbf,
                net_mttr=args.net_mttr,
            )
        elif args.kind == "simmpi":
            manifest = record_simmpi_manifest(seed=args.seed)
        elif args.kind == "table2":
            manifest = record_table2_manifest(seed=args.seed)
        else:
            manifest = record_fig3_manifest(seed=args.seed)
        path = manifest.save(args.record)
        print(
            f"recorded {manifest.kind} manifest: {len(manifest.events)} "
            f"events, config {manifest.config_hash[:12]}, -> {path}"
        )
        return 0

    manifest = RunManifest.load(args.replay)
    report = replay_manifest(manifest)
    print(report.format())
    if not report.ok:
        path = _write_report(
            args.out,
            f"divergence_{manifest.kind}_{manifest.config_hash[:12]}.txt",
            report.format(),
        )
        print(f"divergence report written to {path}")
        return 1
    return 0
