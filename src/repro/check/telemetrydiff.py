"""Differential audit of the telemetry layer: telemetry-on vs off.

:mod:`repro.telemetry` claims to be **observer-only**: attaching a
:class:`~repro.telemetry.Telemetry` handle to a run's kernel must not
change a single simulated outcome.  The claim rests on the kernel's
observer API (observers see each traced event after it is committed) —
but a contract this load-bearing gets checked directly, not argued.

One subtlety inherited from the profile cache: an attached observer is
a cache-bypass trigger, so an instrumented run takes the legacy
shared-kernel path while a bare, cache-eligible run takes the fast
path.  The two paths associate the same float arithmetic differently
(``now + elapsed``-at-origin vs absolute event times) and drift at ULP
scale — a pre-existing property quarantined by ``check --cache-diff``,
which compares within each path, never across.  The committed golden
manifests are all recordings, i.e. legacy-path runs.  The telemetry
contract is therefore checked the same way, per configuration:

- **Outcome digest** — a run instrumented with the full telemetry
  stack (spans attached, metrics ingested, exporters exercised into a
  throwaway directory) must produce the byte-identical
  :func:`~repro.check.cachediff.sched_outcome_digest` as a run
  observed only by the long-proven recording observer.  Telemetry must
  be indistinguishable from the infrastructure the goldens were
  recorded with.
- **Trace hash** — recording with the telemetry observer attached
  alongside must yield the byte-identical normalized event stream
  (:func:`~repro.check.cachediff.manifest_trace_hash`) as recording
  alone: committed goldens stay byte-identical with telemetry in the
  room.
- **Bare-run digest** — on configurations where the fast path is
  ineligible regardless (failure injection, thermal modelling), the
  instrumented run must also match the completely uninstrumented run
  byte-for-byte: there, telemetry-off and telemetry-on share one code
  path and the equality is absolute.

``python -m repro.cli check --telemetry-diff`` runs the matrix and
fails loudly on the first divergence.
"""

from __future__ import annotations

import tempfile
from dataclasses import dataclass, field
from typing import List, Optional

from repro.check.cachediff import manifest_trace_hash, sched_outcome_digest


@dataclass
class TelemetryDiffCase:
    """One configuration's telemetry-on vs telemetry-off comparison."""

    name: str
    outcome_on: str          # instrumented run (telemetry + recorder)
    outcome_off: str         # recording-observer-only run
    trace_on: str            # manifest recorded with telemetry attached
    trace_off: str           # manifest recorded bare
    outcome_bare: Optional[str]   # uninstrumented run, legacy-path rows
    events_observed: int
    metrics: int

    @property
    def ok(self) -> bool:
        return (
            self.outcome_on == self.outcome_off
            and self.trace_on == self.trace_off
            and (self.outcome_bare is None
                 or self.outcome_bare == self.outcome_on)
        )


@dataclass
class TelemetryDiffReport:
    """The full differential audit across the configuration matrix."""

    cases: List[TelemetryDiffCase] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return all(c.ok for c in self.cases)

    def format(self) -> str:
        lines = ["telemetry differential audit (telemetry-on vs off):"]
        for c in self.cases:
            status = "OK" if c.ok else "DIVERGED"
            bare = (
                f", bare {c.outcome_bare[:12]}"
                if c.outcome_bare is not None else ""
            )
            lines.append(
                f"  [{status}] {c.name}: outcome "
                f"{c.outcome_on[:12]}/{c.outcome_off[:12]}{bare}, trace "
                f"{c.trace_on[:12]}/{c.trace_off[:12]} "
                f"(events={c.events_observed} metrics={c.metrics})"
            )
        verdict = "all identical" if self.ok else "MISMATCH FOUND"
        lines.append(f"  => {len(self.cases)} configurations, {verdict}")
        return "\n".join(lines)


#: The audit matrix: every event family the span recorder consumes
#: appears at least once — failures (node-down/up, requeues), thermal
#: (trips, throttling, overtemp kills), checkpoints, both platforms,
#: and the profile cache both enabled and disabled.
_TELEMETRY_DIFF_MATRIX = [
    {"policy": "fcfs"},
    {"policy": "backfill", "checkpoint": 2},
    {"policy": "easy", "fail_inject": True, "checkpoint": 1},
    {"policy": "backfill", "thermal": True, "thermal_accel": 150.0},
    {"policy": "fcfs", "platform": "green-destiny-240"},
    {"policy": "backfill", "platform": "green-destiny-240",
     "fail_inject": True, "checkpoint": 1, "profile_cache": False},
]


def _legacy_path_forced(overrides: dict, outcome) -> bool:
    """Whether this run bypassed the fast path even uninstrumented.

    Decided from the *bare run's own state*, not the overrides: a
    ``fail_inject`` row whose Poisson draw lands zero faults inside
    the horizon never trips the eligibility check and stays on the
    fast path.  These are the triggers
    :meth:`~repro.sched.scheduler.BatchScheduler._fastpath_eligible`
    reads at dispatch time (pre-run injection bumps
    ``failures_injected`` before the kernel starts).
    """
    return bool(overrides.get("thermal")) or outcome.failures_injected > 0


def _run_instrumented(params, out_dir: str):
    """One fully instrumented run: recorder + spans + ingest + export."""
    from repro.check.manifest import TraceRecorder
    from repro.check.replay import _build_sched
    from repro.telemetry import Telemetry

    sched = _build_sched(params)
    tel = Telemetry()
    tel.attach(sched.kernel)
    with TraceRecorder(sched.kernel) as recorder:
        with tel.wall_span("simulate"):
            outcome = sched.run()
    tel.detach()
    tel.ingest_sched(outcome, platform=sched.platform)
    tel.finish(sched.kernel.now)
    tel.export(out_dir)
    return outcome, recorder.events, tel


def run_telemetry_differential(seed: int = 2002, jobs: int = 8,
                               quick: bool = False) -> TelemetryDiffReport:
    """Run the telemetry-on/off matrix and compare all fingerprints."""
    from repro.check.manifest import RunManifest, TraceRecorder
    from repro.check.replay import _build_sched, _sched_params

    matrix = _TELEMETRY_DIFF_MATRIX[:3] if quick else _TELEMETRY_DIFF_MATRIX
    report = TelemetryDiffReport()
    for overrides in matrix:
        name = ",".join(f"{k}={v}" for k, v in sorted(overrides.items()))
        params = _sched_params(seed, {**overrides, "jobs": jobs})

        # Telemetry-off baseline: the recording observer alone — the
        # exact infrastructure the committed goldens were made with.
        sched_off = _build_sched(params)
        with TraceRecorder(sched_off.kernel) as rec_off:
            outcome_off = sched_off.run()
        digest_off = sched_outcome_digest(outcome_off)
        manifest_off = RunManifest.make(
            "sched", seed=seed, params=params, events=rec_off.events,
            payload={},
        )

        # Telemetry-on: the full stack, recorder attached alongside.
        with tempfile.TemporaryDirectory() as tmp:
            outcome_on, events_on, tel = _run_instrumented(params, tmp)
        digest_on = sched_outcome_digest(outcome_on)
        manifest_on = RunManifest.make(
            "sched", seed=seed, params=params, events=events_on,
            payload={},
        )

        # Runs that forced the legacy path anyway compare against the
        # completely uninstrumented run too — absolute equality.
        digest_bare = None
        bare_outcome = _build_sched(params).run()
        if _legacy_path_forced(overrides, bare_outcome):
            digest_bare = sched_outcome_digest(bare_outcome)

        report.cases.append(
            TelemetryDiffCase(
                name=name,
                outcome_on=digest_on,
                outcome_off=digest_off,
                trace_on=manifest_trace_hash(manifest_on),
                trace_off=manifest_trace_hash(manifest_off),
                outcome_bare=digest_bare,
                events_observed=tel.spans.events_seen,
                metrics=len(tel.registry),
            )
        )
    return report


__all__ = [
    "TelemetryDiffCase",
    "TelemetryDiffReport",
    "run_telemetry_differential",
]
