"""Run manifests: the serialized identity of one deterministic run.

A manifest is what makes "this run is reproducible" a checkable claim
instead of a convention: it names the run *kind* (which rebuild recipe
to use), the exact parameters, a hash of those parameters (so a replay
against a stale manifest fails loudly rather than diffing garbage),
and the full normalized event trace with virtual timestamps.

Floats survive the JSON round trip bit-exactly: Python serializes
them via their shortest repr, and parsing that repr returns the same
IEEE-754 double, so trace comparison after a save/load cycle is still
exact equality.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

from repro.core.events import EventKernel, TimelineEvent

#: Manifest schema version (bump on incompatible format changes).
MANIFEST_VERSION = 1

_SCALARS = (bool, int, float, str, type(None))


def _normalize_value(value: Any) -> Any:
    """Clamp a trace field to a JSON-safe scalar.

    NumPy scalars become their Python equivalents; anything exotic is
    frozen as its repr so two runs still compare equal iff they agree.
    """
    if isinstance(value, _SCALARS):
        return value
    if hasattr(value, "item"):          # numpy scalar
        return value.item()
    return repr(value)


def normalize_event(event: TimelineEvent) -> TimelineEvent:
    """A TimelineEvent with all field values JSON-safe scalars."""
    return TimelineEvent(
        time=float(event.time),
        kind=event.kind,
        fields=tuple(
            (k, _normalize_value(v)) for k, v in event.fields
        ),
    )


def _encode_event(event: TimelineEvent) -> List[Any]:
    return [event.time, event.kind, {k: v for k, v in event.fields}]


def _decode_event(raw: List[Any]) -> TimelineEvent:
    time, kind, fields = raw
    return TimelineEvent(
        time=float(time), kind=kind, fields=tuple(fields.items())
    )


def config_hash(params: Dict[str, Any]) -> str:
    """sha256 over the canonical JSON of the run parameters."""
    canonical = json.dumps(params, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode()).hexdigest()


@dataclass
class RunManifest:
    """One recorded run: parameters, config hash, and event trace."""

    kind: str                       # sched | simmpi | table2 | fig3 | fuzz-failure
    seed: int
    params: Dict[str, Any]
    config_hash: str
    events: List[TimelineEvent] = field(default_factory=list)
    #: Golden payload for non-trace manifests (table rows, digests).
    payload: Dict[str, Any] = field(default_factory=dict)
    version: int = MANIFEST_VERSION

    @classmethod
    def make(cls, kind: str, seed: int, params: Dict[str, Any],
             events: Optional[List[TimelineEvent]] = None,
             payload: Optional[Dict[str, Any]] = None) -> "RunManifest":
        return cls(
            kind=kind,
            seed=seed,
            params=dict(params),
            config_hash=config_hash(params),
            events=list(events or []),
            payload=dict(payload or {}),
        )

    # -- persistence -------------------------------------------------------

    def to_json(self) -> str:
        doc = {
            "version": self.version,
            "kind": self.kind,
            "seed": self.seed,
            "params": self.params,
            "config_hash": self.config_hash,
            "payload": self.payload,
            "events": [_encode_event(e) for e in self.events],
        }
        return json.dumps(doc, separators=(",", ":"))

    def save(self, path: Union[str, Path]) -> Path:
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(self.to_json())
        return path

    @classmethod
    def from_json(cls, text: str) -> "RunManifest":
        doc = json.loads(text)
        if doc.get("version") != MANIFEST_VERSION:
            raise ValueError(
                f"manifest version {doc.get('version')!r} unsupported "
                f"(expected {MANIFEST_VERSION})"
            )
        manifest = cls(
            kind=doc["kind"],
            seed=doc["seed"],
            params=doc["params"],
            config_hash=doc["config_hash"],
            events=[_decode_event(e) for e in doc["events"]],
            payload=doc.get("payload", {}),
        )
        if config_hash(manifest.params) != manifest.config_hash:
            raise ValueError(
                "manifest config hash does not match its parameters "
                "(corrupted or hand-edited file)"
            )
        return manifest

    @classmethod
    def load(cls, path: Union[str, Path]) -> "RunManifest":
        return cls.from_json(Path(path).read_text())


def mutate_event(manifest: RunManifest, index: int,
                 **updates: Any) -> RunManifest:
    """A copy of *manifest* with one event's fields (or time) changed.

    The perturbation tool the replay tests use: flipping a single
    field at ``index`` must make replay-verify report its first
    divergence exactly there.
    """
    events = list(manifest.events)
    old = events[index]
    time = updates.pop("time", old.time)
    fields = dict(old.fields)
    fields.update(updates)
    events[index] = TimelineEvent(
        time=time, kind=old.kind, fields=tuple(fields.items())
    )
    clone = RunManifest(
        kind=manifest.kind,
        seed=manifest.seed,
        params=dict(manifest.params),
        config_hash=manifest.config_hash,
        events=events,
        payload=dict(manifest.payload),
    )
    return clone


class TraceRecorder:
    """Streams a kernel's trace into a normalized event list.

    Registers as an observer (the kernel needs no ``record_timeline``
    flag, so recording adds no behavioural difference to the run), and
    detaches cleanly so the same kernel can be reused.
    """

    def __init__(self, kernel: EventKernel) -> None:
        self.kernel = kernel
        self.events: List[TimelineEvent] = []
        self._attached = False

    def __call__(self, event: TimelineEvent) -> None:
        self.events.append(normalize_event(event))

    def attach(self) -> "TraceRecorder":
        if not self._attached:
            self.kernel.add_observer(self)
            self._attached = True
        return self

    def detach(self) -> None:
        if self._attached:
            self.kernel.remove_observer(self)
            self._attached = False

    def __enter__(self) -> "TraceRecorder":
        return self.attach()

    def __exit__(self, *exc: Any) -> None:
        self.detach()
