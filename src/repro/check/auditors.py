"""Invariant auditors: always-on correctness checks for a live run.

Two layers:

- **Kernel auditors** register on an :class:`EventKernel` (fire hooks
  and trace observers) and watch invariants *while the run executes*:
  the virtual clock never moves backwards, same-timestamp events fire
  in insertion order, and every message a world posts is either
  consumed or still undelivered in a world that recorded deaths.
  Violations raise :class:`InvariantViolation` immediately, naming the
  event that broke the property.

- **Outcome audits** are pure functions over finished results:
  :func:`audit_sched_outcome` cross-checks the scheduler's ledgers
  (flops billed vs compute time at the node rate, job energy vs the
  PowerModel over attempt windows, allocator busy/down intervals vs
  job attempts), and :func:`audit_sim_result` checks the N-body flop
  ledger against the per-step traversal stats.

Opt in via ``SchedConfig(audit=True)`` / ``SimConfig(audit=True)``;
the hooks cost nothing when no auditor is registered.
"""

from __future__ import annotations

import math
from collections import defaultdict
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.events import Event, EventKernel, TimelineEvent

#: Relative tolerance for ledger cross-checks that recompute the same
#: quantity through a different summation order.
_REL_TOL = 1e-9


class InvariantViolation(AssertionError):
    """A checked simulator invariant does not hold."""


class KernelAuditor:
    """Base: an auditor that attaches to a kernel's hook points."""

    def attach(self, kernel: EventKernel) -> "KernelAuditor":
        raise NotImplementedError

    def detach(self, kernel: EventKernel) -> None:
        raise NotImplementedError

    def finish(self) -> None:
        """End-of-run check (default: nothing)."""


class ClockOrderAuditor(KernelAuditor):
    """The kernel clock is monotone and ties fire in insertion order.

    ``EventKernel`` promises (time, insertion-seq) dispatch — the
    property every "bit-identical" claim in this repo leans on.  A
    broken heap comparator (e.g. an edit that reorders same-timestamp
    events) is caught on the first mis-ordered dispatch.
    """

    def __init__(self) -> None:
        self.checked = 0
        self._kernel: Optional[EventKernel] = None
        self._last_now = -math.inf
        self._last: Optional[Tuple[float, int]] = None

    def attach(self, kernel: EventKernel) -> "ClockOrderAuditor":
        self._kernel = kernel
        self._last_now = kernel.now
        kernel.add_fire_hook(self._on_fire)
        return self

    def detach(self, kernel: EventKernel) -> None:
        kernel.remove_fire_hook(self._on_fire)

    def _on_fire(self, event: Event) -> None:
        self.checked += 1
        now = self._kernel.now
        if now < self._last_now:
            raise InvariantViolation(
                f"virtual clock moved backwards: {self._last_now!r} -> "
                f"{now!r} firing event at t={event.time!r}"
            )
        self._last_now = now
        if self._last is not None:
            last_time, last_seq = self._last
            if event.time == last_time and event.seq < last_seq:
                raise InvariantViolation(
                    "same-timestamp events fired out of insertion "
                    f"order at t={event.time!r}: seq {last_seq} then "
                    f"seq {event.seq}"
                )
        self._last = (event.time, event.seq)


class MessageConservationAuditor(KernelAuditor):
    """Every send is matched by a delivery or a recorded death.

    Watches the trace stream: ``send`` / ``recv`` events per
    ``(src, dst, tag)`` triple, ``drop`` events (a post discarded at an
    already-dead destination), and each world's closing ``world-done``
    conservation record (posted == consumed + undelivered + dropped,
    with the latter three only legal when the world saw failures or
    kills).  :meth:`finish` settles the global books: total sends minus
    total receives must equal the undelivered plus dropped messages of
    worlds that recorded deaths.
    """

    def __init__(self) -> None:
        self.sends: Dict[Tuple[int, int, int], int] = defaultdict(int)
        self.recvs: Dict[Tuple[int, int, int], int] = defaultdict(int)
        self.drops: Dict[Tuple[int, int, int], int] = defaultdict(int)
        self.worlds = 0
        self.undelivered_total = 0
        self.dropped_total = 0

    def attach(self, kernel: EventKernel) -> "MessageConservationAuditor":
        kernel.add_observer(self._on_trace)
        return self

    def detach(self, kernel: EventKernel) -> None:
        kernel.remove_observer(self._on_trace)

    def _on_trace(self, event: TimelineEvent) -> None:
        if event.kind == "send":
            key = (event.get("src"), event.get("dst"), event.get("tag"))
            self.sends[key] += 1
        elif event.kind == "recv":
            key = (event.get("src"), event.get("rank"), event.get("tag"))
            self.recvs[key] += 1
            if self.recvs[key] > self.sends[key]:
                raise InvariantViolation(
                    f"message over-delivery: (src={key[0]}, dst={key[1]},"
                    f" tag={key[2]}) received {self.recvs[key]} times but"
                    f" only sent {self.sends[key]}"
                )
        elif event.kind == "drop":
            key = (event.get("src"), event.get("dst"), event.get("tag"))
            self.drops[key] += 1
            if self.drops[key] + self.recvs[key] > self.sends[key]:
                raise InvariantViolation(
                    f"message over-drop: (src={key[0]}, dst={key[1]},"
                    f" tag={key[2]}) dropped {self.drops[key]} + received"
                    f" {self.recvs[key]} times but only sent "
                    f"{self.sends[key]}"
                )
        elif event.kind == "world-done":
            self.worlds += 1
            posted = event.get("posted", 0)
            consumed = event.get("consumed", 0)
            undelivered = event.get("undelivered", 0)
            dropped = event.get("dropped", 0)
            deaths = event.get("failed", 0) + event.get("kills", 0)
            if posted != consumed + undelivered + dropped:
                raise InvariantViolation(
                    f"world message books do not balance at "
                    f"t={event.time!r}: posted {posted} != consumed "
                    f"{consumed} + undelivered {undelivered} + dropped "
                    f"{dropped}"
                )
            if (undelivered or dropped) and not deaths:
                raise InvariantViolation(
                    f"world finished with {undelivered} undelivered and "
                    f"{dropped} dropped message(s) but recorded no "
                    "failure or kill"
                )
            self.undelivered_total += undelivered
            self.dropped_total += dropped

    def finish(self) -> None:
        total_sent = sum(self.sends.values())
        total_recv = sum(self.recvs.values())
        accounted = self.undelivered_total + self.dropped_total
        if total_sent - total_recv != accounted:
            raise InvariantViolation(
                f"message conservation broken: {total_sent} sends, "
                f"{total_recv} receives, but worlds account for "
                f"{self.undelivered_total} undelivered and "
                f"{self.dropped_total} dropped message(s)"
            )


class RetransmitConservationAuditor(KernelAuditor):
    """Every send settles as one delivery or an exhausted retry ledger.

    Under the reliable-delivery layer each logical message carries a
    kernel-unique ``mid``: lost frames trace ``net-drop`` (opening or
    extending that mid's retry ledger), and the ledger must close with
    exactly one terminal event — a ``send`` (the retransmission got
    through) or a ``net-giveup`` whose ``attempts`` field equals the
    losses recorded.  The retry loop is synchronous inside ``post()``,
    so no ledger may remain open at :meth:`finish`; one left dangling
    means a frame was lost and neither retried nor abandoned.  Inert on
    fault-free runs (no ``mid``-bearing events ever fire).
    """

    def __init__(self) -> None:
        self.retransmits = 0
        self.delivered = 0
        self.gaveup = 0
        self._open: Dict[int, int] = {}   # mid -> lost frames so far

    def attach(self, kernel: EventKernel) -> "RetransmitConservationAuditor":
        kernel.add_observer(self._on_trace)
        return self

    def detach(self, kernel: EventKernel) -> None:
        kernel.remove_observer(self._on_trace)

    def _on_trace(self, event: TimelineEvent) -> None:
        kind = event.kind
        if kind == "net-drop":
            mid = event.get("mid")
            lost = self._open.get(mid, 0)
            if event.get("attempt") != lost:
                raise InvariantViolation(
                    f"retry ledger for mid {mid} out of order at "
                    f"t={event.time!r}: net-drop says attempt "
                    f"{event.get('attempt')}, ledger saw {lost} loss(es)"
                )
            self._open[mid] = lost + 1
            self.retransmits += 1
        elif kind == "send":
            mid = event.get("mid")
            if mid is None:
                return
            # Delivery closes the ledger (losses, if any, were retried
            # through to success).
            self._open.pop(mid, None)
            self.delivered += 1
        elif kind == "net-giveup":
            mid = event.get("mid")
            lost = self._open.pop(mid, 0)
            if event.get("attempts") != lost:
                raise InvariantViolation(
                    f"retry ledger for mid {mid} does not balance at "
                    f"giveup: {lost} frame loss(es) traced but the "
                    f"sender reports {event.get('attempts')} attempts"
                )
            self.gaveup += 1

    def finish(self) -> None:
        if self._open:
            sample = sorted(self._open)[:5]
            raise InvariantViolation(
                f"{len(self._open)} retry ledger(s) left open (lost "
                f"frames neither delivered nor abandoned): mids "
                f"{sample}"
            )


def attach_auditors(kernel: EventKernel,
                    auditors: Optional[Sequence[KernelAuditor]] = None,
                    ) -> List[KernelAuditor]:
    """Attach the standard auditor set (or *auditors*) to *kernel*."""
    chosen = list(auditors) if auditors is not None else [
        ClockOrderAuditor(), MessageConservationAuditor(),
        RetransmitConservationAuditor(),
    ]
    for auditor in chosen:
        auditor.attach(kernel)
    return chosen


def detach_auditors(kernel: EventKernel,
                    auditors: Sequence[KernelAuditor],
                    finish: bool = True) -> None:
    """Detach *auditors*, running their end-of-run checks first."""
    for auditor in auditors:
        if finish:
            auditor.finish()
        auditor.detach(kernel)


# ---------------------------------------------------------------------------
# Outcome-level audits
# ---------------------------------------------------------------------------

def _close(a: float, b: float) -> bool:
    return math.isclose(a, b, rel_tol=_REL_TOL, abs_tol=1e-12)


def audit_sched_outcome(outcome, power=None,
                        flop_rate: Optional[float] = None,
                        thermal=None) -> None:
    """Cross-check a finished :class:`SchedOutcome`'s ledgers.

    Raises :class:`InvariantViolation` on the first broken invariant:

    - every job reached a terminal state, started no earlier than it
      arrived, and accumulated non-negative wait/lost-CPU time;
    - allocator intervals per blade are well-formed, non-overlapping,
      and busy intervals fit inside ``[0, makespan]`` (repair windows
      may drain past the last job end); busy time per job equals the
      sum of its attempt windows times its width;
    - job energy equals the PowerModel integrated over its attempt
      windows (times its width); with *thermal* (the run's
      :class:`~repro.thermal.model.ThermalNetwork`) it is instead the
      cooling-overhead factor times the blade heat recorded over the
      job's busy intervals — throttled stretches dissipate less;
    - for completed jobs, compute time equals the flops billed through
      the rank clocks divided by the node flop rate (with *thermal*,
      at least that — throttling only ever slows compute down).

    With *thermal*, :func:`audit_thermal_network` also runs over the
    network's segment ledger (energy↔temperature conservation).
    """
    from repro.sched.job import JobState

    makespan = outcome.makespan_s

    heat_by_job: Dict[str, float] = defaultdict(float)
    if thermal is not None:
        for interval in outcome.allocator.intervals:
            if interval.kind == "busy":
                heat_by_job[interval.label] += thermal.heat_joules(
                    interval.blade, interval.start_s, interval.end_s
                )

    attempt_busy: Dict[str, float] = defaultdict(float)
    for record in outcome.records:
        spec = record.spec
        jid = spec.job_id
        if record.state in (JobState.QUEUED, JobState.RUNNING):
            raise InvariantViolation(
                f"job {jid} ended non-terminal ({record.state.value})"
            )
        if record.wait_s < -1e-12:
            raise InvariantViolation(f"job {jid} has negative wait time")
        if record.lost_cpu_s < -1e-12:
            raise InvariantViolation(
                f"job {jid} has negative lost CPU time"
            )
        energy = 0.0
        for attempt in record.attempts:
            if attempt.end_s is None:
                raise InvariantViolation(
                    f"job {jid} has an attempt without an end time"
                )
            if attempt.start_s < spec.arrival_s - 1e-12:
                raise InvariantViolation(
                    f"job {jid} started at {attempt.start_s!r} before "
                    f"its arrival {spec.arrival_s!r}"
                )
            if attempt.end_s < attempt.start_s:
                raise InvariantViolation(
                    f"job {jid} has an attempt ending before it starts"
                )
            window = attempt.end_s - attempt.start_s
            attempt_busy[str(jid)] += window * spec.nodes
            if power is not None:
                energy += spec.nodes * power.energy_joules(window)
        if thermal is not None and power is not None:
            from repro.thermal.model import cooling_overhead_factor
            expected = cooling_overhead_factor(power) * heat_by_job[str(jid)]
            if not _close(record.energy_j, expected):
                raise InvariantViolation(
                    f"job {jid} energy ledger off: recorded "
                    f"{record.energy_j!r} J, cooling factor times blade "
                    f"heat over busy intervals gives {expected!r} J"
                )
        elif power is not None and not _close(record.energy_j, energy):
            raise InvariantViolation(
                f"job {jid} energy ledger off: recorded "
                f"{record.energy_j!r} J, PowerModel over attempts gives "
                f"{energy!r} J"
            )
        if (
            flop_rate is not None and record.state is JobState.COMPLETED
            and record.flops > 0
        ):
            floor = record.flops / flop_rate
            if thermal is not None:
                # Throttled segments run slower than the nominal rate,
                # so the floor is the unthrottled prediction.
                if record.compute_s < floor * (1.0 - _REL_TOL) - 1e-12:
                    raise InvariantViolation(
                        f"job {jid} flop ledger off: {record.flops!r} "
                        f"flops at {flop_rate!r} flop/s needs at least "
                        f"{floor!r} s compute, recorded "
                        f"{record.compute_s!r} s"
                    )
            elif not _close(record.compute_s, floor):
                raise InvariantViolation(
                    f"job {jid} flop ledger off: {record.flops!r} flops at "
                    f"{flop_rate!r} flop/s predicts "
                    f"{floor!r} s compute, recorded "
                    f"{record.compute_s!r} s"
                )

    by_blade: Dict[int, List] = defaultdict(list)
    interval_busy: Dict[str, float] = defaultdict(float)
    for interval in outcome.allocator.intervals:
        if interval.end_s <= interval.start_s:
            raise InvariantViolation(
                f"blade {interval.blade} has an empty/backwards "
                f"interval [{interval.start_s!r}, {interval.end_s!r}]"
            )
        if interval.start_s < -1e-12:
            raise InvariantViolation(
                f"blade {interval.blade} interval starts before t=0 "
                f"({interval.start_s!r})"
            )
        # Busy intervals fit inside the makespan (= the last job end);
        # "down" repair windows legitimately drain after it.
        if interval.kind == "busy" and interval.end_s > makespan + 1e-9:
            raise InvariantViolation(
                f"blade {interval.blade} busy interval "
                f"[{interval.start_s!r}, {interval.end_s!r}] outside "
                f"the run [0, {makespan!r}]"
            )
        by_blade[interval.blade].append(interval)
        if interval.kind == "busy":
            interval_busy[interval.label] += (
                interval.end_s - interval.start_s
            )
    for blade, intervals in by_blade.items():
        intervals.sort(key=lambda i: i.start_s)
        for prev, cur in zip(intervals, intervals[1:]):
            if cur.start_s < prev.end_s - 1e-12:
                raise InvariantViolation(
                    f"blade {blade} intervals overlap: "
                    f"[{prev.start_s!r}, {prev.end_s!r}] {prev.kind} "
                    f"then [{cur.start_s!r}, {cur.end_s!r}] {cur.kind}"
                )
    for label, busy in interval_busy.items():
        if not _close(busy, attempt_busy.get(label, 0.0)):
            raise InvariantViolation(
                f"job {label} busy node-seconds disagree: allocator "
                f"intervals say {busy!r}, attempts say "
                f"{attempt_busy.get(label, 0.0)!r}"
            )
    for label, busy in attempt_busy.items():
        if label not in interval_busy and busy > 1e-12:
            raise InvariantViolation(
                f"job {label} ran for {busy!r} node-seconds but has no "
                "allocator busy interval"
            )

    if thermal is not None:
        audit_thermal_network(thermal)


def audit_thermal_network(network) -> None:
    """Energy↔temperature conservation over the RC segment ledger.

    Every advanced segment of a :class:`~repro.thermal.model
    .ThermalNetwork` (built with ``keep_ledger=True``) must satisfy
    the lumped-RC energy balance

        input  =  stored          +  rejected
        P*dt   =  C*(T1 - T0)     +  integral (T - T_sink)/R dt

    where the rejected-heat integral has its own closed form,
    ``P*dt + (T0 - T_inf)*C*(1 - exp(-dt/tau))``.  The recorded end
    temperature ``T1`` comes from the solver's advance; the balance
    only closes if that endpoint sits exactly on the analytic
    solution, so a buggy integrator (or a ledger written out of
    order) is caught here.  Per blade, segments must also tile time
    contiguously with continuous temperature.
    """
    spec = network.spec
    tau = spec.tau_s
    last_end: Dict[int, float] = {}
    last_temp: Dict[int, float] = {}
    for seg in network.segments:
        if seg.end_s <= seg.start_s:
            raise InvariantViolation(
                f"blade {seg.blade} has an empty/backwards thermal "
                f"segment [{seg.start_s!r}, {seg.end_s!r}]"
            )
        if seg.power_w < 0:
            raise InvariantViolation(
                f"blade {seg.blade} dissipated negative power "
                f"{seg.power_w!r} W"
            )
        if seg.blade in last_end:
            if seg.start_s != last_end[seg.blade]:
                raise InvariantViolation(
                    f"blade {seg.blade} thermal segments do not tile: "
                    f"previous ended at {last_end[seg.blade]!r}, next "
                    f"starts at {seg.start_s!r}"
                )
            if seg.temp_start_c != last_temp[seg.blade]:
                raise InvariantViolation(
                    f"blade {seg.blade} temperature jumped between "
                    f"segments: {last_temp[seg.blade]!r} -> "
                    f"{seg.temp_start_c!r} °C"
                )
        last_end[seg.blade] = seg.end_s
        last_temp[seg.blade] = seg.temp_end_c
        dt = seg.end_s - seg.start_s
        t_inf = seg.sink_c + spec.r_c_per_w * seg.power_w
        decay = 1.0 - math.exp(-dt / tau)
        put_in = seg.power_w * dt
        stored = spec.c_j_per_c * (seg.temp_end_c - seg.temp_start_c)
        rejected = put_in + (
            (seg.temp_start_c - t_inf) * spec.c_j_per_c * decay
        )
        if not math.isclose(
            put_in, stored + rejected,
            rel_tol=1e-9, abs_tol=1e-9 * spec.c_j_per_c,
        ):
            raise InvariantViolation(
                f"blade {seg.blade} segment [{seg.start_s!r}, "
                f"{seg.end_s!r}] breaks energy conservation: input "
                f"{put_in!r} J, stored {stored!r} J + rejected "
                f"{rejected!r} J"
            )
        if seg.temp_end_c > network.peak_c + 1e-9:
            raise InvariantViolation(
                f"blade {seg.blade} reached {seg.temp_end_c!r} °C but "
                f"the network recorded peak {network.peak_c!r} °C"
            )


def audit_sim_result(sim, result) -> None:
    """Check an N-body run's flop ledger against its traversal stats.

    ``NBodySimulation`` appends every force evaluation's billed flops
    to ``flops_ledger``; the total and the per-step records must tile
    that ledger exactly (integer conservation, no tolerance).
    """
    ledger = list(getattr(sim, "flops_ledger", ()))
    if not ledger:
        raise InvariantViolation("simulation kept no flop ledger")
    if sum(ledger) != result.total_flops:
        raise InvariantViolation(
            f"flop ledger does not tile the total: entries sum to "
            f"{sum(ledger)}, total_flops is {result.total_flops}"
        )
    if len(ledger) != len(result.records) + 1:
        raise InvariantViolation(
            f"{len(ledger)} force evaluations but "
            f"{len(result.records)} step records (+1 priming) expected"
        )
    for record, flops in zip(result.records, ledger[1:]):
        if record.flops != flops:
            raise InvariantViolation(
                f"step {record.step} records {record.flops} flops, "
                f"ledger says {flops}"
            )
        if record.interactions < 0 or record.nodes <= 0:
            raise InvariantViolation(
                f"step {record.step} has nonsensical stats "
                f"(interactions={record.interactions}, "
                f"nodes={record.nodes})"
            )
