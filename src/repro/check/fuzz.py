"""Differential fuzzing: three oracles, randomized seeds, shrinking.

Each oracle runs one randomized case through two implementations that
must agree and returns ``None`` (agreement) or a failure message:

- ``cms``        — CMS translator+VLIW pipeline vs the golden
                   interpreter on :func:`repro.isa.randprog` programs
                   (bit-identical architectural state);
- ``traversal``  — batched vectorised treecode traversal vs the naive
                   per-group reference walk (bit-identical
                   accelerations and work counters);
- ``sched``      — FCFS vs EASY backfill on the same job stream, each
                   run under the full invariant-auditor set (both must
                   terminate every job, satisfy the ledger audits, and
                   — without failures — complete the identical job set).

A failing case is *shrunk* (greedy descent through each oracle's
smaller-candidate generator while the failure persists) and written as
a ``fuzz-failure`` manifest that ``repro.cli check --replay`` re-runs.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Iterator, List, Optional, Union

from repro.check.manifest import RunManifest

#: Shrink attempts before giving up on minimizing a failing case.
_MAX_SHRINKS = 60


class Oracle:
    """One differential test: draw params, run the comparison."""

    name: str = "oracle"

    def draw(self, rng: random.Random, quick: bool) -> Dict[str, Any]:
        raise NotImplementedError

    def run(self, params: Dict[str, Any]) -> Optional[str]:
        """None on agreement; a failure description otherwise."""
        raise NotImplementedError

    def shrink(self, params: Dict[str, Any]
               ) -> Iterator[Dict[str, Any]]:
        """Candidate smaller parameter sets (may be empty)."""
        return iter(())


class CmsOracle(Oracle):
    """Translator-vs-interpreter architectural equivalence."""

    name = "cms"

    def draw(self, rng: random.Random, quick: bool) -> Dict[str, Any]:
        return {
            "seed": rng.randrange(1 << 24),
            "blocks": rng.randint(1, 3 if quick else 5),
            "block_len": rng.randint(2, 8 if quick else 14),
            "threshold": rng.choice((1, 2, 3, 7, 50)),
            "tcache_bytes": rng.choice((48, 1 << 10, 1 << 20)),
            "narrow": rng.random() < 0.3,
        }

    def run(self, params: Dict[str, Any]) -> Optional[str]:
        from repro.cms import CmsConfig, CodeMorphingSoftware
        from repro.isa.machine import run_program
        from repro.isa.randprog import random_program, random_state
        from repro.vliw.molecules import FULL_FORMAT, NARROW_FORMAT

        program = random_program(
            params["seed"], blocks=params["blocks"],
            block_len=params["block_len"],
        )
        golden, _ = run_program(
            program, random_state(params["seed"]), max_steps=10**6
        )
        cms = CodeMorphingSoftware(CmsConfig(
            hot_threshold=params["threshold"],
            tcache_bytes=params["tcache_bytes"],
            limits=NARROW_FORMAT if params["narrow"] else FULL_FORMAT,
        ))
        result = cms.run(
            program, random_state(params["seed"]), max_steps=10**6
        )
        mine = result.state.architectural_view()
        ref = golden.architectural_view()
        if mine != ref:
            diffs = [
                key for key in sorted(set(mine) | set(ref))
                if mine.get(key) != ref.get(key)
            ]
            return (
                f"CMS state diverges from golden interpreter on "
                f"{len(diffs)} location(s), first: {diffs[0]!r} "
                f"(cms={mine.get(diffs[0])!r}, "
                f"golden={ref.get(diffs[0])!r})"
            )
        return None

    def shrink(self, params: Dict[str, Any]
               ) -> Iterator[Dict[str, Any]]:
        if params["blocks"] > 1:
            yield {**params, "blocks": params["blocks"] - 1}
        if params["block_len"] > 2:
            yield {**params, "block_len": max(2, params["block_len"] // 2)}
        if params["narrow"]:
            yield {**params, "narrow": False}


class TraversalOracle(Oracle):
    """Batched vs naive treecode traversal bit-equivalence."""

    name = "traversal"

    def draw(self, rng: random.Random, quick: bool) -> Dict[str, Any]:
        return {
            "seed": rng.randrange(1 << 24),
            "n": rng.randint(96, 384 if quick else 1200),
            "theta": rng.choice((0.3, 0.5, 0.7, 0.9, 1.1)),
            "leaf_size": rng.choice((8, 16, 32)),
            "softening": rng.choice((0.0, 1e-2)),
            "use_karp": rng.random() < 0.5,
            "quadrupoles": rng.random() < 0.5,
            "ic": rng.choice(("collision", "plummer")),
        }

    def run(self, params: Dict[str, Any]) -> Optional[str]:
        import numpy as np

        from repro.nbody.ic import plummer_sphere, two_clusters
        from repro.nbody.traversal import tree_accelerations
        from repro.nbody.tree import HashedOctree

        make_ic = (
            two_clusters if params["ic"] == "collision"
            else plummer_sphere
        )
        pos, _, mass = make_ic(params["n"], seed=params["seed"])
        tree = HashedOctree(
            pos, mass, leaf_size=params["leaf_size"],
            quadrupoles=params["quadrupoles"],
        )
        kwargs = dict(
            theta=params["theta"], softening=params["softening"],
            use_karp=params["use_karp"],
            use_quadrupole=params["quadrupoles"],
        )
        acc_naive, st_naive = tree_accelerations(tree, naive=True, **kwargs)
        acc_batch, st_batch = tree_accelerations(tree, naive=False, **kwargs)
        if not np.array_equal(acc_naive, acc_batch):
            bad = np.argwhere(acc_naive != acc_batch)
            i, j = bad[0]
            return (
                f"accelerations differ at {len(bad)} element(s), first "
                f"[{i},{j}]: naive={acc_naive[i, j]!r} vs "
                f"batched={acc_batch[i, j]!r}"
            )
        for counter in ("particle_cell", "particle_particle",
                        "nodes_opened", "groups"):
            if getattr(st_naive, counter) != getattr(st_batch, counter):
                return (
                    f"work counter {counter} differs: naive="
                    f"{getattr(st_naive, counter)} vs batched="
                    f"{getattr(st_batch, counter)}"
                )
        if list(st_naive.group_work) != list(st_batch.group_work):
            return "per-group work vectors differ"
        return None

    def shrink(self, params: Dict[str, Any]
               ) -> Iterator[Dict[str, Any]]:
        if params["n"] > 48:
            yield {**params, "n": max(48, params["n"] // 2)}
        if params["quadrupoles"]:
            yield {**params, "quadrupoles": False}
        if params["use_karp"]:
            yield {**params, "use_karp": False}
        if params["softening"] == 0.0:
            yield {**params, "softening": 1e-2}


class SchedOracle(Oracle):
    """FCFS vs EASY-backfill schedule safety under the auditor set."""

    name = "sched"

    def draw(self, rng: random.Random, quick: bool) -> Dict[str, Any]:
        return {
            "seed": rng.randrange(1 << 24),
            "jobs": rng.randint(3, 6 if quick else 14),
            "interarrival": rng.choice((0.002, 0.004, 0.01)),
            "fail_inject": rng.random() < 0.4,
            "mtbf": rng.choice((0.05, 0.1)),
            "checkpoint": rng.choice((0, 1, 2)),
            "max_retries": 2,
        }

    def _outcome(self, params: Dict[str, Any], policy: str):
        from repro.check.replay import _build_sched

        build = {k: v for k, v in params.items() if k != "seed"}
        build["policy"] = policy
        sched = _build_sched(
            {**build, "seed": params["seed"]}, audit=True
        )
        return sched.run()

    def run(self, params: Dict[str, Any]) -> Optional[str]:
        from repro.check.auditors import InvariantViolation
        from repro.sched.job import JobState

        outcomes = {}
        for policy in ("fcfs", "backfill"):
            try:
                outcomes[policy] = self._outcome(params, policy)
            except InvariantViolation as violation:
                return f"[{policy}] invariant violated: {violation}"
        completed = {
            policy: {r.spec.job_id for r in outcome.completed}
            for policy, outcome in outcomes.items()
        }
        if not params["fail_inject"]:
            total = set(range(params["jobs"]))
            for policy, done in completed.items():
                if done != total:
                    missing = sorted(total - done)
                    return (
                        f"[{policy}] lost job(s) without any failure "
                        f"injected: {missing}"
                    )
        else:
            for policy, outcome in outcomes.items():
                for record in outcome.records:
                    if record.state not in (JobState.COMPLETED,
                                            JobState.ABANDONED):
                        return (
                            f"[{policy}] job {record.spec.job_id} ended "
                            f"non-terminal: {record.state.value}"
                        )
        return None

    def shrink(self, params: Dict[str, Any]
               ) -> Iterator[Dict[str, Any]]:
        if params["jobs"] > 1:
            yield {**params, "jobs": params["jobs"] - 1}
        if params["fail_inject"]:
            yield {**params, "fail_inject": False}
        if params["checkpoint"]:
            yield {**params, "checkpoint": 0}


ORACLES: Dict[str, Oracle] = {
    oracle.name: oracle
    for oracle in (CmsOracle(), TraversalOracle(), SchedOracle())
}

#: Case mix per 5 fuzz cases: the sched oracle is ~10x costlier than
#: the other two, so it gets one slot in five.
_MIX = ("cms", "traversal", "cms", "traversal", "sched")


@dataclass
class FuzzFailure:
    """One confirmed, shrunk differential failure."""

    oracle: str
    seed: int
    params: Dict[str, Any]
    message: str
    shrinks: int = 0
    manifest_path: Optional[Path] = None


@dataclass
class FuzzReport:
    """Outcome of one fuzz campaign."""

    cases: int
    by_oracle: Dict[str, int] = field(default_factory=dict)
    failures: List[FuzzFailure] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.failures

    def format(self) -> str:
        mix = ", ".join(
            f"{name}: {count}" for name, count in sorted(self.by_oracle.items())
        )
        lines = [f"fuzz: {self.cases} case(s) ({mix})"]
        if self.ok:
            lines.append("all oracles agree — zero differential failures")
        for failure in self.failures:
            lines.append(
                f"FAIL [{failure.oracle}] seed={failure.seed} after "
                f"{failure.shrinks} shrink(s): {failure.message}"
            )
            lines.append(f"  params: {failure.params}")
            if failure.manifest_path is not None:
                lines.append(
                    f"  replay: python -m repro.cli check --replay "
                    f"{failure.manifest_path}"
                )
        return "\n".join(lines)


def _shrink_failure(oracle: Oracle, params: Dict[str, Any],
                    message: str) -> tuple:
    """Greedy descent: keep the smallest params that still fail."""
    shrinks = 0
    current, current_message = params, message
    progress = True
    while progress and shrinks < _MAX_SHRINKS:
        progress = False
        for candidate in oracle.shrink(current):
            shrinks += 1
            failure = oracle.run(candidate)
            if failure is not None:
                current, current_message = candidate, failure
                progress = True
                break
            if shrinks >= _MAX_SHRINKS:
                break
    return current, current_message, shrinks


def run_fuzz_case(oracle_name: str,
                  params: Dict[str, Any]) -> Optional[str]:
    """Run one explicit case through one oracle (replay entry point)."""
    return ORACLES[oracle_name].run(params)


def run_fuzz(cases: int = 216, seed: int = 0, quick: bool = True,
             out_dir: Optional[Union[str, Path]] = None,
             oracles: Optional[List[str]] = None,
             max_failures: int = 5) -> FuzzReport:
    """Drive *cases* randomized cases across the oracle mix.

    Failures are shrunk and — when *out_dir* is given — written as
    replayable ``fuzz-failure`` manifests.  The campaign stops early
    after *max_failures* distinct failures.
    """
    chosen = list(oracles) if oracles else list(_MIX)
    unknown = set(chosen) - set(ORACLES)
    if unknown:
        raise ValueError(f"unknown oracle(s): {sorted(unknown)}")
    report = FuzzReport(cases=0)
    for index in range(cases):
        oracle = ORACLES[chosen[index % len(chosen)]]
        case_seed = (seed << 20) ^ index
        rng = random.Random(case_seed)
        params = oracle.draw(rng, quick)
        report.cases += 1
        report.by_oracle[oracle.name] = (
            report.by_oracle.get(oracle.name, 0) + 1
        )
        message = oracle.run(params)
        if message is None:
            continue
        shrunk, message, shrinks = _shrink_failure(oracle, params, message)
        failure = FuzzFailure(
            oracle=oracle.name, seed=case_seed, params=shrunk,
            message=message, shrinks=shrinks,
        )
        if out_dir is not None:
            manifest = RunManifest.make(
                "fuzz-failure", seed=case_seed,
                params={"oracle": oracle.name, "case": shrunk},
                payload={"message": message},
            )
            failure.manifest_path = manifest.save(
                Path(out_dir)
                / f"fuzz_{oracle.name}_{case_seed & 0xFFFFFF:06x}.json"
            )
        report.failures.append(failure)
        if len(report.failures) >= max_failures:
            break
    return report


def replay_failure_manifest(manifest: RunManifest):
    """Re-run a shrunk fuzz failure from its manifest."""
    from repro.check.replay import Divergence, ReplayReport
    from repro.core.events import TimelineEvent

    oracle_name = manifest.params["oracle"]
    params = manifest.params["case"]
    message = run_fuzz_case(oracle_name, params)
    divergence = None
    if message is not None:
        divergence = Divergence(
            index=0,
            expected=None,
            actual=TimelineEvent(0.0, "fuzz-failure",
                                 (("message", message),)),
            context={"oracle": oracle_name, "params": params},
        )
    return ReplayReport(
        kind="fuzz-failure",
        expected_events=0,
        replayed_events=0 if message is None else 1,
        divergence=divergence,
    )
