"""repro - a full-system reproduction of "Honey, I Shrunk the Beowulf!"
(W. Feng, M. Warren, E. Weigle - ICPP 2002).

The paper introduced the Bladed Beowulf (24 Transmeta TM5600 blades in
a 3U RLX System 324) and the ToPPeR metric (total price-performance
ratio).  Its system was hardware; this library rebuilds every layer as
a simulator faithful enough to regenerate the paper's evaluation:

- :mod:`repro.isa` / :mod:`repro.vliw` / :mod:`repro.cms` - the
  Transmeta Crusoe: guest ISA, VLIW engine, Code Morphing Software;
- :mod:`repro.cpus` - the comparison processors (Pentium III, Alpha
  EV56, Power3, Athlon MP, ...) as trace-driven port/ROB models;
- :mod:`repro.cluster` / :mod:`repro.network` / :mod:`repro.simmpi` -
  blades, chassis, racks, the Fast Ethernet star and a simulated MPI;
- :mod:`repro.nbody` - Karp's reciprocal square root and the hashed
  oct-tree treecode (serial and parallel);
- :mod:`repro.npb` - NAS-parallel-benchmark work-alikes;
- :mod:`repro.metrics` - TCO, ToPPeR, performance/space and
  performance/power;
- :mod:`repro.core` - the façade plus one regenerator per table/figure.

Quickstart::

    from repro.core import BladedBeowulf, experiment_table5
    print(BladedBeowulf.metablade().summary())
    print(experiment_table5().text)
"""

from repro.core import (
    BladedBeowulf,
    experiment_fig3,
    experiment_table1,
    experiment_table2,
    experiment_table3,
    experiment_table4,
    experiment_table5,
    experiment_table6,
    experiment_table7,
    experiment_topper,
)
from repro.cluster import GREEN_DESTINY, METABLADE, METABLADE2
from repro.metrics import CostParameters, ToPPeR, tco_for, topper

__version__ = "1.0.0"

__all__ = [
    "BladedBeowulf",
    "CostParameters",
    "GREEN_DESTINY",
    "METABLADE",
    "METABLADE2",
    "ToPPeR",
    "__version__",
    "experiment_fig3",
    "experiment_table1",
    "experiment_table2",
    "experiment_table3",
    "experiment_table4",
    "experiment_table5",
    "experiment_table6",
    "experiment_table7",
    "experiment_topper",
    "tco_for",
    "topper",
]
