"""The translation cache.

"Caching the translations in a translation cache allows CMS to re-use
translations ... the initial cost of the translation is amortized over
repeated executions" (paper Section 2.2).  Real CMS reserves a slice of
system DRAM for this; we model a byte-capacity cache with LRU
replacement, keyed by guest entry pc.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Optional

from repro.cms.translator import Translation


@dataclass
class CacheStats:
    hits: int = 0
    misses: int = 0
    insertions: int = 0
    evictions: int = 0

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


class TranslationCache:
    """LRU cache of :class:`Translation` objects with a byte budget."""

    def __init__(self, capacity_bytes: int = 1 << 20) -> None:
        if capacity_bytes < 1:
            raise ValueError("capacity must be positive")
        self.capacity_bytes = capacity_bytes
        self._entries: "OrderedDict[int, Translation]" = OrderedDict()
        self._used_bytes = 0
        self.stats = CacheStats()

    @property
    def used_bytes(self) -> int:
        return self._used_bytes

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, entry_pc: int) -> bool:
        return entry_pc in self._entries

    def lookup(self, entry_pc: int) -> Optional[Translation]:
        """Return the cached translation for *entry_pc*, if present."""
        translation = self._entries.get(entry_pc)
        if translation is None:
            self.stats.misses += 1
            return None
        self._entries.move_to_end(entry_pc)
        self.stats.hits += 1
        return translation

    def insert(self, translation: Translation) -> None:
        """Insert a translation, evicting LRU entries to fit."""
        size = translation.block.code_bytes
        if size > self.capacity_bytes:
            # A single oversized translation cannot be cached; it will be
            # retranslated on every visit (pathological but well-defined).
            return
        if translation.block.entry_pc in self._entries:
            old = self._entries.pop(translation.block.entry_pc)
            self._used_bytes -= old.block.code_bytes
        while self._used_bytes + size > self.capacity_bytes:
            _, evicted = self._entries.popitem(last=False)
            self._used_bytes -= evicted.block.code_bytes
            self.stats.evictions += 1
        self._entries[translation.block.entry_pc] = translation
        self._used_bytes += size
        self.stats.insertions += 1

    def flush(self) -> None:
        """Drop everything (models a CMS upgrade or chain invalidation)."""
        self._entries.clear()
        self._used_bytes = 0
