"""Run-time profiling of the guest instruction stream.

The CMS interpreter "collects run-time statistical information about the
x86 instruction stream to decide if optimizations are necessary" (paper
Section 2.2).  This module is that statistics collector: per-block entry
counts plus a derived hot-spot view.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple


@dataclass
class BlockProfile:
    """Execution profile of one guest basic block (keyed by entry pc)."""

    entry_pc: int
    executions: int = 0
    guest_instructions: int = 0

    def record(self, instr_count: int) -> None:
        self.executions += 1
        self.guest_instructions += instr_count


@dataclass
class HotSpotProfile:
    """All block profiles of a run, with hotness queries."""

    blocks: Dict[int, BlockProfile] = field(default_factory=dict)

    def record(self, entry_pc: int, instr_count: int) -> BlockProfile:
        profile = self.blocks.get(entry_pc)
        if profile is None:
            profile = BlockProfile(entry_pc=entry_pc)
            self.blocks[entry_pc] = profile
        profile.record(instr_count)
        return profile

    def executions(self, entry_pc: int) -> int:
        profile = self.blocks.get(entry_pc)
        return profile.executions if profile else 0

    def hottest(self, top: int = 10) -> List[BlockProfile]:
        """Blocks ordered by dynamic guest-instruction count."""
        ranked = sorted(
            self.blocks.values(),
            key=lambda b: b.guest_instructions,
            reverse=True,
        )
        return ranked[:top]

    def coverage(self, entry_pcs: Tuple[int, ...]) -> float:
        """Fraction of dynamic guest instructions inside *entry_pcs*.

        Used to verify the paper's locality premise: a small set of hot
        translations covers nearly all dynamic execution.
        """
        total = sum(b.guest_instructions for b in self.blocks.values())
        if total == 0:
            return 0.0
        inside = sum(
            self.blocks[pc].guest_instructions
            for pc in entry_pcs
            if pc in self.blocks
        )
        return inside / total
