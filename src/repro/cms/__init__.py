"""Code Morphing Software (CMS).

Paper Section 2.2: CMS is the software half of the Crusoe - it gives
x86 programs the illusion of running on x86 hardware by combining

- an **interpreter** that executes guest instructions one at a time,
  filters infrequently executed code from being needlessly optimised,
  and collects run-time statistics about the instruction stream; and
- a **translator** that recompiles critical, frequently-executed guest
  regions into optimised VLIW *translations*, cached in a
  **translation cache** so the initial cost of translating is amortised
  over repeated executions.

:class:`~repro.cms.cms.CodeMorphingSoftware` orchestrates the loop;
:class:`~repro.cms.cms.CmsConfig` exposes the knobs the ablation benches
sweep (hot threshold, cache capacity, molecule width, interpret and
translate costs).
"""

from repro.cms.cms import CmsConfig, CmsResult, CodeMorphingSoftware
from repro.cms.interpreter import GuestInterpreter, InterpreterStats
from repro.cms.profilecollect import BlockProfile, HotSpotProfile
from repro.cms.tcache import CacheStats, TranslationCache
from repro.cms.translator import Translation, Translator, TranslatorStats

__all__ = [
    "BlockProfile",
    "CacheStats",
    "CmsConfig",
    "CmsResult",
    "CodeMorphingSoftware",
    "GuestInterpreter",
    "HotSpotProfile",
    "InterpreterStats",
    "Translation",
    "TranslationCache",
    "Translator",
    "TranslatorStats",
]
