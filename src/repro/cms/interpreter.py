"""The CMS interpreter module.

Executes guest instructions one at a time on the golden machine while
charging an interpretation overhead per instruction to the VLIW clock.
Interpretation is how cold code runs; it filters infrequently executed
code from being needlessly optimised while feeding the profiler.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.isa.instructions import Program
from repro.isa.machine import Machine
from repro.vliw.engine import VliwEngine


@dataclass
class InterpreterStats:
    """Cumulative interpretation statistics."""

    guest_instructions: int = 0
    blocks: int = 0
    cycles: int = 0


class GuestInterpreter:
    """Interprets one guest basic block at a time.

    ``cycles_per_instr`` models the dispatch/decode/execute loop of a
    software interpreter running on the VLIW core; tens of native cycles
    per guest instruction is representative and is the quantity the
    translation threshold trades off against.
    """

    def __init__(self, engine: VliwEngine, cycles_per_instr: int = 20) -> None:
        if cycles_per_instr < 1:
            raise ValueError("cycles_per_instr must be >= 1")
        self.engine = engine
        self.cycles_per_instr = cycles_per_instr
        self.stats = InterpreterStats()

    def interpret_block(self, program: Program, machine: Machine) -> int:
        """Interpret the basic block at the machine's pc.

        Returns the number of guest instructions executed.  The guest
        state advances exactly as the golden machine dictates; the VLIW
        clock is charged the interpretation cost.
        """
        block = program.basic_block_at(machine.state.pc)
        executed = 0
        for _ in block:
            if not machine.step(program):
                executed += 1
                break
            executed += 1
        cycles = executed * self.cycles_per_instr
        self.engine.charge(cycles)
        self.stats.guest_instructions += executed
        self.stats.blocks += 1
        self.stats.cycles += cycles
        return executed
