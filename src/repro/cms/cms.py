"""The CMS orchestrator: interpret, profile, translate, re-use.

The top of the Crusoe software stack.  For each guest basic block the
run loop consults the translation cache; on a hit it executes natively
on the VLIW engine, otherwise it interprets the block, bumps its profile
counter, and - once the block crosses the hot threshold - invokes the
translator and caches the result.

Architectural transparency is the non-negotiable invariant (tested with
property-based random programs): final guest state is bit-identical to
the golden interpreter for every configuration.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.isa.instructions import Program
from repro.isa.machine import ExecStats, Machine, MachineState
from repro.cms.interpreter import GuestInterpreter
from repro.cms.profilecollect import HotSpotProfile
from repro.cms.tcache import TranslationCache
from repro.cms.translator import Translator
from repro.vliw.engine import VliwEngine
from repro.vliw.molecules import FULL_FORMAT, SlotLimits
from repro.vliw.units import TM5600_LATENCIES, LatencyTable


@dataclass(frozen=True)
class CmsConfig:
    """Tunable parameters of the morphing pipeline.

    ``hot_threshold`` is the number of interpreted executions after
    which a block is deemed critical and translated; 1 means translate
    eagerly on first touch, large values approach a pure interpreter.
    """

    hot_threshold: int = 8
    tcache_bytes: int = 1 << 20
    interpret_cycles_per_instr: int = 20
    translate_cycles_per_instr: int = 1_000
    #: Cost of entering a cached translation through the CMS dispatch
    #: loop (hash lookup + indirect jump).
    dispatch_cycles: int = 12
    #: Translation chaining: once a translation's taken successor is
    #: also cached, CMS patches a direct jump between them and the
    #: dispatch cost disappears on that edge - the optimisation that
    #: makes hot loops run at full native speed.
    enable_chaining: bool = True
    latencies: LatencyTable = TM5600_LATENCIES
    limits: SlotLimits = FULL_FORMAT

    def __post_init__(self) -> None:
        if self.hot_threshold < 1:
            raise ValueError("hot_threshold must be >= 1")
        if self.dispatch_cycles < 0:
            raise ValueError("dispatch_cycles cannot be negative")


@dataclass
class CmsResult:
    """Outcome of running one guest program under CMS."""

    state: MachineState
    guest_stats: ExecStats
    cycles: int
    interpreted_instructions: int
    translated_blocks: int
    native_blocks: int
    tcache_hit_rate: float
    profile: HotSpotProfile
    dispatches: int = 0
    chained_jumps: int = 0

    @property
    def native_fraction(self) -> float:
        """Fraction of dynamic guest instructions executed natively."""
        total = self.guest_stats.instructions
        if total == 0:
            return 0.0
        return 1.0 - self.interpreted_instructions / total


class CodeMorphingSoftware:
    """Runs guest programs on the modelled Crusoe."""

    def __init__(self, config: Optional[CmsConfig] = None) -> None:
        self.config = config or CmsConfig()
        self.engine = VliwEngine(
            latencies=self.config.latencies, limits=self.config.limits
        )
        self.interpreter = GuestInterpreter(
            self.engine,
            cycles_per_instr=self.config.interpret_cycles_per_instr,
        )
        self.translator = Translator(
            self.engine,
            latencies=self.config.latencies,
            limits=self.config.limits,
            cycles_per_instr=self.config.translate_cycles_per_instr,
        )
        self.tcache = TranslationCache(self.config.tcache_bytes)
        self.profile = HotSpotProfile()
        #: Patched translation-to-translation edges (survives runs, like
        #: the cache itself).
        self._chains = set()

    def run(self, program: Program, state: Optional[MachineState] = None,
            max_steps: int = 10_000_000) -> CmsResult:
        """Execute *program* to completion under code morphing."""
        machine = Machine(state=state, max_steps=max_steps)
        self.engine.reset()
        native_blocks = 0
        dispatches = 0
        chained_jumps = 0
        threshold = self.config.hot_threshold
        prev_native_pc = None
        chains = self._chains

        while not machine.state.halted:
            if machine.stats.instructions > max_steps:
                raise RuntimeError(
                    f"exceeded max_steps={max_steps} in {program.name}"
                )
            pc = machine.state.pc
            translation = self.tcache.lookup(pc)
            if translation is not None:
                edge = (prev_native_pc, pc)
                if (
                    self.config.enable_chaining
                    and prev_native_pc is not None
                    and edge in chains
                ):
                    chained_jumps += 1        # patched direct jump: free
                else:
                    self.engine.charge(self.config.dispatch_cycles)
                    dispatches += 1
                    if (self.config.enable_chaining
                            and prev_native_pc is not None):
                        chains.add(edge)      # CMS patches the edge
                self.engine.execute_block(translation.block, program, machine)
                native_blocks += 1
                prev_native_pc = pc
                continue
            prev_native_pc = None
            executed = self.interpreter.interpret_block(program, machine)
            profile = self.profile.record(pc, executed)
            if profile.executions >= threshold:
                self.tcache.insert(self.translator.translate(program, pc))

        return CmsResult(
            state=machine.state,
            guest_stats=machine.stats,
            cycles=self.engine.clock,
            interpreted_instructions=self.interpreter.stats.guest_instructions,
            translated_blocks=self.translator.stats.translations,
            native_blocks=native_blocks,
            tcache_hit_rate=self.tcache.stats.hit_rate,
            profile=self.profile,
            dispatches=dispatches,
            chained_jumps=chained_jumps,
        )
