"""The CMS translator module.

"When CMS detects critical and frequently used x86 instruction
sequences, CMS invokes the translator module to re-compile the x86
instructions into optimized VLIW instructions called translations"
(paper Section 2.2).  Translation itself runs on the VLIW core, so its
cost is charged to the engine clock and must be amortised by re-use.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.isa.instructions import Program
from repro.vliw.engine import TranslatedBlock, VliwEngine, translate_block
from repro.vliw.molecules import FULL_FORMAT, SlotLimits
from repro.vliw.units import TM5600_LATENCIES, LatencyTable


@dataclass(frozen=True)
class Translation:
    """A cached native translation plus bookkeeping."""

    block: TranslatedBlock
    translation_cycles: int

    @property
    def entry_pc(self) -> int:
        return self.block.entry_pc


@dataclass
class TranslatorStats:
    translations: int = 0
    guest_instructions_translated: int = 0
    cycles: int = 0


class Translator:
    """Recompiles hot guest blocks into scheduled molecule sequences."""

    def __init__(self, engine: VliwEngine,
                 latencies: LatencyTable = TM5600_LATENCIES,
                 limits: SlotLimits = FULL_FORMAT,
                 cycles_per_instr: int = 1_000) -> None:
        if cycles_per_instr < 0:
            raise ValueError("cycles_per_instr must be >= 0")
        self.engine = engine
        self.latencies = latencies
        self.limits = limits
        #: Translation effort: native cycles spent per guest instruction
        #: translated.  Real CMS spends on the order of thousands of
        #: cycles per translated instruction on analysis and scheduling.
        self.cycles_per_instr = cycles_per_instr
        self.stats = TranslatorStats()

    def translate(self, program: Program, entry_pc: int) -> Translation:
        """Translate the block at *entry_pc*, charging translation time."""
        block = translate_block(
            program, entry_pc, latencies=self.latencies, limits=self.limits
        )
        cost = block.guest_count * self.cycles_per_instr
        self.engine.charge(cost)
        self.stats.translations += 1
        self.stats.guest_instructions_translated += block.guest_count
        self.stats.cycles += cost
        return Translation(block=block, translation_cycles=cost)
