"""Per-rank statistics and the structured virtual-time event timeline.

A SimMPI run on a tracing :class:`~repro.core.events.EventKernel`
leaves behind one time-coherent list of
:class:`~repro.core.events.TimelineEvent` records — rank starts, sends
with their fabric-resolved arrival times, wakes, blocks, node failures,
DVFS transitions and link/switch occupancy all on the same clock.
:func:`render_timeline` turns that into the text view ``repro.cli
timeline`` prints.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence

from repro.core.events import TimelineEvent


@dataclass
class CommStats:
    """Counters for one rank."""

    rank: int
    sends: int = 0
    recvs: int = 0
    bytes_sent: int = 0
    bytes_received: int = 0
    compute_s: float = 0.0
    io_s: float = 0.0         # non-compute stalls (checkpoint writes)
    energy_j: float = 0.0     # filled when a LongRun governor is attached
    flops: float = 0.0        # work billed through compute_flops — the
                              # other side of the compute_s ledger that
                              # repro.check audits against the flop rate
    retransmits: int = 0      # frames lost to link faults (each one was
                              # retried or abandoned by the delivery layer)
    drops: int = 0            # posts discarded at an already-dead dst

    @property
    def messages(self) -> int:
        return self.sends + self.recvs

    def merge(self, other: "CommStats") -> "CommStats":
        """Aggregate counters (rank field keeps self's)."""
        return CommStats(
            rank=self.rank,
            sends=self.sends + other.sends,
            recvs=self.recvs + other.recvs,
            bytes_sent=self.bytes_sent + other.bytes_sent,
            bytes_received=self.bytes_received + other.bytes_received,
            compute_s=self.compute_s + other.compute_s,
            io_s=self.io_s + other.io_s,
            energy_j=self.energy_j + other.energy_j,
            flops=self.flops + other.flops,
            retransmits=self.retransmits + other.retransmits,
            drops=self.drops + other.drops,
        )

    def publish_metrics(self, registry) -> None:
        """Fold this rank's ledger into a telemetry Registry.

        Counters are unlabeled totals (they aggregate across ranks and
        worlds); the per-rank shape lands in histograms so imbalance
        stays visible after aggregation.
        """
        registry.counter("comm.sends").inc(self.sends)
        registry.counter("comm.recvs").inc(self.recvs)
        registry.counter("comm.bytes_sent").inc(self.bytes_sent)
        registry.counter("comm.bytes_received").inc(self.bytes_received)
        registry.counter("comm.compute_s").inc(self.compute_s)
        registry.counter("comm.io_s").inc(self.io_s)
        registry.counter("comm.energy_j").inc(self.energy_j)
        registry.counter("comm.flops").inc(self.flops)
        # The net.* family exists only when the fault layer fired, so
        # fault-free telemetry exports stay byte-identical.
        if self.retransmits:
            registry.counter("net.retransmits").inc(self.retransmits)
        if self.drops:
            registry.counter("net.drops").inc(self.drops)
        registry.histogram("comm.rank_compute_s").observe(self.compute_s)
        registry.histogram("comm.rank_messages").observe(self.messages)


def filter_timeline(events: Iterable[TimelineEvent],
                    kinds: Optional[Sequence[str]] = None,
                    rank: Optional[int] = None) -> List[TimelineEvent]:
    """Time-ordered view of *events*, optionally by kind and/or rank."""
    picked = [
        e for e in events
        if (kinds is None or e.kind in kinds)
        and (rank is None or e.get("rank") == rank or e.get("src") == rank
             or e.get("dst") == rank)
    ]
    picked.sort(key=lambda e: e.time)
    return picked


def _describe(event: TimelineEvent) -> str:
    fields = event.as_dict()
    parts = []
    for key in ("rank", "src", "dst", "tag", "nbytes", "arrive", "mhz",
                "volts", "detail", "resource"):
        if key in fields:
            value = fields[key]
            if isinstance(value, float):
                value = f"{value:.6g}"
            parts.append(f"{key}={value}")
    for key, value in fields.items():
        if key not in ("rank", "src", "dst", "tag", "nbytes", "arrive",
                       "mhz", "volts", "detail", "resource"):
            parts.append(f"{key}={value}")
    return " ".join(parts)


def render_timeline(events: Iterable[TimelineEvent],
                    limit: Optional[int] = None,
                    title: str = "Event timeline") -> str:
    """Render events as a fixed-width virtual-time log."""
    ordered = sorted(events, key=lambda e: e.time)
    total = len(ordered)
    if limit is not None:
        ordered = ordered[:limit]
    lines = [title, "=" * len(title)]
    for event in ordered:
        lines.append(
            f"{event.time:>12.6f}s  {event.kind:<14} {_describe(event)}"
        )
    if limit is not None and total > limit:
        lines.append(f"... ({total - limit} more events)")
    return "\n".join(lines)
