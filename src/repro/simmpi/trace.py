"""Communication statistics collected per rank during a SimMPI run."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class CommStats:
    """Counters for one rank."""

    rank: int
    sends: int = 0
    recvs: int = 0
    bytes_sent: int = 0
    bytes_received: int = 0
    compute_s: float = 0.0

    @property
    def messages(self) -> int:
        return self.sends + self.recvs

    def merge(self, other: "CommStats") -> "CommStats":
        """Aggregate counters (rank field keeps self's)."""
        return CommStats(
            rank=self.rank,
            sends=self.sends + other.sends,
            recvs=self.recvs + other.recvs,
            bytes_sent=self.bytes_sent + other.bytes_sent,
            bytes_received=self.bytes_received + other.bytes_received,
            compute_s=self.compute_s + other.compute_s,
        )
