"""Rank-side communicator: point-to-point primitives and clocks."""

from __future__ import annotations

import pickle
from dataclasses import dataclass, field
from typing import Any, Iterator, Optional

import numpy as np

from repro.simmpi.trace import CommStats

#: Wildcard source for :meth:`RankComm.recv`.
ANY_SOURCE: Optional[int] = None

#: Sentinel yielded by blocked receives (internal protocol).
_BLOCKED = object()


class DeadlockError(RuntimeError):
    """All ranks are blocked on receives that can never match."""


def payload_nbytes(obj: Any) -> int:
    """Wire size of a message payload.

    NumPy arrays go as raw buffers; everything else is costed at its
    pickle size plus a small header, mirroring mpi4py's two paths.
    """
    if isinstance(obj, np.ndarray):
        return int(obj.nbytes) + 16
    if isinstance(obj, (bytes, bytearray)):
        return len(obj) + 16
    if isinstance(obj, (int, float, np.integer, np.floating)):
        return 24
    if obj is None:
        return 8
    return len(pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)) + 16


@dataclass
class Message:
    """An in-flight or delivered message."""

    src: int
    dst: int
    tag: int
    payload: Any
    nbytes: int
    post_time: float
    arrive_time: float


class RankComm:
    """Per-rank communicator handle (the ``comm`` argument of programs)."""

    def __init__(self, rank: int, size: int, runtime: "SimMpiRuntime") -> None:
        self.rank = rank
        self.size = size
        self._runtime = runtime
        self.clock = 0.0
        self.stats = CommStats(rank=rank)
        self._coll_seq = 0

    # -- local compute ----------------------------------------------------

    def compute(self, seconds: float) -> None:
        """Advance this rank's clock by *seconds* of local work."""
        if seconds < 0:
            raise ValueError("compute time cannot be negative")
        self.clock += seconds
        self.stats.compute_s += seconds

    def compute_flops(self, flops: float,
                      flop_rate: Optional[float] = None) -> None:
        """Charge *flops* of work at the node's sustained flop rate."""
        rate = flop_rate if flop_rate is not None else self._runtime.flop_rate
        if rate is None or rate <= 0:
            raise ValueError(
                "no flop_rate given and the runtime has no node rate"
            )
        self.compute(flops / rate)

    # -- point to point ---------------------------------------------------

    def send(self, dst: int, obj: Any, tag: int = 0) -> None:
        """Eagerly post a message (buffered send; never blocks)."""
        self._runtime.post(self, dst, obj, tag)

    def recv(self, src: Optional[int] = ANY_SOURCE,
             tag: Optional[int] = None) -> Iterator:
        """Blocking receive; use as ``obj = yield from comm.recv(src)``."""
        while True:
            msg = self._runtime.match(self.rank, src, tag)
            if msg is not None:
                self.clock = max(self.clock, msg.arrive_time)
                self.stats.recvs += 1
                self.stats.bytes_received += msg.nbytes
                return msg.payload
            yield _BLOCKED

    def sendrecv(self, dst: int, obj: Any, src: Optional[int] = ANY_SOURCE,
                 tag: int = 0) -> Iterator:
        """Send then receive (the classic shift pattern)."""
        self.send(dst, obj, tag)
        result = yield from self.recv(src, tag)
        return result

    # -- collectives (implemented in collectives.py) ----------------------

    def _next_coll_tag(self, kind: int) -> int:
        """Unique tag space per collective call site.

        All ranks must invoke collectives in the same order (an MPI
        requirement), so an identical per-rank counter keeps calls from
        cross-matching.
        """
        self._coll_seq += 1
        return -(self._coll_seq * 16 + kind)

    def barrier(self) -> Iterator:
        from repro.simmpi import collectives
        result = yield from collectives.barrier(self)
        return result

    def bcast(self, obj: Any, root: int = 0) -> Iterator:
        from repro.simmpi import collectives
        result = yield from collectives.bcast(self, obj, root)
        return result

    def reduce(self, obj: Any, op=None, root: int = 0) -> Iterator:
        from repro.simmpi import collectives
        result = yield from collectives.reduce(self, obj, op, root)
        return result

    def allreduce(self, obj: Any, op=None) -> Iterator:
        from repro.simmpi import collectives
        result = yield from collectives.allreduce(self, obj, op)
        return result

    def gather(self, obj: Any, root: int = 0) -> Iterator:
        from repro.simmpi import collectives
        result = yield from collectives.gather(self, obj, root)
        return result

    def allgather(self, obj: Any) -> Iterator:
        from repro.simmpi import collectives
        result = yield from collectives.allgather(self, obj)
        return result

    def scatter(self, objs, root: int = 0) -> Iterator:
        from repro.simmpi import collectives
        result = yield from collectives.scatter(self, objs, root)
        return result

    def alltoall(self, objs) -> Iterator:
        from repro.simmpi import collectives
        result = yield from collectives.alltoall(self, objs)
        return result

