"""Rank-side communicator: point-to-point primitives and clocks."""

from __future__ import annotations

import pickle
from dataclasses import dataclass
from typing import Any, Dict, Iterator, List, Optional, Tuple

import numpy as np

from repro.simmpi.trace import CommStats

#: Wildcard source for :meth:`RankComm.recv`.
ANY_SOURCE: Optional[int] = None


@dataclass(frozen=True)
class RecvBlock:
    """Yielded by a blocked receive: the pattern the rank is waiting on.

    The event-driven scheduler registers this as a waiter and resumes
    the rank only when a matching message is posted (or the awaited
    source fails) — the internal protocol between :meth:`RankComm.recv`
    and :class:`~repro.simmpi.runtime.SimMpiRuntime`.
    """

    rank: int
    src: Optional[int]
    tag: Optional[int]

    def matches(self, msg: "Message") -> bool:
        if self.src is not ANY_SOURCE and msg.src != self.src:
            return False
        if self.tag is not None and msg.tag != self.tag:
            return False
        return True


class DeadlockError(RuntimeError):
    """All surviving ranks are blocked on receives that can never match.

    ``blocked`` maps each blocked rank to its pending ``(src, tag)``
    pattern; ``mailboxes`` maps it to the ``(src, tag, nbytes)`` of
    every message sitting undelivered in its mailbox — together they
    show *why* nothing matches.
    """

    def __init__(self, message: str,
                 blocked: Optional[Dict[int, Tuple[Optional[int],
                                                   Optional[int]]]] = None,
                 mailboxes: Optional[Dict[int, List[Tuple[int, int,
                                                          int]]]] = None,
                 ) -> None:
        super().__init__(message)
        self.blocked = blocked or {}
        self.mailboxes = mailboxes or {}


class NodeFailureError(RuntimeError):
    """A modelled node failed mid-run.

    Raised *inside* rank programs: into the failing rank itself at its
    next suspension point, and into any rank blocked on a receive from
    the failed rank once its mailbox holds no matching message.  Catch
    it to degrade gracefully; uncaught, it marks the rank failed
    without aborting the rest of the run.
    """

    def __init__(self, rank: int, time_s: float, detail: str = "") -> None:
        text = f"node of rank {rank} failed at t={time_s:.6f}s"
        if detail:
            text += f" ({detail})"
        super().__init__(text)
        self.rank = rank
        self.time_s = time_s
        self.detail = detail


class LinkDownError(NodeFailureError):
    """The reliable-delivery layer exhausted its retry budget.

    Raised into the *sender* after ``max_retries`` retransmissions all
    crossed a faulted link: from the sender's point of view the
    destination is unreachable — a network partition, not a node death,
    but handled by the same machinery (catch to degrade; uncaught, the
    sending rank is marked failed and its waiters are released).
    """

    def __init__(self, src: int, dst: int, time_s: float,
                 attempts: int, detail: str = "") -> None:
        text = (
            f"rank {src} -> {dst}: link down after {attempts} "
            f"attempts at t={time_s:.6f}s"
        )
        if detail:
            text += f" ({detail})"
        super().__init__(src, time_s, detail=detail)
        # NodeFailureError.__init__ wrote its own message; ours is
        # more specific.
        self.args = (text,)
        self.src = src
        self.dst = dst
        self.attempts = attempts


#: Memoized pickle sizes for repeated small non-array payload shapes
#: (collective headers, coordination tuples).  Keys embed the *exact*
#: class of every element — ``(0, 1)`` and ``(0.0, 1.0)`` compare equal
#: as dict keys but pickle to different byte counts, and byte counts
#: feed fabric timing, so the key must separate them.
_NBYTES_CACHE: Dict[Any, int] = {}
_NBYTES_CACHE_MAX = 4096
_EXACT_SCALARS = (bool, int, float, str, bytes, type(None))


def _nbytes_cache_key(obj: Any, depth: int = 0) -> Any:
    """A hashable exact-type content key, or ``None`` when unsafe."""
    cls = obj.__class__
    if cls in _EXACT_SCALARS:
        return (cls, obj)
    if cls is tuple and depth < 2 and len(obj) <= 8:
        parts = []
        for item in obj:
            part = _nbytes_cache_key(item, depth + 1)
            if part is None:
                return None
            parts.append(part)
        return (tuple, tuple(parts))
    return None


def payload_nbytes(obj: Any) -> int:
    """Wire size of a message payload.

    NumPy arrays go as raw buffers; everything else is costed at its
    pickle size plus a small header, mirroring mpi4py's two paths.
    Small scalar/tuple payloads memoize their pickle size (hot
    collectives repost identical headers thousands of times).
    """
    if isinstance(obj, np.ndarray):
        return int(obj.nbytes) + 16
    if isinstance(obj, (bytes, bytearray)):
        return len(obj) + 16
    if isinstance(obj, (int, float, np.integer, np.floating)):
        return 24
    if obj is None:
        return 8
    key = _nbytes_cache_key(obj)
    if key is None:
        return len(pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)) + 16
    nbytes = _NBYTES_CACHE.get(key)
    if nbytes is None:
        nbytes = len(pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)) + 16
        if len(_NBYTES_CACHE) >= _NBYTES_CACHE_MAX:
            _NBYTES_CACHE.clear()
        _NBYTES_CACHE[key] = nbytes
    return nbytes


@dataclass
class Message:
    """An in-flight or delivered message.

    ``consumed`` is the lazy-deletion flag of the indexed mailbox: one
    message sits in several match-pattern deques, and marking it here
    lets the other deques skip it when it reaches their front.
    """

    src: int
    dst: int
    tag: int
    payload: Any
    nbytes: int
    post_time: float
    arrive_time: float
    consumed: bool = False


class RankComm:
    """Per-rank communicator handle (the ``comm`` argument of programs)."""

    def __init__(self, rank: int, size: int, runtime: "SimMpiRuntime",
                 clock: float = 0.0) -> None:
        self.rank = rank
        self.size = size
        self._runtime = runtime
        self.clock = clock         # != 0 for worlds launched mid-stream
        self.stats = CommStats(rank=rank)
        self._coll_seq = 0

    # -- local compute ----------------------------------------------------

    def compute(self, seconds: float) -> None:
        """Advance this rank's clock by *seconds* of local work."""
        if seconds < 0:
            raise ValueError("compute time cannot be negative")
        self.clock += seconds
        self.stats.compute_s += seconds

    def stall(self, seconds: float) -> None:
        """Advance the clock by *seconds* of non-compute I/O (checkpoint
        writes, staging); billed separately from flops so throughput
        accounting can tell useful work from overhead."""
        if seconds < 0:
            raise ValueError("stall time cannot be negative")
        self.clock += seconds
        self.stats.io_s += seconds

    def compute_flops(self, flops: float,
                      flop_rate: Optional[float] = None) -> None:
        """Charge *flops* of work at the node's sustained flop rate.

        When the runtime carries a LongRun governor, the rate scales
        with the DVFS step active at each instant of the work, so a
        transition mid-computation splits the charge across steps (and
        the energy ledger integrates power over the same segments).
        """
        rate = flop_rate if flop_rate is not None else self._runtime.flop_rate
        if rate is None or rate <= 0:
            raise ValueError(
                "no flop_rate given and the runtime has no node rate"
            )
        self.stats.flops += flops
        governor = getattr(self._runtime, "governor", None)
        if governor is None:
            self.compute(flops / rate)
            return
        elapsed, energy_j = governor.advance(self.clock, flops, rate)
        self.compute(elapsed)
        self.stats.energy_j += energy_j

    # -- point to point ---------------------------------------------------

    def send(self, dst: int, obj: Any, tag: int = 0) -> None:
        """Eagerly post a message (buffered send; never blocks)."""
        self._runtime.post(self, dst, obj, tag)

    def recv(self, src: Optional[int] = ANY_SOURCE,
             tag: Optional[int] = None) -> Iterator:
        """Blocking receive; use as ``obj = yield from comm.recv(src)``."""
        while True:
            msg = self._runtime.match(self.rank, src, tag)
            if msg is not None:
                self.clock = max(self.clock, msg.arrive_time)
                self.stats.recvs += 1
                self.stats.bytes_received += msg.nbytes
                self._runtime.kernel.trace(
                    "recv", time=self.clock, rank=self.rank, src=msg.src,
                    tag=msg.tag, nbytes=msg.nbytes,
                )
                return msg.payload
            if src is not ANY_SOURCE and self._runtime.rank_failed(src):
                raise NodeFailureError(
                    src, self._runtime.failure_time(src),
                    detail=f"rank {self.rank} awaited tag {tag}",
                )
            if src is ANY_SOURCE and self.size > 1:
                # Wildcard receive: once every peer that could still
                # send has failed (and the mailbox held no match —
                # checked above), nothing can ever arrive.  Raise like
                # a named-source receive would instead of hanging
                # until the deadlock detector fires.
                peers = [r for r in range(self.size) if r != self.rank]
                if all(self._runtime.rank_failed(r) for r in peers):
                    last = max(peers, key=self._runtime.failure_time)
                    raise NodeFailureError(
                        last, self._runtime.failure_time(last),
                        detail=(
                            f"rank {self.rank} awaited ANY_SOURCE "
                            f"tag {tag}; all peers failed"
                        ),
                    )
            yield RecvBlock(self.rank, src, tag)

    def sendrecv(self, dst: int, obj: Any, src: Optional[int] = ANY_SOURCE,
                 tag: int = 0) -> Iterator:
        """Send then receive (the classic shift pattern)."""
        self.send(dst, obj, tag)
        result = yield from self.recv(src, tag)
        return result

    # -- collectives (implemented in collectives.py) ----------------------

    def _next_coll_tag(self, kind: int) -> int:
        """Unique tag space per collective call site.

        All ranks must invoke collectives in the same order (an MPI
        requirement), so an identical per-rank counter keeps calls from
        cross-matching.
        """
        self._coll_seq += 1
        return -(self._coll_seq * 16 + kind)

    def barrier(self) -> Iterator:
        from repro.simmpi import collectives
        result = yield from collectives.barrier(self)
        return result

    def bcast(self, obj: Any, root: int = 0) -> Iterator:
        from repro.simmpi import collectives
        result = yield from collectives.bcast(self, obj, root)
        return result

    def reduce(self, obj: Any, op=None, root: int = 0) -> Iterator:
        from repro.simmpi import collectives
        result = yield from collectives.reduce(self, obj, op, root)
        return result

    def allreduce(self, obj: Any, op=None) -> Iterator:
        from repro.simmpi import collectives
        result = yield from collectives.allreduce(self, obj, op)
        return result

    def gather(self, obj: Any, root: int = 0) -> Iterator:
        from repro.simmpi import collectives
        result = yield from collectives.gather(self, obj, root)
        return result

    def allgather(self, obj: Any) -> Iterator:
        from repro.simmpi import collectives
        result = yield from collectives.allgather(self, obj)
        return result

    def scatter(self, objs, root: int = 0) -> Iterator:
        from repro.simmpi import collectives
        result = yield from collectives.scatter(self, objs, root)
        return result

    def alltoall(self, objs) -> Iterator:
        from repro.simmpi import collectives
        result = yield from collectives.alltoall(self, objs)
        return result
