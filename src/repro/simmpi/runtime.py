"""The SimMPI scheduler: event-driven rank tasks over a fabric model.

Ranks run as :class:`~repro.core.events.Process` handles on a shared
:class:`~repro.core.events.EventKernel`.  A rank that blocks on a
receive suspends and is woken only when a matching message is posted
(at the message's fabric-resolved arrival time) or when the awaited
node fails — no busy-polling.  The seed's scheduler resumed every
alive rank once per sweep, O(alive ranks) generator resumptions even
when nothing could progress; here resumptions track deliveries, which
is what makes a 24-rank treecode step measurably cheaper to schedule
(see ``tests/test_events.py``'s microbenchmark).

The kernel is also where node failures and DVFS transitions live, so
:meth:`SimMpiRuntime.fail_at` can kill a rank mid-run (the program sees
:class:`~repro.simmpi.comm.NodeFailureError`) and a
:class:`~repro.cpus.longrun.LongRunGovernor` can change flop rates
while ranks compute — all on one virtual clock, all visible on the
kernel's timeline when it records one.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Any, Callable, Deque, Dict, List, Optional, Tuple

from repro.core.events import EventKernel, Process
from repro.network.faults import next_message_id
from repro.network.timing import Fabric, IdealFabric
from repro.simmpi.comm import (
    ANY_SOURCE,
    DeadlockError,
    LinkDownError,
    Message,
    NodeFailureError,
    RankComm,
    RecvBlock,
    payload_nbytes,
)
from repro.simmpi.trace import CommStats


class _Mailbox:
    """One destination rank's undelivered messages, indexed for match.

    The old mailbox was a flat list scanned linearly per receive; this
    one keeps the same messages in four views keyed by the four match
    patterns a receive can pose — exact ``(src, tag)``, src-only,
    tag-only, and fully wild.  Every deque preserves posting order, so
    "oldest matching message wins" (MPI's non-overtaking rule for a
    fixed pattern) falls out of popping from the front.  A message
    consumed through one view is lazily skipped by the others via its
    ``consumed`` flag.
    """

    __slots__ = ("order", "by_exact", "by_src", "by_tag", "live")

    def __init__(self) -> None:
        self.order: Deque[Message] = deque()
        self.by_exact: Dict[Tuple[int, int], Deque[Message]] = {}
        self.by_src: Dict[int, Deque[Message]] = {}
        self.by_tag: Dict[int, Deque[Message]] = {}
        self.live = 0

    def append(self, msg: Message) -> None:
        self.order.append(msg)
        key = (msg.src, msg.tag)
        queue = self.by_exact.get(key)
        if queue is None:
            queue = self.by_exact[key] = deque()
        queue.append(msg)
        queue = self.by_src.get(msg.src)
        if queue is None:
            queue = self.by_src[msg.src] = deque()
        queue.append(msg)
        queue = self.by_tag.get(msg.tag)
        if queue is None:
            queue = self.by_tag[msg.tag] = deque()
        queue.append(msg)
        self.live += 1

    def take(self, src: Optional[int], tag: Optional[int]
             ) -> Optional[Message]:
        """Pop the oldest live message matching the pattern, if any."""
        if src is not ANY_SOURCE:
            if tag is not None:
                queue = self.by_exact.get((src, tag))
            else:
                queue = self.by_src.get(src)
        elif tag is not None:
            queue = self.by_tag.get(tag)
        else:
            queue = self.order
        if queue is None:
            return None
        while queue:
            msg = queue.popleft()
            if msg.consumed:
                continue
            msg.consumed = True
            self.live -= 1
            return msg
        return None

    def live_messages(self) -> List[Message]:
        """Undelivered messages in posting order (diagnostics)."""
        return [m for m in self.order if not m.consumed]


@dataclass
class RunResult:
    """Outcome of one SPMD run."""

    elapsed_s: float                  # duration: max rank clock - start
    clocks: Tuple[float, ...]         # per-rank final clocks (absolute)
    results: Tuple[Any, ...]          # per-rank return values
    stats: Tuple[CommStats, ...]
    resumptions: int = 0              # generator resumptions scheduled
    failed_ranks: Tuple[int, ...] = ()
    start_time_s: float = 0.0         # virtual time the world launched at

    @property
    def total_messages(self) -> int:
        return sum(s.sends for s in self.stats)

    @property
    def total_bytes(self) -> int:
        return sum(s.bytes_sent for s in self.stats)

    @property
    def max_compute_s(self) -> float:
        return max((s.compute_s for s in self.stats), default=0.0)

    @property
    def completed_ranks(self) -> int:
        return len(self.results) - len(self.failed_ranks)

    @property
    def communication_fraction(self) -> float:
        """Share of the makespan not covered by the busiest rank's compute."""
        if self.elapsed_s <= 0:
            return 0.0
        return 1.0 - self.max_compute_s / self.elapsed_s


class SimMpiRuntime:
    """Cooperative SPMD scheduler with virtual time on an event kernel.

    ``flop_rate`` (flops/s) lets rank programs charge work via
    ``comm.compute_flops`` without knowing which node model they run on.
    ``kernel`` defaults to a private :class:`EventKernel`; pass one to
    share the clock with failure injectors, DVFS governors or tracing.
    ``governor`` (a :class:`~repro.cpus.longrun.LongRunGovernor`) makes
    compute rates follow the DVFS trajectory scheduled on that clock.
    """

    def __init__(self, size: int, fabric: Optional[Fabric] = None,
                 flop_rate: Optional[float] = None,
                 kernel: Optional[EventKernel] = None,
                 governor: Optional[Any] = None,
                 net_fault: Optional[Any] = None) -> None:
        if size < 1:
            raise ValueError("size must be >= 1")
        self.size = size
        self.fabric: Fabric = fabric if fabric is not None else IdealFabric(size)
        if getattr(self.fabric, "nodes", size) < size:
            raise ValueError("fabric has fewer nodes than ranks")
        self.flop_rate = flop_rate
        self.kernel = kernel if kernel is not None else EventKernel()
        self.governor = governor
        #: A :class:`~repro.network.faults.RetryPolicy` enables the
        #: reliable-delivery layer: lost frames (fabric faults) are
        #: retransmitted on an exponential-backoff timeout ladder, and
        #: an exhausted budget raises :class:`LinkDownError` into the
        #: sender.  ``None`` (default) keeps the legacy direct path —
        #: every byte of fault-free behaviour unchanged.
        self.net_fault = net_fault
        attach = getattr(self.fabric, "attach_kernel", None)
        if attach is not None:
            attach(self.kernel)
        self._mailboxes: Dict[int, _Mailbox] = {}
        self._consumed = 0
        self._posted = 0
        self._consumed0 = 0       # baselines at launch: per-world deltas
        self._posted0 = 0         # feed the world-done conservation trace
        self._dropped = 0         # posts to already-dead destinations
        self._dropped0 = 0
        self._waiters: Dict[int, Tuple[RecvBlock, Process]] = {}
        self._failed: Dict[int, Tuple[float, str]] = {}
        self._tasks: Optional[List[Process]] = None
        self._comms: Optional[List[RankComm]] = None
        self._start_time = 0.0
        self._remaining = 0
        self._on_complete: Optional[Callable[[RunResult], None]] = None

    # -- message plumbing (called by RankComm) -----------------------------

    def post(self, comm: RankComm, dst: int, obj: Any, tag: int) -> None:
        if not 0 <= dst < self.size:
            raise ValueError(f"destination {dst} outside 0..{self.size - 1}")
        nbytes = payload_nbytes(obj)
        # Sender-side cost first: the NIC accepts the message only once
        # the host stack has run, so the fabric's post_time is the
        # post-overhead clock — not the instant the program called send.
        comm.clock += self._send_overhead()
        if self.net_fault is None:
            transfer = self.fabric.send(comm.rank, dst, nbytes, comm.clock)
            mid = None
        else:
            transfer, mid = self._reliable_send(comm, dst, tag, nbytes)
        comm.stats.sends += 1
        comm.stats.bytes_sent += nbytes
        msg = Message(
            src=comm.rank,
            dst=dst,
            tag=tag,
            payload=obj,
            nbytes=nbytes,
            post_time=transfer.post_time,
            arrive_time=transfer.arrive_time,
        )
        self._posted += 1
        if mid is None:
            self.kernel.trace(
                "send", time=msg.post_time, src=msg.src, dst=dst, tag=tag,
                nbytes=nbytes, arrive=msg.arrive_time,
            )
        else:
            # Under the reliable-delivery layer the logical-message id
            # ties this delivery to its retry ledger (net-drop events).
            self.kernel.trace(
                "send", time=msg.post_time, src=msg.src, dst=dst, tag=tag,
                nbytes=nbytes, arrive=msg.arrive_time, mid=mid,
            )
        tasks = self._tasks
        if (dst in self._failed and tasks is not None
                and not tasks[dst].alive):
            # The destination's node is already dead: the frame left
            # the sender's NIC but nobody will ever drain it.  Account
            # for it explicitly instead of buffering it forever (the
            # conservation auditor balances drops separately from
            # undelivered mail).
            self._dropped += 1
            comm.stats.drops += 1
            self.kernel.trace(
                "drop", time=msg.arrive_time, src=msg.src, dst=dst,
                tag=tag, nbytes=nbytes,
            )
            return
        box = self._mailboxes.get(dst)
        if box is None:
            box = self._mailboxes[dst] = _Mailbox()
        box.append(msg)
        waiter = self._waiters.get(dst)
        if waiter is not None and waiter[0].matches(msg):
            del self._waiters[dst]
            self.kernel.trace(
                "wake", time=msg.arrive_time, rank=dst, src=msg.src,
                tag=msg.tag,
            )
            waiter[1].wake(time=msg.arrive_time)

    def _reliable_send(self, comm: RankComm, dst: int, tag: int,
                       nbytes: int) -> Tuple[Any, int]:
        """Transmit with ack/timeout/backoff against a faulted fabric.

        Each attempt books the wire for real (a frame clocked into a
        dead port still occupied the sender's link); a lost frame waits
        out the policy's timeout ladder and retransmits.  Exhausting
        the budget raises :class:`LinkDownError` into the sender.
        Returns the delivered transfer plus the logical-message id the
        retry ledger is keyed on.
        """
        policy = self.net_fault
        mid = next_message_id(self.kernel)
        attempt = 0
        while True:
            transfer = self.fabric.send(comm.rank, dst, nbytes, comm.clock)
            if not transfer.lost:
                return transfer, mid
            comm.stats.retransmits += 1
            self.kernel.trace(
                "net-drop", time=transfer.depart_time, src=comm.rank,
                dst=dst, tag=tag, nbytes=nbytes, mid=mid, attempt=attempt,
            )
            give_time = max(comm.clock, transfer.depart_time)
            if attempt >= policy.max_retries:
                self.kernel.trace(
                    "net-giveup", time=give_time, src=comm.rank, dst=dst,
                    tag=tag, mid=mid, attempts=attempt + 1,
                )
                comm.clock = give_time
                raise LinkDownError(
                    comm.rank, dst, give_time, attempt + 1,
                    detail=f"tag {tag}",
                )
            # Ack timeout: the sender learns of the loss only after the
            # RTO expires, then re-runs its host send stack.
            comm.clock = give_time + policy.timeout_s(attempt)
            comm.clock += self._send_overhead()
            attempt += 1

    def match(self, dst: int, src: Optional[int],
              tag: Optional[int]) -> Optional[Message]:
        box = self._mailboxes.get(dst)
        if box is None or not box.live:
            return None
        msg = box.take(src, tag)
        if msg is not None:
            self._consumed += 1
        return msg

    def _send_overhead(self) -> float:
        nic = getattr(self.fabric, "nic", None)
        return nic.send_overhead_s if nic is not None else 0.0

    # -- failure injection -------------------------------------------------

    def fail_at(self, time_s: float, rank: int, detail: str = "") -> None:
        """Schedule the node hosting *rank* to fail at a virtual time.

        When the event fires mid-run, :class:`NodeFailureError` is
        raised into the failing rank at its suspension point, and into
        every rank blocked on a receive from it (once its mailbox holds
        no matching message).  A program that catches the error can
        degrade or retry; uncaught, the rank is marked failed and the
        rest of the run continues.
        """
        if not 0 <= rank < self.size:
            raise ValueError(f"rank {rank} outside 0..{self.size - 1}")
        self.kernel.at(time_s, self._apply_failure, rank, time_s, detail)

    def rank_failed(self, rank: int) -> bool:
        return rank in self._failed

    def failure_time(self, rank: int) -> float:
        return self._failed[rank][0]

    def _apply_failure(self, rank: int, time_s: float, detail: str) -> None:
        if rank in self._failed:
            return
        self._failed[rank] = (time_s, detail)
        self.kernel.trace("failure", time=time_s, rank=rank, detail=detail)
        if self._tasks is None:
            return
        task = self._tasks[rank]
        if task.alive:
            self._waiters.pop(rank, None)
            task.interrupt(NodeFailureError(rank, time_s, detail))
        # Ranks blocked on the dead node get the failure raised into
        # their receive (after draining any already-delivered messages).
        for dst, (block, proc) in list(self._waiters.items()):
            if block.src == rank:
                del self._waiters[dst]
                proc.wake()
        self._release_wildcard_waiters()

    def _release_wildcard_waiters(self) -> None:
        """Wake ANY_SOURCE waiters whose last live peer just died.

        A wildcard receive re-runs its match on wake: pending mail is
        drained first, and only an empty mailbox with every peer failed
        raises — so waking here is what lets ``recv(ANY_SOURCE)``
        detect total peer failure instead of hanging for the deadlock
        detector.
        """
        if self.size <= 1:
            return
        for dst, (block, proc) in list(self._waiters.items()):
            if block.src is ANY_SOURCE and all(
                    r in self._failed
                    for r in range(self.size) if r != dst):
                del self._waiters[dst]
                proc.wake()

    # -- the scheduler ------------------------------------------------------

    def launch(self, fn: Callable, *args: Any,
               start_time: Optional[float] = None,
               on_complete: Optional[Callable[[RunResult], None]] = None,
               **kwargs: Any) -> None:
        """Start *fn* on every rank without driving the kernel.

        The non-blocking half of :meth:`run`: rank tasks are created and
        scheduled at virtual *start_time* (default: the kernel clock),
        and *on_complete* fires — still inside the event loop — once
        every rank has finished or failed.  Several runtimes can launch
        onto one shared kernel, which is how the batch scheduler
        (:mod:`repro.sched`) interleaves independent jobs, each in its
        own SimMPI world, on the shared virtual clock.  Whoever owns the
        kernel is responsible for driving it (``kernel.run()``).
        """
        if self._tasks is not None:
            raise RuntimeError("a program is already running on this runtime")
        # A fresh world starts with healthy nodes and empty mailboxes:
        # failures recorded during a previous launch (e.g. a kill) and
        # messages its dead ranks never drained don't outlive it.
        self._failed.clear()
        self._mailboxes.clear()
        self._posted0 = self._posted
        self._consumed0 = self._consumed
        self._dropped0 = self._dropped
        t0 = self.kernel.now if start_time is None else start_time
        comms = [
            RankComm(r, self.size, self, clock=t0) for r in range(self.size)
        ]
        gens: List[Any] = []
        for comm in comms:
            gen = fn(comm, *args, **kwargs)
            if not hasattr(gen, "send"):
                raise TypeError(
                    "rank programs must be generator functions "
                    "(use 'yield from comm.recv(...)' etc.)"
                )
            gens.append(gen)

        kernel = self.kernel
        tasks = [
            Process(
                kernel, gens[r], name=f"rank{r}",
                on_block=self._make_on_block(r),
                on_finish=self._make_on_finish(r),
                on_error=self._make_on_error(r),
            )
            for r in range(self.size)
        ]
        self._tasks = tasks
        self._comms = comms
        self._start_time = t0
        self._remaining = self.size
        self._on_complete = on_complete
        for r, task in enumerate(tasks):
            kernel.trace("start", time=t0, rank=r)
            task.start(t0)

    def run(self, fn: Callable, *args: Any, **kwargs: Any) -> RunResult:
        """Run generator function *fn(comm, \\*args)* on every rank."""
        done: List[RunResult] = []
        self.launch(
            fn, *args, start_time=0.0, on_complete=done.append, **kwargs
        )
        try:
            self.kernel.run()
            if not done:
                blocked = [
                    r for r, t in enumerate(self._tasks) if t.alive
                ]
                raise self._deadlock_error(blocked)
        finally:
            if not done:
                self._tasks = None
                self._comms = None
                self._waiters.clear()
        return done[0]

    def kill_all(self, victim_rank: int, time_s: Optional[float] = None,
                 detail: str = "") -> int:
        """Kill the whole world because *victim_rank*'s node died.

        The batch-scheduler semantic: a resource manager tears the job
        down when one of its nodes fails, rather than leaving survivors
        to degrade.  Every alive rank gets :class:`NodeFailureError`
        naming the victim thrown in at its suspension point; the world
        then completes (all ranks failed) and the launch's
        ``on_complete`` fires.  Returns the number of ranks interrupted.
        """
        if not 0 <= victim_rank < self.size:
            raise ValueError(
                f"rank {victim_rank} outside 0..{self.size - 1}"
            )
        if self._tasks is None:
            return 0
        t = self.kernel.now if time_s is None else time_s
        self._failed.setdefault(victim_rank, (t, detail))
        self.kernel.trace(
            "job-kill", time=t, rank=victim_rank, detail=detail,
        )
        killed = 0
        for rank, task in enumerate(self._tasks):
            if task.alive:
                self._waiters.pop(rank, None)
                task.interrupt(
                    NodeFailureError(victim_rank, t, detail), time=t
                )
                killed += 1
        return killed

    def unfinished_ranks(self) -> Tuple[int, ...]:
        """Ranks still alive (empty when no world is in flight)."""
        if self._tasks is None:
            return ()
        return tuple(r for r, t in enumerate(self._tasks) if t.alive)

    def _rank_done(self) -> None:
        self._remaining -= 1
        if self._remaining == 0:
            self._finalize()

    def _finalize(self) -> None:
        tasks, comms = self._tasks, self._comms
        start = self._start_time
        self._tasks = None
        self._comms = None
        self._waiters.clear()
        clocks = tuple(c.clock for c in comms)
        result = RunResult(
            elapsed_s=(max(clocks) - start) if clocks else 0.0,
            clocks=clocks,
            results=tuple(t.result for t in tasks),
            stats=tuple(c.stats for c in comms),
            resumptions=sum(t.resumptions for t in tasks),
            failed_ranks=tuple(
                r for r, t in enumerate(tasks) if t.failed
            ),
            start_time_s=start,
        )
        if self.kernel.tracing:
            # The conservation record repro.check audits: every posted
            # message was consumed, is still sitting undelivered, or
            # was dropped at a dead destination — and the latter two
            # are only legal when the world saw deaths.  ``dropped``
            # joins the record only when nonzero so fault-free traces
            # stay byte-identical.
            dropped = self._dropped - self._dropped0
            extra = {"dropped": dropped} if dropped else {}
            self.kernel.trace(
                "world-done",
                posted=self._posted - self._posted0,
                consumed=self._consumed - self._consumed0,
                undelivered=sum(
                    box.live for box in self._mailboxes.values()
                ),
                failed=len(result.failed_ranks),
                kills=len(self._failed),
                ranks=self.size,
                **extra,
            )
        callback, self._on_complete = self._on_complete, None
        if callback is not None:
            callback(result)

    # -- process callbacks -------------------------------------------------

    def _make_on_block(self, rank: int):
        def on_block(process: Process, yielded: Any) -> None:
            if isinstance(yielded, RecvBlock):
                self._waiters[rank] = (yielded, process)
                self.kernel.trace(
                    "block", time=self._comms[rank].clock, rank=rank,
                    src=yielded.src, tag=yielded.tag,
                )
            else:
                # A bare cooperative yield: stay runnable.
                process.wake()
        return on_block

    def _make_on_finish(self, rank: int):
        def on_finish(process: Process) -> None:
            self.kernel.trace(
                "finish", time=self._comms[rank].clock, rank=rank,
            )
            self._rank_done()
        return on_finish

    def _make_on_error(self, rank: int):
        def on_error(process: Process, error: BaseException) -> bool:
            if not isinstance(error, NodeFailureError):
                return False
            # An uncaught failure kills this rank (only): peers blocked
            # on it are notified, everything else keeps running.
            if rank not in self._failed:
                self._failed[rank] = (self._comms[rank].clock, str(error))
            self.kernel.trace(
                "rank-dead", time=self._comms[rank].clock, rank=rank,
                detail=str(error),
            )
            self._waiters.pop(rank, None)
            for dst, (block, proc) in list(self._waiters.items()):
                if block.src == rank:
                    del self._waiters[dst]
                    proc.wake()
            self._release_wildcard_waiters()
            self._rank_done()
            return True
        return on_error

    # -- diagnostics ---------------------------------------------------------

    def _deadlock_error(self, blocked: List[int]) -> DeadlockError:
        patterns: Dict[int, Tuple[Optional[int], Optional[int]]] = {}
        mailboxes: Dict[int, List[Tuple[int, int, int]]] = {}
        lines = []
        for rank in sorted(blocked):
            entry = self._waiters.get(rank)
            src, tag = (entry[0].src, entry[0].tag) if entry else (None, None)
            patterns[rank] = (src, tag)
            box = self._mailboxes.get(rank)
            pending = [
                (m.src, m.tag, m.nbytes)
                for m in (box.live_messages() if box is not None else ())
            ]
            mailboxes[rank] = pending
            src_txt = "ANY" if src is ANY_SOURCE else str(src)
            tag_txt = "any" if tag is None else str(tag)
            if pending:
                box_txt = ", ".join(
                    f"(src={s}, tag={t}, {n}B)" for s, t, n in pending
                )
            else:
                box_txt = "empty"
            lines.append(
                f"  rank {rank}: waiting on (src={src_txt}, tag={tag_txt});"
                f" mailbox: {box_txt}"
            )
        message = (
            "no progress possible; "
            f"{len(blocked)} rank(s) blocked on receives that can never "
            "match:\n" + "\n".join(lines)
        )
        return DeadlockError(message, blocked=patterns, mailboxes=mailboxes)
