"""The SimMPI scheduler: drives rank generators over a fabric model."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.network.timing import Fabric, IdealFabric
from repro.network.topology import StarTopology
from repro.simmpi.comm import (
    ANY_SOURCE,
    DeadlockError,
    Message,
    RankComm,
    payload_nbytes,
)
from repro.simmpi.trace import CommStats


@dataclass
class RunResult:
    """Outcome of one SPMD run."""

    elapsed_s: float                  # makespan: max rank clock
    clocks: Tuple[float, ...]         # per-rank final clocks
    results: Tuple[Any, ...]          # per-rank return values
    stats: Tuple[CommStats, ...]

    @property
    def total_messages(self) -> int:
        return sum(s.sends for s in self.stats)

    @property
    def total_bytes(self) -> int:
        return sum(s.bytes_sent for s in self.stats)

    @property
    def max_compute_s(self) -> float:
        return max((s.compute_s for s in self.stats), default=0.0)

    @property
    def communication_fraction(self) -> float:
        """Share of the makespan not covered by the busiest rank's compute."""
        if self.elapsed_s <= 0:
            return 0.0
        return 1.0 - self.max_compute_s / self.elapsed_s


class SimMpiRuntime:
    """Cooperative SPMD scheduler with virtual time.

    ``flop_rate`` (flops/s) lets rank programs charge work via
    ``comm.compute_flops`` without knowing which node model they run on.
    """

    def __init__(self, size: int, fabric: Optional[Fabric] = None,
                 flop_rate: Optional[float] = None) -> None:
        if size < 1:
            raise ValueError("size must be >= 1")
        self.size = size
        self.fabric: Fabric = fabric if fabric is not None else IdealFabric(size)
        if getattr(self.fabric, "nodes", size) < size:
            raise ValueError("fabric has fewer nodes than ranks")
        self.flop_rate = flop_rate
        self._mailboxes: Dict[int, List[Message]] = {}
        self._consumed = 0
        self._posted = 0

    # -- message plumbing (called by RankComm) -----------------------------

    def post(self, comm: RankComm, dst: int, obj: Any, tag: int) -> None:
        if not 0 <= dst < self.size:
            raise ValueError(f"destination {dst} outside 0..{self.size - 1}")
        nbytes = payload_nbytes(obj)
        transfer = self.fabric.send(comm.rank, dst, nbytes, comm.clock)
        # Sender-side cost: the host is busy until the NIC accepts it.
        overhead = self._send_overhead()
        comm.clock += overhead
        comm.stats.sends += 1
        comm.stats.bytes_sent += nbytes
        msg = Message(
            src=comm.rank,
            dst=dst,
            tag=tag,
            payload=obj,
            nbytes=nbytes,
            post_time=transfer.post_time,
            arrive_time=transfer.arrive_time,
        )
        self._mailboxes.setdefault(dst, []).append(msg)
        self._posted += 1

    def match(self, dst: int, src: Optional[int],
              tag: Optional[int]) -> Optional[Message]:
        box = self._mailboxes.get(dst)
        if not box:
            return None
        for i, msg in enumerate(box):
            if src is not ANY_SOURCE and msg.src != src:
                continue
            if tag is not None and msg.tag != tag:
                continue
            del box[i]
            self._consumed += 1
            return msg
        return None

    def _send_overhead(self) -> float:
        nic = getattr(self.fabric, "nic", None)
        return nic.send_overhead_s if nic is not None else 0.0

    # -- the scheduler ------------------------------------------------------

    def run(self, fn: Callable, *args: Any, **kwargs: Any) -> RunResult:
        """Run generator function *fn(comm, \\*args)* on every rank."""
        comms = [RankComm(r, self.size, self) for r in range(self.size)]
        gens: List[Any] = []
        results: List[Any] = [None] * self.size
        for comm in comms:
            gen = fn(comm, *args, **kwargs)
            if not hasattr(gen, "send"):
                raise TypeError(
                    "rank programs must be generator functions "
                    "(use 'yield from comm.recv(...)' etc.)"
                )
            gens.append(gen)

        alive = set(range(self.size))
        while alive:
            before = (self._consumed, self._posted, len(alive))
            for rank in sorted(alive):
                gen = gens[rank]
                try:
                    # Drive until the rank blocks (yields) or finishes.
                    next(gen)
                except StopIteration as stop:
                    results[rank] = stop.value
                    alive.discard(rank)
            after = (self._consumed, self._posted, len(alive))
            if alive and before == after:
                blocked = ", ".join(str(r) for r in sorted(alive))
                raise DeadlockError(
                    f"no progress possible; ranks blocked: {blocked}"
                )

        clocks = tuple(c.clock for c in comms)
        return RunResult(
            elapsed_s=max(clocks) if clocks else 0.0,
            clocks=clocks,
            results=tuple(results),
            stats=tuple(c.stats for c in comms),
        )
