"""SimMPI: a simulated message-passing runtime over modelled fabrics.

The paper's application codes (the N-body treecode, the NAS Parallel
Benchmarks) are MPI programs.  SimMPI lets the same algorithms run as
SPMD Python code while *virtual time* advances according to the cluster
model: compute phases are charged at a node's sustained rate, and every
message pays the Fast Ethernet star's LogGP-style costs with per-link
contention.  That is what produces the Table 2 efficiency drop.

Programming model (mpi4py-flavoured, cooperative generators):

- a rank program is a generator function ``def main(comm): ...``;
- ``comm.compute(seconds)`` / ``comm.compute_flops(flops)`` advance the
  local clock (plain calls - they never block);
- ``comm.send(dst, obj)`` is eager and non-blocking (plain call);
- ``obj = yield from comm.recv(src)`` blocks until the message arrives;
- collectives are generators too: ``yield from comm.barrier()``,
  ``x = yield from comm.bcast(x, root=0)``, ``yield from comm.allreduce(...)``.

Scheduling is event-driven on :class:`~repro.core.events.EventKernel`:
a blocked rank suspends until a matching message is posted, the kernel
can kill ranks mid-run (``runtime.fail_at`` raises
:class:`NodeFailureError` into programs — catch it to degrade), and a
tracing kernel collects the structured event timeline that
``python -m repro.cli timeline`` renders.

Run with::

    runtime = SimMpiRuntime(size=24, fabric=star_fabric(24))
    result = runtime.run(main)
    print(result.elapsed_s, result.results[0])
"""

from repro.simmpi.comm import (
    ANY_SOURCE,
    DeadlockError,
    LinkDownError,
    Message,
    NodeFailureError,
    RankComm,
    RecvBlock,
)
from repro.simmpi.runtime import RunResult, SimMpiRuntime
from repro.simmpi.trace import CommStats, filter_timeline, render_timeline

__all__ = [
    "ANY_SOURCE",
    "CommStats",
    "DeadlockError",
    "LinkDownError",
    "Message",
    "NodeFailureError",
    "RankComm",
    "RecvBlock",
    "RunResult",
    "SimMpiRuntime",
    "filter_timeline",
    "render_timeline",
]
