"""Collective operations built from point-to-point primitives.

Algorithms follow the classic MPICH implementations: binomial trees for
broadcast/reduce, a ring for allgather, dissemination for barrier -
so collective cost scales as O(log p) or O(p) in messages exactly the
way the real library's would on a Fast Ethernet star.

Every function is a generator to be driven with ``yield from``.
"""

from __future__ import annotations

import operator
from typing import Any, Iterator, List, Optional

# Tag kinds (mixed with the per-call sequence number).
_K_BARRIER, _K_BCAST, _K_REDUCE, _K_GATHER, _K_ALLGATHER = 1, 2, 3, 4, 5
_K_SCATTER, _K_ALLTOALL, _K_ALLREDUCE = 6, 7, 8


def _default_op(op):
    return operator.add if op is None else op


def _lowbit_index(v: int) -> int:
    """Index of the lowest set bit (v > 0)."""
    return (v & -v).bit_length() - 1


def barrier(comm) -> Iterator:
    """Dissemination barrier: ceil(log2 p) rounds of shifts."""
    tag = comm._next_coll_tag(_K_BARRIER)
    size, rank = comm.size, comm.rank
    if size == 1:
        return None
    step = 1
    while step < size:
        comm.send((rank + step) % size, b"", tag)
        yield from comm.recv((rank - step) % size, tag)
        step <<= 1
    return None


def bcast(comm, obj: Any, root: int = 0) -> Iterator:
    """Binomial-tree broadcast; returns the object on every rank."""
    tag = comm._next_coll_tag(_K_BCAST)
    size, rank = comm.size, comm.rank
    if size == 1:
        return obj
    vrank = (rank - root) % size

    def actual(v: int) -> int:
        return (v + root) % size

    if vrank == 0:
        low = (size - 1).bit_length()
    else:
        low = _lowbit_index(vrank)
        obj = yield from comm.recv(actual(vrank - (1 << low)), tag)
    for k in range(low - 1, -1, -1):
        dst = vrank + (1 << k)
        if dst < size:
            comm.send(actual(dst), obj, tag)
    return obj


def reduce(comm, obj: Any, op=None, root: int = 0) -> Iterator:
    """Binomial-tree reduction; result valid only on *root*.

    The reduction order is fixed by the tree, so floating-point results
    are deterministic for a given communicator size.
    """
    tag = comm._next_coll_tag(_K_REDUCE)
    op = _default_op(op)
    size, rank = comm.size, comm.rank
    if size == 1:
        return obj
    vrank = (rank - root) % size

    def actual(v: int) -> int:
        return (v + root) % size

    low = (size - 1).bit_length() if vrank == 0 else _lowbit_index(vrank)
    acc = obj
    for k in range(low):
        child = vrank + (1 << k)
        if child < size:
            other = yield from comm.recv(actual(child), tag)
            acc = op(acc, other)
    if vrank != 0:
        comm.send(actual(vrank - (1 << low)), acc, tag)
        return None
    return acc


def allreduce(comm, obj: Any, op=None) -> Iterator:
    """Reduce to rank 0 then broadcast (correct for any p and op)."""
    acc = yield from reduce(comm, obj, op, root=0)
    result = yield from bcast(comm, acc, root=0)
    return result


def gather(comm, obj: Any, root: int = 0) -> Iterator:
    """Direct gather; on *root* returns the rank-ordered list."""
    tag = comm._next_coll_tag(_K_GATHER)
    size, rank = comm.size, comm.rank
    if rank != root:
        comm.send(root, obj, tag)
        return None
    out: List[Any] = [None] * size
    out[root] = obj
    for src in range(size):
        if src != root:
            out[src] = yield from comm.recv(src, tag)
    return out


def allgather(comm, obj: Any) -> Iterator:
    """Ring allgather: p-1 shift steps, each moving one block."""
    tag = comm._next_coll_tag(_K_ALLGATHER)
    size, rank = comm.size, comm.rank
    out: List[Any] = [None] * size
    out[rank] = obj
    if size == 1:
        return out
    right = (rank + 1) % size
    left = (rank - 1) % size
    block = obj
    for step in range(size - 1):
        comm.send(right, block, tag)
        block = yield from comm.recv(left, tag)
        out[(rank - step - 1) % size] = block
    return out


def scatter(comm, objs: Optional[List[Any]], root: int = 0) -> Iterator:
    """Root sends item *i* to rank *i*; returns the local item."""
    tag = comm._next_coll_tag(_K_SCATTER)
    size, rank = comm.size, comm.rank
    if rank == root:
        if objs is None or len(objs) != size:
            raise ValueError("scatter root needs one item per rank")
        for dst in range(size):
            if dst != root:
                comm.send(dst, objs[dst], tag)
        return objs[root]
    item = yield from comm.recv(root, tag)
    return item


def alltoall(comm, objs: List[Any]) -> Iterator:
    """Personalised all-to-all; returns the rank-ordered received list."""
    tag = comm._next_coll_tag(_K_ALLTOALL)
    size, rank = comm.size, comm.rank
    if len(objs) != size:
        raise ValueError("alltoall needs one item per rank")
    out: List[Any] = [None] * size
    out[rank] = objs[rank]
    for offset in range(1, size):
        dst = (rank + offset) % size
        comm.send(dst, objs[dst], tag)
    for offset in range(1, size):
        src = (rank - offset) % size
        out[src] = yield from comm.recv(src, tag)
    return out
