"""The temperature/MTBF report: the paper's reliability argument, priced.

Section 2.1's claim is that Green Destiny survived a dusty telecom
closet because its blades run cool: the Arrhenius rule doubles the
failure rate every 10 °C, so a 70 °C machine-room Pentium 4 node fails
an order of magnitude more often than a 45 °C passive Transmeta blade.
This table reproduces that argument across every registry platform
using the *same* lumped-RC network the scheduler runs
(:mod:`repro.thermal.model`): the busy steady-state temperature of a
fully loaded chassis — blade heat through the blade resistance plus
the chassis sink rise plus the deployment ambient — fed through the
Arrhenius intensity into a per-node annual failure rate and a cluster
MTBF.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.cpus.power import FailureModel
from repro.metrics.report import format_table
from repro.platform.spec import PlatformSpec
from repro.thermal.model import ThermalNetwork


@dataclass(frozen=True)
class ThermalMtbfRow:
    """One platform's thermal/reliability bottom line."""

    name: str
    nodes: int
    node_watts: float
    cooling: str                 # "active" | "passive"
    ambient_c: float
    busy_c: float                # steady state, fully busy chassis
    rate_per_year: float         # per-node annual failure rate
    cluster_mtbf_h: float


def thermal_mtbf_row(spec: PlatformSpec,
                     failure: Optional[FailureModel] = None,
                     ) -> ThermalMtbfRow:
    """One platform through the RC network and the Arrhenius model."""
    failure = failure if failure is not None else FailureModel()
    power = spec.power_model()
    tspec = spec.thermal_params()
    network = ThermalNetwork(
        spec.nodes, tspec, node_watts=power.node_watts,
        nodes_per_chassis=spec.fabric.nodes_per_chassis,
    )
    busy_c = network.max_temperature_c()
    rate = failure.rate_at(busy_c)
    cluster_rate = rate * spec.nodes
    return ThermalMtbfRow(
        name=spec.name,
        nodes=spec.nodes,
        node_watts=power.node_watts,
        cooling="active" if power.needs_active_cooling else "passive",
        ambient_c=tspec.ambient_c,
        busy_c=busy_c,
        rate_per_year=rate,
        cluster_mtbf_h=(
            8760.0 / cluster_rate if cluster_rate > 0 else math.inf
        ),
    )


def thermal_mtbf_report(specs: Sequence[PlatformSpec],
                        failure: Optional[FailureModel] = None,
                        ) -> Tuple[List[ThermalMtbfRow], str]:
    """The reliability-vs-power table over *specs*.

    Rows sort hottest-first, so the machine-room Beowulfs lead and the
    blades close — the paper's ordering of who needs the HVAC.
    """
    rows = [thermal_mtbf_row(spec, failure) for spec in specs]
    rows.sort(key=lambda r: (-r.busy_c, r.name))
    table = format_table(
        ("platform", "nodes", "node W", "cooling", "ambient C",
         "busy C", "fail/yr/node", "cluster MTBF h"),
        [
            (
                r.name, r.nodes, round(r.node_watts, 1), r.cooling,
                round(r.ambient_c, 1), round(r.busy_c, 1),
                round(r.rate_per_year, 4), round(r.cluster_mtbf_h, 1),
            )
            for r in rows
        ],
        title="Temperature and reliability (Arrhenius, busy steady state)",
    )
    return rows, table
