"""Plain-text table rendering for benches and examples."""

from __future__ import annotations

from typing import Iterable, List, Sequence


def format_table(headers: Sequence[str], rows: Iterable[Sequence],
                 title: str = "") -> str:
    """Render an aligned monospace table.

    Numbers are right-aligned; floats print with a sensible number of
    significant digits; everything else left-aligns.
    """
    def cell(value) -> str:
        if isinstance(value, bool):
            return "yes" if value else "no"
        if isinstance(value, float):
            if value == 0:
                return "0"
            if abs(value) >= 1000:
                return f"{value:,.0f}"
            if abs(value) >= 10:
                return f"{value:.1f}"
            return f"{value:.3g}"
        return str(value)

    str_rows: List[List[str]] = [[cell(v) for v in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError("row width does not match headers")
        for i, text in enumerate(row):
            widths[i] = max(widths[i], len(text))

    def is_numeric_col(i: int) -> bool:
        return all(
            _looks_numeric(row[i]) for row in str_rows if row[i]
        ) and bool(str_rows)

    lines = []
    if title:
        lines.append(title)
        lines.append("=" * len(title))
    header_line = "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers))
    lines.append(header_line)
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        parts = []
        for i, text in enumerate(row):
            if is_numeric_col(i):
                parts.append(text.rjust(widths[i]))
            else:
                parts.append(text.ljust(widths[i]))
        lines.append("  ".join(parts))
    return "\n".join(lines)


def _looks_numeric(text: str) -> bool:
    try:
        float(text.replace(",", ""))
        return True
    except ValueError:
        return False
