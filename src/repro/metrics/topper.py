"""ToPPeR: Total Price-Performance Ratio.

The Gordon Bell price/performance metric divides *acquisition* cost by
flops; ToPPeR divides *total cost of ownership* by sustained
performance.  Lower is better.  The paper's headline: although the
Bladed Beowulf costs 50-75% more to acquire and sustains only ~75% of a
comparably-clocked traditional cluster's performance, its 3x smaller
TCO makes its ToPPeR over twice as good.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cluster.catalog import Cluster, METABLADE
from repro.metrics.costs import DEFAULT_COSTS, CostParameters
from repro.metrics.tco import TcoBreakdown, tco_for

#: Paper Section 4.1: the Bladed Beowulf's performance is ~75% of a
#: comparably-clocked traditional Beowulf's.
BLADE_RELATIVE_PERFORMANCE = 0.75


@dataclass(frozen=True)
class ToPPeR:
    """Total price-performance of one cluster (USD per sustained Gflop)."""

    cluster_name: str
    tco_usd: float
    sustained_gflops: float

    @property
    def usd_per_gflop(self) -> float:
        if self.sustained_gflops <= 0:
            raise ValueError("performance must be positive")
        return self.tco_usd / self.sustained_gflops

    @property
    def acquisition_style_ratio(self) -> float:
        """Alias making 'lower is better' explicit in reports."""
        return self.usd_per_gflop


def topper(cluster: Cluster, sustained_gflops: float = None,
           params: CostParameters = DEFAULT_COSTS) -> ToPPeR:
    """Compute ToPPeR for *cluster*.

    Performance defaults to the cluster's sustained treecode rating.
    """
    perf = sustained_gflops
    if perf is None:
        perf = cluster.treecode_gflops
    if perf is None:
        raise ValueError(
            f"{cluster.name} has no performance rating; pass sustained_gflops"
        )
    breakdown: TcoBreakdown = tco_for(cluster, params)
    return ToPPeR(
        cluster_name=cluster.name,
        tco_usd=breakdown.total,
        sustained_gflops=perf,
    )


def topper_for_platform(platform, sustained_gflops: float = None,
                        params: CostParameters = DEFAULT_COSTS) -> ToPPeR:
    """ToPPeR with every denominator read from a declarative
    :class:`~repro.platform.spec.PlatformSpec` (footprint, power and
    acquisition cost flow through its physical-economics view)."""
    return topper(platform.cluster(), sustained_gflops, params)


def topper_advantage(blade: ToPPeR, traditional: ToPPeR) -> float:
    """How many times better (lower) the blade's ToPPeR is."""
    return traditional.usd_per_gflop / blade.usd_per_gflop


@dataclass(frozen=True)
class HeadlineClaim:
    """The composed Section 4.1 argument, all pieces measurable."""

    blade: ToPPeR
    traditional: ToPPeR
    tco_ratio: float                 # traditional TCO / blade TCO
    performance_ratio: float         # blade perf / traditional perf
    topper_ratio: float              # traditional ToPPeR / blade ToPPeR

    @property
    def blade_wins(self) -> bool:
        return self.topper_ratio > 1.0


def paper_headline_claim(
    blade_cluster: Cluster = METABLADE,
    traditional_cluster: Cluster = None,
    params: CostParameters = DEFAULT_COSTS,
) -> HeadlineClaim:
    """Reproduce the paper's ToPPeR argument.

    The traditional comparator defaults to the PIII Beowulf of Table 5
    (the comparably-clocked machine), whose sustained performance is
    the blade's divided by :data:`BLADE_RELATIVE_PERFORMANCE`.
    """
    if traditional_cluster is None:
        from repro.cluster.catalog import TABLE5_CLUSTERS
        traditional_cluster = TABLE5_CLUSTERS[2]     # PIII Beowulf
    blade_perf = blade_cluster.treecode_gflops
    if blade_perf is None:
        raise ValueError("blade cluster needs a performance rating")
    trad_perf = blade_perf / BLADE_RELATIVE_PERFORMANCE
    blade = topper(blade_cluster, blade_perf, params)
    trad = topper(traditional_cluster, trad_perf, params)
    return HeadlineClaim(
        blade=blade,
        traditional=trad,
        tco_ratio=trad.tco_usd / blade.tco_usd,
        performance_ratio=blade_perf / trad_perf,
        topper_ratio=topper_advantage(blade, trad),
    )
