"""Total cost of ownership: TCO = AC + OC = (HWC+SWC) + (SAC+PCC+SCC+DTC).

Reproduces paper Table 5: the four-year TCO of five comparably-equipped
24-node clusters.  Every component is derived from the cluster's
physical model (power, footprint, packaging, reliability), not typed in.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Tuple

from repro.cluster.catalog import Cluster, Packaging
from repro.cluster.reliability import ClusterReliability
from repro.metrics.costs import DEFAULT_COSTS, CostParameters


@dataclass(frozen=True)
class TcoBreakdown:
    """One cluster's TCO, componentwise (USD over the study lifetime)."""

    cluster_name: str
    acquisition: float          # AC = HWC + SWC
    sysadmin: float             # SAC
    power_cooling: float        # PCC
    space: float                # SCC
    downtime: float             # DTC

    @property
    def operating(self) -> float:
        """OC = SAC + PCC + SCC + DTC."""
        return self.sysadmin + self.power_cooling + self.space + self.downtime

    @property
    def total(self) -> float:
        """TCO = AC + OC."""
        return self.acquisition + self.operating

    def rounded_k(self) -> Tuple[int, int, int, int, int, int]:
        """Components in $K, rounded the way the paper's Table 5 prints."""
        cells = (
            self.acquisition,
            self.sysadmin,
            self.power_cooling,
            self.space,
            self.downtime,
            self.total,
        )
        return tuple(int(round(c / 1000.0)) for c in cells)


def sysadmin_cost(cluster: Cluster,
                  params: CostParameters = DEFAULT_COSTS) -> float:
    """SAC: recurring labor and materials.

    Traditional clusters: $15K/year of care and feeding.  Bladed
    clusters: the one-time 2.5 h setup plus $1200/year of replacement
    hardware and labor (paper Section 4.1).
    """
    if cluster.packaging is Packaging.BLADED:
        return (
            params.blade_setup_usd
            + params.blade_maintenance_usd_per_year * params.years
        )
    return params.traditional_admin_usd_per_year * params.years


def power_cooling_cost(cluster: Cluster,
                       params: CostParameters = DEFAULT_COSTS) -> float:
    """PCC: utility cost of powering (and, if needed, cooling) the nodes."""
    return (
        cluster.total_power_kw
        * params.total_hours
        * params.utility_usd_per_kwh
    )


def space_cost(cluster: Cluster,
               params: CostParameters = DEFAULT_COSTS) -> float:
    """SCC: leased floor space over the lifetime."""
    return (
        cluster.footprint_sqft
        * params.space_usd_per_sqft_year
        * params.years
    )


def downtime_cost(cluster: Cluster,
                  params: CostParameters = DEFAULT_COSTS) -> float:
    """DTC: lost CPU-hours billed at the machine-time rate."""
    reliability = ClusterReliability(cluster)
    lost_cpu_hours = reliability.downtime_cpu_hours(params.years)
    return lost_cpu_hours * params.downtime_usd_per_cpu_hour


def tco_for(cluster: Cluster,
            params: CostParameters = DEFAULT_COSTS) -> TcoBreakdown:
    """Full TCO breakdown for one cluster."""
    return TcoBreakdown(
        cluster_name=cluster.name,
        acquisition=cluster.acquisition_usd + params.software_usd,
        sysadmin=sysadmin_cost(cluster, params),
        power_cooling=power_cooling_cost(cluster, params),
        space=space_cost(cluster, params),
        downtime=downtime_cost(cluster, params),
    )


def tco_table(clusters: Iterable[Cluster],
              params: CostParameters = DEFAULT_COSTS) -> List[TcoBreakdown]:
    """TCO breakdowns for a set of clusters (Table 5 generator)."""
    return [tco_for(c, params) for c in clusters]
