"""Performance/space and performance/power (paper Tables 6 and 7).

The two "concrete" companions to ToPPeR: unlike TCO they have no
institution-specific hidden costs - footprint and wall power are
measurable facts of the hardware.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Tuple

from repro.cluster.catalog import (
    AVALON,
    Cluster,
    GREEN_DESTINY,
    METABLADE,
)

#: Table 6/7 machine set in the paper's column order.
TABLE67_CLUSTERS: Tuple[Cluster, ...] = (AVALON, METABLADE, GREEN_DESTINY)


@dataclass(frozen=True)
class PerfSpaceRow:
    machine: str
    gflops: float
    area_sqft: float
    mflops_per_sqft: float


@dataclass(frozen=True)
class PerfPowerRow:
    machine: str
    gflops: float
    power_kw: float
    gflops_per_kw: float


def perf_space_table(
    clusters: Iterable[Cluster] = TABLE67_CLUSTERS,
) -> List[PerfSpaceRow]:
    """Regenerate Table 6."""
    rows = []
    for c in clusters:
        if c.treecode_gflops is None:
            raise ValueError(f"{c.name} has no performance rating")
        rows.append(
            PerfSpaceRow(
                machine=c.name,
                gflops=c.treecode_gflops,
                area_sqft=c.footprint_sqft,
                mflops_per_sqft=c.perf_space_mflops_per_sqft,
            )
        )
    return rows


def perf_power_table(
    clusters: Iterable[Cluster] = TABLE67_CLUSTERS,
) -> List[PerfPowerRow]:
    """Regenerate Table 7."""
    rows = []
    for c in clusters:
        if c.treecode_gflops is None:
            raise ValueError(f"{c.name} has no performance rating")
        rows.append(
            PerfPowerRow(
                machine=c.name,
                gflops=c.treecode_gflops,
                power_kw=c.power_kw,
                gflops_per_kw=c.perf_power_gflops_per_kw,
            )
        )
    return rows


def improvement_factor(rows, attribute: str, baseline: str) -> dict:
    """Each machine's metric relative to *baseline* (e.g. Avalon)."""
    base = next(r for r in rows if r.machine == baseline)
    base_value = getattr(base, attribute)
    return {
        r.machine: getattr(r, attribute) / base_value
        for r in rows
    }
