"""Throughput accounting for a scheduled job stream.

The paper rates MetaBlade by one treecode's sustained Gflops; a
production machine is rated by what it delivers under a *job stream*.
This module folds one :class:`repro.sched.scheduler.SchedOutcome`
into the headline operator numbers:

- **jobs/hour** and mean queue wait / turnaround;
- **utilization** — busy blade-seconds over blade-seconds offered;
- **operational Gflops** — useful flops of successful executions over
  the makespan (work lost to kills is *not* credited, work salvaged
  by checkpoints is simply not redone);
- **operational ToPPeR** — the Section 4 metric recomputed with the
  operational rate instead of the single-job rating, i.e. what a
  dollar of TCO buys under real multi-tenant load.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, TYPE_CHECKING

from repro.cluster.catalog import Cluster
from repro.metrics.report import format_table
from repro.metrics.topper import ToPPeR, topper

if TYPE_CHECKING:                                    # pragma: no cover
    from repro.sched.scheduler import SchedOutcome


@dataclass(frozen=True)
class ThroughputReport:
    """Operator-facing summary of one scheduling run."""

    policy: str
    nodes: int
    jobs: int
    completed: int
    abandoned: int
    makespan_s: float
    jobs_per_hour: float
    utilization: float               # busy node-seconds / offered
    mean_wait_s: float
    mean_turnaround_s: float
    energy_kwh: float
    lost_cpu_h: float
    checkpoints: int
    checkpoint_io_s: float
    failures: int
    requeues: int
    operational_gflops: float
    operational_topper: Optional[ToPPeR] = None
    #: Thermal side of the run, when the RC network was enabled.
    peak_temp_c: Optional[float] = None
    thermal_trips: int = 0
    overtemp_kills: int = 0
    #: Profile-cache accounting (the CMS-tcache analogue): dispatches
    #: replayed from cache, measured normalized runs, legacy-path
    #: attempts.
    cache_hits: int = 0
    cache_misses: int = 0
    cache_bypasses: int = 0

    def format(self) -> str:
        rows = [
            ("policy", self.policy),
            ("blades", self.nodes),
            ("jobs submitted", self.jobs),
            ("jobs completed", self.completed),
            ("jobs abandoned", self.abandoned),
            ("makespan (virtual s)", self.makespan_s),
            ("throughput (jobs/h)", self.jobs_per_hour),
            ("utilization", self.utilization),
            ("mean queue wait (s)", self.mean_wait_s),
            ("mean turnaround (s)", self.mean_turnaround_s),
            ("energy (kWh)", self.energy_kwh),
            ("lost CPU-hours", self.lost_cpu_h),
            ("node failures hit", self.failures),
            ("requeues", self.requeues),
            ("checkpoints taken", self.checkpoints),
            ("checkpoint I/O (s)", self.checkpoint_io_s),
            ("operational Gflops", self.operational_gflops),
        ]
        if self.operational_topper is not None:
            rows.append(
                ("operational ToPPeR ($/Gflop)",
                 self.operational_topper.usd_per_gflop)
            )
        if self.peak_temp_c is not None:
            rows.append(("peak blade temp (C)", self.peak_temp_c))
            rows.append(("thermal trips", self.thermal_trips))
            rows.append(("overtemp kills", self.overtemp_kills))
        if self.cache_hits or self.cache_misses or self.cache_bypasses:
            rows.append(("profile-cache hits", self.cache_hits))
            rows.append(("profile-cache misses", self.cache_misses))
            rows.append(("profile-cache bypasses", self.cache_bypasses))
        return format_table(
            ("metric", "value"), rows,
            title=f"Job-stream accounting ({self.policy})",
        )


def throughput_report(outcome: "SchedOutcome",
                      cluster: Optional[Cluster] = None,
                      platform=None) -> ThroughputReport:
    """Fold a scheduling outcome into the operator numbers.

    Pass the *cluster* catalog entry — or the
    :class:`~repro.platform.spec.PlatformSpec` the run was scheduled on
    — to also price the run: operational ToPPeR divides the machine's
    TCO (whose denominators — sq ft, watts, dollars — come from the
    spec) by the Gflops the job stream actually sustained (skipped when
    nothing completed — a zero-work run has no price-performance).
    """
    if platform is not None:
        if cluster is not None:
            raise ValueError("pass either cluster= or platform=, not both")
        cluster = platform.cluster()
    records = outcome.records
    completed = outcome.completed
    makespan = outcome.makespan_s
    hours = makespan / 3600.0
    waited = [r.wait_s for r in records if r.attempts]
    turnarounds = [
        r.turnaround_s for r in completed if r.turnaround_s is not None
    ]
    useful_flops = sum(r.compute_s for r in completed) * outcome.flop_rate
    operational_gflops = (
        useful_flops / makespan / 1e9 if makespan > 0 else 0.0
    )
    offered = outcome.nodes * makespan
    operational_topper = None
    if cluster is not None and operational_gflops > 0:
        operational_topper = topper(cluster, operational_gflops)
    return ThroughputReport(
        policy=outcome.policy,
        nodes=outcome.nodes,
        jobs=len(records),
        completed=len(completed),
        abandoned=len(outcome.abandoned),
        makespan_s=makespan,
        jobs_per_hour=len(completed) / hours if hours > 0 else 0.0,
        utilization=(
            outcome.allocator.busy_node_seconds() / offered
            if offered > 0 else 0.0
        ),
        mean_wait_s=sum(waited) / len(waited) if waited else 0.0,
        mean_turnaround_s=(
            sum(turnarounds) / len(turnarounds) if turnarounds else 0.0
        ),
        energy_kwh=sum(r.energy_j for r in records) / 3.6e6,
        lost_cpu_h=sum(r.lost_cpu_s for r in records) / 3600.0,
        checkpoints=sum(r.checkpoints for r in records),
        checkpoint_io_s=sum(r.checkpoint_io_s for r in records),
        failures=sum(r.failures for r in records),
        requeues=sum(r.requeues for r in records),
        operational_gflops=operational_gflops,
        operational_topper=operational_topper,
        peak_temp_c=(
            outcome.thermal.peak_c if outcome.thermal is not None else None
        ),
        thermal_trips=(
            outcome.thermal.trips if outcome.thermal is not None else 0
        ),
        overtemp_kills=(
            outcome.thermal.overtemp_kills
            if outcome.thermal is not None else 0
        ),
        cache_hits=getattr(outcome, "cache_hits", 0),
        cache_misses=getattr(outcome, "cache_misses", 0),
        cache_bypasses=getattr(outcome, "cache_bypasses", 0),
    )
