"""Cost parameters of the paper's Section 4.1 TCO study.

Every dollar figure the paper states is a named parameter here, so the
sensitivity benches can sweep them (the paper itself notes most
operating costs are institution-specific).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class CostParameters:
    """Knobs of the TCO model, defaulting to the paper's values."""

    #: Operational lifetime assumed for every cluster.
    years: float = 4.0
    #: "a typical utility rate of $0.10/kWh".
    utility_usd_per_kwh: float = 0.10
    #: "space is being leased at a cost of $100 per square foot per year".
    space_usd_per_sqft_year: float = 100.0
    #: "a conservative $5.00 charged per CPU hour" of downtime.
    downtime_usd_per_cpu_hour: float = 5.0
    #: Traditional Beowulf sysadmin: "about $15K/year".
    traditional_admin_usd_per_year: float = 15_000.0
    #: Blade setup: "2.5-hour assembly, installation, and configuration".
    blade_setup_hours: float = 2.5
    #: Labor rate: "$100/hour".
    labor_usd_per_hour: float = 100.0
    #: Blade annual upkeep: "replacement hardware and the labor to
    #: install it amounts to $1200/year".
    blade_maintenance_usd_per_year: float = 1_200.0
    #: Software acquisition cost (Linux/MPI are free; nonzero for
    #: enterprise what-ifs).
    software_usd: float = 0.0
    #: Hours per year, for energy billing.
    hours_per_year: float = 8_760.0

    def __post_init__(self) -> None:
        if self.years <= 0:
            raise ValueError("years must be positive")
        for field_name in (
            "utility_usd_per_kwh",
            "space_usd_per_sqft_year",
            "downtime_usd_per_cpu_hour",
            "traditional_admin_usd_per_year",
            "blade_setup_hours",
            "labor_usd_per_hour",
            "blade_maintenance_usd_per_year",
            "software_usd",
        ):
            if getattr(self, field_name) < 0:
                raise ValueError(f"{field_name} cannot be negative")

    @property
    def total_hours(self) -> float:
        """Powered-on hours over the study lifetime (35,040 at 4 years)."""
        return self.hours_per_year * self.years

    @property
    def blade_setup_usd(self) -> float:
        return self.blade_setup_hours * self.labor_usd_per_hour


#: The paper's exact parameterisation.
DEFAULT_COSTS = CostParameters()
