"""The paper's contribution: total-cost-of-ownership metrics.

Section 4 proposes **ToPPeR** (Total Price-Performance Ratio), where
total price is the total cost of ownership::

    TCO = AC + OC
    AC  = HWC + SWC                      (acquisition)
    OC  = SAC + PCC + SCC + DTC          (operating)

with SAC the system-administration cost, PCC power-and-cooling, SCC
space, and DTC downtime - plus the two concrete companions,
performance/space (Table 6) and performance/power (Table 7).
"""

from repro.metrics.costs import CostParameters, DEFAULT_COSTS
from repro.metrics.tco import TcoBreakdown, tco_for, tco_table
from repro.metrics.topper import (
    ToPPeR,
    topper,
    topper_advantage,
    paper_headline_claim,
)
from repro.metrics.ratios import (
    perf_power_table,
    perf_space_table,
)
from repro.metrics.report import format_table
from repro.metrics.thermal import (
    ThermalMtbfRow,
    thermal_mtbf_report,
    thermal_mtbf_row,
)
from repro.metrics.throughput import ThroughputReport, throughput_report

__all__ = [
    "CostParameters",
    "DEFAULT_COSTS",
    "TcoBreakdown",
    "ThermalMtbfRow",
    "ThroughputReport",
    "ToPPeR",
    "format_table",
    "paper_headline_claim",
    "perf_power_table",
    "perf_space_table",
    "tco_for",
    "tco_table",
    "thermal_mtbf_report",
    "thermal_mtbf_row",
    "throughput_report",
    "topper",
    "topper_advantage",
]
