"""repro.sched: a batch workload manager for the simulated Beowulf.

The paper benchmarks MetaBlade one code at a time, but its argument —
ToPPeR, perf/space, perf/power — is about *operating* a cluster under
sustained load.  This package supplies the resource-management layer
the Cluster Computing White Paper (Baker et al., 2000) calls the
defining software of a production Beowulf:

- :mod:`repro.sched.job` — the job model (arrival, node count,
  walltime estimate, workload payload) plus a seeded synthetic
  Poisson job-stream generator;
- :mod:`repro.sched.workloads` — job payloads that run as real SimMPI
  programs: a treecode step, an NPB kernel (EP/IS), or a microkernel
  sweep, each restartable from a checkpoint;
- :mod:`repro.sched.policy` — submission-queue policies: FCFS and
  EASY backfill (head job gets a reservation, narrow short jobs may
  jump it if they cannot delay it);
- :mod:`repro.sched.allocator` — places jobs onto the cluster's
  blades, tracks per-blade occupancy/down intervals (the Gantt data);
- :mod:`repro.sched.scheduler` — the event-driven dispatcher: every
  job runs as event-kernel processes in its own SimMPI world on the
  shared virtual clock, so jobs genuinely interleave; node failures
  kill the resident job, which is requeued (optionally from its last
  checkpoint, checkpoint I/O charged) or abandoned after max retries;
- :mod:`repro.sched.gantt` — the per-blade timeline rendering.

Throughput accounting (jobs/hour, utilization, operational ToPPeR)
lives in :mod:`repro.metrics.throughput`.  The CLI front end is
``python -m repro.cli sched``.
"""

from repro.sched.allocator import BladeAllocator, BladeInterval
from repro.sched.gantt import render_gantt
from repro.sched.job import JobRecord, JobSpec, JobState, synthetic_stream
from repro.sched.policy import EasyBackfill, Fcfs, policy_by_name
from repro.sched.profile_cache import (
    JobProfile,
    ProfileCache,
    job_profile_key,
)
from repro.sched.scheduler import (
    BatchScheduler,
    NetFaultSummary,
    SchedConfig,
    SchedOutcome,
)
from repro.sched.workloads import (
    MicrokernelSweep,
    NpbKernelJob,
    TreecodeJob,
    Workload,
)

__all__ = [
    "BatchScheduler",
    "BladeAllocator",
    "BladeInterval",
    "EasyBackfill",
    "Fcfs",
    "JobProfile",
    "JobRecord",
    "JobSpec",
    "JobState",
    "MicrokernelSweep",
    "NetFaultSummary",
    "ProfileCache",
    "NpbKernelJob",
    "SchedConfig",
    "SchedOutcome",
    "TreecodeJob",
    "Workload",
    "job_profile_key",
    "policy_by_name",
    "render_gantt",
    "synthetic_stream",
]
