"""The job-profile cache: a CMS-tcache analogue at the cluster level.

The paper's Transmeta CPUs get their speed from the Code Morphing
Software translation cache — hot x86 regions are translated once and
replayed from cache ever after.  The batch scheduler has the same
structure one level up: a 10k-job campaign drawn from a template pool
re-simulates the *same* SimMPI world thousands of times, and each
simulation is a pure function of (workload content, job width,
platform, fabric placement, checkpoint plan).  This module caches that
function.

Correctness rests on **normalized execution**, not on shifting deltas:

- An *eligible* job (see ``BatchScheduler._fastpath_eligible``) is
  always simulated in a scratch :class:`~repro.core.events.EventKernel`
  at virtual ``t=0`` — whether the cache is enabled or not.  Its
  measured :class:`JobProfile` (duration, per-rank clocks, comm stats,
  checkpoint billing, energy) is then replayed onto the shared clock
  at dispatch time.
- The ``enabled`` flag toggles *memoization only*: cache-on and
  cache-off runs execute the identical normalized computation, so
  every outcome field is bit-identical by construction.  (A delta
  *recorded* at one start time and *shifted* to another would not be —
  ``fl(t0+a)+b != fl(t0+(a+b))`` in IEEE-754 — which is why the fast
  path never records from the live interleaved timeline.)
- Anything that can perturb a job mid-flight — tracing observers or
  fire hooks, ``record_timeline``, invariant auditing, injected or
  thermal failures, thermal throttling/DVFS, a non-cacheable workload
  — bypasses the fast path entirely and runs on the legacy shared-
  kernel route.  Committed golden manifests are recorded under a
  tracing observer, so they take the legacy route on every replay and
  stay byte-identical with the cache on and off.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any, Dict, Optional, Sequence, Tuple

from repro.simmpi.trace import CommStats

#: Cache-key token for the attempt's frequency plan.  Fast-path jobs
#: always run unthrottled at the platform's nominal rate (a DVFS
#: governor forces a bypass), so the token is a constant — kept in the
#: key so a future governed fast path cannot silently collide.
NOMINAL_FREQUENCY_PLAN: Tuple[str, ...] = ("nominal",)


@dataclass(frozen=True)
class JobProfile:
    """The recorded outcome delta of one normalized job execution.

    All times are relative to the job's virtual start (the scratch
    world ran at ``t=0``); the scheduler adds its dispatch time when
    replaying.  ``stats`` holds per-rank :class:`CommStats` snapshots —
    frozen copies, never the live objects of the measuring world.
    """

    elapsed_s: float
    clocks: Tuple[float, ...]
    result0: Any
    compute_s: float
    flops: float
    energy_j: float
    checkpoints: int
    checkpoint_io_s: float
    stats: Tuple[CommStats, ...] = ()
    resumptions: int = 0

    @property
    def messages(self) -> int:
        return sum(s.sends for s in self.stats)

    @property
    def bytes_sent(self) -> int:
        return sum(s.bytes_sent for s in self.stats)


def job_profile_key(spec, platform, blades: Sequence[int], config,
                    platform_hash: Optional[str] = None) -> Tuple[Any, ...]:
    """The content identity of one job execution.

    Two dispatches with equal keys are guaranteed the same normalized
    simulation, so one may replay the other's profile:

    - the workload's exact class and frozen-dataclass ``repr`` (its
      full declarative content — particle counts, seeds, kernel names);
    - the job width (``spec.nodes``);
    - the platform's content-hash (covers node rate, NIC/switch/link
      parameters, power model — everything the fabric and billing read);
    - the fabric *placement signature*: on a two-level rack fabric the
      chassis grouping of the allocated blades changes message timing,
      so it is part of the identity (star/ideal fabrics are placement-
      invariant and contribute a constant);
    - the checkpoint plan (cadence, latency, bandwidth), which stalls
      rank clocks mid-run;
    - the frequency plan (constant: governed attempts bypass).

    ``arrival_s``, ``walltime_est_s`` and ``job_id`` are deliberately
    absent — they steer queueing, not execution.
    """
    workload = spec.workload
    fabric = platform.fabric
    if fabric.kind == "rack":
        placement: Any = tuple(
            b // fabric.nodes_per_chassis for b in blades
        )
    else:
        placement = fabric.kind
    return (
        type(workload).__module__,
        type(workload).__qualname__,
        repr(workload),
        spec.nodes,
        platform_hash if platform_hash is not None
        else platform.content_hash(),
        placement,
        (config.checkpoint_every, config.checkpoint_latency_s,
         config.checkpoint_bandwidth_bps),
        NOMINAL_FREQUENCY_PLAN,
    )


@dataclass
class ProfileCache:
    """Keyed store of :class:`JobProfile` records plus hit accounting.

    ``enabled=False`` turns the store off but keeps the counters: every
    eligible dispatch then counts as a miss (it runs the normalized
    simulation and discards nothing — there is simply nothing to reuse),
    and ``bypasses`` counts attempts routed down the legacy path.
    """

    enabled: bool = True
    hits: int = 0
    misses: int = 0
    bypasses: int = 0
    _store: Dict[Tuple[Any, ...], JobProfile] = field(default_factory=dict)

    def get(self, key: Tuple[Any, ...]) -> Optional[JobProfile]:
        if self.enabled:
            profile = self._store.get(key)
            if profile is not None:
                self.hits += 1
                return profile
        self.misses += 1
        return None

    def put(self, key: Tuple[Any, ...], profile: JobProfile) -> None:
        if self.enabled:
            self._store[key] = profile

    def replayed_stats(self, profile: JobProfile) -> Tuple[CommStats, ...]:
        """Fresh per-rank stats copies (callers may mutate them)."""
        return tuple(replace(s) for s in profile.stats)

    def invalidate(self) -> int:
        """Drop every stored profile; returns how many were evicted."""
        evicted = len(self._store)
        self._store.clear()
        return evicted

    def __len__(self) -> int:
        return len(self._store)
