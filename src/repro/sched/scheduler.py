"""The event-driven batch dispatcher.

One :class:`BatchScheduler` owns a shared :class:`EventKernel` and
turns the cluster into a multi-tenant machine: every job runs as a
SimMPI world of event-kernel processes launched mid-stream on that
shared virtual clock, so a 2-blade microkernel sweep genuinely
interleaves with a 12-blade treecode on the same timeline.

Lifecycle of a job::

    submit --> arrival event --> queue --(policy.pick)--> start
          --> world completes --> finish event at the job's virtual
              end time --> blades released, next dispatch round

Node failures arrive as events too: the victim blade goes down, the
management hub logs the fault, the resident job's world is killed
(every rank raises :class:`NodeFailureError`) and the job is requeued
— resuming from its last complete checkpoint when the config enables
checkpointing — or abandoned once it has burned ``max_retries``
retries.  All of it lands in the per-job :class:`JobRecord` ledger
and the allocator's blade intervals, which together feed
:mod:`repro.metrics.throughput`.

A compromise worth knowing about: SimMPI rank clocks may run ahead of
the kernel clock between message events (compute time is billed
lazily).  The dispatcher therefore defers each job's completion to
its *virtual* end time (``start + elapsed``) before releasing blades,
and prunes checkpoints whose write finished after a kill time, so the
shared timeline stays causally consistent.
"""

from __future__ import annotations

import random
from bisect import insort

import numpy as np
from dataclasses import dataclass, field, replace
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.cluster.management import EventKind, ManagementEvent, ManagementHub
from repro.core.events import EventKernel
from repro.core.system import BladedBeowulf
from repro.network.faults import (
    FaultTimeline,
    FaultWindow,
    NetFaultConfig,
    chassis_resource,
    link_resource,
)
from repro.sched.allocator import BladeAllocator
from repro.sched.job import Attempt, JobRecord, JobSpec, JobState
from repro.sched.policy import Policy, QueuedJob, RunningJob
from repro.sched.profile_cache import (
    JobProfile,
    ProfileCache,
    job_profile_key,
)
from repro.sched.workloads import JobContext
from repro.simmpi import SimMpiRuntime
from repro.thermal.model import (
    ThermalNetwork,
    ThermalSpec,
    cooling_overhead_factor,
)
from repro.thermal.reliability import (
    ArrheniusIntensity,
    ThermalFailureInjector,
)
from repro.thermal.throttle import ThermalThrottleGovernor, plan_attempt


def _payload_nbytes(state: Any) -> int:
    """Approximate serialized size of one rank's checkpoint state."""
    if state is None:
        return 0
    if hasattr(state, "nbytes"):
        return int(state.nbytes)
    if isinstance(state, (tuple, list)):
        return 64 + sum(_payload_nbytes(item) for item in state)
    if isinstance(state, bytes):
        return len(state)
    return 64


@dataclass(frozen=True)
class SchedConfig:
    """Operational knobs of the batch system."""

    #: Units between checkpoints; ``None`` disables checkpointing.
    checkpoint_every: Optional[int] = None
    #: Checkpoint write path: latency plus bytes over bandwidth.
    checkpoint_latency_s: float = 5e-3
    checkpoint_bandwidth_bps: float = 50e6
    #: Requeues granted before a job is abandoned.
    max_retries: int = 3
    #: Virtual seconds a failed blade stays down before repair.
    repair_s: float = 0.5
    #: Register repro.check invariant auditors on the kernel and audit
    #: the outcome ledgers at the end of :meth:`BatchScheduler.run`.
    audit: bool = False
    #: Model blade temperatures as a live lumped-RC network.  Off by
    #: default: no network is built and every legacy run is bit-
    #: identical to the pre-thermal scheduler.
    thermal: bool = False
    #: Explicit thermal parameters; ``None`` derives them from the
    #: platform (:meth:`~repro.platform.spec.PlatformSpec.thermal_params`).
    thermal_spec: Optional[ThermalSpec] = None
    #: Time-constant compression: scheduler streams run in compressed
    #: virtual seconds, so benches shrink tau to match (cf. the
    #: accelerated MTBF of :meth:`BatchScheduler.inject_poisson_failures`).
    thermal_accel: float = 1.0
    #: Blade placement under thermal modelling: ``"coolest"`` prefers
    #: the coldest free blades, ``"packed"`` keeps lowest-index first-fit.
    thermal_placement: str = "coolest"
    #: Clamp frequency at the trip temperature.  Disabled, blades run
    #: full speed until the kill point — the paper's "no safeguards"
    #: counterfactual.
    throttle: bool = True
    #: Memoize per-job outcome profiles (the CMS-tcache analogue):
    #: dispatches whose content key — workload repr, width, platform
    #: hash, fabric placement, checkpoint plan — matches an earlier one
    #: replay its recorded delta instead of re-simulating a SimMPI
    #: world.  Only fast-path-eligible jobs are ever cached, and those
    #: run the same normalized simulation whether this is on or off,
    #: so toggling it cannot change any outcome field (see
    #: :mod:`repro.sched.profile_cache`).
    profile_cache: bool = True

    def __post_init__(self) -> None:
        if self.thermal_accel <= 0:
            raise ValueError("thermal_accel must be positive")
        if self.thermal_placement not in ("coolest", "packed"):
            raise ValueError(
                "thermal_placement must be 'coolest' or 'packed', "
                f"got {self.thermal_placement!r}"
            )

    def checkpoint_io_s(self, nbytes: int) -> float:
        return self.checkpoint_latency_s + nbytes / self.checkpoint_bandwidth_bps


@dataclass(frozen=True)
class ThermalSummary:
    """The thermal side of one run, for the metrics layer."""

    peak_c: float                #: hottest blade temperature reached
    trips: int                   #: throttle clamps applied
    overtemp_kills: int          #: jobs killed at the kill temperature
    heat_j: float                #: total blade heat over the makespan
    fault_candidates: int = 0    #: thinning candidates drawn
    faults: int = 0              #: temperature-modulated faults accepted


@dataclass(frozen=True)
class NetFaultSummary:
    """The network-fault side of one run, for the metrics layer."""

    windows: int                 #: outage windows drawn on the timeline
    partitions: int              #: long outages that killed/requeued jobs
    retransmits: int             #: frames lost and retried (or abandoned)
    drops: int                   #: posts discarded at dead destinations
    reroutes: int                #: frames detoured over backup uplinks


@dataclass
class SchedOutcome:
    """What one scheduling run produced, ready for the metrics layer."""

    policy: str
    nodes: int
    flop_rate: float
    records: List[JobRecord]
    allocator: BladeAllocator
    hub: ManagementHub
    makespan_s: float
    failures_injected: int = 0
    thermal: Optional[ThermalSummary] = None
    #: Fault-campaign accounting; ``None`` when no ``net_fault`` config
    #: was given (the default), so legacy outcomes are unchanged.
    net: Optional[NetFaultSummary] = None
    #: Profile-cache accounting: dispatches served from cache, measured
    #: normalized runs, and attempts routed down the legacy path.
    cache_hits: int = 0
    cache_misses: int = 0
    cache_bypasses: int = 0

    @property
    def completed(self) -> List[JobRecord]:
        return [r for r in self.records if r.state is JobState.COMPLETED]

    @property
    def abandoned(self) -> List[JobRecord]:
        return [r for r in self.records if r.state is JobState.ABANDONED]


@dataclass
class _QueueEntry:
    """Queue position: FCFS order is (original arrival, job id)."""

    key: Tuple[float, int]
    record: JobRecord
    ready_s: float               # arrival or most recent requeue time

    def __lt__(self, other: "_QueueEntry") -> bool:
        return self.key < other.key


@dataclass
class _RunningJob:
    record: JobRecord
    #: ``None`` for fast-path jobs: their world already ran (or was
    #: replayed from cache) in a scratch kernel, so nothing lives on
    #: the shared clock but their finish event.
    runtime: Optional[SimMpiRuntime]
    blades: Tuple[int, ...]
    attempt: Attempt
    #: Partial checkpoints: unit -> {rank: (state, rank clock)}.
    pending: Dict[int, Dict[int, Tuple[Any, float]]] = field(
        default_factory=dict
    )
    killed_at: Optional[float] = None
    killed_by_blade: Optional[int] = None
    #: Pending trip/kill kernel events, cancelled when the job ends.
    thermal_events: List[Any] = field(default_factory=list)
    overtemp: bool = False


class BatchScheduler:
    """Queue + allocator + dispatcher over one shared virtual clock.

    The machine is described by a declarative
    :class:`~repro.platform.spec.PlatformSpec`: node count, per-node
    compute rate, power model, packaging, and — crucially — the fabric
    each job's SimMPI world runs on (MetaBlade's star or Green
    Destiny's chassis-behind-aggregation rack network, per the spec).
    ``machine`` remains accepted for back-compatibility and is adapted
    into a star-fabric platform; passing both is an error.
    """

    def __init__(self, machine: Optional[BladedBeowulf] = None,
                 policy: Optional[Policy] = None,
                 config: Optional[SchedConfig] = None,
                 kernel: Optional[EventKernel] = None,
                 record_timeline: bool = False,
                 platform=None,
                 net_fault: Optional[NetFaultConfig] = None) -> None:
        from repro.sched.policy import Fcfs

        if platform is not None and machine is not None:
            raise ValueError("pass either platform= or machine=, not both")
        if platform is None:
            if machine is None:
                from repro.platform.registry import METABLADE_PLATFORM
                platform = METABLADE_PLATFORM
            else:
                from repro.platform.spec import PlatformSpec
                platform = PlatformSpec.for_cluster(machine.cluster)
        self.platform = platform
        self.machine = machine if machine is not None else platform.machine()
        self.policy = policy if policy is not None else Fcfs()
        self.config = config if config is not None else SchedConfig()
        self.kernel = kernel if kernel is not None else EventKernel(
            record_timeline=record_timeline
        )
        self.nodes = platform.nodes
        self.flop_rate = platform.node_flop_rate()
        self.allocator = platform.build_allocator()
        self.hub = ManagementHub.for_packaging(platform.packaging)
        self.power = platform.power_model()
        self.records: Dict[int, JobRecord] = {}
        self.failures_injected = 0
        #: The CMS-tcache analogue (see repro.sched.profile_cache);
        #: ``SchedConfig.profile_cache=False`` keeps the normalized
        #: fast path but disables memoization.
        self.profile_cache = ProfileCache(enabled=self.config.profile_cache)
        self._platform_hash: Optional[str] = None
        self._queue: List[_QueueEntry] = []
        self._running: Dict[int, _RunningJob] = {}
        #: Complete checkpoints: job id -> [(unit, states, write-done clock)].
        self._checkpoints: Dict[int, List[Tuple[int, Tuple[Any, ...], float]]] = {}
        self._auditors: List[Any] = []
        if self.config.audit:
            from repro.check.auditors import attach_auditors
            self._auditors = attach_auditors(self.kernel)
        #: The lumped-RC network, or ``None`` when thermal modelling is
        #: off (the default) — in which case nothing below ever runs.
        self.thermal: Optional[ThermalNetwork] = None
        self._trips = 0
        self._overtemp_kills = 0
        self._thermal_injector: Optional[ThermalFailureInjector] = None
        if self.config.thermal:
            tspec = (
                self.config.thermal_spec
                if self.config.thermal_spec is not None
                else platform.thermal_params()
            )
            self.thermal = ThermalNetwork(
                self.nodes,
                tspec.accelerated(self.config.thermal_accel),
                node_watts=self.power.node_watts,
                nodes_per_chassis=platform.fabric.nodes_per_chassis,
                keep_ledger=self.config.audit,
            )
        #: Network fault campaign: ``None`` (default) leaves the fabric
        #: perfectly reliable and every legacy run byte-identical.
        #: With a config, the outage plan is materialised here — before
        #: any rank clock can run ahead of the kernel — and each window
        #: gets boundary events for tracing, partition kills and blade
        #: repair.  Per-job fabrics and runtimes pick the timeline and
        #: retry policy up at dispatch (:meth:`_start`).
        self.net_fault = net_fault
        self._net_timeline: Optional[FaultTimeline] = None
        self._net_blades: Dict[str, int] = {}
        self._net_partitions = 0
        self._net_retransmits = 0
        self._net_drops = 0
        self._net_reroutes = 0
        if net_fault is not None:
            self._net_blades = {
                link_resource(b): b for b in range(self.nodes)
            }
            resources = list(self._net_blades)
            if platform.fabric.kind == "rack":
                per = platform.fabric.nodes_per_chassis
                chassis = (self.nodes + per - 1) // per
                resources += [
                    chassis_resource(c) for c in range(chassis)
                ]
            self._net_timeline = net_fault.build_timeline(resources)
            for window in self._net_timeline.windows():
                self.kernel.at(
                    window.start_s, self._net_window_start, window
                )
                self.kernel.at(
                    window.end_s, self._net_window_end, window
                )

    # -- submission ---------------------------------------------------------

    def submit(self, spec: JobSpec) -> JobRecord:
        if spec.job_id in self.records:
            raise ValueError(f"duplicate job id {spec.job_id}")
        if spec.nodes > self.nodes:
            raise ValueError(
                f"job {spec.job_id} wants {spec.nodes} of {self.nodes} blades"
            )
        record = JobRecord(spec=spec)
        self.records[spec.job_id] = record
        self.kernel.at(spec.arrival_s, self._arrive, record)
        return record

    def submit_stream(self, specs: Sequence[JobSpec]) -> List[JobRecord]:
        return [self.submit(spec) for spec in specs]

    # -- failure injection --------------------------------------------------

    def inject_failure(self, time_s: float, blade: int,
                       detail: str = "injected fault") -> None:
        """Schedule a blade failure at a virtual time."""
        if not 0 <= blade < self.nodes:
            raise ValueError(f"blade {blade} outside 0..{self.nodes - 1}")
        self.failures_injected += 1
        self.kernel.at(time_s, self._node_fail, blade, detail)

    def inject_poisson_failures(self, horizon_s: float, mtbf_s: float,
                                seed: int = 0) -> List[Tuple[float, int]]:
        """Draw a Poisson fault process over the horizon (accelerated MTBF).

        Job runtimes here are virtual *seconds*, so the per-hour outage
        profiles of :mod:`repro.cluster.reliability` would never fire;
        the bench compresses MTBF to seconds instead.
        """
        if mtbf_s <= 0:
            raise ValueError("MTBF must be positive")
        rng = random.Random(seed)
        t = 0.0
        plan: List[Tuple[float, int]] = []
        while True:
            t += rng.expovariate(1.0 / mtbf_s)
            if t >= horizon_s:
                break
            blade = rng.randrange(self.nodes)
            plan.append((t, blade))
            self.inject_failure(t, blade)
        return plan

    def inject_thermal_failures(self, horizon_s: float, mtbf_s: float,
                                seed: int = 0) -> ThermalFailureInjector:
        """Temperature-modulated faults: Arrhenius over live blade temps.

        *mtbf_s* is the per-blade MTBF *at the 40 °C Arrhenius
        reference* (accelerated to virtual seconds, exactly like
        :meth:`inject_poisson_failures`); cool blades fail less often
        than that, hot blades more — failure rate doubling per 10 °C.
        Requires ``SchedConfig(thermal=True)``.  The injector chains
        seeded thinning candidates on the shared kernel, so the whole
        fault process replays bit-exactly under the same seed.
        """
        if self.thermal is None:
            raise RuntimeError(
                "thermal failure injection needs SchedConfig(thermal=True)"
            )
        if mtbf_s <= 0:
            raise ValueError("MTBF must be positive")

        def on_failure(time_s: float, blade: int) -> None:
            self.failures_injected += 1
            self._node_fail(blade, "thermal fault")

        injector = ThermalFailureInjector(
            self.kernel,
            self.thermal,
            ArrheniusIntensity(base_rate_per_s=1.0 / mtbf_s),
            horizon_s=horizon_s,
            seed=seed,
            on_failure=on_failure,
        )
        self._thermal_injector = injector
        return injector

    # -- the run loop -------------------------------------------------------

    def run(self, until: Optional[float] = None) -> SchedOutcome:
        """Drive the kernel until every event has fired, then settle up."""
        self.kernel.run(until)
        if until is None:
            stuck = [
                r.spec.job_id for r in self.records.values()
                if r.state in (JobState.QUEUED, JobState.RUNNING)
            ]
            if stuck:
                worlds = {
                    job_id: (
                        run.runtime.unfinished_ranks()
                        if run.runtime is not None else "fast-path"
                    )
                    for job_id, run in self._running.items()
                }
                raise RuntimeError(
                    f"scheduler wedged with non-terminal jobs {stuck}; "
                    f"unfinished ranks per running world: {worlds}"
                )
        ends = [r.end_s for r in self.records.values() if r.end_s is not None]
        makespan = max(ends) if ends else self.kernel.now
        self.allocator.finish(makespan)
        thermal_summary = None
        if self.thermal is not None:
            self.thermal.finish(makespan)
            injector = self._thermal_injector
            thermal_summary = ThermalSummary(
                peak_c=self.thermal.peak_c,
                trips=self._trips,
                overtemp_kills=self._overtemp_kills,
                heat_j=sum(
                    self.thermal.heat_joules(b, 0.0, makespan)
                    for b in range(self.nodes)
                ),
                fault_candidates=(
                    injector.candidates if injector is not None else 0
                ),
                faults=injector.accepted if injector is not None else 0,
            )
        net_summary = None
        if self.net_fault is not None:
            net_summary = NetFaultSummary(
                windows=len(self._net_timeline),
                partitions=self._net_partitions,
                retransmits=self._net_retransmits,
                drops=self._net_drops,
                reroutes=self._net_reroutes,
            )
        outcome = SchedOutcome(
            policy=self.policy.name,
            nodes=self.nodes,
            flop_rate=self.flop_rate,
            records=[self.records[k] for k in sorted(self.records)],
            allocator=self.allocator,
            hub=self.hub,
            makespan_s=makespan,
            failures_injected=self.failures_injected,
            thermal=thermal_summary,
            net=net_summary,
            cache_hits=self.profile_cache.hits,
            cache_misses=self.profile_cache.misses,
            cache_bypasses=self.profile_cache.bypasses,
        )
        if self._auditors and until is None:
            from repro.check.auditors import (
                audit_sched_outcome, detach_auditors,
            )
            detach_auditors(self.kernel, self._auditors)
            self._auditors = []
            audit_sched_outcome(
                outcome, power=self.power, flop_rate=self.flop_rate,
                thermal=self.thermal,
            )
        return outcome

    # -- event handlers -----------------------------------------------------

    def _arrive(self, record: JobRecord) -> None:
        now = self.kernel.now
        self.kernel.trace(
            "job-arrive", job=record.spec.job_id, nodes=record.spec.nodes
        )
        self._enqueue(record, now)
        self._dispatch()

    def _enqueue(self, record: JobRecord, ready_s: float) -> None:
        record.state = JobState.QUEUED
        entry = _QueueEntry(
            key=(record.spec.arrival_s, record.spec.job_id),
            record=record,
            ready_s=ready_s,
        )
        insort(self._queue, entry)

    def _dispatch(self) -> None:
        if not self._queue:
            return
        now = self.kernel.now
        queue_view = [
            QueuedJob(
                job_id=e.record.spec.job_id,
                nodes=e.record.spec.nodes,
                est_runtime_s=e.record.spec.walltime_est_s,
            )
            for e in self._queue
        ]
        running_view = [
            RunningJob(
                job_id=run.record.spec.job_id,
                nodes=run.record.spec.nodes,
                est_end_s=run.attempt.start_s + run.record.spec.walltime_est_s,
            )
            for run in self._running.values()
        ]
        picked = self.policy.pick(
            queue_view, self.allocator.free_count, now, running_view
        )
        if not picked:
            return
        chosen = {q.job_id for q in picked}
        starting = [e for e in self._queue if e.record.spec.job_id in chosen]
        self._queue = [
            e for e in self._queue if e.record.spec.job_id not in chosen
        ]
        for entry in starting:
            self._start(entry, now)

    def _placement_order(self, now: float) -> Optional[List[int]]:
        """Thermal-aware blade preference, or ``None`` for first-fit."""
        if self.thermal is None or self.config.thermal_placement != "coolest":
            return None
        return self.thermal.coolest_first(now)

    # -- the profile-cache fast path ---------------------------------------

    def _fastpath_eligible(self, record: JobRecord) -> bool:
        """Whether this dispatch may take the normalized fast path.

        Every condition here is an *invalidation trigger* of the
        profile cache: anything that can observe or perturb the job
        mid-flight forces the legacy shared-kernel route, where the
        behaviour is identical to the pre-cache scheduler.
        """
        if self.config.audit or self.thermal is not None:
            return False                 # auditors / thermal throttling
        if self.failures_injected or self._thermal_injector is not None:
            return False                 # mid-run kills possible
        if self.net_fault is not None:
            return False                 # fault timeline perturbs worlds
        kernel = self.kernel
        if kernel.record_timeline or kernel._observers or kernel._fire_hooks:
            return False                 # tracing or kernel auditors
        if not getattr(record.spec.workload, "cacheable", False):
            return False                 # payload opted out
        if record.failures or record.requeues:
            return False                 # defensive: never a fresh start
        return True

    def _start_fast(self, entry: _QueueEntry, now: float) -> None:
        """Dispatch an eligible job without touching the shared kernel.

        The job's world runs (or replays) in a scratch kernel at
        ``t=0``; the shared clock sees exactly one event — the finish
        at ``now + elapsed`` — so a 10k-job campaign schedules O(jobs)
        shared events instead of O(messages).
        """
        record = entry.record
        spec = record.spec
        blades = self.allocator.allocate(spec.job_id, spec.nodes, now)
        record.wait_s += now - entry.ready_s
        attempt = Attempt(start_s=now, start_unit=0)
        record.attempts.append(attempt)
        record.state = JobState.RUNNING
        if self._platform_hash is None:
            self._platform_hash = self.platform.content_hash()
        key = job_profile_key(
            spec, self.platform, blades, self.config,
            platform_hash=self._platform_hash,
        )
        profile = self.profile_cache.get(key)
        if profile is None:
            profile = self._profile_job(spec, blades)
            self.profile_cache.put(key, profile)
        running = _RunningJob(
            record=record, runtime=None, blades=blades, attempt=attempt
        )
        self._running[spec.job_id] = running
        self.kernel.at(
            now + profile.elapsed_s, self._finish_fast, running, profile
        )

    def _profile_job(self, spec: JobSpec,
                     blades: Tuple[int, ...]) -> JobProfile:
        """Measure one job in a scratch world at virtual ``t=0``.

        This is the normalized execution both cache states share: the
        world is simulated on a private kernel with the same fabric
        (placed on the actually-allocated blades), flop rate and
        checkpoint billing as the legacy path — only the time origin
        differs, which is what makes the profile reusable.
        """
        kernel = EventKernel()
        runtime = SimMpiRuntime(
            spec.nodes,
            fabric=self.platform.build_fabric(spec.nodes, blades=blades),
            flop_rate=self.flop_rate,
            kernel=kernel,
        )
        workload = spec.workload
        every = self.config.checkpoint_every
        checkpoint_io = [0.0]
        checkpoints = [0]
        pending: Dict[int, set] = {}

        def on_unit(comm, unit: int, state: Any) -> None:
            # Mirrors _on_unit's billing exactly: the I/O stall shapes
            # the rank clocks (hence the profile's duration), and the
            # counters land on the record at replay.  The states are
            # not kept — a fast-path job can never be killed, so no
            # restore point is ever read.
            done = unit + 1
            if (
                every is None or state is None or not workload.checkpointable
                or done >= workload.units or done % every
            ):
                return
            io_s = self.config.checkpoint_io_s(_payload_nbytes(state))
            comm.stall(io_s)
            checkpoint_io[0] += io_s
            ranks = pending.setdefault(done, set())
            ranks.add(comm.rank)
            if len(ranks) == spec.nodes:
                checkpoints[0] += 1
                del pending[done]

        ctx = JobContext(start_unit=0, states=None, on_unit=on_unit)
        program = workload.make_program(self.flop_rate, spec.nodes, ctx)
        done_results: List[Any] = []
        runtime.launch(
            program, start_time=0.0, on_complete=done_results.append
        )
        kernel.run()
        if not done_results:
            blocked = [
                r for r, t in enumerate(runtime._tasks or []) if t.alive
            ]
            raise runtime._deadlock_error(blocked)
        result = done_results[0]
        return JobProfile(
            elapsed_s=result.elapsed_s,
            clocks=result.clocks,
            result0=result.results[0] if result.results else None,
            compute_s=sum(s.compute_s for s in result.stats),
            flops=sum(s.flops for s in result.stats),
            energy_j=spec.nodes * self.power.energy_joules(result.elapsed_s),
            checkpoints=checkpoints[0],
            checkpoint_io_s=checkpoint_io[0],
            stats=tuple(replace(s) for s in result.stats),
            resumptions=result.resumptions,
        )

    def _finish_fast(self, running: _RunningJob,
                     profile: JobProfile) -> None:
        """Settle a fast-path job: replay its profile onto the ledger."""
        now = self.kernel.now
        record = running.record
        spec = record.spec
        self._running.pop(spec.job_id, None)
        self.allocator.release(spec.job_id, now)
        running.attempt.end_s = now
        record.state = JobState.COMPLETED
        record.end_s = now
        result0 = profile.result0
        if isinstance(result0, np.ndarray):
            # Replayed records must not alias one shared array.
            result0 = result0.copy()
        record.result = result0
        record.energy_j += profile.energy_j
        record.compute_s += profile.compute_s
        record.flops += profile.flops
        record.checkpoints += profile.checkpoints
        record.checkpoint_io_s += profile.checkpoint_io_s
        self._dispatch()

    # -- the legacy (shared-kernel) dispatch path ---------------------------

    def _start(self, entry: _QueueEntry, now: float) -> None:
        if self._fastpath_eligible(entry.record):
            self._start_fast(entry, now)
            return
        self.profile_cache.bypasses += 1
        record = entry.record
        spec = record.spec
        blades = self.allocator.allocate(
            spec.job_id, spec.nodes, now, order=self._placement_order(now)
        )
        record.wait_s += now - entry.ready_s
        start_unit, states = self._restore_point(spec.job_id)
        attempt = Attempt(start_s=now, start_unit=start_unit)
        record.attempts.append(attempt)
        record.state = JobState.RUNNING
        # Thermal planning happens *here*, at the attempt-start event:
        # every transition of the attempt (trip clamp, kill) is solved
        # and inserted before any rank of the job resumes, so lazily
        # billed compute can never outrun a frequency change.
        governor = None
        plan = None
        if self.thermal is not None:
            for blade in blades:
                self.thermal.set_busy(blade, now)
            plan = plan_attempt(
                self.thermal, blades, now, throttle=self.config.throttle
            )
            if plan.trip_at_s is not None:
                governor = ThermalThrottleGovernor(self.power.node_watts)
                governor.clamp_at(
                    plan.trip_at_s, self.thermal.spec.throttle_scale
                )
        # The job's world runs on the platform's declared fabric, its
        # endpoints placed into the chassis of the blades it was
        # actually allocated (matters on multi-level rack fabrics).
        fabric = self.platform.build_fabric(spec.nodes, blades=blades)
        if self._net_timeline is not None:
            # Endpoint i of this job is cluster blade blades[i]: frame
            # fate resolves against the cluster-level fault timeline.
            attach = getattr(fabric, "attach_faults", None)
            if attach is not None:
                attach(
                    self._net_timeline,
                    resources=[link_resource(b) for b in blades],
                )
        runtime = SimMpiRuntime(
            spec.nodes,
            fabric=fabric,
            flop_rate=self.flop_rate,
            kernel=self.kernel,
            governor=governor,
            net_fault=(
                self.net_fault.policy if self.net_fault is not None
                else None
            ),
        )
        running = _RunningJob(
            record=record, runtime=runtime, blades=blades, attempt=attempt
        )
        self._running[spec.job_id] = running
        if plan is not None:
            if plan.trip_at_s is not None:
                running.thermal_events.append(
                    self.kernel.at(plan.trip_at_s, self._thermal_trip, running)
                )
            if plan.kill_at_s is not None:
                running.thermal_events.append(
                    self.kernel.at(plan.kill_at_s, self._overtemp_kill, running)
                )
        ctx = JobContext(
            start_unit=start_unit,
            states=states,
            on_unit=lambda comm, unit, state: self._on_unit(
                running, comm, unit, state
            ),
        )
        program = spec.workload.make_program(self.flop_rate, spec.nodes, ctx)
        self.kernel.trace(
            "job-start", job=spec.job_id, nodes=spec.nodes,
            blades=",".join(str(b) for b in blades), unit=start_unit,
        )
        runtime.launch(
            program,
            start_time=now,
            on_complete=lambda result: self._world_done(running, result),
        )

    def _world_done(self, running: _RunningJob, result) -> None:
        """The job's world finalized; settle at its *virtual* end time.

        Rank clocks run ahead of the kernel clock, so the last message
        event (= now) can precede the job's true end.  Blades stay held
        and accounting waits until the virtual end so a successor can
        never overlap this job on the Gantt chart.
        """
        if running.killed_at is not None:
            end = running.killed_at
        else:
            end = result.start_time_s + result.elapsed_s
        self.kernel.at(max(end, self.kernel.now), self._finish, running, result)

    def _finish(self, running: _RunningJob, result) -> None:
        now = self.kernel.now
        record = running.record
        spec = record.spec
        self._running.pop(spec.job_id, None)
        self.allocator.release(spec.job_id, now)
        running.attempt.end_s = now
        duration = now - running.attempt.start_s
        if self.net_fault is not None:
            self._net_retransmits += sum(
                s.retransmits for s in result.stats
            )
            self._net_drops += sum(s.drops for s in result.stats)
            if running.runtime is not None:
                self._net_reroutes += getattr(
                    running.runtime.fabric, "reroutes", 0
                )
            if running.killed_at is None and result.failed_ranks:
                # A rank died of retry exhaustion (LinkDownError)
                # without any node-failure kill: the partition tore the
                # world down from inside.  Settle it exactly like a
                # kill so the job requeues (or abandons).
                running.killed_at = now
                running.killed_by_blade = running.blades[
                    result.failed_ranks[0]
                ]
                record.failures += 1
        if self.thermal is not None:
            self._end_attempt_thermal(running, now)
        else:
            record.energy_j += spec.nodes * self.power.energy_joules(duration)
        if running.killed_at is None:
            record.state = JobState.COMPLETED
            record.end_s = now
            record.result = result.results[0] if result.results else None
            record.compute_s += sum(s.compute_s for s in result.stats)
            record.flops += sum(s.flops for s in result.stats)
            self._checkpoints.pop(spec.job_id, None)
            self.kernel.trace("job-complete", job=spec.job_id)
        else:
            self._settle_kill(running, now)
        self._dispatch()

    def _settle_kill(self, running: _RunningJob, now: float) -> None:
        record = running.record
        spec = record.spec
        running.attempt.killed_by_node = running.killed_by_blade
        # Checkpoints whose write outran the kill never hit stable
        # storage; drop them before picking the restore point.
        kept = [
            c for c in self._checkpoints.get(spec.job_id, ())
            if c[2] <= now
        ]
        if kept:
            self._checkpoints[spec.job_id] = kept
        else:
            self._checkpoints.pop(spec.job_id, None)
        salvage = max(
            [running.attempt.start_s] + [c[2] for c in kept]
        )
        record.lost_cpu_s += (now - salvage) * spec.nodes
        if record.failures > self.config.max_retries:
            record.state = JobState.ABANDONED
            record.end_s = now
            self.kernel.trace(
                "job-abandon", job=spec.job_id, failures=record.failures
            )
        else:
            record.requeues += 1
            self._enqueue(record, now)
            self.kernel.trace(
                "job-requeue", job=spec.job_id,
                unit=self._restore_point(spec.job_id)[0],
            )

    def _node_fail(self, blade: int, detail: str) -> None:
        now = self.kernel.now
        time_h = now / 3600.0
        self.hub.record(ManagementEvent(time_h, EventKind.FAILURE, blade, detail))
        self.hub.record(
            ManagementEvent(
                time_h + self.hub.detection_latency_h,
                EventKind.DETECTED, blade, detail,
            )
        )
        self.kernel.trace("node-down", node=blade, detail=detail)
        job_id = self.allocator.job_on(blade)
        self.allocator.mark_down(blade, now, detail)
        self.kernel.at(now + self.config.repair_s, self._node_repair, blade)
        if job_id is None:
            return
        running = self._running.get(job_id)
        if running is None or running.killed_at is not None:
            return
        if running.runtime is None:
            # Unreachable by construction: any failure injection bumps
            # failures_injected before the kernel runs, which disables
            # fast-path eligibility for every subsequent dispatch.
            raise RuntimeError(
                f"failure injected into fast-path job {job_id}; "
                "profile-cache eligibility is stale"
            )
        victim_rank = running.blades.index(blade)
        killed = running.runtime.kill_all(victim_rank, now, detail=detail)
        if killed == 0:
            # The world already finalized (its last event fired at or
            # before now); the job completed before the blade died.
            return
        running.killed_at = now
        running.killed_by_blade = blade
        running.record.failures += 1

    def _node_repair(self, blade: int) -> None:
        self.allocator.mark_up(blade, self.kernel.now)
        self.kernel.trace("node-up", node=blade)
        self._dispatch()

    # -- network fault windows ----------------------------------------------

    def _net_window_start(self, window: FaultWindow) -> None:
        """An outage opens: trace it; long node-link outages partition.

        A window shorter than the retry policy's ride-through horizon
        is survivable by retransmission alone, so resident jobs keep
        running.  A longer one is a partition: the blade is effectively
        unreachable for the whole outage, so the resident job is killed
        and requeued exactly like a node-failure kill, and the blade
        leaves the free pool until the link repairs.  Chassis-uplink
        windows never kill — the rack fabric reroutes over the backup
        path at degraded bandwidth.
        """
        now = self.kernel.now
        self.kernel.trace(
            "net-down", resource=window.resource, until=window.end_s
        )
        blade = self._net_blades.get(window.resource)
        if blade is None:
            return
        if window.duration_s <= self.net_fault.policy.ride_through_s:
            return
        self._net_partitions += 1
        detail = "link partition"
        time_h = now / 3600.0
        self.hub.record(
            ManagementEvent(time_h, EventKind.FAILURE, blade, detail)
        )
        self.hub.record(
            ManagementEvent(
                time_h + self.hub.detection_latency_h,
                EventKind.DETECTED, blade, detail,
            )
        )
        job_id = self.allocator.job_on(blade)
        self.allocator.mark_down(blade, now, detail)
        if job_id is None:
            return
        running = self._running.get(job_id)
        if running is None or running.killed_at is not None:
            return
        if running.runtime is None:
            # Unreachable by construction: a net_fault config disables
            # fast-path eligibility for every dispatch.
            raise RuntimeError(
                f"net fault hit fast-path job {job_id}; "
                "profile-cache eligibility is stale"
            )
        victim_rank = running.blades.index(blade)
        killed = running.runtime.kill_all(victim_rank, now, detail=detail)
        if killed == 0:
            # The world already finalized; the job beat the outage.
            return
        running.killed_at = now
        running.killed_by_blade = blade
        running.record.failures += 1

    def _net_window_end(self, window: FaultWindow) -> None:
        """The outage repairs: partitioned blades rejoin the pool."""
        now = self.kernel.now
        self.kernel.trace("net-up", resource=window.resource)
        blade = self._net_blades.get(window.resource)
        if (blade is not None
                and window.duration_s > self.net_fault.policy.ride_through_s):
            self.allocator.mark_up(blade, now)
            self._dispatch()

    # -- thermal events -----------------------------------------------------

    def _thermal_trip(self, running: _RunningJob) -> None:
        """The planned trip instant: clamp the whole attempt's blades."""
        job_id = running.record.spec.job_id
        if self._running.get(job_id) is not running:
            return
        if running.killed_at is not None:
            return
        now = self.kernel.now
        scale = self.thermal.spec.throttle_scale
        for blade in running.blades:
            self.thermal.set_busy(blade, now, scale=scale)
        self._trips += 1
        self.kernel.trace(
            "thermal-trip", job=job_id, scale=scale,
            blades=",".join(str(b) for b in running.blades),
        )

    def _overtemp_kill(self, running: _RunningJob) -> None:
        """The planned kill instant: the job dies, the blade cools."""
        job_id = running.record.spec.job_id
        if self._running.get(job_id) is not running:
            return
        if running.killed_at is not None:
            return
        now = self.kernel.now
        # The hottest blade of the attempt is the one that crossed the
        # kill temperature (lowest index breaks exact ties).
        victim = max(
            running.blades,
            key=lambda b: (self.thermal.temperature(b, now), -b),
        )
        victim_rank = running.blades.index(victim)
        killed = running.runtime.kill_all(victim_rank, now, detail="overtemp")
        if killed == 0:
            # The world already finalized at or before now: the job
            # beat its kill time, and its blades are about to go idle.
            return
        running.killed_at = now
        running.killed_by_blade = victim
        running.overtemp = True
        running.record.failures += 1
        self._overtemp_kills += 1
        time_h = now / 3600.0
        self.hub.record(
            ManagementEvent(time_h, EventKind.FAILURE, victim, "overtemp")
        )
        self.hub.record(
            ManagementEvent(
                time_h + self.hub.detection_latency_h,
                EventKind.DETECTED, victim, "overtemp",
            )
        )
        self.allocator.mark_down(victim, now, "overtemp")
        self.kernel.trace("overtemp-kill", job=job_id, node=victim)

    def _end_attempt_thermal(self, running: _RunningJob, now: float) -> None:
        """Settle an attempt's thermal side at its finish event.

        Blades drop to idle heat, pending trip/kill events die, and
        the job is billed the *actual* blade heat over the attempt —
        throttled stretches dissipate less — times the cooling
        overhead (with throttling never engaged this reproduces
        ``PowerModel.energy_joules`` exactly).  An overtemp-killed
        blade rejoins service only once it has cooled to the resume
        temperature: a physical repair time instead of the flat
        ``repair_s``.
        """
        for event in running.thermal_events:
            event.cancel()
        running.thermal_events = []
        for blade in running.blades:
            self.thermal.set_idle(blade, now)
        heat = sum(
            self.thermal.heat_joules(b, running.attempt.start_s, now)
            for b in running.blades
        )
        running.record.energy_j += cooling_overhead_factor(self.power) * heat
        if running.overtemp:
            victim = running.killed_by_blade
            resume = self.thermal.spec.resume_c
            if self.thermal.temperature(victim, now) <= resume:
                t_up = now
            else:
                t_up = self.thermal.time_to_reach(victim, resume, now)
                if t_up is None:
                    # The idle steady state sits above the resume
                    # point; waiting would wedge the blade forever.
                    t_up = now
            self.kernel.at(t_up, self._node_repair, victim)

    # -- checkpointing ------------------------------------------------------

    def _restore_point(
        self, job_id: int
    ) -> Tuple[int, Optional[Tuple[Any, ...]]]:
        checkpoints = self._checkpoints.get(job_id)
        if not checkpoints:
            return 0, None
        unit, states, _clock = max(checkpoints, key=lambda c: c[0])
        return unit, states

    def _on_unit(self, running: _RunningJob, comm, unit: int,
                 state: Any) -> None:
        record = running.record
        spec = record.spec
        workload = spec.workload
        every = self.config.checkpoint_every
        done = unit + 1
        if (
            every is None or state is None or not workload.checkpointable
            or done >= workload.units or done % every
        ):
            return
        io_s = self.config.checkpoint_io_s(_payload_nbytes(state))
        comm.stall(io_s)
        record.checkpoint_io_s += io_s
        pending = running.pending.setdefault(done, {})
        pending[comm.rank] = (state, comm.clock)
        if len(pending) < spec.nodes:
            return
        states = tuple(pending[r][0] for r in range(spec.nodes))
        write_done = max(clock for _, clock in pending.values())
        self._checkpoints.setdefault(spec.job_id, []).append(
            (done, states, write_done)
        )
        record.checkpoints += 1
        del running.pending[done]
        self.kernel.trace("checkpoint", job=spec.job_id, unit=done)
