"""Blade allocation: occupancy, failures, and the Gantt interval log.

The allocator owns the cluster's blades as schedulable slots.  A blade
is *free*, *busy* (running a job's rank), or *down* (failed, awaiting
repair).  Placement is lowest-index first-fit, which on the RLX
packaging means chassis-affine: blades 0..23 share the MetaBlade
chassis, so co-scheduled ranks land on neighbouring slots the way the
management hub sees them.

Every state change appends to an interval log — ``(blade, t0, t1,
kind, label)`` — which is simultaneously the utilization ledger and
the data behind :func:`repro.sched.gantt.render_gantt`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple


@dataclass(frozen=True)
class BladeInterval:
    """One closed interval of a blade's history."""

    blade: int
    start_s: float
    end_s: float
    kind: str                    # "busy" | "down"
    label: str = ""              # job id for busy, detail for down


class BladeAllocator:
    """Tracks which blades a job holds and what every blade is doing."""

    def __init__(self, nodes: int) -> None:
        if nodes < 1:
            raise ValueError("need at least one blade")
        self.nodes = nodes
        self._free = set(range(nodes))
        self._down = set()
        self._job_blades: Dict[int, Tuple[int, ...]] = {}
        self._blade_job: Dict[int, int] = {}
        self._open: Dict[int, Tuple[float, str, str]] = {}
        self.intervals: List[BladeInterval] = []
        #: Running totals alongside the interval log, so the per-call
        #: busy/down queries stay O(1) (the metrics layer polls them
        #: inside scheduler loops).
        self._busy_s = 0.0
        self._down_s = 0.0

    # -- queries -----------------------------------------------------------

    @property
    def free_count(self) -> int:
        return len(self._free)

    @property
    def down_count(self) -> int:
        return len(self._down)

    def blades_of(self, job_id: int) -> Tuple[int, ...]:
        return self._job_blades.get(job_id, ())

    def job_on(self, blade: int) -> Optional[int]:
        return self._blade_job.get(blade)

    def is_down(self, blade: int) -> bool:
        return blade in self._down

    # -- allocation --------------------------------------------------------

    def allocate(self, job_id: int, nodes: int, now: float,
                 order: Optional[Sequence[int]] = None) -> Tuple[int, ...]:
        """Claim *nodes* blades for *job_id*.

        Default placement is lowest-index first-fit.  *order* overrides
        it with a preference ranking over all blades (e.g. the thermal
        scheduler's coolest-first ordering); the first *nodes* free
        entries win, and the returned tuple is index-sorted either way
        so downstream placement and traces stay canonical.
        """
        if job_id in self._job_blades:
            raise ValueError(f"job {job_id} already holds blades")
        if nodes > len(self._free):
            raise ValueError(
                f"job {job_id} wants {nodes} blades, {len(self._free)} free"
            )
        if order is None:
            blades = tuple(sorted(self._free)[:nodes])
        else:
            preferred = [b for b in order if b in self._free]
            if len(preferred) < nodes:
                raise ValueError(
                    f"job {job_id}: preference order covers "
                    f"{len(preferred)} free blades, needs {nodes}"
                )
            blades = tuple(sorted(preferred[:nodes]))
        for blade in blades:
            self._free.remove(blade)
            self._blade_job[blade] = job_id
            self._open[blade] = (now, "busy", str(job_id))
        self._job_blades[job_id] = blades
        return blades

    def release(self, job_id: int, now: float) -> Tuple[int, ...]:
        """Return a job's blades; down blades stay down."""
        blades = self._job_blades.pop(job_id, ())
        for blade in blades:
            self._blade_job.pop(blade, None)
            self._close(blade, now)
            if blade not in self._down:
                self._free.add(blade)
        return blades

    # -- failures ----------------------------------------------------------

    def mark_down(self, blade: int, now: float, detail: str = "") -> None:
        """Take a blade out of service (caller kills any resident job)."""
        if not 0 <= blade < self.nodes:
            raise ValueError(f"blade {blade} outside 0..{self.nodes - 1}")
        if blade in self._down:
            return
        self._down.add(blade)
        self._free.discard(blade)
        if blade not in self._blade_job:
            # Idle blade: open its down interval immediately.  A busy
            # blade's down interval opens when its job releases it.
            self._close(blade, now)
            self._open[blade] = (now, "down", detail)

    def mark_up(self, blade: int, now: float) -> None:
        """Repair: the blade rejoins the free pool."""
        if blade not in self._down:
            return
        self._down.remove(blade)
        if blade in self._blade_job:      # job still draining its kill
            return
        self._close(blade, now)
        self._free.add(blade)

    # -- the interval log ---------------------------------------------------

    def _close(self, blade: int, now: float) -> None:
        opened = self._open.pop(blade, None)
        if opened is None:
            return
        start, kind, label = opened
        if now > start:
            self.intervals.append(
                BladeInterval(blade, start, now, kind, label)
            )
            if kind == "busy":
                self._busy_s += now - start
            else:
                self._down_s += now - start
        if kind == "busy" and blade in self._down:
            # The blade died while busy: its outage continues.
            self._open[blade] = (now, "down", label)

    def finish(self, now: float) -> None:
        """Close every open interval at the end of the simulation."""
        for blade in list(self._open):
            self._close(blade, now)
            self._open.pop(blade, None)

    def busy_node_seconds(self) -> float:
        return self._busy_s

    def down_node_seconds(self) -> float:
        return self._down_s

    def publish_metrics(self, registry) -> None:
        """Fold the interval ledger into a telemetry Registry."""
        registry.counter("allocator.busy_node_s").inc(self._busy_s)
        registry.counter("allocator.down_node_s").inc(self._down_s)
        for interval in self.intervals:
            registry.counter(
                "allocator.intervals", kind=interval.kind
            ).inc()
            registry.histogram(
                "allocator.interval_s", kind=interval.kind
            ).observe(interval.end_s - interval.start_s)
