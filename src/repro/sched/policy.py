"""Submission-queue policies: FCFS and EASY backfill.

Both see the same read-only picture — the queue in priority order, the
free blade count, and the running jobs with their walltime estimates —
and answer one question: which queued jobs may start *now*.

FCFS is the strict baseline: jobs start in order and the queue head
blocks everything behind it (head-of-line blocking is exactly the
utilization loss Table-2-style wide jobs cause).

EASY backfill (Lifka, 1995; the Argonne SP scheduler) keeps FCFS
fairness for the head only: the head gets a *reservation* at the
earliest time enough blades free up (by the running jobs' estimates),
and any later job may jump the queue if it fits right now and cannot
delay that reservation — either it finishes before the shadow time or
it uses only blades the head won't need.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence


@dataclass(frozen=True)
class QueuedJob:
    """Read-only queue entry handed to policies."""

    job_id: int
    nodes: int
    est_runtime_s: float


@dataclass(frozen=True)
class RunningJob:
    """Read-only running entry handed to policies."""

    job_id: int
    nodes: int
    est_end_s: float


class Policy:
    """Interface: pick the queued jobs that may start now."""

    name: str = "policy"

    def pick(self, queue: Sequence[QueuedJob], free: int, now: float,
             running: Sequence[RunningJob]) -> List[QueuedJob]:
        raise NotImplementedError


class Fcfs(Policy):
    """First-come first-served with head-of-line blocking."""

    name = "fcfs"

    def pick(self, queue: Sequence[QueuedJob], free: int, now: float,
             running: Sequence[RunningJob]) -> List[QueuedJob]:
        picked: List[QueuedJob] = []
        for entry in queue:
            if entry.nodes > free:
                break
            picked.append(entry)
            free -= entry.nodes
        return picked


class EasyBackfill(Policy):
    """EASY backfill: reserve for the head, backfill behind it."""

    name = "backfill"

    def pick(self, queue: Sequence[QueuedJob], free: int, now: float,
             running: Sequence[RunningJob]) -> List[QueuedJob]:
        picked: List[QueuedJob] = []
        queue = list(queue)
        # Start in order while the head fits (same as FCFS).
        while queue and queue[0].nodes <= free:
            entry = queue.pop(0)
            picked.append(entry)
            free -= entry.nodes
        if not queue:
            return picked
        head = queue[0]

        # The head's reservation: walk running jobs by estimated end
        # until enough blades would be free.  A job already past its
        # estimate is assumed to end any moment (``max(est, now)``).
        ends = sorted(
            (max(r.est_end_s, now), r.nodes) for r in running
        )
        shadow_time = now
        available = free
        for end_s, nodes in ends:
            if available >= head.nodes:
                break
            available += nodes
            shadow_time = end_s
        if available < head.nodes:
            # Not enough blades even when everything drains (the head
            # is waiting on failed blades to repair): no reservation
            # constraint can be computed, so do not backfill past it.
            return picked
        #: Blades left at the shadow time once the head has started.
        spare_at_shadow = available - head.nodes

        for entry in queue[1:]:
            if entry.nodes > free:
                continue
            finishes_before_shadow = (
                now + entry.est_runtime_s <= shadow_time
            )
            fits_in_spare = entry.nodes <= spare_at_shadow
            if finishes_before_shadow or fits_in_spare:
                picked.append(entry)
                free -= entry.nodes
                if fits_in_spare and not finishes_before_shadow:
                    # It will still be running at the shadow time, so
                    # it consumes part of the head's spare capacity.
                    spare_at_shadow -= entry.nodes
        return picked


def policy_by_name(name: str) -> Policy:
    policies = {"fcfs": Fcfs, "backfill": EasyBackfill, "easy": EasyBackfill}
    try:
        return policies[name.lower()]()
    except KeyError:
        known = ", ".join(sorted(policies))
        raise KeyError(
            f"unknown policy {name!r}; known: {known}"
        ) from None
