"""Job payloads: real SimMPI programs, restartable from checkpoints.

A workload describes *what a job computes* independent of when and
where the scheduler places it.  Work is divided into ``units`` (tree
steps, sweep passes); after each unit the program reports progress to
its :class:`JobContext`, which is where periodic checkpointing hooks
in: the context charges the checkpoint write as an I/O stall on the
rank clock and snapshots the unit's state, so a job killed by a node
failure can restart from its last complete checkpoint instead of from
scratch.

All three payload families exercise code the repo already trusts:

- :class:`TreecodeJob` — Warren-Salmon treecode steps (allgather +
  tree build + traversal flops billed at the node rate);
- :class:`NpbKernelJob` — the parallel NPB kernels (EP's allreduce,
  IS's alltoall);
- :class:`MicrokernelSweep` — repeated gravity-microkernel passes
  with a per-pass allreduce (the Table 1 inner kernel as a job).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, List, Optional, Tuple

import numpy as np

from repro.nbody.sim import BUILD_FLOPS_PER_PARTICLE, SimConfig
from repro.nbody.tree import HashedOctree
from repro.nbody.traversal import leaf_aligned_partition, tree_accelerations

#: Rough flops per particle-particle interaction (walltime estimates).
_FLOPS_PER_INTERACTION = 28.0
#: Rough interactions per particle at theta=0.7 (walltime estimates).
_INTERACTIONS_PER_PARTICLE = 90.0


class Workload:
    """Interface every job payload implements."""

    #: Human-readable payload family (shows up in accounting tables).
    name: str = "workload"
    #: Total work units; checkpoints land on unit boundaries.
    units: int = 1
    #: Whether unit state snapshots allow a checkpoint restart.
    checkpointable: bool = False
    #: Whether execution is a pure function of the payload's declarative
    #: content (its class + frozen-dataclass repr).  Required for the
    #: scheduler's profile cache; payloads carrying hidden mutable state
    #: must leave this False, which routes them down the legacy path.
    cacheable: bool = False

    def est_flops(self) -> float:
        """Estimated total flops (whole job, all ranks)."""
        raise NotImplementedError

    def est_runtime_s(self, nodes: int, flop_rate: float) -> float:
        """Crude walltime estimate used for queue estimates.

        Adds a communication fudge; user estimates feeding EASY
        backfill are expected to over-estimate, as real ones do.
        """
        if nodes < 1 or flop_rate <= 0:
            raise ValueError("need nodes >= 1 and a positive flop rate")
        return 1.3 * self.est_flops() / (nodes * flop_rate)

    def make_program(self, flop_rate: float, nodes: int,
                     ctx: "JobContext") -> Callable:
        """Build the SPMD generator function for one attempt.

        ``ctx.restore()`` supplies ``(start_unit, states)`` so a
        restarted attempt resumes where its last checkpoint left off.
        """
        raise NotImplementedError


class JobContext:
    """The dispatcher-side handle a running program reports through.

    One context per *attempt*; the scheduler wires ``on_unit`` to its
    checkpoint bookkeeping.  ``restore()`` returns the unit to resume
    from and the per-rank states of the last complete checkpoint (or
    ``(0, None)`` for a fresh start).
    """

    def __init__(self, start_unit: int = 0,
                 states: Optional[Tuple[Any, ...]] = None,
                 on_unit: Optional[Callable] = None) -> None:
        self.start_unit = start_unit
        self.states = states
        self._on_unit = on_unit

    def restore(self) -> Tuple[int, Optional[Tuple[Any, ...]]]:
        return self.start_unit, self.states

    def unit_done(self, comm, unit: int, state: Any = None) -> None:
        """Report one completed unit (checkpointing happens here)."""
        if self._on_unit is not None:
            self._on_unit(comm, unit, state)


# ---------------------------------------------------------------------------
# Treecode steps
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class TreecodeJob(Workload):
    """N-body treecode steps: the paper's flagship code as a batch job.

    Each unit is one KD step: allgather all slices, build the (shared)
    tree, compute accelerations for the local leaf-aligned span at the
    node's sustained rate, allgather accelerations, integrate.  State
    per unit is the local ``(pos, vel, mass)`` slice, so restarts are
    genuine: the re-run integrates only the remaining steps from the
    checkpointed phase-space coordinates.
    """

    n: int = 240
    steps: int = 2
    seed: int = 2001
    theta: float = 0.7
    dt: float = 1e-3

    name = "treecode"
    checkpointable = True
    cacheable = True

    @property
    def units(self) -> int:          # type: ignore[override]
        return self.steps

    def est_flops(self) -> float:
        per_step = self.n * (
            _INTERACTIONS_PER_PARTICLE * _FLOPS_PER_INTERACTION
            + BUILD_FLOPS_PER_PARTICLE
        )
        return 2.0 * per_step * self.steps

    def make_program(self, flop_rate: float, nodes: int,
                     ctx: JobContext) -> Callable:
        config = SimConfig(
            n=self.n, steps=self.steps, seed=self.seed,
            theta=self.theta, dt=self.dt, softening=1e-2,
        )
        start_unit, states = ctx.restore()
        if states is None:
            pos, vel, mass = config.make_ic()
            bounds = np.linspace(0, self.n, nodes + 1).astype(int)
            parts = [
                (pos[bounds[r]:bounds[r + 1]],
                 vel[bounds[r]:bounds[r + 1]],
                 mass[bounds[r]:bounds[r + 1]])
                for r in range(nodes)
            ]
        else:
            parts = list(states)

        def program(comm):
            pos_l, vel_l, mass_l = (
                a.copy() for a in parts[comm.rank]
            )
            for unit in range(start_unit, self.steps):
                gathered = yield from comm.allgather((pos_l, mass_l))
                all_pos = np.vstack([g[0] for g in gathered])
                all_mass = np.concatenate([g[1] for g in gathered])
                offsets = np.cumsum(
                    [0] + [len(g[0]) for g in gathered]
                )
                my_lo, my_hi = offsets[comm.rank], offsets[comm.rank + 1]

                tree = HashedOctree(
                    all_pos, all_mass, leaf_size=config.leaf_size
                )
                comm.compute_flops(
                    BUILD_FLOPS_PER_PARTICLE * len(all_pos), flop_rate
                )
                spans = leaf_aligned_partition(tree, comm.size, None)
                lo, hi = spans[comm.rank]
                acc_sorted, stats = tree_accelerations(
                    tree,
                    theta=config.theta,
                    softening=config.softening,
                    target_slice=(lo, hi),
                )
                comm.compute_flops(stats.flops, flop_rate)

                my_sorted_idx = tree.order[lo:hi]
                acc_parts = yield from comm.allgather(
                    (my_sorted_idx, acc_sorted)
                )
                acc_full = np.zeros_like(all_pos)
                for idx, part in acc_parts:
                    acc_full[idx] = part
                acc_mine = acc_full[my_lo:my_hi]

                vel_l = vel_l + config.dt * acc_mine
                pos_l = pos_l + config.dt * vel_l
                ctx.unit_done(
                    comm, unit, state=(pos_l, vel_l, mass_l)
                )
            return float(np.square(vel_l).sum())
        return program


# ---------------------------------------------------------------------------
# NPB kernels
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class NpbKernelJob(Workload):
    """A parallel NPB kernel (EP or IS) as a single-unit batch job.

    EP is embarrassingly parallel with one closing allreduce; IS is
    the alltoall interconnect stress test.  Both are short enough that
    a failed attempt simply reruns from scratch (``checkpointable``
    stays False).
    """

    kernel: str = "EP"
    n: int = 1 << 12
    max_key: int = 1 << 9

    name = "npb"
    units = 1
    checkpointable = False
    cacheable = True

    def __post_init__(self) -> None:
        if self.kernel.upper() not in ("EP", "IS"):
            raise ValueError("only EP and IS have parallel versions")

    def est_flops(self) -> float:
        from repro.npb.parallel import EP_OPS_PER_PAIR, IS_OPS_PER_KEY
        if self.kernel.upper() == "EP":
            return EP_OPS_PER_PAIR * self.n
        return 3.0 * IS_OPS_PER_KEY * self.n

    def make_program(self, flop_rate: float, nodes: int,
                     ctx: JobContext) -> Callable:
        from repro.npb.parallel import par_ep, par_is
        kernel = self.kernel.upper()

        def program(comm):
            if kernel == "EP":
                result = yield from par_ep(comm, self.n, flop_rate)
            else:
                result = yield from par_is(
                    comm, self.n, self.max_key, flop_rate
                )
            ctx.unit_done(comm, 0, state=None)
            return result[0] if isinstance(result, tuple) else result
        return program


# ---------------------------------------------------------------------------
# Microkernel sweep
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class MicrokernelSweep(Workload):
    """Repeated gravity-microkernel passes with a per-pass allreduce.

    The Table 1 inner kernel reframed as a long-running job: each unit
    charges one pass of interaction flops and synchronises on a small
    diagnostic allreduce.  State is the running tally, so checkpoint
    restarts skip completed passes.
    """

    passes: int = 6
    flops_per_pass: float = 2.5e6

    name = "microkernel"
    checkpointable = True
    cacheable = True

    @property
    def units(self) -> int:          # type: ignore[override]
        return self.passes

    def est_flops(self) -> float:
        return self.flops_per_pass * self.passes

    def make_program(self, flop_rate: float, nodes: int,
                     ctx: JobContext) -> Callable:
        start_unit, states = ctx.restore()
        initial: List[float] = (
            list(states) if states is not None else [0.0] * nodes
        )

        def program(comm):
            tally = initial[comm.rank]
            for unit in range(start_unit, self.passes):
                comm.compute_flops(
                    self.flops_per_pass / comm.size, flop_rate
                )
                contribution = yield from comm.allreduce(1.0)
                tally += float(contribution)
                ctx.unit_done(comm, unit, state=tally)
            return tally
        return program
