"""ASCII Gantt chart of the per-blade timeline.

One row per blade, one column per time bucket.  A bucket shows the
job that occupied the blade for most of it (base-36 digit of the job
id, so 200-job streams stay one character wide), ``x`` while the
blade is down, ``.`` when idle.  This is the picture the paper's
"operating a Beowulf" argument lives in: FCFS leaves staircases of
idle blades behind wide jobs, backfill fills them in.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.sched.allocator import BladeInterval

_DIGITS = "0123456789abcdefghijklmnopqrstuvwxyz"


def _job_symbol(label: str) -> str:
    try:
        return _DIGITS[int(label) % len(_DIGITS)]
    except (TypeError, ValueError):
        return "?"


def render_gantt(intervals: Sequence[BladeInterval], nodes: int,
                 makespan_s: float, width: int = 72) -> str:
    """Render the blade occupancy log as an ASCII chart."""
    if nodes < 1:
        raise ValueError("need at least one blade row")
    if width < 8:
        raise ValueError("need at least 8 columns")
    if makespan_s <= 0:
        return "(empty timeline)"
    dt = makespan_s / width
    rows: List[List[str]] = [["."] * width for _ in range(nodes)]
    # Majority occupant per bucket; "down" beats "busy" beats idle so
    # failures stay visible even in coarse buckets.
    shares: List[List[dict]] = [
        [dict() for _ in range(width)] for _ in range(nodes)
    ]
    for interval in intervals:
        if interval.blade >= nodes:
            continue
        symbol = (
            "x" if interval.kind == "down"
            else _job_symbol(interval.label)
        )
        first = min(int(interval.start_s / dt), width - 1)
        last = min(int(interval.end_s / dt), width - 1)
        for bucket in range(first, last + 1):
            lo = max(interval.start_s, bucket * dt)
            hi = min(interval.end_s, (bucket + 1) * dt)
            if hi <= lo:
                continue
            share = shares[interval.blade][bucket]
            share[symbol] = share.get(symbol, 0.0) + (hi - lo)
    for blade in range(nodes):
        for bucket in range(width):
            share = shares[blade][bucket]
            if not share:
                continue
            if "x" in share:
                rows[blade][bucket] = "x"
            else:
                rows[blade][bucket] = max(share, key=share.get)
    lines = [
        f"blade {blade:2d} |{''.join(row)}|"
        for blade, row in enumerate(rows)
    ]
    axis_pad = " " * len("blade  0 |")
    left = "t=0"
    right = f"t={makespan_s:.3f}s"
    gap = max(1, width - len(left) - len(right))
    lines.append(axis_pad + left + " " * gap + right)
    lines.append(
        axis_pad + "(digits: job id base36, x: blade down, .: idle)"
    )
    return "\n".join(lines)
