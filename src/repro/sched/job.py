"""The job model: specs, lifecycle records, and synthetic streams.

A :class:`JobSpec` is what a user submits: arrive at some virtual
time, ask for some blades, declare a walltime estimate, carry a
workload payload.  A :class:`JobRecord` is what the accounting keeps:
states, attempts, waits, energy, lost CPU-time.  The synthetic stream
generator draws a seeded Poisson arrival process over a mixed payload
population — the "heavy traffic" the scheduler benches replay.
"""

from __future__ import annotations

import enum
import random
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.sched.workloads import (
    MicrokernelSweep,
    NpbKernelJob,
    TreecodeJob,
    Workload,
)


class JobState(enum.Enum):
    QUEUED = "queued"
    RUNNING = "running"
    COMPLETED = "completed"
    ABANDONED = "abandoned"      # gave up after max_retries failures


@dataclass(frozen=True)
class JobSpec:
    """One submitted job."""

    job_id: int
    arrival_s: float
    nodes: int
    walltime_est_s: float        # user estimate (feeds EASY backfill)
    workload: Workload

    def __post_init__(self) -> None:
        if self.nodes < 1:
            raise ValueError("a job needs at least one node")
        if self.arrival_s < 0:
            raise ValueError("arrival time cannot be negative")
        if self.walltime_est_s <= 0:
            raise ValueError("walltime estimate must be positive")


@dataclass
class Attempt:
    """One execution attempt of a job."""

    start_s: float
    end_s: Optional[float] = None
    start_unit: int = 0          # checkpoint unit the attempt resumed from
    killed_by_node: Optional[int] = None


@dataclass
class JobRecord:
    """Full accounting trail of one job."""

    spec: JobSpec
    state: JobState = JobState.QUEUED
    attempts: List[Attempt] = field(default_factory=list)
    end_s: Optional[float] = None
    wait_s: float = 0.0          # total time spent queued (all requeues)
    energy_j: float = 0.0
    lost_cpu_s: float = 0.0      # node-seconds of killed, unsaved work
    checkpoints: int = 0
    checkpoint_io_s: float = 0.0
    compute_s: float = 0.0       # useful compute of the successful attempt
    flops: float = 0.0           # work billed on the successful attempt
                                 # (the other side of compute_s; audited
                                 # against the node rate by repro.check)
    failures: int = 0            # node failures that killed this job
    requeues: int = 0
    result: object = None

    @property
    def completed(self) -> bool:
        return self.state is JobState.COMPLETED

    @property
    def run_s(self) -> float:
        """Total wall time across attempts (including killed ones)."""
        return sum(
            (a.end_s - a.start_s) for a in self.attempts
            if a.end_s is not None
        )

    @property
    def first_start_s(self) -> Optional[float]:
        return self.attempts[0].start_s if self.attempts else None

    @property
    def turnaround_s(self) -> Optional[float]:
        if self.end_s is None:
            return None
        return self.end_s - self.spec.arrival_s


# ---------------------------------------------------------------------------
# Synthetic streams
# ---------------------------------------------------------------------------

#: (relative weight, node-count choices) of the synthetic population.
_NODE_CHOICES: Tuple[Tuple[float, int], ...] = (
    (0.35, 1), (0.25, 2), (0.2, 4), (0.15, 8), (0.05, 12),
)


def _draw_nodes(rng: random.Random, max_nodes: int) -> int:
    r = rng.random()
    acc = 0.0
    nodes = 1
    for weight, n in _NODE_CHOICES:
        acc += weight
        if r <= acc:
            nodes = n
            break
    else:
        nodes = _NODE_CHOICES[-1][1]
    return min(nodes, max_nodes)


def _draw_workload(rng: random.Random) -> Workload:
    kind = rng.random()
    if kind < 0.4:
        return TreecodeJob(
            n=rng.choice((160, 240, 320)),
            steps=rng.choice((1, 2, 3)),
            seed=rng.randrange(1 << 16),
        )
    if kind < 0.6:
        return NpbKernelJob(kernel="EP", n=rng.choice((1 << 11, 1 << 12)))
    if kind < 0.75:
        return NpbKernelJob(
            kernel="IS", n=rng.choice((1 << 10, 1 << 11)), max_key=1 << 8
        )
    return MicrokernelSweep(
        passes=rng.choice((4, 6, 8)),
        flops_per_pass=rng.choice((1.5e6, 2.5e6, 4e6)),
    )


def synthetic_stream(jobs: int, max_nodes: int, flop_rate: float,
                     seed: int = 0,
                     mean_interarrival_s: float = 0.01,
                     ) -> List[JobSpec]:
    """A seeded Poisson job stream over the mixed payload population.

    Walltime estimates are the workload's crude estimate inflated by a
    uniform factor in [1.2, 2.5] — like real user estimates, biased
    high, which is exactly the slack EASY backfill exploits.
    """
    if jobs < 1:
        raise ValueError("need at least one job")
    rng = random.Random(seed)
    t = 0.0
    specs: List[JobSpec] = []
    for job_id in range(jobs):
        t += rng.expovariate(1.0 / mean_interarrival_s)
        nodes = _draw_nodes(rng, max_nodes)
        workload = _draw_workload(rng)
        est = workload.est_runtime_s(nodes, flop_rate)
        specs.append(
            JobSpec(
                job_id=job_id,
                arrival_s=t,
                nodes=nodes,
                walltime_est_s=est * rng.uniform(1.2, 2.5),
                workload=workload,
            )
        )
    return specs
