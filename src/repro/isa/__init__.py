"""Guest instruction-set architecture (ISA) substrate.

The paper's Transmeta Crusoe TM5600 presents an x86 interface to the
outside world while executing a native VLIW instruction set internally;
the Code Morphing Software (CMS) bridges the two (paper Section 2).  This
package provides the *guest* side of that bridge: a compact, deterministic,
register-machine ISA standing in for x86.

It deliberately keeps load/store separate from arithmetic (RISC-style
operands) so the morphing pipeline stays legible, but it plays the same
role x86 plays in the paper: the portable ISA that application benchmarks
are compiled to and that every processor model (hardware or
software-morphed) must execute.

Public surface:

- :class:`~repro.isa.instructions.Op` / :class:`~repro.isa.instructions.Instr`
- :class:`~repro.isa.machine.Machine` - the architectural reference
  interpreter (golden model)
- :func:`~repro.isa.assembler.assemble` - text assembly to programs
- :mod:`~repro.isa.programs` - library of guest programs used by the
  paper's microbenchmarks
"""

from repro.isa.instructions import (
    Instr,
    Op,
    OpClass,
    Program,
    op_class,
    FREG_NAMES,
    IREG_NAMES,
)
from repro.isa.machine import ExecStats, Machine, MachineState, Memory
from repro.isa.assembler import AssemblyError, assemble

__all__ = [
    "AssemblyError",
    "ExecStats",
    "FREG_NAMES",
    "IREG_NAMES",
    "Instr",
    "Machine",
    "MachineState",
    "Memory",
    "Op",
    "OpClass",
    "Program",
    "assemble",
    "op_class",
]
