"""Two-pass text assembler for the guest ISA.

Syntax (one instruction per line, ``;`` or ``#`` starts a comment)::

    loop:
        fld   f1, r2, 0        ; f1 <- fpmem[r2 + 0]
        fmul  f2, f1, f1
        fst   r2, f2, 0        ; fpmem[r2 + 0] <- f2
        addi  r2, r2, 1
        subi  r3, r3, 1
        bnez  r3, loop
        halt

Operand order is always destination first (for stores: base register
first, value register second, offset last).  Branch targets are labels
or absolute instruction indices.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from repro.isa.instructions import (
    FREG_NAMES,
    IREG_NAMES,
    Instr,
    Op,
    Program,
)


class AssemblyError(ValueError):
    """Raised when source text cannot be assembled."""


# Operand signatures: D = dest reg, S = source reg, I = int immediate,
# F = float immediate, L = label/target.
_SIGNATURES: Dict[Op, str] = {
    Op.ADD: "DSS", Op.SUB: "DSS", Op.MUL: "DSS",
    Op.AND: "DSS", Op.OR: "DSS", Op.XOR: "DSS",
    Op.ADDI: "DSI", Op.SUBI: "DSI", Op.MULI: "DSI",
    Op.SHL: "DSI", Op.SHR: "DSI",
    Op.LI: "DI", Op.MOV: "DS",
    Op.FADD: "DSS", Op.FSUB: "DSS", Op.FMUL: "DSS", Op.FDIV: "DSS",
    Op.FSQRT: "DS", Op.FMADD: "DSSS",
    Op.FNEG: "DS", Op.FABS: "DS", Op.FMOV: "DS",
    Op.FLI: "DF",
    Op.ITOF: "DS", Op.FTOI: "DS",
    Op.LD: "DSI", Op.FLD: "DSI",
    Op.ST: "SSI", Op.FST: "SSI",
    Op.JMP: "L",
    Op.BEQ: "SSL", Op.BNE: "SSL", Op.BLT: "SSL", Op.BGE: "SSL",
    Op.BEQZ: "SL", Op.BNEZ: "SL", Op.FBLT: "SSL", Op.FBGE: "SSL",
    Op.NOP: "", Op.HALT: "",
}

_MNEMONICS = {op.value: op for op in Op}
_ALL_REGS = set(IREG_NAMES) | set(FREG_NAMES)


def _strip(line: str) -> str:
    for marker in (";", "#"):
        pos = line.find(marker)
        if pos >= 0:
            line = line[:pos]
    return line.strip()


def _parse_reg(token: str, lineno: int) -> str:
    if token not in _ALL_REGS:
        raise AssemblyError(f"line {lineno}: {token!r} is not a register")
    return token


def _parse_int(token: str, lineno: int) -> int:
    try:
        return int(token, 0)
    except ValueError:
        raise AssemblyError(
            f"line {lineno}: {token!r} is not an integer immediate"
        ) from None


def _parse_float(token: str, lineno: int) -> float:
    try:
        return float(token)
    except ValueError:
        raise AssemblyError(
            f"line {lineno}: {token!r} is not a float immediate"
        ) from None


def assemble(source: str, name: str = "<asm>") -> Program:
    """Assemble *source* text into a :class:`Program`.

    Pass 1 collects labels; pass 2 emits instructions with resolved
    branch targets.
    """
    labels: Dict[str, int] = {}
    parsed: List[Tuple[int, Op, List[str]]] = []  # (lineno, op, operands)

    # Pass 1 - labels and tokenisation.
    index = 0
    for lineno, raw in enumerate(source.splitlines(), start=1):
        line = _strip(raw)
        if not line:
            continue
        while ":" in line:
            label, _, rest = line.partition(":")
            label = label.strip()
            if not label.isidentifier():
                raise AssemblyError(f"line {lineno}: bad label {label!r}")
            if label in labels:
                raise AssemblyError(f"line {lineno}: duplicate label {label!r}")
            labels[label] = index
            line = rest.strip()
        if not line:
            continue
        tokens = line.replace(",", " ").split()
        mnemonic, operands = tokens[0].lower(), tokens[1:]
        if mnemonic not in _MNEMONICS:
            raise AssemblyError(f"line {lineno}: unknown mnemonic {mnemonic!r}")
        parsed.append((lineno, _MNEMONICS[mnemonic], operands))
        index += 1

    # Pass 2 - emit.
    instrs: List[Instr] = []
    for lineno, op, operands in parsed:
        sig = _SIGNATURES[op]
        if len(operands) != len(sig):
            raise AssemblyError(
                f"line {lineno}: {op.value} expects {len(sig)} operands, "
                f"got {len(operands)}"
            )
        dst = None
        srcs: List[str] = []
        imm = 0
        fimm = 0.0
        for kind, token in zip(sig, operands):
            if kind == "D":
                dst = _parse_reg(token, lineno)
            elif kind == "S":
                srcs.append(_parse_reg(token, lineno))
            elif kind == "I":
                imm = _parse_int(token, lineno)
            elif kind == "F":
                fimm = _parse_float(token, lineno)
            elif kind == "L":
                if token in labels:
                    imm = labels[token]
                else:
                    imm = _parse_int(token, lineno)
        instrs.append(Instr(op=op, dst=dst, srcs=tuple(srcs), imm=imm, fimm=fimm))

    if not instrs:
        raise AssemblyError("empty program")
    return Program(
        instrs=tuple(instrs),
        labels=tuple(sorted(labels.items())),
        name=name,
    )


def disassemble(program: Program) -> str:
    """Render *program* back to assembly text (labels included)."""
    label_at: Dict[int, List[str]] = {}
    for label, idx in program.labels:
        label_at.setdefault(idx, []).append(label)
    lines: List[str] = []
    for i, instr in enumerate(program.instrs):
        for label in label_at.get(i, ()):
            lines.append(f"{label}:")
        sig = _SIGNATURES[instr.op]
        fields: List[str] = []
        src_iter = iter(instr.srcs)
        for kind in sig:
            if kind == "D":
                fields.append(str(instr.dst))
            elif kind == "S":
                fields.append(next(src_iter))
            elif kind == "I" or kind == "L":
                fields.append(str(instr.imm))
            elif kind == "F":
                fields.append(repr(instr.fimm))
        lines.append(f"    {instr.op.value:<6s} " + ", ".join(fields))
    return "\n".join(lines) + "\n"
